(** Value-change-dump (VCD) trace recording for waveform inspection. *)

type t

val create : Simulator.t -> signals:string list -> t
(** Record the named signals of the simulator's netlist. *)

val sample : t -> unit
(** Record the current (settled) values as one timestep. *)

val to_string : t -> string
(** Render the recorded trace as a VCD file. *)

val id_of_index : int -> string
(** Bijective base-94 VCD identifier code of a signal index (printable
    ASCII [!]..[~]); injective for every index, so recordings of more than
    94 signals keep distinct identifiers. Raises [Invalid_argument] on a
    negative index. *)

val write_file : t -> string -> unit
