type t = {
  sim : Simulator.t;
  signals : (string * int * string) list;  (* name, width, vcd id *)
  mutable samples : (string * Bitvec.t) list list;  (* newest first *)
}

(* Bijective base-94 identifier codes over printable ASCII 33..126, the
   same scheme as [Mc.Trace.vcd_id]: injective for any index, so recordings
   of more than 94 signals never alias two signals onto one identifier. *)
let id_of_index i =
  let base = 94 and first = 33 in
  let rec go i acc =
    let c = Char.chr (first + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  if i < 0 then invalid_arg "Vcd.id_of_index: negative index" else go i ""

let create sim ~signals =
  let nl = Simulator.netlist sim in
  let sigs =
    List.mapi
      (fun i name ->
        let w = Rtl.Netlist.signal_width nl name in
        (name, w, id_of_index i))
      signals
  in
  { sim; signals = sigs; samples = [] }

let sample t =
  let row =
    List.map (fun (name, _, _) -> (name, Simulator.peek t.sim name)) t.signals
  in
  t.samples <- row :: t.samples

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "$date reproduction run $end\n";
  Buffer.add_string buf "$version repro data-integrity simulator $end\n";
  Buffer.add_string buf "$timescale 1ns $end\n";
  Buffer.add_string buf "$scope module top $end\n";
  List.iter
    (fun (name, w, id) ->
      let safe =
        String.map (fun c -> if c = '.' then '_' else c) name
      in
      Buffer.add_string buf (Printf.sprintf "$var wire %d %s %s $end\n" w id safe))
    t.signals;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let rows = List.rev t.samples in
  List.iteri
    (fun time row ->
      Buffer.add_string buf (Printf.sprintf "#%d\n" time);
      List.iter2
        (fun (_, w, id) (_, v) ->
          if w = 1 then
            Buffer.add_string buf
              (Printf.sprintf "%d%s\n" (if Bitvec.get v 0 then 1 else 0) id)
          else
            Buffer.add_string buf
              (Printf.sprintf "b%s %s\n" (Bitvec.to_string v) id))
        t.signals row)
    rows;
  Buffer.contents buf

let write_file t path =
  let oc = open_out path in
  (try output_string oc (to_string t)
   with e ->
     close_out oc;
     raise e);
  close_out oc
