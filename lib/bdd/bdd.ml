(* Arena-packed ROBDD.

   Memory layout
   -------------
   Every node lives in one growable Bigarray int slab, 3 ints per node:

     slab.{3*n}     variable level (terminals: max_int)
     slab.{3*n + 1} low child  (else branch, variable = 0)
     slab.{3*n + 2} high child (then branch, variable = 1)

   Nodes 0 and 1 are the terminals false/true; every other node n >= 2
   satisfies the ROBDD invariants: low <> high, child levels strictly
   greater than the node's, and the (var, low, high) triple unique. A BDD
   value is the int index of its root node, so handles are unboxed and
   equality is integer equality. The variable order is the index order.

   Hash consing runs through an open-addressed unique table: a power-of-two
   int array of node indices (0 marks an empty slot — the false terminal is
   never interned), linear probing, no deletions (the arena is monotone).
   At 3/4 load the table doubles and is rebuilt from the slab itself.

   The ite operation memoizes through a direct-mapped cache: four parallel
   int arrays (the f/g/h key triple and the result) indexed by a hash of
   the triple; a colliding entry simply overwrites. The memo doubles
   alongside the slab (dropping its entries, which is safe) up to a fixed
   ceiling; [clear_caches] invalidates it. The unique table is never
   cleared.

   The slab doubles on demand and is never garbage-collected, so
   [node_count] is an exact, reproducible work measure and [Node_limit]
   (the paper's "time out") is precise. The interrupt callback is polled
   every [interrupt_period] fresh allocations — the same place the node
   limit is checked — so cancellation latency is bounded by allocation
   progress, not by the size of the operation in flight. *)

type slab = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type man = {
  mutable slab : slab;
  mutable cap : int;  (* nodes the slab can hold *)
  mutable next_free : int;
  mutable tbl : int array;  (* open-addressed unique table; 0 = empty *)
  mutable tbl_mask : int;
  mutable ite_f : int array;  (* direct-mapped ite memo; f = -1 = empty *)
  mutable ite_g : int array;
  mutable ite_h : int array;
  mutable ite_r : int array;
  mutable ite_mask : int;
  nvars : int;
  mutable node_limit : int option;
  mutable interrupt : (unit -> bool) option;
  mutable interrupt_fuel : int;
  mutable interrupt_polls : int;
}

type t = int

exception Node_limit
exception Interrupted

(* how many node allocations between two polls of the interrupt callback:
   rare enough that the gettimeofday behind a deadline check is free, often
   enough that one runaway apply cannot overshoot a deadline by much *)
let interrupt_period = 8192
let terminal_level = max_int
let ite_memo_max = 1 lsl 18

let[@inline] node_var m n = Bigarray.Array1.unsafe_get m.slab (3 * n)
let[@inline] node_low m n = Bigarray.Array1.unsafe_get m.slab ((3 * n) + 1)
let[@inline] node_high m n = Bigarray.Array1.unsafe_get m.slab ((3 * n) + 2)

(* multiplicative triple mix; masked to a non-negative int *)
let[@inline] mix3 a b c =
  let x = (a * 0x9e3779b1) + b in
  let x = (x * 0x9e3779b1) + c in
  let x = x lxor (x lsr 16) in
  let x = x * 0x2545f491 in
  (x lxor (x lsr 24)) land max_int

let create ?node_limit ~nvars () =
  let cap = 1024 in
  let slab = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (3 * cap) in
  (* node 0 = false, 1 = true *)
  for n = 0 to 1 do
    Bigarray.Array1.set slab (3 * n) terminal_level;
    Bigarray.Array1.set slab ((3 * n) + 1) (-1);
    Bigarray.Array1.set slab ((3 * n) + 2) (-1)
  done;
  let memo = cap in
  { slab;
    cap;
    next_free = 2;
    tbl = Array.make (2 * cap) 0;
    tbl_mask = (2 * cap) - 1;
    ite_f = Array.make memo (-1);
    ite_g = Array.make memo 0;
    ite_h = Array.make memo 0;
    ite_r = Array.make memo 0;
    ite_mask = memo - 1;
    nvars;
    node_limit;
    interrupt = None;
    interrupt_fuel = interrupt_period;
    interrupt_polls = 0 }

let nvars m = m.nvars
let set_node_limit m l = m.node_limit <- l

let set_interrupt m f =
  m.interrupt <- f;
  m.interrupt_fuel <- interrupt_period

let node_count m = m.next_free
let interrupt_polls m = m.interrupt_polls
let clear_caches m = Array.fill m.ite_f 0 (Array.length m.ite_f) (-1)

let zero _ = 0
let one _ = 1
let is_zero b = b = 0
let is_one b = b = 1
let equal (a : t) b = a = b

let grow_slab m =
  let ncap = m.cap * 2 in
  let s = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (3 * ncap) in
  Bigarray.Array1.blit m.slab (Bigarray.Array1.sub s 0 (3 * m.cap));
  m.slab <- s;
  m.cap <- ncap;
  (* the ite memo tracks the arena size (dropping entries is safe for a
     cache) so small managers stay small and big runs keep hitting *)
  let msize = Array.length m.ite_f in
  if msize < ncap && msize < ite_memo_max then begin
    let nsize = msize * 2 in
    m.ite_f <- Array.make nsize (-1);
    m.ite_g <- Array.make nsize 0;
    m.ite_h <- Array.make nsize 0;
    m.ite_r <- Array.make nsize 0;
    m.ite_mask <- nsize - 1
  end

let rehash m =
  let size = 2 * Array.length m.tbl in
  let mask = size - 1 in
  let tbl = Array.make size 0 in
  for n = 2 to m.next_free - 1 do
    let i = ref (mix3 (node_var m n) (node_low m n) (node_high m n) land mask) in
    while Array.unsafe_get tbl !i <> 0 do
      i := (!i + 1) land mask
    done;
    Array.unsafe_set tbl !i n
  done;
  m.tbl <- tbl;
  m.tbl_mask <- mask

(* find (v,l,h) in the unique table: the node index when interned, otherwise
   [-1 - slot] encoding the empty slot where it belongs *)
let rec probe m tbl mask v l h i =
  let n = Array.unsafe_get tbl i in
  if n = 0 then -1 - i
  else if node_var m n = v && node_low m n = l && node_high m n = h then n
  else probe m tbl mask v l h ((i + 1) land mask)

let mk m v l h =
  if l = h then l
  else
    let r = probe m m.tbl m.tbl_mask v l h (mix3 v l h land m.tbl_mask) in
    if r >= 0 then r
    else begin
      (match m.node_limit with
       | Some limit when m.next_free >= limit -> raise Node_limit
       | Some _ | None -> ());
      (match m.interrupt with
       | Some f ->
         m.interrupt_fuel <- m.interrupt_fuel - 1;
         if m.interrupt_fuel <= 0 then begin
           m.interrupt_fuel <- interrupt_period;
           m.interrupt_polls <- m.interrupt_polls + 1;
           if f () then raise Interrupted
         end
       | None -> ());
      if m.next_free >= m.cap then grow_slab m;
      let n = m.next_free in
      m.next_free <- n + 1;
      Bigarray.Array1.unsafe_set m.slab (3 * n) v;
      Bigarray.Array1.unsafe_set m.slab ((3 * n) + 1) l;
      Bigarray.Array1.unsafe_set m.slab ((3 * n) + 2) h;
      (* nothing between the probe and here touches the table, so the
         encoded empty slot is still where this triple belongs *)
      m.tbl.(-1 - r) <- n;
      if 4 * (m.next_free - 2) > 3 * (m.tbl_mask + 1) then rehash m;
      n
    end

let level m n = node_var m n

let var m i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd.var: out of range";
  mk m i 0 1

let nvar m i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd.nvar: out of range";
  mk m i 1 0

let cofactors m n v =
  if node_var m n = v then (node_low m n, node_high m n) else (n, n)

let rec ite m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else begin
    let slot = mix3 f g h land m.ite_mask in
    if
      Array.unsafe_get m.ite_f slot = f
      && Array.unsafe_get m.ite_g slot = g
      && Array.unsafe_get m.ite_h slot = h
    then Array.unsafe_get m.ite_r slot
    else begin
      let v = min (level m f) (min (level m g) (level m h)) in
      let f0, f1 = cofactors m f v in
      let g0, g1 = cofactors m g v in
      let h0, h1 = cofactors m h v in
      let r0 = ite m f0 g0 h0 in
      let r1 = ite m f1 g1 h1 in
      let r = mk m v r0 r1 in
      (* re-read the slot: [mk] may have doubled the memo under us *)
      let slot = mix3 f g h land m.ite_mask in
      Array.unsafe_set m.ite_f slot f;
      Array.unsafe_set m.ite_g slot g;
      Array.unsafe_set m.ite_h slot h;
      Array.unsafe_set m.ite_r slot r;
      r
    end
  end

let not_ m f = ite m f 0 1
let and_ m f g = ite m f g 0
let or_ m f g = ite m f 1 g
let xor m f g = ite m f (not_ m g) g
let xnor m f g = ite m f g (not_ m g)
let imp m f g = ite m f g 1
let subset m a b = imp m a b = 1

let quantify m ~conj vars f =
  let in_set = Array.make m.nvars false in
  List.iter
    (fun v ->
      if v < 0 || v >= m.nvars then
        invalid_arg "Bdd.quantify: var out of range";
      in_set.(v) <- true)
    vars;
  let cache = Hashtbl.create 97 in
  let rec go f =
    if f <= 1 then f
    else
      match Hashtbl.find_opt cache f with
      | Some r -> r
      | None ->
        let v = level m f in
        let r0 = go (node_low m f) and r1 = go (node_high m f) in
        let r =
          if in_set.(v) then if conj then and_ m r0 r1 else or_ m r0 r1
          else mk m v r0 r1
        in
        Hashtbl.replace cache f r;
        r
  in
  go f

let exists m vars f = quantify m ~conj:false vars f
let forall m vars f = quantify m ~conj:true vars f

let and_exists m vars f g =
  let in_set = Array.make m.nvars false in
  List.iter
    (fun v ->
      if v < 0 || v >= m.nvars then
        invalid_arg "Bdd.and_exists: var out of range";
      in_set.(v) <- true)
    vars;
  let cache = Hashtbl.create 997 in
  let rec go f g =
    if f = 0 || g = 0 then 0
    else if f = 1 && g = 1 then 1
    else if f = 1 then quantify m ~conj:false vars g
    else if g = 1 then quantify m ~conj:false vars f
    else
      let key = if f <= g then (f, g) else (g, f) in
      match Hashtbl.find_opt cache key with
      | Some r -> r
      | None ->
        let v = min (level m f) (level m g) in
        let f0, f1 = cofactors m f v in
        let g0, g1 = cofactors m g v in
        let r =
          if in_set.(v) then begin
            let r0 = go f0 g0 in
            if r0 = 1 then 1 else or_ m r0 (go f1 g1)
          end
          else mk m v (go f0 g0) (go f1 g1)
        in
        Hashtbl.replace cache key r;
        r
  in
  go f g

let vector_compose m subst f =
  let table = Array.init m.nvars (fun i -> subst i) in
  let cache = Hashtbl.create 997 in
  let rec go f =
    if f <= 1 then f
    else
      match Hashtbl.find_opt cache f with
      | Some r -> r
      | None ->
        let v = level m f in
        let r0 = go (node_low m f) and r1 = go (node_high m f) in
        let sel = match table.(v) with Some b -> b | None -> var m v in
        let r = ite m sel r1 r0 in
        Hashtbl.replace cache f r;
        r
  in
  go f

let restrict m v value f =
  let cache = Hashtbl.create 97 in
  let rec go f =
    if f <= 1 then f
    else if level m f > v then f
    else
      match Hashtbl.find_opt cache f with
      | Some r -> r
      | None ->
        let r =
          if level m f = v then
            if value then node_high m f else node_low m f
          else mk m (level m f) (go (node_low m f)) (go (node_high m f))
        in
        Hashtbl.replace cache f r;
        r
  in
  go f

let size m f =
  let seen = Hashtbl.create 97 in
  let rec go f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.replace seen f ();
      if f > 1 then begin
        go (node_low m f);
        go (node_high m f)
      end
    end
  in
  go f;
  Hashtbl.length seen

module Int_set = Set.Make (Int)

let support m f =
  let seen = Hashtbl.create 97 in
  let acc = ref Int_set.empty in
  let rec go f =
    if f > 1 && not (Hashtbl.mem seen f) then begin
      Hashtbl.replace seen f ();
      acc := Int_set.add (level m f) !acc;
      go (node_low m f);
      go (node_high m f)
    end
  in
  go f;
  Int_set.elements !acc

let sat_count m f =
  let cache = Hashtbl.create 97 in
  (* count over variables strictly below a given level *)
  let rec go f =
    if f = 0 then 0.0
    else if f = 1 then 1.0
    else
      match Hashtbl.find_opt cache f with
      | Some c -> c
      | None ->
        let v = level m f in
        let weight child =
          let child_level = if child <= 1 then m.nvars else level m child in
          go child *. (2.0 ** float_of_int (child_level - v - 1))
        in
        let c = weight (node_low m f) +. weight (node_high m f) in
        Hashtbl.replace cache f c;
        c
  in
  let top = if f <= 1 then m.nvars else level m f in
  go f *. (2.0 ** float_of_int top)

let any_sat m f =
  if f = 0 then raise Not_found;
  let rec go f acc =
    if f = 1 then List.rev acc
    else
      let v = level m f in
      if node_low m f <> 0 then go (node_low m f) ((v, false) :: acc)
      else go (node_high m f) ((v, true) :: acc)
  in
  go f []

let eval m assign f =
  let rec go f =
    if f = 0 then false
    else if f = 1 then true
    else if assign (level m f) then go (node_high m f)
    else go (node_low m f)
  in
  go f

let cube m lits =
  List.fold_left
    (fun acc (v, b) -> and_ m acc (if b then var m v else nvar m v))
    1 lits

let fold_paths m f ~init ~f:fn =
  let rec go node path acc =
    if node = 0 then acc
    else if node = 1 then fn acc (List.rev path)
    else
      let v = level m node in
      let acc = go (node_low m node) ((v, false) :: path) acc in
      go (node_high m node) ((v, true) :: path) acc
  in
  go f [] init
