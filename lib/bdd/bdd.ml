(* Arena-based ROBDD. Nodes 0 and 1 are the terminals; every other node n
   has a variable level var.(n) and children low.(n) / high.(n). The
   variable order is the index order. Reduction invariants: low <> high and
   the (var, low, high) triple is unique. *)

type man = {
  mutable var : int array;
  mutable low : int array;
  mutable high : int array;
  mutable next_free : int;
  unique : (int * int * int, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
  nvars : int;
  mutable node_limit : int option;
  mutable interrupt : (unit -> bool) option;
  mutable interrupt_fuel : int;
  mutable interrupt_polls : int;
}

type t = int

exception Node_limit
exception Interrupted

(* how many node allocations between two polls of the interrupt callback:
   rare enough that the gettimeofday behind a deadline check is free, often
   enough that one runaway apply cannot overshoot a deadline by much *)
let interrupt_period = 8192

let terminal_level = max_int

let create ?node_limit ~nvars () =
  let cap = 1024 in
  let m =
    { var = Array.make cap terminal_level;
      low = Array.make cap (-1);
      high = Array.make cap (-1);
      next_free = 2;
      unique = Hashtbl.create 4096;
      ite_cache = Hashtbl.create 4096;
      nvars;
      node_limit;
      interrupt = None;
      interrupt_fuel = interrupt_period;
      interrupt_polls = 0 }
  in
  (* node 0 = false, 1 = true *)
  m

let nvars m = m.nvars
let set_node_limit m l = m.node_limit <- l

let set_interrupt m f =
  m.interrupt <- f;
  m.interrupt_fuel <- interrupt_period
let node_count m = m.next_free
let interrupt_polls m = m.interrupt_polls

let clear_caches m = Hashtbl.reset m.ite_cache

let zero _ = 0
let one _ = 1
let is_zero b = b = 0
let is_one b = b = 1
let equal (a : t) b = a = b

let grow m =
  let cap = Array.length m.var in
  let ncap = cap * 2 in
  let extend a fill =
    let a' = Array.make ncap fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  m.var <- extend m.var terminal_level;
  m.low <- extend m.low (-1);
  m.high <- extend m.high (-1)

let mk m v l h =
  if l = h then l
  else
    match Hashtbl.find_opt m.unique (v, l, h) with
    | Some n -> n
    | None ->
      (match m.node_limit with
       | Some limit when m.next_free >= limit -> raise Node_limit
       | Some _ | None -> ());
      (match m.interrupt with
       | Some f ->
         m.interrupt_fuel <- m.interrupt_fuel - 1;
         if m.interrupt_fuel <= 0 then begin
           m.interrupt_fuel <- interrupt_period;
           m.interrupt_polls <- m.interrupt_polls + 1;
           if f () then raise Interrupted
         end
       | None -> ());
      if m.next_free >= Array.length m.var then grow m;
      let n = m.next_free in
      m.next_free <- n + 1;
      m.var.(n) <- v;
      m.low.(n) <- l;
      m.high.(n) <- h;
      Hashtbl.replace m.unique (v, l, h) n;
      n

let level m n = m.var.(n)

let var m i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd.var: out of range";
  mk m i 0 1

let nvar m i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd.nvar: out of range";
  mk m i 1 0

let cofactors m n v =
  if m.var.(n) = v then (m.low.(n), m.high.(n)) else (n, n)

let rec ite m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
      let v = min (level m f) (min (level m g) (level m h)) in
      let f0, f1 = cofactors m f v in
      let g0, g1 = cofactors m g v in
      let h0, h1 = cofactors m h v in
      let r0 = ite m f0 g0 h0 in
      let r1 = ite m f1 g1 h1 in
      let r = mk m v r0 r1 in
      Hashtbl.replace m.ite_cache key r;
      r

let not_ m f = ite m f 0 1
let and_ m f g = ite m f g 0
let or_ m f g = ite m f 1 g
let xor m f g = ite m f (not_ m g) g
let xnor m f g = ite m f g (not_ m g)
let imp m f g = ite m f g 1

let subset m a b = imp m a b = 1

let quantify m ~conj vars f =
  let in_set = Array.make m.nvars false in
  List.iter (fun v ->
      if v < 0 || v >= m.nvars then invalid_arg "Bdd.quantify: var out of range";
      in_set.(v) <- true)
    vars;
  let cache = Hashtbl.create 97 in
  let rec go f =
    if f <= 1 then f
    else
      match Hashtbl.find_opt cache f with
      | Some r -> r
      | None ->
        let v = level m f in
        let r0 = go m.low.(f) and r1 = go m.high.(f) in
        let r =
          if in_set.(v) then
            if conj then and_ m r0 r1 else or_ m r0 r1
          else mk m v r0 r1
        in
        Hashtbl.replace cache f r;
        r
  in
  go f

let exists m vars f = quantify m ~conj:false vars f
let forall m vars f = quantify m ~conj:true vars f

let and_exists m vars f g =
  let in_set = Array.make m.nvars false in
  List.iter (fun v ->
      if v < 0 || v >= m.nvars then
        invalid_arg "Bdd.and_exists: var out of range";
      in_set.(v) <- true)
    vars;
  let cache = Hashtbl.create 997 in
  let rec go f g =
    if f = 0 || g = 0 then 0
    else if f = 1 && g = 1 then 1
    else if f = 1 then quantify m ~conj:false vars g
    else if g = 1 then quantify m ~conj:false vars f
    else
      let key = if f <= g then (f, g) else (g, f) in
      match Hashtbl.find_opt cache key with
      | Some r -> r
      | None ->
        let v = min (level m f) (level m g) in
        let f0, f1 = cofactors m f v in
        let g0, g1 = cofactors m g v in
        let r =
          if in_set.(v) then begin
            let r0 = go f0 g0 in
            if r0 = 1 then 1 else or_ m r0 (go f1 g1)
          end
          else mk m v (go f0 g0) (go f1 g1)
        in
        Hashtbl.replace cache key r;
        r
  in
  go f g

let vector_compose m subst f =
  let table = Array.init m.nvars (fun i -> subst i) in
  let cache = Hashtbl.create 997 in
  let rec go f =
    if f <= 1 then f
    else
      match Hashtbl.find_opt cache f with
      | Some r -> r
      | None ->
        let v = level m f in
        let r0 = go m.low.(f) and r1 = go m.high.(f) in
        let sel = match table.(v) with Some b -> b | None -> var m v in
        let r = ite m sel r1 r0 in
        Hashtbl.replace cache f r;
        r
  in
  go f

let restrict m v value f =
  let cache = Hashtbl.create 97 in
  let rec go f =
    if f <= 1 then f
    else if level m f > v then f
    else
      match Hashtbl.find_opt cache f with
      | Some r -> r
      | None ->
        let r =
          if level m f = v then if value then m.high.(f) else m.low.(f)
          else mk m (level m f) (go m.low.(f)) (go m.high.(f))
        in
        Hashtbl.replace cache f r;
        r
  in
  go f

let size m f =
  let seen = Hashtbl.create 97 in
  let rec go f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.replace seen f ();
      if f > 1 then begin
        go m.low.(f);
        go m.high.(f)
      end
    end
  in
  go f;
  Hashtbl.length seen

module Int_set = Set.Make (Int)

let support m f =
  let seen = Hashtbl.create 97 in
  let acc = ref Int_set.empty in
  let rec go f =
    if f > 1 && not (Hashtbl.mem seen f) then begin
      Hashtbl.replace seen f ();
      acc := Int_set.add (level m f) !acc;
      go m.low.(f);
      go m.high.(f)
    end
  in
  go f;
  Int_set.elements !acc

let sat_count m f =
  let cache = Hashtbl.create 97 in
  (* count over variables strictly below a given level *)
  let rec go f =
    if f = 0 then 0.0
    else if f = 1 then 1.0
    else
      match Hashtbl.find_opt cache f with
      | Some c -> c
      | None ->
        let v = level m f in
        let weight child =
          let child_level =
            if child <= 1 then m.nvars else level m child
          in
          go child *. (2.0 ** float_of_int (child_level - v - 1))
        in
        let c = weight m.low.(f) +. weight m.high.(f) in
        Hashtbl.replace cache f c;
        c
  in
  let top = if f <= 1 then m.nvars else level m f in
  go f *. (2.0 ** float_of_int top)

let any_sat m f =
  if f = 0 then raise Not_found;
  let rec go f acc =
    if f = 1 then List.rev acc
    else
      let v = level m f in
      if m.low.(f) <> 0 then go m.low.(f) ((v, false) :: acc)
      else go m.high.(f) ((v, true) :: acc)
  in
  go f []

let eval m assign f =
  let rec go f =
    if f = 0 then false
    else if f = 1 then true
    else if assign (level m f) then go m.high.(f)
    else go m.low.(f)
  in
  go f

let cube m lits =
  List.fold_left
    (fun acc (v, b) -> and_ m acc (if b then var m v else nvar m v))
    1 lits

let fold_paths m f ~init ~f:fn =
  let rec go node path acc =
    if node = 0 then acc
    else if node = 1 then fn acc (List.rev path)
    else
      let v = level m node in
      let acc = go m.low.(node) ((v, false) :: path) acc in
      go m.high.(node) ((v, true) :: path) acc
  in
  go f [] init
