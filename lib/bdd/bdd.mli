(** Reduced ordered binary decision diagrams.

    A manager owns the node arena; BDD values are only meaningful relative to
    their manager. The variable order is the index order: variable 0 is
    closest to the root. There is no garbage collection — the arena grows
    monotonically, which is adequate for leaf-module-sized model checking and
    makes the {!Node_limit} resource bound (the paper's "time-out") exact and
    reproducible. *)

type man
type t

exception Node_limit
(** Raised by any operation that would grow the arena past the configured
    node limit — the reproducible stand-in for the paper's model-checker
    time-outs (Figure 7). *)

exception Interrupted
(** Raised by any node-allocating operation when the manager's interrupt
    callback ({!set_interrupt}) returns [true] — the cooperative wall-clock
    cancellation point inside long-running BDD operations. *)

val create : ?node_limit:int -> nvars:int -> unit -> man
(** [create ~nvars ()] makes a manager for variables [0 .. nvars-1].
    [node_limit] defaults to unlimited. *)

val nvars : man -> int
val set_node_limit : man -> int option -> unit

val set_interrupt : man -> (unit -> bool) option -> unit
(** Install (or clear) a cancellation callback, polled every few thousand
    node allocations. When it returns [true] the allocating operation raises
    {!Interrupted}, abandoning the partially-built result. The arena stays
    consistent — only in-flight operation caches may hold partial entries —
    but callers normally discard the whole manager afterwards. *)

val node_count : man -> int
(** Total nodes allocated in the arena (a monotone work measure). *)

val interrupt_polls : man -> int
(** How many times the interrupt callback has been polled (once per ~8k node
    allocations while a callback is installed) — reported by the engine layer
    as a telemetry counter. *)

val clear_caches : man -> unit

(** {1 Constants and variables} *)

val zero : man -> t
val one : man -> t
val var : man -> int -> t
val nvar : man -> int -> t
(** Negated variable. *)

(** {1 Boolean operations} *)

val not_ : man -> t -> t
val and_ : man -> t -> t -> t
val or_ : man -> t -> t -> t
val xor : man -> t -> t -> t
val xnor : man -> t -> t -> t
val imp : man -> t -> t -> t
val ite : man -> t -> t -> t -> t

(** {1 Tests} *)

val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool
val subset : man -> t -> t -> bool
(** [subset m a b] iff [a -> b] is a tautology. *)

(** {1 Quantification and substitution} *)

val exists : man -> int list -> t -> t
val forall : man -> int list -> t -> t
val and_exists : man -> int list -> t -> t -> t
(** [and_exists m vars f g] = [exists vars (f ∧ g)] computed without building
    the full conjunction (the relational-product kernel). *)

val vector_compose : man -> (int -> t option) -> t -> t
(** [vector_compose m f b] substitutes [f i] (when [Some]) simultaneously for
    each variable [i] in [b]. *)

val restrict : man -> int -> bool -> t -> t
(** Cofactor with respect to one literal. *)

(** {1 Inspection} *)

val size : man -> t -> int
(** Nodes reachable from this root. *)

val support : man -> t -> int list
val sat_count : man -> t -> float
(** Number of satisfying assignments over all [nvars] variables. *)

val any_sat : man -> t -> (int * bool) list
(** A satisfying partial assignment (one literal per variable on the path).
    Raises [Not_found] on the zero BDD. *)

val eval : man -> (int -> bool) -> t -> bool

val cube : man -> (int * bool) list -> t
(** Conjunction of literals. *)

val fold_paths : man -> t -> init:'a -> f:('a -> (int * bool) list -> 'a) -> 'a
(** Fold over all paths to the 1 terminal (as partial assignments). Intended
    for small BDDs (tests, counterexample reporting). *)
