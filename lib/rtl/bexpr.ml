type t = { id : int; node : node }

and node =
  | True
  | False
  | Var of int
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Ite of t * t * t

let counter = ref 1

let mk node =
  incr counter;
  { id = !counter; node }

let tru = { id = 0; node = True }
let fls = { id = 1; node = False }
let of_bool b = if b then tru else fls

let var_cache : (int, t) Hashtbl.t = Hashtbl.create 97

let var i =
  match Hashtbl.find_opt var_cache i with
  | Some v -> v
  | None ->
    let v = mk (Var i) in
    Hashtbl.replace var_cache i v;
    v

let is_const e =
  match e.node with True -> Some true | False -> Some false | _ -> None

let not_ e =
  match e.node with
  | True -> fls
  | False -> tru
  | Not e' -> e'
  | Var _ | And _ | Or _ | Xor _ | Ite _ -> mk (Not e)

let and_ a b =
  match (a.node, b.node) with
  | False, _ | _, False -> fls
  | True, _ -> b
  | _, True -> a
  | _ -> if a.id = b.id then a else mk (And (a, b))

let or_ a b =
  match (a.node, b.node) with
  | True, _ | _, True -> tru
  | False, _ -> b
  | _, False -> a
  | _ -> if a.id = b.id then a else mk (Or (a, b))

let xor a b =
  match (a.node, b.node) with
  | False, _ -> b
  | _, False -> a
  | True, _ -> not_ b
  | _, True -> not_ a
  | _ -> if a.id = b.id then fls else mk (Xor (a, b))

let xnor a b = not_ (xor a b)

let ite c t e =
  match (c.node, t.node, e.node) with
  | True, _, _ -> t
  | False, _, _ -> e
  | _, True, False -> c
  | _, False, True -> not_ c
  | _ ->
    if t.id = e.id then t
    else if t.id = tru.id then or_ c e
    else if e.id = fls.id then and_ c t
    else if t.id = fls.id then and_ (not_ c) e
    else if e.id = tru.id then or_ (not_ c) t
    else mk (Ite (c, t, e))

let and_list = List.fold_left and_ tru
let or_list = List.fold_left or_ fls
let xor_list = List.fold_left xor fls

let id e = e.id

let eval f e =
  let cache = Hashtbl.create 97 in
  let rec go e =
    match Hashtbl.find_opt cache e.id with
    | Some v -> v
    | None ->
      let v =
        match e.node with
        | True -> true
        | False -> false
        | Var i -> f i
        | Not a -> not (go a)
        | And (a, b) -> go a && go b
        | Or (a, b) -> go a || go b
        | Xor (a, b) -> go a <> go b
        | Ite (c, t, e') -> if go c then go t else go e'
      in
      Hashtbl.replace cache e.id v;
      v
  in
  go e

let substitute_cached cache f root =
  let rec go e =
    match Hashtbl.find_opt cache e.id with
    | Some v -> v
    | None ->
      let v =
        match e.node with
        | True -> tru
        | False -> fls
        | Var i -> f i
        | Not a -> not_ (go a)
        | And (a, b) -> and_ (go a) (go b)
        | Or (a, b) -> or_ (go a) (go b)
        | Xor (a, b) -> xor (go a) (go b)
        | Ite (c, t, e') -> ite (go c) (go t) (go e')
      in
      Hashtbl.replace cache e.id v;
      v
  in
  go root

let substitute f root = substitute_cached (Hashtbl.create 997) f root

let substitute_many f roots =
  let cache = Hashtbl.create 997 in
  List.map (substitute_cached cache f) roots

module Int_set = Set.Make (Int)

let support_set e =
  let seen = Hashtbl.create 97 in
  let acc = ref Int_set.empty in
  let rec go e =
    if not (Hashtbl.mem seen e.id) then begin
      Hashtbl.replace seen e.id ();
      match e.node with
      | True | False -> ()
      | Var i -> acc := Int_set.add i !acc
      | Not a -> go a
      | And (a, b) | Or (a, b) | Xor (a, b) ->
        go a;
        go b
      | Ite (c, t, e') ->
        go c;
        go t;
        go e'
    end
  in
  go e;
  !acc

let support e = Int_set.elements (support_set e)

let count_nodes seen e =
  let n = ref 0 in
  let rec go e =
    if not (Hashtbl.mem seen e.id) then begin
      Hashtbl.replace seen e.id ();
      match e.node with
      | True | False | Var _ -> ()
      | Not a ->
        incr n;
        go a
      | And (a, b) | Or (a, b) | Xor (a, b) ->
        incr n;
        go a;
        go b
      | Ite (c, t, e') ->
        incr n;
        go c;
        go t;
        go e'
    end
  in
  go e;
  !n

let size e = count_nodes (Hashtbl.create 97) e

let size_many es =
  let seen = Hashtbl.create 97 in
  List.fold_left (fun acc e -> acc + count_nodes seen e) 0 es

let rec pp ppf e =
  match e.node with
  | True -> Format.pp_print_string ppf "1"
  | False -> Format.pp_print_string ppf "0"
  | Var i -> Format.fprintf ppf "v%d" i
  | Not a -> Format.fprintf ppf "!%a" pp a
  | And (a, b) -> Format.fprintf ppf "(%a & %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a | %a)" pp a pp b
  | Xor (a, b) -> Format.fprintf ppf "(%a ^ %a)" pp a pp b
  | Ite (c, t, e') -> Format.fprintf ppf "(%a ? %a : %a)" pp c pp t pp e'
