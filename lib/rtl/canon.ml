let rename f (nl : Netlist.t) =
  let port (name, w) = (f name, w) in
  { Netlist.top = nl.Netlist.top;
    inputs = List.map port nl.Netlist.inputs;
    outputs = List.map port nl.Netlist.outputs;
    wires = List.map port nl.Netlist.wires;
    assigns =
      List.map (fun (lhs, rhs) -> (f lhs, Expr.rename f rhs)) nl.Netlist.assigns;
    regs =
      List.map
        (fun (r : Netlist.flat_reg) ->
          { r with Netlist.name = f r.Netlist.name;
            next = Expr.rename f r.Netlist.next })
        nl.Netlist.regs }

let canonical_map (nl : Netlist.t) =
  let tbl = Hashtbl.create 97 in
  let fresh = ref 0 in
  let bind name =
    if not (Hashtbl.mem tbl name) then begin
      Hashtbl.add tbl name (Printf.sprintf "s%d" !fresh);
      incr fresh
    end
  in
  List.iter (fun (n, _) -> bind n) nl.Netlist.inputs;
  List.iter (fun (n, _) -> bind n) nl.Netlist.outputs;
  List.iter (fun (r : Netlist.flat_reg) -> bind r.Netlist.name) nl.Netlist.regs;
  (* assign targets in topological order, then any undriven leftovers in
     declaration order, so the numbering never depends on original names *)
  List.iter (fun (lhs, _) -> bind lhs) nl.Netlist.assigns;
  List.iter (fun (n, _) -> bind n) nl.Netlist.wires;
  fun name -> match Hashtbl.find_opt tbl name with Some c -> c | None -> name

let canonicalize nl =
  let map = canonical_map nl in
  (rename map nl, map)

let fingerprint ?(salt = "") ?(roots = []) nl =
  let nl, map = canonicalize nl in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "salt:%s\n" salt;
  List.iter (fun r -> add "root:%s\n" (map r)) roots;
  List.iter (fun (n, w) -> add "in:%s:%d\n" n w) nl.Netlist.inputs;
  List.iter (fun (n, w) -> add "out:%s:%d\n" n w) nl.Netlist.outputs;
  List.iter
    (fun (r : Netlist.flat_reg) ->
      let cls =
        match r.Netlist.cls with
        | Mdl.Fsm -> "fsm"
        | Mdl.Counter -> "cnt"
        | Mdl.Datapath -> "dp"
        | Mdl.Plain -> "plain"
      in
      add "reg:%s:%d:%s:%s:%b:%s\n" r.Netlist.name r.Netlist.width
        (Bitvec.to_string r.Netlist.reset_value)
        cls r.Netlist.parity_protected
        (Expr.to_string r.Netlist.next))
    nl.Netlist.regs;
  List.iter
    (fun (lhs, rhs) -> add "asn:%s=%s\n" lhs (Expr.to_string rhs))
    nl.Netlist.assigns;
  Digest.to_hex (Digest.string (Buffer.contents buf))
