(** Bit-level boolean expressions (a lightweight AIG-style DAG).

    Nodes carry unique ids so downstream consumers (BDD construction, CNF
    encoding, gate mapping) can memoize over shared subterms. Smart
    constructors perform constant folding and trivial simplification. *)

type t = private { id : int; node : node }

and node =
  | True
  | False
  | Var of int
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Ite of t * t * t

val tru : t
val fls : t
val of_bool : bool -> t
val var : int -> t
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor : t -> t -> t
val xnor : t -> t -> t
val ite : t -> t -> t -> t
(** [ite c t e]. *)

val and_list : t list -> t
val or_list : t list -> t
val xor_list : t list -> t

val id : t -> int
val is_const : t -> bool option
(** [Some b] when the node is the constant [b]. *)

val eval : (int -> bool) -> t -> bool

val substitute : (int -> t) -> t -> t
(** [substitute f e] replaces every variable [v] by [f v], memoized over the
    DAG (used by the bounded model checker to unroll time frames). *)

val substitute_many : (int -> t) -> t list -> t list
(** Like {!substitute} on each root, but the memo table is shared across
    roots: a node reachable from several roots is rewritten once, so sharing
    between the roots survives the substitution. *)

val support : t -> int list
(** Variable ids, sorted, without duplicates. *)

val size : t -> int
(** Number of distinct non-leaf DAG nodes (shared nodes counted once). *)

val size_many : t list -> int
(** DAG size of a set of roots with sharing across roots counted once. *)

val pp : Format.formatter -> t -> unit
