(** Canonical signal renaming and structural fingerprints for netlists.

    Two elaborated netlists that are identical up to signal naming — the
    common case for the N generated subunits of one chip category — receive
    the same canonical form and therefore the same fingerprint. The
    fingerprint is the key of the campaign's structural result cache: a
    verdict proved for one subunit is reused for every structurally
    identical sibling instead of being re-proved.

    Canonical names are assigned positionally, in a deterministic traversal
    of the netlist (inputs, outputs, registers, then combinational assigns
    in their topological order), so the renaming needs no graph
    canonicalization and runs in linear time. *)

val rename : (string -> string) -> Netlist.t -> Netlist.t
(** Apply a signal renaming everywhere: port, wire and register names and
    every expression (assign right-hand sides and register next-state
    functions). The top name is left untouched. *)

val canonical_map : Netlist.t -> (string -> string)
(** The positional canonical renaming of a netlist. Signals outside the
    netlist map to themselves. *)

val canonicalize : Netlist.t -> Netlist.t * (string -> string)
(** [canonicalize nl] is [rename (canonical_map nl) nl] paired with the
    map, so callers can translate root/observation signals too. *)

val fingerprint : ?salt:string -> ?roots:string list -> Netlist.t -> string
(** Hex digest of the canonical form. [roots] (e.g. the property's ok and
    constraint signals) are translated through the canonical map and folded
    into the digest; [salt] lets callers mix in non-structural inputs such
    as the engine strategy and resource budget. *)
