module E = Rtl.Expr
module M = Rtl.Mdl
module P = Verifiable.Parity

type leaf = {
  mdl : M.t;
  parity_inputs : string list;
  parity_outputs : string list;
  he : string;
  he_map : (string * int) list;
  extra_props : (string * Psl.Ast.fl) list;
  sim_overrides : (string * Sim.Stimulus.gen) list;
  bug : Bugs.id option;
}

(* pack a list of 1-bit expressions into a bus, element 0 at bit 0 *)
let pack bits =
  match List.rev bits with
  | [] -> invalid_arg "Archetype.pack: empty"
  | hi :: rest -> List.fold_left (fun acc b -> E.concat acc b) hi rest

(* latch a 1-bit checker result into a plain register (error reports are
   registered so the paper's "-> next HE" timing holds for input checks) *)
let latch m name viol =
  let m = M.add_reg m name 1 viol in
  (m, E.var name)

(* round-robin OR grouping of checkers into [k] HE bits *)
let group_checkers k checkers =
  if k <= 0 then invalid_arg "Archetype: he_bits must be positive";
  if k > List.length checkers then
    invalid_arg "Archetype: more HE bits than checkers";
  let groups = Array.make k [] in
  List.iteri (fun i c -> groups.(i mod k) <- c :: groups.(i mod k)) checkers;
  Array.to_list (Array.map P.aggregate groups)

let assign_he m ~he checkers_grouped =
  let m = M.add_output m he (List.length checkers_grouped) in
  M.add_assign m he (pack checkers_grouped)

let payload_of word ~width = E.slice word ~hi:(width - 2) ~lo:0

(* reset value of a [w]-bit protected word: payload 0 with the parity bit
   (bit [w-1]) set, so the codeword has odd parity *)
let reset_word w = Bitvec.set (Bitvec.zero w) (w - 1) true

let bits_for n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  go 1

(* ---------------- FSM controller (B0 host) ---------------- *)

let fsm_ctrl ~name ?(bug = false) ?(nstates = 5) () =
  if nstates < 3 then invalid_arg "Archetype.fsm_ctrl: nstates must be >= 3";
  let k = max 2 (bits_for nstates) in
  let m = M.create name in
  let m = M.add_input m "CMD" (k + 2) in
  let m = M.add_output m "STATUS" (k + 1) in
  let cur = payload_of (E.var "state_q") ~width:(k + 1) in
  let go = E.bit (payload_of (E.var "CMD") ~width:(k + 2)) 0 in
  let wrap = E.(cur ==: of_int ~width:k (nstates - 1)) in
  let next_payload =
    E.mux go (E.mux wrap (E.of_int ~width:k 0) E.(cur +: of_int ~width:k 1)) cur
  in
  let next_word =
    if bug then
      (* B0: parity bit from the CURRENT payload *)
      E.concat (E.( !: ) (E.red_xor cur)) next_payload
    else P.encode next_payload
  in
  let m =
    M.add_reg ~cls:M.Fsm ~parity_protected:true
      ~reset:(reset_word (k + 1)) m "state_q" (k + 1) next_word
  in
  let m, cmd_chk = latch m "cmd_chk_q" (P.violated (E.var "CMD")) in
  let illegal = E.( !: ) E.(cur <: of_int ~width:k nstates) in
  let m =
    assign_he m ~he:"HE" [ P.violated (E.var "state_q"); illegal; cmd_chk ]
  in
  let m = M.add_assign m "STATUS" (E.var "state_q") in
  { mdl = m; parity_inputs = [ "CMD" ]; parity_outputs = [ "STATUS" ];
    he = "HE"; he_map = [ ("state_q", 0); ("CMD", 2) ];
    extra_props =
      [ ( "pLegalState",
          Psl.Ast.Always (Psl.Ast.Bool E.(cur <: of_int ~width:k nstates)) ) ];
    sim_overrides = []; bug = (if bug then Some Bugs.B0 else None) }

(* ---------------- loadable counter (B2 host) ---------------- *)

let counter ~name ?(bug = false) ?(width = 4) () =
  if width < 2 then invalid_arg "Archetype.counter: width must be >= 2";
  let w = width in
  let m = M.create name in
  let m = M.add_input m "EN" 1 in
  let m = M.add_input m "LOAD" 1 in
  let m = M.add_input m "LOAD_VAL" (w + 1) in
  let m = M.add_output m "COUNT" (w + 1) in
  let cur = payload_of (E.var "cnt_q") ~width:(w + 1) in
  let lv = payload_of (E.var "LOAD_VAL") ~width:(w + 1) in
  let next_payload =
    E.mux (E.var "LOAD") lv
      (E.mux (E.var "EN") E.(cur +: of_int ~width:w 1) cur)
  in
  let correct = P.encode next_payload in
  let next_word =
    if bug then
      let wrap =
        E.(var "EN" &: !:(var "LOAD")
           &: (cur ==: of_int ~width:w ((1 lsl w) - 1)))
      in
      (* B2: inverted parity exactly at wrap-around *)
      E.mux wrap (E.concat (E.red_xor next_payload) next_payload) correct
    else correct
  in
  let m =
    M.add_reg ~cls:M.Counter ~parity_protected:true
      ~reset:(reset_word (w + 1)) m "cnt_q" (w + 1) next_word
  in
  let m, lv_chk = latch m "lv_chk_q" (P.violated (E.var "LOAD_VAL")) in
  let m = assign_he m ~he:"HE" [ P.violated (E.var "cnt_q"); lv_chk ] in
  let m = M.add_assign m "COUNT" (E.var "cnt_q") in
  { mdl = m; parity_inputs = [ "LOAD_VAL" ]; parity_outputs = [ "COUNT" ];
    he = "HE"; he_map = [ ("cnt_q", 0); ("LOAD_VAL", 1) ]; extra_props = [];
    sim_overrides = []; bug = (if bug then Some Bugs.B2 else None) }

(* ---------------- control/status register (B1 host) ---------------- *)

let csr ~name ?(bug = false) ?(width = 8) () =
  if width < 2 then invalid_arg "Archetype.csr: width must be >= 2";
  let w = width in
  (* the high half of the register is reserved (0xF0 at the default width) *)
  let csr_reserved_mask = ((1 lsl w) - 1) land lnot ((1 lsl (w / 2)) - 1) in
  let all_ones = (1 lsl w) - 1 in
  let m = M.create name in
  let m = M.add_input m "WE" 1 in
  let m = M.add_input m "WDATA" (w + 1) in
  let m = M.add_output m "RDATA" (w + 1) in
  let wpayload = payload_of (E.var "WDATA") ~width:(w + 1) in
  let cleared =
    E.(wpayload
       &: const (Bitvec.of_int ~width:w (lnot csr_reserved_mask land all_ones)))
  in
  let stored =
    if bug then
      (* B1: reserved field cleared but the incoming parity bit is kept *)
      E.concat (E.bit (E.var "WDATA") w) cleared
    else P.encode cleared
  in
  let next_word = E.mux (E.var "WE") stored (E.var "csr_q") in
  let m =
    M.add_reg ~cls:M.Datapath ~parity_protected:true
      ~reset:(reset_word (w + 1)) m "csr_q" (w + 1) next_word
  in
  let m, w_chk = latch m "w_chk_q" (P.violated (E.var "WDATA")) in
  let m = assign_he m ~he:"HE" [ P.violated (E.var "csr_q"); w_chk ] in
  let m = M.add_assign m "RDATA" (E.var "csr_q") in
  (* realistic testbench: software writes zeros to reserved fields; a raw
     (reserved-bits-set) but parity-legal write is a ~1e-5 event *)
  let wdata_gen st =
    let raw = Random.State.float st 1.0 < 1e-5 in
    let payload = Bitvec.random st w in
    let payload =
      if raw then payload
      else
        Bitvec.logand payload
          (Bitvec.of_int ~width:w (lnot csr_reserved_mask land all_ones))
    in
    Bitvec.append_odd_parity payload
  in
  { mdl = m; parity_inputs = [ "WDATA" ]; parity_outputs = [ "RDATA" ];
    he = "HE"; he_map = [ ("csr_q", 0); ("WDATA", 1) ]; extra_props = [];
    sim_overrides = [ ("WDATA", wdata_gen) ];
    bug = (if bug then Some Bugs.B1 else None) }

(* ---------------- macro interface (B3 host) ---------------- *)

let macro_if ~name ?(bug = false) ?(width = 8) () =
  if width < 2 then invalid_arg "Archetype.macro_if: width must be >= 2";
  let w = width in
  let m = M.create name in
  let m = M.add_input m "MACRO_READY" 1 in
  let m = M.add_input m "DIN" (w + 1) in
  let m = M.add_output m "DOUT" (w + 1) in
  let m = M.add_reg m "warmup_q" 1 E.tru in
  let m =
    M.add_reg ~cls:M.Datapath ~parity_protected:true
      ~reset:(reset_word (w + 1)) m "buf_q" (w + 1) (E.var "DIN")
  in
  let m, in_chk = latch m "in_chk_q" (P.violated (E.var "DIN")) in
  (* B3: report gating trusts the macro's ready signal, which is not
     guaranteed right after reset; the correct design uses its own warmup *)
  let gate = if bug then E.var "MACRO_READY" else E.var "warmup_q" in
  let m =
    assign_he m ~he:"HE"
      [ E.(P.violated (var "buf_q") &: gate); E.(in_chk &: gate) ]
  in
  let m = M.add_assign m "DOUT" (E.var "buf_q") in
  (* the (wrong) behavioral model of the macro asserts ready from reset *)
  let ready_gen _ = Bitvec.of_int ~width:1 1 in
  { mdl = m; parity_inputs = [ "DIN" ]; parity_outputs = [ "DOUT" ];
    he = "HE"; he_map = [ ("buf_q", 0); ("DIN", 1) ]; extra_props = [];
    sim_overrides = [ ("MACRO_READY", ready_gen) ];
    bug = (if bug then Some Bugs.B3 else None) }

(* ---------------- ALU datapath (B4 host) ---------------- *)

let datapath ~name ?(bug = false) ?(width = 8) () =
  if width < 2 then invalid_arg "Archetype.datapath: width must be >= 2";
  let w = width in
  let m = M.create name in
  let m = M.add_input m "A" (w + 1) in
  let m = M.add_input m "B" (w + 1) in
  let m = M.add_input m "OP" 2 in
  let m = M.add_output m "R" (w + 1) in
  let a = payload_of (E.var "A") ~width:(w + 1) in
  let b = payload_of (E.var "B") ~width:(w + 1) in
  let op n = E.(var "OP" ==: of_int ~width:2 n) in
  let result =
    E.mux (op 0) E.(a &: b)
      (E.mux (op 1) E.(a |: b) (E.mux (op 2) E.(a ^: b) E.(a +: b)))
  in
  let correct = P.encode result in
  let stored =
    if bug then
      (* B4: wrong parity polarity for the XOR opcode *)
      E.mux (op 2) (E.concat (E.red_xor result) result) correct
    else correct
  in
  let m =
    M.add_reg ~cls:M.Datapath ~parity_protected:true
      ~reset:(reset_word (w + 1)) m "r_q" (w + 1) stored
  in
  let m, a_chk = latch m "a_chk_q" (P.violated (E.var "A")) in
  let m, b_chk = latch m "b_chk_q" (P.violated (E.var "B")) in
  let m =
    assign_he m ~he:"HE" [ P.violated (E.var "r_q"); a_chk; b_chk ]
  in
  let m = M.add_assign m "R" (E.var "r_q") in
  { mdl = m; parity_inputs = [ "A"; "B" ]; parity_outputs = [ "R" ];
    he = "HE"; he_map = [ ("r_q", 0); ("A", 1); ("B", 2) ]; extra_props = [];
    sim_overrides = []; bug = (if bug then Some Bugs.B4 else None) }

(* ---------------- address decoder (B5/B6 host) ---------------- *)

let decoder ~name ?bug ?(width = 8) ?(valid_cases = 91) () =
  if width < 2 then invalid_arg "Archetype.decoder: width must be >= 2";
  if valid_cases < 1 || valid_cases > 1 lsl width then
    invalid_arg "Archetype.decoder: valid_cases out of range";
  let w = width in
  let m = M.create name in
  let m = M.add_input m "ADDR" w in
  let m = M.add_input m "DIN" (w + 1) in
  let m = M.add_output m "DOUT" (w + 1) in
  let payload = payload_of (E.var "DIN") ~width:(w + 1) in
  let valid = E.(var "ADDR" <: of_int ~width:w valid_cases) in
  let mixed = E.(payload ^: var "ADDR") in
  let out_payload = E.mux valid mixed (E.of_int ~width:w 0) in
  let correct = P.encode out_payload in
  let stored =
    match bug with
    | None -> correct
    | Some (_, bad_addr, pattern) ->
      (* B5/B6: for one valid address and one sensitizing data value the
         parity is computed with the wrong polarity *)
      let hit =
        E.(var "ADDR" ==: of_int ~width:w bad_addr
           &: (payload ==: of_int ~width:w pattern))
      in
      E.mux hit (E.concat (E.red_xor out_payload) out_payload) correct
  in
  let m =
    M.add_reg ~cls:M.Datapath ~parity_protected:true
      ~reset:(reset_word (w + 1)) m "q" (w + 1) stored
  in
  let m, din_chk = latch m "din_chk_q" (P.violated (E.var "DIN")) in
  let m = assign_he m ~he:"HE" [ P.violated (E.var "q"); din_chk ] in
  let m = M.add_assign m "DOUT" (E.var "q") in
  { mdl = m; parity_inputs = [ "DIN" ]; parity_outputs = [ "DOUT" ];
    he = "HE"; he_map = [ ("q", 0); ("DIN", 1) ]; extra_props = [];
    sim_overrides = []; bug = Option.map (fun (id, _, _) -> id) bug }

(* ---------------- merge (Figure 7 subject) ---------------- *)

let merge ~name ?(payload_width = 8) ?(he_bits = 7) () =
  let w = payload_width in
  let m = M.create name in
  let streams = [ "S0"; "S1"; "S2" ] in
  let m = List.fold_left (fun m s -> M.add_input m s (w + 1)) m streams in
  let m = M.add_output m "OUT" (w + 1) in
  let m =
    List.fold_left
      (fun m i ->
        let reg = Printf.sprintf "st%d_q" i in
        M.add_reg ~cls:M.Datapath ~parity_protected:true
          ~reset:(Bitvec.set (Bitvec.zero (w + 1)) w true)
          m reg (w + 1)
          (E.var (List.nth streams i)))
      m [ 0; 1; 2 ]
  in
  (* checkpoint wires — the Figure 7 cut points A', B', C' *)
  let m =
    List.fold_left
      (fun m i ->
        let chk = Printf.sprintf "chk%d" i in
        let m = M.add_wire m chk (w + 1) in
        M.add_assign m chk (E.var (Printf.sprintf "st%d_q" i)))
      m [ 0; 1; 2 ]
  in
  let p i = payload_of (E.var (Printf.sprintf "chk%d" i)) ~width:(w + 1) in
  let merged = E.((p 0 +: p 1) ^: (p 1 +: p 2)) in
  let m =
    M.add_reg ~cls:M.Datapath ~parity_protected:true
      ~reset:(Bitvec.set (Bitvec.zero (w + 1)) w true)
      m "out_q" (w + 1) (P.encode merged)
  in
  let m = M.add_assign m "OUT" (E.var "out_q") in
  let m, chks =
    List.fold_left
      (fun (m, acc) s ->
        let m, c = latch m (s ^ "_chk_q") (P.violated (E.var s)) in
        (m, c :: acc))
      (m, []) streams
  in
  let state_checks =
    List.map (fun i -> P.violated (E.var (Printf.sprintf "st%d_q" i))) [ 0; 1; 2 ]
    @ [ P.violated (E.var "out_q") ]
  in
  let m = assign_he m ~he:"HE" (group_checkers he_bits (state_checks @ List.rev chks)) in
  let he_map =
    List.mapi (fun i name -> (name, i mod he_bits))
      [ "st0_q"; "st1_q"; "st2_q"; "out_q"; "S0"; "S1"; "S2" ]
  in
  let he_map =
    List.filter (fun (name, _) -> name <> "out_q") he_map
    @ [ ("out_q", 3 mod he_bits) ]
  in
  { mdl = m; parity_inputs = streams; parity_outputs = [ "OUT" ]; he = "HE";
    he_map; extra_props = []; sim_overrides = []; bug = None }

(* ---------------- configurable filler ---------------- *)

let filler ~name ~n_fsm ~n_cnt ~n_dp ~n_parity_in ~n_parity_out ~he_bits
    ~n_extra =
  let n_ent = n_fsm + n_cnt + n_dp in
  if n_ent = 0 then invalid_arg "Archetype.filler: needs at least one entity";
  if n_extra > 0 && n_fsm = 0 then
    invalid_arg "Archetype.filler: extra properties need an FSM";
  if n_dp > 0 && n_parity_in = 0 then
    invalid_arg "Archetype.filler: datapath entities need a parity input";
  let pw = 3 in
  (* payload width of entities and parity inputs *)
  let word = pw + 1 in
  let m = M.create name in
  let m = M.add_input m "EN" 1 in
  let in_name j = Printf.sprintf "IN%d" j in
  let m =
    List.fold_left (fun m j -> M.add_input m (in_name j) word) m
      (List.init n_parity_in Fun.id)
  in
  let reset_word = Bitvec.set (Bitvec.zero word) pw true in
  (* FSMs cycle through 5 states *)
  let fsm_name j = Printf.sprintf "fsm%d_q" j in
  let m =
    List.fold_left
      (fun m j ->
        let cur = payload_of (E.var (fsm_name j)) ~width:word in
        let wrap = E.(cur ==: of_int ~width:pw 4) in
        let next =
          E.mux (E.var "EN")
            (E.mux wrap (E.of_int ~width:pw 0) E.(cur +: of_int ~width:pw 1))
            cur
        in
        M.add_reg ~cls:M.Fsm ~parity_protected:true ~reset:reset_word m
          (fsm_name j) word (P.encode next))
      m
      (List.init n_fsm Fun.id)
  in
  let cnt_name j = Printf.sprintf "cnt%d_q" j in
  let m =
    List.fold_left
      (fun m j ->
        let cur = payload_of (E.var (cnt_name j)) ~width:word in
        let next = E.mux (E.var "EN") E.(cur +: of_int ~width:pw 1) cur in
        M.add_reg ~cls:M.Counter ~parity_protected:true ~reset:reset_word m
          (cnt_name j) word (P.encode next))
      m
      (List.init n_cnt Fun.id)
  in
  let dp_name j = Printf.sprintf "dp%d_q" j in
  let m =
    List.fold_left
      (fun m j ->
        let src = in_name (j mod n_parity_in) in
        M.add_reg ~cls:M.Datapath ~parity_protected:true ~reset:reset_word m
          (dp_name j) word (E.var src))
      m
      (List.init n_dp Fun.id)
  in
  let entity_names =
    List.init n_fsm fsm_name @ List.init n_cnt cnt_name @ List.init n_dp dp_name
  in
  let m, in_checks =
    List.fold_left
      (fun (m, acc) j ->
        let m, c =
          latch m (Printf.sprintf "in%d_chk_q" j) (P.violated (E.var (in_name j)))
        in
        (m, acc @ [ c ]))
      (m, [])
      (List.init n_parity_in Fun.id)
  in
  let checkers =
    List.map (fun r -> P.violated (E.var r)) entity_names @ in_checks
  in
  let m = assign_he m ~he:"HE" (group_checkers he_bits checkers) in
  let out_name j = Printf.sprintf "OUT%d" j in
  let m =
    List.fold_left
      (fun m j ->
        let src = List.nth entity_names (j mod n_ent) in
        let m = M.add_output m (out_name j) word in
        M.add_assign m (out_name j) (E.var src))
      m
      (List.init n_parity_out Fun.id)
  in
  let extra_props =
    List.init n_extra (fun i ->
        let reg = fsm_name (i mod n_fsm) in
        ( Printf.sprintf "pLegalState_%d" i,
          Psl.Ast.Always
            (Psl.Ast.Bool
               E.(payload_of (var reg) ~width:word <: of_int ~width:pw 5)) ))
  in
  let he_map =
    List.mapi
      (fun i name -> (name, i mod he_bits))
      (entity_names @ List.init n_parity_in in_name)
  in
  { mdl = m; parity_inputs = List.init n_parity_in in_name;
    parity_outputs = List.init n_parity_out out_name; he = "HE"; he_map;
    extra_props; sim_overrides = []; bug = None }

let fifo ~name ?(depth = 4) ?(width = 4) () =
  if depth < 2 || depth land (depth - 1) <> 0 then
    invalid_arg "Archetype.fifo: depth must be a power of two >= 2";
  if width < 2 then invalid_arg "Archetype.fifo: width must be >= 2";
  let pw = width in
  (* payload bits per slot *)
  let word = pw + 1 in
  let ptr_bits =
    let rec bits n = if 1 lsl n >= depth then n else bits (n + 1) in
    bits 1
  in
  let cnt_bits =
    let rec bits n = if 1 lsl n > depth then n else bits (n + 1) in
    bits 1
  in
  let m = M.create name in
  let m = M.add_input m "PUSH" 1 in
  let m = M.add_input m "POP" 1 in
  let m = M.add_input m "DIN" word in
  let m = M.add_output m "DOUT" word in
  let m = M.add_output m "FULL" 1 in
  let m = M.add_output m "EMPTY" 1 in
  let slot i = Printf.sprintf "mem%d_q" i in
  let ptr_payload reg = payload_of (E.var reg) ~width:(ptr_bits + 1) in
  let cnt_payload = payload_of (E.var "cnt_q") ~width:(cnt_bits + 1) in
  let empty = E.(cnt_payload ==: of_int ~width:cnt_bits 0) in
  let full = E.(cnt_payload ==: of_int ~width:cnt_bits depth) in
  let do_push = E.(var "PUSH" &: !:full) in
  let do_pop = E.(var "POP" &: !:empty) in
  (* data slots: captured from DIN when pushed at this write index *)
  let m =
    List.fold_left
      (fun m i ->
        let selected =
          E.(do_push &: (ptr_payload "wr_q" ==: of_int ~width:ptr_bits i))
        in
        M.add_reg ~cls:M.Datapath ~parity_protected:true
          ~reset:(reset_word word) m (slot i) word
          (E.mux selected (E.var "DIN") (E.var (slot i))))
      m
      (List.init depth Fun.id)
  in
  (* wrap-around pointers and the occupancy counter, all parity-protected *)
  let bump reg enable =
    let cur = ptr_payload reg in
    let next =
      E.mux enable E.(cur +: of_int ~width:ptr_bits 1) cur
    in
    P.encode next
  in
  let m =
    M.add_reg ~cls:M.Counter ~parity_protected:true
      ~reset:(reset_word (ptr_bits + 1)) m "wr_q" (ptr_bits + 1)
      (bump "wr_q" do_push)
  in
  let m =
    M.add_reg ~cls:M.Counter ~parity_protected:true
      ~reset:(reset_word (ptr_bits + 1)) m "rd_q" (ptr_bits + 1)
      (bump "rd_q" do_pop)
  in
  let cnt_next =
    E.mux
      E.(do_push &: !:do_pop)
      E.(cnt_payload +: of_int ~width:cnt_bits 1)
      (E.mux
         E.(do_pop &: !:do_push)
         E.(cnt_payload -: of_int ~width:cnt_bits 1)
         cnt_payload)
  in
  let m =
    M.add_reg ~cls:M.Counter ~parity_protected:true
      ~reset:(reset_word (cnt_bits + 1)) m "cnt_q" (cnt_bits + 1)
      (P.encode cnt_next)
  in
  let m, din_chk = latch m "din_chk_q" (P.violated (E.var "DIN")) in
  let data_checks =
    List.map (fun i -> P.violated (E.var (slot i))) (List.init depth Fun.id)
  in
  let ctrl_checks =
    [ P.violated (E.var "wr_q"); P.violated (E.var "rd_q");
      P.violated (E.var "cnt_q") ]
  in
  let m =
    assign_he m ~he:"HE"
      [ P.aggregate data_checks; P.aggregate ctrl_checks; din_chk ]
  in
  (* read mux over the slots *)
  let dout =
    List.fold_left
      (fun acc i ->
        E.mux
          E.(ptr_payload "rd_q" ==: of_int ~width:ptr_bits i)
          (E.var (slot i)) acc)
      (E.var (slot 0))
      (List.init depth Fun.id)
  in
  let m = M.add_assign m "DOUT" dout in
  let m = M.add_assign m "FULL" full in
  let m = M.add_assign m "EMPTY" empty in
  let he_map =
    List.map (fun i -> (slot i, 0)) (List.init depth Fun.id)
    @ [ ("wr_q", 1); ("rd_q", 1); ("cnt_q", 1); ("DIN", 2) ]
  in
  { mdl = m; parity_inputs = [ "DIN" ]; parity_outputs = [ "DOUT" ];
    he = "HE"; he_map;
    extra_props =
      [ ( "pOccupancyRange",
          Psl.Ast.Always
            (Psl.Ast.Bool E.(cnt_payload <: of_int ~width:cnt_bits (depth + 1))) );
        ( "pEmptyConsistent",
          Psl.Ast.Always
            (Psl.Ast.Bool E.(var "EMPTY" ==: empty)) );
        ( "pFullConsistent",
          Psl.Ast.Always (Psl.Ast.Bool E.(var "FULL" ==: full)) );
        ( "pNeverBothFlags",
          Psl.Ast.Never (Psl.Ast.Bool E.(var "FULL" &: var "EMPTY")) ) ];
    sim_overrides = []; bug = None }

let ecc_reg ~name ?(data_width = 4) () =
  let s = Verifiable.Ecc.scheme ~data_width in
  let cw = s.Verifiable.Ecc.code_width in
  let m = M.create name in
  let m = M.add_input m "WE" 1 in
  let m = M.add_input m "DIN" data_width in
  let m = M.add_input m "EINJ_C" 1 in
  let m = M.add_input m "EINJ_MASK" cw in
  let m = M.add_output m "DOUT" data_width in
  let m = M.add_output m "CE" 1 in
  let m = M.add_output m "UE" 1 in
  (* corruption is applied on the write path, so the stored corruption is
     exactly the mask of the last write (tracked in mask_q) *)
  let write_word =
    E.(Verifiable.Ecc.encode s (var "DIN")
       ^: mux (var "EINJ_C") (var "EINJ_MASK") (of_int ~width:cw 0))
  in
  let m =
    M.add_reg ~cls:M.Datapath m "code_q" cw
      (E.mux (E.var "WE") write_word (E.var "code_q"))
      ~reset:(Bitvec.zero cw)
  in
  (* golden shadows, for verification only (tied off in silicon like EC/ED) *)
  let m =
    M.add_reg m "shadow_q" data_width
      (E.mux (E.var "WE") (E.var "DIN") (E.var "shadow_q"))
  in
  let m =
    M.add_reg m "mask_q" cw
      (E.mux (E.var "WE")
         (E.mux (E.var "EINJ_C") (E.var "EINJ_MASK") (E.of_int ~width:cw 0))
         (E.var "mask_q"))
  in
  let payload, ce, ue = Verifiable.Ecc.decode s (E.var "code_q") in
  let m = M.add_assign m "DOUT" payload in
  let m = M.add_assign m "CE" ce in
  let m = M.add_assign m "UE" ue in
  (* note: the reset codeword is all zeros, a valid encoding of payload 0 *)
  let zero = E.of_int ~width:cw 0 in
  let one = E.of_int ~width:cw 1 in
  let onehot x = E.((x <>: zero) &: ((x &: (x -: one)) ==: zero)) in
  let mask = E.var "mask_q" in
  let at_most_one = E.((mask &: (mask -: one)) ==: zero) in
  let twohot = E.((mask <>: zero) &: onehot E.(mask &: (mask -: one))) in
  let props =
    [ ( "pCorrectSingle",
        Psl.Ast.Always
          (Psl.Ast.Implies
             (Psl.Ast.Bool at_most_one,
              Psl.Ast.Bool E.(var "DOUT" ==: var "shadow_q"))) );
      ( "pSingleRaisesCE",
        Psl.Ast.Always
          (Psl.Ast.Implies (Psl.Ast.Bool (onehot mask), Psl.Ast.Bool (E.var "CE"))) );
      ( "pDoubleRaisesUE",
        Psl.Ast.Always
          (Psl.Ast.Implies (Psl.Ast.Bool twohot, Psl.Ast.Bool (E.var "UE"))) );
      ( "pNoFalseAlarm",
        Psl.Ast.Always
          (Psl.Ast.Implies
             (Psl.Ast.Bool E.(mask ==: zero),
              Psl.Ast.Bool E.(!:(var "CE" |: var "UE")))) ) ]
  in
  (m, props)

let ballast ~name ?(stages = 12) ?(width = 32) () =
  let m = M.create name in
  let m = M.add_input m "DIN" width in
  let m = M.add_output m "DOUT" width in
  let rotate e n =
    E.concat (E.slice e ~hi:(n - 1) ~lo:0) (E.slice e ~hi:(width - 1) ~lo:n)
  in
  let stage_name i = Printf.sprintf "s%d_q" i in
  let m =
    List.fold_left
      (fun m i ->
        let prev = if i = 0 then E.var "DIN" else E.var (stage_name (i - 1)) in
        let next = E.((prev +: rotate prev 3) ^: rotate prev 7) in
        M.add_reg m (stage_name i) width next)
      m
      (List.init stages Fun.id)
  in
  M.add_assign m "DOUT" (E.var (stage_name (stages - 1)))

let property_counts leaf =
  let entities = List.length (Verifiable.Entity.discover leaf.mdl) in
  let p0 = entities + List.length leaf.parity_inputs in
  let p1 = M.signal_width leaf.mdl leaf.he in
  let p2 = List.length leaf.parity_outputs in
  let p3 = List.length leaf.extra_props in
  (p0, p1, p2, p3)
