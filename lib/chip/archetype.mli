(** Leaf-module archetypes: the building blocks of the synthetic server
    component chip. Each builder returns an (untransformed) parity-protected
    module together with its integrity interface — which inputs and outputs
    carry odd-parity codewords, which signal is the hardware-error report —
    plus the realistic testbench model used by the logic-simulation baseline
    and the bug it optionally carries. *)

type leaf = {
  mdl : Rtl.Mdl.t;
  parity_inputs : string list;
  parity_outputs : string list;
  he : string;
  he_map : (string * int) list;
      (** HE bit carrying each entity's / parity input's checker *)
  extra_props : (string * Psl.Ast.fl) list;  (** P3 material *)
  sim_overrides : (string * Sim.Stimulus.gen) list;
      (** realistic testbench models for specific inputs (e.g. the CSR
          testbench writing zeros to reserved fields, the macro behavioral
          model driving ready from reset) *)
  bug : Bugs.id option;
}

val fsm_ctrl : name:string -> ?bug:bool -> ?nstates:int -> unit -> leaf
(** [nstates]-state FSM (default 5, must be [>= 3]), parity-protected state
    register, illegal-state detection. [bug] seeds B0. *)

val counter : name:string -> ?bug:bool -> ?width:int -> unit -> leaf
(** Loadable [width]-bit (default 4) wrap counter. [bug] seeds B2. *)

val csr : name:string -> ?bug:bool -> ?width:int -> unit -> leaf
(** [width]-bit (default 8) control/status register whose high half is
    reserved. [bug] seeds B1. *)

val macro_if : name:string -> ?bug:bool -> ?width:int -> unit -> leaf
(** Datapath buffer whose error reporting is gated by a macro-ready signal.
    [width] defaults to 8. [bug] seeds B3. *)

val datapath : name:string -> ?bug:bool -> ?width:int -> unit -> leaf
(** 4-op ALU with a parity-protected result register. [width] defaults to 8.
    [bug] seeds B4. *)

val decoder :
  name:string ->
  ?bug:(Bugs.id * int * int) ->
  ?width:int ->
  ?valid_cases:int ->
  unit ->
  leaf
(** [width]-bit (default 8) address decoder with [valid_cases] (default 91)
    valid cases. [bug] is [(B5|B6, bad_address, sensitizing_data_pattern)];
    [bad_address] must be a valid case and [sensitizing_data_pattern] a
    [width]-bit value for the bug to be reachable. *)

val merge : name:string -> ?payload_width:int -> ?he_bits:int -> unit -> leaf
(** Three parity-protected streams staged through checkpoint registers and
    merged — the Figure 7 divide-and-conquer subject. The checkpoint wires
    are named [chk0..chk2]. *)

val filler :
  name:string ->
  n_fsm:int ->
  n_cnt:int ->
  n_dp:int ->
  n_parity_in:int ->
  n_parity_out:int ->
  he_bits:int ->
  n_extra:int ->
  leaf
(** Configurable generic RAS leaf used to populate the chip to the paper's
    per-category property counts. Requires at least one entity; [he_bits]
    must not exceed the number of checkers ([entities + parity inputs]);
    [n_extra > 0] requires [n_fsm >= 1]. *)

val fifo : name:string -> ?depth:int -> ?width:int -> unit -> leaf
(** Parity-protected queue: [depth] (a power of two, default 4) data slots
    each holding a [width]-bit-payload (default 4) odd-parity codeword,
    parity-protected read/write
    pointers and occupancy counter, FULL/EMPTY flags, and a three-group
    hardware-error report (data slots / control / input). The P3 extras
    assert the queue-control invariants (occupancy range, flag
    consistency). *)

val ecc_reg :
  name:string -> ?data_width:int -> unit -> Rtl.Mdl.t * (string * Psl.Ast.fl) list
(** SECDED-protected configuration register — the upgrade path beyond the
    paper's parity-only protection. Writes encode the payload with an
    extended Hamming code; a write-path error injector XORs an arbitrary
    corruption mask into the stored codeword; golden shadow registers track
    the intended payload and the applied mask. Returns the module and its
    correctness properties:

    - a zero or one-bit corruption never changes the decoded output
      (single-error correction);
    - a one-bit corruption raises CE, a two-bit corruption raises UE
      (detection flags);
    - with injection disabled neither flag ever rises.

    The module has no odd-parity entities, so it sits outside the
    stereotype-property generator; its properties are checked directly with
    {!Mc.Engine.check_property}. *)

val ballast : name:string -> ?stages:int -> ?width:int -> unit -> Rtl.Mdl.t
(** Plain (non-parity-protected) background compute logic — the bulk of a
    real category's area. Ballast modules have no integrity entities, so the
    methodology excludes them from formal verification (the paper's "a leaf
    module can be excluded if it has no internal state and no data paths
    with parity protection"); they only weigh in the area and timing
    accounting of Tables 1 and 4. *)

val property_counts : leaf -> int * int * int * int
(** [(p0, p1, p2, p3)] that {!Verifiable.Propgen} will generate for this
    leaf once transformed. *)
