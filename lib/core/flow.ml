type release = {
  info : Verifiable.Transform.info;
  spec : Verifiable.Propgen.spec;
  vunits : (Verifiable.Propgen.prop_class * Psl.Ast.vunit) list;
  psl_text : string;
}

let release_verifiable_rtl mdl ~spec =
  let design = Rtl.Design.of_modules [ mdl ] in
  match Rtl.Check.check_module design mdl with
  | _ :: _ as issues -> Error issues
  | [] ->
    let info = Verifiable.Transform.apply mdl in
    let vunits = Verifiable.Propgen.all info spec in
    let psl_text =
      String.concat "\n"
        (List.map (fun (_, v) -> Psl.Print.vunit_to_string v) vunits)
    in
    Ok { info; spec; vunits; psl_text }

let release_verifiable_rtl_auto mdl =
  match Verifiable.Spec_infer.infer mdl with
  | Ok spec -> release_verifiable_rtl mdl ~spec
  | Error msg ->
    Error
      [ { Rtl.Check.where = mdl.Rtl.Mdl.name;
          what = "specification inference failed: " ^ msg } ]

type feedback = {
  prop_name : string;
  cls : Verifiable.Propgen.prop_class;
  outcome : Mc.Engine.outcome;
}

let verify_release ?budget ?strategy release =
  List.concat_map
    (fun (cls, vunit) ->
      List.map
        (fun (prop_name, outcome) -> { prop_name; cls; outcome })
        (Mc.Engine.check_vunit ?budget ?strategy release.info.Verifiable.Transform.mdl
           vunit))
    release.vunits

let failures feedback =
  List.filter
    (fun f ->
      match f.outcome.Mc.Engine.verdict with
      | Mc.Engine.Failed _ -> true
      | Mc.Engine.Proved | Mc.Engine.Proved_bounded _
      | Mc.Engine.Resource_out _ | Mc.Engine.Error _ ->
        false)
    feedback

let pp_feedback ppf f =
  let verdict =
    match f.outcome.Mc.Engine.verdict with
    | Mc.Engine.Proved -> "proved"
    | Mc.Engine.Proved_bounded d -> Printf.sprintf "no violation up to %d" d
    | Mc.Engine.Failed _ -> "FAILED"
    | Mc.Engine.Resource_out msg -> "resource out: " ^ msg
    | Mc.Engine.Error msg -> "engine error: " ^ msg
  in
  Format.fprintf ppf "%-28s [%s] %s (%s, %.3fs)" f.prop_name
    (Verifiable.Propgen.class_name f.cls)
    verdict f.outcome.Mc.Engine.engine_used f.outcome.Mc.Engine.time_s
