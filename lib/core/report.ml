module G = Chip.Generator

let table1 (chip : G.t) =
  let gates = Synth.Area.gates_estimate chip.G.design ~root:chip.G.chip_top in
  let mgates = float_of_int gates /. 1.0e6 in
  [ ("Chip die size", "12.8 x 12.5 mm2 (process target, as published)");
    ("Technology", "0.11 um CMOS ASIC (modeled gate library)");
    ("Logic size", Printf.sprintf "%.1fM gates (measured: %d GE)" mgates gates);
    ("Core frequency", "250MHz (timing target)") ]

let pp_table1 ppf rows =
  Format.fprintf ppf "Item            Implementation@.";
  List.iter (fun (k, v) -> Format.fprintf ppf "%-15s %s@." k v) rows

type area_row = { cat : string; base_ge : float; ver_ge : float; increase_pct : float }

let table4 (chip : G.t) =
  List.map
    (fun (c : G.category) ->
      let ver_ge = Synth.Area.hierarchy_area chip.G.design ~root:c.G.top in
      let base_ge = Synth.Area.hierarchy_area chip.G.base_design ~root:c.G.top in
      { cat = c.G.cat_name; base_ge; ver_ge;
        increase_pct = Synth.Area.increase_percent ~base:base_ge ~with_feature:ver_ge })
    chip.G.categories

let pp_table4 ppf rows =
  Format.fprintf ppf "Module Name   Area Increase@.";
  List.iter
    (fun r -> Format.fprintf ppf "%-13s %.1f %%@." r.cat r.increase_pct)
    rows

type timing = {
  base_path_ps : float;
  ver_path_ps : float;
  selector_delay_ps : float;
  period_ps : float;
  selector_pct_of_path : float;
  meets_timing : bool;
}

let elaborate_alone (m : Rtl.Mdl.t) =
  Rtl.Elaborate.run (Rtl.Design.of_modules [ m ]) ~top:m.Rtl.Mdl.name

let timing_impact (chip : G.t) =
  let _, alu = G.find_unit chip Chip.Bugs.B4 in
  let base_nl = elaborate_alone alu.G.leaf.Chip.Archetype.mdl in
  let ver_nl = elaborate_alone alu.G.info.Verifiable.Transform.mdl in
  let base = Synth.Timing.analyze base_nl in
  let ver = Synth.Timing.analyze ver_nl in
  let period_ps = ver.Synth.Timing.period_ps in
  { base_path_ps = base.Synth.Timing.critical_path_ps;
    ver_path_ps = ver.Synth.Timing.critical_path_ps;
    selector_delay_ps = Synth.Timing.selector_delay_ps; period_ps;
    selector_pct_of_path = Synth.Timing.selector_delay_ps /. period_ps *. 100.0;
    meets_timing = ver.Synth.Timing.critical_path_ps <= period_ps }

let pp_timing ppf t =
  Format.fprintf ppf
    "selector delay: %.0f ps (%.1f%% of the %.0f ps cycle at 250MHz)@."
    t.selector_delay_ps t.selector_pct_of_path t.period_ps;
  Format.fprintf ppf
    "critical path: %.0f ps without injection, %.0f ps with injection@."
    t.base_path_ps t.ver_path_ps;
  Format.fprintf ppf "timing closure at 250MHz: %s@."
    (if t.meets_timing then "met (no issue, as in the paper)" else "VIOLATED")

type fig7_outcome = {
  piece : string;
  verdict : string;
  engine : string;
  state_bits : int;
  work_nodes : int;
  time_s : float;
}

let verdict_string = function
  | Mc.Engine.Proved -> "proved"
  | Mc.Engine.Proved_bounded d -> Printf.sprintf "no violation up to %d" d
  | Mc.Engine.Failed _ -> "FAILED"
  | Mc.Engine.Resource_out msg -> "time-out (" ^ msg ^ ")"
  | Mc.Engine.Error msg -> "ERROR (" ^ msg ^ ")"

let check_piece ~budget ~piece mdl vunit =
  match Psl.Ast.asserts vunit with
  | [ (_, assert_) ] ->
    let assumes = List.map snd (Psl.Ast.assumes vunit) in
    let state_bits, _ = Mc.Engine.problem_size mdl ~assert_ ~assumes in
    let o =
      Mc.Engine.check_property ~budget ~strategy:Mc.Engine.Bdd_forward mdl
        ~assert_ ~assumes
    in
    { piece; verdict = verdict_string o.Mc.Engine.verdict;
      engine = o.Mc.Engine.engine_used; state_bits;
      work_nodes = o.Mc.Engine.work_nodes; time_s = o.Mc.Engine.time_s }
  | _ -> invalid_arg "Report.fig7: expected a single assert"

let fig7 ?(payload_width = 16) ?(node_limit = 300_000) () =
  let leaf = Chip.Archetype.merge ~name:"fig7_merge" ~payload_width () in
  let info = Verifiable.Transform.apply leaf.Chip.Archetype.mdl in
  let spec =
    { Verifiable.Propgen.he = leaf.Chip.Archetype.he;
      he_map = leaf.Chip.Archetype.he_map;
      parity_inputs = leaf.Chip.Archetype.parity_inputs;
      parity_outputs = leaf.Chip.Archetype.parity_outputs;
      extra = [] }
  in
  let plan =
    Verifiable.Partition.partition info spec ~output:"OUT"
      ~cuts:[ "chk0"; "chk1"; "chk2" ]
  in
  let budget =
    { Mc.Engine.default_budget with
      Mc.Engine.bdd_node_limit = Some node_limit }
  in
  let monolithic =
    check_piece ~budget ~piece:"integrity of D (monolithic)"
      info.Verifiable.Transform.mdl plan.Verifiable.Partition.original
  in
  let subs =
    List.map
      (fun (cut, vunit) ->
        check_piece ~budget
          ~piece:(Printf.sprintf "integrity of %s (sub-property)" cut)
          info.Verifiable.Transform.mdl vunit)
      plan.Verifiable.Partition.sub_vunits
  in
  let final =
    check_piece ~budget ~piece:"integrity of D (from cut points)"
      plan.Verifiable.Partition.cut_mdl plan.Verifiable.Partition.final_vunit
  in
  monolithic :: (subs @ [ final ])

let pp_fig7 ppf rows =
  Format.fprintf ppf
    "Piece                             Verdict                 State  Nodes     Time@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-33s %-23s %-6d %-9d %.2fs@." r.piece r.verdict
        r.state_bits r.work_nodes r.time_s)
    rows
