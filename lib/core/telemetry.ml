(* Re-export so campaign users can say [Core.Telemetry] without depending on
   the obs library path directly. *)
include Obs.Telemetry
