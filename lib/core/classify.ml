module PG = Verifiable.Propgen
module G = Chip.Generator
module T = Verifiable.Transform

type result = {
  bug : Chip.Bugs.id;
  module_name : string;
  prop_name : string option;
  observed_cls : PG.prop_class option;
  formal_found : bool;
  formal_time_s : float;
  trace_len : int option;
  sim_runs : int;
  sim_found_runs : int;
  sim_first_fire : int option;
  sim_easy : bool;
  expected_cls : PG.prop_class;
  expected_easy : bool;
}

(* the first failing assert of the unit, searching the expected class first *)
let find_failing ?budget (u : G.unit_) expected_cls =
  let vunits = PG.all u.G.info u.G.spec in
  let ordered =
    List.filter (fun (c, _) -> c = expected_cls) vunits
    @ List.filter (fun (c, _) -> c <> expected_cls) vunits
  in
  let rec scan = function
    | [] -> None
    | (cls, vunit) :: rest ->
      let outcomes = Mc.Engine.check_vunit ?budget u.G.info.T.mdl vunit in
      let failing =
        List.find_opt
          (fun (_, (o : Mc.Engine.outcome)) ->
            match o.Mc.Engine.verdict with
            | Mc.Engine.Failed _ -> true
            | Mc.Engine.Proved | Mc.Engine.Proved_bounded _
            | Mc.Engine.Resource_out _ | Mc.Engine.Error _ ->
              false)
          outcomes
      in
      (match failing with
       | Some (name, outcome) -> Some (cls, vunit, name, outcome)
       | None -> scan rest)
  in
  scan ordered

(* stimulus for one property: legal parity codewords and testbench models;
   error-injection inputs are exercised only for P0 properties *)
let profile_for (u : G.unit_) cls nl =
  let overrides = u.G.leaf.Chip.Archetype.sim_overrides in
  let parity_inputs = u.G.spec.PG.parity_inputs in
  match cls with
  | PG.P0 ->
    let ec = u.G.info.T.ec_port and ed = u.G.info.T.ed_port in
    let ec_width = Rtl.Netlist.signal_width nl ec in
    let ed_width = Rtl.Netlist.signal_width nl ed in
    let ec_gen st =
      Bitvec.init ec_width (fun _ -> Random.State.float st 1.0 < 0.2)
    in
    Sim.Stimulus.legal_profile ~parity_inputs
      ~overrides:(overrides @ [ (ec, ec_gen); (ed, Sim.Stimulus.uniform ed_width) ])
      nl
  | PG.P1 | PG.P2 | PG.P3 ->
    Sim.Stimulus.legal_profile ~parity_inputs ~overrides nl

let simulate_property (u : G.unit_) cls vunit prop_name ~cycles ~seeds =
  let assert_ = Psl.Ast.property vunit prop_name in
  let assumes = List.map snd (Psl.Ast.assumes vunit) in
  let inst =
    Psl.Monitor.instrument u.G.info.T.mdl ~prefix:"simmon" ~assert_ ~assumes
  in
  let design = Rtl.Design.of_modules [ inst.Psl.Monitor.mdl ] in
  let nl = Rtl.Elaborate.run design ~top:inst.Psl.Monitor.mdl.Rtl.Mdl.name in
  let sim = Sim.Simulator.create nl in
  let profile = profile_for u cls nl in
  let runs =
    List.map
      (fun seed ->
        Sim.Testbench.run_random sim profile ~cycles ~seed
          ~watch:[ inst.Psl.Monitor.fail_signal ])
      seeds
  in
  let found_runs =
    List.length
      (List.filter (fun r -> Sim.Testbench.fired r inst.Psl.Monitor.fail_signal) runs)
  in
  let first_fire =
    List.fold_left
      (fun acc r ->
        match Sim.Testbench.first_fire r inst.Psl.Monitor.fail_signal with
        | Some c -> ( match acc with Some b -> Some (min b c) | None -> Some c)
        | None -> acc)
      None runs
  in
  (found_runs, first_fire)

let run ?budget ?(cycles = 10_000) ?(seeds = [ 11; 23; 37; 58; 71 ]) (chip : G.t) =
  List.map
    (fun bug ->
      let _cat, u = G.find_unit chip bug in
      let module_name = u.G.info.T.mdl.Rtl.Mdl.name in
      let expected_cls = Chip.Bugs.property_class bug in
      let expected_easy = Chip.Bugs.expected_sim_easy bug in
      match find_failing ?budget u expected_cls with
      | None ->
        { bug; module_name; prop_name = None; observed_cls = None;
          formal_found = false; formal_time_s = 0.0; trace_len = None;
          sim_runs = List.length seeds; sim_found_runs = 0;
          sim_first_fire = None; sim_easy = false; expected_cls;
          expected_easy }
      | Some (cls, vunit, prop_name, outcome) ->
        let trace_len =
          match outcome.Mc.Engine.verdict with
          | Mc.Engine.Failed trace -> Some (Mc.Trace.length trace)
          | Mc.Engine.Proved | Mc.Engine.Proved_bounded _
          | Mc.Engine.Resource_out _ | Mc.Engine.Error _ ->
            None
        in
        let sim_found_runs, sim_first_fire =
          simulate_property u cls vunit prop_name ~cycles ~seeds
        in
        { bug; module_name; prop_name = Some prop_name;
          observed_cls = Some cls; formal_found = true;
          formal_time_s = outcome.Mc.Engine.time_s; trace_len;
          sim_runs = List.length seeds; sim_found_runs; sim_first_fire;
          sim_easy = 2 * sim_found_runs >= List.length seeds; expected_cls;
          expected_easy })
    Chip.Bugs.all

let pp_table3 ppf results =
  Format.fprintf ppf
    "Defect  Type of Property                 Found easily by simulation?@.";
  List.iter
    (fun r ->
      let cls =
        match r.observed_cls with
        | Some c -> PG.class_name c
        | None -> "(not exposed)"
      in
      let sim =
        if r.sim_easy then
          Printf.sprintf "Yes (%d/%d runs, first at cycle %s)" r.sim_found_runs
            r.sim_runs
            (match r.sim_first_fire with
             | Some c -> string_of_int c
             | None -> "-")
        else
          Printf.sprintf "No  (%d/%d runs)" r.sim_found_runs r.sim_runs
      in
      Format.fprintf ppf "%-7s %-32s %s@."
        (Chip.Bugs.name r.bug)
        cls sim)
    results
