type snapshot = (string * Bitvec.t) list

type run = {
  snapshots : snapshot list;
  ok_values : bool list;
  constraint_clean : bool;
  fail_cycle : int option;
}

let run ?(capture = true) ?(defaults = []) ?constraint_signal nl ~ok_signal
    stimulus =
  Obs.Telemetry.count "diag.replays";
  let sim = Sim.Simulator.create nl in
  Sim.Simulator.reset sim;
  let signals = Rtl.Netlist.signals nl in
  let inputs = nl.Rtl.Netlist.inputs in
  let snapshots = ref [] in
  let oks = ref [] in
  let clean = ref true in
  let fail_cycle = ref None in
  List.iteri
    (fun j cycle_inputs ->
      (* every netlist input is driven each cycle: the stimulus value when it
         has one, the caller's default for that input when it supplies one
         (e.g. an odd-parity constant for a parity-assumed input), zero
         otherwise (inputs the reduced engine model pruned) *)
      List.iter
        (fun (name, w) ->
          let v =
            match List.assoc_opt name cycle_inputs with
            | Some v -> v
            | None -> (
              match List.assoc_opt name defaults with
              | Some v -> v
              | None -> Bitvec.zero w)
          in
          Sim.Simulator.drive sim name v)
        inputs;
      Sim.Simulator.settle sim;
      let ok = Sim.Simulator.peek_bit sim ok_signal in
      let con =
        match constraint_signal with
        | None -> true
        | Some c -> Sim.Simulator.peek_bit sim c
      in
      clean := !clean && con;
      if !clean && (not ok) && !fail_cycle = None then fail_cycle := Some j;
      oks := ok :: !oks;
      if capture then
        snapshots :=
          List.map (fun (name, _) -> (name, Sim.Simulator.peek sim name))
            signals
          :: !snapshots;
      Sim.Simulator.clock sim)
    stimulus;
  { snapshots = List.rev !snapshots;
    ok_values = List.rev !oks;
    constraint_clean = !clean;
    fail_cycle = !fail_cycle }

let fails r = r.fail_cycle <> None

let validate trace r =
  let n = Mc.Trace.length trace in
  if List.length r.snapshots < n then
    Error "replay was not captured over the whole trace"
  else if not r.constraint_clean then
    Error "replay violates an input-invariant assumption the engine obeyed"
  else
    match List.nth_opt r.ok_values (n - 1) with
    | None -> Error "empty trace"
    | Some true ->
      Error
        (Printf.sprintf
           "simulator does not reproduce the violation at cycle %d" (n - 1))
    | Some false ->
      (* the violation replays; now check the engine's recorded register
         values against the simulated machine, cycle by cycle *)
      let disagreement = ref None in
      List.iteri
        (fun j (c : Mc.Trace.cycle) ->
          if !disagreement = None then
            let snap = List.nth r.snapshots j in
            List.iter
              (fun (name, v) ->
                if !disagreement = None then
                  match List.assoc_opt name snap with
                  | None ->
                    disagreement :=
                      Some
                        (Printf.sprintf
                           "cycle %d: register %s absent from replay model" j
                           name)
                  | Some v' ->
                    if not (Bitvec.equal v v') then
                      disagreement :=
                        Some
                          (Printf.sprintf
                             "cycle %d: register %s is %s in the trace but \
                              %s in the replay"
                             j name (Bitvec.to_string v) (Bitvec.to_string v')))
              c.Mc.Trace.state)
        trace;
      (match !disagreement with None -> Ok () | Some msg -> Error msg)
