module PG = Verifiable.Propgen
module G = Chip.Generator

type prop_result = {
  category : string;
  module_name : string;
  vunit_name : string;
  prop_name : string;
  cls : PG.prop_class;
  outcome : Mc.Engine.outcome;
  bug : Chip.Bugs.id option;
  cache_hit : bool;
  replayed : bool;
  attempts : int;
  healed : bool;
}

type row = {
  cat : string;
  subs : int;
  bugs_found : int;
  p0 : int;
  p1 : int;
  p2 : int;
  p3 : int;
  total : int;
  proved : int;
  failed : int;
  resource_out : int;
  errors : int;
  time_s : float;
}

type progress = {
  done_ : int;
  total : int;
  retries : int;
  cache_hits : int;
  replayed : int;
}

type heal_totals = {
  heal_attempted : int;
  heal_recovered : int;
  heal_proved : int;
  heal_failed : int;
  heal_exhausted : int;
  heal_unhealable : int;
  heal_spurious : int;
  heal_cegar_iters : int;
  heal_subs_proved : int;
  heal_bad_cuts : int;
  heal_pieces : int;
  heal_wall_s : float;
}

type t = {
  results : prop_result list;
  rows : row list;
  grand_total : row;
  wall_time_s : float;
  cache_hits : int;
  retries : int;
  replayed : int;
  healing : heal_totals option;
}

type work = {
  w_category : string;
  w_mdl : Rtl.Mdl.t;
  w_vunit_name : string;
  w_prop_name : string;
  w_assert : Psl.Ast.fl;
  w_assumes : Psl.Ast.fl list;
  w_cls : PG.prop_class;
  w_bug : Chip.Bugs.id option;
}

let work_items (chip : G.t) =
  List.concat_map
    (fun (c : G.category) ->
      List.concat_map
        (fun (u : G.unit_) ->
          List.concat_map
            (fun (cls, (vunit : Psl.Ast.vunit)) ->
              let assumes = List.map snd (Psl.Ast.assumes vunit) in
              List.map
                (fun (prop_name, assert_) ->
                  { w_category = c.G.cat_name;
                    w_mdl = u.G.info.Verifiable.Transform.mdl;
                    w_vunit_name = vunit.Psl.Ast.vunit_name;
                    w_prop_name = prop_name; w_assert = assert_;
                    w_assumes = assumes; w_cls = cls;
                    w_bug = u.G.leaf.Chip.Archetype.bug })
                (Psl.Ast.asserts vunit))
            (PG.all u.G.info u.G.spec))
        c.G.units)
    chip.G.categories

(* a captured worker crash, rendered as a verdict so it can flow through
   Table 2 and the CSV like any other outcome *)
let crash_outcome exn =
  { Mc.Engine.verdict = Mc.Engine.Error (Printexc.to_string exn);
    engine_used = "crash"; time_s = 0.0; iterations = 0; work_nodes = 0;
    perf = Mc.Engine.empty_perf }

(* the status/flight vocabulary for a verdict: class for tallies, short
   string for flight-recorder event details *)
let verdict_class (o : Mc.Engine.outcome) : Status.verdict_class =
  match o.Mc.Engine.verdict with
  | Mc.Engine.Proved | Mc.Engine.Proved_bounded _ -> `Proved
  | Mc.Engine.Failed _ -> `Failed
  | Mc.Engine.Resource_out _ -> `Resource_out
  | Mc.Engine.Error _ -> `Error

let verdict_str (o : Mc.Engine.outcome) =
  match o.Mc.Engine.verdict with
  | Mc.Engine.Proved -> "proved"
  | Mc.Engine.Proved_bounded d -> Printf.sprintf "bounded:%d" d
  | Mc.Engine.Failed _ -> "failed"
  | Mc.Engine.Resource_out c -> "resource_out:" ^ c
  | Mc.Engine.Error _ -> "error"

let run ?budget ?strategy ?portfolio ?(progress = fun (_ : progress) -> ())
    ?jobs ?race_jobs ?cache ?journal ?(max_retries = 2)
    ?(retry_backoff_s = 0.05) ?fault_hook ?self_heal ?status (chip : G.t) =
  let t0 = Unix.gettimeofday () in
  let cache = match cache with Some c -> c | None -> Mc.Cache.create () in
  let hits0 = Mc.Cache.hits cache in
  let items = Array.of_list (work_items chip) in
  let total = Array.length items in
  (* a portfolio is just a strategy; the fingerprint salt covers its members
     and budgets, so the cache/journal key is the same whether the members
     are then raced on a pool or laddered sequentially *)
  let strategy =
    match portfolio with
    | Some p -> Some (Mc.Engine.Portfolio p)
    | None -> strategy
  in
  let exec = Executor.of_jobs jobs in
  let use_racing = portfolio <> None && Executor.jobs exec > 1 in
  (* Shared preparation: the P0/P1/P2 obligations of one module differ only
     in their monitor cone, so the module-level work (inliner tables, the
     pruner's elaboration, monitor weaving, the full elaborate) runs once
     per module via {!Mc.Engine.prepare_module} and each obligation picks up
     its own cone-reduced netlist. One cell per module, guarded by its own
     mutex: the first worker to reach the module prepares for all of them,
     siblings block briefly and reuse — whichever executor path (sequential,
     pool, racing) gets there first. A crash during preparation leaves the
     cell empty, so a retrying sibling re-prepares instead of inheriting a
     poisoned table. *)
  let module_props : (string, (string * Psl.Ast.fl * Psl.Ast.fl list) list)
      Hashtbl.t =
    Hashtbl.create 64
  in
  let prep_cells = Hashtbl.create 64 in
  let prop_key (w : work) = w.w_vunit_name ^ "/" ^ w.w_prop_name in
  Array.iter
    (fun w ->
      let mname = w.w_mdl.Rtl.Mdl.name in
      let prev =
        match Hashtbl.find_opt module_props mname with
        | Some l -> l
        | None ->
          Hashtbl.add prep_cells mname (Mutex.create (), ref None);
          []
      in
      Hashtbl.replace module_props mname
        (prev @ [ (prop_key w, w.w_assert, w.w_assumes) ]))
    items;
  let prepare_shared (w : work) =
    let mname = w.w_mdl.Rtl.Mdl.name in
    let lock, cell = Hashtbl.find prep_cells mname in
    Mutex.lock lock;
    let table =
      Fun.protect ~finally:(fun () -> Mutex.unlock lock) @@ fun () ->
      match !cell with
      | Some tbl -> tbl
      | None ->
        let tbl =
          Obs.Telemetry.span ~cat:"obligation"
            ~args:[ ("module", mname) ]
            (mname ^ ".prepare")
            (fun () ->
              Mc.Engine.prepare_module w.w_mdl
                ~props:(Hashtbl.find module_props mname))
        in
        cell := Some tbl;
        tbl
    in
    Mc.Obligation.of_prepared ?budget ?strategy
      (List.assoc (prop_key w) table)
      ~meta:()
  in
  let stat f = match status with Some s -> f s | None -> () in
  let strat_name =
    match strategy with
    | Some s -> Mc.Engine.strategy_name s
    | None -> "auto"
  in
  stat (fun s ->
      Status.set_total s total;
      Status.set_phase s "campaign");
  let done_ = ref 0 and retries_n = ref 0 and hits_n = ref 0
  and replayed_n = ref 0 in
  let progress_lock = Mutex.create () in
  let note_retry () =
    Mutex.lock progress_lock;
    incr retries_n;
    Mutex.unlock progress_lock
  in
  let fault (w : work) ~fingerprint attempt =
    match fault_hook with
    | Some f ->
      f ~module_name:w.w_mdl.Rtl.Mdl.name ~prop_name:w.w_prop_name
        ~fingerprint ~attempt
    | None -> ()
  in
  let record ~key outcome =
    (* checkpoint + cache under the ORIGINAL fingerprint even when a retry
       ran with a degraded budget: the obligation answered is the same one.
       Error verdicts are recorded in neither, so a transient crash can
       poison neither structurally identical siblings nor a resumed run. *)
    match outcome.Mc.Engine.verdict with
    | Mc.Engine.Error _ -> ()
    | _ ->
      Mc.Cache.add cache ~key outcome;
      Option.iter (fun j -> Journal.append j ~key outcome) journal
  in
  let finish (w : work) ~cache_hit ~replayed ~attempts outcome =
    let ob_name = w.w_mdl.Rtl.Mdl.name ^ "." ^ w.w_prop_name in
    let healed =
      String.equal outcome.Mc.Engine.engine_used Heal.engine_name
      && Mc.Engine.conclusive outcome
    in
    Obs.Flight.record "ob.done"
      ~detail:
        (ob_name ^ " " ^ verdict_str outcome ^ " "
        ^ outcome.Mc.Engine.engine_used);
    Mc.Beacon.idle ();
    stat (fun s ->
        Status.finish s ~verdict:(verdict_class outcome) ~cache_hit ~replayed
          ~raced:(use_racing && (not cache_hit) && (not replayed)
                  && attempts > 0)
          ~healed);
    Mutex.lock progress_lock;
    incr done_;
    if cache_hit then incr hits_n;
    if replayed then incr replayed_n;
    let snap =
      { done_ = !done_; total; retries = !retries_n; cache_hits = !hits_n;
        replayed = !replayed_n }
    in
    (* the callback runs under the lock so user printf output stays whole *)
    (try progress snap
     with e ->
       Mutex.unlock progress_lock;
       raise e);
    Mutex.unlock progress_lock;
    { category = w.w_category; module_name = w.w_mdl.Rtl.Mdl.name;
      vunit_name = w.w_vunit_name; prop_name = w.w_prop_name; cls = w.w_cls;
      outcome; bug = w.w_bug; cache_hit; replayed; attempts;
      (* a resumed run replays a previously healed verdict straight from the
         journal; the attribution marks it *)
      healed }
  in
  let check_body (w : work) =
    let ob_name = w.w_mdl.Rtl.Mdl.name ^ "." ^ w.w_prop_name in
    stat (fun s ->
        Status.begin_work s ~obligation:ob_name ~engine:strat_name ~attempt:1);
    (* prepare inside the worker so instrumentation, elaboration and COI
       reduction parallelize along with the engine runs; the module-level
       half is shared across the module's obligations (see [prepare_shared]) *)
    let ob = prepare_shared w in
    let key = Mc.Obligation.fingerprint ob in
    let outcome, cache_hit, replayed, attempts =
      match Option.bind journal (fun j -> Journal.replay j ~key) with
      | Some outcome -> (outcome, false, true, 0)
      | None -> (
        match Mc.Cache.find cache ~key with
        | Some outcome ->
          (* re-journal cache hits: after a kill the in-memory cache is gone,
             so resume must be able to replay them from disk *)
          Option.iter (fun j -> Journal.append j ~key outcome) journal;
          (outcome, true, false, 0)
        | None ->
          (* retry ladder: a crash gets capped re-runs with a halved budget
             and exponential backoff; a crash on the last rung becomes an
             [Error] verdict instead of taking the campaign down *)
          let rec attempt ob n =
            if n > 1 then
              stat (fun s ->
                  Status.begin_work s ~obligation:ob_name ~engine:strat_name
                    ~attempt:n);
            (* the hook runs inside the match scrutinee: a fault it injects
               is indistinguishable from the engine itself crashing *)
            match
              fault w ~fingerprint:key n;
              Mc.Obligation.run ob
            with
            | outcome -> (outcome, n)
            | exception exn ->
              if n > max_retries then (crash_outcome exn, n)
              else begin
                note_retry ();
                stat Status.retry;
                Obs.Flight.record "ob.retry" ~detail:ob_name;
                if retry_backoff_s > 0.0 then
                  Unix.sleepf
                    (Float.min 1.0
                       (retry_backoff_s *. (2.0 ** float_of_int (n - 1))));
                attempt
                  { ob with
                    Mc.Obligation.budget =
                      Mc.Engine.degrade_budget ob.Mc.Obligation.budget }
                  (n + 1)
              end
          in
          let outcome, attempts = attempt ob 1 in
          record ~key outcome;
          (outcome, false, false, attempts))
    in
    finish w ~cache_hit ~replayed ~attempts outcome
  in
  let check (w : work) =
    Obs.Telemetry.span ~cat:"obligation"
      ~args:
        [ ("category", w.w_category); ("module", w.w_mdl.Rtl.Mdl.name);
          ("property", w.w_prop_name) ]
      (w.w_mdl.Rtl.Mdl.name ^ "." ^ w.w_prop_name)
      (fun () -> check_body w)
  in
  (* The racing path: preparation and cache/journal lookup happen when the
     scheduler opens the group; on a miss the portfolio members become the
     group's attempts, each a full engine run under its own member budget
     with the scheduler's cancellation hook (plus the obligation's wall
     deadline, fixed here at open — exactly where the sequential ladder
     fixes it) threaded into every engine loop. [Engine.combine_portfolio]
     folds the attributed prefix, so a raced group reports byte-identically
     to the same portfolio laddered on one domain. Member crashes become
     non-conclusive [Error] member outcomes — the race continues and the
     sibling verdicts still decide the obligation. *)
  let open_group (w : work) =
    Obs.Telemetry.span ~cat:"obligation"
      ~args:
        [ ("category", w.w_category); ("module", w.w_mdl.Rtl.Mdl.name);
          ("property", w.w_prop_name) ]
      (w.w_mdl.Rtl.Mdl.name ^ "." ^ w.w_prop_name ^ ".open")
    @@ fun () ->
    let ob = prepare_shared w in
    let key = Mc.Obligation.fingerprint ob in
    match Option.bind journal (fun j -> Journal.replay j ~key) with
    | Some outcome ->
      Executor.Done
        (finish w ~cache_hit:false ~replayed:true ~attempts:0 outcome)
    | None -> (
      match Mc.Cache.find cache ~key with
      | Some outcome ->
        Option.iter (fun j -> Journal.append j ~key outcome) journal;
        Executor.Done
          (finish w ~cache_hit:true ~replayed:false ~attempts:0 outcome)
      | None ->
        let members =
          match ob.Mc.Obligation.strategy with
          | Mc.Engine.Portfolio p -> Array.of_list p.Mc.Engine.p_members
          | _ -> assert false (* racing is only entered with a portfolio *)
        in
        let outer =
          Mc.Deadline.of_budget
            ob.Mc.Obligation.budget.Mc.Engine.wall_deadline_s
        in
        Executor.Race
          { attempts = Array.length members;
            run =
              (fun k ~cancel ->
                let m = members.(k) in
                let mname = Mc.Engine.strategy_name m.Mc.Engine.m_strategy in
                let ob_name = w.w_mdl.Rtl.Mdl.name ^ "." ^ w.w_prop_name in
                stat (fun s ->
                    Status.begin_work s ~obligation:ob_name ~engine:mname
                      ~attempt:(k + 1));
                let out =
                  Obs.Telemetry.span ~cat:"race"
                    ~args:
                      [ ("member", mname);
                        ("module", w.w_mdl.Rtl.Mdl.name);
                        ("property", w.w_prop_name) ]
                    (ob_name ^ "#" ^ mname)
                  @@ fun () ->
                  match
                    fault w ~fingerprint:key (k + 1);
                    Mc.Engine.check_netlist ~budget:m.Mc.Engine.m_budget
                      ?constraint_signal:ob.Mc.Obligation.constraint_signal
                      ~cancel:(fun () ->
                        cancel () || Mc.Deadline.expired outer)
                      ~strategy:m.Mc.Engine.m_strategy ob.Mc.Obligation.nl
                      ~ok_signal:ob.Mc.Obligation.ok_signal
                  with
                  | outcome -> outcome
                  | exception exn -> crash_outcome exn
                in
                Mc.Beacon.idle ();
                stat Status.end_work;
                Obs.Flight.record "race.member"
                  ~detail:(ob_name ^ "#" ^ mname ^ " " ^ verdict_str out);
                out);
            conclusive = Mc.Engine.conclusive;
            combine =
              (fun outs ->
                let outcome = Mc.Engine.combine_portfolio outs in
                if Obs.Telemetry.active () then begin
                  Obs.Telemetry.count
                    ("race.win." ^ outcome.Mc.Engine.engine_used);
                  Obs.Telemetry.count
                    ~n:(List.length outs - 1)
                    "race.losers"
                end;
                record ~key outcome;
                finish w ~cache_hit:false ~replayed:false ~attempts:1 outcome)
          })
  in
  let results =
    (* the executor's per-item isolation is the outer safety net: anything
       that escapes the retry ladder (a crash in prepare, a raising progress
       callback) still yields a row instead of losing the campaign *)
    (if use_racing then Executor.race_map_result exec ?race_jobs open_group items
     else Executor.map_result exec check items)
    |> Array.mapi (fun i -> function
         | Ok r -> r
         | Error exn ->
           let w = items.(i) in
           { category = w.w_category; module_name = w.w_mdl.Rtl.Mdl.name;
             vunit_name = w.w_vunit_name; prop_name = w.w_prop_name;
             cls = w.w_cls; outcome = crash_outcome exn; bug = w.w_bug;
             cache_hit = false; replayed = false; attempts = 0;
             healed = false })
    |> Array.to_list
  in
  (* Self-healing recovery pass: every obligation whose retry ladder ended
     in [Resource_out] gets one shot at the automatic Figure 7 loop
     ({!Heal.heal_one}). Pieces go through the same cache/journal machinery
     as first-class obligations under cut-salted fingerprints, and a healed
     verdict is checkpointed under the monolithic key — appended after the
     original resource-out record, so the journal's later-duplicate-wins
     replay hands a resumed run the healed outcome without re-proving
     anything. Healing an obligation is deterministic (pieces run
     sequentially inside its worker), so seq ≡ pool ≡ raced. *)
  let results, healing =
    match self_heal with
    | None -> (results, None)
    | Some max_iters ->
      let th0 = Unix.gettimeofday () in
      stat (fun s -> Status.set_phase s "healing");
      let arr = Array.of_list results in
      let ro_idx =
        Array.init (Array.length arr) Fun.id
        |> Array.to_list
        |> List.filter (fun i ->
               match arr.(i).outcome.Mc.Engine.verdict with
               | Mc.Engine.Resource_out _ -> true
               | Mc.Engine.Proved | Mc.Engine.Proved_bounded _
               | Mc.Engine.Failed _ | Mc.Engine.Error _ ->
                 false)
        |> Array.of_list
      in
      let run_piece (p : Heal.piece) =
        Obs.Telemetry.span ~cat:"heal"
          ~args:[ ("module", p.Heal.p_mdl.Rtl.Mdl.name);
                  ("salt", p.Heal.p_salt) ]
          p.Heal.p_label
        @@ fun () ->
        let ob =
          Mc.Obligation.prepare ?budget ?strategy p.Heal.p_mdl
            ~assert_:p.Heal.p_assert ~assumes:p.Heal.p_assumes ~meta:()
        in
        let key = Mc.Obligation.fingerprint ~salt:p.Heal.p_salt ob in
        match Option.bind journal (fun j -> Journal.replay j ~key) with
        | Some outcome ->
          Obs.Telemetry.count "heal.piece.replayed";
          outcome
        | None -> (
          match Mc.Cache.find cache ~key with
          | Some outcome ->
            Option.iter (fun j -> Journal.append j ~key outcome) journal;
            Obs.Telemetry.count "heal.piece.cached";
            outcome
          | None ->
            let outcome = Mc.Obligation.run ob in
            record ~key outcome;
            Obs.Telemetry.count "heal.piece.solved";
            outcome)
      in
      let heal_i i =
        let w = items.(i) in
        Obs.Telemetry.span ~cat:"heal"
          ~args:[ ("module", w.w_mdl.Rtl.Mdl.name);
                  ("property", w.w_prop_name) ]
          ("heal:" ^ w.w_mdl.Rtl.Mdl.name ^ "." ^ w.w_prop_name)
        @@ fun () ->
        let hr =
          Heal.heal_one ~max_iters ~run_piece ~mdl:w.w_mdl
            ~assert_:w.w_assert ~assumes:w.w_assumes ()
        in
        (match hr.Heal.h_outcome with
        | None -> ()
        | Some out ->
          (* checkpoint under the monolithic key — the shared prep cell is
             already warm from the main pass *)
          record ~key:(Mc.Obligation.fingerprint (prepare_shared w)) out;
          if Mc.Engine.conclusive out then
            Obs.Telemetry.count "heal.recovered");
        hr
      in
      let heal_outs = Executor.map_result exec heal_i ro_idx in
      let recovered = ref 0 and proved = ref 0 and failed = ref 0
      and exhausted = ref 0 and unhealable = ref 0 and spurious = ref 0
      and cegar = ref 0 and subs = ref 0 and bad = ref 0
      and pieces = ref 0 in
      Array.iteri
        (fun k res ->
          match res with
          | Error _ -> () (* a crash while healing keeps the original row *)
          | Ok hr ->
            spurious := !spurious + hr.Heal.h_spurious;
            cegar := !cegar + hr.Heal.h_finals;
            subs := !subs + hr.Heal.h_subs_proved;
            bad := !bad + hr.Heal.h_bad_cuts;
            pieces := !pieces + hr.Heal.h_pieces;
            let heal_name w =
              w.w_mdl.Rtl.Mdl.name ^ "." ^ w.w_prop_name
            in
            (match hr.Heal.h_outcome with
            | None ->
              Obs.Flight.record "heal.unhealable"
                ~detail:(heal_name items.(ro_idx.(k)));
              incr unhealable
            | Some out ->
              let i = ro_idx.(k) in
              stat (fun s -> Status.reclassify s ~to_:(verdict_class out));
              Obs.Flight.record
                (if Mc.Engine.conclusive out then "heal.recovered"
                 else "heal.exhausted")
                ~detail:(heal_name items.(i) ^ " " ^ verdict_str out);
              arr.(i) <-
                { (arr.(i)) with
                  outcome = out;
                  healed = Mc.Engine.conclusive out };
              (match out.Mc.Engine.verdict with
              | Mc.Engine.Proved ->
                incr recovered;
                incr proved
              | Mc.Engine.Failed _ ->
                incr recovered;
                incr failed
              | Mc.Engine.Proved_bounded _ ->
                incr recovered
              | Mc.Engine.Resource_out _ | Mc.Engine.Error _ ->
                incr exhausted)))
        heal_outs;
      ( Array.to_list arr,
        Some
          { heal_attempted = Array.length ro_idx;
            heal_recovered = !recovered; heal_proved = !proved;
            heal_failed = !failed; heal_exhausted = !exhausted;
            heal_unhealable = !unhealable; heal_spurious = !spurious;
            heal_cegar_iters = !cegar; heal_subs_proved = !subs;
            heal_bad_cuts = !bad; heal_pieces = !pieces;
            heal_wall_s = Unix.gettimeofday () -. th0 } )
  in
  let row_of cat subs cat_results =
    let by f = List.length (List.filter f cat_results) in
    let count_cls cls = by (fun r -> r.cls = cls) in
    let failed_modules =
      List.sort_uniq compare
        (List.filter_map
           (fun r ->
             match r.outcome.Mc.Engine.verdict with
             | Mc.Engine.Failed _ -> Some r.module_name
             | Mc.Engine.Proved | Mc.Engine.Proved_bounded _
             | Mc.Engine.Resource_out _ | Mc.Engine.Error _ ->
               None)
           cat_results)
    in
    (* B5/B6 live in separate decoder modules, so defects = defective
       modules here; the paper also counts defects *)
    { cat; subs; bugs_found = List.length failed_modules;
      p0 = count_cls PG.P0; p1 = count_cls PG.P1; p2 = count_cls PG.P2;
      p3 = count_cls PG.P3; total = List.length cat_results;
      proved =
        by (fun r ->
            match r.outcome.Mc.Engine.verdict with
            | Mc.Engine.Proved | Mc.Engine.Proved_bounded _ -> true
            | Mc.Engine.Failed _ | Mc.Engine.Resource_out _
            | Mc.Engine.Error _ ->
              false);
      failed =
        by (fun r ->
            match r.outcome.Mc.Engine.verdict with
            | Mc.Engine.Failed _ -> true
            | Mc.Engine.Proved | Mc.Engine.Proved_bounded _
            | Mc.Engine.Resource_out _ | Mc.Engine.Error _ ->
              false);
      resource_out =
        by (fun r ->
            match r.outcome.Mc.Engine.verdict with
            | Mc.Engine.Resource_out _ -> true
            | Mc.Engine.Proved | Mc.Engine.Proved_bounded _
            | Mc.Engine.Failed _ | Mc.Engine.Error _ ->
              false);
      errors =
        by (fun r ->
            match r.outcome.Mc.Engine.verdict with
            | Mc.Engine.Error _ -> true
            | Mc.Engine.Proved | Mc.Engine.Proved_bounded _
            | Mc.Engine.Failed _ | Mc.Engine.Resource_out _ ->
              false);
      time_s =
        List.fold_left (fun acc r -> acc +. r.outcome.Mc.Engine.time_s) 0.0
          cat_results }
  in
  let rows =
    List.map
      (fun (c : G.category) ->
        row_of c.G.cat_name (List.length c.G.units)
          (List.filter (fun r -> r.category = c.G.cat_name) results))
      chip.G.categories
  in
  let grand_total =
    { cat = "Total"; subs = List.fold_left (fun a r -> a + r.subs) 0 rows;
      bugs_found = List.fold_left (fun a r -> a + r.bugs_found) 0 rows;
      p0 = List.fold_left (fun a r -> a + r.p0) 0 rows;
      p1 = List.fold_left (fun a r -> a + r.p1) 0 rows;
      p2 = List.fold_left (fun a r -> a + r.p2) 0 rows;
      p3 = List.fold_left (fun a r -> a + r.p3) 0 rows;
      total = List.fold_left (fun a (r : row) -> a + r.total) 0 rows;
      proved = List.fold_left (fun a r -> a + r.proved) 0 rows;
      failed = List.fold_left (fun a r -> a + r.failed) 0 rows;
      resource_out = List.fold_left (fun a r -> a + r.resource_out) 0 rows;
      errors = List.fold_left (fun a r -> a + r.errors) 0 rows;
      time_s = List.fold_left (fun a r -> a +. r.time_s) 0.0 rows }
  in
  stat (fun s -> Status.set_phase s "done");
  { results; rows; grand_total; wall_time_s = Unix.gettimeofday () -. t0;
    cache_hits = Mc.Cache.hits cache - hits0; retries = !retries_n;
    replayed = !replayed_n; healing }

let failed_results t =
  List.filter
    (fun r ->
      match r.outcome.Mc.Engine.verdict with
      | Mc.Engine.Failed _ -> true
      | Mc.Engine.Proved | Mc.Engine.Proved_bounded _
      | Mc.Engine.Resource_out _ | Mc.Engine.Error _ ->
        false)
    t.results

(* Work totals over every result row — cached and replayed rows carry the
   perf of the run that produced them, so these totals do not depend on how
   the executor scheduled the campaign (unlike live sink counters, where a
   pool can run two structurally identical obligations concurrently and
   miss the cache twice). *)
type perf_totals = {
  engine_time_s : float;
  engine_attempts : int;
  fix_iterations : int;
  bdd_peak : int;
  peak_set_size : int;
  bdd_polls : int;
  sat_decisions : int;
  sat_conflicts : int;
  sat_propagations : int;
  sat_restarts : int;
  max_unroll_depth : int;
  max_final_k : int;
  max_ic3_frames : int;
}

let aggregate_perf t =
  List.fold_left
    (fun a r ->
      let p = r.outcome.Mc.Engine.perf in
      { engine_time_s = a.engine_time_s +. r.outcome.Mc.Engine.time_s;
        engine_attempts =
          a.engine_attempts + List.length p.Mc.Engine.attempts;
        fix_iterations = a.fix_iterations + p.Mc.Engine.fix_iterations;
        bdd_peak = max a.bdd_peak p.Mc.Engine.bdd_peak;
        peak_set_size = max a.peak_set_size p.Mc.Engine.peak_set_size;
        bdd_polls = a.bdd_polls + p.Mc.Engine.bdd_polls;
        sat_decisions = a.sat_decisions + p.Mc.Engine.sat_decisions;
        sat_conflicts = a.sat_conflicts + p.Mc.Engine.sat_conflicts;
        sat_propagations = a.sat_propagations + p.Mc.Engine.sat_propagations;
        sat_restarts = a.sat_restarts + p.Mc.Engine.sat_restarts;
        max_unroll_depth = max a.max_unroll_depth p.Mc.Engine.unroll_depth;
        max_final_k = max a.max_final_k p.Mc.Engine.final_k;
        max_ic3_frames = max a.max_ic3_frames p.Mc.Engine.ic3_frames })
    { engine_time_s = 0.0; engine_attempts = 0; fix_iterations = 0;
      bdd_peak = 0; peak_set_size = 0; bdd_polls = 0; sat_decisions = 0;
      sat_conflicts = 0; sat_propagations = 0; sat_restarts = 0;
      max_unroll_depth = -1; max_final_k = -1; max_ic3_frames = -1 }
    t.results

(* Results answered per winning engine, counted off the verdict-attributed
   [engine_used] of every row — cached and replayed rows carry the engine of
   the run that produced them, so like {!aggregate_perf} this is
   schedule-independent. *)
let wins_by_engine t =
  let tbl = Hashtbl.create 7 in
  List.iter
    (fun r ->
      let e = r.outcome.Mc.Engine.engine_used in
      Hashtbl.replace tbl e
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e)))
    t.results;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let resource_out_causes t =
  let tbl = Hashtbl.create 7 in
  List.iter
    (fun r ->
      match Mc.Engine.resource_cause r.outcome with
      | Some c ->
        Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c))
      | None -> ())
    t.results;
  (* canonical vocabulary order first, then any non-canonical stragglers
     alphabetically, so tallies line up across runs and schema consumers *)
  let rank c =
    let rec idx i = function
      | [] -> (1, c)
      | x :: _ when String.equal x c -> (0, Printf.sprintf "%02d" i)
      | _ :: tl -> idx (i + 1) tl
    in
    idx 0 Mc.Engine.ro_causes
  in
  List.sort
    (fun (a, _) (b, _) -> compare (rank a) (rank b))
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let to_metrics_json ?report ?jobs t =
  let module J = Obs.Json in
  let p = aggregate_perf t in
  let row_fields (r : row) =
    [ ("subs", J.Int r.subs); ("bugs_found", J.Int r.bugs_found);
      ("p0", J.Int r.p0); ("p1", J.Int r.p1); ("p2", J.Int r.p2);
      ("p3", J.Int r.p3); ("total", J.Int r.total);
      ("proved", J.Int r.proved); ("failed", J.Int r.failed);
      ("resource_out", J.Int r.resource_out); ("errors", J.Int r.errors);
      ("time_s", J.Float r.time_s) ]
  in
  let fields =
    [ ("schema", J.String "dicheck-metrics-v1");
      ("wall_time_s", J.Float t.wall_time_s) ]
    @ (match jobs with Some j -> [ ("jobs", J.Int j) ] | None -> [])
    @ [ ("totals",
         J.Obj
           (row_fields t.grand_total
           @ [ ("cache_hits", J.Int t.cache_hits);
               ("retries", J.Int t.retries);
               ("replayed", J.Int t.replayed) ]));
        ("resource_out_causes",
         J.Obj
           (List.map (fun (c, n) -> (c, J.Int n)) (resource_out_causes t)));
        ("perf",
         J.Obj
           [ ("engine_time_s", J.Float p.engine_time_s);
             ("engine_attempts", J.Int p.engine_attempts);
             ("fix_iterations", J.Int p.fix_iterations);
             ("bdd_peak", J.Int p.bdd_peak);
             ("peak_set_size", J.Int p.peak_set_size);
             ("bdd_polls", J.Int p.bdd_polls);
             ("sat_decisions", J.Int p.sat_decisions);
             ("sat_conflicts", J.Int p.sat_conflicts);
             ("sat_propagations", J.Int p.sat_propagations);
             ("sat_restarts", J.Int p.sat_restarts);
             ("max_unroll_depth", J.Int p.max_unroll_depth);
             ("max_final_k", J.Int p.max_final_k);
             ("max_ic3_frames", J.Int p.max_ic3_frames) ]);
        ("strategy_wins",
         J.Obj
           (List.map (fun (e, n) -> (e, J.Int n)) (wins_by_engine t))) ]
    @ (match t.healing with
      | None -> []
      | Some h ->
        [ ("recovery",
           J.Obj
             [ ("attempted", J.Int h.heal_attempted);
               ("recovered", J.Int h.heal_recovered);
               ("healed_proved", J.Int h.heal_proved);
               ("healed_failed", J.Int h.heal_failed);
               ("exhausted", J.Int h.heal_exhausted);
               ("unhealable", J.Int h.heal_unhealable);
               ("spurious_cex", J.Int h.heal_spurious);
               ("cegar_iters", J.Int h.heal_cegar_iters);
               ("subs_proved", J.Int h.heal_subs_proved);
               ("bad_cuts", J.Int h.heal_bad_cuts);
               ("pieces", J.Int h.heal_pieces);
               ("healed_rows",
                J.Int (List.length (List.filter (fun r -> r.healed) t.results)));
               ("wall_s", J.Float h.heal_wall_s) ]) ])
    @ [
        ("categories",
         J.Obj
           (List.map (fun (r : row) -> (r.cat, J.Obj (row_fields r)))
              t.rows)) ]
    @
    match report with
    | None -> []
    | Some rep ->
      [ ("counters",
         J.Obj
           (List.map
              (fun (k, v) -> (k, J.Int v))
              (List.sort compare rep.Obs.Telemetry.counters)));
        ("histograms",
         J.Obj
           (List.map
              (fun (k, h) ->
                ( k,
                  J.Obj
                    [ ("count", J.Int h.Obs.Telemetry.h_count);
                      ("sum", J.Float h.Obs.Telemetry.h_sum);
                      ("min", J.Float h.Obs.Telemetry.h_min);
                      ("max", J.Float h.Obs.Telemetry.h_max);
                      ("buckets",
                       J.List
                         (Array.to_list
                            (Array.map
                               (fun n -> J.Int n)
                               h.Obs.Telemetry.h_buckets))) ] ))
              rep.Obs.Telemetry.hists));
        ("recording_domains", J.Int rep.Obs.Telemetry.domains);
        ("spans", J.Int (List.length rep.Obs.Telemetry.spans)) ]
  in
  J.to_string_pretty (J.Obj fields)

let write_metrics_json ?report ?jobs t path =
  let oc = open_out path in
  (try output_string oc (to_metrics_json ?report ?jobs t)
   with e ->
     close_out oc;
     raise e);
  close_out oc

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "category,module,vunit,property,class,verdict,cause,engine,wall_ms,\
     iterations,bdd_peak,sat_conflicts,cache_hit,replayed,attempts,bug,\
     healed\n";
  List.iter
    (fun r ->
      let verdict, cause =
        match r.outcome.Mc.Engine.verdict with
        | Mc.Engine.Proved -> ("proved", "")
        | Mc.Engine.Proved_bounded d -> (Printf.sprintf "bounded:%d" d, "")
        | Mc.Engine.Failed _ -> ("failed", "")
        | Mc.Engine.Resource_out msg -> ("resource_out", msg)
        | Mc.Engine.Error msg ->
          (* commas would shift the columns; the message is free-form *)
          ("error",
           String.map (fun c -> if c = ',' then ';' else c) msg)
      in
      let p = r.outcome.Mc.Engine.perf in
      Buffer.add_string buf
        (Printf.sprintf
           "%s,%s,%s,%s,%s,%s,%s,%s,%.1f,%d,%d,%d,%b,%b,%d,%s,%b\n"
           r.category r.module_name r.vunit_name r.prop_name
           (Verifiable.Propgen.class_name r.cls)
           verdict cause r.outcome.Mc.Engine.engine_used
           (1000.0 *. r.outcome.Mc.Engine.time_s)
           r.outcome.Mc.Engine.iterations p.Mc.Engine.bdd_peak
           p.Mc.Engine.sat_conflicts r.cache_hit r.replayed r.attempts
           (match r.bug with Some b -> Chip.Bugs.name b | None -> "")
           r.healed))
    t.results;
  Buffer.contents buf

let write_csv t path =
  let oc = open_out path in
  (try output_string oc (to_csv t)
   with e ->
     close_out oc;
     raise e);
  close_out oc

let pp_table2 ppf t =
  Format.fprintf ppf
    "Module    # of   # of   P0     P1     P2     P3     Total  RO     Err    \
     Time(s)@.";
  Format.fprintf ppf
    "Name      Sub    Bug@.";
  let line (r : row) =
    Format.fprintf ppf
      "%-9s %-6d %-6d %-6d %-6d %-6d %-6d %-6d %-6d %-6d %.1f@."
      r.cat r.subs r.bugs_found r.p0 r.p1 r.p2 r.p3 r.total r.resource_out
      r.errors r.time_s
  in
  List.iter line t.rows;
  line t.grand_total;
  match resource_out_causes t with
  | [] -> ()
  | causes ->
    Format.fprintf ppf "resource-out causes:%t@." (fun ppf ->
        List.iter (fun (c, n) -> Format.fprintf ppf " %s=%d" c n) causes)
