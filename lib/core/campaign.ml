module PG = Verifiable.Propgen
module G = Chip.Generator

type prop_result = {
  category : string;
  module_name : string;
  vunit_name : string;
  prop_name : string;
  cls : PG.prop_class;
  outcome : Mc.Engine.outcome;
  bug : Chip.Bugs.id option;
  cache_hit : bool;
}

type row = {
  cat : string;
  subs : int;
  bugs_found : int;
  p0 : int;
  p1 : int;
  p2 : int;
  p3 : int;
  total : int;
  proved : int;
  failed : int;
  resource_out : int;
  time_s : float;
}

type t = {
  results : prop_result list;
  rows : row list;
  grand_total : row;
  wall_time_s : float;
  cache_hits : int;
}

(* one schedulable unit of campaign work: everything needed to prepare and
   run a single property check, plus its provenance *)
type work = {
  w_category : string;
  w_mdl : Rtl.Mdl.t;
  w_vunit_name : string;
  w_prop_name : string;
  w_assert : Psl.Ast.fl;
  w_assumes : Psl.Ast.fl list;
  w_cls : PG.prop_class;
  w_bug : Chip.Bugs.id option;
}

let work_items (chip : G.t) =
  List.concat_map
    (fun (c : G.category) ->
      List.concat_map
        (fun (u : G.unit_) ->
          List.concat_map
            (fun (cls, (vunit : Psl.Ast.vunit)) ->
              let assumes = List.map snd (Psl.Ast.assumes vunit) in
              List.map
                (fun (prop_name, assert_) ->
                  { w_category = c.G.cat_name;
                    w_mdl = u.G.info.Verifiable.Transform.mdl;
                    w_vunit_name = vunit.Psl.Ast.vunit_name;
                    w_prop_name = prop_name; w_assert = assert_;
                    w_assumes = assumes; w_cls = cls;
                    w_bug = u.G.leaf.Chip.Archetype.bug })
                (Psl.Ast.asserts vunit))
            (PG.all u.G.info u.G.spec))
        c.G.units)
    chip.G.categories

let run ?budget ?strategy ?(progress = fun ~done_:_ ~total:_ -> ()) ?jobs
    ?cache (chip : G.t) =
  let t0 = Unix.gettimeofday () in
  let cache = match cache with Some c -> c | None -> Mc.Cache.create () in
  let hits0 = Mc.Cache.hits cache in
  let items = Array.of_list (work_items chip) in
  let total = Array.length items in
  let done_ = ref 0 in
  let progress_lock = Mutex.create () in
  let check (w : work) =
    (* prepare inside the worker so instrumentation, elaboration and COI
       reduction parallelize along with the engine runs *)
    let ob =
      Mc.Obligation.prepare ?budget ?strategy w.w_mdl ~assert_:w.w_assert
        ~assumes:w.w_assumes ~meta:()
    in
    let outcome, cache_hit =
      Mc.Cache.find_or_run cache ~key:(Mc.Obligation.fingerprint ob)
        (fun () -> Mc.Obligation.run ob)
    in
    Mutex.lock progress_lock;
    incr done_;
    let d = !done_ in
    (* the callback runs under the lock so user printf output stays whole *)
    (try progress ~done_:d ~total
     with e ->
       Mutex.unlock progress_lock;
       raise e);
    Mutex.unlock progress_lock;
    { category = w.w_category; module_name = w.w_mdl.Rtl.Mdl.name;
      vunit_name = w.w_vunit_name; prop_name = w.w_prop_name; cls = w.w_cls;
      outcome; bug = w.w_bug; cache_hit }
  in
  let results =
    Array.to_list (Executor.map (Executor.of_jobs jobs) check items)
  in
  let row_of cat subs cat_results =
    let by f = List.length (List.filter f cat_results) in
    let count_cls cls = by (fun r -> r.cls = cls) in
    let failed_modules =
      List.sort_uniq compare
        (List.filter_map
           (fun r ->
             match r.outcome.Mc.Engine.verdict with
             | Mc.Engine.Failed _ -> Some r.module_name
             | Mc.Engine.Proved | Mc.Engine.Proved_bounded _
             | Mc.Engine.Resource_out _ ->
               None)
           cat_results)
    in
    (* B5/B6 live in separate decoder modules, so defects = defective
       modules here; the paper also counts defects *)
    { cat; subs; bugs_found = List.length failed_modules;
      p0 = count_cls PG.P0; p1 = count_cls PG.P1; p2 = count_cls PG.P2;
      p3 = count_cls PG.P3; total = List.length cat_results;
      proved =
        by (fun r ->
            match r.outcome.Mc.Engine.verdict with
            | Mc.Engine.Proved | Mc.Engine.Proved_bounded _ -> true
            | Mc.Engine.Failed _ | Mc.Engine.Resource_out _ -> false);
      failed =
        by (fun r ->
            match r.outcome.Mc.Engine.verdict with
            | Mc.Engine.Failed _ -> true
            | Mc.Engine.Proved | Mc.Engine.Proved_bounded _
            | Mc.Engine.Resource_out _ -> false);
      resource_out =
        by (fun r ->
            match r.outcome.Mc.Engine.verdict with
            | Mc.Engine.Resource_out _ -> true
            | Mc.Engine.Proved | Mc.Engine.Proved_bounded _
            | Mc.Engine.Failed _ -> false);
      time_s =
        List.fold_left (fun acc r -> acc +. r.outcome.Mc.Engine.time_s) 0.0
          cat_results }
  in
  let rows =
    List.map
      (fun (c : G.category) ->
        row_of c.G.cat_name (List.length c.G.units)
          (List.filter (fun r -> r.category = c.G.cat_name) results))
      chip.G.categories
  in
  let grand_total =
    { cat = "Total"; subs = List.fold_left (fun a r -> a + r.subs) 0 rows;
      bugs_found = List.fold_left (fun a r -> a + r.bugs_found) 0 rows;
      p0 = List.fold_left (fun a r -> a + r.p0) 0 rows;
      p1 = List.fold_left (fun a r -> a + r.p1) 0 rows;
      p2 = List.fold_left (fun a r -> a + r.p2) 0 rows;
      p3 = List.fold_left (fun a r -> a + r.p3) 0 rows;
      total = List.fold_left (fun a r -> a + r.total) 0 rows;
      proved = List.fold_left (fun a r -> a + r.proved) 0 rows;
      failed = List.fold_left (fun a r -> a + r.failed) 0 rows;
      resource_out = List.fold_left (fun a r -> a + r.resource_out) 0 rows;
      time_s = List.fold_left (fun a r -> a +. r.time_s) 0.0 rows }
  in
  { results; rows; grand_total; wall_time_s = Unix.gettimeofday () -. t0;
    cache_hits = Mc.Cache.hits cache - hits0 }

let failed_results t =
  List.filter
    (fun r ->
      match r.outcome.Mc.Engine.verdict with
      | Mc.Engine.Failed _ -> true
      | Mc.Engine.Proved | Mc.Engine.Proved_bounded _
      | Mc.Engine.Resource_out _ ->
        false)
    t.results

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "category,module,vunit,property,class,verdict,engine,time_s,cache_hit,bug\n";
  List.iter
    (fun r ->
      let verdict =
        match r.outcome.Mc.Engine.verdict with
        | Mc.Engine.Proved -> "proved"
        | Mc.Engine.Proved_bounded d -> Printf.sprintf "bounded:%d" d
        | Mc.Engine.Failed _ -> "failed"
        | Mc.Engine.Resource_out msg -> "resource_out:" ^ msg
      in
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%s,%s,%s,%s,%.4f,%b,%s\n" r.category
           r.module_name r.vunit_name r.prop_name
           (Verifiable.Propgen.class_name r.cls)
           verdict r.outcome.Mc.Engine.engine_used r.outcome.Mc.Engine.time_s
           r.cache_hit
           (match r.bug with Some b -> Chip.Bugs.name b | None -> "")))
    t.results;
  Buffer.contents buf

let write_csv t path =
  let oc = open_out path in
  (try output_string oc (to_csv t)
   with e ->
     close_out oc;
     raise e);
  close_out oc

let pp_table2 ppf t =
  Format.fprintf ppf
    "Module    # of   # of   P0     P1     P2     P3     Total  Time(s)@.";
  Format.fprintf ppf
    "Name      Sub    Bug@.";
  let line (r : row) =
    Format.fprintf ppf "%-9s %-6d %-6d %-6d %-6d %-6d %-6d %-6d %.1f@." r.cat
      r.subs r.bugs_found r.p0 r.p1 r.p2 r.p3 r.total r.time_s
  in
  List.iter line t.rows;
  line t.grand_total
