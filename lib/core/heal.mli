(** Self-healing recovery for resource-starved obligations — the automatic
    Figure 7 loop.

    When an obligation exhausts its engine budget ([Resource_out]), the
    campaign hands it here. The healer mines candidate parity checkpoints
    in the failing property cone ({!Verifiable.Partition.mine_cuts} — the
    protected entities are known), proves what it can about each cut
    ("always odd parity", on the original module, under the obligation's
    own assumptions), then re-checks the property on a module where the
    cuts are freed into primary inputs ({!Verifiable.Partition.free_cuts}):

    - a {e guaranteed} cut (its parity sub-proof succeeded) contributes a
      parity assumption to the final check — classic assume-guarantee over
      the cut;
    - an {e unguaranteed} cut is freed with no assumption — a pure
      over-approximation, sound for safety properties because freeing only
      adds behaviours.

    A [Proved] final check therefore transfers to the original module. A
    [Failed] one is replayed on the concrete module ({!Core.Replay} over
    {!Mc.Engine.replay_model}): a reproducing trace is a real failure with
    the concrete counterexample attached; a non-reproducing one is a
    spurious artifact and triggers CEGAR refinement — the cut whose freed
    values diverge from the concrete machine is un-freed and the check
    re-run — under a bounded iteration budget, after which the obligation
    honestly reports [Resource_out "heal-exhausted"]
    ({!Mc.Engine.ro_heal_exhausted}). *)

val engine_name : string
(** ["self-heal"] — the [engine_used] attribution of every outcome this
    layer produces; it is how healed rows are recognized in summaries,
    metrics and a resumed journal. *)

type piece = {
  p_mdl : Rtl.Mdl.t;  (** original module (sub-proofs) or freed-cut module *)
  p_assert : Psl.Ast.fl;
  p_assumes : Psl.Ast.fl list;
  p_salt : string;
      (** fingerprint salt — ["heal-sub:<cut>"] or ["heal-final:<cuts>"] —
          guaranteeing piece keys never collide with the monolithic key *)
  p_label : string;  (** telemetry span label *)
}
(** One derived proof obligation. The campaign runs pieces through its
    normal prepare / cache / journal path, so structurally identical pieces
    dedupe across obligations and a resumed run replays them from disk. *)

type result = {
  h_outcome : Mc.Engine.outcome option;
      (** [None]: the cone holds no usable cuts — the obligation keeps its
          original verdict and cause. [Some o]: the healed conclusive
          outcome, or [Resource_out "heal-exhausted"]. *)
  h_pieces : int;  (** pieces consulted (cache hits and replays included) *)
  h_subs_proved : int;  (** cuts whose parity sub-proof succeeded *)
  h_finals : int;  (** freed-cut final checks run (CEGAR iterations) *)
  h_spurious : int;  (** counterexamples refuted by concrete replay *)
  h_bad_cuts : int;  (** mined candidates that could not be freed *)
  h_wall_s : float;
}

val heal_one :
  ?mine:(Rtl.Mdl.t -> roots:string list -> string list) ->
  max_iters:int ->
  run_piece:(piece -> Mc.Engine.outcome) ->
  mdl:Rtl.Mdl.t ->
  assert_:Psl.Ast.fl ->
  assumes:Psl.Ast.fl list ->
  unit ->
  result
(** Heal one resource-starved obligation. [run_piece] executes a derived
    obligation (the campaign supplies its cache/journal-aware runner);
    [max_iters] bounds the number of freed-cut final checks. [mine]
    overrides the checkpoint miner (tests inject bad candidates through
    it); a candidate that {!Verifiable.Partition.free_cuts} rejects with
    [Invalid_argument] is counted in [h_bad_cuts], logged via the
    [heal.bad_cuts] telemetry counter and skipped — never a crash. The
    function is deterministic for a fixed [run_piece]: pieces run
    sequentially in a fixed order, so a sequential and a pooled campaign
    heal identically. *)
