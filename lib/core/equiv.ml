module E = Rtl.Expr
module M = Rtl.Mdl
module N = Rtl.Netlist

type mismatch = { output : string; trace : Mc.Trace.t }

type result =
  | Equivalent
  | Different of mismatch
  | Undecided of string

let interface (m : M.t) tied =
  let live (p : M.port) = not (List.mem_assoc p.M.port_name tied) in
  let ins =
    List.filter_map
      (fun (p : M.port) ->
        if p.M.dir = M.Input && live p then Some (p.M.port_name, p.M.port_width)
        else None)
      m.M.ports
  in
  let outs =
    List.filter_map
      (fun (p : M.port) ->
        if p.M.dir = M.Output then Some (p.M.port_name, p.M.port_width)
        else None)
      m.M.ports
  in
  (List.sort compare ins, List.sort compare outs)

(* Elaborate one side, prefix every signal, turn its inputs into wires that
   will be driven by the shared inputs (or tied constants). *)
let side prefix (m : M.t) ties =
  let nl =
    Rtl.Elaborate.run (Rtl.Design.of_modules [ m ]) ~top:m.M.name
  in
  let qual name = prefix ^ "." ^ name in
  let rename_expr = E.rename qual in
  let input_glue =
    List.map
      (fun (name, w) ->
        match List.assoc_opt name ties with
        | Some c ->
          if Bitvec.width c <> w then
            invalid_arg "Equiv: tie width mismatch";
          (qual name, E.const c)
        | None -> (qual name, E.Var name))
      nl.N.inputs
  in
  { nl with
    N.inputs = [];
    outputs = [];
    wires =
      List.map (fun (n, w) -> (qual n, w))
        (nl.N.inputs @ nl.N.outputs @ nl.N.wires);
    assigns =
      input_glue
      @ List.map (fun (lhs, rhs) -> (qual lhs, rename_expr rhs)) nl.N.assigns;
    regs =
      List.map
        (fun (r : N.flat_reg) ->
          { r with N.name = qual r.N.name; next = rename_expr r.N.next })
        nl.N.regs }

(* interleave the two sides' registers so the product machine's diagonal
   reached set (corresponding registers always equal) has a compact BDD *)
let interleave_regs a b =
  let rec go xs ys acc =
    match (xs, ys) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xs, y :: ys -> go xs ys (y :: x :: acc)
  in
  go a b []

let check_modules ?budget ?(strategy = Mc.Engine.Bdd_forward) ~a ~b ?(tie_a = [])
    ?(tie_b = []) () =
  let ins_a, outs_a = interface a tie_a in
  let ins_b, outs_b = interface b tie_b in
  if ins_a <> ins_b then
    invalid_arg "Equiv.check_modules: input interfaces differ";
  if outs_a <> outs_b then
    invalid_arg "Equiv.check_modules: output interfaces differ";
  let lhs = side "lhs" a tie_a in
  let rhs = side "rhs" b tie_b in
  let eq_assigns =
    List.map
      (fun (name, _) ->
        ("eq_" ^ name, E.(var ("lhs." ^ name) ==: var ("rhs." ^ name))))
      outs_a
  in
  let eq_ok =
    List.fold_left (fun acc (name, _) -> E.(acc &: var ("eq_" ^ name))) E.tru
      outs_a
  in
  let product =
    { N.top = "equiv_product"; inputs = ins_a; outputs = [];
      wires =
        lhs.N.wires @ rhs.N.wires
        @ List.map (fun (name, _) -> ("eq_" ^ name, 1)) outs_a
        @ [ ("EQ_OK", 1) ];
      assigns =
        lhs.N.assigns @ rhs.N.assigns @ eq_assigns @ [ ("EQ_OK", eq_ok) ];
      regs = interleave_regs lhs.N.regs rhs.N.regs }
  in
  (* when the two sides have pairwise-matching registers, the state
     diagonal (every corresponding register pair equal) is an inductive
     strengthening of output equivalence: equal states under shared inputs
     step to equal states and produce equal outputs. k-induction settles it
     instantly regardless of the state-space size; structural mismatch or a
     genuine difference falls back to reachability on output equality. *)
  let strip_prefix name =
    match String.index_opt name '.' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  let regs_align =
    List.length lhs.N.regs = List.length rhs.N.regs
    && List.for_all2
         (fun (x : N.flat_reg) (y : N.flat_reg) ->
           strip_prefix x.N.name = strip_prefix y.N.name
           && x.N.width = y.N.width
           && Bitvec.equal x.N.reset_value y.N.reset_value)
         lhs.N.regs rhs.N.regs
  in
  let state_eq =
    List.fold_left2
      (fun acc (x : N.flat_reg) (y : N.flat_reg) ->
        E.(acc &: (var x.N.name ==: var y.N.name)))
      E.tru lhs.N.regs rhs.N.regs
  in
  let product =
    if regs_align then
      { product with
        N.wires = ("DIAG_OK", 1) :: product.N.wires;
        assigns = product.N.assigns @ [ ("DIAG_OK", E.(state_eq &: var "EQ_OK")) ] }
    else product
  in
  let product = N.levelize product in
  (match N.validate product with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Equiv: internal product netlist invalid: " ^ msg));
  let inductive_diagonal () =
    if not regs_align then None
    else
      let nl = Rtl.Coi.reduce product ~roots:[ "DIAG_OK" ] in
      match Mc.Induction.check ~max_k:2 nl ~ok_signal:"DIAG_OK" with
      | Mc.Induction.Proved_by_induction _ -> Some Equivalent
      | Mc.Induction.Violation _ | Mc.Induction.Inconclusive _ ->
        (* the diagonal may fail while the machines are still output-
           equivalent; decide on output equality below *)
        None
  in
  match inductive_diagonal () with
  | Some r -> r
  | None ->
  let product = Rtl.Coi.reduce product ~roots:[ "EQ_OK" ] in
  let outcome =
    Mc.Engine.check_netlist ?budget ~strategy product ~ok_signal:"EQ_OK"
  in
  match outcome.Mc.Engine.verdict with
  | Mc.Engine.Proved -> Equivalent
  | Mc.Engine.Proved_bounded d ->
    Undecided (Printf.sprintf "equivalent up to depth %d only (BMC)" d)
  | Mc.Engine.Resource_out msg -> Undecided msg
  | Mc.Engine.Error msg -> Undecided ("engine error: " ^ msg)
  | Mc.Engine.Failed trace ->
    let output = match outs_a with (name, _) :: _ -> name | [] -> "?" in
    Different { output; trace }

let check_transform_against ?budget ~original (info : Verifiable.Transform.info) =
  let ties =
    List.map
      (fun (port, actual) ->
        match actual with
        | M.Expr (E.Const c) -> (port, c)
        | M.Expr
            (E.Var _ | E.Unop _ | E.Binop _ | E.Mux _ | E.Slice _)
        | M.Net _ ->
          invalid_arg "Equiv.check_transform_against: unexpected tie shape")
      (Verifiable.Transform.tie_offs info)
  in
  check_modules ?budget ~a:original ~b:info.Verifiable.Transform.mdl
    ~tie_b:ties ()
