module E = Rtl.Expr
module A = Psl.Ast
module P = Verifiable.Partition

let engine_name = "self-heal"

type piece = {
  p_mdl : Rtl.Mdl.t;
  p_assert : A.fl;
  p_assumes : A.fl list;
  p_salt : string;
  p_label : string;
}

type result = {
  h_outcome : Mc.Engine.outcome option;
  h_pieces : int;
  h_subs_proved : int;
  h_finals : int;
  h_spurious : int;
  h_bad_cuts : int;
  h_wall_s : float;
}

let no_heal ~bad_cuts ~wall_s =
  { h_outcome = None; h_pieces = 0; h_subs_proved = 0; h_finals = 0;
    h_spurious = 0; h_bad_cuts = bad_cuts; h_wall_s = wall_s }

(* Inputs constrained to odd parity by an [always red_xor(i)] assumption
   must not default to zero during a replay — zero has even parity and
   would discharge the property by breaking the constraint, misreading a
   real counterexample as spurious. Bit 0 set is the canonical legal
   default. *)
let parity_defaults assumes (nl : Rtl.Netlist.t) =
  List.filter_map
    (fun fl ->
      match fl with
      | A.Always (A.Bool (E.Unop (E.Red_xor, E.Var s))) -> (
        match List.assoc_opt s nl.Rtl.Netlist.inputs with
        | Some w -> Some (s, Bitvec.of_int ~width:w 1)
        | None -> None)
      | _ -> None)
    assumes

(* The concrete trace of a confirmed violation, rebuilt from the replay:
   per cycle, the effective stimulus over every concrete input and the
   settled register values. Ends at the replay's fail cycle. *)
let concrete_trace (nl : Rtl.Netlist.t) ~defaults stimulus (r : Replay.run)
    ~fail_cycle =
  let regs =
    List.map (fun (fr : Rtl.Netlist.flat_reg) -> fr.Rtl.Netlist.name)
      nl.Rtl.Netlist.regs
  in
  List.filteri (fun j _ -> j <= fail_cycle) r.Replay.snapshots
  |> List.mapi (fun j snap ->
         let cycle_inputs =
           match List.nth_opt stimulus j with Some c -> c | None -> []
         in
         let inputs =
           List.map
             (fun (name, w) ->
               let v =
                 match List.assoc_opt name cycle_inputs with
                 | Some v -> v
                 | None -> (
                   match List.assoc_opt name defaults with
                   | Some v -> v
                   | None -> Bitvec.zero w)
               in
               (name, v))
             nl.Rtl.Netlist.inputs
         in
         let state =
           List.filter (fun (name, _) -> List.mem name regs) snap
         in
         { Mc.Trace.step = j; inputs; state })

(* CEGAR blame: the first freed cut whose engine-chosen value sequence
   diverges from what the concrete machine actually computes under the same
   stimulus — the abstraction artifact the spurious counterexample rode on.
   Falls back to the last cut when no divergence is visible (e.g. the trace
   does not record the cut's values). *)
let blame_cut freed_set trace (r : Replay.run) =
  let diverges c =
    List.exists
      (fun (cy : Mc.Trace.cycle) ->
        match List.assoc_opt c cy.Mc.Trace.inputs with
        | None -> false
        | Some abstract -> (
          match List.nth_opt r.Replay.snapshots cy.Mc.Trace.step with
          | None -> false
          | Some snap -> (
            match List.assoc_opt c snap with
            | None -> false
            | Some concrete -> not (Bitvec.equal abstract concrete))))
      trace
  in
  match List.find_opt diverges freed_set with
  | Some c -> Some c
  | None -> (
    match List.rev freed_set with c :: _ -> Some c | [] -> None)

let heal_one ?mine ~max_iters ~run_piece ~mdl ~assert_ ~assumes () =
  let t0 = Unix.gettimeofday () in
  let wall () = Unix.gettimeofday () -. t0 in
  let roots = A.signals assert_ in
  let mined =
    match mine with
    | Some f -> f mdl ~roots
    | None -> P.mine_cuts mdl ~roots
  in
  (* a mined candidate that cannot be freed (not an internal wire or
     register) is skipped, never fatal: log via telemetry and move on *)
  let bad = ref 0 in
  let cuts =
    List.filter
      (fun c ->
        match P.free_cuts mdl [ c ] with
        | (_ : Rtl.Mdl.t) -> true
        | exception Invalid_argument _ ->
          incr bad;
          Obs.Telemetry.count "heal.bad_cuts";
          false)
      mined
  in
  if cuts = [] then no_heal ~bad_cuts:!bad ~wall_s:(wall ())
  else begin
    let pieces = ref 0 in
    let time = ref 0.0 in
    let run p =
      incr pieces;
      let out = run_piece p in
      time := !time +. out.Mc.Engine.time_s;
      out
    in
    (* one parity sub-proof per cut, on the original module under the
       obligation's own assumptions. A proved sub guarantees the cut: the
       final check may assume its parity (assume-guarantee). An unproved
       sub leaves the cut unguaranteed — freeing it is still sound (pure
       over-approximation), just less precise. *)
    let guaranteed =
      List.filter
        (fun c ->
          let out =
            run
              { p_mdl = mdl; p_assert = P.parity_fl c; p_assumes = assumes;
                p_salt = "heal-sub:" ^ c;
                p_label = mdl.Rtl.Mdl.name ^ ".sub." ^ c }
          in
          match out.Mc.Engine.verdict with
          | Mc.Engine.Proved -> true
          | Mc.Engine.Proved_bounded _ | Mc.Engine.Failed _
          | Mc.Engine.Resource_out _ | Mc.Engine.Error _ ->
            false)
        cuts
    in
    let subs_proved = List.length guaranteed in
    let mk verdict ~finals ~work ~perf =
      { Mc.Engine.verdict; engine_used = engine_name; time_s = !time;
        iterations = finals; work_nodes = work; perf }
    in
    let exhausted ~finals ~spurious =
      { h_outcome =
          Some
            (mk (Mc.Engine.Resource_out Mc.Engine.ro_heal_exhausted) ~finals
               ~work:0 ~perf:Mc.Engine.empty_perf);
        h_pieces = !pieces; h_subs_proved = subs_proved; h_finals = finals;
        h_spurious = spurious; h_bad_cuts = !bad; h_wall_s = wall () }
    in
    let healed verdict ~finals ~spurious ~work ~perf =
      { h_outcome = Some (mk verdict ~finals ~work ~perf);
        h_pieces = !pieces; h_subs_proved = subs_proved; h_finals = finals;
        h_spurious = spurious; h_bad_cuts = !bad; h_wall_s = wall () }
    in
    let rec refine freed finals spurious =
      if freed = [] || finals >= max_iters then
        exhausted ~finals ~spurious
      else begin
        let cut_assumes =
          List.filter_map
            (fun c ->
              if List.mem c guaranteed then Some (P.parity_fl c) else None)
            freed
        in
        let out =
          run
            { p_mdl = P.free_cuts mdl freed; p_assert = assert_;
              p_assumes = assumes @ cut_assumes;
              p_salt = "heal-final:" ^ String.concat "," freed;
              p_label =
                Printf.sprintf "%s.final[%d]" mdl.Rtl.Mdl.name
                  (List.length freed) }
        in
        let finals = finals + 1 in
        match out.Mc.Engine.verdict with
        | Mc.Engine.Proved ->
          (* every behaviour of the module is a behaviour of the freed
             abstraction, and each assumed cut parity is separately proved:
             the monolithic property holds *)
          healed Mc.Engine.Proved ~finals ~spurious
            ~work:out.Mc.Engine.work_nodes ~perf:out.Mc.Engine.perf
        | Mc.Engine.Failed tr -> (
          let nl, ok_signal, constraint_signal =
            Mc.Engine.replay_model mdl ~assert_ ~assumes
          in
          let defaults = parity_defaults assumes nl in
          let stimulus = Mc.Trace.replay_stimulus tr in
          let r =
            Obs.Telemetry.span ~cat:"heal"
              (mdl.Rtl.Mdl.name ^ ".replay")
              (fun () ->
                Replay.run ~defaults ?constraint_signal nl ~ok_signal
                  stimulus)
          in
          match r.Replay.fail_cycle with
          | Some fail_cycle ->
            (* the abstract counterexample drives the concrete machine into
               a genuine violation: a real failure, with the concrete trace
               attached *)
            let concrete =
              concrete_trace nl ~defaults stimulus r ~fail_cycle
            in
            healed
              (Mc.Engine.Failed concrete)
              ~finals ~spurious ~work:out.Mc.Engine.work_nodes
              ~perf:out.Mc.Engine.perf
          | None -> (
            (* spurious: an artifact of some freed cut — un-free the one the
               counterexample actually exploited and try again *)
            Obs.Telemetry.count "heal.spurious_cex";
            match blame_cut freed tr r with
            | Some c ->
              refine
                (List.filter (fun x -> not (String.equal x c)) freed)
                finals (spurious + 1)
            | None -> exhausted ~finals ~spurious:(spurious + 1)))
        | Mc.Engine.Proved_bounded _ | Mc.Engine.Resource_out _
        | Mc.Engine.Error _ ->
          (* the abstraction did not buy enough: give up honestly *)
          exhausted ~finals ~spurious
      end
    in
    refine cuts 0 0
  end
