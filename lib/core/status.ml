type verdict_class = [ `Proved | `Failed | `Resource_out | `Error ]

type fly = {
  fy_ob : string;
  fy_engine : string;
  fy_attempt : int;
  fy_t0 : float;
}

type in_flight = {
  f_lane : int;
  f_obligation : string;
  f_engine : string;
  f_attempt : int;
  f_elapsed_s : float;
  f_beacon : Mc.Beacon.t option;
}

type snapshot = {
  s_phase : string;
  s_elapsed_s : float;
  s_jobs : int;
  s_total : int;
  s_done : int;
  s_proved : int;
  s_failed : int;
  s_resource_out : int;
  s_errors : int;
  s_cache_hits : int;
  s_replayed : int;
  s_retries : int;
  s_healed : int;
  s_raced : int;
  s_rate_per_s : float;
  s_eta_s : float option;
  s_in_flight : in_flight list;
}

type t = {
  lock : Mutex.t;
  t0 : float;
  jobs : int;
  mutable phase : string;
  mutable total : int;
  mutable done_ : int;
  mutable proved : int;
  mutable failed : int;
  mutable resource_out : int;
  mutable errors : int;
  mutable cache_hits : int;
  mutable replayed : int;
  mutable retries : int;
  mutable healed : int;
  mutable raced : int;
  flying : (int, fly) Hashtbl.t;
}

let create ?(jobs = 1) () =
  { lock = Mutex.create (); t0 = Unix.gettimeofday (); jobs;
    phase = "starting"; total = 0; done_ = 0; proved = 0; failed = 0;
    resource_out = 0; errors = 0; cache_hits = 0; replayed = 0; retries = 0;
    healed = 0; raced = 0; flying = Hashtbl.create 16 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set_total t n = locked t (fun () -> t.total <- n)
let set_phase t p = locked t (fun () -> t.phase <- p)

let lane () = (Domain.self () :> int)

let begin_work t ~obligation ~engine ~attempt =
  let fy =
    { fy_ob = obligation; fy_engine = engine; fy_attempt = attempt;
      fy_t0 = Unix.gettimeofday () }
  in
  locked t (fun () -> Hashtbl.replace t.flying (lane ()) fy)

let end_work t = locked t (fun () -> Hashtbl.remove t.flying (lane ()))

let retry t = locked t (fun () -> t.retries <- t.retries + 1)

let tally t (v : verdict_class) =
  match v with
  | `Proved -> t.proved <- t.proved + 1
  | `Failed -> t.failed <- t.failed + 1
  | `Resource_out -> t.resource_out <- t.resource_out + 1
  | `Error -> t.errors <- t.errors + 1

let finish t ~verdict ~cache_hit ~replayed ~raced ~healed =
  locked t (fun () ->
      Hashtbl.remove t.flying (lane ());
      t.done_ <- t.done_ + 1;
      tally t verdict;
      if cache_hit then t.cache_hits <- t.cache_hits + 1;
      if replayed then t.replayed <- t.replayed + 1;
      if raced then t.raced <- t.raced + 1;
      if healed then t.healed <- t.healed + 1)

let reclassify t ~to_ =
  locked t (fun () ->
      t.resource_out <- t.resource_out - 1;
      tally t to_;
      match to_ with
      | `Proved | `Failed -> t.healed <- t.healed + 1
      | `Resource_out | `Error -> ())

let snapshot t =
  let beacons = Mc.Beacon.snapshot () in
  let now = Unix.gettimeofday () in
  locked t (fun () ->
      let elapsed = now -. t.t0 in
      let fresh = t.done_ - t.cache_hits - t.replayed in
      let rate =
        if elapsed > 0.0 then float_of_int t.done_ /. elapsed else 0.0
      in
      (* ETA from fresh-solve throughput: cached/replayed verdicts return in
         microseconds and would make the naive done/elapsed estimate wildly
         optimistic for the engine-bound remainder *)
      let eta =
        if t.done_ >= t.total then Some 0.0
        else if fresh > 0 then
          Some
            (elapsed /. float_of_int fresh *. float_of_int (t.total - t.done_))
        else if t.done_ > 0 && rate > 0.0 then
          Some (float_of_int (t.total - t.done_) /. rate)
        else None
      in
      let in_flight =
        Hashtbl.fold
          (fun ln fy acc ->
            { f_lane = ln; f_obligation = fy.fy_ob; f_engine = fy.fy_engine;
              f_attempt = fy.fy_attempt; f_elapsed_s = now -. fy.fy_t0;
              f_beacon =
                List.find_opt (fun b -> b.Mc.Beacon.lane = ln) beacons }
            :: acc)
          t.flying []
        |> List.sort (fun a b -> compare a.f_lane b.f_lane)
      in
      { s_phase = t.phase; s_elapsed_s = elapsed; s_jobs = t.jobs;
        s_total = t.total; s_done = t.done_; s_proved = t.proved;
        s_failed = t.failed; s_resource_out = t.resource_out;
        s_errors = t.errors; s_cache_hits = t.cache_hits;
        s_replayed = t.replayed; s_retries = t.retries; s_healed = t.healed;
        s_raced = t.raced; s_rate_per_s = rate; s_eta_s = eta;
        s_in_flight = in_flight })

let snapshot_json t =
  let module J = Obs.Json in
  let s = snapshot t in
  let fly f =
    J.Obj
      ([ ("lane", J.Int f.f_lane);
         ("obligation", J.String f.f_obligation);
         ("engine", J.String f.f_engine);
         ("attempt", J.Int f.f_attempt);
         ("elapsed_s", J.Float f.f_elapsed_s) ]
      @
      match f.f_beacon with
      | None -> []
      | Some b ->
        [ ("beacon",
           J.Obj
             [ ("engine", J.String b.Mc.Beacon.engine);
               ("step", J.Int b.Mc.Beacon.step);
               ("work", J.Int b.Mc.Beacon.work);
               ("age_s", J.Float b.Mc.Beacon.age_s) ]) ])
  in
  J.Obj
    [ ("schema", J.String "dicheck-status-v1");
      ("phase", J.String s.s_phase);
      ("elapsed_s", J.Float s.s_elapsed_s);
      ("jobs", J.Int s.s_jobs);
      ("total", J.Int s.s_total);
      ("done", J.Int s.s_done);
      ("proved", J.Int s.s_proved);
      ("failed", J.Int s.s_failed);
      ("resource_out", J.Int s.s_resource_out);
      ("errors", J.Int s.s_errors);
      ("cache_hits", J.Int s.s_cache_hits);
      ("replayed", J.Int s.s_replayed);
      ("retries", J.Int s.s_retries);
      ("healed", J.Int s.s_healed);
      ("raced", J.Int s.s_raced);
      ("rate_per_s", J.Float s.s_rate_per_s);
      ("eta_s", match s.s_eta_s with Some e -> J.Float e | None -> J.Null);
      ("in_flight", J.List (List.map fly s.s_in_flight)) ]

(* ---- the status socket ---- *)

type server = {
  sv_sock : Unix.file_descr;
  sv_path : string;
  sv_stop : bool Atomic.t;
  sv_domain : unit Domain.t;
}

let serve t ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind sock (Unix.ADDR_UNIX path);
     Unix.listen sock 8
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let stop = Atomic.make false in
  (* One snapshot per connection, then close — the dead-simple protocol a
     shell client can drive. The accept loop polls via select so shutdown
     never depends on close() waking a blocked accept. *)
  let rec loop () =
    if not (Atomic.get stop) then begin
      match Unix.select [ sock ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ ->
        (match Unix.accept sock with
         | fd, _ ->
           (try
              let s =
                Obs.Json.to_string_pretty (snapshot_json t) ^ "\n"
              in
              let b = Bytes.of_string s in
              ignore (Unix.write fd b 0 (Bytes.length b))
            with _ -> ());
           (try Unix.close fd with Unix.Unix_error _ -> ())
         | exception Unix.Unix_error _ -> ());
        loop ()
      | exception Unix.Unix_error _ -> ()
    end
  in
  { sv_sock = sock; sv_path = path; sv_stop = stop;
    sv_domain = Domain.spawn loop }

let shutdown sv =
  Atomic.set sv.sv_stop true;
  Domain.join sv.sv_domain;
  (try Unix.close sv.sv_sock with Unix.Unix_error _ -> ());
  (try Unix.unlink sv.sv_path with Unix.Unix_error _ -> ())
