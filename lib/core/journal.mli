(** Append-only campaign journal — the checkpoint half of checkpoint/resume.

    While a campaign runs, every completed obligation is appended as one
    fsync'd line keyed by its structural fingerprint
    ({!Mc.Obligation.fingerprint}). A killed campaign therefore leaves a
    valid prefix of its work on disk; reopening the journal with
    [~resume:true] loads that prefix into a replay table, and
    {!Campaign.run} answers those fingerprints without touching an engine.

    File format: a version-tag header line, then one
    ["<fingerprint> <hex(Marshal(outcome))>"] line per record. The loader
    tolerates a truncated or garbled tail (the line a crash interrupted)
    by keeping the valid prefix and warning on stderr. Thread-safe:
    appends are serialized under a mutex. *)

type t

val create : ?resume:bool -> ?fsync:bool -> string -> t
(** Open a journal at [path]. With [resume = false] (default) any existing
    file is truncated and a fresh journal started; with [resume = true]
    existing records are loaded into the replay table and new records are
    appended after them. [fsync] (default [true]) syncs every record to
    disk — the durability a checkpoint exists for; disable only in tests. *)

val replay : t -> key:string -> Mc.Engine.outcome option
(** The outcome recorded for this fingerprint in a previous run, if any.
    Fixed at open time: records appended during the current run are not
    consulted, so replay decisions are schedule-independent. *)

val replay_count : t -> int
(** Number of distinct fingerprints loaded for replay. *)

val entries : t -> (string * Mc.Engine.outcome) list
(** The replay table as a list (order unspecified). *)

val append : t -> key:string -> Mc.Engine.outcome -> unit
(** Write one record and (unless [fsync:false]) sync it to disk before
    returning — once [append] returns, a SIGKILL cannot lose the record. *)

val close : t -> unit

val path : t -> string

val load : string -> (string * Mc.Engine.outcome) list
(** Standalone tolerant reader (later duplicates win is NOT applied — the
    raw record list in file order). Missing file is an empty list; a
    truncated tail or foreign format version warns and drops the rest. *)
