(* Append-only campaign checkpoint. One line per completed obligation:

     <fingerprint> <hex of Marshal(Engine.outcome)>\n

   preceded by a one-line format header. Hex keeps every record on a single
   newline-terminated line, so a SIGKILL mid-append truncates at most the
   last line — which the tolerant loader simply drops. *)

(* v2: Engine.outcome gained a perf record *)
let magic = "dicheck-journal-v2"

type t = {
  path : string;
  oc : out_channel;
  fsync : bool;
  lock : Mutex.t;
  replay : (string, Mc.Engine.outcome) Hashtbl.t;
}

let to_hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let of_hex s =
  if String.length s mod 2 <> 0 then invalid_arg "Journal.of_hex";
  String.init (String.length s / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let parse_line line =
  match String.index_opt line ' ' with
  | None -> None
  | Some i ->
    let key = String.sub line 0 i in
    let payload = String.sub line (i + 1) (String.length line - i - 1) in
    (match (Marshal.from_string (of_hex payload) 0 : Mc.Engine.outcome) with
     | outcome -> if key = "" then None else Some (key, outcome)
     | exception _ -> None)

let load path =
  match open_in_bin path with
  | exception Sys_error _ -> []
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> []
        | header when header <> magic ->
          Printf.eprintf
            "warning: journal %s is from another format version; ignoring it\n%!"
            path;
          []
        | _header ->
          let entries = ref [] in
          (* a truncated or garbled line (crash mid-append) ends the valid
             prefix: everything after it was written later and is dropped *)
          let rec go () =
            match input_line ic with
            | exception End_of_file -> ()
            | line -> (
              match parse_line line with
              | Some kv ->
                entries := kv :: !entries;
                go ()
              | None ->
                Printf.eprintf
                  "warning: journal %s has a truncated record; keeping the \
                   %d entries before it\n%!"
                  path (List.length !entries))
          in
          go ();
          List.rev !entries)

(* the replay table is fixed at open time: records appended during this run
   are deliberately NOT added, so whether an obligation reads as "replayed"
   never depends on how the executor scheduled its siblings *)
let entries t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.replay []

let replay t ~key =
  let r = Hashtbl.find_opt t.replay key in
  if r <> None then Obs.Telemetry.count "journal.replays";
  r

let replay_count t = Hashtbl.length t.replay

let create ?(resume = false) ?(fsync = true) path =
  let existing = if resume then load path else [] in
  let replay = Hashtbl.create 1024 in
  List.iter (fun (k, v) -> Hashtbl.replace replay k v) existing;
  let oc =
    if resume then
      open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
    else begin
      let oc = open_out_bin path in
      output_string oc (magic ^ "\n");
      oc
    end
  in
  (* a fresh (non-resume) journal needs its header on disk before the first
     record; an empty resumed file needs one too *)
  if resume && existing = [] && (try (Unix.stat path).Unix.st_size = 0 with Unix.Unix_error _ -> false)
  then output_string oc (magic ^ "\n");
  flush oc;
  { path; oc; fsync; lock = Mutex.create (); replay }

let append t ~key outcome =
  Obs.Telemetry.count "journal.appends";
  let payload = to_hex (Marshal.to_string (outcome : Mc.Engine.outcome) []) in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      output_string t.oc key;
      output_char t.oc ' ';
      output_string t.oc payload;
      output_char t.oc '\n';
      flush t.oc;
      if t.fsync then
        try Unix.fsync (Unix.descr_of_out_channel t.oc)
        with Unix.Unix_error _ -> ())

let close t = close_out_noerr t.oc

let path t = t.path
