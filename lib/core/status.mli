(** Live campaign status: a mutable model the campaign runtime updates as
    obligations start, finish, retry, race and heal, snapshotted on demand
    into the versioned ["dicheck-status-v1"] JSON the status socket serves.

    The model is deliberately small: a dozen counters plus a per-lane
    in-flight table, all under one mutex taken for a few field writes per
    obligation — noise next to an engine run. Snapshots additionally join
    each in-flight lane with its {!Mc.Beacon} cell, so a reader sees not
    just "lane 3 is on [alu0.p2_parity], attempt 1, 12s in" but "… inside
    ic3 at frame 9 with 412 clauses {e right now}".

    The ETA divides elapsed wall time by {e fresh} completions (cache hits
    and journal replays return in microseconds and would skew a naive
    done/elapsed rate), scaled to the remaining obligation count — crude,
    but self-correcting as the campaign progresses.

    {!serve} exposes snapshots over a Unix domain socket with a
    one-snapshot-per-connection protocol: connect, read JSON until EOF,
    done. Readers cost the campaign one select wakeup and one snapshot —
    they can poll as fast as they like. *)

type t

type verdict_class = [ `Proved | `Failed | `Resource_out | `Error ]

type in_flight = {
  f_lane : int;
  f_obligation : string;  (** ["module.property"] *)
  f_engine : string;  (** strategy (or racing member) being attempted *)
  f_attempt : int;  (** retry rung, or member index + 1 under racing *)
  f_elapsed_s : float;
  f_beacon : Mc.Beacon.t option;  (** live engine progress, when reporting *)
}

type snapshot = {
  s_phase : string;  (** ["starting"], ["campaign"], ["healing"], ["done"] *)
  s_elapsed_s : float;
  s_jobs : int;
  s_total : int;
  s_done : int;
  s_proved : int;
  s_failed : int;
  s_resource_out : int;
  s_errors : int;
  s_cache_hits : int;
  s_replayed : int;
  s_retries : int;
  s_healed : int;  (** conclusive verdicts owed to the self-healing layer *)
  s_raced : int;  (** obligations decided by the racing scheduler *)
  s_rate_per_s : float;  (** completions per wall second so far *)
  s_eta_s : float option;  (** [None] until a completion exists to project *)
  s_in_flight : in_flight list;  (** sorted by lane *)
}

val create : ?jobs:int -> unit -> t
(** A fresh model; [jobs] is advisory display data. Pass it to
    {!Campaign.run}'s [?status] and the runtime does the rest. *)

val set_total : t -> int -> unit
val set_phase : t -> string -> unit

val begin_work : t -> obligation:string -> engine:string -> attempt:int ->
  unit
(** Mark the calling domain's lane busy. A later call from the same lane
    replaces the entry (retry rungs, racing members). *)

val end_work : t -> unit
(** Clear the calling domain's lane (idempotent). *)

val finish :
  t -> verdict:verdict_class -> cache_hit:bool -> replayed:bool ->
  raced:bool -> healed:bool -> unit
(** One obligation completed: clears the lane, bumps [done] and the verdict
    tally, and attributes cache/replay/race/heal flags. *)

val retry : t -> unit

val reclassify : t -> to_:verdict_class -> unit
(** The healing pass replaced a [Resource_out] verdict: move one count from
    [resource_out] to [to_], bumping [healed] when conclusive. *)

val snapshot : t -> snapshot
val snapshot_json : t -> Obs.Json.t
(** Schema ["dicheck-status-v1"]. *)

type server

val serve : t -> path:string -> server
(** Bind a Unix domain socket at [path] (an existing file is replaced) and
    serve one pretty-printed {!snapshot_json} per accepted connection from
    a background domain. Raises as [Unix.bind]/[listen] do on an unusable
    path. *)

val shutdown : server -> unit
(** Stop the accept loop, join its domain, close and unlink the socket. *)
