(** Pluggable obligation executor.

    Two backends behind one [map]: a sequential one, and an OCaml 5 domain
    pool with a work-stealing index queue. Results land at their input's
    index, so ordering is deterministic and identical across backends — the
    campaign's verdicts do not depend on how the work was scheduled. *)

type t

val sequential : t

val pool : jobs:int -> t
(** A pool of [jobs] worker domains (the calling domain counts as one).
    [jobs <= 1] degrades to {!sequential}. *)

val of_jobs : int option -> t
(** [None] and [Some j] for [j <= 1] are {!sequential}. *)

val jobs : t -> int

val map_result : t -> ('a -> 'b) -> 'a array -> ('b, exn) result array
(** Order-preserving parallel map with per-item crash isolation. The input
    is split into contiguous per-worker ranges; a worker drains its own
    range from the front and, when empty, steals from the back of the
    busiest remaining range. An application that raises becomes [Error exn]
    at its index — every other item still runs to completion, so one
    poisoned obligation cannot lose the rest of a campaign. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** {!map_result} with the historical re-raising behavior: if any
    application raised, the first exception in input order is re-raised
    after all items have been attempted. *)

type ('b, 'c) group =
  | Done of 'c  (** settled at open time (cache hit, journal replay) *)
  | Race of {
      attempts : int;
      run : int -> cancel:(unit -> bool) -> 'b;
          (** [run k ~cancel] executes attempt [k]; [cancel] is the
              cooperative stop hook the attempt must poll. Must not raise in
              normal operation — a raised exception decides the group as
              [Error]. *)
      conclusive : 'b -> bool;
          (** does this attempt settle the group? Must be pure. *)
      combine : 'b list -> 'c;
          (** fold the attributed prefix (attempts [0..w], where [w] is the
              first conclusive attempt, or all attempts when none conclude)
              into the group value. Runs once per group, outside the
              scheduler lock, so it may do I/O (journal, progress). *)
    }  (** a speculative group: N alternative attempts at one item *)

val race_map_result :
  t -> ?race_jobs:int -> ('a -> ('b, 'c) group) -> 'a array -> ('c, exn) result array
(** Order-preserving map over speculative task groups — the portfolio-racing
    generalization of {!map_result}. [open_ x] prepares item [x] (outside
    the scheduler lock; cache and journal lookups belong here) and either
    settles it immediately ([Done]) or fans it out into [attempts]
    alternative runs ([Race]).

    {b Determinism.} A group settles on the smallest attempt index [w]
    whose result is conclusive (or whose run raised) once attempts
    [0..w-1] have all completed; [combine] then receives exactly the
    results of attempts [0..w] in index order (or all attempts when none
    conclude) — never a result from a speculative attempt beyond the
    first conclusive one. The sequential backend runs attempts in index
    order and stops at the first conclusive one, producing the same
    prefix, so the settled value of every group is identical across
    backends and across runs: racing changes wall time, not answers.

    {b Cancellation.} The moment an attempt completes conclusively (or
    raises), every higher-indexed sibling's [cancel] hook starts
    returning [true] and no further sibling is dispatched; cancelled
    attempts still complete cooperatively and their results are dropped
    from attribution (but any side effects — perf counters an attempt
    records into its own result — were observed by the attempt itself).
    On the sequential backend [cancel] never fires.

    {b Scheduling.} On a pool, attempt 0 of each group runs alone as a
    probe (the cheap ladder head); if it returns without concluding, the
    remaining attempts race with up to [race_jobs] (default: the pool
    size) of one group's attempts in flight at once. Workers prefer
    advancing already-open groups over opening new ones. With
    [race_jobs = 1] the pool degrades to per-group ladder order.

    Emits [exec.race_groups], [exec.race_attempts], [exec.race_cancelled]
    telemetry counters and a cancellation-latency histogram
    ([exec.race_cancel_le_1ms] / [le_10ms] / [le_100ms] / [gt_100ms])
    measured from cancellation request to the loser's cooperative
    return. *)
