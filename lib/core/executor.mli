(** Pluggable obligation executor.

    Two backends behind one [map]: a sequential one, and an OCaml 5 domain
    pool with a work-stealing index queue. Results land at their input's
    index, so ordering is deterministic and identical across backends — the
    campaign's verdicts do not depend on how the work was scheduled. *)

type t

val sequential : t

val pool : jobs:int -> t
(** A pool of [jobs] worker domains (the calling domain counts as one).
    [jobs <= 1] degrades to {!sequential}. *)

val of_jobs : int option -> t
(** [None] and [Some j] for [j <= 1] are {!sequential}. *)

val jobs : t -> int

val map_result : t -> ('a -> 'b) -> 'a array -> ('b, exn) result array
(** Order-preserving parallel map with per-item crash isolation. The input
    is split into contiguous per-worker ranges; a worker drains its own
    range from the front and, when empty, steals from the back of the
    busiest remaining range. An application that raises becomes [Error exn]
    at its index — every other item still runs to completion, so one
    poisoned obligation cannot lose the rest of a campaign. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** {!map_result} with the historical re-raising behavior: if any
    application raised, the first exception in input order is re-raised
    after all items have been attempted. *)
