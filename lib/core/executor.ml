type t = Sequential | Pool of int

module Telemetry = Obs.Telemetry

(* Per-worker telemetry: one span covering the worker's whole drain (so each
   pool domain gets a lane in the trace) plus utilization counters. [run]
   executes one item and returns its wall time; item work itself shows up as
   the obligation spans nested inside the worker span. *)
let with_worker_telemetry ~w body =
  let t0 = Unix.gettimeofday () in
  let busy = ref 0.0 in
  let items = ref 0 in
  Obs.Flight.record "worker.start" ~detail:(string_of_int w);
  let run f =
    let s = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        busy := !busy +. (Unix.gettimeofday () -. s);
        incr items)
      f
  in
  Telemetry.span ~cat:"exec"
    ~args:[ ("worker", string_of_int w) ]
    "exec.worker"
    (fun () -> body run);
  if Telemetry.active () then begin
    let total = Unix.gettimeofday () -. t0 in
    Telemetry.count ~n:!items "exec.items";
    Telemetry.count ~n:(int_of_float (1e6 *. !busy)) "exec.busy_us";
    Telemetry.count
      ~n:(int_of_float (1e6 *. Float.max 0.0 (total -. !busy)))
      "exec.idle_us"
  end;
  Obs.Flight.record "worker.done"
    ~detail:(Printf.sprintf "%d items=%d" w !items)

let sequential = Sequential
let pool ~jobs = if jobs <= 1 then Sequential else Pool jobs
let of_jobs = function None -> Sequential | Some j -> pool ~jobs:j
let jobs = function Sequential -> 1 | Pool n -> n

(* One contiguous index range per worker: the owner pops from [lo], thieves
   pop from [hi], so an owner keeps cache-friendly front-to-back order and
   stealing takes the work the owner would reach last. *)
type range = { mutable lo : int; mutable hi : int; lock : Mutex.t }

let locked r f =
  Mutex.lock r.lock;
  let v = f r in
  Mutex.unlock r.lock;
  v

let pop_own r =
  locked r (fun r ->
      if r.lo < r.hi then begin
        let i = r.lo in
        r.lo <- i + 1;
        Some i
      end
      else None)

let steal r =
  locked r (fun r ->
      if r.lo < r.hi then begin
        r.hi <- r.hi - 1;
        Some r.hi
      end
      else None)

let remaining r = locked r (fun r -> r.hi - r.lo)

let parallel_map_result ~workers f xs =
  let n = Array.length xs in
  let ranges =
    Array.init workers (fun w ->
        { lo = w * n / workers; hi = (w + 1) * n / workers;
          lock = Mutex.create () })
  in
  let results = Array.make n None in
  let rec next w =
    match pop_own ranges.(w) with
    | Some i -> Some i
    | None ->
      (* steal from whichever other range has the most left; rescan on a
         lost race until everything is empty *)
      let victim = ref (-1) and best = ref 0 in
      Array.iteri
        (fun v r ->
          if v <> w then begin
            let rem = remaining r in
            if rem > !best then begin
              best := rem;
              victim := v
            end
          end)
        ranges;
      if !victim < 0 then None
      else (match steal ranges.(!victim) with
            | Some i -> Some i
            | None -> next w)
  in
  let worker w () =
    with_worker_telemetry ~w (fun run ->
        let rec loop () =
          match next w with
          | None -> ()
          | Some i ->
            results.(i) <-
              Some
                (match run (fun () -> f xs.(i)) with
                 | v -> Ok v
                 | exception e -> Error e);
            loop ()
        in
        loop ())
  in
  let helpers =
    Array.init (workers - 1) (fun k -> Domain.spawn (worker (k + 1)))
  in
  worker 0 ();
  Array.iter Domain.join helpers;
  Array.map (function Some r -> r | None -> assert false) results

let map_result t f xs =
  match t with
  | Sequential ->
    let results = ref [||] in
    with_worker_telemetry ~w:0 (fun run ->
        results :=
          Array.map
            (fun x ->
              match run (fun () -> f x) with
              | v -> Ok v
              | exception e -> Error e)
            xs);
    !results
  | Pool j ->
    let n = Array.length xs in
    if n = 0 then [||] else parallel_map_result ~workers:(min j n) f xs

let map t f xs =
  Array.map
    (function Ok v -> v | Error e -> raise e)
    (map_result t f xs)

(* ---- speculative task groups (portfolio racing) ---- *)

type ('b, 'c) group =
  | Done of 'c
  | Race of {
      attempts : int;
      run : int -> cancel:(unit -> bool) -> 'b;
      conclusive : 'b -> bool;
      combine : 'b list -> 'c;
    }

let tick ?n name = if Telemetry.active () then Telemetry.count ?n name

(* An attempt decides its group if it is conclusive or crashed: either way
   no higher-indexed sibling can appear in the attributed prefix, so they
   are cancelled. *)
let deciding conclusive = function Ok b -> conclusive b | Error _ -> true

(* Sequential semantics: the reference the racing scheduler must agree
   with. Attempts run in index order until one decides; the combined value
   covers exactly the attempts that ran. *)
let race_seq open_ xs =
  let results = ref [||] in
  with_worker_telemetry ~w:0 (fun run ->
      results :=
        Array.map
          (fun x ->
            match
              run (fun () ->
                  match open_ x with
                  | Done c -> Ok c
                  | Race r ->
                    tick "exec.race_groups";
                    let rec go acc k =
                      if k >= r.attempts then Ok (r.combine (List.rev acc))
                      else begin
                        tick "exec.race_attempts";
                        match r.run k ~cancel:(fun () -> false) with
                        | b when r.conclusive b ->
                          Ok (r.combine (List.rev (b :: acc)))
                        | b -> go (b :: acc) (k + 1)
                        | exception e -> Error e
                      end
                    in
                    go [] 0)
            with
            | v -> v
            | exception e -> Error e)
          xs);
  !results

type ('b, 'c) gstate = {
  g_item : int;
  g_attempts : int;
  g_run : int -> cancel:(unit -> bool) -> 'b;
  g_conclusive : 'b -> bool;
  g_combine : 'b list -> 'c;
  g_results : ('b, exn) result option array;
  mutable g_next : int;  (* next attempt index to dispatch *)
  mutable g_running : int;
  g_cancel_from : int Atomic.t;  (* attempts >= this are cancelled *)
  mutable g_cancel_time : float;  (* when cancellation was requested *)
  mutable g_settled : bool;
}

(* The racing scheduler. One lock + condition guards all bookkeeping;
   attempt bodies run unlocked with a per-attempt cancel hook reading the
   group's [cancel_from] atomic. Dispatch policy: attempt 0 is a lone probe
   (the cheap ladder head); once it completes without deciding, the
   remaining attempts fan out concurrently, capped at [race_jobs] in
   flight per group. Started groups are preferred over opening new ones,
   so hard obligations get their racers early instead of at the tail. *)
let race_pool ~workers ~race_jobs open_ xs =
  let n = Array.length xs in
  let results = Array.make n None in
  let lock = Mutex.create () in
  let cond = Condition.create () in
  let active = ref [] in  (* opened, unsettled groups, ascending item index *)
  let next_open = ref 0 in
  let unsettled = ref n in
  let latency_bucket dt =
    (* legacy coarse counters (kept: tests and dashboards read them) plus
       the first-class histogram they were generalized into *)
    tick
      (if dt <= 0.001 then "exec.race_cancel_le_1ms"
       else if dt <= 0.01 then "exec.race_cancel_le_10ms"
       else if dt <= 0.1 then "exec.race_cancel_le_100ms"
       else "exec.race_cancel_gt_100ms");
    Telemetry.observe "exec.race_cancel_s" dt;
    Obs.Flight.record "race.cancelled"
      ~detail:(Printf.sprintf "%.4fs" dt)
  in
  let dispatchable g =
    if g.g_settled then false
    else
      let lim = min g.g_attempts (Atomic.get g.g_cancel_from) in
      if g.g_next >= lim then false
      else if g.g_next = 0 then g.g_running = 0
      else g.g_running < race_jobs
  in
  (* called with the lock held *)
  let rec pick () =
    active := List.filter (fun g -> not g.g_settled) !active;
    match List.find_opt dispatchable !active with
    | Some g ->
      let a = g.g_next in
      g.g_next <- a + 1;
      g.g_running <- g.g_running + 1;
      Some (`Attempt (g, a))
    | None ->
      if !next_open < n then begin
        let i = !next_open in
        incr next_open;
        Some (`Open i)
      end
      else if !unsettled = 0 then None
      else begin
        Condition.wait cond lock;
        pick ()
      end
  in
  (* called with the lock held; the first deciding completed prefix wins *)
  let try_settle g =
    if g.g_settled then None
    else begin
      let rec walk i acc =
        if i >= g.g_attempts then Some (`Combine (List.rev acc))
        else
          match g.g_results.(i) with
          | None -> None
          | Some (Error e) -> Some (`Err e)
          | Some (Ok b) ->
            if g.g_conclusive b then Some (`Combine (List.rev (b :: acc)))
            else walk (i + 1) (b :: acc)
      in
      match walk 0 [] with
      | None -> None
      | Some outcome ->
        g.g_settled <- true;
        Some outcome
    end
  in
  let worker w () =
    with_worker_telemetry ~w (fun run ->
        Mutex.lock lock;
        let rec loop () =
          match pick () with
          | None -> Mutex.unlock lock
          | Some (`Open i) -> (
            Mutex.unlock lock;
            (* [run] is monomorphic within the worker body, so both the
               opener and the attempts thread their results through refs
               and call it at type [unit]. *)
            let opened = ref None in
            match
              run (fun () -> opened := Some (open_ xs.(i)));
              Option.get !opened
            with
            | exception e ->
              results.(i) <- Some (Error e);
              Mutex.lock lock;
              decr unsettled;
              Condition.broadcast cond;
              loop ()
            | Done c ->
              results.(i) <- Some (Ok c);
              Mutex.lock lock;
              decr unsettled;
              Condition.broadcast cond;
              loop ()
            | Race r when r.attempts <= 0 ->
              results.(i) <-
                Some
                  (match r.combine [] with
                   | c -> Ok c
                   | exception e -> Error e);
              Mutex.lock lock;
              decr unsettled;
              Condition.broadcast cond;
              loop ()
            | Race r ->
              tick "exec.race_groups";
              let g =
                { g_item = i; g_attempts = r.attempts; g_run = r.run;
                  g_conclusive = r.conclusive; g_combine = r.combine;
                  g_results = Array.make r.attempts None; g_next = 0;
                  g_running = 0; g_cancel_from = Atomic.make max_int;
                  g_cancel_time = 0.0; g_settled = false }
              in
              Mutex.lock lock;
              active := !active @ [ g ];
              Condition.broadcast cond;
              loop ())
          | Some (`Attempt (g, a)) ->
            Mutex.unlock lock;
            tick "exec.race_attempts";
            let cancel () = Atomic.get g.g_cancel_from <= a in
            let res =
              let out = ref None in
              match
                run (fun () -> out := Some (g.g_run a ~cancel));
                Option.get !out
              with
              | b -> Ok b
              | exception e -> Error e
            in
            Mutex.lock lock;
            g.g_results.(a) <- Some res;
            g.g_running <- g.g_running - 1;
            if Atomic.get g.g_cancel_from <= a then begin
              (* a cancelled loser unwinding: how long did it take to let
                 go after the winner concluded? *)
              tick "exec.race_cancelled";
              latency_bucket (Unix.gettimeofday () -. g.g_cancel_time)
            end;
            if
              deciding g.g_conclusive res
              && a + 1 < Atomic.get g.g_cancel_from
            then begin
              if Atomic.get g.g_cancel_from = max_int then
                g.g_cancel_time <- Unix.gettimeofday ();
              Atomic.set g.g_cancel_from (a + 1)
            end;
            (match try_settle g with
             | None ->
               Condition.broadcast cond;
               loop ()
             | Some outcome ->
               Mutex.unlock lock;
               let value =
                 match outcome with
                 | `Err e -> Error e
                 | `Combine bs -> (
                   match g.g_combine bs with
                   | c -> Ok c
                   | exception e -> Error e)
               in
               results.(g.g_item) <- Some value;
               Mutex.lock lock;
               decr unsettled;
               Condition.broadcast cond;
               loop ())
        in
        loop ())
  in
  let helpers =
    Array.init (workers - 1) (fun k -> Domain.spawn (worker (k + 1)))
  in
  worker 0 ();
  Array.iter Domain.join helpers;
  Array.map (function Some r -> r | None -> assert false) results

let race_map_result t ?race_jobs open_ xs =
  match t with
  | Sequential -> race_seq open_ xs
  | Pool j ->
    let n = Array.length xs in
    if n = 0 then [||]
    else
      (* unlike [map_result], one item is not one unit of work: a group
         fans out into sibling attempts, so the pool keeps its full worker
         count even when there are fewer items than workers *)
      let workers = j in
      let race_jobs =
        match race_jobs with None -> workers | Some r -> max 1 r
      in
      if workers <= 1 then race_seq open_ xs
      else race_pool ~workers ~race_jobs open_ xs
