type t = Sequential | Pool of int

module Telemetry = Obs.Telemetry

(* Per-worker telemetry: one span covering the worker's whole drain (so each
   pool domain gets a lane in the trace) plus utilization counters. [run]
   executes one item and returns its wall time; item work itself shows up as
   the obligation spans nested inside the worker span. *)
let with_worker_telemetry ~w body =
  let t0 = Unix.gettimeofday () in
  let busy = ref 0.0 in
  let items = ref 0 in
  let run f =
    let s = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        busy := !busy +. (Unix.gettimeofday () -. s);
        incr items)
      f
  in
  Telemetry.span ~cat:"exec"
    ~args:[ ("worker", string_of_int w) ]
    "exec.worker"
    (fun () -> body run);
  if Telemetry.active () then begin
    let total = Unix.gettimeofday () -. t0 in
    Telemetry.count ~n:!items "exec.items";
    Telemetry.count ~n:(int_of_float (1e6 *. !busy)) "exec.busy_us";
    Telemetry.count
      ~n:(int_of_float (1e6 *. Float.max 0.0 (total -. !busy)))
      "exec.idle_us"
  end

let sequential = Sequential
let pool ~jobs = if jobs <= 1 then Sequential else Pool jobs
let of_jobs = function None -> Sequential | Some j -> pool ~jobs:j
let jobs = function Sequential -> 1 | Pool n -> n

(* One contiguous index range per worker: the owner pops from [lo], thieves
   pop from [hi], so an owner keeps cache-friendly front-to-back order and
   stealing takes the work the owner would reach last. *)
type range = { mutable lo : int; mutable hi : int; lock : Mutex.t }

let locked r f =
  Mutex.lock r.lock;
  let v = f r in
  Mutex.unlock r.lock;
  v

let pop_own r =
  locked r (fun r ->
      if r.lo < r.hi then begin
        let i = r.lo in
        r.lo <- i + 1;
        Some i
      end
      else None)

let steal r =
  locked r (fun r ->
      if r.lo < r.hi then begin
        r.hi <- r.hi - 1;
        Some r.hi
      end
      else None)

let remaining r = locked r (fun r -> r.hi - r.lo)

let parallel_map_result ~workers f xs =
  let n = Array.length xs in
  let ranges =
    Array.init workers (fun w ->
        { lo = w * n / workers; hi = (w + 1) * n / workers;
          lock = Mutex.create () })
  in
  let results = Array.make n None in
  let rec next w =
    match pop_own ranges.(w) with
    | Some i -> Some i
    | None ->
      (* steal from whichever other range has the most left; rescan on a
         lost race until everything is empty *)
      let victim = ref (-1) and best = ref 0 in
      Array.iteri
        (fun v r ->
          if v <> w then begin
            let rem = remaining r in
            if rem > !best then begin
              best := rem;
              victim := v
            end
          end)
        ranges;
      if !victim < 0 then None
      else (match steal ranges.(!victim) with
            | Some i -> Some i
            | None -> next w)
  in
  let worker w () =
    with_worker_telemetry ~w (fun run ->
        let rec loop () =
          match next w with
          | None -> ()
          | Some i ->
            results.(i) <-
              Some
                (match run (fun () -> f xs.(i)) with
                 | v -> Ok v
                 | exception e -> Error e);
            loop ()
        in
        loop ())
  in
  let helpers =
    Array.init (workers - 1) (fun k -> Domain.spawn (worker (k + 1)))
  in
  worker 0 ();
  Array.iter Domain.join helpers;
  Array.map (function Some r -> r | None -> assert false) results

let map_result t f xs =
  match t with
  | Sequential ->
    let results = ref [||] in
    with_worker_telemetry ~w:0 (fun run ->
        results :=
          Array.map
            (fun x ->
              match run (fun () -> f x) with
              | v -> Ok v
              | exception e -> Error e)
            xs);
    !results
  | Pool j ->
    let n = Array.length xs in
    if n = 0 then [||] else parallel_map_result ~workers:(min j n) f xs

let map t f xs =
  Array.map
    (function Ok v -> v | Error e -> raise e)
    (map_result t f xs)
