(** Counterexample replay: drive an engine trace's stimulus through the
    cycle-accurate simulator and observe what the monitor actually does.

    The model is {!Mc.Engine.replay_model} — the engine's own preparation
    pipeline minus the cone-of-influence reduction — so the cross-check runs
    on an independently prepared netlist with every module signal visible
    (the [HE] report bus, datapath internals, the monitor's fail net).
    Inputs the engine's reduced model pruned away are driven to zero unless
    the caller supplies a legal default for them; by the COI argument they
    cannot affect the property cone.

    This lives in [Core] (rather than [Diag], which re-exports it) because
    the self-healing layer replays freed-cut counterexamples on the concrete
    module to tell real failures from abstraction artifacts. *)

type snapshot = (string * Bitvec.t) list
(** Settled pre-clock values of every netlist signal at one cycle. *)

type run = {
  snapshots : snapshot list;
      (** one per stimulus cycle; empty when [capture] was [false] *)
  ok_values : bool list;  (** the monitor's [invariant_ok], per cycle *)
  constraint_clean : bool;
      (** the input-invariant constraint held at {e every} cycle *)
  fail_cycle : int option;
      (** first cycle with [ok = false] while the constraint had held at
          every cycle up to and including it — the engine's notion of a
          genuine violation. [None] means the stimulus does not violate the
          property (or discharges it by breaking an assumption). *)
}

val run :
  ?capture:bool ->
  ?defaults:(string * Bitvec.t) list ->
  ?constraint_signal:string ->
  Rtl.Netlist.t ->
  ok_signal:string ->
  (string * Bitvec.t) list list ->
  run
(** Reset, then for each cycle: drive the stimulus, settle, observe, clock.
    An input absent from a cycle's stimulus takes its value from [defaults]
    when listed there and zero otherwise — the healing layer passes
    odd-parity constants for parity-assumed inputs so a replay never breaks
    the input constraint by construction. [capture] (default [true]) records
    full signal snapshots; the minimization oracle turns it off to keep
    replays cheap. Each call bumps the [diag.replays] telemetry counter. *)

val fails : run -> bool
(** [fail_cycle <> None]. *)

val validate : Mc.Trace.t -> run -> (unit, string) result
(** Cross-validate an engine counterexample against its replay: the replay
    must reach a genuine violation at the trace's final cycle, and every
    register value the trace records must match the replayed machine,
    cycle by cycle. [Error reason] explains the first disagreement. The
    replay must have been captured. *)
