(** The full formal-verification campaign over the chip: every stereotype
    property of every leaf module, with the engine escalation the paper
    describes. Regenerates the data behind Table 2.

    The campaign is a scheduler over first-class proof obligations
    ({!Mc.Obligation}): enumeration produces one work item per assert,
    preparation + execution run on a pluggable {!Executor} (sequential or an
    OCaml 5 domain pool via [?jobs]), and every prepared check is answered
    through a structural result cache ({!Mc.Cache}) keyed on the reduced
    netlist's canonical fingerprint — so the N structurally identical
    subunits of a category are proved once. Results are index-ordered, so
    verdicts are identical whatever the backend or job count.

    The runtime is fault-tolerant in three layers:
    - {b deadlines} — set [wall_deadline_s] in the budget and any obligation
      that overruns it yields [Resource_out "deadline"] instead of hanging a
      worker;
    - {b crash isolation + retry} — an obligation whose engine run raises is
      retried with a degraded budget ({!Mc.Engine.degrade_budget}, capped by
      [max_retries], exponential backoff); a crash on the last rung becomes
      an {!Mc.Engine.Error} verdict in its row, and the executor's per-item
      isolation catches anything that escapes (e.g. a crash in preparation),
      so one poisoned obligation can never lose the rest of the campaign;
    - {b checkpoint/resume} — pass a {!Journal} and every completed
      obligation is fsync'd to disk as it finishes; reopening the journal
      with [~resume:true] replays those verdicts without re-running engines.
      [Error] verdicts are neither cached nor journaled, so transient
      crashes are re-attempted on resume. *)

type prop_result = {
  category : string;
  module_name : string;
  vunit_name : string;
  prop_name : string;
  cls : Verifiable.Propgen.prop_class;
  outcome : Mc.Engine.outcome;
  bug : Chip.Bugs.id option;  (** bug seeded in the module, if any *)
  cache_hit : bool;  (** verdict reused from the structural cache *)
  replayed : bool;  (** verdict replayed from the resume journal *)
  attempts : int;
      (** engine runs performed for this result: 1 for a clean fresh run,
          [> 1] after crash retries, 0 for cache hits and replays *)
  healed : bool;
      (** the verdict is conclusive {e because} the self-healing layer
          recovered it from a [Resource_out] (engine attribution
          {!Heal.engine_name}) — set both when healed in this run and when a
          healed verdict is replayed from the journal or cache *)
}

type row = {
  cat : string;
  subs : int;
  bugs_found : int;  (** defective modules whose seeded bug was exposed *)
  p0 : int;
  p1 : int;
  p2 : int;
  p3 : int;
  total : int;
  proved : int;
  failed : int;
  resource_out : int;
  errors : int;  (** obligations that crashed through the whole retry ladder *)
  time_s : float;
}

type progress = {
  done_ : int;  (** obligations completed so far; never exceeds [total] *)
  total : int;
  retries : int;  (** crash re-runs performed so far *)
  cache_hits : int;  (** of the completed, answered from the cache *)
  replayed : int;  (** of the completed, replayed from the journal *)
}

type work = {
  w_category : string;
  w_mdl : Rtl.Mdl.t;  (** the Verifiable-RTL leaf the property binds to *)
  w_vunit_name : string;
  w_prop_name : string;
  w_assert : Psl.Ast.fl;
  w_assumes : Psl.Ast.fl list;
  w_cls : Verifiable.Propgen.prop_class;
  w_bug : Chip.Bugs.id option;
}
(** One schedulable unit of campaign work: everything needed to prepare and
    run a single property check, plus its provenance. Exposed so downstream
    consumers (e.g. the counterexample diagnosis layer) can re-prepare the
    exact obligation behind a campaign result row. *)

val work_items : Chip.Generator.t -> work list
(** The campaign's work list in scheduling order: one item per assert of
    every stereotype vunit of every leaf, matching [run]'s result order. *)

type heal_totals = {
  heal_attempted : int;  (** resource-out obligations handed to the healer *)
  heal_recovered : int;  (** converted to a conclusive verdict *)
  heal_proved : int;
  heal_failed : int;  (** real failures confirmed by concrete replay *)
  heal_exhausted : int;
      (** gave up after the CEGAR budget — now [Resource_out
          "heal-exhausted"] *)
  heal_unhealable : int;  (** cone held no usable cuts; verdict untouched *)
  heal_spurious : int;  (** counterexamples refuted by concrete replay *)
  heal_cegar_iters : int;  (** freed-cut final checks run, total *)
  heal_subs_proved : int;  (** parity sub-proofs that succeeded *)
  heal_bad_cuts : int;  (** mined candidates skipped as unfreeable *)
  heal_pieces : int;  (** derived obligations consulted, incl. cache hits *)
  heal_wall_s : float;
}
(** Recovery-pass totals of one run. A resumed run that replays already
    healed verdicts reports those under {!prop_result.healed} (and the
    metrics' [healed_rows]), not here — these count this run's own work. *)

type t = {
  results : prop_result list;
  rows : row list;  (** one per category, in A..E order *)
  grand_total : row;
  wall_time_s : float;
  cache_hits : int;  (** checks answered from the cache during this run *)
  retries : int;  (** crash re-runs performed during this run *)
  replayed : int;  (** checks replayed from the journal *)
  healing : heal_totals option;  (** present iff [run] got [?self_heal] *)
}

val run :
  ?budget:Mc.Engine.budget ->
  ?strategy:Mc.Engine.strategy ->
  ?portfolio:Mc.Engine.portfolio ->
  ?progress:(progress -> unit) ->
  ?jobs:int ->
  ?race_jobs:int ->
  ?cache:Mc.Cache.t ->
  ?journal:Journal.t ->
  ?max_retries:int ->
  ?retry_backoff_s:float ->
  ?fault_hook:
    (module_name:string ->
    prop_name:string ->
    fingerprint:string ->
    attempt:int ->
    unit) ->
  ?self_heal:int ->
  ?status:Status.t ->
  Chip.Generator.t ->
  t
(** [jobs] selects the executor backend: absent or [<= 1] runs sequentially,
    [n] runs on a pool of [n] domains. [cache] is the structural result
    cache; a private one is created per run when absent (deduplicating
    within the run), while passing a shared cache additionally reuses
    verdicts across runs — e.g. the post-fix re-campaign. [progress] may be
    invoked from worker domains, serialized under a lock.

    [portfolio] overrides [strategy] with [Portfolio p] and, on a pool,
    switches the campaign to the racing scheduler
    ({!Executor.race_map_result}): each cache-missing obligation fans out
    into one speculative engine run per member, the first conclusive
    verdict cancels the surviving siblings, and
    {!Mc.Engine.combine_portfolio} folds the attributed prefix. On one job
    the same portfolio runs as the engine's sequential short-circuiting
    ladder, so verdicts, attributed perf and cache/journal keys are
    identical between the two modes — racing changes wall time, not
    answers. [race_jobs] caps one obligation's concurrent member runs
    (default: the pool size). Under racing, member crashes become
    non-conclusive [Error] member outcomes (no retry ladder) and
    [fault_hook] runs once per member with [attempt] = member index + 1.

    [journal] checkpoints every completed obligation and replays the records
    it was opened with (see {!Journal.create} [~resume]). [max_retries]
    (default 2) caps crash re-runs per obligation; each retry degrades the
    budget via {!Mc.Engine.degrade_budget} and sleeps [retry_backoff_s]
    (default 0.05s) doubling per rung, capped at 1s. [fault_hook], intended
    for tests, runs in the worker just before each real engine attempt
    (never for cache hits or replays) — it can count engine invocations or
    inject crashes.

    [status] is a live {!Status} model the runtime keeps current: totals
    and phase on entry, per-lane in-flight obligations around every engine
    attempt (including racing members and retry rungs), verdict tallies and
    cache/replay/race/heal attribution as obligations finish, and
    reclassification as the healing pass recovers resource-outs. Purely
    observational — it never affects scheduling, verdicts or keys, so seq ≡
    pool determinism holds with or without it. The runtime also records
    flight-recorder events ({!Obs.Flight}: [ob.done], [ob.retry],
    [race.member], [heal.*]) whenever a recorder is enabled.

    [self_heal] turns on the automatic Figure 7 recovery pass
    ({!Heal.heal_one}) over every [Resource_out] result, with at most
    [self_heal] freed-cut final checks per obligation. Healing pieces run
    through the same prepare/cache/journal path as first-class obligations
    under cut-salted fingerprints, and a healed verdict is journaled under
    the monolithic key after the original resource-out record — so
    [~resume] replays healing without re-proving any piece. The pass is
    parallelized across obligations on the same executor and is
    deterministic: sequential, pooled and raced campaigns heal to identical
    verdicts. *)

val failed_results : t -> prop_result list

val pp_table2 : Format.formatter -> t -> unit
(** The paper's Table 2, plus an [RO] (resource-out) column and, when any
    obligation ran out of resources, a final ["resource-out causes:"] line
    breaking the RO count down by canonical cause
    ({!Mc.Engine.resource_cause}). *)

type perf_totals = {
  engine_time_s : float;  (** summed engine wall time over all results *)
  engine_attempts : int;  (** engine runs, counting escalation stages *)
  fix_iterations : int;
  bdd_peak : int;  (** largest single BDD arena anywhere in the campaign *)
  peak_set_size : int;
  bdd_polls : int;
  sat_decisions : int;
  sat_conflicts : int;
  sat_propagations : int;
  sat_restarts : int;
  max_unroll_depth : int;  (** [-1] if BMC never ran *)
  max_final_k : int;  (** [-1] if k-induction never ran *)
  max_ic3_frames : int;  (** [-1] if IC3 never ran *)
}
(** Engine-work totals summed (or maxed) over every result row. Cached and
    replayed rows carry the perf of the run that originally produced them,
    so these totals are schedule-independent: a sequential run and a domain
    pool over the same chip agree exactly. *)

val aggregate_perf : t -> perf_totals

val resource_out_causes : t -> (string * int) list
(** Count of [Resource_out] results per canonical cause, in the
    {!Mc.Engine.ro_causes} vocabulary order (any non-canonical cause — which
    would indicate an engine bug — sorts after, alphabetically). *)

val wins_by_engine : t -> (string * int) list
(** Results per winning engine ([outcome.engine_used]), sorted by engine
    name. Under a portfolio this is the per-strategy win count — which
    member's verdict each obligation was attributed to. Cached and replayed
    rows count the engine of the producing run, so the tally is
    schedule-independent (seq ≡ race). *)

val to_metrics_json : ?report:Obs.Telemetry.report -> ?jobs:int -> t -> string
(** The campaign summary as pretty-printed JSON (schema
    ["dicheck-metrics-v1"]): grand totals and per-category rows mirroring
    Table 2, {!aggregate_perf} under ["perf"], {!resource_out_causes},
    {!wins_by_engine} under ["strategy_wins"], and — when a telemetry
    [report] is supplied — the raw sink counters. *)

val write_metrics_json :
  ?report:Obs.Telemetry.report -> ?jobs:int -> t -> string -> unit

val to_csv : t -> string
(** One row per property: category, module, vunit, property, class, verdict,
    resource cause, engine, wall ms, iterations, BDD peak, SAT conflicts,
    cache hit, replayed, attempts, bug. Suitable for spreadsheet import or
    regression diffing. *)

val write_csv : t -> string -> unit
