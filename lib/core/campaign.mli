(** The full formal-verification campaign over the chip: every stereotype
    property of every leaf module, with the engine escalation the paper
    describes. Regenerates the data behind Table 2.

    The campaign is a scheduler over first-class proof obligations
    ({!Mc.Obligation}): enumeration produces one work item per assert,
    preparation + execution run on a pluggable {!Executor} (sequential or an
    OCaml 5 domain pool via [?jobs]), and every prepared check is answered
    through a structural result cache ({!Mc.Cache}) keyed on the reduced
    netlist's canonical fingerprint — so the N structurally identical
    subunits of a category are proved once. Results are index-ordered, so
    verdicts are identical whatever the backend or job count. *)

type prop_result = {
  category : string;
  module_name : string;
  vunit_name : string;
  prop_name : string;
  cls : Verifiable.Propgen.prop_class;
  outcome : Mc.Engine.outcome;
  bug : Chip.Bugs.id option;  (** bug seeded in the module, if any *)
  cache_hit : bool;  (** verdict reused from the structural cache *)
}

type row = {
  cat : string;
  subs : int;
  bugs_found : int;  (** defective modules whose seeded bug was exposed *)
  p0 : int;
  p1 : int;
  p2 : int;
  p3 : int;
  total : int;
  proved : int;
  failed : int;
  resource_out : int;
  time_s : float;
}

type t = {
  results : prop_result list;
  rows : row list;  (** one per category, in A..E order *)
  grand_total : row;
  wall_time_s : float;
  cache_hits : int;  (** checks answered from the cache during this run *)
}

val run :
  ?budget:Mc.Engine.budget ->
  ?strategy:Mc.Engine.strategy ->
  ?progress:(done_:int -> total:int -> unit) ->
  ?jobs:int ->
  ?cache:Mc.Cache.t ->
  Chip.Generator.t ->
  t
(** [jobs] selects the executor backend: absent or [<= 1] runs sequentially,
    [n] runs on a pool of [n] domains. [cache] is the structural result
    cache; a private one is created per run when absent (deduplicating
    within the run), while passing a shared cache additionally reuses
    verdicts across runs — e.g. the post-fix re-campaign. [progress] may be
    invoked from worker domains, serialized under a lock. *)

val failed_results : t -> prop_result list
val pp_table2 : Format.formatter -> t -> unit

val to_csv : t -> string
(** One row per property: category, module, vunit, property, class, verdict,
    engine, time, cache hit, bug. Suitable for spreadsheet import or
    regression diffing. *)

val write_csv : t -> string -> unit
