type stats = {
  replays : int;
  cycles_removed : int;
  bits_cleared : int;
}

let care_bits stimulus =
  List.fold_left
    (fun acc cycle ->
      List.fold_left (fun acc (_, v) -> acc + Bitvec.popcount v) acc cycle)
    0 stimulus

let truncate_to_first_failure ~fail_cycle stimulus =
  List.filteri (fun j _ -> j <= fail_cycle) stimulus

(* remove stimulus[i .. i+len) *)
let drop_range stimulus i len =
  List.filteri (fun j _ -> j < i || j >= i + len) stimulus

(* rewrite one input word of one cycle *)
let map_word j name f stimulus =
  List.mapi
    (fun k cycle ->
      if k <> j then cycle
      else List.map (fun (n, v) -> if n = name then (n, f v) else (n, v)) cycle)
    stimulus

let minimize ~oracle stimulus =
  let replays = ref 0 in
  let check s =
    incr replays;
    oracle s
  in
  let original_cycles = List.length stimulus in
  (* pass 1: delta-debug whole cycles out — chunk sizes halving from n/2
     down to 1; on a successful removal stay at the same index (the next
     chunk slid into place) *)
  let rec scan size i cur =
    if i + size > List.length cur then cur
    else
      let candidate = drop_range cur i size in
      if candidate <> [] && check candidate then scan size i candidate
      else scan size (i + size) cur
  in
  let rec by_sizes size cur =
    if size < 1 then cur
    else
      let cur = scan size 0 cur in
      by_sizes (if size = 1 then 0 else size / 2) cur
  in
  let cur = ref (by_sizes (max 1 (original_cycles / 2)) stimulus) in
  let after_cycles = List.length !cur in
  (* pass 2: don't-care inputs — zero whole words, then individual set bits,
     keeping each clearing only if the violation survives *)
  let bits_cleared = ref 0 in
  for j = 0 to after_cycles - 1 do
    let names = List.map fst (List.nth !cur j) in
    List.iter
      (fun name ->
        let v = List.assoc name (List.nth !cur j) in
        let pop = Bitvec.popcount v in
        if pop > 0 then begin
          let candidate =
            map_word j name (fun v -> Bitvec.zero (Bitvec.width v)) !cur
          in
          if check candidate then begin
            cur := candidate;
            bits_cleared := !bits_cleared + pop
          end
          else
            for bit = 0 to Bitvec.width v - 1 do
              let v = List.assoc name (List.nth !cur j) in
              if Bitvec.get v bit then begin
                let candidate =
                  map_word j name (fun v -> Bitvec.set v bit false) !cur
                in
                if check candidate then begin
                  cur := candidate;
                  incr bits_cleared
                end
              end
            done
        end)
      names
  done;
  ( !cur,
    { replays = !replays;
      cycles_removed = original_cycles - after_cycles;
      bits_cleared = !bits_cleared } )
