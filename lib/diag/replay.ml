type snapshot = Core.Replay.snapshot

type run = Core.Replay.run = {
  snapshots : snapshot list;
  ok_values : bool list;
  constraint_clean : bool;
  fail_cycle : int option;
}

let run = Core.Replay.run
let fails = Core.Replay.fails
let validate = Core.Replay.validate
