module Telemetry = Obs.Telemetry
module Json = Obs.Json

type validation = {
  status : [ `Confirmed | `Not_confirmed of string ];
  fail_cycle : int option;
  minimized_reproduces : bool;
}

type t = {
  category : string;
  module_name : string;
  vunit_name : string;
  prop_name : string;
  cls : Verifiable.Propgen.prop_class;
  bug : Chip.Bugs.id option;
  he_signal : string option;
  original_cycles : int;
  minimized_cycles : int;
  original_care_bits : int;
  minimized_care_bits : int;
  validation : validation;
  cone : Cone.cycle_cone list;
  golden_failed : bool;
  explanation : string;
  minimized_stimulus : (string * Bitvec.t) list list;
}

type artifacts = {
  diag : t;
  minimized_trace : Mc.Trace.t;
  replay_snapshots : Replay.snapshot list;
}

let schema = "dicheck-diag-v1"

let cls_tag = function
  | Verifiable.Propgen.P0 -> "P0"
  | Verifiable.Propgen.P1 -> "P1"
  | Verifiable.Propgen.P2 -> "P2"
  | Verifiable.Propgen.P3 -> "P3"

let cls_of_tag = function
  | "P0" -> Ok Verifiable.Propgen.P0
  | "P1" -> Ok Verifiable.Propgen.P1
  | "P2" -> Ok Verifiable.Propgen.P2
  | "P3" -> Ok Verifiable.Propgen.P3
  | other -> Error (Printf.sprintf "unknown property class %S" other)

let explanation_of ~cls ~he_signal ~bug =
  let he = Option.value he_signal ~default:"HE" in
  let base =
    match cls with
    | Verifiable.Propgen.P0 ->
      Printf.sprintf
        "Error detection fails: an illegal value enters the module (through \
         the error-injection port or an illegal primary input) and the \
         hardware-error report %s stays silent the following cycle — the \
         checker misses the corruption."
        he
    | Verifiable.Propgen.P1 ->
      Printf.sprintf
        "Internal-state soundness fails: with odd-parity inputs and no \
         error injection, the hardware-error report %s fires — the module \
         flags a hardware error that never happened."
        he
    | Verifiable.Propgen.P2 ->
      "Output data integrity fails: with odd-parity inputs and no error \
       injection, an output leaves the odd-parity code space — the module \
       corrupts data without reporting it."
    | Verifiable.Propgen.P3 ->
      "A designer-supplied property is violated on a legal input sequence."
  in
  match bug with
  | None -> base
  | Some b ->
    Printf.sprintf "%s Seeded defect %s: %s" base (Chip.Bugs.name b)
      (Chip.Bugs.describe b)

(* ---- diagnosis ---- *)

let registers_of nl = List.map (fun (r : Rtl.Netlist.flat_reg) -> r.Rtl.Netlist.name) nl.Rtl.Netlist.regs

let trace_of_replay ~registers stimulus (r : Replay.run) : Mc.Trace.t =
  List.mapi
    (fun j cycle_inputs ->
      let snap =
        match List.nth_opt r.Replay.snapshots j with Some s -> s | None -> []
      in
      let state =
        List.filter_map
          (fun name ->
            Option.map (fun v -> (name, v)) (List.assoc_opt name snap))
          registers
      in
      { Mc.Trace.step = j; inputs = cycle_inputs; state })
    stimulus

let diagnose ?he_signal (w : Core.Campaign.work) (trace : Mc.Trace.t) =
  let module C = Core.Campaign in
  Telemetry.span ~cat:"diag"
    ~args:[ ("module", w.C.w_mdl.Rtl.Mdl.name); ("property", w.C.w_prop_name) ]
    "diag.obligation"
    (fun () ->
      let nl, ok_signal, constraint_signal =
        Mc.Engine.replay_model w.C.w_mdl ~assert_:w.C.w_assert
          ~assumes:w.C.w_assumes
      in
      let he_signal =
        match he_signal with
        | Some h when List.mem_assoc h (Rtl.Netlist.signals nl) -> Some h
        | _ -> None
      in
      let stimulus0 = Mc.Trace.replay_stimulus trace in
      let r0 =
        Telemetry.span ~cat:"diag" "diag.replay" (fun () ->
            Replay.run ?constraint_signal nl ~ok_signal stimulus0)
      in
      let validated = Replay.validate trace r0 in
      let status, min_stim, rmin, _stats =
        match validated with
        | Error reason ->
          Telemetry.count "diag.not_confirmed";
          ( `Not_confirmed reason, stimulus0, r0,
            { Minimize.replays = 0; cycles_removed = 0; bits_cleared = 0 } )
        | Ok () ->
          Telemetry.count "diag.confirmed";
          let fail_cycle = Option.get r0.Replay.fail_cycle in
          let truncated =
            Minimize.truncate_to_first_failure ~fail_cycle stimulus0
          in
          let oracle s =
            Replay.fails (Replay.run ~capture:false ?constraint_signal nl ~ok_signal s)
          in
          let min_stim, stats =
            Telemetry.span ~cat:"diag" "diag.minimize" (fun () ->
                Minimize.minimize ~oracle truncated)
          in
          Telemetry.count ~n:stats.Minimize.cycles_removed
            "diag.cycles_removed";
          Telemetry.count ~n:stats.Minimize.bits_cleared "diag.bits_cleared";
          let rmin = Replay.run ?constraint_signal nl ~ok_signal min_stim in
          (`Confirmed, min_stim, rmin, stats)
      in
      let cone_result =
        if Replay.fails rmin then
          Cone.analyze ?constraint_signal nl ~ok_signal ~failing:rmin min_stim
        else { Cone.cones = []; golden_failed = false; golden_stimulus = [] }
      in
      let diag =
        { category = w.C.w_category;
          module_name = w.C.w_mdl.Rtl.Mdl.name;
          vunit_name = w.C.w_vunit_name;
          prop_name = w.C.w_prop_name;
          cls = w.C.w_cls;
          bug = w.C.w_bug;
          he_signal;
          original_cycles = List.length stimulus0;
          minimized_cycles = List.length min_stim;
          original_care_bits = Minimize.care_bits stimulus0;
          minimized_care_bits = Minimize.care_bits min_stim;
          validation =
            { status;
              fail_cycle = r0.Replay.fail_cycle;
              minimized_reproduces = Replay.fails rmin };
          cone = cone_result.Cone.cones;
          golden_failed = cone_result.Cone.golden_failed;
          explanation =
            explanation_of ~cls:w.C.w_cls ~he_signal ~bug:w.C.w_bug;
          minimized_stimulus = min_stim }
      in
      { diag;
        minimized_trace =
          trace_of_replay ~registers:(registers_of nl) min_stim rmin;
        replay_snapshots = rmin.Replay.snapshots })

let to_vcd a = Mc.Trace.to_vcd ~replay:a.replay_snapshots a.minimized_trace

(* ---- JSON ---- *)

let stimulus_to_json stim =
  Json.List
    (List.map
       (fun cycle ->
         Json.List
           (List.map
              (fun (name, v) ->
                Json.Obj
                  [ ("signal", Json.String name);
                    ("value", Json.String (Bitvec.to_string v)) ])
              cycle))
       stim)

let to_json d =
  let opt_string = function None -> Json.Null | Some s -> Json.String s in
  Json.Obj
    [ ("schema", Json.String schema);
      ( "obligation",
        Json.Obj
          [ ("category", Json.String d.category);
            ("module", Json.String d.module_name);
            ("vunit", Json.String d.vunit_name);
            ("property", Json.String d.prop_name);
            ("class", Json.String (cls_tag d.cls));
            ("bug", opt_string (Option.map Chip.Bugs.name d.bug)) ] );
      ("verdict", Json.String "falsified");
      ( "trace",
        Json.Obj
          [ ("original_cycles", Json.Int d.original_cycles);
            ("minimized_cycles", Json.Int d.minimized_cycles);
            ("original_care_bits", Json.Int d.original_care_bits);
            ("minimized_care_bits", Json.Int d.minimized_care_bits) ] );
      ( "validation",
        Json.Obj
          [ ( "status",
              Json.String
                (match d.validation.status with
                 | `Confirmed -> "confirmed"
                 | `Not_confirmed _ -> "not-confirmed") );
            ( "reason",
              match d.validation.status with
              | `Confirmed -> Json.Null
              | `Not_confirmed r -> Json.String r );
            ( "fail_cycle",
              match d.validation.fail_cycle with
              | None -> Json.Null
              | Some c -> Json.Int c );
            ( "minimized_reproduces",
              Json.Bool d.validation.minimized_reproduces ) ] );
      ("he_signal", opt_string d.he_signal);
      ("golden_failed", Json.Bool d.golden_failed);
      ( "cone",
        Json.List
          (List.map
             (fun (c : Cone.cycle_cone) ->
               Json.Obj
                 [ ("cycle", Json.Int c.Cone.cone_step);
                   ( "corrupted",
                     Json.List
                       (List.map (fun s -> Json.String s) c.Cone.corrupted) )
                 ])
             d.cone) );
      ("explanation", Json.String d.explanation);
      ("minimized_stimulus", stimulus_to_json d.minimized_stimulus) ]

(* parsing helpers threading first-error *)
let ( let* ) r f = Result.bind r f

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_str name j =
  let* v = field name j in
  match Json.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S is not a string" name)

let as_int name j =
  let* v = field name j in
  match Json.to_int v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "field %S is not an integer" name)

let as_bool name j =
  let* v = field name j in
  match Json.to_bool v with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "field %S is not a boolean" name)

let as_opt_str name j =
  let* v = field name j in
  match v with
  | Json.Null -> Ok None
  | _ ->
    (match Json.to_str v with
     | Some s -> Ok (Some s)
     | None -> Error (Printf.sprintf "field %S is not a string or null" name))

let as_list name j =
  let* v = field name j in
  match Json.to_list v with
  | Some l -> Ok l
  | None -> Error (Printf.sprintf "field %S is not a list" name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let bug_of_name name =
  match
    List.find_opt (fun b -> Chip.Bugs.name b = name) Chip.Bugs.all
  with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "unknown bug id %S" name)

let stimulus_of_json j =
  let* cycles = as_list "minimized_stimulus" j in
  map_result
    (fun cycle ->
      match Json.to_list cycle with
      | None -> Error "stimulus cycle is not a list"
      | Some words ->
        map_result
          (fun w ->
            let* name = as_str "signal" w in
            let* value = as_str "value" w in
            match Bitvec.of_string value with
            | v -> Ok (name, v)
            | exception _ ->
              Error (Printf.sprintf "bad bitvector literal %S" value))
          words)
    cycles

let of_json j =
  let* s = as_str "schema" j in
  if s <> schema then
    Error (Printf.sprintf "expected schema %S, got %S" schema s)
  else
    let* ob = field "obligation" j in
    let* category = as_str "category" ob in
    let* module_name = as_str "module" ob in
    let* vunit_name = as_str "vunit" ob in
    let* prop_name = as_str "property" ob in
    let* cls_s = as_str "class" ob in
    let* cls = cls_of_tag cls_s in
    let* bug_s = as_opt_str "bug" ob in
    let* bug =
      match bug_s with
      | None -> Ok None
      | Some n ->
        let* b = bug_of_name n in
        Ok (Some b)
    in
    let* tr = field "trace" j in
    let* original_cycles = as_int "original_cycles" tr in
    let* minimized_cycles = as_int "minimized_cycles" tr in
    let* original_care_bits = as_int "original_care_bits" tr in
    let* minimized_care_bits = as_int "minimized_care_bits" tr in
    let* va = field "validation" j in
    let* status_s = as_str "status" va in
    let* reason = as_opt_str "reason" va in
    let* status =
      match (status_s, reason) with
      | "confirmed", _ -> Ok `Confirmed
      | "not-confirmed", Some r -> Ok (`Not_confirmed r)
      | "not-confirmed", None -> Ok (`Not_confirmed "unspecified")
      | other, _ -> Error (Printf.sprintf "unknown validation status %S" other)
    in
    let* fail_cycle =
      let* v = field "fail_cycle" va in
      match v with
      | Json.Null -> Ok None
      | _ ->
        (match Json.to_int v with
         | Some n -> Ok (Some n)
         | None -> Error "field \"fail_cycle\" is not an integer or null")
    in
    let* minimized_reproduces = as_bool "minimized_reproduces" va in
    let* he_signal = as_opt_str "he_signal" j in
    let* golden_failed = as_bool "golden_failed" j in
    let* cone_l = as_list "cone" j in
    let* cone =
      map_result
        (fun c ->
          let* cycle = as_int "cycle" c in
          let* corrupted = as_list "corrupted" c in
          let* names =
            map_result
              (fun s ->
                match Json.to_str s with
                | Some s -> Ok s
                | None -> Error "corrupted signal name is not a string")
              corrupted
          in
          Ok { Cone.cone_step = cycle; corrupted = names })
        cone_l
    in
    let* explanation = as_str "explanation" j in
    let* minimized_stimulus = stimulus_of_json j in
    Ok
      { category; module_name; vunit_name; prop_name; cls; bug; he_signal;
        original_cycles; minimized_cycles; original_care_bits;
        minimized_care_bits;
        validation = { status; fail_cycle; minimized_reproduces };
        cone; golden_failed; explanation; minimized_stimulus }

(* ---- campaign-level diagnosis ---- *)

type diagnosed = {
  result : Core.Campaign.prop_result;
  artifacts : artifacts;
}

let he_signal_of (chip : Chip.Generator.t) (w : Core.Campaign.work) =
  let target = w.Core.Campaign.w_mdl.Rtl.Mdl.name in
  List.find_map
    (fun (c : Chip.Generator.category) ->
      List.find_map
        (fun (u : Chip.Generator.unit_) ->
          if u.Chip.Generator.info.Verifiable.Transform.mdl.Rtl.Mdl.name
             = target
          then Some u.Chip.Generator.spec.Verifiable.Propgen.he
          else None)
        c.Chip.Generator.units)
    chip.Chip.Generator.categories

let failed_work chip (c : Core.Campaign.t) =
  let works = Core.Campaign.work_items chip in
  let results = c.Core.Campaign.results in
  if List.length works <> List.length results then
    invalid_arg
      "Diagnosis.failed_work: campaign results do not match the chip's work \
       items";
  List.filter_map
    (fun (w, (r : Core.Campaign.prop_result)) ->
      match r.Core.Campaign.outcome.Mc.Engine.verdict with
      | Mc.Engine.Failed trace -> Some (w, r, trace)
      | _ -> None)
    (List.combine works results)

(* crash fallback: keep the obligation's identity but mark it unconfirmed,
   so one poisoned diagnosis cannot lose the rest of the report *)
let crashed_artifacts (w : Core.Campaign.work) (trace : Mc.Trace.t) reason =
  let module C = Core.Campaign in
  let stimulus = Mc.Trace.replay_stimulus trace in
  { diag =
      { category = w.C.w_category;
        module_name = w.C.w_mdl.Rtl.Mdl.name;
        vunit_name = w.C.w_vunit_name;
        prop_name = w.C.w_prop_name;
        cls = w.C.w_cls;
        bug = w.C.w_bug;
        he_signal = None;
        original_cycles = List.length stimulus;
        minimized_cycles = List.length stimulus;
        original_care_bits = Minimize.care_bits stimulus;
        minimized_care_bits = Minimize.care_bits stimulus;
        validation =
          { status = `Not_confirmed reason; fail_cycle = None;
            minimized_reproduces = false };
        cone = [];
        golden_failed = false;
        explanation = explanation_of ~cls:w.C.w_cls ~he_signal:None ~bug:w.C.w_bug;
        minimized_stimulus = stimulus };
    minimized_trace = trace;
    replay_snapshots = [] }

let diagnose_campaign ?jobs chip (c : Core.Campaign.t) =
  let failed = Array.of_list (failed_work chip c) in
  let exec = Core.Executor.of_jobs jobs in
  let outs =
    Core.Executor.map_result exec
      (fun (w, r, trace) ->
        (r, diagnose ?he_signal:(he_signal_of chip w) w trace))
      failed
  in
  Array.to_list outs
  |> List.mapi (fun i out ->
         match out with
         | Ok (r, artifacts) -> { result = r; artifacts }
         | Error e ->
           let w, r, trace = failed.(i) in
           { result = r;
             artifacts =
               crashed_artifacts w trace
                 ("diagnosis crashed: " ^ Printexc.to_string e) })
