(** Fault-cone analysis: which signals does the erroneous stimulus actually
    corrupt, cycle by cycle?

    A {e golden} run is derived from the minimized failing stimulus by
    neutralizing every input word that can be neutralized without violating
    the input-invariant constraint (zero first, then the lowest legal
    one-hot value — parity-protected inputs reject plain zero). Diffing the
    failing replay against the golden replay, cycle by cycle, yields the set
    of non-input signals whose values the erroneous stimulus changed — the
    propagation cone of the fault, as the simulator sees it.

    When the property fails even on the golden (all-neutral, legal) inputs —
    a bug that fires spontaneously — the diff degenerates; [golden_failed]
    flags that so consumers do not over-read an empty cone. *)

type cycle_cone = {
  cone_step : int;
  corrupted : string list;  (** non-input signals differing, sorted *)
}

type t = {
  cones : cycle_cone list;  (** one per cycle, empty diffs included *)
  golden_failed : bool;  (** the golden run violates the property too *)
  golden_stimulus : (string * Bitvec.t) list list;
}

val analyze :
  ?constraint_signal:string ->
  Rtl.Netlist.t ->
  ok_signal:string ->
  failing:Replay.run ->
  (string * Bitvec.t) list list ->
  t
(** [analyze nl ~ok_signal ~failing stimulus] — [failing] must be the
    captured replay of [stimulus] on [nl]. *)
