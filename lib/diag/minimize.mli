(** Delta-debugging counterexample minimization against the replay oracle.

    Three deterministic passes, each preserving "the stimulus still drives
    the monitor into a genuine violation" (checked by replaying):

    - {b truncation} — cut the stimulus after its first failing cycle;
    - {b cycle removal} — delta-debug whole cycles out (chunks of halving
      size down to single cycles), re-truncating after each success;
    - {b don't-care clearing} — zero whole input words, then individual set
      bits, keeping each clearing only if the violation survives.

    Because the oracle demands a {e genuine} violation (constraint clean
    through the failing cycle, monitor assumptions unbroken), a candidate
    that cheats by violating an assumption never registers as failing — the
    minimized stimulus is still a legal counterexample. *)

type stats = {
  replays : int;  (** oracle invocations *)
  cycles_removed : int;
  bits_cleared : int;  (** input bits zeroed by the don't-care pass *)
}

val care_bits : (string * Bitvec.t) list list -> int
(** Set input bits across the whole stimulus — the size measure the
    don't-care pass shrinks. *)

val minimize :
  oracle:((string * Bitvec.t) list list -> bool) ->
  (string * Bitvec.t) list list ->
  (string * Bitvec.t) list list * stats
(** [minimize ~oracle stimulus] assumes [oracle stimulus = true] and returns
    a 1-minimal-ish failing stimulus (no single cycle or set bit can be
    dropped). The oracle receives candidate stimuli and must be pure. *)

val truncate_to_first_failure :
  fail_cycle:int -> (string * Bitvec.t) list list -> (string * Bitvec.t) list list
(** Keep cycles [0 .. fail_cycle] only. *)
