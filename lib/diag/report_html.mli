(** Self-contained HTML campaign drill-down report.

    One page, no external assets: a summary table with one row per
    falsified obligation, then a detail section per failure — explanation,
    validation verdict, minimization sizes, the fault cone cycle by cycle,
    the minimized stimulus, and (when the caller wrote one) a link to the
    annotated VCD. All dynamic text is HTML-escaped. *)

type entry = {
  diag : Diagnosis.t;
  vcd : string option;  (** relative href of the annotated waveform *)
}

val render : entry list -> string
(** Deterministic: same entries, same bytes (no timestamps). *)

val write : string -> entry list -> unit
