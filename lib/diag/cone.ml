type cycle_cone = {
  cone_step : int;
  corrupted : string list;
}

type t = {
  cones : cycle_cone list;
  golden_failed : bool;
  golden_stimulus : (string * Bitvec.t) list list;
}

(* The input-invariant constraint is a combinational function of the primary
   inputs alone (that is what qualified it for engine-level lowering), so one
   settled evaluation per candidate cycle decides legality. *)
let make_legality_check ?constraint_signal nl =
  match constraint_signal with
  | None -> fun _ -> true
  | Some c ->
    let sim = Sim.Simulator.create nl in
    Sim.Simulator.reset sim;
    fun cycle_inputs ->
      List.iter
        (fun (name, w) ->
          let v =
            match List.assoc_opt name cycle_inputs with
            | Some v -> v
            | None -> Bitvec.zero w
          in
          Sim.Simulator.drive sim name v)
        nl.Rtl.Netlist.inputs;
      Sim.Simulator.settle sim;
      Sim.Simulator.peek_bit sim c

(* Neutral candidates for an input word, most neutral first: all-zero, then
   the lowest one-hot values (zero has even parity, so parity-protected
   inputs need a single set bit to stay legal). *)
let neutral_candidates v =
  let w = Bitvec.width v in
  Bitvec.zero w :: List.init w (fun k -> Bitvec.set (Bitvec.zero w) k true)

let neutralize_cycle legal cycle =
  List.fold_left
    (fun acc (name, v) ->
      let with_value v' =
        List.map (fun (n, x) -> if n = name then (n, v') else (n, x)) acc
      in
      let rec try_candidates = function
        | [] -> acc
        | v' :: rest ->
          if Bitvec.equal v' v then acc  (* already neutral *)
          else
            let candidate = with_value v' in
            if legal candidate then candidate else try_candidates rest
      in
      try_candidates (neutral_candidates v))
    cycle cycle

let diff_cycle ~input_names failing golden =
  List.filter_map
    (fun (name, v) ->
      if List.mem name input_names then None
      else
        match List.assoc_opt name golden with
        | Some v' when not (Bitvec.equal v v') -> Some name
        | _ -> None)
    failing
  |> List.sort String.compare

let analyze ?constraint_signal nl ~ok_signal ~failing stimulus =
  Obs.Telemetry.span ~cat:"diag" "diag.cone" (fun () ->
      let legal = make_legality_check ?constraint_signal nl in
      let golden_stimulus = List.map (neutralize_cycle legal) stimulus in
      let golden =
        Replay.run ?constraint_signal nl ~ok_signal golden_stimulus
      in
      let input_names = List.map fst nl.Rtl.Netlist.inputs in
      let cones =
        List.mapi
          (fun j fail_snap ->
            let golden_snap =
              match List.nth_opt golden.Replay.snapshots j with
              | Some s -> s
              | None -> []
            in
            { cone_step = j;
              corrupted = diff_cycle ~input_names fail_snap golden_snap })
          failing.Replay.snapshots
      in
      { cones; golden_failed = Replay.fails golden; golden_stimulus })
