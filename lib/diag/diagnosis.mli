(** Counterexample diagnosis: validated, minimized, explained failures.

    For each falsified proof obligation this module replays the engine's
    counterexample through the cycle-accurate simulator on an independently
    prepared full-visibility model ({!Mc.Engine.replay_model}),
    cross-validates it ({!Replay.validate}), delta-debugs the stimulus down
    to a minimal failing core ({!Minimize}), computes the fault cone against
    a golden legal-input run ({!Cone}), and renders the result as a
    structured JSON artifact (schema {!schema}), an annotated VCD waveform
    and a human-readable explanation.

    Everything here is deterministic: no timestamps, no randomness, results
    independent of the executor backend — a sequential and a pooled
    diagnosis of the same campaign produce byte-identical artifacts. *)

type validation = {
  status : [ `Confirmed | `Not_confirmed of string ];
      (** [`Confirmed]: the simulator reproduces the engine's violation at
          the trace's final cycle with every recorded register agreeing *)
  fail_cycle : int option;  (** first genuinely failing replay cycle *)
  minimized_reproduces : bool;
      (** the minimized stimulus still drives the monitor into violation *)
}

type t = {
  category : string;
  module_name : string;
  vunit_name : string;
  prop_name : string;
  cls : Verifiable.Propgen.prop_class;
  bug : Chip.Bugs.id option;  (** seeded defect behind the failure, if any *)
  he_signal : string option;
      (** the module's hardware-error report bus, when visible in the
          replay model *)
  original_cycles : int;
  minimized_cycles : int;
  original_care_bits : int;  (** set stimulus bits before minimization *)
  minimized_care_bits : int;
  validation : validation;
  cone : Cone.cycle_cone list;  (** corrupted signals, per cycle *)
  golden_failed : bool;  (** see {!Cone.t.golden_failed} *)
  explanation : string;  (** what the violation means, per property class *)
  minimized_stimulus : (string * Bitvec.t) list list;
}

type artifacts = {
  diag : t;
  minimized_trace : Mc.Trace.t;
      (** the minimized stimulus with replayed register values *)
  replay_snapshots : Replay.snapshot list;
      (** full signal snapshots of the minimized failing replay — feed to
          {!Mc.Trace.to_vcd}'s [?replay] for the annotated waveform *)
}

val cls_tag : Verifiable.Propgen.prop_class -> string
(** ["P0"] .. ["P3"]. *)

val diagnose :
  ?he_signal:string -> Core.Campaign.work -> Mc.Trace.t -> artifacts
(** Diagnose one falsified obligation. Records a [diag.obligation] telemetry
    span and the [diag.replays] / [diag.confirmed] / [diag.not_confirmed] /
    [diag.cycles_removed] / [diag.bits_cleared] counters. *)

val to_vcd : artifacts -> string
(** The annotated waveform: minimized stimulus, replayed registers, and
    every internal/output signal of the replay model (HE bus included). *)

val schema : string
(** ["dicheck-diag-v1"]. *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result
(** [of_json (to_json d)] reconstructs [d] exactly. *)

type diagnosed = {
  result : Core.Campaign.prop_result;
  artifacts : artifacts;
}

val he_signal_of : Chip.Generator.t -> Core.Campaign.work -> string option
(** The HE report signal of the unit a work item binds to, from its
    integrity spec. *)

val failed_work :
  Chip.Generator.t ->
  Core.Campaign.t ->
  (Core.Campaign.work * Core.Campaign.prop_result * Mc.Trace.t) list
(** Every falsified campaign result paired with the work item that produced
    it (by index — {!Core.Campaign.work_items} matches the result order) and
    its counterexample trace. *)

val diagnose_campaign :
  ?jobs:int -> Chip.Generator.t -> Core.Campaign.t -> diagnosed list
(** Diagnose every falsified obligation of a campaign, in result order.
    [jobs] selects the {!Core.Executor} backend; per-item crash isolation
    turns a diagnosis crash into a [`Not_confirmed] record instead of losing
    the rest. Output is identical for any [jobs]. *)
