type entry = {
  diag : Diagnosis.t;
  vcd : string option;
}

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&#39;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  {|body{font-family:system-ui,sans-serif;margin:2rem auto;max-width:70rem;
padding:0 1rem;color:#1b1b1b}
h1{font-size:1.5rem}h2{font-size:1.15rem;margin-top:2.5rem;
border-top:1px solid #ddd;padding-top:1rem}
table{border-collapse:collapse;margin:0.75rem 0}
th,td{border:1px solid #ccc;padding:0.3rem 0.6rem;text-align:left;
font-size:0.9rem}
th{background:#f2f2f2}
code,.mono{font-family:ui-monospace,monospace;font-size:0.85rem}
.ok{color:#0a6d2c;font-weight:600}.bad{color:#b00020;font-weight:600}
.muted{color:#666}
.expl{background:#f7f7f2;border-left:4px solid #c9b458;padding:0.6rem 0.9rem;
margin:0.75rem 0}|}

let anchor (d : Diagnosis.t) =
  let clean =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
        | _ -> '-')
      (d.Diagnosis.module_name ^ "-" ^ d.Diagnosis.prop_name)
  in
  clean

let status_cell (d : Diagnosis.t) =
  match d.Diagnosis.validation.Diagnosis.status with
  | `Confirmed -> {|<span class="ok">confirmed</span>|}
  | `Not_confirmed r ->
    Printf.sprintf {|<span class="bad">not confirmed</span> (%s)|} (escape r)

let summary_row (e : entry) =
  let d = e.diag in
  Printf.sprintf
    {|<tr class="failure-row"><td><a href="#%s">%s</a></td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%d&nbsp;&rarr;&nbsp;%d</td><td>%d&nbsp;&rarr;&nbsp;%d</td><td>%s</td></tr>|}
    (anchor d)
    (escape d.Diagnosis.module_name)
    (escape d.Diagnosis.prop_name)
    (Diagnosis.cls_tag d.Diagnosis.cls)
    (match d.Diagnosis.bug with
     | Some b -> escape (Chip.Bugs.name b)
     | None -> {|<span class="muted">&ndash;</span>|})
    (escape d.Diagnosis.category)
    d.Diagnosis.original_cycles d.Diagnosis.minimized_cycles
    d.Diagnosis.original_care_bits d.Diagnosis.minimized_care_bits
    (status_cell d)

let cone_table (d : Diagnosis.t) =
  if d.Diagnosis.cone = [] then
    {|<p class="muted">no fault cone (diagnosis did not replay)</p>|}
  else
    let rows =
      List.map
        (fun (c : Cone.cycle_cone) ->
          Printf.sprintf
            {|<tr><td>%d</td><td class="mono">%s</td></tr>|}
            c.Cone.cone_step
            (if c.Cone.corrupted = [] then
               {|<span class="muted">&ndash;</span>|}
             else escape (String.concat ", " c.Cone.corrupted)))
        d.Diagnosis.cone
    in
    Printf.sprintf
      {|<table><tr><th>cycle</th><th>corrupted signals (failing vs golden run)</th></tr>%s</table>%s|}
      (String.concat "" rows)
      (if d.Diagnosis.golden_failed then
         {|<p class="bad">the golden (neutral legal-input) run also violates the property; the cone above is best-effort</p>|}
       else "")

let stimulus_table (d : Diagnosis.t) =
  match d.Diagnosis.minimized_stimulus with
  | [] -> {|<p class="muted">empty stimulus</p>|}
  | first :: _ as stim ->
    let names = List.map fst first in
    let header =
      String.concat ""
        ({|<th>cycle</th>|}
         :: List.map (fun n -> Printf.sprintf "<th>%s</th>" (escape n)) names)
    in
    let rows =
      List.mapi
        (fun j cycle ->
          let cells =
            List.map
              (fun n ->
                match List.assoc_opt n cycle with
                | Some v ->
                  Printf.sprintf {|<td class="mono">%s</td>|}
                    (escape (Bitvec.to_string v))
                | None -> {|<td class="muted">?</td>|})
              names
          in
          Printf.sprintf "<tr><td>%d</td>%s</tr>" j (String.concat "" cells))
        stim
    in
    Printf.sprintf "<table><tr>%s</tr>%s</table>" header
      (String.concat "" rows)

let detail (e : entry) =
  let d = e.diag in
  let v = d.Diagnosis.validation in
  Printf.sprintf
    {|<h2 id="%s">%s &middot; %s <span class="muted">(%s, vunit %s)</span></h2>
<p class="expl">%s</p>
<table>
<tr><th>validation</th><td>%s</td></tr>
<tr><th>fail cycle</th><td>%s</td></tr>
<tr><th>minimized trace reproduces</th><td>%s</td></tr>
<tr><th>trace length</th><td>%d cycles &rarr; %d cycles</td></tr>
<tr><th>care bits</th><td>%d &rarr; %d</td></tr>
<tr><th>HE report signal</th><td class="mono">%s</td></tr>
<tr><th>waveform</th><td>%s</td></tr>
</table>
<h3>fault cone</h3>
%s
<h3>minimized stimulus</h3>
%s|}
    (anchor d)
    (escape d.Diagnosis.module_name)
    (escape d.Diagnosis.prop_name)
    (Diagnosis.cls_tag d.Diagnosis.cls)
    (escape d.Diagnosis.vunit_name)
    (escape d.Diagnosis.explanation)
    (status_cell d)
    (match v.Diagnosis.fail_cycle with
     | Some c -> string_of_int c
     | None -> {|<span class="muted">&ndash;</span>|})
    (if v.Diagnosis.minimized_reproduces then {|<span class="ok">yes</span>|}
     else {|<span class="bad">no</span>|})
    d.Diagnosis.original_cycles d.Diagnosis.minimized_cycles
    d.Diagnosis.original_care_bits d.Diagnosis.minimized_care_bits
    (match d.Diagnosis.he_signal with
     | Some h -> escape h
     | None -> "&ndash;")
    (match e.vcd with
     | Some href ->
       Printf.sprintf {|<a href="%s" class="mono">%s</a>|} (escape href)
         (escape href)
     | None -> {|<span class="muted">not written</span>|})
    (cone_table d)
    (stimulus_table d)

let render entries =
  let confirmed =
    List.length
      (List.filter
         (fun e ->
           e.diag.Diagnosis.validation.Diagnosis.status = `Confirmed)
         entries)
  in
  let summary =
    if entries = [] then
      {|<p class="ok">No falsified obligations — nothing to diagnose.</p>|}
    else
      Printf.sprintf
        {|<p>%d falsified obligation%s; %d confirmed by simulator replay.</p>
<table>
<tr><th>module</th><th>property</th><th>class</th><th>bug</th><th>cat</th><th>cycles</th><th>care bits</th><th>validation</th></tr>
%s
</table>|}
        (List.length entries)
        (if List.length entries = 1 then "" else "s")
        confirmed
        (String.concat "\n" (List.map summary_row entries))
  in
  Printf.sprintf
    {|<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>dicheck campaign diagnosis</title>
<style>%s</style>
</head>
<body>
<h1>Campaign counterexample diagnosis</h1>
%s
%s
</body>
</html>
|}
    style summary
    (String.concat "\n" (List.map detail entries))

let write path entries =
  let oc = open_out path in
  (try output_string oc (render entries)
   with e ->
     close_out oc;
     raise e);
  close_out oc
