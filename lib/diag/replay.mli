(** Counterexample replay — re-export of {!Core.Replay}.

    The implementation moved to [Core] so the campaign's self-healing layer
    can replay freed-cut counterexamples on the concrete module without a
    dependency cycle; diagnosis keeps its historical entry point. See
    {!Core.Replay} for the full documentation. *)

type snapshot = Core.Replay.snapshot
(** Settled pre-clock values of every netlist signal at one cycle. *)

type run = Core.Replay.run = {
  snapshots : snapshot list;
  ok_values : bool list;
  constraint_clean : bool;
  fail_cycle : int option;
}

val run :
  ?capture:bool ->
  ?defaults:(string * Bitvec.t) list ->
  ?constraint_signal:string ->
  Rtl.Netlist.t ->
  ok_signal:string ->
  (string * Bitvec.t) list list ->
  run

val fails : run -> bool

val validate : Mc.Trace.t -> run -> (unit, string) result
