(** The fuzz campaign driver behind [dicheck fuzz]: generate [count] seeded
    designs, run each through the {!Differential} battery and the
    {!Mutate} gauntlet, shrink anything discrepant with {!Shrink} and emit
    self-contained reproducers. Deterministic for a given configuration. *)

type config = {
  seed : int;
  count : int;
  budget_s : float option;
      (** stop starting new cases once this much wall time is spent *)
  out_dir : string;  (** reproducer directory, created on first failure *)
  inject : int option;
      (** test hook: case index given an artificial discrepancy *)
  gauntlet : bool;  (** run the mutation gauntlet (default behavior) *)
}

val default_config : config
(** seed 0, 50 cases, no wall budget, ["fuzz-failures"], no injection,
    gauntlet on. *)

type shrunk = {
  from_params : Gen.params;
  to_params : Gen.params;
  steps : int;
  evals : int;
  files : string list;  (** emitted reproducer paths *)
}

type summary = {
  config : config;
  cases_run : int;
  obligations : int;  (** differential obligations checked *)
  engine_runs : int;
  discrepancies : Differential.discrepancy list;
  shrunk : shrunk list;  (** one per discrepant case *)
  kill_table : (Chip.Bugs.id * int * int) list;
      (** per bug class: (class, mutants detected, mutants attacked) *)
  gauntlet_misses : (string * Chip.Bugs.id * string) list;
      (** (case id, bug, why) for every undetected mutant *)
  elapsed_s : float;
  budget_exhausted : bool;  (** the wall budget cut the run short *)
}

val ok : summary -> bool
(** No discrepancies and a 100% mutation kill rate. *)

val run : config -> summary

val summary_json : summary -> Obs.Json.t
(** Machine-readable summary (schema ["dicheck-fuzz-summary-v1"]). *)
