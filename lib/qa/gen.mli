(** Seeded-random generation of verifiable-RTL fuzz subjects.

    A fuzz case composes one {!Chip.Archetype} template with randomized
    widths, depths and FSM shapes, then runs it through
    {!Verifiable.Transform} so the design carries real injection ports, and
    derives its stereotype P0/P1/P2(/P3) obligations from
    {!Verifiable.Propgen} — exactly the pipeline the campaign subjects real
    chip leaves to, but over a much wider parameter space.

    Everything is deterministic: [params_of ~seed ~index] depends only on
    the two integers, and {!build} is a pure function of the parameters, so
    any failing case can be regenerated (and shrunk) from its parameter
    record alone. *)

type template =
  | Fsm_ctrl
  | Counter
  | Csr
  | Macro_if
  | Datapath
  | Decoder
  | Fifo
  | Merge
  | Filler

val templates : template list
val template_name : template -> string

type params = {
  template : template;
  width : int;
      (** payload width; for [Fsm_ctrl] the number of FSM states *)
  depth : int;  (** [Fifo] depth (a power of two); [Merge] HE bit count *)
  variant : int;
      (** non-negative salt: [Decoder] bug site (address and sensitizing
          pattern), [Filler] shape (entity mix, parity ports, HE bits) *)
  mutation : Chip.Bugs.id option;
      (** seeded Table 3 bug archetype; [None] builds the clean design *)
}

val params_of : seed:int -> index:int -> params
(** The [index]-th random (clean) parameter record of a [seed]'s stream. *)

type case = {
  id : string;
  params : params;
  leaf : Chip.Archetype.leaf;
  info : Verifiable.Transform.info;  (** the Verifiable-RTL form *)
  spec : Verifiable.Propgen.spec;
}

val build : id:string -> params -> case
(** Construct the case for a parameter record (pure). *)

val case_of : seed:int -> index:int -> case
(** [build] of [params_of], with the id ["fz<seed>_<index>_<template>"]
    (a valid Verilog identifier — the id doubles as the module name). *)

val mutations : params -> Chip.Bugs.id list
(** The Table 3 bug classes this template can host (empty for templates
    without a seeded-bug variant). *)

val with_mutation : params -> Chip.Bugs.id -> params
(** Raises [Invalid_argument] if the template cannot host the bug. *)

val shrink_candidates : params -> params list
(** Strictly smaller parameter records to try when delta-debugging a
    failing case, most aggressive reduction first. The [mutation] field is
    preserved. *)

val describe : params -> string
(** One-line human summary, e.g. ["decoder w=5 d=1 v=617 cases=24"]. *)
