module A = Chip.Archetype
module B = Chip.Bugs

type template =
  | Fsm_ctrl
  | Counter
  | Csr
  | Macro_if
  | Datapath
  | Decoder
  | Fifo
  | Merge
  | Filler

let templates =
  [ Fsm_ctrl; Counter; Csr; Macro_if; Datapath; Decoder; Fifo; Merge; Filler ]

let template_name = function
  | Fsm_ctrl -> "fsm_ctrl"
  | Counter -> "counter"
  | Csr -> "csr"
  | Macro_if -> "macro_if"
  | Datapath -> "datapath"
  | Decoder -> "decoder"
  | Fifo -> "fifo"
  | Merge -> "merge"
  | Filler -> "filler"

type params = {
  template : template;
  width : int;
  depth : int;
  variant : int;
  mutation : B.id option;
}

(* width bounds per template, chosen so the worst engine (BMC at the fuzz
   depth, BDD reachability on the fifo) stays in the tens of milliseconds *)
let width_range = function
  | Fsm_ctrl -> (3, 8)  (* number of FSM states *)
  | Counter -> (2, 6)
  | Csr -> (2, 7)
  | Macro_if -> (2, 8)
  | Datapath -> (2, 5)
  | Decoder -> (3, 6)
  | Fifo -> (2, 4)
  | Merge -> (2, 6)
  | Filler -> (3, 3)  (* the filler's payload width is fixed *)

let depth_range = function
  | Fifo -> (2, 4)  (* power-of-two slot count *)
  | Merge -> (1, 7)  (* HE report bits (<= 7 checker groups) *)
  | Filler -> (1, 5)  (* total entity count *)
  | _ -> (1, 1)

let params_of ~seed ~index =
  let st = Random.State.make [| 0x9a5eed; seed; index |] in
  let template =
    List.nth templates (Random.State.int st (List.length templates))
  in
  let pick (lo, hi) = lo + Random.State.int st (hi - lo + 1) in
  let width = pick (width_range template) in
  let depth =
    match template with
    | Fifo -> if Random.State.bool st then 2 else 4
    | t -> pick (depth_range t)
  in
  let variant = Random.State.int st 10_000 in
  { template; width; depth; variant; mutation = None }

(* ---- deterministic decoding of the variant salt ---- *)

let decoder_valid_cases width = max 2 (3 * (1 lsl width) / 4)

(* distinct bug sites for B5 and B6, the paper's "second wrong case" *)
let decoder_site p id =
  let vc = decoder_valid_cases p.width in
  let salt = if id = B.B6 then 17 else 0 in
  let addr = (p.variant + salt) mod vc in
  let pattern = ((p.variant * 7919) + salt + 13) mod (1 lsl p.width) in
  (addr, pattern)

(* filler shape: entity mix and port counts packed into the variant *)
let filler_shape p =
  let v = p.variant in
  let n_ent = max 1 p.depth in
  let n_fsm = 1 + (v mod n_ent) in
  let n_fsm = min n_fsm n_ent in
  let rest = n_ent - n_fsm in
  let n_cnt = if rest = 0 then 0 else v / 7 mod (rest + 1) in
  let n_dp = rest - n_cnt in
  let n_parity_in = 1 + (v / 49 mod 3) in
  let n_parity_out = v / 147 mod 3 in
  let n_extra = v / 441 mod 2 in
  let he_bits = 1 + (v / 882 mod (n_ent + n_parity_in)) in
  (n_fsm, n_cnt, n_dp, n_parity_in, n_parity_out, he_bits, n_extra)

let mutations p =
  match p.template with
  | Fsm_ctrl -> [ B.B0 ]
  | Counter -> [ B.B2 ]
  | Csr -> [ B.B1 ]
  | Macro_if -> [ B.B3 ]
  | Datapath -> [ B.B4 ]
  | Decoder -> [ B.B5; B.B6 ]
  | Fifo | Merge | Filler -> []

let with_mutation p id =
  if not (List.mem id (mutations p)) then
    invalid_arg
      (Printf.sprintf "Qa.Gen.with_mutation: %s cannot host %s"
         (template_name p.template) (B.name id));
  { p with mutation = Some id }

type case = {
  id : string;
  params : params;
  leaf : A.leaf;
  info : Verifiable.Transform.info;
  spec : Verifiable.Propgen.spec;
}

let leaf_of ~name p =
  let bug = p.mutation <> None in
  match p.template with
  | Fsm_ctrl -> A.fsm_ctrl ~name ~bug ~nstates:p.width ()
  | Counter -> A.counter ~name ~bug ~width:p.width ()
  | Csr -> A.csr ~name ~bug ~width:p.width ()
  | Macro_if -> A.macro_if ~name ~bug ~width:p.width ()
  | Datapath -> A.datapath ~name ~bug ~width:p.width ()
  | Decoder ->
    let bug =
      Option.map
        (fun id ->
          let addr, pattern = decoder_site p id in
          (id, addr, pattern))
        p.mutation
    in
    A.decoder ~name ?bug ~width:p.width
      ~valid_cases:(decoder_valid_cases p.width) ()
  | Fifo -> A.fifo ~name ~depth:p.depth ~width:p.width ()
  | Merge -> A.merge ~name ~payload_width:p.width ~he_bits:p.depth ()
  | Filler ->
    let n_fsm, n_cnt, n_dp, n_parity_in, n_parity_out, he_bits, n_extra =
      filler_shape p
    in
    A.filler ~name ~n_fsm ~n_cnt ~n_dp ~n_parity_in ~n_parity_out ~he_bits
      ~n_extra

let spec_of (leaf : A.leaf) =
  { Verifiable.Propgen.he = leaf.A.he;
    he_map = leaf.A.he_map;
    parity_inputs = leaf.A.parity_inputs;
    parity_outputs = leaf.A.parity_outputs;
    extra = leaf.A.extra_props }

let build ~id p =
  let leaf = leaf_of ~name:id p in
  let info = Verifiable.Transform.apply leaf.A.mdl in
  { id; params = p; leaf; info; spec = spec_of leaf }

let case_of ~seed ~index =
  let p = params_of ~seed ~index in
  (* underscores, not dashes: the id doubles as the Verilog module name *)
  let id = Printf.sprintf "fz%d_%d_%s" seed index (template_name p.template) in
  build ~id p

(* most aggressive reduction first, so the greedy shrinker converges in a
   few predicate evaluations when the failure is parameter-independent *)
let shrink_candidates p =
  let wlo, _ = width_range p.template in
  let dlo, _ = depth_range p.template in
  let dlo = if p.template = Fifo then 2 else dlo in
  let shrink_int lo v =
    List.sort_uniq compare [ lo; (lo + v) / 2; v - 1 ]
    |> List.filter (fun x -> x >= lo && x < v)
  in
  let widths =
    List.map (fun w -> { p with width = w }) (shrink_int wlo p.width)
  in
  let depths =
    let ds =
      if p.template = Fifo then if p.depth > 2 then [ 2 ] else []
      else shrink_int dlo p.depth
    in
    List.map (fun d -> { p with depth = d }) ds
  in
  let variants =
    List.sort_uniq compare [ 0; p.variant / 2; p.variant - 1 ]
    |> List.filter (fun v -> v >= 0 && v < p.variant)
    |> List.map (fun v -> { p with variant = v })
  in
  widths @ depths @ variants

let describe p =
  let base =
    Printf.sprintf "%s w=%d d=%d v=%d" (template_name p.template) p.width
      p.depth p.variant
  in
  let base =
    match p.template with
    | Decoder ->
      Printf.sprintf "%s cases=%d" base (decoder_valid_cases p.width)
    | Filler ->
      let f, c, d, pi, po, he, ex = filler_shape p in
      Printf.sprintf "%s shape=%d/%d/%d io=%d/%d he=%d extra=%d" base f c d
        pi po he ex
    | _ -> base
  in
  match p.mutation with
  | None -> base
  | Some id -> Printf.sprintf "%s bug=%s" base (B.name id)
