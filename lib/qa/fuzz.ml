module B = Chip.Bugs
module J = Obs.Json

type config = {
  seed : int;
  count : int;
  budget_s : float option;
  out_dir : string;
  inject : int option;
  gauntlet : bool;
}

let default_config =
  { seed = 0; count = 50; budget_s = None; out_dir = "fuzz-failures";
    inject = None; gauntlet = true }

type shrunk = {
  from_params : Gen.params;
  to_params : Gen.params;
  steps : int;
  evals : int;
  files : string list;
}

type summary = {
  config : config;
  cases_run : int;
  obligations : int;
  engine_runs : int;
  discrepancies : Differential.discrepancy list;
  shrunk : shrunk list;
  kill_table : (B.id * int * int) list;
  gauntlet_misses : (string * B.id * string) list;
  elapsed_s : float;
  budget_exhausted : bool;
}

let ok s = s.discrepancies = [] && s.gauntlet_misses = []

(* shrink a discrepant case, then re-run the battery on the minimal record
   so the emitted reproducer carries the minimal design's own verdicts *)
let shrink_and_emit ~out_dir ~inject (case : Gen.case) =
  let predicate = Differential.discrepant ~inject in
  let sr = Shrink.minimize ~predicate case.Gen.params in
  let min_case = Gen.build ~id:(case.Gen.id ^ "_min") sr.Shrink.minimal in
  let min_report = Differential.check_case ~inject min_case in
  let files = Shrink.emit ~dir:out_dir min_report in
  { from_params = sr.Shrink.original; to_params = sr.Shrink.minimal;
    steps = sr.Shrink.steps; evals = sr.Shrink.evals; files }

let run config =
  Obs.Telemetry.span ~cat:"qa" "qa.fuzz" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let over_budget () =
    match config.budget_s with None -> false | Some b -> elapsed () > b
  in
  let discrepancies = ref [] in
  let shrunk = ref [] in
  let kill_counts = Hashtbl.create 7 in
  let misses = ref [] in
  let cases_run = ref 0 in
  let obligations = ref 0 in
  let engine_runs = ref 0 in
  let budget_exhausted = ref false in
  let index = ref 0 in
  while !index < config.count && not !budget_exhausted do
    if over_budget () then budget_exhausted := true
    else begin
      let i = !index in
      let case = Gen.case_of ~seed:config.seed ~index:i in
      let inject = config.inject = Some i in
      let report = Differential.check_case ~inject case in
      incr cases_run;
      obligations := !obligations + List.length report.Differential.obligations;
      List.iter
        (fun (o : Differential.obligation_report) ->
          engine_runs :=
            !engine_runs + List.length o.Differential.engines)
        report.Differential.obligations;
      if report.Differential.discrepancies <> [] then begin
        discrepancies :=
          !discrepancies @ report.Differential.discrepancies;
        shrunk :=
          !shrunk @ [ shrink_and_emit ~out_dir:config.out_dir ~inject case ]
      end;
      if config.gauntlet && Gen.mutations case.Gen.params <> [] then begin
        let g = Mutate.run_case case.Gen.params ~id:case.Gen.id in
        List.iter
          (fun (k : Mutate.kill) ->
            let d, t =
              Option.value ~default:(0, 0)
                (Hashtbl.find_opt kill_counts k.Mutate.bug)
            in
            Hashtbl.replace kill_counts k.Mutate.bug
              ((d + if k.Mutate.detected then 1 else 0), t + 1);
            if not k.Mutate.detected then
              misses :=
                !misses
                @ [ (case.Gen.id, k.Mutate.bug,
                     Option.value ~default:"undetected" k.Mutate.detail) ])
          g.Mutate.kills
      end
    end;
    incr index
  done;
  let kill_table =
    List.filter_map
      (fun b ->
        Option.map (fun (d, t) -> (b, d, t)) (Hashtbl.find_opt kill_counts b))
      B.all
  in
  { config; cases_run = !cases_run; obligations = !obligations;
    engine_runs = !engine_runs; discrepancies = !discrepancies;
    shrunk = !shrunk; kill_table; gauntlet_misses = !misses;
    elapsed_s = elapsed (); budget_exhausted = !budget_exhausted }

let summary_json s =
  let per_s n = float_of_int n /. max s.elapsed_s 1e-9 in
  J.Obj
    [ ("schema", J.String "dicheck-fuzz-summary-v1");
      ("seed", J.Int s.config.seed);
      ("count", J.Int s.config.count);
      ("cases_run", J.Int s.cases_run);
      ("obligations", J.Int s.obligations);
      ("engine_runs", J.Int s.engine_runs);
      ("elapsed_s", J.Float s.elapsed_s);
      ("designs_per_s", J.Float (per_s s.cases_run));
      ("obligations_per_s", J.Float (per_s s.obligations));
      ("budget_exhausted", J.Bool s.budget_exhausted);
      ("discrepancies",
       J.List (List.map Shrink.discrepancy_json s.discrepancies));
      ("shrunk",
       J.List
         (List.map
            (fun sh ->
              J.Obj
                [ ("from", Shrink.params_json sh.from_params);
                  ("to", Shrink.params_json sh.to_params);
                  ("steps", J.Int sh.steps);
                  ("evals", J.Int sh.evals);
                  ("files",
                   J.List (List.map (fun f -> J.String f) sh.files)) ])
            s.shrunk));
      ("kill_table",
       J.List
         (List.map
            (fun (b, d, t) ->
              J.Obj
                [ ("bug", J.String (B.name b));
                  ("class",
                   J.String (Shrink.class_label (B.property_class b)));
                  ("detected", J.Int d);
                  ("attacked", J.Int t) ])
            s.kill_table));
      ("gauntlet_misses",
       J.List
         (List.map
            (fun (id, b, why) ->
              J.Obj
                [ ("case", J.String id);
                  ("bug", J.String (B.name b));
                  ("detail", J.String why) ])
            s.gauntlet_misses)) ]
