module E = Mc.Engine
module B = Chip.Bugs

type kill = {
  bug : B.id;
  cls : Verifiable.Propgen.prop_class;
  detected : bool;
  witness : string option;
  detail : string option;
  time_s : float;
}

type report = {
  case_id : string;
  params : Gen.params;
  kills : kill list;
}

let killed r =
  let d = List.length (List.filter (fun k -> k.detected) r.kills) in
  (d, List.length r.kills)

let verdict_summary outcome =
  match outcome.E.verdict with
  | E.Proved -> "proved"
  | E.Proved_bounded d -> Printf.sprintf "proved up to depth %d" d
  | E.Failed _ -> "failed (replay validation rejected the counterexample)"
  | E.Resource_out c -> Printf.sprintf "resource-out (%s)" c
  | E.Error m -> Printf.sprintf "error (%s)" m

(* a kill must be a replay-validated counterexample: a Failed verdict whose
   stimulus does not actually violate the property is itself an engine bug,
   not a detection *)
let attack_property mdl ~assert_ ~assumes =
  let nl, ok_signal, constraint_signal =
    E.instrumented_netlist mdl ~assert_ ~assumes
  in
  let outcome =
    E.check_netlist ~budget:Differential.fuzz_budget ?constraint_signal
      ~strategy:E.Auto nl ~ok_signal
  in
  match outcome.E.verdict with
  | E.Failed trace -> (
    let rnl, rok, rcons = E.replay_model mdl ~assert_ ~assumes in
    let run =
      Diag.Replay.run ?constraint_signal:rcons rnl ~ok_signal:rok
        (Mc.Trace.replay_stimulus trace)
    in
    match Diag.Replay.validate trace run with
    | Ok () -> Ok (Mc.Trace.length trace)
    | Error reason ->
      Error (Printf.sprintf "failed, but replay validation rejects: %s" reason))
  | _ -> Error (verdict_summary outcome)

let attack_mutant ~id params bug =
  Obs.Telemetry.span ~cat:"qa" "qa.mutant" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  Obs.Telemetry.count "qa.mutants";
  let cls = B.property_class bug in
  let mutant = Gen.with_mutation params bug in
  let case = Gen.build ~id:(Printf.sprintf "%s_%s" id (B.name bug)) mutant in
  let mdl = case.Gen.info.Verifiable.Transform.mdl in
  let props =
    Verifiable.Propgen.all case.Gen.info case.Gen.spec
    |> List.filter (fun (c, _) -> c = cls)
    |> List.concat_map (fun (_, vu) ->
           let assumes = List.map snd (Psl.Ast.assumes vu) in
           List.map (fun (n, a) -> (n, a, assumes)) (Psl.Ast.asserts vu))
  in
  let rec attack misses = function
    | [] ->
      let detail =
        if misses = [] then "no property of the expected class was generated"
        else
          String.concat "; "
            (List.rev_map (fun (n, why) -> n ^ ": " ^ why) misses)
      in
      (false, None, Some detail)
    | (name, assert_, assumes) :: rest -> (
      match attack_property mdl ~assert_ ~assumes with
      | Ok len ->
        Obs.Telemetry.count "qa.kills";
        (true, Some (Printf.sprintf "%s (counterexample length %d)" name len),
         None)
      | Error why -> attack ((name, why) :: misses) rest)
  in
  let detected, witness, detail = attack [] props in
  { bug; cls; detected; witness; detail;
    time_s = Unix.gettimeofday () -. t0 }

let run_case params ~id =
  let kills = List.map (attack_mutant ~id params) (Gen.mutations params) in
  { case_id = id; params; kills }
