module E = Mc.Engine
module J = Obs.Json

type result = {
  original : Gen.params;
  minimal : Gen.params;
  steps : int;
  evals : int;
}

let minimize ?(max_evals = 64) ~predicate original =
  Obs.Telemetry.span ~cat:"qa" "qa.shrink" @@ fun () ->
  let evals = ref 0 in
  let check p =
    incr evals;
    Obs.Telemetry.count "qa.shrink_evals";
    predicate p
  in
  let rec go current steps =
    let rec first_reproducing = function
      | [] -> None
      | c :: rest ->
        if !evals >= max_evals then None
        else if check c then Some c
        else first_reproducing rest
    in
    if !evals >= max_evals then (current, steps)
    else
      match first_reproducing (Gen.shrink_candidates current) with
      | Some c -> go c (steps + 1)
      | None -> (current, steps)
  in
  let minimal, steps = go original 0 in
  { original; minimal; steps; evals = !evals }

(* ---- reproducer emission ---- *)

let rec ensure_dir d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    ensure_dir (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let class_label = function
  | Verifiable.Propgen.P0 -> "P0"
  | P1 -> "P1"
  | P2 -> "P2"
  | P3 -> "P3"

let verdict_str = function
  | E.Proved -> "proved"
  | E.Proved_bounded d -> Printf.sprintf "proved-bounded:%d" d
  | E.Failed t -> Printf.sprintf "failed:%d" (Mc.Trace.length t)
  | E.Resource_out c -> "resource-out:" ^ c
  | E.Error m -> "error:" ^ m

let params_json (p : Gen.params) =
  J.Obj
    [ ("template", J.String (Gen.template_name p.Gen.template));
      ("width", J.Int p.Gen.width);
      ("depth", J.Int p.Gen.depth);
      ("variant", J.Int p.Gen.variant);
      ("mutation",
       match p.Gen.mutation with
       | None -> J.Null
       | Some b -> J.String (Chip.Bugs.name b)) ]

let engine_json (er : Differential.engine_result) =
  J.Obj
    [ ("strategy", J.String (E.strategy_name er.Differential.strategy));
      ("verdict", J.String (verdict_str er.Differential.outcome.E.verdict));
      ("engine_used", J.String er.Differential.outcome.E.engine_used);
      ("time_s", J.Float er.Differential.outcome.E.time_s);
      ("validated_fail",
       match er.Differential.validated_fail with
       | None -> J.Null
       | Some l -> J.Int l) ]

let obligation_json (o : Differential.obligation_report) =
  J.Obj
    [ ("prop", J.String o.Differential.prop_name);
      ("class", J.String (class_label o.Differential.cls));
      ("sim_sequences", J.Int o.Differential.sim_sequences);
      ("engines", J.List (List.map engine_json o.Differential.engines)) ]

let discrepancy_json (d : Differential.discrepancy) =
  J.Obj
    [ ("kind", J.String (Differential.kind_name d.Differential.kind));
      ("prop",
       match d.Differential.prop with
       | None -> J.Null
       | Some p -> J.String p);
      ("detail", J.String d.Differential.detail) ]

let emit ~dir (r : Differential.report) =
  ensure_dir dir;
  let case = r.Differential.case in
  let id = case.Gen.id in
  let base = Filename.concat dir id in
  let v_path = base ^ ".v" in
  write_file v_path
    (Rtl.Verilog.module_to_string case.Gen.info.Verifiable.Transform.mdl);
  let psl_path = base ^ ".psl" in
  write_file psl_path
    (Verifiable.Propgen.all case.Gen.info case.Gen.spec
    |> List.map (fun (_, vu) -> Psl.Print.vunit_to_string vu)
    |> String.concat "\n");
  let json_path = base ^ ".json" in
  write_file json_path
    (J.to_string_pretty
       (J.Obj
          [ ("schema", J.String "dicheck-fuzz-failure-v1");
            ("id", J.String id);
            ("params", params_json case.Gen.params);
            ("describe", J.String (Gen.describe case.Gen.params));
            ("roundtrip_ok", J.Bool r.Differential.roundtrip_ok);
            ("discrepancies",
             J.List
               (List.map discrepancy_json r.Differential.discrepancies));
            ("obligations",
             J.List (List.map obligation_json r.Differential.obligations)) ])
    ^ "\n");
  [ v_path; psl_path; json_path ]
