(** Cross-engine differential checking of one fuzz case.

    Every obligation of the case is run through each concrete engine
    strategy (forced via {!Mc.Engine.check_netlist} overrides, all sharing
    one prepared netlist), every counterexample is cross-validated with
    {!Diag.Replay} on the independently prepared replay model, small
    designs additionally get a bounded exhaustive simulation sweep, and
    the printed Verilog is parsed back and compared by canonical
    fingerprint. Any pairwise contradiction between those oracles is a
    discrepancy — the fuzzer's unit of failure. *)

type discrepancy_kind =
  | Verdict_split
      (** one engine proves what another (replay-validated) refutes *)
  | Replay_mismatch
      (** an engine counterexample fails {!Diag.Replay.validate} *)
  | Sim_mismatch
      (** bounded exhaustive simulation contradicts the engine consensus *)
  | Roundtrip_mismatch
      (** [parse (print d)] has a different canonical fingerprint than [d] *)
  | Injected  (** the artificial test-hook disagreement *)

val kind_name : discrepancy_kind -> string

type discrepancy = {
  kind : discrepancy_kind;
  case_id : string;
  prop : string option;  (** property name; [None] for round-trip *)
  detail : string;
}

type engine_result = {
  strategy : Mc.Engine.strategy;
  scratch : bool;
      (** [true] for the extra scratch-mode runs of the SAT engines
          ([budget.incremental = false]): the same strategy re-run with the
          persistent-solver path disabled, cross-checked against every
          other oracle like an independent engine *)
  outcome : Mc.Engine.outcome;
  validated_fail : int option;
      (** length of the counterexample when the verdict is [Failed] and the
          replay cross-check confirmed it *)
}

type obligation_report = {
  prop_name : string;
  cls : Verifiable.Propgen.prop_class;
  engines : engine_result list;
  sim_sequences : int;  (** exhaustive sequences simulated (0 = skipped) *)
}

type report = {
  case : Gen.case;
  obligations : obligation_report list;
  roundtrip_ok : bool;
  discrepancies : discrepancy list;
  time_s : float;
}

val strategies : Mc.Engine.strategy list
(** The concrete strategies exercised, escalation-free:
    BDD forward/backward/combined, POBDD, BMC, k-induction, IC3. The SAT
    strategies (BMC, k-induction, IC3) each run twice per obligation —
    incremental and scratch — so the warm-solver path is differentially
    checked against the rebuild-every-depth oracle on every fuzz case. *)

val fuzz_budget : Mc.Engine.budget
(** Reduced per-check budget (shallow BMC/induction depth, small node and
    conflict limits, a short wall deadline) sized for the generator's
    design envelope, so a pathological case times out instead of stalling
    the campaign. *)

val roundtrip : Rtl.Mdl.t -> (unit, string) result
(** The print/parse/fingerprint round-trip on its own: print the module as
    Verilog, parse it back, re-annotate, elaborate both and compare
    {!Rtl.Canon.fingerprint}s. *)

val check_case : ?inject:bool -> Gen.case -> report
(** Run the full differential battery. [inject] (default [false]) appends
    an artificial [Injected] discrepancy — the test hook that lets the
    shrinking and exit-code paths be exercised without a real engine bug. *)

val discrepant : ?inject:bool -> Gen.params -> bool
(** Rebuild the design for [params] and re-run the battery: does any
    discrepancy remain? This is the shrinker's predicate. *)
