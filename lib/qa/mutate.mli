(** The mutation gauntlet: seed each Table 3 bug class a fuzz template can
    host into the generated design and assert that the stereotype property
    of the bug's class ({!Chip.Bugs.property_class}) refutes it with a
    replay-validated counterexample. Every class in Table 3 is formally
    detectable, so anything short of a validated kill is a gauntlet miss —
    the fuzzer's regression signal for the engines and the property
    generator alike. *)

type kill = {
  bug : Chip.Bugs.id;
  cls : Verifiable.Propgen.prop_class;  (** the class expected to catch it *)
  detected : bool;
  witness : string option;
      (** refuting property and counterexample length, when detected *)
  detail : string option;  (** why it was missed, when not *)
  time_s : float;
}

type report = {
  case_id : string;
  params : Gen.params;  (** clean parameters the mutants derive from *)
  kills : kill list;  (** one per hostable bug class; may be empty *)
}

val killed : report -> int * int
(** [(detected, total)] over the report's kills. *)

val run_case : Gen.params -> id:string -> report
(** Build and attack every mutant of the (clean) parameter record. *)
