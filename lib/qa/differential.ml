module E = Mc.Engine

type discrepancy_kind =
  | Verdict_split
  | Replay_mismatch
  | Sim_mismatch
  | Roundtrip_mismatch
  | Injected

let kind_name = function
  | Verdict_split -> "verdict-split"
  | Replay_mismatch -> "replay-mismatch"
  | Sim_mismatch -> "sim-mismatch"
  | Roundtrip_mismatch -> "roundtrip-mismatch"
  | Injected -> "injected"

type discrepancy = {
  kind : discrepancy_kind;
  case_id : string;
  prop : string option;
  detail : string;
}

type engine_result = {
  strategy : E.strategy;
  scratch : bool;
  outcome : E.outcome;
  validated_fail : int option;
}

type obligation_report = {
  prop_name : string;
  cls : Verifiable.Propgen.prop_class;
  engines : engine_result list;
  sim_sequences : int;
}

type report = {
  case : Gen.case;
  obligations : obligation_report list;
  roundtrip_ok : bool;
  discrepancies : discrepancy list;
  time_s : float;
}

let strategies =
  [ E.Bdd_forward; E.Bdd_backward; E.Bdd_combined; E.Pobdd; E.Bmc; E.Kind;
    E.Ic3 ]

(* the SAT engines additionally run with [incremental = false], so every
   fuzz case cross-checks the warm persistent-solver path against the
   rebuild-from-scratch oracle through the same verdict-split / replay /
   simulation machinery as any other engine pair *)
let scratch_strategies = [ E.Bmc; E.Kind; E.Ic3 ]

let fuzz_budget =
  {
    E.bdd_node_limit = Some 500_000;
    pobdd_node_limit = Some 1_000_000;
    pobdd_split_vars = 2;
    bmc_depth = 8;
    induction_max_k = 8;
    sat_max_conflicts = 200_000;
    ic3_max_frames = 16;
    wall_deadline_s = Some 10.0;
    incremental = true;
  }

let run_name er =
  let n = E.strategy_name er.strategy in
  if er.scratch then n ^ "[scratch]" else n

(* ---- Verilog print/parse round-trip, compared by canonical fingerprint *)

let roundtrip (m : Rtl.Mdl.t) =
  let fingerprint mdl =
    Rtl.Canon.fingerprint
      (Rtl.Elaborate.run
         (Rtl.Design.of_modules [ mdl ])
         ~top:mdl.Rtl.Mdl.name)
  in
  match Rtl.Vparse.parse (Rtl.Verilog.module_to_string m) with
  | [ parsed ] ->
    let parsed = Rtl.Vparse.annotate_like ~reference:m parsed in
    let a = fingerprint m and b = fingerprint parsed in
    if String.equal a b then Ok ()
    else Error (Printf.sprintf "canonical fingerprint %s <> %s" a b)
  | ms -> Error (Printf.sprintf "parse returned %d modules" (List.length ms))
  | exception e -> Error (Printexc.to_string e)

(* ---- bounded exhaustive simulation on the replay model ---- *)

(* sweep every input sequence of [total_bits / input_bits] cycles, as long
   as that is at most 2^sim_limit_bits replays *)
let sim_limit_bits = 10

let exhaustive_sim rnl ~ok_signal ~constraint_signal =
  let inputs = rnl.Rtl.Netlist.inputs in
  let b = List.fold_left (fun a (_, w) -> a + w) 0 inputs in
  if b = 0 || b > sim_limit_bits then None
  else begin
    let depth = max 1 (sim_limit_bits / b) in
    let total = 1 lsl (b * depth) in
    let stim_of n =
      let rec cycles c off acc =
        if c = depth then List.rev acc
        else
          let vec, off =
            List.fold_left
              (fun (vec, off) (name, w) ->
                let v = Bitvec.init w (fun i -> (n lsr (off + i)) land 1 = 1) in
                ((name, v) :: vec, off + w))
              ([], off) inputs
          in
          cycles (c + 1) off (List.rev vec :: acc)
      in
      cycles 0 0 []
    in
    let first_fail = ref None in
    let n = ref 0 in
    while !first_fail = None && !n < total do
      let run =
        Diag.Replay.run ~capture:false ?constraint_signal rnl ~ok_signal
          (stim_of !n)
      in
      (match run.Diag.Replay.fail_cycle with
      | Some c -> first_fail := Some c
      | None -> ());
      incr n
    done;
    Obs.Telemetry.count ~n:!n "qa.sim_sequences";
    Some (total, depth, !first_fail)
  end

(* ---- verdict agreement ---- *)

type claim = Holds | Bounded of int | Refuted of int | Unknown

let claim_of er =
  match er.outcome.E.verdict with
  | E.Proved -> Holds
  | E.Proved_bounded d -> Bounded d
  | E.Failed _ -> (
    match er.validated_fail with Some l -> Refuted l | None -> Unknown)
  | E.Resource_out _ | E.Error _ -> Unknown

let check_obligation ~case_id mdl ~cls ~prop_name ~assert_ ~assumes =
  let nl, ok_signal, constraint_signal =
    E.instrumented_netlist mdl ~assert_ ~assumes
  in
  let replay = lazy (E.replay_model mdl ~assert_ ~assumes) in
  let discs = ref [] in
  let add kind detail =
    discs := { kind; case_id; prop = Some prop_name; detail } :: !discs
  in
  let runs =
    List.map (fun s -> (s, false)) strategies
    @ List.map (fun s -> (s, true)) scratch_strategies
  in
  let engines =
    List.map
      (fun (strategy, scratch) ->
        Obs.Telemetry.count "qa.engine_runs";
        let name =
          E.strategy_name strategy ^ if scratch then "[scratch]" else ""
        in
        let budget =
          if scratch then { fuzz_budget with E.incremental = false }
          else fuzz_budget
        in
        let outcome =
          E.check_netlist ~budget ?constraint_signal ~strategy nl ~ok_signal
        in
        let validated_fail =
          match outcome.E.verdict with
          | E.Failed trace -> (
            let rnl, rok, rcons = Lazy.force replay in
            let run =
              Diag.Replay.run ?constraint_signal:rcons rnl ~ok_signal:rok
                (Mc.Trace.replay_stimulus trace)
            in
            match Diag.Replay.validate trace run with
            | Ok () -> Some (Mc.Trace.length trace)
            | Error reason ->
              add Replay_mismatch
                (Printf.sprintf "%s counterexample fails replay validation: %s"
                   name reason);
              None)
          | _ -> None
        in
        { strategy; scratch; outcome; validated_fail })
      runs
  in
  (* a replay-validated refutation contradicts any proof, and any bounded
     proof whose horizon covers the violation cycle *)
  List.iter
    (fun refuter ->
      match claim_of refuter with
      | Refuted l ->
        List.iter
          (fun prover ->
            let split d =
              add Verdict_split
                (Printf.sprintf
                   "%s proves%s but %s has a validated counterexample at \
                    cycle %d"
                   (run_name prover)
                   (match d with
                   | None -> ""
                   | Some d -> Printf.sprintf " up to depth %d" d)
                   (run_name refuter) (l - 1))
            in
            match claim_of prover with
            | Holds -> split None
            | Bounded d when l - 1 <= d -> split (Some d)
            | _ -> ())
          engines
      | _ -> ())
    engines;
  (* exhaustive simulation is a third oracle over the same model *)
  let rnl, rok, rcons = Lazy.force replay in
  let sim = exhaustive_sim rnl ~ok_signal:rok ~constraint_signal:rcons in
  (match sim with
  | None -> ()
  | Some (_, _, Some c) ->
    List.iter
      (fun er ->
        match claim_of er with
        | Holds ->
          add Sim_mismatch
            (Printf.sprintf
               "exhaustive simulation violates at cycle %d but %s proves" c
               (run_name er))
        | Bounded d when c <= d ->
          add Sim_mismatch
            (Printf.sprintf
               "exhaustive simulation violates at cycle %d but %s proves up \
                to depth %d"
               c (run_name er) d)
        | _ -> ())
      engines
  | Some (_, depth, None) ->
    List.iter
      (fun er ->
        match claim_of er with
        | Refuted l when l <= depth ->
          add Sim_mismatch
            (Printf.sprintf
               "%s has a validated counterexample of length %d but \
                exhaustive simulation to depth %d finds none"
               (run_name er) l depth)
        | _ -> ())
      engines);
  let sim_sequences = match sim with None -> 0 | Some (t, _, _) -> t in
  ({ prop_name; cls; engines; sim_sequences }, List.rev !discs)

let check_case ?(inject = false) (case : Gen.case) =
  Obs.Telemetry.span ~cat:"qa" "qa.case" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  Obs.Telemetry.count "qa.cases";
  let mdl = case.Gen.info.Verifiable.Transform.mdl in
  let roundtrip_discs =
    match roundtrip mdl with
    | Ok () -> []
    | Error detail ->
      [ { kind = Roundtrip_mismatch; case_id = case.Gen.id; prop = None;
          detail } ]
  in
  let vunits = Verifiable.Propgen.all case.Gen.info case.Gen.spec in
  let checked =
    List.concat_map
      (fun (cls, vu) ->
        let assumes = List.map snd (Psl.Ast.assumes vu) in
        List.map
          (fun (prop_name, assert_) ->
            Obs.Telemetry.count "qa.obligations";
            check_obligation ~case_id:case.Gen.id mdl ~cls ~prop_name ~assert_
              ~assumes)
          (Psl.Ast.asserts vu))
      vunits
  in
  let obligations = List.map fst checked in
  let engine_discs = List.concat_map snd checked in
  let injected =
    if inject then
      [ { kind = Injected; case_id = case.Gen.id; prop = None;
          detail = "synthetic disagreement (test hook)" } ]
    else []
  in
  let discrepancies = roundtrip_discs @ engine_discs @ injected in
  Obs.Telemetry.count ~n:(List.length discrepancies) "qa.discrepancies";
  { case; obligations; roundtrip_ok = roundtrip_discs = [];
    discrepancies; time_s = Unix.gettimeofday () -. t0 }

let discrepant ?(inject = false) params =
  let case = Gen.build ~id:"shrink" params in
  (check_case ~inject case).discrepancies <> []
