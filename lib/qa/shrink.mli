(** Greedy delta-debugging of a discrepant fuzz case, plus emission of
    self-contained reproducers.

    The shrinker works at the parameter level: {!Gen.shrink_candidates}
    proposes strictly smaller records, and the first candidate the
    predicate still flags replaces the current record, until no candidate
    reproduces. Because {!Gen.build} is pure, a minimal parameter record
    IS the minimal design. *)

type result = {
  original : Gen.params;
  minimal : Gen.params;
  steps : int;  (** accepted reductions *)
  evals : int;  (** predicate evaluations spent *)
}

val minimize :
  ?max_evals:int -> predicate:(Gen.params -> bool) -> Gen.params -> result
(** [predicate] must hold on the starting record (typically
    {!Differential.discrepant}); [max_evals] (default 64) bounds the
    predicate budget, each evaluation being a full differential battery. *)

val class_label : Verifiable.Propgen.prop_class -> string
(** ["P0"].."P3"] — the short Table 2 column label. *)

val params_json : Gen.params -> Obs.Json.t
val discrepancy_json : Differential.discrepancy -> Obs.Json.t

val emit : dir:string -> Differential.report -> string list
(** Write a self-contained reproducer for a discrepant case under [dir]
    (created if missing): [<id>.v] — the transformed design as Verilog;
    [<id>.psl] — its obligation vunits; [<id>.json] — parameters,
    per-engine verdicts and discrepancies (schema
    ["dicheck-fuzz-failure-v1"]). Returns the written paths. *)
