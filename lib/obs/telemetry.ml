type span = {
  name : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  args : (string * string) list;
}

type report = {
  wall_s : float;
  domains : int;
  counters : (string * int) list;
  spans : span list;
}

(* One buffer per (collector, domain): all recording is domain-local, so
   concurrent obligations never contend. The generation stamp ties a DLS
   buffer to the collector it belongs to — a stale buffer from a previous
   collector is simply re-registered. *)
type buf = {
  b_gen : int;
  b_tid : int;
  mutable b_spans : span list;
  b_counters : (string, int) Hashtbl.t;
}

type collector = {
  gen : int;
  t0 : float;
  lock : Mutex.t;
  mutable bufs : buf list;
  mutable next_tid : int;
}

let current : collector option Atomic.t = Atomic.make None
let generation = Atomic.make 0
let probe = Atomic.make 0

let calls_probe () = Atomic.get probe

let dls : buf option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let buf_of c =
  match Domain.DLS.get dls with
  | Some b when b.b_gen = c.gen -> b
  | Some _ | None ->
    Mutex.lock c.lock;
    let tid = c.next_tid in
    c.next_tid <- tid + 1;
    let b =
      { b_gen = c.gen; b_tid = tid; b_spans = [];
        b_counters = Hashtbl.create 64 }
    in
    c.bufs <- b :: c.bufs;
    Mutex.unlock c.lock;
    Domain.DLS.set dls (Some b);
    b

let start () =
  let gen = 1 + Atomic.fetch_and_add generation 1 in
  Atomic.set current
    (Some
       { gen; t0 = Unix.gettimeofday (); lock = Mutex.create (); bufs = [];
         next_tid = 0 })

let active () = Atomic.get current <> None

let count ?(n = 1) name =
  Atomic.incr probe;
  match Atomic.get current with
  | None -> ()
  | Some c ->
    let b = buf_of c in
    (match Hashtbl.find_opt b.b_counters name with
     | Some v -> Hashtbl.replace b.b_counters name (v + n)
     | None -> Hashtbl.replace b.b_counters name n)

let span ?(cat = "default") ?(args = []) name f =
  Atomic.incr probe;
  match Atomic.get current with
  | None -> f ()
  | Some c ->
    let b = buf_of c in
    let t0 = Unix.gettimeofday () in
    let record () =
      let t1 = Unix.gettimeofday () in
      b.b_spans <-
        { name; cat; ts_us = (t0 -. c.t0) *. 1e6;
          dur_us = (t1 -. t0) *. 1e6; tid = b.b_tid; args }
        :: b.b_spans
    in
    (match f () with
     | v ->
       record ();
       v
     | exception e ->
       record ();
       raise e)

let stop () =
  match Atomic.get current with
  | None -> { wall_s = 0.0; domains = 0; counters = []; spans = [] }
  | Some c ->
    Atomic.set current None;
    (* recording domains have either finished (the campaign joined its pool)
       or will harmlessly keep writing to buffers we snapshot here *)
    Mutex.lock c.lock;
    let bufs = c.bufs in
    Mutex.unlock c.lock;
    let merged = Hashtbl.create 64 in
    List.iter
      (fun b ->
        Hashtbl.iter
          (fun k v ->
            match Hashtbl.find_opt merged k with
            | Some v0 -> Hashtbl.replace merged k (v0 + v)
            | None -> Hashtbl.replace merged k v)
          b.b_counters)
      bufs;
    let counters =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged [])
    in
    let spans =
      List.sort
        (fun a b -> compare (a.ts_us, a.tid, a.name) (b.ts_us, b.tid, b.name))
        (List.concat_map (fun b -> b.b_spans) bufs)
    in
    { wall_s = Unix.gettimeofday () -. c.t0;
      domains = List.length bufs; counters; spans }

let counter r name =
  match List.assoc_opt name r.counters with Some v -> v | None -> 0
