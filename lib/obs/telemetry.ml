type span = {
  name : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  alloc_mw : float;
  tid : int;
  args : (string * string) list;
}

type hist = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : int array;
}

(* Log-scale upper bounds shared by every histogram; the final bucket is the
   overflow (> last bound). Seconds-flavoured, but any unit works. *)
let bucket_bounds =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0; 100.0 |]

let n_buckets = Array.length bucket_bounds + 1

type report = {
  wall_s : float;
  domains : int;
  counters : (string * int) list;
  hists : (string * hist) list;
  spans : span list;
}

(* One buffer per (collector, domain): all recording is domain-local, so
   concurrent obligations never contend. The generation stamp ties a DLS
   buffer to the collector it belongs to — a stale buffer from a previous
   collector is simply re-registered. *)
type hrec = {
  mutable hr_count : int;
  mutable hr_sum : float;
  mutable hr_min : float;
  mutable hr_max : float;
  hr_buckets : int array;
}

type buf = {
  b_gen : int;
  b_tid : int;
  mutable b_spans : span list;
  b_counters : (string, int) Hashtbl.t;
  b_hists : (string, hrec) Hashtbl.t;
}

type collector = {
  gen : int;
  t0 : float;
  lock : Mutex.t;
  mutable bufs : buf list;
  mutable next_tid : int;
}

let current : collector option Atomic.t = Atomic.make None
let generation = Atomic.make 0
let probe = Atomic.make 0

let calls_probe () = Atomic.get probe

let dls : buf option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let buf_of c =
  match Domain.DLS.get dls with
  | Some b when b.b_gen = c.gen -> b
  | Some _ | None ->
    Mutex.lock c.lock;
    let tid = c.next_tid in
    c.next_tid <- tid + 1;
    let b =
      { b_gen = c.gen; b_tid = tid; b_spans = [];
        b_counters = Hashtbl.create 64; b_hists = Hashtbl.create 16 }
    in
    c.bufs <- b :: c.bufs;
    Mutex.unlock c.lock;
    Domain.DLS.set dls (Some b);
    b

let start () =
  let gen = 1 + Atomic.fetch_and_add generation 1 in
  Atomic.set current
    (Some
       { gen; t0 = Unix.gettimeofday (); lock = Mutex.create (); bufs = [];
         next_tid = 0 })

let active () = Atomic.get current <> None

let count ?(n = 1) name =
  Atomic.incr probe;
  match Atomic.get current with
  | None -> ()
  | Some c ->
    let b = buf_of c in
    (match Hashtbl.find_opt b.b_counters name with
     | Some v -> Hashtbl.replace b.b_counters name (v + n)
     | None -> Hashtbl.replace b.b_counters name n)

let observe name v =
  Atomic.incr probe;
  match Atomic.get current with
  | None -> ()
  | Some c ->
    let b = buf_of c in
    let h =
      match Hashtbl.find_opt b.b_hists name with
      | Some h -> h
      | None ->
        let h =
          { hr_count = 0; hr_sum = 0.0; hr_min = infinity;
            hr_max = neg_infinity; hr_buckets = Array.make n_buckets 0 }
        in
        Hashtbl.add b.b_hists name h;
        h
    in
    h.hr_count <- h.hr_count + 1;
    h.hr_sum <- h.hr_sum +. v;
    if v < h.hr_min then h.hr_min <- v;
    if v > h.hr_max then h.hr_max <- v;
    let n = Array.length bucket_bounds in
    let rec idx i = if i >= n || v <= bucket_bounds.(i) then i else idx (i + 1) in
    let i = idx 0 in
    h.hr_buckets.(i) <- h.hr_buckets.(i) + 1

let span ?(cat = "default") ?(args = []) name f =
  Atomic.incr probe;
  match Atomic.get current with
  | None -> f ()
  | Some c ->
    let b = buf_of c in
    let t0 = Unix.gettimeofday () in
    let a0 = Gc.minor_words () in
    let record () =
      let t1 = Unix.gettimeofday () in
      b.b_spans <-
        { name; cat; ts_us = (t0 -. c.t0) *. 1e6;
          dur_us = (t1 -. t0) *. 1e6;
          alloc_mw = Gc.minor_words () -. a0; tid = b.b_tid; args }
        :: b.b_spans
    in
    (match f () with
     | v ->
       record ();
       v
     | exception e ->
       record ();
       raise e)

let stop () =
  match Atomic.get current with
  | None -> { wall_s = 0.0; domains = 0; counters = []; hists = []; spans = [] }
  | Some c ->
    Atomic.set current None;
    (* recording domains have either finished (the campaign joined its pool)
       or will harmlessly keep writing to buffers we snapshot here *)
    Mutex.lock c.lock;
    let bufs = c.bufs in
    Mutex.unlock c.lock;
    let merged = Hashtbl.create 64 in
    List.iter
      (fun b ->
        Hashtbl.iter
          (fun k v ->
            match Hashtbl.find_opt merged k with
            | Some v0 -> Hashtbl.replace merged k (v0 + v)
            | None -> Hashtbl.replace merged k v)
          b.b_counters)
      bufs;
    let counters =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged [])
    in
    let merged_h : (string, hrec) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun b ->
        Hashtbl.iter
          (fun k (h : hrec) ->
            match Hashtbl.find_opt merged_h k with
            | Some m ->
              m.hr_count <- m.hr_count + h.hr_count;
              m.hr_sum <- m.hr_sum +. h.hr_sum;
              if h.hr_min < m.hr_min then m.hr_min <- h.hr_min;
              if h.hr_max > m.hr_max then m.hr_max <- h.hr_max;
              Array.iteri
                (fun i n -> m.hr_buckets.(i) <- m.hr_buckets.(i) + n)
                h.hr_buckets
            | None ->
              Hashtbl.replace merged_h k
                { hr_count = h.hr_count; hr_sum = h.hr_sum; hr_min = h.hr_min;
                  hr_max = h.hr_max; hr_buckets = Array.copy h.hr_buckets })
          b.b_hists)
      bufs;
    let hists =
      List.sort compare
        (Hashtbl.fold
           (fun k (h : hrec) acc ->
             ( k,
               { h_count = h.hr_count; h_sum = h.hr_sum;
                 h_min = (if h.hr_count = 0 then 0.0 else h.hr_min);
                 h_max = (if h.hr_count = 0 then 0.0 else h.hr_max);
                 h_buckets = h.hr_buckets } )
             :: acc)
           merged_h [])
    in
    let spans =
      List.sort
        (fun a b -> compare (a.ts_us, a.tid, a.name) (b.ts_us, b.tid, b.name))
        (List.concat_map (fun b -> b.b_spans) bufs)
    in
    { wall_s = Unix.gettimeofday () -. c.t0;
      domains = List.length bufs; counters; hists; spans }

let counter r name =
  match List.assoc_opt name r.counters with Some v -> v | None -> 0

let hist r name = List.assoc_opt name r.hists
