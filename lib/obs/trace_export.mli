(** Chrome [trace_event] export of a telemetry report.

    Produces the JSON object format ([{"traceEvents": [...]}]) that
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto} load
    directly: one lane ([tid]) per recording domain, one complete ([ph:"X"])
    slice per span, with span args attached. Timestamps are microseconds
    since the collector started, which is what the viewers expect. *)

val to_json : Telemetry.report -> Json.t
(** The trace as a JSON value: thread-name metadata events for each lane
    followed by one ["X"] event per span, all under [pid] 1. *)

val to_chrome_string : Telemetry.report -> string

val write : string -> Telemetry.report -> unit
(** Write {!to_chrome_string} to a file. *)
