type run_cmp = {
  d_label : string;
  d_base_wall_s : float;
  d_cur_wall_s : float;
  d_ratio : float;
  d_verdicts_ok : bool;
  d_regressed : bool;
  d_notes : string list;
}

type t = {
  threshold : float;
  runs : run_cmp list;
  only_base : string list;
  only_cur : string list;
  ok : bool;
}

let verdict_fields = [ "properties"; "proved"; "failed"; "resource_out";
                       "errors" ]

let runs_of j =
  match Option.bind (Json.member "runs" j) Json.to_list with
  | None -> Error "missing or non-list \"runs\""
  | Some rs ->
    let labelled r =
      match Option.bind (Json.member "label" r) Json.to_str with
      | Some l -> Some (l, r)
      | None -> None
    in
    Ok (List.filter_map labelled rs)

(* wall_s is what a bench emission records; a committed baseline records only
   the generous ceiling max_wall_s — fall back so diffing fresh-vs-baseline
   works out of the box. *)
let wall_of r =
  match Option.bind (Json.member "wall_s" r) Json.to_float with
  | Some w -> Some w
  | None -> Option.bind (Json.member "max_wall_s" r) Json.to_float

let compare_run ~threshold label base cur =
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let verdicts_ok =
    List.for_all
      (fun f ->
        let get r = Option.bind (Json.member f r) Json.to_int in
        match (get base, get cur) with
        | Some b, Some c when b <> c ->
          note "%s: %d -> %d" f b c;
          false
        | _ -> true)
      verdict_fields
  in
  let bw = wall_of base and cw = wall_of cur in
  let base_wall = Option.value bw ~default:0.0 in
  let cur_wall = Option.value cw ~default:0.0 in
  let ratio =
    match (bw, cw) with
    | Some b, Some c when b > 0.0 -> c /. b
    | _ -> 1.0
  in
  let throughput_regressed = ratio > 1.0 +. threshold in
  if throughput_regressed then
    note "wall %.1fs -> %.1fs (%.2fx > %.2fx allowed)" base_wall cur_wall
      ratio (1.0 +. threshold);
  { d_label = label; d_base_wall_s = base_wall; d_cur_wall_s = cur_wall;
    d_ratio = ratio; d_verdicts_ok = verdicts_ok;
    d_regressed = (not verdicts_ok) || throughput_regressed;
    d_notes = List.rev !notes }

let diff ?(threshold = 0.2) ~baseline ~current () =
  match (runs_of baseline, runs_of current) with
  | Error e, _ -> Error ("baseline: " ^ e)
  | _, Error e -> Error ("current: " ^ e)
  | Ok base_runs, Ok cur_runs ->
    let runs =
      List.filter_map
        (fun (label, b) ->
          match List.assoc_opt label cur_runs with
          | Some c -> Some (compare_run ~threshold label b c)
          | None -> None)
        base_runs
    in
    let only_base =
      List.filter_map
        (fun (l, _) ->
          if List.mem_assoc l cur_runs then None else Some l)
        base_runs
    in
    let only_cur =
      List.filter_map
        (fun (l, _) ->
          if List.mem_assoc l base_runs then None else Some l)
        cur_runs
    in
    if runs = [] then Error "no common run labels to compare"
    else
      Ok
        { threshold; runs; only_base; only_cur;
          ok = List.for_all (fun r -> not r.d_regressed) runs }

let to_json t =
  Json.Obj
    [ ("schema", Json.String "dicheck-bench-diff-v1");
      ("threshold", Json.Float t.threshold);
      ("ok", Json.Bool t.ok);
      ("only_baseline", Json.List (List.map (fun s -> Json.String s)
                                     t.only_base));
      ("only_current", Json.List (List.map (fun s -> Json.String s)
                                    t.only_cur));
      ("runs",
       Json.List
         (List.map
            (fun r ->
              Json.Obj
                [ ("label", Json.String r.d_label);
                  ("base_wall_s", Json.Float r.d_base_wall_s);
                  ("cur_wall_s", Json.Float r.d_cur_wall_s);
                  ("ratio", Json.Float r.d_ratio);
                  ("verdicts_ok", Json.Bool r.d_verdicts_ok);
                  ("regressed", Json.Bool r.d_regressed);
                  ("notes",
                   Json.List
                     (List.map (fun s -> Json.String s) r.d_notes)) ])
            t.runs)) ]

let pp fmt t =
  Format.fprintf fmt "bench diff (threshold %.0f%%): %s@."
    (100.0 *. t.threshold)
    (if t.ok then "PASS" else "FAIL");
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-18s %8.1fs -> %8.1fs  %5.2fx  %s@." r.d_label
        r.d_base_wall_s r.d_cur_wall_s r.d_ratio
        (if r.d_regressed then "REGRESSED" else "ok");
      List.iter (fun n -> Format.fprintf fmt "      %s@." n) r.d_notes)
    t.runs;
  List.iter
    (fun l -> Format.fprintf fmt "  (baseline-only run %s skipped)@." l)
    t.only_base;
  List.iter
    (fun l -> Format.fprintf fmt "  (new run %s has no baseline)@." l)
    t.only_cur
