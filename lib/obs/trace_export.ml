let to_json (r : Telemetry.report) =
  let tids =
    List.sort_uniq compare
      (List.map (fun (s : Telemetry.span) -> s.Telemetry.tid) r.Telemetry.spans)
  in
  let thread_meta tid =
    Json.Obj
      [ ("ph", Json.String "M"); ("pid", Json.Int 1); ("tid", Json.Int tid);
        ("name", Json.String "thread_name");
        ("args",
         Json.Obj [ ("name", Json.String (Printf.sprintf "domain-%d" tid)) ])
      ]
  in
  let slice (s : Telemetry.span) =
    Json.Obj
      [ ("name", Json.String s.Telemetry.name);
        ("cat", Json.String s.Telemetry.cat); ("ph", Json.String "X");
        ("ts", Json.Float s.Telemetry.ts_us);
        ("dur", Json.Float s.Telemetry.dur_us); ("pid", Json.Int 1);
        ("tid", Json.Int s.Telemetry.tid);
        ("args",
         Json.Obj
           (("alloc_w", Json.Float s.Telemetry.alloc_mw)
            :: List.map (fun (k, v) -> (k, Json.String v)) s.Telemetry.args))
      ]
  in
  Json.Obj
    [ ("traceEvents",
       Json.List
         (List.map thread_meta tids @ List.map slice r.Telemetry.spans));
      ("displayTimeUnit", Json.String "ms") ]

let to_chrome_string r = Json.to_string (to_json r)

let write path r =
  let oc = open_out path in
  (try output_string oc (to_chrome_string r)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc
