(** Flight recorder: an always-on, bounded, per-domain ring buffer of recent
    campaign events, merged on demand into a crash dump.

    Telemetry ({!Telemetry}) answers "how much work happened" after a clean
    run; the flight recorder answers "what was happening just now" when a
    run is anything but clean — hung, killed, crashed, or resource-out. It
    is cheap enough to leave on for every campaign:

    - {b per-domain rings}: each recording domain gets its own fixed-size
      ring (via [Domain.DLS], registered once under a lock). A {!record} is
      three array stores and a counter bump into domain-local state — no
      cross-domain contention, no allocation beyond the strings the caller
      already built, and old events are overwritten in place, so memory is
      bounded by [capacity × domains] regardless of campaign length.
    - {b near-zero cost when disabled}: with no recorder installed,
      {!record} is one atomic probe increment plus a load-and-branch — the
      same discipline as Telemetry's disabled path, checked by the same
      [Gc.minor_words] test idiom via {!calls_probe}.

    Snapshots ({!events}, {!to_json}, {!dump}) merge the per-domain rings
    into a single time-ordered view of the last [capacity] events per
    domain. The dump consumers are the CLI's crash/[SIGUSR1]/deadline
    handlers — every [Resource_out]/[Error] verdict can carry its recent
    history. *)

type event = {
  seq : int;  (** per-lane sequence number, 0-based from {!enable} *)
  t_s : float;  (** absolute Unix time of the record *)
  lane : int;  (** recording lane: registration order within this recorder *)
  kind : string;  (** e.g. ["ob.done"], ["ob.retry"], ["race.cancelled"] *)
  detail : string;  (** free-form payload, e.g. ["alu0.p2_parity proved ic3"] *)
}

val enable : ?capacity:int -> unit -> unit
(** Install a fresh recorder whose per-domain rings hold the last
    [capacity] (default 512) events each. An already-active recorder is
    replaced and its events are dropped. Raises [Invalid_argument] on
    [capacity < 1]. *)

val disable : unit -> unit
(** Uninstall the recorder; subsequent {!record}s are free no-ops. *)

val active : unit -> bool

val record : ?detail:string -> string -> unit
(** Append one event to the calling domain's ring, overwriting the oldest
    once the ring is full. Allocation-free (beyond caller strings) when a
    recorder is active; a probe increment and branch when not. *)

val events : unit -> event list
(** Merge every lane's surviving events, sorted by [(t_s, lane, seq)] —
    so each lane's events appear in recording order, interleaved across
    lanes by time. Empty when no recorder is active. Lanes still recording
    concurrently may contribute one torn event; quiesced rings merge
    exactly. *)

val dropped : unit -> int
(** Total events overwritten (recorded beyond ring capacity) across all
    lanes, 0 when inactive. *)

val to_json : reason:string -> unit -> Json.t
(** The merged snapshot as schema ["dicheck-flight-v1"]: [reason] (e.g.
    ["sigusr1"], ["crash"], ["resource-out"]), dump time, capacity, lane
    and dropped counts, and the event list. *)

val dump : reason:string -> string -> unit
(** Write {!to_json} pretty-printed to a file. *)

val calls_probe : unit -> int
(** Process-lifetime total of {!record} invocations, counted whether or not
    a recorder is active — the zero-overhead test's hook. *)
