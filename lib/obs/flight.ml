type event = {
  seq : int;
  t_s : float;
  lane : int;
  kind : string;
  detail : string;
}

(* One ring per (recorder, domain). All recording is domain-local: a write is
   three array stores plus a counter bump, no allocation beyond the event
   strings the caller already built. The generation stamp ties a DLS ring to
   the recorder it belongs to, exactly like Telemetry's buffers. *)
type ring = {
  r_gen : int;
  r_lane : int;
  r_kind : string array;
  r_detail : string array;
  r_time : float array;
  mutable r_n : int;  (* events ever recorded in this ring; index = n mod cap *)
}

type recorder = {
  gen : int;
  cap : int;
  lock : Mutex.t;
  mutable rings : ring list;
  mutable next_lane : int;
}

let current : recorder option Atomic.t = Atomic.make None
let generation = Atomic.make 0
let probe = Atomic.make 0

let calls_probe () = Atomic.get probe

let dls : ring option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let ring_of c =
  match Domain.DLS.get dls with
  | Some r when r.r_gen = c.gen -> r
  | Some _ | None ->
    Mutex.lock c.lock;
    let lane = c.next_lane in
    c.next_lane <- lane + 1;
    let r =
      { r_gen = c.gen; r_lane = lane; r_kind = Array.make c.cap "";
        r_detail = Array.make c.cap ""; r_time = Array.make c.cap 0.0;
        r_n = 0 }
    in
    c.rings <- r :: c.rings;
    Mutex.unlock c.lock;
    Domain.DLS.set dls (Some r);
    r

let enable ?(capacity = 512) () =
  if capacity < 1 then invalid_arg "Flight.enable: capacity must be >= 1";
  let gen = 1 + Atomic.fetch_and_add generation 1 in
  Atomic.set current
    (Some
       { gen; cap = capacity; lock = Mutex.create (); rings = [];
         next_lane = 0 })

let disable () = Atomic.set current None
let active () = Atomic.get current <> None

let record ?(detail = "") kind =
  Atomic.incr probe;
  match Atomic.get current with
  | None -> ()
  | Some c ->
    let r = ring_of c in
    let i = r.r_n mod Array.length r.r_kind in
    r.r_kind.(i) <- kind;
    r.r_detail.(i) <- detail;
    r.r_time.(i) <- Unix.gettimeofday ();
    r.r_n <- r.r_n + 1

let events () =
  match Atomic.get current with
  | None -> []
  | Some c ->
    Mutex.lock c.lock;
    let rings = c.rings in
    Mutex.unlock c.lock;
    (* Recording domains may still be writing; a torn event in a live ring
       is tolerable for a crash dump, and quiesced rings (the common dump
       situation) merge exactly. *)
    let of_ring r =
      let cap = Array.length r.r_kind in
      let n = r.r_n in
      let kept = if n < cap then n else cap in
      List.init kept (fun j ->
          let seq = n - kept + j in
          let i = seq mod cap in
          { seq; t_s = r.r_time.(i); lane = r.r_lane; kind = r.r_kind.(i);
            detail = r.r_detail.(i) })
    in
    List.concat_map of_ring rings
    |> List.sort (fun a b ->
           compare (a.t_s, a.lane, a.seq) (b.t_s, b.lane, b.seq))

let dropped () =
  match Atomic.get current with
  | None -> 0
  | Some c ->
    Mutex.lock c.lock;
    let rings = c.rings in
    Mutex.unlock c.lock;
    List.fold_left
      (fun acc r ->
        let cap = Array.length r.r_kind in
        acc + if r.r_n > cap then r.r_n - cap else 0)
      0 rings

let to_json ~reason () =
  let evs = events () in
  let cap = match Atomic.get current with Some c -> c.cap | None -> 0 in
  let lanes =
    List.sort_uniq compare (List.map (fun e -> e.lane) evs) |> List.length
  in
  Json.Obj
    [ ("schema", Json.String "dicheck-flight-v1");
      ("reason", Json.String reason);
      ("dumped_at_unix", Json.Float (Unix.gettimeofday ()));
      ("capacity", Json.Int cap);
      ("lanes", Json.Int lanes);
      ("dropped", Json.Int (dropped ()));
      ("events",
       Json.List
         (List.map
            (fun e ->
              Json.Obj
                [ ("seq", Json.Int e.seq);
                  ("lane", Json.Int e.lane);
                  ("t", Json.Float e.t_s);
                  ("kind", Json.String e.kind);
                  ("detail", Json.String e.detail) ])
            evs)) ]

let dump ~reason path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string_pretty (to_json ~reason ()));
      output_char oc '\n')
