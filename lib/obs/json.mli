(** A small, dependency-free JSON value type with a printer and a parser.

    Exists so the observability artifacts (Chrome traces, metrics summaries,
    bench emissions) can be produced — and validated back, in tests and CI —
    without pulling a JSON library into the build. The printer always emits
    valid JSON (floats are clamped away from [nan]/[inf]); the parser
    accepts standard JSON, decoding [\uXXXX] escapes to UTF-8. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line rendering. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for artifacts meant to be read raw. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing non-whitespace is an error.
    Numbers without [.]/[e] parse as [Int], others as [Float]. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing fields and non-objects. *)

val to_int : t -> int option
(** [Int n] and integral [Float]s. *)

val to_float : t -> float option
val to_bool : t -> bool option
val to_list : t -> t list option
val to_str : t -> string option
