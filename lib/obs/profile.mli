(** Hotspot profiling over telemetry spans: aggregate per-phase wall time,
    self time and GC-allocation into a ranked top-K report.

    Works on either source of spans — a live {!Telemetry.report} or a Chrome
    trace file previously written by {!Trace_export} (the [dicheck profile
    --trace FILE] path) — and produces the same ranking either way.

    Spans are grouped into {e classes}: per-obligation categories
    (["obligation"], ["race"], ["heal"]) collapse to the category (their
    names are property instances, useless to aggregate by), every other
    span groups as ["cat/name"] (e.g. ["engine/bmc"], ["prepare.coi"]'s
    ["prepare/prepare.coi"]). Self time is wall time minus the time covered
    by direct child spans on the same lane, computed by an
    interval-containment sweep — so ["obligation"] does not double-count
    the engine work nested inside it, and the ranking surfaces where time
    is actually spent. *)

type entry = {
  e_class : string;  (** aggregation class, e.g. ["engine/ic3"] *)
  e_count : int;  (** spans aggregated *)
  e_wall_us : float;  (** summed span wall time (children included) *)
  e_self_us : float;  (** summed self time (direct children excluded) *)
  e_alloc_mw : float;  (** summed minor words allocated in these spans *)
  e_self_share : float;  (** fraction of total self time, [0..1] *)
}

type t = {
  p_spans : int;
  p_lanes : int;  (** distinct recording lanes (domains) *)
  p_wall_us : float;  (** extent from earliest span start to latest end *)
  p_entries : entry list;  (** every class, ranked by self time *)
}

val of_report : Telemetry.report -> t

val of_trace_json : Json.t -> (t, string) result
(** Parse a Chrome trace object (as written by {!Trace_export}): [X] events
    become spans ([args.alloc_w] is picked up when present), everything
    else is ignored. *)

val of_trace_file : string -> (t, string) result
(** Read and parse a trace file, then {!of_trace_json}. *)

val top : ?k:int -> t -> entry list
(** The first [k] (default 15) entries by self time. *)

val to_json : ?k:int -> t -> Json.t
(** Schema ["dicheck-profile-v1"]; [k] truncates the entry list. *)

val pp : ?k:int -> Format.formatter -> t -> unit
(** Human-readable top-[k] hotspot table. *)
