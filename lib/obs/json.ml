type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f then "0"
  else if f = Float.infinity then "1e308"
  else if f = Float.neg_infinity then "-1e308"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let rec print ~indent level buf v =
  let nl pad =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * pad) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        print ~indent (level + 1) buf x)
      items;
    nl level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        escape_to buf k;
        Buffer.add_char buf ':';
        if indent then Buffer.add_char buf ' ';
        print ~indent (level + 1) buf x)
      fields;
    nl level;
    Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 4096 in
  print ~indent 0 buf v;
  Buffer.contents buf

let to_string v = render ~indent:false v
let to_string_pretty v = render ~indent:true v

(* ---- parsing ---- *)

exception Fail of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let utf8_add buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               (match int_of_string_opt ("0x" ^ hex) with
                | Some u ->
                  pos := !pos + 4;
                  utf8_add buf u
                | None -> fail "bad \\u escape")
             | _ -> fail "unknown escape");
          go ()
        | c when Char.code c < 0x20 -> fail "control character in string"
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else (
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number"))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Fail (msg, p) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)

(* ---- accessors ---- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | Null | Bool _ | Float _ | String _ | List _ | Obj _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | Null | Bool _ | String _ | List _ | Obj _ -> None

let to_bool = function
  | Bool b -> Some b
  | Null | Int _ | Float _ | String _ | List _ | Obj _ -> None

let to_list = function
  | List l -> Some l
  | Null | Bool _ | Int _ | Float _ | String _ | Obj _ -> None

let to_str = function
  | String s -> Some s
  | Null | Bool _ | Int _ | Float _ | List _ | Obj _ -> None
