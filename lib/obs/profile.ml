type entry = {
  e_class : string;
  e_count : int;
  e_wall_us : float;
  e_self_us : float;
  e_alloc_mw : float;
  e_self_share : float;
}

type t = {
  p_spans : int;
  p_lanes : int;
  p_wall_us : float;
  p_entries : entry list;
}

(* Engine-agnostic span view: built from a live Telemetry report or parsed
   back out of a Chrome trace file. *)
type pspan = {
  s_name : string;
  s_cat : string;
  s_ts : float;
  s_dur : float;
  s_tid : int;
  s_alloc : float;
}

(* Per-obligation categories carry instance names (one span per property);
   aggregating them by name would yield thousands of singleton classes, so
   they collapse to the category. Engine/prepare/exec span names are the
   phase vocabulary — keep them. *)
let class_of ~cat ~name =
  match cat with
  | "obligation" | "race" | "heal" -> cat
  | _ -> cat ^ "/" ^ name

type acc = {
  mutable a_count : int;
  mutable a_wall : float;
  mutable a_self : float;
  mutable a_alloc : float;
}

type frame = { f_end : float; f_span : pspan; mutable f_child : float }

let aggregate spans =
  let classes : (string, acc) Hashtbl.t = Hashtbl.create 32 in
  let acc_of cls =
    match Hashtbl.find_opt classes cls with
    | Some a -> a
    | None ->
      let a = { a_count = 0; a_wall = 0.0; a_self = 0.0; a_alloc = 0.0 } in
      Hashtbl.add classes cls a;
      a
  in
  let settle f =
    let self = Float.max 0.0 (f.f_span.s_dur -. f.f_child) in
    let a = acc_of (class_of ~cat:f.f_span.s_cat ~name:f.f_span.s_name) in
    a.a_count <- a.a_count + 1;
    a.a_wall <- a.a_wall +. f.f_span.s_dur;
    a.a_self <- a.a_self +. self;
    a.a_alloc <- a.a_alloc +. f.f_span.s_alloc
  in
  (* Self time = wall minus time covered by direct children, computed with an
     interval-containment sweep per lane: parents sort before their children
     ((ts asc, dur desc)), and a frame is settled once a later span's
     midpoint lies at or past its end. The midpoint — not the start — decides
     containment so that the float rounding a trace file round-trip applies
     to span boundaries cannot flip a child into a sibling (a contained
     child's midpoint is strictly inside its parent, a sibling's strictly
     outside). *)
  let by_tid : (int, pspan list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun s ->
      match Hashtbl.find_opt by_tid s.s_tid with
      | Some l -> l := s :: !l
      | None -> Hashtbl.add by_tid s.s_tid (ref [ s ]))
    spans;
  Hashtbl.iter
    (fun _ l ->
      let lane =
        List.sort
          (fun a b -> compare (a.s_ts, -.a.s_dur) (b.s_ts, -.b.s_dur))
          !l
      in
      let stack = ref [] in
      let pop_until ts =
        let rec go () =
          match !stack with
          | f :: rest when f.f_end <= ts ->
            settle f;
            stack := rest;
            go ()
          | _ -> ()
        in
        go ()
      in
      List.iter
        (fun s ->
          pop_until (s.s_ts +. (s.s_dur /. 2.0));
          (match !stack with
           | parent :: _ -> parent.f_child <- parent.f_child +. s.s_dur
           | [] -> ());
          stack := { f_end = s.s_ts +. s.s_dur; f_span = s; f_child = 0.0 }
                   :: !stack)
        lane;
      List.iter settle !stack)
    by_tid;
  let total_self =
    Hashtbl.fold (fun _ a acc -> acc +. a.a_self) classes 0.0
  in
  let entries =
    Hashtbl.fold
      (fun cls a acc ->
        { e_class = cls; e_count = a.a_count; e_wall_us = a.a_wall;
          e_self_us = a.a_self; e_alloc_mw = a.a_alloc;
          e_self_share =
            (if total_self > 0.0 then a.a_self /. total_self else 0.0) }
        :: acc)
      classes []
    |> List.sort (fun a b ->
           compare (b.e_self_us, b.e_class) (a.e_self_us, a.e_class))
  in
  let wall =
    List.fold_left (fun m s -> Float.max m (s.s_ts +. s.s_dur)) 0.0 spans
    -. List.fold_left (fun m s -> Float.min m s.s_ts) infinity spans
  in
  { p_spans = List.length spans;
    p_lanes = Hashtbl.length by_tid;
    p_wall_us = (if spans = [] then 0.0 else wall);
    p_entries = entries }

let of_report (r : Telemetry.report) =
  aggregate
    (List.map
       (fun (s : Telemetry.span) ->
         { s_name = s.Telemetry.name; s_cat = s.Telemetry.cat;
           s_ts = s.Telemetry.ts_us; s_dur = s.Telemetry.dur_us;
           s_tid = s.Telemetry.tid; s_alloc = s.Telemetry.alloc_mw })
       r.Telemetry.spans)

let of_trace_json j =
  match Json.member "traceEvents" j with
  | None -> Error "not a Chrome trace: missing traceEvents"
  | Some evs ->
    (match Json.to_list evs with
     | None -> Error "traceEvents is not a list"
     | Some evs ->
       let span_of ev =
         match Json.member "ph" ev with
         | Some (Json.String "X") ->
           let str k = Option.bind (Json.member k ev) Json.to_str in
           let flt k = Option.bind (Json.member k ev) Json.to_float in
           let int k = Option.bind (Json.member k ev) Json.to_int in
           (match (str "name", flt "ts", flt "dur") with
            | Some name, Some ts, Some dur ->
              Some
                { s_name = name;
                  s_cat = Option.value (str "cat") ~default:"default";
                  s_ts = ts; s_dur = dur;
                  s_tid = Option.value (int "tid") ~default:0;
                  s_alloc =
                    Option.value ~default:0.0
                      (Option.bind (Json.member "args" ev) (fun a ->
                           Option.bind (Json.member "alloc_w" a)
                             Json.to_float)) }
            | _ -> None)
         | _ -> None
       in
       Ok (aggregate (List.filter_map span_of evs)))

let of_trace_file path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.parse s with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok j -> of_trace_json j

let top ?(k = 15) t =
  List.filteri (fun i _ -> i < k) t.p_entries

let to_json ?k t =
  let entries = match k with Some k -> top ~k t | None -> t.p_entries in
  Json.Obj
    [ ("schema", Json.String "dicheck-profile-v1");
      ("spans", Json.Int t.p_spans);
      ("lanes", Json.Int t.p_lanes);
      ("wall_us", Json.Float t.p_wall_us);
      ("entries",
       Json.List
         (List.map
            (fun e ->
              Json.Obj
                [ ("class", Json.String e.e_class);
                  ("count", Json.Int e.e_count);
                  ("wall_us", Json.Float e.e_wall_us);
                  ("self_us", Json.Float e.e_self_us);
                  ("alloc_mw", Json.Float e.e_alloc_mw);
                  ("self_share", Json.Float e.e_self_share) ])
            entries)) ]

let pp ?(k = 15) fmt t =
  Format.fprintf fmt
    "profile: %d spans over %d lane%s, %.1f ms span extent@."
    t.p_spans t.p_lanes
    (if t.p_lanes = 1 then "" else "s")
    (t.p_wall_us /. 1e3);
  Format.fprintf fmt "%-28s %8s %12s %12s %7s %12s@." "class" "count"
    "wall ms" "self ms" "self%" "alloc Mw";
  List.iter
    (fun e ->
      Format.fprintf fmt "%-28s %8d %12.2f %12.2f %6.1f%% %12.3f@."
        e.e_class e.e_count (e.e_wall_us /. 1e3) (e.e_self_us /. 1e3)
        (100.0 *. e.e_self_share) (e.e_alloc_mw /. 1e6))
    (top ~k t)
