(** Engine-level telemetry: spans and monotonic counters with a pluggable
    collector.

    The design point is the campaign runtime: dozens of OCaml 5 domains
    running proof obligations concurrently, each wanting to record which
    phase it is in (cone-of-influence reduction, monitor synthesis, reach
    fixpoint, BMC unroll, …) and how much engine work it performed — without
    cross-domain mutable races and without taxing the hot paths.

    Two properties drive the implementation:

    - {b per-domain buffers}: every domain that records anything gets its
      own buffer (via [Domain.DLS]), registered once with the active
      collector under a lock. Records then touch only domain-local state, so
      concurrent obligations never contend or race. {!stop} merges the
      buffers: counters are summed, spans concatenated and sorted.
    - {b near-zero cost when disabled}: with no collector installed
      ({!active} [= false]), {!count} and {!span} are a single atomic probe
      increment plus one load-and-branch — no allocation on that path, which
      the test suite checks via {!calls_probe} and [Gc.minor_words].

    The intended granularity is {e per solve / per phase}, not per BDD node
    or per SAT conflict: engines keep their own cheap internal counters (a
    solver's stats record, a BDD manager's arena size) and report them here
    in bulk with [count ~n] when a solve or phase completes. *)

type span = {
  name : string;  (** e.g. ["bdd-combined"] or ["fsm_ctrl/p0_soundness"] *)
  cat : string;  (** grouping: ["engine"], ["prepare"], ["obligation"], … *)
  ts_us : float;  (** start time, microseconds since the collector started *)
  dur_us : float;
  alloc_mw : float;
      (** minor words allocated by the recording domain during the span
          (children included) — per-phase GC-pressure attribution *)
  tid : int;  (** lane: the recording domain's id within this collector *)
  args : (string * string) list;
}

type hist = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** 0.0 when the histogram is empty *)
  h_max : float;  (** 0.0 when the histogram is empty *)
  h_buckets : int array;
      (** cumulative-free counts per bucket: [h_buckets.(i)] observations
          fell in [(bucket_bounds.(i-1), bucket_bounds.(i)]]; the final
          entry is the overflow bucket *)
}
(** A merged log-scale histogram — the first-class generalization of the
    executor's one-off cancellation-latency bucket counters. *)

val bucket_bounds : float array
(** The shared upper bounds, [1e-6 … 100.0] in decades; every histogram has
    [Array.length bucket_bounds + 1] buckets (the last is overflow). *)

type report = {
  wall_s : float;  (** collector lifetime, {!start} to {!stop} *)
  domains : int;  (** distinct domains that recorded anything *)
  counters : (string * int) list;  (** merged across domains, sorted *)
  hists : (string * hist) list;  (** merged across domains, sorted *)
  spans : span list;  (** merged, sorted by start time *)
}

val start : unit -> unit
(** Install a fresh collector. Subsequent {!count}/{!span} calls from any
    domain record into it. A collector already active is replaced (its data
    is dropped); collectors are process-global, so tests and drivers should
    bracket campaigns with [start]/[stop]. *)

val stop : unit -> report
(** Uninstall the active collector and merge its per-domain buffers. Returns
    an empty report when no collector is active. *)

val active : unit -> bool

val count : ?n:int -> string -> unit
(** Add [n] (default 1) to the named monotonic counter in the calling
    domain's buffer. Free (and allocation-free) when no collector is
    active. Use suffix [_us] for time-valued counters — consumers treat
    those as non-deterministic when diffing runs. *)

val observe : string -> float -> unit
(** Record one observation into the named histogram in the calling domain's
    buffer (log-scale buckets per {!bucket_bounds}; merged across domains
    by {!stop}). Free when no collector is active. Use suffix [_s] for
    latencies in seconds. *)

val span : ?cat:string -> ?args:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** [span name f] times [f ()] and records a completed span in the calling
    domain's buffer, including when [f] raises (the exception is
    re-raised). When no collector is active, [span name f] is just [f ()]. *)

val calls_probe : unit -> int
(** Process-lifetime total of {!count} and {!span} invocations, recorded
    whether or not a collector is active — the hook the zero-overhead test
    uses to prove the disabled path was actually exercised. *)

val counter : report -> string -> int
(** Merged value of a counter, 0 when absent. *)

val hist : report -> string -> hist option
(** Merged histogram by name. *)
