(** Threshold-based regression verdicts between two campaign benchmark
    records — the machine-checkable half of the BENCH trajectory.

    Compares the ["runs"] lists of two bench JSONs (schema
    ["dicheck-bench-v1"], or the committed ["dicheck-bench-baseline-v1"])
    by run label. A run regresses when

    - any verdict-count field ([properties]/[proved]/[failed]/
      [resource_out]/[errors]) present on both sides differs — correctness
      regressions have no threshold; or
    - its wall time exceeds the baseline's by more than [threshold]
      (default 0.2, i.e. 20%). The baseline side falls back to
      [max_wall_s] when it records only a ceiling (as the committed
      baseline does), which makes fresh-vs-baseline diffs lenient on
      throughput but exact on verdicts.

    Labels present on only one side are reported but never fail the diff —
    a partial bench run can still be checked against the full baseline. *)

type run_cmp = {
  d_label : string;
  d_base_wall_s : float;  (** 0.0 when the baseline has no wall field *)
  d_cur_wall_s : float;
  d_ratio : float;  (** current/baseline wall; 1.0 when either is absent *)
  d_verdicts_ok : bool;
  d_regressed : bool;
  d_notes : string list;  (** human-readable reasons, empty when clean *)
}

type t = {
  threshold : float;
  runs : run_cmp list;  (** common labels, in baseline order *)
  only_base : string list;
  only_cur : string list;
  ok : bool;  (** no common run regressed *)
}

val diff :
  ?threshold:float -> baseline:Json.t -> current:Json.t -> unit ->
  (t, string) result
(** [Error] on malformed inputs or when the two records share no run
    label (nothing was actually compared). *)

val to_json : t -> Json.t
(** Schema ["dicheck-bench-diff-v1"]. *)

val pp : Format.formatter -> t -> unit
