(** Divide-and-conquer property partitioning (Figure 7).

    When the output-data-integrity property of an output [D] that merges
    several parity-protected streams times out, cut the cone at intermediate
    parity checkpoints [A', B', C']:

    - one sub-property per cut: the cut signal keeps odd parity under the
      original input assumptions (checked on the original module, where
      cone-of-influence reduction shrinks the problem to the cut's fan-in);
    - one final property: [D] keeps odd parity *assuming* each cut signal
      does, checked on a module where the cuts are freed into primary inputs
      so the fan-in behind them disappears.

    Together the pieces imply the original property (standard
    assume-guarantee composition over a cut). *)

type plan = {
  original : Psl.Ast.vunit;  (** the monolithic P2 property for [output] *)
  sub_vunits : (string * Psl.Ast.vunit) list;
      (** per cut signal: its integrity property on the original module *)
  final_vunit : Psl.Ast.vunit;
      (** integrity of [output] under assumed cut integrity *)
  cut_mdl : Rtl.Mdl.t;
      (** module with each cut wire re-declared as a free primary input —
          check [final_vunit] against this *)
}

val partition :
  Transform.info -> Propgen.spec -> output:string -> cuts:string list -> plan
(** Raises [Invalid_argument] if a cut is not an internal wire of the
    module. *)

(** {1 Cut algebra for the self-healing layer}

    The campaign's automatic recovery path works on raw obligations rather
    than P2 vunits, so it drives the cut machinery directly. *)

val parity_fl : string -> Psl.Ast.fl
(** [always red_xor(signal)] — the odd-parity invariant of one checkpoint,
    usable as a sub-proof assertion or a freed-cut assumption. *)

val free_cuts : Rtl.Mdl.t -> string list -> Rtl.Mdl.t
(** Re-declare each cut as a free primary input. A cut may be an internal
    wire (its assign is dropped) or a register (its next function and reset
    disappear; readers are untouched) — anything else raises
    [Invalid_argument]. Freeing only adds behaviours, so any safety property
    proved on the freed module holds on the original
    (over-approximation). *)

val mine_cuts : ?max_cuts:int -> Rtl.Mdl.t -> roots:string list -> string list
(** Candidate parity checkpoints in the transitive fan-in of [roots], best
    first and in deterministic declaration order: wires that directly alias a
    parity-protected register (the paper's A'/B'/C' checkpoint taps), then
    the parity-protected registers themselves (skipping ones already covered
    by a tap). Output ports are never candidates. At most [max_cuts]
    (default 8) are returned; the list may be empty when the cone holds no
    protected state. *)
