module E = Rtl.Expr
module M = Rtl.Mdl
module A = Psl.Ast

type plan = {
  original : A.vunit;
  sub_vunits : (string * A.vunit) list;
  final_vunit : A.vunit;
  cut_mdl : M.t;
}

let integrity_decl signal =
  { A.prop_name = "pIntegrity_" ^ signal;
    body = A.Always (A.Bool (E.red_xor (E.var signal)));
    comment = Some (signal ^ " should be odd parity") }

let vunit_of mdl_name ~vunit_name ~assumes ~asserts =
  { A.vunit_name; bound_module = mdl_name; decls = assumes @ asserts;
    directives =
      List.map (fun (d : A.decl) -> { A.dir = A.Assume; target = d.A.prop_name })
        assumes
      @ List.map (fun (d : A.decl) -> { A.dir = A.Assert; target = d.A.prop_name })
          asserts }

let parity_fl signal = A.Always (A.Bool (E.red_xor (E.var signal)))

(* free each cut into a primary input: its driver (assign or register next
   function) disappears and the model checker treats it as unconstrained —
   up to whatever parity assumption the caller chooses to add *)
let free_cuts (m : M.t) cuts =
  let width c =
    match List.assoc_opt c m.M.wires with
    | Some w -> w
    | None -> (
      match M.find_reg m c with
      | Some r -> r.M.reg_width
      | None ->
        invalid_arg
          (Printf.sprintf
             "Partition: %s is not an internal wire or register of %s" c
             m.M.name))
  in
  let widths = List.map (fun c -> (c, width c)) cuts in
  let freed =
    { m with
      wires = List.filter (fun (w, _) -> not (List.mem w cuts)) m.M.wires;
      assigns =
        List.filter (fun (a : M.assign) -> not (List.mem a.M.lhs cuts))
          m.M.assigns;
      regs =
        List.filter (fun (r : M.reg) -> not (List.mem r.M.reg_name cuts))
          m.M.regs }
  in
  List.fold_left (fun acc (c, w) -> M.add_input acc c w) freed widths

(* the historical entry point freed wires only; keep the stricter contract *)
let cut_wires (m : M.t) cuts =
  List.iter
    (fun c ->
      if not (List.mem_assoc c m.M.wires) then
        invalid_arg
          (Printf.sprintf "Partition: %s is not an internal wire of %s" c
             m.M.name))
    cuts;
  free_cuts m cuts

(* Transitive fan-in of [roots] through assigns and register next functions.
   Inputs terminate the walk; instance actuals don't occur (leaf modules). *)
let cone_signals (m : M.t) ~roots =
  let drivers = Hashtbl.create 64 in
  List.iter
    (fun (a : M.assign) -> Hashtbl.replace drivers a.M.lhs (E.support a.M.rhs))
    m.M.assigns;
  List.iter
    (fun (r : M.reg) ->
      Hashtbl.replace drivers r.M.reg_name (E.support r.M.next))
    m.M.regs;
  let seen = Hashtbl.create 64 in
  let rec walk s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.replace seen s ();
      match Hashtbl.find_opt drivers s with
      | Some sup -> List.iter walk sup
      | None -> ()
    end
  in
  List.iter walk roots;
  seen

(* Candidate parity checkpoints in the cone of [roots], best first:
   checkpoint wires that alias a parity-protected register (the paper's
   A'/B'/C' taps), then the protected registers themselves. Deterministic
   declaration order; output ports are never candidates (a signal cannot be
   freed into an input while remaining an output). *)
let mine_cuts ?(max_cuts = 8) (m : M.t) ~roots =
  let cone = cone_signals m ~roots in
  let in_cone s = Hashtbl.mem cone s in
  let is_output s =
    List.exists
      (fun (p : M.port) -> p.M.dir = M.Output && p.M.port_name = s)
      m.M.ports
  in
  let checkpoint_wires =
    List.filter_map
      (fun (a : M.assign) ->
        match a.M.rhs with
        | E.Var r when in_cone a.M.lhs && not (is_output a.M.lhs) -> (
          match M.find_reg m r with
          | Some reg when reg.M.parity_protected -> Some (a.M.lhs, r)
          | _ -> None)
        | _ -> None)
      m.M.assigns
  in
  let tapped = List.map snd checkpoint_wires in
  let protected_regs =
    List.filter_map
      (fun (r : M.reg) ->
        if
          r.M.parity_protected
          && in_cone r.M.reg_name
          && (not (List.mem r.M.reg_name tapped))
          && not (is_output r.M.reg_name)
        then Some r.M.reg_name
        else None)
      m.M.regs
  in
  let all = List.map fst checkpoint_wires @ protected_regs in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take max_cuts all

let partition (info : Transform.info) spec ~output ~cuts =
  let name = info.Transform.mdl.M.name in
  let base_assumes = Propgen.integrity_assume_decls info spec in
  let original =
    vunit_of name
      ~vunit_name:(name ^ "_integrity_" ^ output)
      ~assumes:base_assumes
      ~asserts:[ integrity_decl output ]
  in
  let sub_vunits =
    List.map
      (fun c ->
        ( c,
          vunit_of name
            ~vunit_name:(name ^ "_integrity_" ^ c)
            ~assumes:base_assumes
            ~asserts:[ integrity_decl c ] ))
      cuts
  in
  let cut_assumes = List.map integrity_decl cuts in
  let final_vunit =
    vunit_of name
      ~vunit_name:(name ^ "_integrity_" ^ output ^ "_from_cuts")
      ~assumes:(base_assumes @ cut_assumes)
      ~asserts:[ integrity_decl output ]
  in
  let cut_mdl = cut_wires info.Transform.mdl cuts in
  { original; sub_vunits; final_vunit; cut_mdl }
