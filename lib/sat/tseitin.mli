(** Tseitin transformation from {!Bexpr} DAGs to CNF.

    Each distinct DAG node gets one CNF variable; sharing in the DAG is
    preserved, so the encoding is linear in DAG size. A context accumulates
    clauses across multiple roots — the bounded model checker encodes every
    unrolled frame into one context. *)

type ctx

val create : ?on_clause:(int list -> unit) -> unit -> ctx
(** With [on_clause], every generated clause is streamed to the sink
    (typically {!Solver.add_clause} on a live incremental solver) instead of
    being accumulated; {!to_cnf} is then unavailable. *)

val fresh_var : ctx -> int
(** A fresh DIMACS variable (returned positive). *)

val lit_of_bexpr : ctx -> (int -> int) -> Rtl.Bexpr.t -> int
(** [lit_of_bexpr ctx var_map e] encodes [e], mapping each [Bexpr] input
    variable [v] to the DIMACS variable [var_map v] (which must already be
    allocated in this context), and returns the literal equisatisfiably
    equal to [e]. *)

val assert_lit : ctx -> int -> unit
(** Add the unit clause [lit]. *)

val add_clause : ctx -> int list -> unit

val to_cnf : ctx -> Cnf.t
(** Raises [Invalid_argument] on a context created with [on_clause]. *)

val num_vars : ctx -> int
val num_clauses : ctx -> int
