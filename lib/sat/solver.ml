(* CDCL in the MiniSat style. Variables are 0-based internally; literal
   encoding is 2*v for the positive and 2*v+1 for the negative literal.
   watches.(l) holds the indices of clauses currently watching literal l;
   when l becomes false those clauses must find a new watch, propagate, or
   conflict.

   The solver is persistent/incremental: a [t] keeps its clause database,
   learnt clauses, VSIDS activities and saved phases across
   [solve_assuming] calls, and solving under assumption literals answers
   "is the database satisfiable together with these temporary units"
   without permanently committing them. Assumptions are installed as the
   first decision levels (one level per assumption, pseudo-levels for
   assumptions already implied), exactly like MiniSat: after any backjump
   into the assumption prefix the decision loop re-enqueues the remaining
   assumptions in order, so learnt clauses — which mention assumption
   literals negatively where needed and are therefore implied by the clause
   database alone — can be kept forever.

   Restart discipline (the retention-killer fixed here): restarts backtrack
   to the assumption prefix, never below it, and neither activities,
   saved phases nor the learnt database are cleared between calls — a
   restart re-orders the search inside one call but must not throw away the
   warm-start state that makes incremental solving pay off. *)

type result = Sat of bool array | Unsat | Unknown

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  learned : int;
}

let zero_stats =
  { decisions = 0; conflicts = 0; propagations = 0; restarts = 0; learned = 0 }

type t = {
  mutable nvars : int;       (* highest DIMACS variable seen *)
  mutable cap : int;         (* allocated capacity of the per-var arrays *)
  mutable clauses : int array array;
  mutable num_clauses : int;         (* problem + learnt *)
  mutable num_problem_clauses : int; (* clauses added through add_clause *)
  mutable watches : int list array;  (* indexed by literal *)
  mutable assigns : int array;       (* -1 / 0 / 1 per var *)
  mutable level : int array;
  mutable reason : int array;        (* clause index or -1 *)
  mutable trail : int array;
  mutable trail_size : int;
  mutable qhead : int;
  (* trail sizes at decision points, as an explicit stack: trail_lim.(i) is
     the trail size on entry to level i+1 and n_levels is the current
     decision level. A list here made decision_level O(level), and enqueue
     reads the level for every assignment — quadratic per solve once BMC
     unrollings push thousands of decisions. *)
  mutable trail_lim : int array;
  mutable n_levels : int;
  mutable activity : float array;
  mutable var_inc : float;
  (* VSIDS order heap: a max-heap of candidate decision variables keyed by
     (activity desc, var index asc) — the same total order the decision
     rule always used, so the heap picks exactly what a full scan would,
     in O(log n) instead of O(n) per decision. Lazy deletion: assigned
     vars linger until popped; every unassigned var is always present
     (inserted on creation and on unassignment at backtrack). *)
  mutable heap : int array;
  mutable heap_size : int;
  mutable heap_pos : int array;  (* var -> heap slot, -1 when absent *)
  mutable phase : bool array;
  mutable seen : bool array;
  mutable unsat : bool;              (* root-level conflict: unsat forever *)
  mutable n_solves : int;
  (* per-solve work counters: solver-local, so concurrent solves on
     different domains never race (unlike the old stats_last globals) *)
  mutable n_decisions : int;
  mutable n_conflicts : int;
  mutable n_propagations : int;
  mutable n_restarts : int;
  mutable n_learned : int;
}

let neg l = l lxor 1
let var_of l = l lsr 1
let lit_of_var v sign = (v lsl 1) lor (if sign then 0 else 1)

let create () =
  let cap = 64 in
  { nvars = 0; cap; clauses = Array.make 256 [||]; num_clauses = 0;
    num_problem_clauses = 0; watches = Array.make (2 * cap) [];
    assigns = Array.make cap (-1); level = Array.make cap 0;
    reason = Array.make cap (-1); trail = Array.make cap 0; trail_size = 0;
    qhead = 0; trail_lim = Array.make cap 0; n_levels = 0;
    activity = Array.make cap 0.0; var_inc = 1.0;
    phase = Array.make cap false; seen = Array.make cap false;
    heap = Array.make cap 0; heap_size = 0; heap_pos = Array.make cap (-1);
    unsat = false;
    n_solves = 0; n_decisions = 0; n_conflicts = 0; n_propagations = 0;
    n_restarts = 0; n_learned = 0 }

let heap_lt t a b =
  t.activity.(a) > t.activity.(b)
  || (t.activity.(a) = t.activity.(b) && a < b)

let heap_swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.heap_pos.(b) <- i;
  t.heap_pos.(a) <- j

let rec heap_sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_lt t t.heap.(i) t.heap.(p) then begin
      heap_swap t i p;
      heap_sift_up t p
    end
  end

let rec heap_sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < t.heap_size && heap_lt t t.heap.(l) t.heap.(!m) then m := l;
  if r < t.heap_size && heap_lt t t.heap.(r) t.heap.(!m) then m := r;
  if !m <> i then begin
    heap_swap t i !m;
    heap_sift_down t !m
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    t.heap.(t.heap_size) <- v;
    t.heap_pos.(v) <- t.heap_size;
    t.heap_size <- t.heap_size + 1;
    heap_sift_up t (t.heap_size - 1)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_size <- t.heap_size - 1;
  t.heap_pos.(v) <- -1;
  if t.heap_size > 0 then begin
    let last = t.heap.(t.heap_size) in
    t.heap.(0) <- last;
    t.heap_pos.(last) <- 0;
    heap_sift_down t 0
  end;
  v

let grow_to t want =
  let cap = ref t.cap in
  while !cap < want do
    cap := 2 * !cap
  done;
  let cap = !cap in
  let copy_int a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 t.cap; b
  in
  let watches = Array.make (2 * cap) [] in
  Array.blit t.watches 0 watches 0 (2 * t.cap);
  t.watches <- watches;
  t.assigns <- copy_int t.assigns (-1);
  t.level <- copy_int t.level 0;
  t.reason <- copy_int t.reason (-1);
  t.trail <- copy_int t.trail 0;
  t.trail_lim <- copy_int t.trail_lim 0;
  let activity = Array.make cap 0.0 in
  Array.blit t.activity 0 activity 0 t.cap;
  t.activity <- activity;
  let copy_bool a =
    let b = Array.make cap false in
    Array.blit a 0 b 0 t.cap; b
  in
  t.phase <- copy_bool t.phase;
  t.seen <- copy_bool t.seen;
  t.heap <- copy_int t.heap 0;
  t.heap_pos <- copy_int t.heap_pos (-1);
  t.cap <- cap

let ensure_vars t n =
  if n > t.cap then grow_to t n;
  if n > t.nvars then begin
    for v = t.nvars to n - 1 do
      heap_insert t v
    done;
    t.nvars <- n
  end

let num_vars t = t.nvars
let num_clauses t = t.num_problem_clauses

let value t l =
  let a = t.assigns.(var_of l) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level t = t.n_levels

(* one entry per decision plus one pseudo-level per assumption: assumptions
   can outnumber spare capacity, so the stack grows on its own *)
let push_level t =
  if t.n_levels >= Array.length t.trail_lim then begin
    let bigger = Array.make (2 * Array.length t.trail_lim) 0 in
    Array.blit t.trail_lim 0 bigger 0 t.n_levels;
    t.trail_lim <- bigger
  end;
  t.trail_lim.(t.n_levels) <- t.trail_size;
  t.n_levels <- t.n_levels + 1

let add_clause_raw t lits =
  let idx = t.num_clauses in
  if idx >= Array.length t.clauses then begin
    let bigger = Array.make (max 16 (2 * Array.length t.clauses)) [||] in
    Array.blit t.clauses 0 bigger 0 idx;
    t.clauses <- bigger
  end;
  t.clauses.(idx) <- lits;
  t.num_clauses <- idx + 1;
  if Array.length lits >= 2 then begin
    t.watches.(lits.(0)) <- idx :: t.watches.(lits.(0));
    t.watches.(lits.(1)) <- idx :: t.watches.(lits.(1))
  end;
  idx

let enqueue t l reason =
  match value t l with
  | 1 -> true
  | 0 -> false
  | _ ->
    let v = var_of l in
    t.assigns.(v) <- 1 lxor (l land 1);
    t.level.(v) <- decision_level t;
    t.reason.(v) <- reason;
    t.phase.(v) <- l land 1 = 0;
    t.trail.(t.trail_size) <- l;
    t.trail_size <- t.trail_size + 1;
    true

let lit_of_dimacs l =
  let v = abs l - 1 in
  lit_of_var v (l > 0)

(* Add a problem clause (DIMACS literals). Must be called at decision level
   0, i.e. between solves. Root-level simplification: literals already false
   at the root are dropped (root assignments are permanent), clauses already
   true at the root are discarded, the empty clause flips the solver into
   [unsat] forever, units are enqueued at the root. *)
let add_clause t clause =
  t.num_problem_clauses <- t.num_problem_clauses + 1;
  if not t.unsat then begin
    let lits = List.sort_uniq compare (List.map lit_of_dimacs clause) in
    List.iter (fun l -> ensure_vars t (var_of l + 1)) lits;
    let tautology = List.exists (fun l -> List.mem (neg l) lits) lits in
    let satisfied = List.exists (fun l -> value t l = 1) lits in
    if not (tautology || satisfied) then begin
      let lits = List.filter (fun l -> value t l <> 0) lits in
      match lits with
      | [] -> t.unsat <- true
      | [ l ] -> if not (enqueue t l (-1)) then t.unsat <- true
      | _ -> ignore (add_clause_raw t (Array.of_list lits))
    end
  end

(* returns the index of a conflicting clause, or -1 *)
let propagate t =
  let conflict = ref (-1) in
  while !conflict < 0 && t.qhead < t.trail_size do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    t.n_propagations <- t.n_propagations + 1;
    let false_lit = neg p in
    let ws = t.watches.(false_lit) in
    t.watches.(false_lit) <- [];
    let rec process = function
      | [] -> ()
      | ci :: rest when !conflict >= 0 ->
        (* conflict already found: retain remaining watches untouched *)
        t.watches.(false_lit) <- ci :: t.watches.(false_lit);
        process rest
      | ci :: rest ->
        let lits = t.clauses.(ci) in
        if lits.(0) = false_lit then begin
          lits.(0) <- lits.(1);
          lits.(1) <- false_lit
        end;
        if value t lits.(0) = 1 then begin
          t.watches.(false_lit) <- ci :: t.watches.(false_lit);
          process rest
        end
        else begin
          let n = Array.length lits in
          let rec find_watch k =
            if k >= n then -1
            else if value t lits.(k) <> 0 then k
            else find_watch (k + 1)
          in
          let k = find_watch 2 in
          if k >= 0 then begin
            lits.(1) <- lits.(k);
            lits.(k) <- false_lit;
            t.watches.(lits.(1)) <- ci :: t.watches.(lits.(1));
            process rest
          end
          else begin
            t.watches.(false_lit) <- ci :: t.watches.(false_lit);
            if not (enqueue t lits.(0) ci) then begin
              conflict := ci;
              t.qhead <- t.trail_size
            end;
            process rest
          end
        end
    in
    process ws
  done;
  !conflict

let bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    (* uniform rescale: relative (activity, index) order is unchanged, so
       the heap invariant survives without a rebuild *)
    for i = 0 to t.nvars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  if t.heap_pos.(v) >= 0 then heap_sift_up t t.heap_pos.(v)

let analyze t confl =
  let learnt = ref [] in
  let path_count = ref 0 in
  let p = ref (-1) in
  let index = ref (t.trail_size - 1) in
  let confl = ref confl in
  let current_level = decision_level t in
  let continue = ref true in
  while !continue do
    let lits = t.clauses.(!confl) in
    let start = if !p = -1 then 0 else 1 in
    for i = start to Array.length lits - 1 do
      let q = lits.(i) in
      let v = var_of q in
      if (not t.seen.(v)) && t.level.(v) > 0 then begin
        t.seen.(v) <- true;
        bump t v;
        if t.level.(v) >= current_level then incr path_count
        else learnt := q :: !learnt
      end
    done;
    (* pick the next literal to resolve on: last seen var on the trail *)
    while not t.seen.(var_of t.trail.(!index)) do
      decr index
    done;
    p := t.trail.(!index);
    decr index;
    t.seen.(var_of !p) <- false;
    decr path_count;
    if !path_count > 0 then confl := t.reason.(var_of !p)
    else continue := false
  done;
  let learnt = Array.of_list (neg !p :: !learnt) in
  (* clear seen flags *)
  Array.iter (fun l -> t.seen.(var_of l) <- false) learnt;
  (* backtrack level: second-highest level in the learnt clause *)
  let bt_level = ref 0 in
  let swap_pos = ref 1 in
  for i = 1 to Array.length learnt - 1 do
    let lv = t.level.(var_of learnt.(i)) in
    if lv > !bt_level then begin
      bt_level := lv;
      swap_pos := i
    end
  done;
  if Array.length learnt > 1 then begin
    let tmp = learnt.(1) in
    learnt.(1) <- learnt.(!swap_pos);
    learnt.(!swap_pos) <- tmp
  end;
  (learnt, !bt_level)

let backtrack t lvl =
  (* trail_lim.(lvl) is the trail size when level lvl+1 was entered, i.e.
     everything at or above that index belongs to levels > lvl *)
  if decision_level t > lvl then begin
    let bound = t.trail_lim.(lvl) in
    for i = t.trail_size - 1 downto bound do
      let v = var_of t.trail.(i) in
      t.assigns.(v) <- -1;
      t.reason.(v) <- -1;
      heap_insert t v
    done;
    t.trail_size <- bound;
    t.qhead <- bound;
    t.n_levels <- lvl
  end

type decide_outcome = All_assigned | Decided | Assumption_false

(* While decision_level < |assumps| the next "decision" is the next
   assumption: levels 1..|assumps| are the assumption prefix, one level per
   assumption even when the literal is already implied (a pseudo-level with
   no trail entries). This indexing is what lets a backjump into the prefix
   self-heal — the next decide call re-examines assumptions from the level
   it landed on. *)
let decide t assumps =
  let dl = decision_level t in
  if dl < Array.length assumps then begin
    let l = assumps.(dl) in
    match value t l with
    | 0 -> Assumption_false
    | 1 ->
      push_level t;
      Decided
    | _ ->
      push_level t;
      let ok = enqueue t l (-1) in
      assert ok;
      Decided
  end
  else begin
    (* pop stale (already assigned) entries until the heap yields the live
       maximum — the same variable a full (activity desc, index asc) scan
       over the unassigned vars would select *)
    let best = ref (-1) in
    while !best < 0 && t.heap_size > 0 do
      let v = heap_pop t in
      if t.assigns.(v) < 0 then best := v
    done;
    if !best < 0 then All_assigned
    else begin
      t.n_decisions <- t.n_decisions + 1;
      push_level t;
      let l = lit_of_var !best t.phase.(!best) in
      let ok = enqueue t l (-1) in
      assert ok;
      Decided
    end
  end

let solve_assuming_stats ?(max_conflicts = max_int)
    ?(should_stop = fun () -> false) t assumptions =
  t.n_solves <- t.n_solves + 1;
  t.n_decisions <- 0;
  t.n_conflicts <- 0;
  t.n_propagations <- 0;
  t.n_restarts <- 0;
  t.n_learned <- 0;
  let stats_of t =
    { decisions = t.n_decisions; conflicts = t.n_conflicts;
      propagations = t.n_propagations; restarts = t.n_restarts;
      learned = t.n_learned }
  in
  if t.unsat then (Unsat, stats_of t)
  else begin
    List.iter (fun l -> ensure_vars t (abs l)) assumptions;
    let assumps = Array.of_list (List.map lit_of_dimacs assumptions) in
    let n_assumps = Array.length assumps in
    let conflicts_total = ref 0 in
    let restart_limit = ref 100 in
    let conflicts_since_restart = ref 0 in
    let result = ref None in
    (* poll the stop callback once per [stop_period] search steps: each
       step is one propagate + decide/analyze, so the poll (typically a
       gettimeofday behind a deadline) stays off the hot path *)
    let stop_period = 1024 in
    let stop_fuel = ref stop_period in
    while !result = None do
      decr stop_fuel;
      if !stop_fuel <= 0 then begin
        stop_fuel := stop_period;
        if should_stop () then result := Some Unknown
      end;
      let confl = propagate t in
      if confl >= 0 then begin
        incr conflicts_total;
        incr conflicts_since_restart;
        t.n_conflicts <- t.n_conflicts + 1;
        t.var_inc <- t.var_inc /. 0.95;
        if decision_level t = 0 then begin
          (* conflict under no decisions at all: unsat regardless of
             assumptions, now and forever *)
          t.unsat <- true;
          result := Some Unsat
        end
        else if decision_level t <= n_assumps then
          (* every open decision level is an assumption level: the clause
             database refutes the assumption prefix — unsat under these
             assumptions only, the database itself stays consistent *)
          result := Some Unsat
        else if !conflicts_total >= max_conflicts then result := Some Unknown
        else begin
          let learnt, bt_level = analyze t confl in
          t.n_learned <- t.n_learned + 1;
          backtrack t bt_level;
          if Array.length learnt = 1 then begin
            (* bt_level is 0 for unit learnts: the enqueue is permanent, so
               the clause itself need not be stored *)
            if not (enqueue t learnt.(0) (-1)) then begin
              t.unsat <- true;
              result := Some Unsat
            end
          end
          else begin
            let ci = add_clause_raw t learnt in
            let ok = enqueue t learnt.(0) ci in
            assert ok
          end
        end
      end
      else if
        !conflicts_since_restart >= !restart_limit
        && decision_level t > n_assumps
      then begin
        conflicts_since_restart := 0;
        restart_limit := !restart_limit * 3 / 2;
        t.n_restarts <- t.n_restarts + 1;
        (* restart to the assumption prefix, never below: backtracking to 0
           would undo the assumptions (they would be re-installed, but the
           prefix is where the warm search state lives) *)
        backtrack t n_assumps
      end
      else begin
        match decide t assumps with
        | All_assigned ->
          let model = Array.init t.nvars (fun v -> t.assigns.(v) = 1) in
          result := Some (Sat model)
        | Assumption_false ->
          (* the next assumption is already false under the previous ones:
             unsat under assumptions *)
          result := Some Unsat
        | Decided -> ()
      end
    done;
    backtrack t 0;
    match !result with
    | Some r -> (r, stats_of t)
    | None -> assert false
  end

let solve_assuming ?max_conflicts ?should_stop t assumptions =
  fst (solve_assuming_stats ?max_conflicts ?should_stop t assumptions)

let solves t = t.n_solves

(* One-shot interface: a fresh solver per call, so repeated solves of the
   same CNF are bit-for-bit deterministic (no retained state). *)
let solve_stats ?max_conflicts ?should_stop (cnf : Cnf.t) =
  let t = create () in
  ensure_vars t cnf.Cnf.nvars;
  List.iter (add_clause t) cnf.Cnf.clauses;
  let result, stats = solve_assuming_stats ?max_conflicts ?should_stop t [] in
  (* one-shot models are sized by the CNF header even when trailing
     variables never appear in any clause *)
  let result =
    match result with
    | Sat m when Array.length m < cnf.Cnf.nvars ->
      Sat (Array.init cnf.Cnf.nvars (fun v -> v < Array.length m && m.(v)))
    | r -> r
  in
  (result, stats)

let solve ?max_conflicts ?should_stop cnf =
  fst (solve_stats ?max_conflicts ?should_stop cnf)
