(* CDCL in the MiniSat style. Variables are 0-based internally; literal
   encoding is 2*v for the positive and 2*v+1 for the negative literal.
   watches.(l) holds the indices of clauses currently watching literal l;
   when l becomes false those clauses must find a new watch, propagate, or
   conflict. *)

type result = Sat of bool array | Unsat | Unknown

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  learned : int;
}

let zero_stats =
  { decisions = 0; conflicts = 0; propagations = 0; restarts = 0; learned = 0 }

type state = {
  nvars : int;
  mutable clauses : int array array;
  mutable num_clauses : int;
  watches : int list array;  (* indexed by literal *)
  assigns : int array;       (* -1 / 0 / 1 per var *)
  level : int array;
  reason : int array;        (* clause index or -1 *)
  trail : int array;
  mutable trail_size : int;
  mutable qhead : int;
  mutable trail_lim : int list;  (* trail sizes at decision points *)
  activity : float array;
  mutable var_inc : float;
  phase : bool array;
  seen : bool array;
  (* per-solve work counters: solver-local, so concurrent solves on
     different domains never race (unlike the old stats_last globals) *)
  mutable n_decisions : int;
  mutable n_conflicts : int;
  mutable n_propagations : int;
  mutable n_restarts : int;
  mutable n_learned : int;
}

let neg l = l lxor 1
let var_of l = l lsr 1
let lit_of_var v sign = (v lsl 1) lor (if sign then 0 else 1)

let value st l =
  let a = st.assigns.(var_of l) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level st = List.length st.trail_lim

let add_clause_raw st lits =
  let idx = st.num_clauses in
  if idx >= Array.length st.clauses then begin
    let bigger = Array.make (max 16 (2 * Array.length st.clauses)) [||] in
    Array.blit st.clauses 0 bigger 0 idx;
    st.clauses <- bigger
  end;
  st.clauses.(idx) <- lits;
  st.num_clauses <- idx + 1;
  if Array.length lits >= 2 then begin
    st.watches.(lits.(0)) <- idx :: st.watches.(lits.(0));
    st.watches.(lits.(1)) <- idx :: st.watches.(lits.(1))
  end;
  idx

let enqueue st l reason =
  match value st l with
  | 1 -> true
  | 0 -> false
  | _ ->
    let v = var_of l in
    st.assigns.(v) <- 1 lxor (l land 1);
    st.level.(v) <- decision_level st;
    st.reason.(v) <- reason;
    st.phase.(v) <- l land 1 = 0;
    st.trail.(st.trail_size) <- l;
    st.trail_size <- st.trail_size + 1;
    true

(* returns the index of a conflicting clause, or -1 *)
let propagate st =
  let conflict = ref (-1) in
  while !conflict < 0 && st.qhead < st.trail_size do
    let p = st.trail.(st.qhead) in
    st.qhead <- st.qhead + 1;
    st.n_propagations <- st.n_propagations + 1;
    let false_lit = neg p in
    let ws = st.watches.(false_lit) in
    st.watches.(false_lit) <- [];
    let rec process = function
      | [] -> ()
      | ci :: rest when !conflict >= 0 ->
        (* conflict already found: retain remaining watches untouched *)
        st.watches.(false_lit) <- ci :: st.watches.(false_lit);
        process rest
      | ci :: rest ->
        let lits = st.clauses.(ci) in
        if lits.(0) = false_lit then begin
          lits.(0) <- lits.(1);
          lits.(1) <- false_lit
        end;
        if value st lits.(0) = 1 then begin
          st.watches.(false_lit) <- ci :: st.watches.(false_lit);
          process rest
        end
        else begin
          let n = Array.length lits in
          let rec find_watch k =
            if k >= n then -1
            else if value st lits.(k) <> 0 then k
            else find_watch (k + 1)
          in
          let k = find_watch 2 in
          if k >= 0 then begin
            lits.(1) <- lits.(k);
            lits.(k) <- false_lit;
            st.watches.(lits.(1)) <- ci :: st.watches.(lits.(1));
            process rest
          end
          else begin
            st.watches.(false_lit) <- ci :: st.watches.(false_lit);
            if not (enqueue st lits.(0) ci) then begin
              conflict := ci;
              st.qhead <- st.trail_size
            end;
            process rest
          end
        end
    in
    process ws
  done;
  !conflict

let bump st v =
  st.activity.(v) <- st.activity.(v) +. st.var_inc;
  if st.activity.(v) > 1e100 then begin
    for i = 0 to st.nvars - 1 do
      st.activity.(i) <- st.activity.(i) *. 1e-100
    done;
    st.var_inc <- st.var_inc *. 1e-100
  end

let analyze st confl =
  let learnt = ref [] in
  let path_count = ref 0 in
  let p = ref (-1) in
  let index = ref (st.trail_size - 1) in
  let confl = ref confl in
  let current_level = decision_level st in
  let continue = ref true in
  while !continue do
    let lits = st.clauses.(!confl) in
    let start = if !p = -1 then 0 else 1 in
    for i = start to Array.length lits - 1 do
      let q = lits.(i) in
      let v = var_of q in
      if (not st.seen.(v)) && st.level.(v) > 0 then begin
        st.seen.(v) <- true;
        bump st v;
        if st.level.(v) >= current_level then incr path_count
        else learnt := q :: !learnt
      end
    done;
    (* pick the next literal to resolve on: last seen var on the trail *)
    while not st.seen.(var_of st.trail.(!index)) do
      decr index
    done;
    p := st.trail.(!index);
    decr index;
    st.seen.(var_of !p) <- false;
    decr path_count;
    if !path_count > 0 then confl := st.reason.(var_of !p)
    else continue := false
  done;
  let learnt = Array.of_list (neg !p :: !learnt) in
  (* clear seen flags *)
  Array.iter (fun l -> st.seen.(var_of l) <- false) learnt;
  (* backtrack level: second-highest level in the learnt clause *)
  let bt_level = ref 0 in
  let swap_pos = ref 1 in
  for i = 1 to Array.length learnt - 1 do
    let lv = st.level.(var_of learnt.(i)) in
    if lv > !bt_level then begin
      bt_level := lv;
      swap_pos := i
    end
  done;
  if Array.length learnt > 1 then begin
    let tmp = learnt.(1) in
    learnt.(1) <- learnt.(!swap_pos);
    learnt.(!swap_pos) <- tmp
  end;
  (learnt, !bt_level)

let backtrack st lvl =
  (* trail_lim is most-recent-first; pop one entry per level removed. The
     last popped entry is the trail size when level lvl+1 was entered. *)
  let d = decision_level st in
  if d > lvl then begin
    let rec pop lims n bound =
      if n = 0 then (lims, bound)
      else
        match lims with
        | [] -> ([], bound)
        | b :: rest -> pop rest (n - 1) b
    in
    let new_lims, bound = pop st.trail_lim (d - lvl) st.trail_size in
    for i = st.trail_size - 1 downto bound do
      let v = var_of st.trail.(i) in
      st.assigns.(v) <- -1;
      st.reason.(v) <- -1
    done;
    st.trail_size <- bound;
    st.qhead <- bound;
    st.trail_lim <- new_lims
  end

let decide st =
  let best = ref (-1) in
  let best_act = ref neg_infinity in
  for v = 0 to st.nvars - 1 do
    if st.assigns.(v) < 0 && st.activity.(v) > !best_act then begin
      best := v;
      best_act := st.activity.(v)
    end
  done;
  if !best < 0 then None
  else begin
    st.n_decisions <- st.n_decisions + 1;
    st.trail_lim <- st.trail_size :: st.trail_lim;
    let l = lit_of_var !best st.phase.(!best) in
    let ok = enqueue st l (-1) in
    assert ok;
    Some !best
  end

let solve_stats ?(max_conflicts = max_int) ?(should_stop = fun () -> false)
    (cnf : Cnf.t) =
  let n = cnf.Cnf.nvars in
  let st =
    { nvars = n; clauses = Array.make 256 [||]; num_clauses = 0;
      watches = Array.make (2 * max 1 n) []; assigns = Array.make (max 1 n) (-1);
      level = Array.make (max 1 n) 0; reason = Array.make (max 1 n) (-1);
      trail = Array.make (max 1 n) 0; trail_size = 0; qhead = 0;
      trail_lim = []; activity = Array.make (max 1 n) 0.0; var_inc = 1.0;
      phase = Array.make (max 1 n) false; seen = Array.make (max 1 n) false;
      n_decisions = 0; n_conflicts = 0; n_propagations = 0; n_restarts = 0;
      n_learned = 0 }
  in
  let stats_of st =
    { decisions = st.n_decisions; conflicts = st.n_conflicts;
      propagations = st.n_propagations; restarts = st.n_restarts;
      learned = st.n_learned }
  in
  let lit_of_dimacs l =
    let v = abs l - 1 in
    lit_of_var v (l > 0)
  in
  (* normalize input clauses: dedup, drop tautologies, catch empties/units *)
  let exception Trivially_unsat in
  match
    List.iter
      (fun clause ->
        let lits = List.sort_uniq compare (List.map lit_of_dimacs clause) in
        let tautology =
          List.exists (fun l -> List.mem (neg l) lits) lits
        in
        if not tautology then
          match lits with
          | [] -> raise Trivially_unsat
          | [ l ] -> if not (enqueue st l (-1)) then raise Trivially_unsat
          | _ -> ignore (add_clause_raw st (Array.of_list lits)))
      cnf.Cnf.clauses
  with
  | exception Trivially_unsat -> (Unsat, stats_of st)
  | () ->
    if propagate st >= 0 then (Unsat, stats_of st)
    else begin
      let conflicts_total = ref 0 in
      let restart_limit = ref 100 in
      let conflicts_since_restart = ref 0 in
      let result = ref None in
      (* poll the stop callback once per [stop_period] search steps: each
         step is one propagate + decide/analyze, so the poll (typically a
         gettimeofday behind a deadline) stays off the hot path *)
      let stop_period = 1024 in
      let stop_fuel = ref stop_period in
      while !result = None do
        decr stop_fuel;
        if !stop_fuel <= 0 then begin
          stop_fuel := stop_period;
          if should_stop () then result := Some Unknown
        end;
        let confl = propagate st in
        if confl >= 0 then begin
          incr conflicts_total;
          incr conflicts_since_restart;
          st.n_conflicts <- st.n_conflicts + 1;
          st.var_inc <- st.var_inc /. 0.95;
          if decision_level st = 0 then result := Some Unsat
          else if !conflicts_total >= max_conflicts then result := Some Unknown
          else begin
            let learnt, bt_level = analyze st confl in
            st.n_learned <- st.n_learned + 1;
            backtrack st bt_level;
            if Array.length learnt = 1 then begin
              if not (enqueue st learnt.(0) (-1)) then result := Some Unsat
            end
            else begin
              let ci = add_clause_raw st learnt in
              let ok = enqueue st learnt.(0) ci in
              assert ok
            end
          end
        end
        else if !conflicts_since_restart >= !restart_limit then begin
          conflicts_since_restart := 0;
          restart_limit := !restart_limit * 3 / 2;
          st.n_restarts <- st.n_restarts + 1;
          backtrack st 0
        end
        else
          match decide st with
          | None ->
            let model = Array.init n (fun v -> st.assigns.(v) = 1) in
            result := Some (Sat model)
          | Some _ -> ()
      done;
      match !result with
      | Some r -> (r, stats_of st)
      | None -> assert false
    end

let solve ?max_conflicts ?should_stop cnf =
  fst (solve_stats ?max_conflicts ?should_stop cnf)
