type ctx = {
  mutable next_var : int;
  mutable clauses : int list list;
  mutable num_clauses : int;
  node_lit : (int, int) Hashtbl.t;  (* Bexpr node id -> literal *)
  mutable const_true : int option;  (* variable forced true, lazily made *)
  on_clause : (int list -> unit) option;
      (* streaming sink: clauses go straight to a live solver instead of
         being accumulated for to_cnf *)
}

let create ?on_clause () =
  { next_var = 0; clauses = []; num_clauses = 0;
    node_lit = Hashtbl.create 997; const_true = None; on_clause }

let fresh_var ctx =
  ctx.next_var <- ctx.next_var + 1;
  ctx.next_var

let add_clause ctx lits =
  (match ctx.on_clause with
   | Some sink -> sink lits
   | None -> ctx.clauses <- lits :: ctx.clauses);
  ctx.num_clauses <- ctx.num_clauses + 1

let assert_lit ctx lit = add_clause ctx [ lit ]

let true_lit ctx =
  match ctx.const_true with
  | Some v -> v
  | None ->
    let v = fresh_var ctx in
    assert_lit ctx v;
    ctx.const_true <- Some v;
    v

let lit_of_bexpr ctx var_map root =
  (* The cache key is the Bexpr node id, so shared nodes encode once. Note
     the cache lives in the context: re-encoding the same DAG is free. *)
  let rec go (e : Rtl.Bexpr.t) =
    match Hashtbl.find_opt ctx.node_lit (Rtl.Bexpr.id e) with
    | Some l -> l
    | None ->
      let l =
        match e.node with
        | Rtl.Bexpr.True -> true_lit ctx
        | Rtl.Bexpr.False -> -true_lit ctx
        | Rtl.Bexpr.Var v -> var_map v
        | Rtl.Bexpr.Not a -> -go a
        | Rtl.Bexpr.And (a, b) ->
          let la = go a and lb = go b in
          let o = fresh_var ctx in
          add_clause ctx [ -o; la ];
          add_clause ctx [ -o; lb ];
          add_clause ctx [ o; -la; -lb ];
          o
        | Rtl.Bexpr.Or (a, b) ->
          let la = go a and lb = go b in
          let o = fresh_var ctx in
          add_clause ctx [ o; -la ];
          add_clause ctx [ o; -lb ];
          add_clause ctx [ -o; la; lb ];
          o
        | Rtl.Bexpr.Xor (a, b) ->
          let la = go a and lb = go b in
          let o = fresh_var ctx in
          add_clause ctx [ -o; la; lb ];
          add_clause ctx [ -o; -la; -lb ];
          add_clause ctx [ o; -la; lb ];
          add_clause ctx [ o; la; -lb ];
          o
        | Rtl.Bexpr.Ite (c, t, f) ->
          let lc = go c and lt = go t and lf = go f in
          let o = fresh_var ctx in
          add_clause ctx [ -o; -lc; lt ];
          add_clause ctx [ -o; lc; lf ];
          add_clause ctx [ o; -lc; -lt ];
          add_clause ctx [ o; lc; -lf ];
          (* redundant but propagation-strengthening clauses *)
          add_clause ctx [ -o; lt; lf ];
          add_clause ctx [ o; -lt; -lf ];
          o
      in
      Hashtbl.replace ctx.node_lit (Rtl.Bexpr.id e) l;
      l
  in
  go root

let to_cnf ctx =
  if ctx.on_clause <> None then
    invalid_arg "Tseitin.to_cnf: context streams clauses to a sink";
  Cnf.create ~nvars:ctx.next_var (List.rev ctx.clauses)
let num_vars ctx = ctx.next_var
let num_clauses ctx = ctx.num_clauses
