(** A CDCL SAT solver: two-watched-literal propagation, first-UIP conflict
    analysis with clause learning, VSIDS-style activity decisions, and
    geometric restarts. Used as the bounded-model-checking backend (the
    "various formal solver algorithms" of the paper's commercial tool). *)

type result =
  | Sat of bool array  (** [model.(v-1)] is the value of DIMACS variable [v] *)
  | Unsat
  | Unknown  (** conflict budget exhausted, or [should_stop] fired *)

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  learned : int;  (** learnt clauses added by conflict analysis *)
}
(** Per-solve work counters: a deterministic work measure for a single
    [solve_stats] call. The counters live in the solver state, so
    concurrent solves on different domains never observe each other. *)

val zero_stats : stats

val solve : ?max_conflicts:int -> ?should_stop:(unit -> bool) -> Cnf.t -> result
(** [max_conflicts] defaults to unlimited. [should_stop] is a cooperative
    cancellation callback (e.g. a wall-clock deadline), polled every ~1000
    search steps; when it returns [true] the search gives up with
    {!Unknown}. *)

val solve_stats :
  ?max_conflicts:int -> ?should_stop:(unit -> bool) -> Cnf.t ->
  result * stats
(** Like {!solve}, but also returns the work counters for this solve. *)
