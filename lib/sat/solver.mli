(** A CDCL SAT solver: two-watched-literal propagation, first-UIP conflict
    analysis with clause learning, VSIDS-style activity decisions, and
    geometric restarts. Used as the bounded-model-checking backend (the
    "various formal solver algorithms" of the paper's commercial tool).

    The solver is incremental: {!create} makes a persistent solver whose
    clause database, learnt clauses, variable activities and saved phases
    survive across {!solve_assuming} calls, so the model checkers extend a
    live CNF (depth [k+1] reuses everything learnt at depth [k]) instead of
    rebuilding it. Restarts backtrack to the assumption prefix — never
    below — and no warm-start state is reset between calls. *)

type result =
  | Sat of bool array  (** [model.(v-1)] is the value of DIMACS variable [v] *)
  | Unsat
  | Unknown  (** conflict budget exhausted, or [should_stop] fired *)

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  learned : int;  (** learnt clauses added by conflict analysis *)
}
(** Per-solve work counters: a deterministic work measure for a single
    [solve_stats] / [solve_assuming_stats] call. The counters live in the
    solver state, so concurrent solves on different domains never observe
    each other. *)

val zero_stats : stats

(** {1 Incremental interface} *)

type t
(** A persistent solver: clause database, learnt clauses, activities and
    phases are retained across calls. Not thread-safe; use one [t] per
    obligation/domain. *)

val create : unit -> t

val add_clause : t -> int list -> unit
(** Add a problem clause (DIMACS literals, i.e. nonzero ints where [-v]
    is the negation of variable [v]). Variables are allocated on demand.
    Must be called between solves (the solver is at decision level 0).
    Clauses are simplified against permanent root-level assignments; an
    empty clause makes the solver permanently unsatisfiable. *)

val solve_assuming :
  ?max_conflicts:int -> ?should_stop:(unit -> bool) -> t -> int list -> result
(** [solve_assuming t assumptions] decides satisfiability of the clause
    database conjoined with the assumption literals (DIMACS), without
    committing them: the assumptions are retracted when the call returns,
    while everything learnt is kept. [Unsat] means unsat {e under these
    assumptions} (or absolutely, if the database itself is contradictory).
    [max_conflicts] and [should_stop] are per-call budgets as in
    {!solve}. *)

val solve_assuming_stats :
  ?max_conflicts:int -> ?should_stop:(unit -> bool) -> t -> int list ->
  result * stats
(** Like {!solve_assuming}, plus the work counters for this call alone. *)

val num_vars : t -> int
(** Highest DIMACS variable seen so far. Models index [0 .. num_vars-1]. *)

val num_clauses : t -> int
(** Problem clauses added via {!add_clause} (learnt clauses excluded). *)

val solves : t -> int
(** Number of [solve_assuming] calls made on this solver so far. *)

(** {1 One-shot interface}

    Each call builds a fresh solver, so repeated solves of the same CNF are
    bit-for-bit deterministic. *)

val solve : ?max_conflicts:int -> ?should_stop:(unit -> bool) -> Cnf.t -> result
(** [max_conflicts] defaults to unlimited. [should_stop] is a cooperative
    cancellation callback (e.g. a wall-clock deadline), polled every ~1000
    search steps; when it returns [true] the search gives up with
    {!Unknown}. *)

val solve_stats :
  ?max_conflicts:int -> ?should_stop:(unit -> bool) -> Cnf.t ->
  result * stats
(** Like {!solve}, but also returns the work counters for this solve. *)
