type t = float option

exception Expired

let none = None
let after s = Some (Unix.gettimeofday () +. s)
let of_budget = Option.map (fun s -> Unix.gettimeofday () +. s)
let expired = function None -> false | Some t -> Unix.gettimeofday () >= t
let check d = if expired d then raise Expired
let checker d () = expired d
