type t = { until : float option; stop : unit -> bool }

exception Expired

let never_stop () = false
let none = { until = None; stop = never_stop }
let after s = { until = Some (Unix.gettimeofday () +. s); stop = never_stop }
let of_budget = function None -> none | Some s -> after s

let with_stop d stop =
  let prev = d.stop in
  if prev == never_stop then { d with stop }
  else { d with stop = (fun () -> prev () || stop ()) }

let wall_expired d =
  match d.until with
  | None -> false
  | Some t -> Unix.gettimeofday () >= t

let cancelled d = d.stop ()
let expired d = wall_expired d || d.stop ()
let live d = d.until <> None || d.stop != never_stop
let check d = if expired d then raise Expired
let checker d () = expired d
