(** Engine progress beacons: each domain owns one mutable cell it overwrites
    from inside its engine loop (current BMC depth, IC3 frame, reachability
    iteration, live node/clause count), and a status reader snapshots every
    cell on demand.

    This is the "what is that worker doing {e right now}" channel behind the
    status socket — distinct from {!Obs.Telemetry} (completed work, merged
    after the run) and {!Obs.Flight} (recent event history). A {!report} is
    four field writes on a domain-local cell: no allocation, no lock, no
    contention, so the engines call it from their hottest loops at the same
    sites they poll the deadline. Readers take the registry lock only to
    walk the cell list; torn reads of a cell mid-update are acceptable for
    monitoring.

    When no registry is installed ({!enable} not called), {!report} is one
    atomic load and a branch. *)

type t = {
  lane : int;  (** reporting domain's id *)
  engine : string;  (** e.g. ["bdd"], ["bmc"], ["k-induction"], ["ic3"] *)
  step : int;  (** engine-specific progress: k, frame or fixpoint iter *)
  work : int;  (** engine-specific size: BDD nodes, CNF vars or clauses *)
  age_s : float;  (** seconds since the cell was last written *)
}

val enable : unit -> unit
(** Install a fresh registry; an active one is replaced. *)

val disable : unit -> unit
val active : unit -> bool

val report : engine:string -> step:int -> work:int -> unit
(** Overwrite the calling domain's cell. Cheap enough for engine loops. *)

val idle : unit -> unit
(** Mark the calling domain idle (its cell stops appearing in
    {!snapshot}). The campaign calls this when an obligation finishes so a
    stale "in ic3 at frame 7" never outlives its obligation. *)

val snapshot : unit -> t list
(** Copies of every non-idle cell, sorted by lane. *)
