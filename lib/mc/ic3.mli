(** IC3/PDR: unbounded SAT-based safety checking by incremental induction.

    The engine maintains a monotone sequence of frames [F_0 = init, F_1,
    F_2, ...], each an over-approximation of the states reachable in that
    many steps, represented as clause sets over the state bits
    (delta-encoded: a clause lives at the highest frame it is proven for).
    Each major iteration extends the frontier, extracts
    counterexamples-to-induction (CTIs) as state minterms from SAT models,
    blocks them recursively at earlier frames, generalizes each blocked
    cube by literal dropping under relative induction, and finally pushes
    clauses forward; two adjacent frames becoming equal is an inductive
    invariant, i.e. a proof.

    Where plain k-induction gives up (the invariant needs strengthening),
    IC3 learns exactly the strengthening clauses it needs — this is the
    portfolio's unbounded fallback for ["kind-inconclusive"] obligations.

    All SAT queries run on the in-tree CDCL solver ({!Solver}). By default
    one persistent solver serves every query of a run: the transition cone
    is encoded once, frame membership is selected by per-frame activation
    literals assumed per query, and per-query block cubes get one-shot
    activation literals retired right after the solve — so learnt clauses
    accumulate across the thousands of relative-induction queries.
    [~incremental:false] keeps the original fresh-Tseitin-per-query path
    as a differential oracle (the two modes answer the same queries but may
    explore different models, so frame counts can differ; verdicts agree).
    The cooperative [deadline] is polled at every frame, obligation, and
    generalization step, and inside the solver via [should_stop]. *)

type stats = {
  frames : int;  (** highest frame opened (or CTI chain depth on refutation) *)
  clauses : int;  (** frame clauses learned, post-generalization *)
  ctis : int;  (** counterexamples-to-induction blocked *)
  sat_calls : int;
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  reused : int;
      (** queries answered by the warm persistent solver (0 in scratch
          mode) *)
}

type reason =
  | Frames_exhausted  (** [max_frames] reached without a fixpoint *)
  | Solver_limit  (** a query hit [max_conflicts] or was cancelled *)

type result =
  | Proved of stats
  | Violation of Trace.t * stats
  | Inconclusive of reason * stats

val check :
  ?incremental:bool ->
  ?max_conflicts:int ->
  ?max_frames:int ->
  ?deadline:Deadline.t ->
  ?constraint_signal:string ->
  Rtl.Netlist.t ->
  ok_signal:string ->
  result
(** Decide whether the 1-bit [ok_signal] holds in every reachable state.
    [max_frames] (default 32) bounds the frame sequence; [max_conflicts]
    bounds each individual SAT query. A refutation's CTI chain is a
    concrete reset-to-bad path; the trace is materialized by re-running
    {!Bmc.check} at exactly the chain's depth, so [Violation] traces are
    replay-valid in the same format as every other engine's. Raises
    {!Deadline.Expired} when the deadline fires between queries. *)
