(** Unbounded model checking with partitioned OBDDs — the reproduction of the
    paper's in-house engine [10]: the reachable-state set is never built as
    one monolithic BDD; it is kept split across windows over chosen state
    variables, bounding the peak BDD size. *)

val check_forward_partitioned :
  ?constrain:Bdd.t ->
  ?deadline:Deadline.t ->
  Sym.t ->
  ok:Bdd.t ->
  num_split_vars:int ->
  Reach.result
(** Forward reachability with [2^num_split_vars] partitions. The splitting
    variables are chosen greedily ({!Pobdd.choose_splitting_vars}) on the
    bad-state set; [Reach.stats.peak_set_size] reports the largest single
    partition, which is the quantity partitioning bounds. The partition loop
    polls [deadline] once per iteration and raises {!Deadline.Expired}. *)
