type 'meta t = {
  nl : Rtl.Netlist.t;
  ok_signal : string;
  constraint_signal : string option;
  budget : Engine.budget;
  strategy : Engine.strategy;
  meta : 'meta;
}

let prepare ?(budget = Engine.default_budget) ?(strategy = Engine.Auto) mdl
    ~assert_ ~assumes ~meta =
  if not (Rtl.Mdl.is_leaf mdl) then
    invalid_arg
      (Printf.sprintf
         "Obligation.prepare: %s is not a leaf module; the methodology \
          checks leaf modules only"
         mdl.Rtl.Mdl.name);
  let nl, ok_signal, constraint_signal =
    Engine.instrumented_netlist mdl ~assert_ ~assumes
  in
  { nl; ok_signal; constraint_signal; budget; strategy; meta }

let of_prepared ?(budget = Engine.default_budget) ?(strategy = Engine.Auto)
    (nl, ok_signal, constraint_signal) ~meta =
  { nl; ok_signal; constraint_signal; budget; strategy; meta }

let of_vunit ?budget ?strategy mdl vunit ~meta =
  let assumes = List.map snd (Psl.Ast.assumes vunit) in
  List.map
    (fun (prop_name, assert_) ->
      prepare ?budget ?strategy mdl ~assert_ ~assumes ~meta:(meta ~prop_name))
    (Psl.Ast.asserts vunit)

let budget_salt (b : Engine.budget) =
  let lim = function None -> "-" | Some n -> string_of_int n in
  let sec = function None -> "-" | Some s -> Printf.sprintf "%g" s in
  (* the [incremental] marker is appended only when the flag is off: default
     budgets keep the exact salt format (and hence cache keys) of earlier
     releases, while a scratch-mode run can never alias an incremental one *)
  Printf.sprintf "%s/%s/%d/%d/%d/%d/%d/%s%s" (lim b.Engine.bdd_node_limit)
    (lim b.Engine.pobdd_node_limit)
    b.Engine.pobdd_split_vars b.Engine.bmc_depth b.Engine.induction_max_k
    b.Engine.sat_max_conflicts b.Engine.ic3_max_frames
    (sec b.Engine.wall_deadline_s)
    (if b.Engine.incremental then "" else "/noinc")

(* A portfolio's key must cover its members and their budgets — two
   portfolios under one name but different member caps answer different
   questions. The salt is the same whether the portfolio is then raced or
   run sequentially, so racing never changes a cache or journal key. *)
let rec strategy_salt = function
  | Engine.Portfolio p ->
    Printf.sprintf "portfolio:%s[%s]" p.Engine.p_name
      (String.concat ";"
         (List.map
            (fun (m : Engine.member) ->
              Printf.sprintf "%s@%s"
                (strategy_salt m.Engine.m_strategy)
                (budget_salt m.Engine.m_budget))
            p.Engine.p_members))
  | s -> Engine.strategy_name s

let fingerprint ?salt o =
  let salt =
    Printf.sprintf "%s|%s%s" (strategy_salt o.strategy) (budget_salt o.budget)
      (match salt with None -> "" | Some s -> "|" ^ s)
  in
  let roots =
    o.ok_signal
    :: (match o.constraint_signal with Some c -> [ c ] | None -> [])
  in
  Rtl.Canon.fingerprint ~salt ~roots o.nl

let run ?cancel o =
  Engine.check_netlist ~budget:o.budget ?constraint_signal:o.constraint_signal
    ?cancel ~strategy:o.strategy o.nl ~ok_signal:o.ok_signal

let size o =
  let state = Rtl.Netlist.state_bits o.nl in
  let inputs =
    List.fold_left (fun acc (_, w) -> acc + w) 0 o.nl.Rtl.Netlist.inputs
  in
  (state, inputs)

let map_meta f o = { o with meta = f o.meta }
