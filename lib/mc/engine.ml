type strategy =
  | Bdd_forward
  | Bdd_backward
  | Bdd_combined
  | Pobdd
  | Bmc
  | Kind
  | Ic3
  | Auto
  | Portfolio of portfolio

and portfolio = { p_name : string; p_members : member list }

and member = { m_strategy : strategy; m_budget : budget }

and budget = {
  bdd_node_limit : int option;
  pobdd_node_limit : int option;
  pobdd_split_vars : int;
  bmc_depth : int;
  induction_max_k : int;
  sat_max_conflicts : int;
  ic3_max_frames : int;
  wall_deadline_s : float option;
  incremental : bool;
}

let strategy_name = function
  | Bdd_forward -> "bdd-forward"
  | Bdd_backward -> "bdd-backward"
  | Bdd_combined -> "bdd-combined"
  | Pobdd -> "pobdd"
  | Bmc -> "bmc"
  | Kind -> "k-induction"
  | Ic3 -> "ic3"
  | Auto -> "auto"
  | Portfolio p -> "portfolio:" ^ p.p_name

let strategy_of_string = function
  | "bdd-forward" -> Some Bdd_forward
  | "bdd-backward" -> Some Bdd_backward
  | "bdd-combined" -> Some Bdd_combined
  | "pobdd" -> Some Pobdd
  | "bmc" -> Some Bmc
  | "k-induction" -> Some Kind
  | "ic3" -> Some Ic3
  | "auto" -> Some Auto
  | _ -> None

let default_budget =
  { bdd_node_limit = Some 2_000_000; pobdd_node_limit = Some 8_000_000;
    pobdd_split_vars = 2; bmc_depth = 20; induction_max_k = 20;
    sat_max_conflicts = 2_000_000; ic3_max_frames = 32;
    wall_deadline_s = None; incremental = true }

let degrade_budget b =
  let half = Option.map (fun n -> max 1 (n / 2)) in
  { b with
    bdd_node_limit = half b.bdd_node_limit;
    pobdd_node_limit = half b.pobdd_node_limit;
    sat_max_conflicts = max 1 (b.sat_max_conflicts / 2);
    wall_deadline_s = Option.map (fun s -> s /. 2.0) b.wall_deadline_s }

let portfolio ~name members =
  if members = [] then invalid_arg "Engine.portfolio: empty member list";
  List.iter
    (fun m ->
      match m.m_strategy with
      | Auto | Portfolio _ ->
        invalid_arg
          (Printf.sprintf
             "Engine.portfolio: member %s is not an atomic strategy"
             (strategy_name m.m_strategy))
      | Bdd_forward | Bdd_backward | Bdd_combined | Pobdd | Bmc | Kind | Ic3
        ->
        ())
    members;
  { p_name = name; p_members = members }

(* The default racing portfolio. The BDD member runs with a small node cap:
   on this workload almost every obligation collapses in a few thousand
   nodes, so the cap only trips on the genuinely hard cones — exactly the
   ones worth racing the SAT engines on. The final POBDD member keeps the
   full Auto-ladder budget as the conclusiveness backstop, so a portfolio
   race decides every obligation the sequential ladder decides. Members get
   no private wall deadline; the caller's overall deadline is threaded
   through the cancellation hook instead. *)
let speculation_bdd_nodes = 5_000

let default_portfolio base =
  let base = { base with wall_deadline_s = None } in
  let cap =
    match base.bdd_node_limit with
    | Some n -> Some (min n speculation_bdd_nodes)
    | None -> Some speculation_bdd_nodes
  in
  portfolio ~name:"default"
    [ { m_strategy = Bdd_combined;
        m_budget = { base with bdd_node_limit = cap } };
      { m_strategy = Kind; m_budget = base };
      { m_strategy = Ic3; m_budget = base };
      { m_strategy = Pobdd; m_budget = base } ]

type verdict =
  | Proved
  | Proved_bounded of int
  | Failed of Trace.t
  | Resource_out of string
  | Error of string

type perf = {
  bdd_peak : int;
  bdd_polls : int;
  fix_iterations : int;
  peak_set_size : int;
  sat_decisions : int;
  sat_conflicts : int;
  sat_propagations : int;
  sat_restarts : int;
  incremental_reuse : int;
  unroll_depth : int;
  final_k : int;
  ic3_frames : int;
  attempts : string list;
}

let empty_perf =
  { bdd_peak = 0; bdd_polls = 0; fix_iterations = 0; peak_set_size = 0;
    sat_decisions = 0; sat_conflicts = 0; sat_propagations = 0;
    sat_restarts = 0; incremental_reuse = 0; unroll_depth = -1; final_k = -1;
    ic3_frames = -1; attempts = [] }

type outcome = {
  verdict : verdict;
  engine_used : string;
  time_s : float;
  iterations : int;
  work_nodes : int;
  perf : perf;
}

let resource_cause o =
  match o.verdict with Resource_out c -> Some c | _ -> None

let conclusive o =
  match o.verdict with
  | Proved | Failed _ -> true
  | Proved_bounded _ | Resource_out _ | Error _ -> false

(* Deterministic winner selection over a portfolio prefix. The attributed
   prefix runs from member 0 through the first conclusive member (or all
   members when none concludes); within it, a conclusive verdict always
   wins, then a bounded proof (deeper is better), then resource-out, then
   error — ties to the smallest index. This is a pure function of the
   member outcomes, so the sequential ladder and a race that cancels
   higher-indexed members at the same prefix agree exactly. *)
let outcome_rank o =
  match o.verdict with
  | Proved | Failed _ -> (3, 0)
  | Proved_bounded d -> (2, d)
  | Resource_out _ -> (1, 0)
  | Error _ -> (0, 0)

let merge_perf a p =
  { bdd_peak = max a.bdd_peak p.bdd_peak;
    bdd_polls = a.bdd_polls + p.bdd_polls;
    fix_iterations = a.fix_iterations + p.fix_iterations;
    peak_set_size = max a.peak_set_size p.peak_set_size;
    sat_decisions = a.sat_decisions + p.sat_decisions;
    sat_conflicts = a.sat_conflicts + p.sat_conflicts;
    sat_propagations = a.sat_propagations + p.sat_propagations;
    sat_restarts = a.sat_restarts + p.sat_restarts;
    incremental_reuse = a.incremental_reuse + p.incremental_reuse;
    unroll_depth = max a.unroll_depth p.unroll_depth;
    final_k = max a.final_k p.final_k;
    ic3_frames = max a.ic3_frames p.ic3_frames;
    attempts = a.attempts @ p.attempts }

let combine_portfolio outcomes =
  if outcomes = [] then invalid_arg "Engine.combine_portfolio: no outcomes";
  (* truncate at the first conclusive member: anything a race might have
     run beyond it is schedule-dependent and must not be attributed *)
  let rec prefix acc = function
    | [] -> List.rev acc
    | o :: tl ->
      if conclusive o then List.rev (o :: acc) else prefix (o :: acc) tl
  in
  let attributed = prefix [] outcomes in
  let winner =
    List.fold_left
      (fun best o -> if outcome_rank o > outcome_rank best then o else best)
      (List.hd attributed) (List.tl attributed)
  in
  { verdict = winner.verdict;
    engine_used = winner.engine_used;
    time_s = List.fold_left (fun a o -> a +. o.time_s) 0.0 attributed;
    iterations = winner.iterations;
    work_nodes = winner.work_nodes;
    perf = List.fold_left (fun a o -> merge_perf a o.perf) empty_perf attributed
  }

module Telemetry = Obs.Telemetry

(* Work accounting for one check_netlist run, mutated as engine attempts
   complete (including attempts that end in an exception), then frozen into
   the outcome's [perf]. *)
type acc = {
  mutable a_bdd_peak : int;
  mutable a_bdd_alloc : int;  (* additive across attempts, for counters *)
  mutable a_bdd_polls : int;
  mutable a_fix_iterations : int;
  mutable a_peak_set_size : int;
  mutable a_sat_d : int;
  mutable a_sat_c : int;
  mutable a_sat_p : int;
  mutable a_sat_r : int;
  mutable a_inc_reuse : int;
  mutable a_unroll : int;
  mutable a_final_k : int;
  mutable a_ic3_frames : int;
  mutable a_attempts_rev : string list;
}

let fresh_acc () =
  { a_bdd_peak = 0; a_bdd_alloc = 0; a_bdd_polls = 0; a_fix_iterations = 0;
    a_peak_set_size = 0; a_sat_d = 0; a_sat_c = 0; a_sat_p = 0; a_sat_r = 0;
    a_inc_reuse = 0; a_unroll = -1; a_final_k = -1; a_ic3_frames = -1;
    a_attempts_rev = [] }

let perf_of_acc a =
  { bdd_peak = a.a_bdd_peak; bdd_polls = a.a_bdd_polls;
    fix_iterations = a.a_fix_iterations; peak_set_size = a.a_peak_set_size;
    sat_decisions = a.a_sat_d; sat_conflicts = a.a_sat_c;
    sat_propagations = a.a_sat_p; sat_restarts = a.a_sat_r;
    incremental_reuse = a.a_inc_reuse; unroll_depth = a.a_unroll;
    final_k = a.a_final_k;
    ic3_frames = a.a_ic3_frames; attempts = List.rev a.a_attempts_rev }

let acc_sat acc (s : Solver.stats) =
  acc.a_sat_d <- acc.a_sat_d + s.Solver.decisions;
  acc.a_sat_c <- acc.a_sat_c + s.Solver.conflicts;
  acc.a_sat_p <- acc.a_sat_p + s.Solver.propagations;
  acc.a_sat_r <- acc.a_sat_r + s.Solver.restarts

let report_counters acc =
  if Telemetry.active () then begin
    Telemetry.count "engine.checks";
    Telemetry.count ~n:(List.length acc.a_attempts_rev) "engine.attempts";
    Telemetry.count ~n:acc.a_bdd_alloc "bdd.nodes";
    Telemetry.count ~n:acc.a_bdd_polls "bdd.interrupt_polls";
    Telemetry.count ~n:acc.a_fix_iterations "reach.iterations";
    Telemetry.count ~n:acc.a_sat_d "sat.decisions";
    Telemetry.count ~n:acc.a_sat_c "sat.conflicts";
    Telemetry.count ~n:acc.a_sat_p "sat.propagations";
    Telemetry.count ~n:acc.a_sat_r "sat.restarts";
    Telemetry.count ~n:acc.a_inc_reuse "sat.incremental_reuse"
  end

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let of_reach acc engine (r, time_s) =
  let record (s : Reach.stats) =
    acc.a_fix_iterations <- acc.a_fix_iterations + s.Reach.iterations;
    acc.a_peak_set_size <- max acc.a_peak_set_size s.Reach.peak_set_size;
    acc.a_bdd_peak <- max acc.a_bdd_peak s.Reach.bdd_nodes
  in
  match r with
  | Reach.Proved stats ->
    record stats;
    { verdict = Proved; engine_used = engine; time_s;
      iterations = stats.Reach.iterations; work_nodes = stats.Reach.bdd_nodes;
      perf = empty_perf }
  | Reach.Failed (trace, stats) ->
    record stats;
    { verdict = Failed trace; engine_used = engine; time_s;
      iterations = stats.Reach.iterations; work_nodes = stats.Reach.bdd_nodes;
      perf = empty_perf }

let deadline_msg = "deadline"
let bdd_nodes_msg = "bdd-nodes"
let sat_conflicts_msg = "sat-conflicts"
let kind_inconclusive_msg = "kind-inconclusive"
let cancelled_msg = "cancelled"
let ic3_frames_msg = "ic3-frames"

(* canonical Resource_out cause vocabulary, exported so the campaign,
   metrics schema and healing layer never spell these ad hoc *)
let ro_deadline = deadline_msg
let ro_bdd_nodes = bdd_nodes_msg
let ro_sat_conflicts = sat_conflicts_msg
let ro_kind_inconclusive = kind_inconclusive_msg
let ro_cancelled = cancelled_msg
let ro_ic3_frames = ic3_frames_msg
let ro_heal_exhausted = "heal-exhausted"

let ro_causes =
  [ ro_deadline; ro_bdd_nodes; ro_sat_conflicts; ro_kind_inconclusive;
    ro_ic3_frames; ro_cancelled; ro_heal_exhausted ]

(* cause of an interrupted engine run: the wall clock beats the stop hook
   so a deadline that fires during a race still reads "deadline" *)
let interrupt_cause deadline =
  if Deadline.wall_expired deadline then deadline_msg
  else if Deadline.cancelled deadline then cancelled_msg
  else deadline_msg

let run_bdd ~acc ~node_limit ~deadline ~engine nl ok_signal constraint_signal
    check =
  acc.a_attempts_rev <- engine :: acc.a_attempts_rev;
  let man_ref = ref None in
  let f () =
    (* the manager-level interrupt bounds even a single runaway image
       computation (or the transition-relation build itself); the
       per-iteration Deadline.check in the fixpoint loops bounds everything
       between BDD operations *)
    let interrupt =
      if Deadline.live deadline then Some (Deadline.checker deadline)
      else None
    in
    let sym = Sym.create ?node_limit ?interrupt nl in
    man_ref := Some (Sym.man sym);
    let ok = (Sym.signal_bdd sym ok_signal).(0) in
    let constrain =
      Option.map (fun c -> (Sym.signal_bdd sym c).(0)) constraint_signal
    in
    check ?constrain ~deadline sym ok
  in
  (* the manager dies with the attempt, so its peak and poll count must be
     read on every exit path, including Node_limit raised mid-Sym.create *)
  let record_man () =
    match !man_ref with
    | None -> ()
    | Some m ->
      let n = Bdd.node_count m in
      acc.a_bdd_peak <- max acc.a_bdd_peak n;
      acc.a_bdd_alloc <- acc.a_bdd_alloc + n;
      acc.a_bdd_polls <- acc.a_bdd_polls + Bdd.interrupt_polls m
  in
  match Telemetry.span ~cat:"engine" engine (fun () -> timed f) with
  | result ->
    record_man ();
    Ok (of_reach acc engine result)
  | exception Bdd.Node_limit ->
    record_man ();
    Stdlib.Error bdd_nodes_msg
  | exception (Deadline.Expired | Bdd.Interrupted) ->
    record_man ();
    Stdlib.Error (interrupt_cause deadline)

let run_bmc ~acc ~budget ~deadline nl ok_signal constraint_signal =
  acc.a_attempts_rev <- "bmc" :: acc.a_attempts_rev;
  let acc_bmc (s : Bmc.stats) =
    acc.a_unroll <- max acc.a_unroll s.Bmc.depth;
    acc.a_inc_reuse <- acc.a_inc_reuse + s.Bmc.reused;
    acc_sat acc
      { Solver.decisions = s.Bmc.decisions; conflicts = s.Bmc.conflicts;
        propagations = s.Bmc.propagations; restarts = s.Bmc.restarts;
        learned = 0 }
  in
  let f () =
    Bmc.check ~incremental:budget.incremental
      ~max_conflicts:budget.sat_max_conflicts ~deadline ?constraint_signal nl
      ~ok_signal ~depth:budget.bmc_depth
  in
  match Telemetry.span ~cat:"engine" "bmc" (fun () -> timed f) with
  | exception Deadline.Expired ->
    { verdict = Resource_out deadline_msg; engine_used = "bmc"; time_s = 0.0;
      iterations = 0; work_nodes = 0; perf = empty_perf }
  | r, time_s ->
    (match r with
     | Bmc.No_violation_upto (d, stats) ->
       acc_bmc stats;
       { verdict = Proved_bounded d; engine_used = "bmc"; time_s;
         iterations = d; work_nodes = stats.Bmc.cnf_clauses;
         perf = empty_perf }
     | Bmc.Violation (trace, stats) ->
       acc_bmc stats;
       { verdict = Failed trace; engine_used = "bmc"; time_s;
         iterations = stats.Bmc.depth; work_nodes = stats.Bmc.cnf_clauses;
         perf = empty_perf }
     | Bmc.Inconclusive stats ->
       acc_bmc stats;
       let msg =
         if Deadline.expired deadline then interrupt_cause deadline
         else sat_conflicts_msg
       in
       { verdict = Resource_out msg; engine_used = "bmc"; time_s;
         iterations = stats.Bmc.depth; work_nodes = stats.Bmc.cnf_clauses;
         perf = empty_perf })

let rec check_netlist ?(budget = default_budget) ?constraint_signal ?cancel
    ~strategy nl ~ok_signal =
  match strategy with
  | Portfolio p ->
    (* Sequential portfolio execution: the jobs<=1 degradation of racing.
       Members run in order until one is conclusive; the combined outcome
       attributes exactly that prefix, which is the same prefix a race
       settles on, so verdicts and perf aggregates agree byte-for-byte
       with the racing scheduler. The caller's wall deadline and
       cancellation reach every member through its [cancel] hook. *)
    let deadline = Deadline.of_budget budget.wall_deadline_s in
    let deadline =
      match cancel with
      | Some c -> Deadline.with_stop deadline c
      | None -> deadline
    in
    let rec run_members acc_rev = function
      | [] -> List.rev acc_rev
      | m :: tl ->
        let o =
          check_netlist ~budget:m.m_budget ?constraint_signal
            ~cancel:(Deadline.checker deadline) ~strategy:m.m_strategy nl
            ~ok_signal
        in
        if conclusive o then List.rev (o :: acc_rev)
        else run_members (o :: acc_rev) tl
    in
    combine_portfolio (run_members [] p.p_members)
  | Bdd_forward | Bdd_backward | Bdd_combined | Pobdd | Bmc | Kind | Ic3
  | Auto ->
    check_atomic ~budget ?constraint_signal ?cancel ~strategy nl ~ok_signal

and check_atomic ~budget ?constraint_signal ?cancel ~strategy nl ~ok_signal =
  let deadline = Deadline.of_budget budget.wall_deadline_s in
  let deadline =
    match cancel with
    | Some c -> Deadline.with_stop deadline c
    | None -> deadline
  in
  let acc = fresh_acc () in
  let bdd check engine =
    run_bdd ~acc ~node_limit:budget.bdd_node_limit ~deadline ~engine nl
      ok_signal constraint_signal check
  in
  let pobdd () =
    run_bdd ~acc ~node_limit:budget.pobdd_node_limit ~deadline
      ~engine:"pobdd" nl ok_signal constraint_signal
      (fun ?constrain ~deadline sym ok ->
        Umc.check_forward_partitioned ?constrain ~deadline sym ~ok
          ~num_split_vars:budget.pobdd_split_vars)
  in
  let resource_out msg engine =
    { verdict = Resource_out msg; engine_used = engine; time_s = 0.0;
      iterations = 0; work_nodes = 0; perf = empty_perf }
  in
  let outcome =
    match strategy with
    | Bdd_forward -> (
      match
        bdd (fun ?constrain ~deadline sym ok ->
            Reach.check_forward ?constrain ~deadline sym ~ok)
          "bdd-forward"
      with
      | Ok o -> o
      | Error msg -> resource_out msg "bdd-forward")
    | Bdd_backward -> (
      match
        bdd (fun ?constrain ~deadline sym ok ->
            Reach.check_backward ?constrain ~deadline sym ~ok)
          "bdd-backward"
      with
      | Ok o -> o
      | Error msg -> resource_out msg "bdd-backward")
    | Bdd_combined -> (
      match
        bdd (fun ?constrain ~deadline sym ok ->
            Reach.check_combined ?constrain ~deadline sym ~ok)
          "bdd-combined"
      with
      | Ok o -> o
      | Error msg -> resource_out msg "bdd-combined")
    | Pobdd -> (
      match pobdd () with
      | Ok o -> o
      | Error msg -> resource_out msg "pobdd")
    | Bmc -> run_bmc ~acc ~budget ~deadline nl ok_signal constraint_signal
    | Kind -> (
      acc.a_attempts_rev <- "k-induction" :: acc.a_attempts_rev;
      let acc_kind (s : Induction.stats) =
        acc.a_final_k <- max acc.a_final_k s.Induction.k;
        acc.a_inc_reuse <- acc.a_inc_reuse + s.Induction.reused;
        acc_sat acc
          { Solver.decisions = s.Induction.decisions;
            conflicts = s.Induction.conflicts;
            propagations = s.Induction.propagations;
            restarts = s.Induction.restarts; learned = 0 }
      in
      let f () =
        Induction.check ~incremental:budget.incremental
          ~max_conflicts:budget.sat_max_conflicts
          ~max_k:budget.induction_max_k ~deadline ?constraint_signal nl
          ~ok_signal
      in
      match Telemetry.span ~cat:"engine" "k-induction" (fun () -> timed f) with
      | exception Deadline.Expired -> resource_out deadline_msg "k-induction"
      | r, time_s ->
        (match r with
         | Induction.Proved_by_induction s ->
           acc_kind s;
           { verdict = Proved; engine_used = "k-induction"; time_s;
             iterations = s.Induction.k; work_nodes = s.Induction.cnf_clauses;
             perf = empty_perf }
         | Induction.Violation (trace, s) ->
           acc_kind s;
           { verdict = Failed trace; engine_used = "k-induction"; time_s;
             iterations = s.Induction.k; work_nodes = s.Induction.cnf_clauses;
             perf = empty_perf }
         | Induction.Inconclusive s ->
           acc_kind s;
           let msg =
             if Deadline.expired deadline then interrupt_cause deadline
             else kind_inconclusive_msg
           in
           { verdict = Resource_out msg; engine_used = "k-induction"; time_s;
             iterations = s.Induction.k; work_nodes = s.Induction.cnf_clauses;
             perf = empty_perf }))
    | Ic3 -> (
      acc.a_attempts_rev <- "ic3" :: acc.a_attempts_rev;
      let acc_ic3 (s : Ic3.stats) =
        acc.a_ic3_frames <- max acc.a_ic3_frames s.Ic3.frames;
        acc.a_inc_reuse <- acc.a_inc_reuse + s.Ic3.reused;
        acc_sat acc
          { Solver.decisions = s.Ic3.decisions; conflicts = s.Ic3.conflicts;
            propagations = s.Ic3.propagations; restarts = s.Ic3.restarts;
            learned = 0 }
      in
      let f () =
        Ic3.check ~incremental:budget.incremental
          ~max_conflicts:budget.sat_max_conflicts
          ~max_frames:budget.ic3_max_frames ~deadline ?constraint_signal nl
          ~ok_signal
      in
      match Telemetry.span ~cat:"engine" "ic3" (fun () -> timed f) with
      | exception Deadline.Expired ->
        resource_out (interrupt_cause deadline) "ic3"
      | r, time_s ->
        (match r with
         | Ic3.Proved s ->
           acc_ic3 s;
           { verdict = Proved; engine_used = "ic3"; time_s;
             iterations = s.Ic3.frames; work_nodes = s.Ic3.clauses;
             perf = empty_perf }
         | Ic3.Violation (trace, s) ->
           acc_ic3 s;
           { verdict = Failed trace; engine_used = "ic3"; time_s;
             iterations = s.Ic3.frames; work_nodes = s.Ic3.clauses;
             perf = empty_perf }
         | Ic3.Inconclusive (why, s) ->
           acc_ic3 s;
           let msg =
             if Deadline.expired deadline then interrupt_cause deadline
             else
               match why with
               | Ic3.Frames_exhausted -> ic3_frames_msg
               | Ic3.Solver_limit -> sat_conflicts_msg
           in
           { verdict = Resource_out msg; engine_used = "ic3"; time_s;
             iterations = s.Ic3.frames; work_nodes = s.Ic3.clauses;
             perf = empty_perf }))
    | Auto -> (
      match
        bdd (fun ?constrain ~deadline sym ok ->
            Reach.check_combined ?constrain ~deadline sym ~ok)
          "bdd-combined"
      with
      | Ok o -> o
      | Error _ when Deadline.expired deadline ->
        (* out of wall-clock: escalating would only burn the worker longer *)
        resource_out (interrupt_cause deadline) "bdd-combined"
      | Error _ -> (
        (* escalate: partitioned engine with a larger budget *)
        match pobdd () with
        | Ok o -> o
        | Error _ when Deadline.expired deadline ->
          resource_out (interrupt_cause deadline) "pobdd"
        | Error _ ->
          run_bmc ~acc ~budget ~deadline nl ok_signal constraint_signal))
    | Portfolio _ ->
      (* dispatched by check_netlist before reaching the atomic runner *)
      assert false
  in
  report_counters acc;
  { outcome with perf = perf_of_acc acc }

(* Inline combinationally-driven signals into the property's boolean layer
   and simplify, so that e.g. [HE[3]] where HE is a concatenation of checker
   groups reduces to that one group's logic. This sharpens the subsequent
   cone-of-influence reduction from whole signals to the bits the property
   actually reads. *)
let make_inliner mdl =
  let driver = Hashtbl.create 97 in
  List.iter
    (fun (a : Rtl.Mdl.assign) -> Hashtbl.replace driver a.Rtl.Mdl.lhs a.Rtl.Mdl.rhs)
    mdl.Rtl.Mdl.assigns;
  let expanded = Hashtbl.create 97 in
  let rec expand_var visiting x =
    match Hashtbl.find_opt expanded x with
    | Some e -> Some e
    | None ->
      if List.mem x visiting then None
      else
        Option.map
          (fun rhs ->
            let e = expand (x :: visiting) rhs in
            Hashtbl.replace expanded x e;
            e)
          (Hashtbl.find_opt driver x)
  and expand visiting e = Rtl.Expr.subst (expand_var visiting) e in
  let env name = Rtl.Mdl.signal_width mdl name in
  fun fl ->
    Psl.Ast.map_bool
      (fun e -> Rtl.Expr.simplify ~env (expand [] e))
      fl

let inline_bools mdl fl = make_inliner mdl fl

(* Drop assumptions that cannot affect the assert: an assumption whose
   signals are all primary inputs outside the assert's cone of influence
   constrains behavior the property never observes, so removing it is sound
   (it only adds behaviors on independent inputs) and shrinks the model. *)
let make_pruner mdl =
  let design = Rtl.Design.of_modules [ mdl ] in
  let nl = Rtl.Elaborate.run design ~top:mdl.Rtl.Mdl.name in
  let declared = List.map fst (Rtl.Netlist.signals nl) in
  let input_names = List.map fst nl.Rtl.Netlist.inputs in
  fun ~assert_ ~assumes ->
    let roots =
      List.filter (fun s -> List.mem s declared) (Psl.Ast.signals assert_)
    in
    let cone = Rtl.Coi.reduce nl ~roots in
    let cone_signals = List.map fst (Rtl.Netlist.signals cone) in
    let keep a =
      let sigs = Psl.Ast.signals a in
      let inputs_only = List.for_all (fun s -> List.mem s input_names) sigs in
      (not inputs_only) || List.exists (fun s -> List.mem s cone_signals) sigs
    in
    List.filter keep assumes

let prune_assumes mdl ~assert_ ~assumes =
  make_pruner mdl ~assert_ ~assumes

(* invariant input-only assumptions ("always <boolean over inputs>") become
   engine-level input constraints instead of latched monitors: the engines
   then simply never explore constraint-violating inputs, which keeps the
   assumption bookkeeping out of the state space *)
let split_constraint_assumes mdl assumes =
  let input_names =
    List.map (fun (p : Rtl.Mdl.port) -> p.Rtl.Mdl.port_name)
      (Rtl.Mdl.inputs mdl)
  in
  let as_input_invariant = function
    | Psl.Ast.Always (Psl.Ast.Bool e) | Psl.Ast.Bool e ->
      if List.for_all (fun s -> List.mem s input_names) (Rtl.Expr.support e)
      then Some e
      else None
    | Psl.Ast.Not _ | Psl.Ast.And _ | Psl.Ast.Or _ | Psl.Ast.Implies _
    | Psl.Ast.Next _ | Psl.Ast.Next_n _ | Psl.Ast.Always _ | Psl.Ast.Never _
    | Psl.Ast.Until _ | Psl.Ast.Seq_implies _ | Psl.Ast.Eventually _ ->
      None
  in
  List.partition_map
    (fun a ->
      match as_input_invariant a with
      | Some e -> Either.Left e
      | None -> Either.Right a)
    assumes

(* shared preparation front half: inline, prune, lower input invariants to a
   constraint wire, weave in the safety monitor, elaborate — everything up
   to (but excluding) the cone-of-influence reduction *)
let prepare_full_netlist mdl ~assert_ ~assumes =
  let sp name f = Telemetry.span ~cat:"prepare" name f in
  let assert_, assumes =
    sp "prepare.inline" (fun () ->
        (inline_bools mdl assert_, List.map (inline_bools mdl) assumes))
  in
  let assumes =
    sp "prepare.prune" (fun () -> prune_assumes mdl ~assert_ ~assumes)
  in
  let constraints, temporal_assumes = split_constraint_assumes mdl assumes in
  let inst =
    sp "prepare.monitor" (fun () ->
        Psl.Monitor.instrument mdl ~prefix:"mon" ~assert_
          ~assumes:temporal_assumes)
  in
  let mdl', constraint_signal =
    match constraints with
    | [] -> (inst.Psl.Monitor.mdl, None)
    | es ->
      let c =
        List.fold_left (fun acc e -> Rtl.Expr.( &: ) acc e) Rtl.Expr.tru es
      in
      let name = "mon_input_constraint" in
      let m = Rtl.Mdl.add_wire inst.Psl.Monitor.mdl name 1 in
      (Rtl.Mdl.add_assign m name c, Some name)
  in
  let nl =
    sp "prepare.elaborate" (fun () ->
        let design = Rtl.Design.of_modules [ mdl' ] in
        Rtl.Elaborate.run design ~top:mdl'.Rtl.Mdl.name)
  in
  (nl, inst.Psl.Monitor.invariant_ok, constraint_signal)

let replay_model mdl ~assert_ ~assumes =
  prepare_full_netlist mdl ~assert_ ~assumes

(* Shared per-module preparation: when a module carries several properties
   (the paper's P0/P1/P2 obligations), the module-level work — the inliner's
   driver tables, the pruner's raw elaboration, the monitor weaving and the
   single full elaborate — runs once for all of them. Each property gets its
   own monitor (distinct [mon<i>] prefixes in one woven module) and its own
   cone-of-influence reduction from its own roots, so the per-property
   reduced netlist is structurally identical to what the unshared
   {!instrumented_netlist} path builds: monitors are independent cones, and
   COI from property [i]'s roots excludes every other property's monitor.
   Canonical fingerprints (name-independent) therefore agree between the
   shared and unshared paths. *)
let prepare_module mdl ~props =
  let sp name f = Telemetry.span ~cat:"prepare" name f in
  let fronts =
    sp "prepare.inline" (fun () ->
        let inline = make_inliner mdl in
        let prune = make_pruner mdl in
        List.map
          (fun (name, assert_, assumes) ->
            let assert_ = inline assert_ in
            let assumes = List.map inline assumes in
            let assumes = prune ~assert_ ~assumes in
            let constraints, temporal = split_constraint_assumes mdl assumes in
            (name, assert_, constraints, temporal))
          props)
  in
  let woven = ref mdl in
  let per_rev = ref [] in
  List.iteri
    (fun i (name, assert_, constraints, temporal) ->
      let prefix = Printf.sprintf "mon%d" i in
      let inst =
        sp "prepare.monitor" (fun () ->
            Psl.Monitor.instrument !woven ~prefix ~assert_ ~assumes:temporal)
      in
      let m', constraint_signal =
        match constraints with
        | [] -> (inst.Psl.Monitor.mdl, None)
        | es ->
          let c =
            List.fold_left (fun acc e -> Rtl.Expr.( &: ) acc e) Rtl.Expr.tru es
          in
          let cname = prefix ^ "_input_constraint" in
          let m = Rtl.Mdl.add_wire inst.Psl.Monitor.mdl cname 1 in
          (Rtl.Mdl.add_assign m cname c, Some cname)
      in
      woven := m';
      per_rev :=
        (name, prefix, inst.Psl.Monitor.invariant_ok, constraint_signal)
        :: !per_rev)
    fronts;
  let nl =
    sp "prepare.elaborate" (fun () ->
        let design = Rtl.Design.of_modules [ !woven ] in
        Rtl.Elaborate.run design ~top:(!woven).Rtl.Mdl.name)
  in
  List.rev_map
    (fun (name, prefix, ok_signal, constraint_signal) ->
      let roots =
        ok_signal
        :: (match constraint_signal with Some c -> [ c ] | None -> [])
      in
      let red = sp "prepare.coi" (fun () -> Rtl.Coi.reduce nl ~roots) in
      (* after its COI reduction the property's cone holds exactly one
         monitor, so the weaving prefix [mon<i>] can be folded back to the
         unshared path's [mon]: the result is name-identical (not merely
         structurally identical) to {!instrumented_netlist}'s, which is what
         keeps trace register names replayable against {!replay_model} *)
      let pre = prefix ^ "_" in
      let fold n =
        if String.starts_with ~prefix:pre n then
          "mon_" ^ String.sub n (String.length pre)
                     (String.length n - String.length pre)
        else n
      in
      let red = Rtl.Canon.rename fold red in
      (name, (red, fold ok_signal, Option.map fold constraint_signal)))
    !per_rev

let instrumented_netlist mdl ~assert_ ~assumes =
  let nl, ok_signal, constraint_signal =
    prepare_full_netlist mdl ~assert_ ~assumes
  in
  (* cone-of-influence reduction: only the logic feeding the property
     matters; this is what makes the divide-and-conquer partitioning of
     Figure 7 effective *)
  let roots =
    ok_signal
    :: (match constraint_signal with Some c -> [ c ] | None -> [])
  in
  let nl =
    Telemetry.span ~cat:"prepare" "prepare.coi" (fun () ->
        Rtl.Coi.reduce nl ~roots)
  in
  (nl, ok_signal, constraint_signal)

let problem_size mdl ~assert_ ~assumes =
  let nl, _, _ = instrumented_netlist mdl ~assert_ ~assumes in
  let state = Rtl.Netlist.state_bits nl in
  let inputs =
    List.fold_left (fun acc (_, w) -> acc + w) 0 nl.Rtl.Netlist.inputs
  in
  (state, inputs)

let check_property ?(budget = default_budget) ?(strategy = Auto) mdl ~assert_
    ~assumes =
  if not (Rtl.Mdl.is_leaf mdl) then
    invalid_arg
      (Printf.sprintf
         "Engine.check_property: %s is not a leaf module; the methodology \
          checks leaf modules only"
         mdl.Rtl.Mdl.name);
  let nl, ok_signal, constraint_signal =
    instrumented_netlist mdl ~assert_ ~assumes
  in
  check_netlist ~budget ?constraint_signal ~strategy nl ~ok_signal

let check_vunit ?(budget = default_budget) ?(strategy = Auto) mdl vunit =
  let assumes = List.map snd (Psl.Ast.assumes vunit) in
  List.map
    (fun (name, assert_) ->
      (name, check_property ~budget ~strategy mdl ~assert_ ~assumes))
    (Psl.Ast.asserts vunit)
