type strategy =
  | Bdd_forward
  | Bdd_backward
  | Bdd_combined
  | Pobdd
  | Bmc
  | Kind
  | Auto

let strategy_name = function
  | Bdd_forward -> "bdd-forward"
  | Bdd_backward -> "bdd-backward"
  | Bdd_combined -> "bdd-combined"
  | Pobdd -> "pobdd"
  | Bmc -> "bmc"
  | Kind -> "k-induction"
  | Auto -> "auto"

type budget = {
  bdd_node_limit : int option;
  pobdd_node_limit : int option;
  pobdd_split_vars : int;
  bmc_depth : int;
  induction_max_k : int;
  sat_max_conflicts : int;
  wall_deadline_s : float option;
}

let default_budget =
  { bdd_node_limit = Some 2_000_000; pobdd_node_limit = Some 8_000_000;
    pobdd_split_vars = 2; bmc_depth = 20; induction_max_k = 20;
    sat_max_conflicts = 2_000_000; wall_deadline_s = None }

let degrade_budget b =
  let half = Option.map (fun n -> max 1 (n / 2)) in
  { b with
    bdd_node_limit = half b.bdd_node_limit;
    pobdd_node_limit = half b.pobdd_node_limit;
    sat_max_conflicts = max 1 (b.sat_max_conflicts / 2);
    wall_deadline_s = Option.map (fun s -> s /. 2.0) b.wall_deadline_s }

type verdict =
  | Proved
  | Proved_bounded of int
  | Failed of Trace.t
  | Resource_out of string
  | Error of string

type outcome = {
  verdict : verdict;
  engine_used : string;
  time_s : float;
  iterations : int;
  work_nodes : int;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let of_reach engine (r, time_s) =
  match r with
  | Reach.Proved stats ->
    { verdict = Proved; engine_used = engine; time_s;
      iterations = stats.Reach.iterations; work_nodes = stats.Reach.bdd_nodes }
  | Reach.Failed (trace, stats) ->
    { verdict = Failed trace; engine_used = engine; time_s;
      iterations = stats.Reach.iterations; work_nodes = stats.Reach.bdd_nodes }

let deadline_msg = "deadline"

let run_bdd ~node_limit ~deadline ~engine nl ok_signal constraint_signal check
    =
  let f () =
    let sym = Sym.create ?node_limit nl in
    (* the manager-level interrupt bounds even a single runaway image
       computation; the per-iteration Deadline.check in the fixpoint loops
       bounds everything between BDD operations *)
    (match deadline with
     | None -> ()
     | Some _ ->
       Bdd.set_interrupt (Sym.man sym) (Some (Deadline.checker deadline)));
    let ok = (Sym.signal_bdd sym ok_signal).(0) in
    let constrain =
      Option.map (fun c -> (Sym.signal_bdd sym c).(0)) constraint_signal
    in
    check ?constrain ~deadline sym ok
  in
  match timed f with
  | result -> Ok (of_reach engine result)
  | exception Bdd.Node_limit -> Stdlib.Error "BDD node limit exceeded"
  | exception (Deadline.Expired | Bdd.Interrupted) -> Stdlib.Error deadline_msg

let run_bmc ~budget ~deadline nl ok_signal constraint_signal =
  let f () =
    Bmc.check ~max_conflicts:budget.sat_max_conflicts ~deadline
      ?constraint_signal nl ~ok_signal ~depth:budget.bmc_depth
  in
  match timed f with
  | exception Deadline.Expired ->
    { verdict = Resource_out deadline_msg; engine_used = "bmc"; time_s = 0.0;
      iterations = 0; work_nodes = 0 }
  | r, time_s ->
    (match r with
     | Bmc.No_violation_upto (d, stats) ->
       { verdict = Proved_bounded d; engine_used = "bmc"; time_s;
         iterations = d; work_nodes = stats.Bmc.cnf_clauses }
     | Bmc.Violation (trace, stats) ->
       { verdict = Failed trace; engine_used = "bmc"; time_s;
         iterations = stats.Bmc.depth; work_nodes = stats.Bmc.cnf_clauses }
     | Bmc.Inconclusive stats ->
       let msg =
         if Deadline.expired deadline then deadline_msg
         else "SAT conflict budget exceeded"
       in
       { verdict = Resource_out msg; engine_used = "bmc"; time_s;
         iterations = stats.Bmc.depth; work_nodes = stats.Bmc.cnf_clauses })

let check_netlist ?(budget = default_budget) ?constraint_signal ~strategy nl
    ~ok_signal =
  let deadline = Deadline.of_budget budget.wall_deadline_s in
  let bdd check engine =
    run_bdd ~node_limit:budget.bdd_node_limit ~deadline ~engine nl ok_signal
      constraint_signal check
  in
  let pobdd () =
    run_bdd ~node_limit:budget.pobdd_node_limit ~deadline ~engine:"pobdd" nl
      ok_signal constraint_signal (fun ?constrain ~deadline sym ok ->
        Umc.check_forward_partitioned ?constrain ~deadline sym ~ok
          ~num_split_vars:budget.pobdd_split_vars)
  in
  let resource_out msg engine =
    { verdict = Resource_out msg; engine_used = engine; time_s = 0.0;
      iterations = 0; work_nodes = 0 }
  in
  match strategy with
  | Bdd_forward -> (
    match
      bdd (fun ?constrain ~deadline sym ok ->
          Reach.check_forward ?constrain ~deadline sym ~ok)
        "bdd-forward"
    with
    | Ok o -> o
    | Error msg -> resource_out msg "bdd-forward")
  | Bdd_backward -> (
    match
      bdd (fun ?constrain ~deadline sym ok ->
          Reach.check_backward ?constrain ~deadline sym ~ok)
        "bdd-backward"
    with
    | Ok o -> o
    | Error msg -> resource_out msg "bdd-backward")
  | Bdd_combined -> (
    match
      bdd (fun ?constrain ~deadline sym ok ->
          Reach.check_combined ?constrain ~deadline sym ~ok)
        "bdd-combined"
    with
    | Ok o -> o
    | Error msg -> resource_out msg "bdd-combined")
  | Pobdd -> (
    match pobdd () with
    | Ok o -> o
    | Error msg -> resource_out msg "pobdd")
  | Bmc -> run_bmc ~budget ~deadline nl ok_signal constraint_signal
  | Kind -> (
    let f () =
      Induction.check ~max_conflicts:budget.sat_max_conflicts
        ~max_k:budget.induction_max_k ~deadline ?constraint_signal nl
        ~ok_signal
    in
    match timed f with
    | exception Deadline.Expired -> resource_out deadline_msg "k-induction"
    | r, time_s ->
      (match r with
       | Induction.Proved_by_induction s ->
         { verdict = Proved; engine_used = "k-induction"; time_s;
           iterations = s.Induction.k; work_nodes = s.Induction.cnf_clauses }
       | Induction.Violation (trace, s) ->
         { verdict = Failed trace; engine_used = "k-induction"; time_s;
           iterations = s.Induction.k; work_nodes = s.Induction.cnf_clauses }
       | Induction.Inconclusive s ->
         let msg =
           if Deadline.expired deadline then deadline_msg
           else "induction inconclusive"
         in
         { verdict = Resource_out msg; engine_used = "k-induction"; time_s;
           iterations = s.Induction.k; work_nodes = s.Induction.cnf_clauses }))
  | Auto -> (
    match
      bdd (fun ?constrain ~deadline sym ok ->
          Reach.check_combined ?constrain ~deadline sym ~ok)
        "bdd-combined"
    with
    | Ok o -> o
    | Error _ when Deadline.expired deadline ->
      (* out of wall-clock: escalating would only burn the worker longer *)
      resource_out deadline_msg "bdd-combined"
    | Error _ -> (
      (* escalate: partitioned engine with a larger budget *)
      match pobdd () with
      | Ok o -> o
      | Error _ when Deadline.expired deadline ->
        resource_out deadline_msg "pobdd"
      | Error _ -> run_bmc ~budget ~deadline nl ok_signal constraint_signal))

(* Inline combinationally-driven signals into the property's boolean layer
   and simplify, so that e.g. [HE[3]] where HE is a concatenation of checker
   groups reduces to that one group's logic. This sharpens the subsequent
   cone-of-influence reduction from whole signals to the bits the property
   actually reads. *)
let inline_bools mdl fl =
  let driver = Hashtbl.create 97 in
  List.iter
    (fun (a : Rtl.Mdl.assign) -> Hashtbl.replace driver a.Rtl.Mdl.lhs a.Rtl.Mdl.rhs)
    mdl.Rtl.Mdl.assigns;
  let expanded = Hashtbl.create 97 in
  let rec expand_var visiting x =
    match Hashtbl.find_opt expanded x with
    | Some e -> Some e
    | None ->
      if List.mem x visiting then None
      else
        Option.map
          (fun rhs ->
            let e = expand (x :: visiting) rhs in
            Hashtbl.replace expanded x e;
            e)
          (Hashtbl.find_opt driver x)
  and expand visiting e = Rtl.Expr.subst (expand_var visiting) e in
  let env name = Rtl.Mdl.signal_width mdl name in
  Psl.Ast.map_bool
    (fun e -> Rtl.Expr.simplify ~env (expand [] e))
    fl

(* Drop assumptions that cannot affect the assert: an assumption whose
   signals are all primary inputs outside the assert's cone of influence
   constrains behavior the property never observes, so removing it is sound
   (it only adds behaviors on independent inputs) and shrinks the model. *)
let prune_assumes mdl ~assert_ ~assumes =
  let design = Rtl.Design.of_modules [ mdl ] in
  let nl = Rtl.Elaborate.run design ~top:mdl.Rtl.Mdl.name in
  let declared = List.map fst (Rtl.Netlist.signals nl) in
  let roots =
    List.filter (fun s -> List.mem s declared) (Psl.Ast.signals assert_)
  in
  let cone = Rtl.Coi.reduce nl ~roots in
  let cone_signals = List.map fst (Rtl.Netlist.signals cone) in
  let input_names = List.map fst nl.Rtl.Netlist.inputs in
  let keep a =
    let sigs = Psl.Ast.signals a in
    let inputs_only = List.for_all (fun s -> List.mem s input_names) sigs in
    (not inputs_only) || List.exists (fun s -> List.mem s cone_signals) sigs
  in
  List.filter keep assumes

(* invariant input-only assumptions ("always <boolean over inputs>") become
   engine-level input constraints instead of latched monitors: the engines
   then simply never explore constraint-violating inputs, which keeps the
   assumption bookkeeping out of the state space *)
let split_constraint_assumes mdl assumes =
  let input_names =
    List.map (fun (p : Rtl.Mdl.port) -> p.Rtl.Mdl.port_name)
      (Rtl.Mdl.inputs mdl)
  in
  let as_input_invariant = function
    | Psl.Ast.Always (Psl.Ast.Bool e) | Psl.Ast.Bool e ->
      if List.for_all (fun s -> List.mem s input_names) (Rtl.Expr.support e)
      then Some e
      else None
    | Psl.Ast.Not _ | Psl.Ast.And _ | Psl.Ast.Or _ | Psl.Ast.Implies _
    | Psl.Ast.Next _ | Psl.Ast.Next_n _ | Psl.Ast.Always _ | Psl.Ast.Never _
    | Psl.Ast.Until _ | Psl.Ast.Seq_implies _ | Psl.Ast.Eventually _ ->
      None
  in
  List.partition_map
    (fun a ->
      match as_input_invariant a with
      | Some e -> Either.Left e
      | None -> Either.Right a)
    assumes

let instrumented_netlist mdl ~assert_ ~assumes =
  let assert_ = inline_bools mdl assert_ in
  let assumes = List.map (inline_bools mdl) assumes in
  let assumes = prune_assumes mdl ~assert_ ~assumes in
  let constraints, temporal_assumes = split_constraint_assumes mdl assumes in
  let inst =
    Psl.Monitor.instrument mdl ~prefix:"mon" ~assert_
      ~assumes:temporal_assumes
  in
  let mdl', constraint_signal =
    match constraints with
    | [] -> (inst.Psl.Monitor.mdl, None)
    | es ->
      let c =
        List.fold_left (fun acc e -> Rtl.Expr.( &: ) acc e) Rtl.Expr.tru es
      in
      let name = "mon_input_constraint" in
      let m = Rtl.Mdl.add_wire inst.Psl.Monitor.mdl name 1 in
      (Rtl.Mdl.add_assign m name c, Some name)
  in
  let design = Rtl.Design.of_modules [ mdl' ] in
  let nl = Rtl.Elaborate.run design ~top:mdl'.Rtl.Mdl.name in
  (* cone-of-influence reduction: only the logic feeding the property
     matters; this is what makes the divide-and-conquer partitioning of
     Figure 7 effective *)
  let roots =
    inst.Psl.Monitor.invariant_ok
    :: (match constraint_signal with Some c -> [ c ] | None -> [])
  in
  let nl = Rtl.Coi.reduce nl ~roots in
  (nl, inst.Psl.Monitor.invariant_ok, constraint_signal)

let problem_size mdl ~assert_ ~assumes =
  let nl, _, _ = instrumented_netlist mdl ~assert_ ~assumes in
  let state = Rtl.Netlist.state_bits nl in
  let inputs =
    List.fold_left (fun acc (_, w) -> acc + w) 0 nl.Rtl.Netlist.inputs
  in
  (state, inputs)

let check_property ?(budget = default_budget) ?(strategy = Auto) mdl ~assert_
    ~assumes =
  if not (Rtl.Mdl.is_leaf mdl) then
    invalid_arg
      (Printf.sprintf
         "Engine.check_property: %s is not a leaf module; the methodology \
          checks leaf modules only"
         mdl.Rtl.Mdl.name);
  let nl, ok_signal, constraint_signal =
    instrumented_netlist mdl ~assert_ ~assumes
  in
  check_netlist ~budget ?constraint_signal ~strategy nl ~ok_signal

let check_vunit ?(budget = default_budget) ?(strategy = Auto) mdl vunit =
  let assumes = List.map snd (Psl.Ast.assumes vunit) in
  List.map
    (fun (name, assert_) ->
      (name, check_property ~budget ~strategy mdl ~assert_ ~assumes))
    (Psl.Ast.asserts vunit)
