(** Counterexample traces. *)

type cycle = {
  step : int;
  inputs : (string * Bitvec.t) list;
  state : (string * Bitvec.t) list;
}

type t = cycle list
(** Chronological; the last cycle exhibits the violation. *)

val length : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val replay_stimulus : t -> (string * Bitvec.t) list list
(** Per-cycle input vectors, ready to feed to the simulator to confirm the
    counterexample. *)

val vcd_id : int -> string
(** Bijective base-94 VCD identifier code of a signal index (printable
    ASCII [!]..[~]; two characters from index 94, three from 8930, …).
    Injective for every index, so dumps with more than 94 signals never
    alias identifiers. Raises [Invalid_argument] on a negative index. *)

val to_vcd : ?replay:(string * Bitvec.t) list list -> t -> string
(** Render the counterexample as a VCD waveform, one timestep per cycle.
    Without [replay], only the trace's inputs and state are dumped. With
    [replay] — one snapshot of replayed signal values per cycle, as produced
    by simulating the counterexample — the dump also carries every replayed
    output and internal signal (e.g. the [HE] report bus and the monitor's
    fail net), so the waveform shows the violation itself, not just the
    stimulus that causes it. Replayed values for signals the trace already
    carries are ignored in favor of the trace's own. *)

val write_vcd : ?replay:(string * Bitvec.t) list list -> t -> string -> unit
