type stats = { iterations : int; bdd_nodes : int; peak_set_size : int }

type result = Proved of stats | Failed of Trace.t * stats

(* ---- transition relation, partitioned per state bit ---- *)

let make_parts sym =
  let man = Sym.man sym in
  let n = Sym.num_state_bits sym in
  Array.init n (fun i ->
      let t_i = Bdd.xnor man (Bdd.var man (Sym.nxt_var sym i)) (Sym.next_fn sym i) in
      (t_i, Bdd.support man t_i))

let image_with_parts ?constrain sym parts s =
  let s =
    match constrain with
    | Some c -> Bdd.and_ (Sym.man sym) s c
    | None -> s
  in
  let man = Sym.man sym in
  let nvars = Bdd.nvars man in
  let quantifiable = Array.make nvars false in
  List.iter (fun v -> quantifiable.(v) <- true) (Sym.cur_vars sym);
  List.iter (fun v -> quantifiable.(v) <- true) (Sym.inp_vars sym);
  let last_use = Array.make nvars (-1) in
  Array.iteri
    (fun i (_, support) ->
      List.iter (fun v -> if quantifiable.(v) then last_use.(v) <- i) support)
    parts;
  (* variables only in S can be quantified immediately *)
  let upfront =
    List.filter (fun v -> quantifiable.(v) && last_use.(v) < 0)
      (Bdd.support man s)
  in
  let acc = ref (Bdd.exists man upfront s) in
  Array.iteri
    (fun i (t_i, support) ->
      let q =
        List.filter (fun v -> quantifiable.(v) && last_use.(v) = i) support
      in
      acc := Bdd.and_exists man q !acc t_i)
    parts;
  Sym.nxt_to_cur sym !acc

let image ?constrain sym s = image_with_parts ?constrain sym (make_parts sym) s

let pre_image ?constrain sym b =
  let man = Sym.man sym in
  let b' = Sym.subst_next sym b in
  let b' =
    match constrain with Some c -> Bdd.and_ man b' c | None -> b'
  in
  Bdd.exists man (Sym.inp_vars sym) b'

let bad_states ?constrain sym ~ok =
  let man = Sym.man sym in
  let nok = Bdd.not_ man ok in
  let nok =
    match constrain with Some c -> Bdd.and_ man nok c | None -> nok
  in
  Bdd.exists man (Sym.inp_vars sym) nok

(* ---- assignment plumbing for counterexample extraction ---- *)

let lookup assignment v =
  match List.assoc_opt v assignment with Some b -> b | None -> false

(* total current-state bit values from a partial BDD assignment *)
let state_bits_of sym assignment =
  Array.init (Sym.num_state_bits sym) (fun i ->
      lookup assignment (Sym.cur_var sym i))

let input_assignment_of sym assignment =
  List.map (fun v -> (v, lookup assignment v)) (Sym.inp_vars sym)

let cube_of_state sym bits =
  let man = Sym.man sym in
  Bdd.cube man
    (List.init (Array.length bits) (fun i -> (Sym.cur_var sym i, bits.(i))))

let assignment_of_state sym bits =
  List.init (Array.length bits) (fun i -> (Sym.cur_var sym i, bits.(i)))

let eval_under sym state_bits input_assignment b =
  let man = Sym.man sym in
  Bdd.eval man
    (fun v ->
      match Sym.classify_var sym v with
      | `Cur i -> state_bits.(i)
      | `Nxt _ | `Inp _ -> lookup input_assignment v)
    b

let next_state sym state_bits input_assignment =
  Array.init (Sym.num_state_bits sym) (fun i ->
      eval_under sym state_bits input_assignment (Sym.next_fn sym i))

let cycle_of sym ~step state_bits input_assignment =
  { Trace.step;
    inputs = Sym.input_values_of_assignment sym input_assignment;
    state = Sym.state_values_of_assignment sym (assignment_of_state sym state_bits) }

(* inputs that make ok fail in this very state *)
let failing_inputs ?constrain sym ~ok state_bits =
  let man = Sym.man sym in
  let here = Bdd.and_ man (cube_of_state sym state_bits) (Bdd.not_ man ok) in
  let here =
    match constrain with Some c -> Bdd.and_ man here c | None -> here
  in
  input_assignment_of sym (Bdd.any_sat man here)

(* ---- forward traversal ---- *)

(* forward rings: rings.(j) = states first reached at step j (cur vars) *)
let forward_rings_to_violation ?constrain ?(deadline = Deadline.none) sym ~bad =
  let man = Sym.man sym in
  let parts = make_parts sym in
  let rec go rings reached frontier iter peak =
    Deadline.check deadline;
    Beacon.report ~engine:"bdd-forward" ~step:iter ~work:(Bdd.node_count man);
    let peak = max peak (Bdd.size man reached) in
    if not (Bdd.is_zero (Bdd.and_ man frontier bad)) then
      `Violation (List.rev (frontier :: rings), iter, peak)
    else
      let img = image_with_parts ?constrain sym parts frontier in
      let fresh = Bdd.and_ man img (Bdd.not_ man reached) in
      if Bdd.is_zero fresh then `Proved (iter, peak)
      else
        go (frontier :: rings) (Bdd.or_ man reached fresh) fresh (iter + 1) peak
  in
  go [] (Sym.init sym) (Sym.init sym) 0 0

(* walk back from a state in the last ring to the initial state *)
let backtrack_forward ?constrain sym rings final_bits =
  let man = Sym.man sym in
  let rings = Array.of_list rings in
  let k = Array.length rings - 1 in
  (* result: states.(j), and inputs.(j) driving state j to state j+1 *)
  let states = Array.make (k + 1) final_bits in
  let inputs = Array.make (max k 1) [] in
  let rec back j target_bits =
    if j >= 0 then begin
      (* find s in ring j and input x with next(s, x) = target *)
      let target_eq =
        let acc = ref (Bdd.one man) in
        Array.iteri
          (fun i b ->
            let f = Sym.next_fn sym i in
            let lit = if b then f else Bdd.not_ man f in
            acc := Bdd.and_ man !acc lit)
          target_bits;
        !acc
      in
      let cand = Bdd.and_ man rings.(j) target_eq in
      let cand =
        match constrain with Some c -> Bdd.and_ man cand c | None -> cand
      in
      let assignment = Bdd.any_sat man cand in
      let s = state_bits_of sym assignment in
      let x = input_assignment_of sym assignment in
      states.(j) <- s;
      inputs.(j) <- x;
      back (j - 1) s
    end
  in
  back (k - 1) final_bits;
  (states, inputs, k)

let trace_of_forward ?constrain sym ~ok rings =
  let man = Sym.man sym in
  let bad = bad_states ?constrain sym ~ok in
  let last_ring = List.nth rings (List.length rings - 1) in
  let final_assignment = Bdd.any_sat man (Bdd.and_ man last_ring bad) in
  let final_bits = state_bits_of sym final_assignment in
  let states, inputs, k = backtrack_forward ?constrain sym rings final_bits in
  let cycles =
    List.init (k + 1) (fun j ->
        let x =
          if j < k then inputs.(j)
          else failing_inputs ?constrain sym ~ok final_bits
        in
        cycle_of sym ~step:j states.(j) x)
  in
  cycles

let trace_from_rings ?constrain sym ~ok rings =
  trace_of_forward ?constrain sym ~ok rings

let check_forward ?constrain ?deadline sym ~ok =
  let man = Sym.man sym in
  let bad = bad_states ?constrain sym ~ok in
  match forward_rings_to_violation ?constrain ?deadline sym ~bad with
  | `Proved (iterations, peak) ->
    Proved { iterations; bdd_nodes = Bdd.node_count man; peak_set_size = peak }
  | `Violation (rings, iterations, peak) ->
    let trace = trace_of_forward ?constrain sym ~ok rings in
    Failed
      (trace,
       { iterations; bdd_nodes = Bdd.node_count man; peak_set_size = peak })

let reachable ?constrain sym =
  let man = Sym.man sym in
  let parts = make_parts sym in
  let rec go reached frontier =
    let img = image_with_parts ?constrain sym parts frontier in
    let fresh = Bdd.and_ man img (Bdd.not_ man reached) in
    if Bdd.is_zero fresh then reached
    else go (Bdd.or_ man reached fresh) fresh
  in
  go (Sym.init sym) (Sym.init sym)

(* ---- backward traversal ---- *)

(* backward rings: brings.(t) = states whose minimum distance to bad is t *)
let backward_rings ?constrain ?(deadline = Deadline.none) sym ~bad ~stop_when =
  let man = Sym.man sym in
  let rec go rings covered frontier iter peak =
    Deadline.check deadline;
    Beacon.report ~engine:"bdd-backward" ~step:iter ~work:(Bdd.node_count man);
    let peak = max peak (Bdd.size man covered) in
    match stop_when frontier covered with
    | Some v -> `Hit (List.rev (frontier :: rings), v, iter, peak)
    | None ->
      let pre = pre_image ?constrain sym frontier in
      let fresh = Bdd.and_ man pre (Bdd.not_ man covered) in
      if Bdd.is_zero fresh then `Fixpoint (iter, peak)
      else go (frontier :: rings) (Bdd.or_ man covered fresh) fresh (iter + 1) peak
  in
  go [] bad bad 0 0

(* forward replay from a state known to be t steps from bad *)
let forward_walk_to_bad ?constrain sym ~ok rings_array start_bits
    start_ring_index ~first_step =
  let man = Sym.man sym in
  let cycles = ref [] in
  let rec walk bits t step =
    if t = 0 then
      cycles :=
        cycle_of sym ~step bits (failing_inputs ?constrain sym ~ok bits)
        :: !cycles
    else begin
      (* choose input x such that next(bits, x) lands in ring t-1 *)
      let target = rings_array.(t - 1) in
      let target_pre = Sym.subst_next sym target in
      let cand = Bdd.and_ man (cube_of_state sym bits) target_pre in
      let cand =
        match constrain with Some c -> Bdd.and_ man cand c | None -> cand
      in
      let assignment = Bdd.any_sat man cand in
      let x = input_assignment_of sym assignment in
      cycles := cycle_of sym ~step bits x :: !cycles;
      walk (next_state sym bits x) (t - 1) (step + 1)
    end
  in
  walk start_bits start_ring_index first_step;
  List.rev !cycles

let check_backward ?constrain ?deadline sym ~ok =
  let man = Sym.man sym in
  let bad = bad_states ?constrain sym ~ok in
  let init = Sym.init sym in
  let stop_when frontier _covered =
    let hit = Bdd.and_ man frontier init in
    if Bdd.is_zero hit then None else Some hit
  in
  match backward_rings ?constrain ?deadline sym ~bad ~stop_when with
  | `Fixpoint (iterations, peak) ->
    Proved { iterations; bdd_nodes = Bdd.node_count man; peak_set_size = peak }
  | `Hit (rings, hit, iterations, peak) ->
    let rings_array = Array.of_list rings in
    let t = Array.length rings_array - 1 in
    let start_bits = state_bits_of sym (Bdd.any_sat man hit) in
    let trace =
      forward_walk_to_bad ?constrain sym ~ok rings_array start_bits t
        ~first_step:0
    in
    Failed
      (trace,
       { iterations; bdd_nodes = Bdd.node_count man; peak_set_size = peak })

(* ---- combined forward/backward traversal ---- *)

let check_combined ?constrain ?(deadline = Deadline.none) sym ~ok =
  let man = Sym.man sym in
  let parts = make_parts sym in
  let bad = bad_states ?constrain sym ~ok in
  let init = Sym.init sym in
  let rec go f_rings f_reached f_frontier b_rings b_covered b_frontier iter peak =
    Deadline.check deadline;
    Beacon.report ~engine:"bdd-combined" ~step:iter ~work:(Bdd.node_count man);
    let peak =
      max peak (max (Bdd.size man f_reached) (Bdd.size man b_covered))
    in
    (* meet check: some forward-explored state can reach bad *)
    if not (Bdd.is_zero (Bdd.and_ man f_frontier b_covered)) then
      `Meet (List.rev (f_frontier :: f_rings), List.rev b_rings @ [ b_frontier ], iter, peak)
    else begin
      let f_img = image_with_parts ?constrain sym parts f_frontier in
      let f_fresh = Bdd.and_ man f_img (Bdd.not_ man f_reached) in
      let b_pre = pre_image ?constrain sym b_frontier in
      let b_fresh = Bdd.and_ man b_pre (Bdd.not_ man b_covered) in
      if Bdd.is_zero f_fresh then `ProvedF (iter, peak)
      else if Bdd.is_zero b_fresh then `ProvedB (iter, peak)
      else
        go (f_frontier :: f_rings)
          (Bdd.or_ man f_reached f_fresh)
          f_fresh
          (b_frontier :: b_rings)
          (Bdd.or_ man b_covered b_fresh)
          b_fresh (iter + 1) peak
    end
  in
  (* the meet check needs b_covered to include ring 0 from the start *)
  match go [] init init [] bad bad 0 0 with
  | `ProvedF (iterations, peak) | `ProvedB (iterations, peak) ->
    Proved { iterations; bdd_nodes = Bdd.node_count man; peak_set_size = peak }
  | `Meet (f_rings, b_rings, iterations, peak) ->
    (* some state s* in the last forward ring lies in some backward ring t:
       prefix = forward backtrack to init, suffix = walk to bad *)
    let b_array = Array.of_list b_rings in
    let last_f = List.nth f_rings (List.length f_rings - 1) in
    (* find the smallest backward ring intersecting the forward frontier *)
    let rec find_t t =
      if t >= Array.length b_array then assert false
      else
        let meet = Bdd.and_ man last_f b_array.(t) in
        if Bdd.is_zero meet then find_t (t + 1) else (t, meet)
    in
    let t, meet = find_t 0 in
    let s_star = state_bits_of sym (Bdd.any_sat man meet) in
    let prefix_states, prefix_inputs, k =
      backtrack_forward ?constrain sym f_rings s_star
    in
    let prefix =
      List.init k (fun j -> cycle_of sym ~step:j prefix_states.(j) prefix_inputs.(j))
    in
    let suffix =
      forward_walk_to_bad ?constrain sym ~ok b_array s_star t ~first_step:k
    in
    let stats =
      { iterations; bdd_nodes = Bdd.node_count man; peak_set_size = peak }
    in
    Failed (prefix @ suffix, stats)
