module B = Rtl.Bitblast
module X = Rtl.Bexpr

type stats = {
  depth : int;
  cnf_vars : int;
  cnf_clauses : int;
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  reused : int;  (* solves answered by a warm (already-populated) solver *)
}

type result =
  | No_violation_upto of int * stats
  | Violation of Trace.t * stats
  | Inconclusive of stats

(* An incremental unrolling context: one live Tseitin encoder streaming into
   one live CDCL solver, plus the symbolic state needed to extend the
   unrolling by one more frame. Frame [d]'s bad literal is asserted as an
   assumption (never a clause), so depth d+1 simply encodes one more frame
   and re-solves — everything the solver learnt at depth d is kept. The
   Tseitin gate encoding is biconditional, so assuming the frame-d bad
   literal is exactly "the property fails at frame d"; with frames < d
   already proven unreachable-bad, this query is equivalent to the
   monolithic "fails anywhere in 0..d" disjunction, and no activation
   clauses need retiring.

   The symbolic state of frame k is an array of single leaves: reset
   constants at frame 0, and for k > 0 one fresh Bexpr variable per state
   bit, tied to its transition function by biconditional clauses when frame
   k-1 is encoded. Carrying leaves (rather than the substituted transition
   trees) keeps each frame's encoding work proportional to the cone size —
   substituted trees grow with the depth and made unrolling to depth d cost
   O(d^2) overall, which is exactly the work a scratch re-encode does and
   so capped the incremental speedup near 1x. *)
type inc = {
  flat : B.flat;
  nstate : int;
  ninputs : int;
  bad0 : X.t;
  constraint0 : X.t option;
  next_of : X.t array;
  ctx : Tseitin.ctx;
  solver : Solver.t;
  cnf_var_of : (int, int) Hashtbl.t;
  mutable frame_states : X.t array list;
      (* per-frame symbolic state, newest first; head = frame [next_depth] *)
  mutable next_depth : int;   (* first frame not yet encoded *)
  mutable bad_lits : (int * int) list;  (* (frame, literal), newest first *)
}

let frame_input_var inc k j = inc.nstate + (k * inc.ninputs) + j

(* Bexpr variable standing for state bit [j] of frame [k] (k >= 1; frame 0
   is the reset constants). Negative ids, so they can never collide with
   the non-negative flat-netlist / frame-input ids. *)
let frame_state_var inc k j = -(1 + ((k - 1) * inc.nstate) + j)

let create_inc ?constraint_signal nl ~ok_signal =
  let flat = B.flatten nl in
  let nstate =
    List.fold_left (fun acc (_, v) -> acc + Array.length v) 0 flat.B.reg_vars
  in
  let ninputs =
    List.fold_left (fun acc (_, v) -> acc + Array.length v) 0 flat.B.input_vars
  in
  let ok_bits = flat.B.fn ok_signal in
  if Array.length ok_bits <> 1 then
    invalid_arg "Bmc.check: ok signal must be 1 bit";
  let bad0 = X.not_ ok_bits.(0) in
  let constraint0 =
    Option.map (fun c -> (flat.B.fn c).(0)) constraint_signal
  in
  (* next-state function per state bit, indexed by Bexpr variable id *)
  let next_of = Array.make (max nstate 1) X.fls in
  List.iter
    (fun (reg_name, (vars : int array)) ->
      let fns = List.assoc reg_name flat.B.next_fn in
      Array.iteri (fun i v -> next_of.(v) <- fns.(i)) vars)
    flat.B.reg_vars;
  (* frame 0 state = reset constants *)
  let state0 =
    Array.init nstate (fun v ->
        let name, bit = flat.B.bit_of_var v in
        X.of_bool (Bitvec.get (flat.B.reset_of name) bit))
  in
  let solver = Solver.create () in
  let ctx = Tseitin.create ~on_clause:(Solver.add_clause solver) () in
  { flat; nstate; ninputs; bad0; constraint0; next_of; ctx; solver;
    cnf_var_of = Hashtbl.create 997; frame_states = [ state0 ];
    next_depth = 0; bad_lits = [] }

let var_map inc v =
  match Hashtbl.find_opt inc.cnf_var_of v with
  | Some cv -> cv
  | None ->
    let cv = Tseitin.fresh_var inc.ctx in
    Hashtbl.replace inc.cnf_var_of v cv;
    cv

(* Encode frames [next_depth .. depth]: per frame, the bad literal (kept
   aside for assumption solving), the constraint as a permanent unit, and
   the next frame's state variables tied to the substituted transition
   functions. The substitution memo is shared across all of the frame's
   roots (bad, constraint, every next-state function), so logic feeding
   several of them is rewritten — and then Tseitin-encoded — once. Frame
   state enters the substitution as single leaves, so every substituted
   tree is the size of the one-step cone regardless of depth. *)
let encode_to inc depth =
  while inc.next_depth <= depth do
    let k = inc.next_depth in
    let state = List.hd inc.frame_states in
    let leaf_of v =
      if v < inc.nstate then state.(v)
      else X.var (frame_input_var inc k (v - inc.nstate))
    in
    let roots =
      (inc.bad0 :: (match inc.constraint0 with Some c -> [ c ] | None -> []))
      @ Array.to_list inc.next_of
    in
    let lit e = Tseitin.lit_of_bexpr inc.ctx (var_map inc) e in
    (match X.substitute_many leaf_of roots with
     | [] -> assert false
     | bad :: rest ->
       let bad_lit = lit bad in
       inc.bad_lits <- (k, bad_lit) :: inc.bad_lits;
       let nexts =
         match (inc.constraint0, rest) with
         | Some _, c :: nexts ->
           Tseitin.assert_lit inc.ctx (lit c);
           nexts
         | Some _, [] -> assert false
         | None, nexts -> nexts
       in
       let next_state =
         List.mapi
           (fun j fe ->
             match (fe : X.t).node with
             (* already a leaf (constant, or an alias of an existing frame
                variable): carry it directly, no binding needed *)
             | X.True | X.False | X.Var _ -> fe
             | _ ->
               let sv = X.var (frame_state_var inc (k + 1) j) in
               let sl = lit sv and fl = lit fe in
               Tseitin.add_clause inc.ctx [ -sl; fl ];
               Tseitin.add_clause inc.ctx [ sl; -fl ];
               sv)
           nexts
       in
       inc.frame_states <- Array.of_list next_state :: inc.frame_states);
    inc.next_depth <- k + 1
  done

let inc_cnf_vars inc = Tseitin.num_vars inc.ctx
let inc_cnf_clauses inc = Tseitin.num_clauses inc.ctx

(* Rebuild the violating trace from a model: frame inputs are read off
   their CNF variables, and each frame's state leaves (a constant, a frame
   state variable, or an input alias) evaluate in O(1) under the model. *)
let trace_of_model inc model ~fail_frame =
  let bexpr_var_value v =
    match Hashtbl.find_opt inc.cnf_var_of v with
    | Some cv -> cv <= Array.length model && model.(cv - 1)
    | None -> false
  in
  let frames = Array.of_list (List.rev inc.frame_states) in
  let cycles = ref [] in
  for k = 0 to fail_frame do
    let inputs =
      List.map
        (fun (name, (vars : int array)) ->
          ( name,
            Bitvec.init (Array.length vars) (fun j ->
                bexpr_var_value
                  (frame_input_var inc k (vars.(j) - inc.nstate))) ))
        inc.flat.B.input_vars
    in
    let state_values =
      List.map
        (fun (name, (vars : int array)) ->
          ( name,
            Bitvec.init (Array.length vars) (fun j ->
                X.eval bexpr_var_value frames.(k).(vars.(j))) ))
        inc.flat.B.reg_vars
    in
    cycles := { Trace.step = k; inputs; state = state_values } :: !cycles
  done;
  List.rev !cycles

let solve_depth ?(max_conflicts = max_int) ?(should_stop = fun () -> false)
    inc ~depth =
  encode_to inc depth;
  let bad = List.assoc depth inc.bad_lits in
  let result, st =
    Solver.solve_assuming_stats ~max_conflicts ~should_stop inc.solver [ bad ]
  in
  match result with
  | Solver.Unsat -> (`No_violation, st)
  | Solver.Unknown -> (`Unknown, st)
  | Solver.Sat model ->
    (`Violation (trace_of_model inc model ~fail_frame:depth), st)

let check ?(incremental = true) ?(max_conflicts = max_int)
    ?(deadline = Deadline.none) ?constraint_signal nl ~ok_signal ~depth =
  let shared =
    if incremental then Some (create_inc ?constraint_signal nl ~ok_signal)
    else None
  in
  let acc = ref Solver.zero_stats in
  let reused = ref 0 in
  let add (s : Solver.stats) =
    acc :=
      { Solver.decisions = !acc.Solver.decisions + s.Solver.decisions;
        conflicts = !acc.Solver.conflicts + s.Solver.conflicts;
        propagations = !acc.Solver.propagations + s.Solver.propagations;
        restarts = !acc.Solver.restarts + s.Solver.restarts;
        learned = !acc.Solver.learned + s.Solver.learned }
  in
  let mk_stats ~depth inc =
    { depth; cnf_vars = inc_cnf_vars inc; cnf_clauses = inc_cnf_clauses inc;
      decisions = !acc.Solver.decisions; conflicts = !acc.Solver.conflicts;
      propagations = !acc.Solver.propagations;
      restarts = !acc.Solver.restarts; reused = !reused }
  in
  let rec go d =
    if d > depth then
      (* depth < 0: nothing checked at all *)
      match shared with
      | Some inc -> No_violation_upto (depth, mk_stats ~depth inc)
      | None ->
        No_violation_upto
          ( depth,
            { depth; cnf_vars = 0; cnf_clauses = 0; decisions = 0;
              conflicts = 0; propagations = 0; restarts = 0; reused = 0 } )
    else begin
      Deadline.check deadline;
      let inc =
        match shared with
        | Some inc ->
          if d > 0 then incr reused;
          inc
        | None -> create_inc ?constraint_signal nl ~ok_signal
      in
      Beacon.report ~engine:"bmc" ~step:d ~work:(inc_cnf_vars inc);
      let outcome, st =
        solve_depth ~max_conflicts ~should_stop:(Deadline.checker deadline)
          inc ~depth:d
      in
      add st;
      match outcome with
      | `No_violation ->
        if d = depth then No_violation_upto (depth, mk_stats ~depth inc)
        else go (d + 1)
      | `Unknown -> Inconclusive (mk_stats ~depth:d inc)
      | `Violation trace -> Violation (trace, mk_stats ~depth:d inc)
    end
  in
  go 0

let find_shortest ?incremental ?max_conflicts ?deadline ?constraint_signal nl
    ~ok_signal ~max_depth =
  if max_depth < 0 then
    No_violation_upto
      ( -1,
        { depth = -1; cnf_vars = 0; cnf_clauses = 0; decisions = 0;
          conflicts = 0; propagations = 0; restarts = 0; reused = 0 } )
  else
    check ?incremental ?max_conflicts ?deadline ?constraint_signal nl
      ~ok_signal ~depth:max_depth
