module B = Rtl.Bitblast
module X = Rtl.Bexpr

type stats = {
  depth : int;
  cnf_vars : int;
  cnf_clauses : int;
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
}

type result =
  | No_violation_upto of int * stats
  | Violation of Trace.t * stats
  | Inconclusive of stats

let check ?(max_conflicts = max_int) ?(deadline = Deadline.none)
    ?constraint_signal nl ~ok_signal ~depth =
  let flat = B.flatten nl in
  let nstate =
    List.fold_left (fun acc (_, v) -> acc + Array.length v) 0 flat.B.reg_vars
  in
  let ninputs =
    List.fold_left (fun acc (_, v) -> acc + Array.length v) 0 flat.B.input_vars
  in
  let ok_bits = flat.B.fn ok_signal in
  if Array.length ok_bits <> 1 then
    invalid_arg "Bmc.check: ok signal must be 1 bit";
  let bad0 = X.not_ ok_bits.(0) in
  let constraint0 =
    Option.map (fun c -> (flat.B.fn c).(0)) constraint_signal
  in
  (* next-state function per state bit, indexed by Bexpr variable id *)
  let next_of = Array.make nstate X.fls in
  List.iter
    (fun (reg_name, (vars : int array)) ->
      let fns = List.assoc reg_name flat.B.next_fn in
      Array.iteri (fun i v -> next_of.(v) <- fns.(i)) vars)
    flat.B.reg_vars;
  (* frame-k input variable ids: fresh, disjoint across frames *)
  let frame_input_var k j = nstate + (k * ninputs) + j in
  let subst_frame k state =
    X.substitute (fun v ->
        if v < nstate then state.(v)
        else X.var (frame_input_var k (v - nstate)))
  in
  (* frame 0 state = reset constants *)
  let state0 =
    Array.init nstate (fun v ->
        let name, bit = flat.B.bit_of_var v in
        X.of_bool (Bitvec.get (flat.B.reset_of name) bit))
  in
  (* unroll *)
  let bads = ref [] in
  let constraints = ref [] in
  let state = ref state0 in
  for k = 0 to depth do
    Deadline.check deadline;
    let s = subst_frame k !state in
    bads := (k, s bad0) :: !bads;
    (match constraint0 with
     | Some c -> constraints := s c :: !constraints
     | None -> ());
    if k < depth then
      state := Array.map s next_of
  done;
  let bads = List.rev !bads in
  (* encode *)
  let ctx = Tseitin.create () in
  let cnf_var_of = Hashtbl.create 997 in
  let var_map v =
    match Hashtbl.find_opt cnf_var_of v with
    | Some cv -> cv
    | None ->
      let cv = Tseitin.fresh_var ctx in
      Hashtbl.replace cnf_var_of v cv;
      cv
  in
  let bad_lits =
    List.map (fun (k, b) -> (k, Tseitin.lit_of_bexpr ctx var_map b)) bads
  in
  Tseitin.add_clause ctx (List.map snd bad_lits);
  List.iter
    (fun c -> Tseitin.assert_lit ctx (Tseitin.lit_of_bexpr ctx var_map c))
    !constraints;
  let cnf = Tseitin.to_cnf ctx in
  Beacon.report ~engine:"bmc" ~step:depth ~work:cnf.Cnf.nvars;
  let result, sat_stats =
    Solver.solve_stats ~max_conflicts
      ~should_stop:(Deadline.checker deadline) cnf
  in
  let mk_stats () =
    { depth; cnf_vars = cnf.Cnf.nvars; cnf_clauses = Cnf.num_clauses cnf;
      decisions = sat_stats.Solver.decisions;
      conflicts = sat_stats.Solver.conflicts;
      propagations = sat_stats.Solver.propagations;
      restarts = sat_stats.Solver.restarts }
  in
  match result with
  | Solver.Unsat -> No_violation_upto (depth, mk_stats ())
  | Solver.Unknown -> Inconclusive (mk_stats ())
  | Solver.Sat model ->
    let stats = mk_stats () in
    (* recover the violated frame: smallest k whose bad literal is true *)
    let lit_true l = if l > 0 then model.(l - 1) else not model.(-l - 1) in
    let fail_frame =
      match List.find_opt (fun (_, l) -> lit_true l) bad_lits with
      | Some (k, _) -> k
      | None -> depth
    in
    (* assignment of the frame-indexed Bexpr variables from the model;
       variables never encoded default to false *)
    let bexpr_var_value v =
      match Hashtbl.find_opt cnf_var_of v with
      | Some cv -> model.(cv - 1)
      | None -> false
    in
    (* replay: state bexprs per frame are evaluated under that assignment *)
    let cycles = ref [] in
    let state = ref state0 in
    for k = 0 to fail_frame do
      let s_subst = subst_frame k !state in
      let inputs =
        List.map
          (fun (name, (vars : int array)) ->
            ( name,
              Bitvec.init (Array.length vars) (fun j ->
                  bexpr_var_value (frame_input_var k (vars.(j) - nstate))) ))
          flat.B.input_vars
      in
      let state_values =
        List.map
          (fun (name, (vars : int array)) ->
            ( name,
              Bitvec.init (Array.length vars) (fun j ->
                  X.eval bexpr_var_value !state.(vars.(j))) ))
          flat.B.reg_vars
      in
      cycles := { Trace.step = k; inputs; state = state_values } :: !cycles;
      if k < fail_frame then state := Array.map s_subst next_of
    done;
    Violation (List.rev !cycles, stats)

let find_shortest ?max_conflicts ?deadline ?constraint_signal nl ~ok_signal
    ~max_depth =
  let rec go d last =
    if d > max_depth then last
    else
      match
        check ?max_conflicts ?deadline ?constraint_signal nl ~ok_signal
          ~depth:d
      with
      | Violation _ as v -> v
      | Inconclusive _ as i -> i
      | No_violation_upto _ as ok -> go (d + 1) ok
  in
  go 0
    (No_violation_upto
       (-1, { depth = -1; cnf_vars = 0; cnf_clauses = 0; decisions = 0;
              conflicts = 0; propagations = 0; restarts = 0 }))
