(** Structural result cache for proof obligations.

    Maps obligation fingerprints ({!Obligation.fingerprint}) to engine
    outcomes, so structurally identical checks — sibling subunits within a
    chip category, or the post-fix re-campaign over unchanged modules — are
    answered without re-proving. Thread-safe: a single cache may be shared
    by every worker of a parallel executor, and across campaign runs within
    one process. [save]/[load] persist it across processes.

    A reused [Failed] verdict carries the counterexample trace of the
    obligation that first populated the entry; for a structurally identical
    sibling the trace is isomorphic but names the first sibling's signals. *)

type t

val create : unit -> t

val find : t -> key:string -> Engine.outcome option
(** Lookup that counts: a hit bumps [hits], a miss bumps [misses]. *)

val add : t -> key:string -> Engine.outcome -> unit
(** Insert (or overwrite) an entry. Callers that must not cache certain
    outcomes — e.g. the campaign excludes [Error] verdicts so a transient
    crash cannot poison structurally identical siblings — use
    {!find}/[add] directly instead of {!find_or_run}. *)

val find_or_run : t -> key:string -> (unit -> Engine.outcome) -> Engine.outcome * bool
(** [find_or_run c ~key f] returns the cached outcome for [key] and [true],
    or runs [f], stores its outcome and returns it with [false]. [f] runs
    outside the cache lock, so concurrent misses on distinct keys proceed in
    parallel (two simultaneous misses on the same key may both run [f]; the
    engine is deterministic, so either result is the same). *)

val length : t -> int
val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
(** Zero the hit/miss counters, keeping the entries. *)

val save : t -> string -> unit
(** Persist entries to a file (OCaml [Marshal] behind a format tag).
    Atomic: the entries are written to a temp file, fsync'd and renamed
    over [path], so a crash mid-save can never leave a truncated cache. *)

val load : string -> t option
(** [None] if the file is missing, unreadable, truncated, corrupt, or from
    another format version; anything but "missing" warns on stderr.
    Never raises on bad file contents. Statistics start at zero. *)

val load_or_create : string -> t
