type t = {
  tbl : (string, Engine.outcome) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

let create () =
  { tbl = Hashtbl.create 1024; lock = Mutex.create (); hits = 0; misses = 0 }

let with_lock c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

let find c ~key =
  let r =
    with_lock c (fun () ->
        match Hashtbl.find_opt c.tbl key with
        | Some o ->
          c.hits <- c.hits + 1;
          Some o
        | None ->
          c.misses <- c.misses + 1;
          None)
  in
  (match r with
   | Some _ -> Obs.Telemetry.count "cache.hit"
   | None -> Obs.Telemetry.count "cache.miss");
  r

let add c ~key o = with_lock c (fun () -> Hashtbl.replace c.tbl key o)

let find_or_run c ~key f =
  match find c ~key with
  | Some o -> (o, true)
  | None ->
    let o = f () in
    add c ~key o;
    (o, false)

let length c = with_lock c (fun () -> Hashtbl.length c.tbl)
let hits c = c.hits
let misses c = c.misses

let reset_stats c =
  with_lock c (fun () ->
      c.hits <- 0;
      c.misses <- 0)

(* bump when Engine.outcome (or anything reachable from it) changes shape:
   Marshal gives no type safety across versions *)
let magic = "dicheck-cache-v3\n"

(* atomic: a crash (or SIGKILL) mid-save leaves either the previous cache or
   the new one on disk, never a truncated file that poisons later runs *)
let save c path =
  let entries =
    with_lock c (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.tbl [])
  in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (match
     output_string oc magic;
     Marshal.to_channel oc (entries : (string * Engine.outcome) list) [];
     flush oc;
     (try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ());
     close_out oc
   with
   | () -> ()
   | exception e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    let corrupt what =
      Printf.eprintf
        "warning: result cache %s is %s; starting from an empty cache\n%!"
        path what;
      None
    in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match really_input_string ic (String.length magic) with
        | tag when tag = magic -> (
          match (Marshal.from_channel ic : (string * Engine.outcome) list) with
          | entries ->
            let c = create () in
            List.iter (fun (k, v) -> Hashtbl.replace c.tbl k v) entries;
            Some c
          | exception _ -> corrupt "truncated or corrupt")
        | _ -> corrupt "from another format version"
        | exception End_of_file -> corrupt "truncated")

let load_or_create path =
  match load path with Some c -> c | None -> create ()
