let check_forward_partitioned ?constrain ?(deadline = Deadline.none) sym ~ok
    ~num_split_vars =
  let man = Sym.man sym in
  let bad = Reach.bad_states ?constrain sym ~ok in
  let split_vars =
    let candidates = Sym.cur_vars sym in
    let k = min num_split_vars (List.length candidates) in
    let seed = if Bdd.is_zero bad then Sym.init sym else bad in
    Pobdd.choose_splitting_vars man ~candidates ~k seed
  in
  let windows = Pobdd.windows man split_vars in
  let nwin = List.length windows in
  let windows = Array.of_list windows in
  let reached = Array.make nwin (Bdd.zero man) in
  let frontier = Array.make nwin (Bdd.zero man) in
  Array.iteri
    (fun w win ->
      let part = Bdd.and_ man win (Sym.init sym) in
      reached.(w) <- part;
      frontier.(w) <- part)
    windows;
  (* global onion rings for counterexample extraction, built lazily *)
  let global_frontier () =
    Array.fold_left (fun acc f -> Bdd.or_ man acc f) (Bdd.zero man) frontier
  in
  let rings = ref [ global_frontier () ] in
  let peak = ref 0 in
  let track_peak () =
    Array.iter (fun r -> peak := max !peak (Bdd.size man r)) reached
  in
  let hit_bad () =
    Array.exists (fun f -> not (Bdd.is_zero (Bdd.and_ man f bad))) frontier
  in
  let rec go iter =
    Deadline.check deadline;
    track_peak ();
    if hit_bad () then begin
      let trace = Reach.trace_from_rings ?constrain sym ~ok (List.rev !rings) in
      Reach.Failed
        (trace,
         { Reach.iterations = iter; bdd_nodes = Bdd.node_count man;
           peak_set_size = !peak })
    end
    else begin
      (* image each live partition, then redistribute across windows *)
      let images =
        Array.map
          (fun f ->
            if Bdd.is_zero f then Bdd.zero man
            else Reach.image ?constrain sym f)
          frontier
      in
      let any_fresh = ref false in
      let new_frontier = Array.make nwin (Bdd.zero man) in
      Array.iteri
        (fun w win ->
          let incoming =
            Array.fold_left
              (fun acc img -> Bdd.or_ man acc (Bdd.and_ man win img))
              (Bdd.zero man) images
          in
          let fresh = Bdd.and_ man incoming (Bdd.not_ man reached.(w)) in
          if not (Bdd.is_zero fresh) then begin
            any_fresh := true;
            reached.(w) <- Bdd.or_ man reached.(w) fresh;
            new_frontier.(w) <- fresh
          end)
        windows;
      if not !any_fresh then
        Reach.Proved
          { Reach.iterations = iter; bdd_nodes = Bdd.node_count man;
            peak_set_size = !peak }
      else begin
        Array.blit new_frontier 0 frontier 0 nwin;
        rings := global_frontier () :: !rings;
        go (iter + 1)
      end
    end
  in
  go 0
