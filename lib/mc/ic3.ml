module B = Rtl.Bitblast
module X = Rtl.Bexpr

type stats = {
  frames : int;
  clauses : int;
  ctis : int;
  sat_calls : int;
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  reused : int;  (* queries answered by the warm persistent solver *)
}

type reason = Frames_exhausted | Solver_limit

type result =
  | Proved of stats
  | Violation of Trace.t * stats
  | Inconclusive of reason * stats

(* A cube is a conjunction of state-bit literals [(var, value)], kept sorted
   by variable id. Counterexamples-to-induction are extracted as full
   minterms over the state bits and shrunk by inductive generalization. *)
type cube = (int * bool) list

exception Limit_hit
exception Cex of int  (* transitions from an initial state to a bad state *)

let check ?(incremental = true) ?(max_conflicts = max_int) ?(max_frames = 32)
    ?(deadline = Deadline.none) ?constraint_signal nl ~ok_signal =
  let flat = B.flatten nl in
  let nstate =
    List.fold_left (fun acc (_, v) -> acc + Array.length v) 0 flat.B.reg_vars
  in
  let ok_bits = flat.B.fn ok_signal in
  if Array.length ok_bits <> 1 then
    invalid_arg "Ic3.check: ok signal must be 1 bit";
  let bad0 = X.not_ ok_bits.(0) in
  let constraint0 =
    Option.map (fun c -> (flat.B.fn c).(0)) constraint_signal
  in
  (* next-state function per state bit, indexed by Bexpr variable id *)
  let next_of = Array.make (max nstate 1) X.fls in
  List.iter
    (fun (reg_name, (vars : int array)) ->
      let fns = List.assoc reg_name flat.B.next_fn in
      Array.iteri (fun i v -> next_of.(v) <- fns.(i)) vars)
    flat.B.reg_vars;
  let init_val = Array.make (max nstate 1) false in
  List.iter
    (fun (reg_name, (vars : int array)) ->
      let reset = flat.B.reset_of reg_name in
      Array.iteri (fun i v -> init_val.(v) <- Bitvec.get reset i) vars)
    flat.B.reg_vars;
  let contains_init c = List.for_all (fun (v, b) -> init_val.(v) = b) c in
  let excludes_init c = List.exists (fun (v, b) -> init_val.(v) <> b) c in
  (* delta-encoded frames: a clause proven at level [j] belongs to every
     F_i with i <= j, so F_i's clause set is the union of deltas.(i..) *)
  let deltas = Array.make (max_frames + 2) ([] : cube list) in
  let n_clauses = ref 0 and n_ctis = ref 0 and n_sat_calls = ref 0 in
  let sat = ref Solver.zero_stats in
  let acc_st (s : Solver.stats) =
    sat :=
      { Solver.decisions = !sat.Solver.decisions + s.Solver.decisions;
        conflicts = !sat.Solver.conflicts + s.Solver.conflicts;
        propagations = !sat.Solver.propagations + s.Solver.propagations;
        restarts = !sat.Solver.restarts + s.Solver.restarts;
        learned = !sat.Solver.learned + s.Solver.learned }
  in
  let stats_at k =
    { frames = k; clauses = !n_clauses; ctis = !n_ctis;
      sat_calls = !n_sat_calls; decisions = !sat.Solver.decisions;
      conflicts = !sat.Solver.conflicts;
      propagations = !sat.Solver.propagations;
      restarts = !sat.Solver.restarts;
      reused = (if incremental then max 0 (!n_sat_calls - 1) else 0) }
  in
  (* ------------------------------------------------------------------ *)
  (* Incremental query engine: ONE persistent solver for the whole run.
     The transition cone (bad, constraint, next-state functions) is
     encoded once; frame membership is switched by per-frame activation
     literals — clause [c] entering delta [i] adds (~act_i \/ ~c), and a
     query at level L assumes {act_j | j >= L}, which is exactly
     F_L = union of deltas L.. (copies left behind by forward propagation
     stay sound: frames only ever strengthen). Level-0 queries assume the
     init-state literals directly, per-query block cubes get a one-shot
     activation literal retired by a unit right after the solve. *)
  let inc_solver = Solver.create () in
  let inc_ctx = Tseitin.create ~on_clause:(Solver.add_clause inc_solver) () in
  let inc_tbl = Hashtbl.create 197 in
  let inc_var_map v =
    match Hashtbl.find_opt inc_tbl v with
    | Some cv -> cv
    | None ->
      let cv = Tseitin.fresh_var inc_ctx in
      Hashtbl.replace inc_tbl v cv;
      cv
  in
  let inc_state_lit v b =
    let sv = inc_var_map v in
    if b then sv else -sv
  in
  let inc_not_cube c = List.map (fun (v, b) -> -inc_state_lit v b) c in
  let act = Array.make (max_frames + 2) 0 in
  let act_lit j =
    if act.(j) = 0 then act.(j) <- Tseitin.fresh_var inc_ctx;
    act.(j)
  in
  let inc_bad_lit = ref 0 in
  let bad_lit () =
    if !inc_bad_lit = 0 then
      inc_bad_lit := Tseitin.lit_of_bexpr inc_ctx inc_var_map bad0;
    !inc_bad_lit
  in
  let inc_next_lit = Array.make (max nstate 1) 0 in
  let next_lit v =
    if inc_next_lit.(v) = 0 then
      inc_next_lit.(v) <- Tseitin.lit_of_bexpr inc_ctx inc_var_map next_of.(v);
    inc_next_lit.(v)
  in
  if incremental then (
    match constraint0 with
    | Some c ->
      Tseitin.assert_lit inc_ctx (Tseitin.lit_of_bexpr inc_ctx inc_var_map c)
    | None -> ());
  (* called whenever a cube lands in deltas.(i), including forward moves:
     the copy under the new frame's activation literal makes it visible to
     queries at that level *)
  let frame_clause_added i c =
    if incremental then
      Tseitin.add_clause inc_ctx (-act_lit i :: inc_not_cube c)
  in
  let solve_query_inc ~level ~block_cube ~target =
    incr n_sat_calls;
    let assumptions = ref [] in
    if level = 0 then
      for v = nstate - 1 downto 0 do
        assumptions := inc_state_lit v init_val.(v) :: !assumptions
      done
    else
      for j = Array.length deltas - 1 downto level do
        assumptions := act_lit j :: !assumptions
      done;
    let retire = ref None in
    (match block_cube with
     | Some c ->
       let b = Tseitin.fresh_var inc_ctx in
       Tseitin.add_clause inc_ctx (-b :: inc_not_cube c);
       assumptions := b :: !assumptions;
       retire := Some b
     | None -> ());
    (match target with
     | `Bad -> assumptions := bad_lit () :: !assumptions
     | `Next (c : cube) ->
       List.iter
         (fun (v, b) ->
           let l = next_lit v in
           assumptions := (if b then l else -l) :: !assumptions)
         c);
    let result, st =
      Solver.solve_assuming_stats ~max_conflicts
        ~should_stop:(Deadline.checker deadline) inc_solver !assumptions
    in
    acc_st st;
    (match !retire with
     | Some b -> Solver.add_clause inc_solver [ -b ]
     | None -> ());
    match result with
    | Solver.Unsat -> `Unsat
    | Solver.Unknown -> raise Limit_hit
    | Solver.Sat model ->
      let value v =
        match Hashtbl.find_opt inc_tbl v with
        | Some cv -> cv <= Array.length model && model.(cv - 1)
        | None -> false
      in
      `Sat (List.init nstate (fun v -> (v, value v)))
  in
  (* ------------------------------------------------------------------ *)
  (* Scratch query engine: one fresh CNF per query — F_level (init units at
     level 0), the input constraint, an optional blocking clause, and
     either the bad cone or a successor cube. Kept as the differential
     oracle for the persistent-solver path. *)
  let solve_query_scratch ~level ~block_cube ~target =
    incr n_sat_calls;
    let ctx = Tseitin.create () in
    let tbl = Hashtbl.create 197 in
    let var_map v =
      match Hashtbl.find_opt tbl v with
      | Some cv -> cv
      | None ->
        let cv = Tseitin.fresh_var ctx in
        Hashtbl.replace tbl v cv;
        cv
    in
    let state_lit v b =
      let sv = var_map v in
      if b then sv else -sv
    in
    let not_cube c = List.map (fun (v, b) -> -state_lit v b) c in
    if level = 0 then
      for v = 0 to nstate - 1 do
        Tseitin.assert_lit ctx (state_lit v init_val.(v))
      done
    else
      for j = level to Array.length deltas - 1 do
        List.iter (fun c -> Tseitin.add_clause ctx (not_cube c)) deltas.(j)
      done;
    (match constraint0 with
     | Some c -> Tseitin.assert_lit ctx (Tseitin.lit_of_bexpr ctx var_map c)
     | None -> ());
    (match block_cube with
     | Some c -> Tseitin.add_clause ctx (not_cube c)
     | None -> ());
    (match target with
     | `Bad ->
       Tseitin.assert_lit ctx (Tseitin.lit_of_bexpr ctx var_map bad0)
     | `Next (c : cube) ->
       List.iter
         (fun (v, b) ->
           let l = Tseitin.lit_of_bexpr ctx var_map next_of.(v) in
           Tseitin.assert_lit ctx (if b then l else -l))
         c);
    let cnf = Tseitin.to_cnf ctx in
    let result, st =
      Solver.solve_stats ~max_conflicts
        ~should_stop:(Deadline.checker deadline) cnf
    in
    acc_st st;
    match result with
    | Solver.Unsat -> `Unsat
    | Solver.Unknown -> raise Limit_hit
    | Solver.Sat model ->
      let value v =
        match Hashtbl.find_opt tbl v with
        | Some cv -> model.(cv - 1)
        | None -> false
      in
      `Sat (List.init nstate (fun v -> (v, value v)))
  in
  let solve_query ~level ~block_cube ~target =
    if incremental then solve_query_inc ~level ~block_cube ~target
    else solve_query_scratch ~level ~block_cube ~target
  in
  (* SAT(F_{level} /\ ~cube /\ constraint /\ T /\ cube'): is [cube] still
     reachable in one step from F_level states outside it? *)
  let rel_sat level cube =
    solve_query ~level ~block_cube:(Some cube) ~target:(`Next cube)
  in
  (* inductive generalization: drop literals one at a time, keeping the
     cube relatively inductive and disjoint from the initial state *)
  let generalize s i =
    let g = ref s in
    List.iter
      (fun lit ->
        let cand = List.filter (fun l -> l <> lit) !g in
        if cand <> [] && excludes_init cand then begin
          Deadline.check deadline;
          match rel_sat (i - 1) cand with
          | `Unsat -> g := cand
          | `Sat _ -> ()
        end)
      s;
    !g
  in
  (* recursively block cube [s] at frame [i]; [depth] counts transitions
     from [s] to the bad state that spawned this proof obligation *)
  let rec block s i depth =
    Deadline.check deadline;
    if contains_init s then raise (Cex depth);
    assert (i > 0);
    let rec until_blocked () =
      match rel_sat (i - 1) s with
      | `Unsat -> ()
      | `Sat pred ->
        block pred (i - 1) (depth + 1);
        until_blocked ()
    in
    until_blocked ();
    incr n_ctis;
    let g = generalize s i in
    deltas.(i) <- g :: deltas.(i);
    frame_clause_added i g;
    incr n_clauses
  in
  let k = ref 0 in
  let run () =
    (* depth-0 base case: a bad initial state never enters the frame loop *)
    (match solve_query ~level:0 ~block_cube:None ~target:`Bad with
     | `Sat _ -> raise (Cex 0)
     | `Unsat -> ());
    if nstate = 0 then Proved (stats_at 0)
    else begin
      let proved = ref None in
      k := 1;
      while !proved = None && !k <= max_frames do
        Deadline.check deadline;
        Beacon.report ~engine:"ic3" ~step:!k ~work:(!n_clauses);
        (* block every bad state reachable within F_k *)
        let rec drain () =
          match solve_query ~level:!k ~block_cube:None ~target:`Bad with
          | `Unsat -> ()
          | `Sat s ->
            block s !k 0;
            drain ()
        in
        drain ();
        (* push clauses forward while they stay relatively inductive; an
           emptied delta means F_i = F_{i+1}: an inductive fixpoint *)
        for i = 1 to !k - 1 do
          if !proved = None then begin
            Deadline.check deadline;
            let kept, moved =
              List.partition
                (fun c ->
                  match rel_sat i c with `Sat _ -> true | `Unsat -> false)
                deltas.(i)
            in
            deltas.(i) <- kept;
            deltas.(i + 1) <- moved @ deltas.(i + 1);
            List.iter (frame_clause_added (i + 1)) moved;
            if kept = [] then proved := Some (stats_at !k)
          end
        done;
        incr k
      done;
      match !proved with
      | Some st -> Proved st
      | None -> Inconclusive (Frames_exhausted, stats_at max_frames)
    end
  in
  match run () with
  | r -> r
  | exception Limit_hit -> Inconclusive (Solver_limit, stats_at !k)
  | exception Cex depth -> (
    (* the CTI chain is a concrete path from reset to a bad state, so a
       bounded check at exactly that depth must reproduce it — and yields
       a trace in the engine's standard replayable format *)
    match
      Bmc.check ~incremental ~max_conflicts ~deadline ?constraint_signal nl
        ~ok_signal ~depth
    with
    | Bmc.Violation (trace, bst) ->
      acc_st
        { Solver.decisions = bst.Bmc.decisions;
          conflicts = bst.Bmc.conflicts;
          propagations = bst.Bmc.propagations;
          restarts = bst.Bmc.restarts; learned = 0 };
      Violation (trace, stats_at depth)
    | Bmc.Inconclusive bst ->
      acc_st
        { Solver.decisions = bst.Bmc.decisions;
          conflicts = bst.Bmc.conflicts;
          propagations = bst.Bmc.propagations;
          restarts = bst.Bmc.restarts; learned = 0 };
      Inconclusive (Solver_limit, stats_at depth)
    | Bmc.No_violation_upto _ ->
      failwith "Ic3.check: CTI chain not confirmed by bounded check")
