(** Symbolic FSM: a netlist compiled to BDDs.

    Variable order interleaves current- and next-state variables (state bit
    [i] gets BDD variables [2i] and [2i+1]) with input variables after all
    state variables — the standard order for image computation. *)

type t

val create :
  ?node_limit:int -> ?interrupt:(unit -> bool) -> Rtl.Netlist.t -> t
(** Builds the next-state BDDs and initial-state cube. Raises
    {!Bdd.Node_limit} if the node budget is exceeded during construction.
    [interrupt] is installed on the manager {e before} any BDDs are built
    (see {!Bdd.set_interrupt}), so a deadline or cancellation bounds even
    the transition-relation construction, not just the fixpoint loops. *)

val man : t -> Bdd.man
val netlist : t -> Rtl.Netlist.t
val num_state_bits : t -> int
val num_input_bits : t -> int

val cur_vars : t -> int list
val nxt_vars : t -> int list
val inp_vars : t -> int list

val cur_var : t -> int -> int
(** BDD variable of state bit [i] (current). *)

val nxt_var : t -> int -> int
val next_fn : t -> int -> Bdd.t
(** Next-state function of state bit [i], over current-state and input
    variables. *)

val init : t -> Bdd.t
(** Initial-state cube over current-state variables. *)

val signal_bdd : t -> string -> Bdd.t array
(** Bit functions of any declared signal over current-state and input
    variables. *)

val signal_bit : t -> string -> int -> Bdd.t

val state_bit_name : t -> int -> string * int
(** [(register name, bit index)] of state bit [i]. *)

val input_bit_name : t -> int -> string * int

val nxt_to_cur : t -> Bdd.t -> Bdd.t
(** Rename next-state variables to current-state variables. *)

val cur_to_nxt : t -> Bdd.t -> Bdd.t

val classify_var : t -> int -> [ `Cur of int | `Nxt of int | `Inp of int ]
(** What a BDD variable stands for: current/next state bit or input bit. *)

val subst_next : t -> Bdd.t -> Bdd.t
(** [subst_next t b] substitutes each current-state variable by its
    next-state function — the functional pre-image kernel. *)

val state_values_of_assignment : t -> (int * bool) list -> (string * Bitvec.t) list
(** Decode a partial BDD assignment (over current-state variables) into
    register values; unmentioned bits default to 0. *)

val input_values_of_assignment : t -> (int * bool) list -> (string * Bitvec.t) list
