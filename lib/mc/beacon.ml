type cell = {
  c_gen : int;
  c_lane : int;
  mutable c_engine : string;
  mutable c_step : int;
  mutable c_work : int;
  mutable c_stamp : float;
}

type t = {
  lane : int;
  engine : string;
  step : int;
  work : int;
  age_s : float;
}

type registry = {
  gen : int;
  lock : Mutex.t;
  mutable cells : cell list;
}

let current : registry option Atomic.t = Atomic.make None
let generation = Atomic.make 0

let dls : cell option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let cell_of r =
  match Domain.DLS.get dls with
  | Some c when c.c_gen = r.gen -> c
  | Some _ | None ->
    let c =
      { c_gen = r.gen; c_lane = (Domain.self () :> int); c_engine = "";
        c_step = 0; c_work = 0; c_stamp = 0.0 }
    in
    Mutex.lock r.lock;
    r.cells <- c :: r.cells;
    Mutex.unlock r.lock;
    Domain.DLS.set dls (Some c);
    c

let enable () =
  let gen = 1 + Atomic.fetch_and_add generation 1 in
  Atomic.set current (Some { gen; lock = Mutex.create (); cells = [] })

let disable () = Atomic.set current None
let active () = Atomic.get current <> None

let report ~engine ~step ~work =
  match Atomic.get current with
  | None -> ()
  | Some r ->
    let c = cell_of r in
    c.c_engine <- engine;
    c.c_step <- step;
    c.c_work <- work;
    c.c_stamp <- Unix.gettimeofday ()

let idle () =
  match Atomic.get current with
  | None -> ()
  | Some r -> (cell_of r).c_engine <- ""

let snapshot () =
  match Atomic.get current with
  | None -> []
  | Some r ->
    Mutex.lock r.lock;
    let cells = r.cells in
    Mutex.unlock r.lock;
    let now = Unix.gettimeofday () in
    List.filter_map
      (fun c ->
        if c.c_engine = "" then None
        else
          Some
            { lane = c.c_lane; engine = c.c_engine; step = c.c_step;
              work = c.c_work; age_s = now -. c.c_stamp })
      cells
    |> List.sort (fun a b -> compare a.lane b.lane)
