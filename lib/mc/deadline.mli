(** Cooperative wall-clock deadlines.

    A deadline is an absolute point in time (or [None] for "unbounded"),
    fixed once when an engine run starts and threaded through every
    long-running loop: the BDD reachability fixpoints, the POBDD partition
    loop, the BMC unroll, and — as a polling callback — the CDCL search and
    the BDD node allocator. Each loop polls the deadline at its natural
    iteration boundary and raises {!Expired}; the engine catches it and
    reports [Resource_out "deadline"], so a pathological obligation is cut
    off in bounded time instead of hanging its worker. *)

type t = float option
(** Absolute [Unix.gettimeofday] time, or [None] for no deadline. *)

exception Expired

val none : t

val after : float -> t
(** A deadline this many seconds from now. *)

val of_budget : float option -> t
(** Fix a relative budget ({!Engine.budget.wall_deadline_s}) into an
    absolute deadline, now. *)

val expired : t -> bool

val check : t -> unit
(** Raise {!Expired} if the deadline has passed. *)

val checker : t -> unit -> bool
(** [expired] as a thunk — the shape {!Bdd.set_interrupt} and
    [Solver.solve ?should_stop] expect. *)
