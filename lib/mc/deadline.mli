(** Cooperative deadlines: a wall-clock bound plus an external stop hook.

    A deadline is fixed once when an engine run starts and threaded through
    every long-running loop: the BDD reachability fixpoints, the POBDD
    partition loop, the BMC unroll, the IC3 frame loop, and — as a polling
    callback — the CDCL search and the BDD node allocator. Each loop polls
    the deadline at its natural iteration boundary and raises {!Expired};
    the engine catches it and reports [Resource_out "deadline"] (or
    ["cancelled"] when the stop hook, not the clock, fired), so a
    pathological obligation is cut off in bounded time instead of hanging
    its worker.

    The stop hook is how the racing scheduler cancels a losing portfolio
    member: a sibling's conclusive verdict flips an atomic that the hook
    reads, and the member's next poll unwinds it. *)

type t

exception Expired

val none : t

val after : float -> t
(** A deadline this many seconds from now, with no stop hook. *)

val of_budget : float option -> t
(** Fix a relative budget ({!Engine.budget.wall_deadline_s}) into an
    absolute deadline, now. [None] is {!none}. *)

val with_stop : t -> (unit -> bool) -> t
(** Attach an external cancellation hook: the returned deadline is expired
    as soon as either the original one is, or the hook returns [true].
    Hooks compose — attaching to an already-hooked deadline polls both. *)

val expired : t -> bool
(** Wall clock passed, or the stop hook fired. *)

val wall_expired : t -> bool
(** The wall clock alone — distinguishes a timeout from a cancellation. *)

val cancelled : t -> bool
(** The stop hook alone. *)

val live : t -> bool
(** Whether polling this deadline can ever observe expiry — i.e. it has a
    wall bound or a stop hook. Engines skip installing allocator-level
    interrupt callbacks for deadlines that are not live. *)

val check : t -> unit
(** Raise {!Expired} if the deadline has passed. *)

val checker : t -> unit -> bool
(** [expired] as a thunk — the shape {!Bdd.set_interrupt} and
    [Solver.solve ?should_stop] expect. *)
