(** BDD-based unbounded model checking by reachability analysis.

    The invariant to check is a 1-bit "ok" function over current-state and
    input variables (typically a {!Psl.Monitor} [invariant_ok] wire). A state
    is bad when some input valuation makes it false. Forward traversal
    explores from reset; backward traversal regresses from the bad states;
    the combined mode (the paper's in-house engine does "combined forward and
    backward traversal") advances both frontiers in lockstep. *)

type stats = {
  iterations : int;
  bdd_nodes : int;  (** arena size at completion — a monotone work measure *)
  peak_set_size : int;  (** largest reached/backward set representation *)
}

type result =
  | Proved of stats
  | Failed of Trace.t * stats

val image : ?constrain:Bdd.t -> Sym.t -> Bdd.t -> Bdd.t
(** Forward image over current-state variables, inputs quantified, computed
    with early-quantification scheduling over the partitioned transition
    relation. [constrain] (over input variables) restricts the explored
    input space — the engine-level form of invariant input assumptions. *)

val pre_image : ?constrain:Bdd.t -> Sym.t -> Bdd.t -> Bdd.t
(** Backward image via functional substitution. *)

val bad_states : ?constrain:Bdd.t -> Sym.t -> ok:Bdd.t -> Bdd.t
(** States from which some (constraint-satisfying) input makes [ok] false. *)

val reachable : ?constrain:Bdd.t -> Sym.t -> Bdd.t
(** Full reachable state set (tests and state-count reporting). *)

val trace_from_rings : ?constrain:Bdd.t -> Sym.t -> ok:Bdd.t -> Bdd.t list -> Trace.t
(** Build a counterexample from forward onion rings (oldest first, the last
    ring containing a bad state) — shared with the POBDD engine. *)

val check_forward :
  ?constrain:Bdd.t -> ?deadline:Deadline.t -> Sym.t -> ok:Bdd.t -> result

val check_backward :
  ?constrain:Bdd.t -> ?deadline:Deadline.t -> Sym.t -> ok:Bdd.t -> result

val check_combined :
  ?constrain:Bdd.t -> ?deadline:Deadline.t -> Sym.t -> ok:Bdd.t -> result
(** All three fixpoints poll [deadline] once per frontier iteration and
    raise {!Deadline.Expired} when it passes; counterexample extraction
    after a violation is not interrupted. *)
