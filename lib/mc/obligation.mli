(** First-class proof obligations.

    An obligation is one fully-prepared property check: the instrumented,
    cone-of-influence-reduced netlist, the 1-bit ok signal, the optional
    input-constraint signal, and the engine strategy and resource budget it
    should run under — everything {!Engine.check_netlist} needs, decoupled
    from actually running it. Splitting preparation from execution is what
    lets the campaign treat its 2047 checks as schedulable, deduplicatable
    work items: obligations can be built up front, fingerprinted, fanned out
    over a parallel executor, and answered from a structural result cache.

    ['meta] carries caller-side provenance (category, module, property
    class, …) through scheduling untouched. *)

type 'meta t = {
  nl : Rtl.Netlist.t;  (** instrumented and cone-reduced *)
  ok_signal : string;
  constraint_signal : string option;
  budget : Engine.budget;
  strategy : Engine.strategy;
  meta : 'meta;
}

val prepare :
  ?budget:Engine.budget ->
  ?strategy:Engine.strategy ->
  Rtl.Mdl.t ->
  assert_:Psl.Ast.fl ->
  assumes:Psl.Ast.fl list ->
  meta:'a ->
  'a t
(** Instrument a leaf module with the property monitor and package the
    reduced check. [strategy] defaults to [Auto], [budget] to
    {!Engine.default_budget}. Raises [Invalid_argument] on non-leaf modules,
    like {!Engine.check_property}. *)

val of_prepared :
  ?budget:Engine.budget ->
  ?strategy:Engine.strategy ->
  Rtl.Netlist.t * string * string option ->
  meta:'a ->
  'a t
(** Package an already-prepared check — the [(netlist, ok, constraint)]
    triple {!Engine.instrumented_netlist} or {!Engine.prepare_module}
    returns — without re-running preparation. This is how the campaign
    shares one monitor-weaving/elaboration pass across all properties of a
    module: prepare once with {!Engine.prepare_module}, then wrap each
    per-property cone here. Equivalent to {!prepare} on the same inputs
    (same netlist up to structural identity, hence same {!fingerprint}). *)

val of_vunit :
  ?budget:Engine.budget ->
  ?strategy:Engine.strategy ->
  Rtl.Mdl.t ->
  Psl.Ast.vunit ->
  meta:(prop_name:string -> 'a) ->
  'a t list
(** One obligation per [assert] of the vunit, all under the vunit's
    [assume]s; [meta] is invoked with each property's name. *)

val fingerprint : ?salt:string -> _ t -> string
(** Structural cache key: the canonical-form digest ({!Rtl.Canon}) of the
    reduced netlist and its ok/constraint roots, salted with the strategy
    and budget. Obligations over structurally identical logic — e.g. the N
    generated subunits of one chip category — share a fingerprint and hence
    a cached verdict; any change to the logic, the property cone, the
    strategy or the budget changes the key. The optional [salt] is appended
    to the strategy/budget salt — derived obligations (e.g. self-healing
    sub-proofs salted with their cut set) use it to guarantee their keys
    never collide with the monolithic obligation's. *)

val run : ?cancel:(unit -> bool) -> _ t -> Engine.outcome
(** Execute the prepared check ({!Engine.check_netlist}). [cancel] is the
    cooperative stop hook — see {!Engine.check_netlist}. *)

val size : _ t -> int * int
(** [(state bits, input bits)] of the prepared model — the paper's "problem
    size of the properties". *)

val map_meta : ('a -> 'b) -> 'a t -> 'b t
