type cycle = {
  step : int;
  inputs : (string * Bitvec.t) list;
  state : (string * Bitvec.t) list;
}

type t = cycle list

let length = List.length

let pp_binding ppf (name, v) =
  Format.fprintf ppf "%s=%a" name Bitvec.pp v

let pp ppf t =
  List.iter
    (fun c ->
      Format.fprintf ppf "cycle %d:@." c.step;
      Format.fprintf ppf "  inputs: %a@."
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_binding)
        c.inputs;
      Format.fprintf ppf "  state:  %a@."
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_binding)
        c.state)
    t

let to_string t = Format.asprintf "%a" pp t

let replay_stimulus t = List.map (fun c -> c.inputs) t

(* Bijective base-94 identifier codes over printable ASCII 33..126:
   0..93 -> "!".."~", 94 -> "!!", 8929 -> "~~", 8930 -> "!!!", … Injective
   for any index (the test suite checks thousands of ids), so dumps with
   more than 94 signals — which annotated replays routinely produce — never
   alias two signals onto one identifier. *)
let vcd_id i =
  let base = 94 and first = 33 in
  let rec go i acc =
    let c = Char.chr (first + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  if i < 0 then invalid_arg "Trace.vcd_id: negative index" else go i ""

(* The dumped signal set: the trace's own inputs+state first, then any
   replay-only signals (outputs, internal wires, monitor nets) in snapshot
   order. Replayed values for signals the trace already carries are dropped —
   the trace is the engine's ground truth and replay validation checks the
   two agree. *)
let vcd_signals t replay =
  let trace_bindings =
    match t with [] -> [] | c :: _ -> c.inputs @ c.state
  in
  let seen = Hashtbl.create 97 in
  let add acc (name, v) =
    if Hashtbl.mem seen name then acc
    else begin
      Hashtbl.add seen name ();
      (name, Bitvec.width v) :: acc
    end
  in
  let acc = List.fold_left add [] trace_bindings in
  let acc =
    match replay with
    | [] -> acc
    | snapshot :: _ -> List.fold_left add acc snapshot
  in
  List.mapi (fun i (name, w) -> (name, w, vcd_id i)) (List.rev acc)

let to_vcd ?(replay = []) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "$date formal counterexample $end\n";
  Buffer.add_string buf "$version repro data-integrity model checker $end\n";
  Buffer.add_string buf "$timescale 1ns $end\n$scope module trace $end\n";
  let signals = vcd_signals t replay in
  List.iter
    (fun (name, w, id) ->
      let safe = String.map (fun ch -> if ch = '.' then '_' else ch) name in
      Buffer.add_string buf (Printf.sprintf "$var wire %d %s %s $end\n" w id safe))
    signals;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let replay = Array.of_list replay in
  List.iteri
    (fun j c ->
      Buffer.add_string buf (Printf.sprintf "#%d\n" c.step);
      let bindings =
        c.inputs @ c.state
        @ (if j < Array.length replay then replay.(j) else [])
      in
      List.iter
        (fun (name, w, id) ->
          match List.assoc_opt name bindings with
          | None -> ()  (* unchanged this cycle; VCD carries the old value *)
          | Some v ->
            if w = 1 then
              Buffer.add_string buf
                (Printf.sprintf "%d%s\n" (if Bitvec.get v 0 then 1 else 0) id)
            else
              Buffer.add_string buf
                (Printf.sprintf "b%s %s\n" (Bitvec.to_string v) id))
        signals)
    t;
  Buffer.contents buf

let write_vcd ?replay t path =
  let oc = open_out path in
  (try output_string oc (to_vcd ?replay t)
   with e ->
     close_out oc;
     raise e);
  close_out oc
