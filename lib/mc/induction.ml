module B = Rtl.Bitblast
module X = Rtl.Bexpr

type stats = {
  k : int;
  cnf_vars : int;
  cnf_clauses : int;
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  reused : int;  (* solves answered by a warm (already-populated) solver *)
}

type result =
  | Proved_by_induction of stats
  | Violation of Trace.t * stats
  | Inconclusive of stats

(* Incremental inductive-step context: frames 0..j with a FREE initial state
   (the frame-0 state bits are the registers' own Bexpr variables), encoded
   once into a live solver. At step k the query is "ok at frames 0..k-1,
   ~ok at frame k": the ok literals for frames < k are permanent units
   (they only ever grow as k does), and the frame-k ~ok is an assumption —
   so stepping from k to k+1 adds one frame, one unit, and keeps every
   learnt clause. *)
type step = {
  nstate : int;
  ninputs : int;
  ok0 : X.t;
  constraint0 : X.t option;
  next_of : X.t array;
  ctx : Tseitin.ctx;
  solver : Solver.t;
  cnf_var_of : (int, int) Hashtbl.t;
  mutable state : X.t array;  (* symbolic state of frame [next_frame] *)
  mutable next_frame : int;
  mutable ok_lits : (int * int) list;  (* (frame, literal), newest first *)
  mutable asserted_upto : int;  (* ok units added for frames < this *)
}

let create_step ?constraint_signal (flat : B.flat) ~nstate ~ninputs ~ok0 =
  let next_of = Array.make (max nstate 1) X.fls in
  List.iter
    (fun (reg_name, (vars : int array)) ->
      let fns = List.assoc reg_name flat.B.next_fn in
      Array.iteri (fun i v -> next_of.(v) <- fns.(i)) vars)
    flat.B.reg_vars;
  let constraint0 =
    Option.map (fun c -> (flat.B.fn c).(0)) constraint_signal
  in
  let solver = Solver.create () in
  let ctx = Tseitin.create ~on_clause:(Solver.add_clause solver) () in
  { nstate; ninputs; ok0; constraint0; next_of; ctx; solver;
    cnf_var_of = Hashtbl.create 997;
    state = Array.init (max nstate 1) X.var; next_frame = 0; ok_lits = [];
    asserted_upto = 0 }

let step_var_map st v =
  match Hashtbl.find_opt st.cnf_var_of v with
  | Some cv -> cv
  | None ->
    let cv = Tseitin.fresh_var st.ctx in
    Hashtbl.replace st.cnf_var_of v cv;
    cv

let step_subst st frame state =
  X.substitute (fun v ->
      if v < st.nstate then state.(v)
      else X.var (st.nstate + (frame * st.ninputs) + (v - st.nstate)))

let step_encode_to st j =
  while st.next_frame <= j do
    let f = st.next_frame in
    let s = step_subst st f st.state in
    let ok_lit = Tseitin.lit_of_bexpr st.ctx (step_var_map st) (s st.ok0) in
    (match st.constraint0 with
     | Some c ->
       Tseitin.assert_lit st.ctx
         (Tseitin.lit_of_bexpr st.ctx (step_var_map st) (s c))
     | None -> ());
    st.ok_lits <- (f, ok_lit) :: st.ok_lits;
    st.state <- Array.map s st.next_of;
    st.next_frame <- f + 1
  done

(* The inductive step at depth k: UNSAT means any k consecutive satisfying
   states can only step to a satisfying state, which together with the base
   case proves the property for all time. *)
let step_query ~max_conflicts ~should_stop st ~k =
  step_encode_to st k;
  for f = st.asserted_upto to k - 1 do
    Tseitin.assert_lit st.ctx (List.assoc f st.ok_lits)
  done;
  if k > st.asserted_upto then st.asserted_upto <- k;
  let nok = -List.assoc k st.ok_lits in
  Solver.solve_assuming_stats ~max_conflicts ~should_stop st.solver [ nok ]

let check ?(incremental = true) ?(max_conflicts = max_int) ?(max_k = 20)
    ?(deadline = Deadline.none) ?constraint_signal nl ~ok_signal =
  let flat = B.flatten nl in
  let nstate =
    List.fold_left (fun acc (_, v) -> acc + Array.length v) 0 flat.B.reg_vars
  in
  let ninputs =
    List.fold_left (fun acc (_, v) -> acc + Array.length v) 0 flat.B.input_vars
  in
  let ok_bits = flat.B.fn ok_signal in
  if Array.length ok_bits <> 1 then
    invalid_arg "Induction.check: ok signal must be 1 bit";
  let ok0 = ok_bits.(0) in
  let mk_step () = create_step ?constraint_signal flat ~nstate ~ninputs ~ok0 in
  let mk_base () = Bmc.create_inc ?constraint_signal nl ~ok_signal in
  (* in incremental mode one base-case unroller and one step-case solver
     live for the whole run; in scratch mode both are rebuilt per k *)
  let shared_base = if incremental then Some (mk_base ()) else None in
  let shared_step = if incremental then Some (mk_step ()) else None in
  let reused = ref 0 in
  (* SAT work accumulated across every base-case and step-case solve, so the
     reported counters cover the whole induction run, not just the last CNF *)
  let acc_d = ref 0 and acc_c = ref 0 and acc_p = ref 0 and acc_r = ref 0 in
  let add_sat (s : Solver.stats) =
    acc_d := !acc_d + s.Solver.decisions;
    acc_c := !acc_c + s.Solver.conflicts;
    acc_p := !acc_p + s.Solver.propagations;
    acc_r := !acc_r + s.Solver.restarts
  in
  let mk_stats ~k ~cnf_vars ~cnf_clauses =
    { k; cnf_vars; cnf_clauses; decisions = !acc_d; conflicts = !acc_c;
      propagations = !acc_p; restarts = !acc_r; reused = !reused }
  in
  let should_stop = Deadline.checker deadline in
  let rec iterate k =
    if k > max_k then
      Inconclusive (mk_stats ~k:max_k ~cnf_vars:0 ~cnf_clauses:0)
    else begin
      Deadline.check deadline;
      Beacon.report ~engine:"k-induction" ~step:k ~work:(!acc_c);
      (* base case: frames < k were proven clean by earlier iterations, so
         only the new depth k needs solving *)
      let base =
        match shared_base with
        | Some b ->
          if k > 0 then incr reused;
          b
        | None -> mk_base ()
      in
      let base_outcome, base_sat =
        Bmc.solve_depth ~max_conflicts ~should_stop base ~depth:k
      in
      add_sat base_sat;
      let base_vars = Bmc.inc_cnf_vars base
      and base_clauses = Bmc.inc_cnf_clauses base in
      match base_outcome with
      | `Violation trace ->
        Violation
          (trace, mk_stats ~k ~cnf_vars:base_vars ~cnf_clauses:base_clauses)
      | `Unknown ->
        Inconclusive (mk_stats ~k ~cnf_vars:base_vars ~cnf_clauses:base_clauses)
      | `No_violation -> (
        let st =
          match shared_step with
          | Some s ->
            if k > 0 then incr reused;
            s
          | None -> mk_step ()
        in
        let result, step_sat =
          step_query ~max_conflicts ~should_stop st ~k:(k + 1)
        in
        add_sat step_sat;
        let step_vars = Tseitin.num_vars st.ctx
        and step_clauses = Tseitin.num_clauses st.ctx in
        match result with
        | Solver.Unsat ->
          Proved_by_induction
            (mk_stats ~k ~cnf_vars:step_vars ~cnf_clauses:step_clauses)
        | Solver.Sat _ -> iterate (k + 1)
        | Solver.Unknown ->
          Inconclusive
            (mk_stats ~k ~cnf_vars:step_vars ~cnf_clauses:step_clauses))
    end
  in
  iterate 0
