module B = Rtl.Bitblast
module X = Rtl.Bexpr

type stats = {
  k : int;
  cnf_vars : int;
  cnf_clauses : int;
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
}

type result =
  | Proved_by_induction of stats
  | Violation of Trace.t * stats
  | Inconclusive of stats

(* Inductive step at depth k: frames 0..k with a FREE initial state (the
   frame-0 state bits are the registers' own Bexpr variables), ok asserted
   at frames 0..k-1, the constraint asserted everywhere, and ~ok at frame k.
   UNSAT means every reachable violation would have to appear within k steps
   of reset, which the base case has excluded. *)
let step_case ~max_conflicts ~deadline ?constraint_signal (flat : B.flat)
    ~nstate ~ninputs ~ok0 ~k =
  let next_of = Array.make (max nstate 1) X.fls in
  List.iter
    (fun (reg_name, (vars : int array)) ->
      let fns = List.assoc reg_name flat.B.next_fn in
      Array.iteri (fun i v -> next_of.(v) <- fns.(i)) vars)
    flat.B.reg_vars;
  let frame_input_var frame j = nstate + (frame * ninputs) + j in
  let subst_frame frame state =
    X.substitute (fun v ->
        if v < nstate then state.(v)
        else X.var (frame_input_var frame (v - nstate)))
  in
  let constraint0 =
    Option.map (fun c -> (flat.B.fn c).(0)) constraint_signal
  in
  let free_state = Array.init (max nstate 1) X.var in
  let ctx = Tseitin.create () in
  let cnf_var_of = Hashtbl.create 997 in
  let var_map v =
    match Hashtbl.find_opt cnf_var_of v with
    | Some cv -> cv
    | None ->
      let cv = Tseitin.fresh_var ctx in
      Hashtbl.replace cnf_var_of v cv;
      cv
  in
  let state = ref free_state in
  for frame = 0 to k do
    Deadline.check deadline;
    let s = subst_frame frame !state in
    let ok_f = s ok0 in
    if frame < k then
      Tseitin.assert_lit ctx (Tseitin.lit_of_bexpr ctx var_map ok_f)
    else
      Tseitin.assert_lit ctx (-Tseitin.lit_of_bexpr ctx var_map ok_f);
    (match constraint0 with
     | Some c -> Tseitin.assert_lit ctx (Tseitin.lit_of_bexpr ctx var_map (s c))
     | None -> ());
    if frame < k then state := Array.map s next_of
  done;
  let cnf = Tseitin.to_cnf ctx in
  let result, sat_stats =
    Solver.solve_stats ~max_conflicts
      ~should_stop:(Deadline.checker deadline) cnf
  in
  (result, cnf, sat_stats)

let check ?(max_conflicts = max_int) ?(max_k = 20)
    ?(deadline = Deadline.none) ?constraint_signal nl ~ok_signal =
  let flat = B.flatten nl in
  let nstate =
    List.fold_left (fun acc (_, v) -> acc + Array.length v) 0 flat.B.reg_vars
  in
  let ninputs =
    List.fold_left (fun acc (_, v) -> acc + Array.length v) 0 flat.B.input_vars
  in
  let ok_bits = flat.B.fn ok_signal in
  if Array.length ok_bits <> 1 then
    invalid_arg "Induction.check: ok signal must be 1 bit";
  let ok0 = ok_bits.(0) in
  (* SAT work accumulated across every base-case and step-case solve, so the
     reported counters cover the whole induction run, not just the last CNF *)
  let acc_d = ref 0 and acc_c = ref 0 and acc_p = ref 0 and acc_r = ref 0 in
  let add_sat (s : Solver.stats) =
    acc_d := !acc_d + s.Solver.decisions;
    acc_c := !acc_c + s.Solver.conflicts;
    acc_p := !acc_p + s.Solver.propagations;
    acc_r := !acc_r + s.Solver.restarts
  in
  let add_bmc (s : Bmc.stats) =
    acc_d := !acc_d + s.Bmc.decisions;
    acc_c := !acc_c + s.Bmc.conflicts;
    acc_p := !acc_p + s.Bmc.propagations;
    acc_r := !acc_r + s.Bmc.restarts
  in
  let mk_stats ~k ~cnf_vars ~cnf_clauses =
    { k; cnf_vars; cnf_clauses; decisions = !acc_d; conflicts = !acc_c;
      propagations = !acc_p; restarts = !acc_r }
  in
  let rec iterate k =
    if k > max_k then
      Inconclusive (mk_stats ~k:max_k ~cnf_vars:0 ~cnf_clauses:0)
    else begin
      Beacon.report ~engine:"k-induction" ~step:k ~work:(!acc_c);
      (* base case: no violation within k cycles of reset *)
      match
        Bmc.check ~max_conflicts ~deadline ?constraint_signal nl ~ok_signal
          ~depth:k
      with
      | Bmc.Violation (trace, s) ->
        add_bmc s;
        Violation
          (trace,
           mk_stats ~k ~cnf_vars:s.Bmc.cnf_vars ~cnf_clauses:s.Bmc.cnf_clauses)
      | Bmc.Inconclusive s ->
        add_bmc s;
        Inconclusive
          (mk_stats ~k ~cnf_vars:s.Bmc.cnf_vars ~cnf_clauses:s.Bmc.cnf_clauses)
      | Bmc.No_violation_upto (_, s) -> (
        add_bmc s;
        match
          step_case ~max_conflicts ~deadline ?constraint_signal flat ~nstate
            ~ninputs ~ok0 ~k:(k + 1)
        with
        | Solver.Unsat, cnf, sat ->
          add_sat sat;
          Proved_by_induction
            (mk_stats ~k ~cnf_vars:cnf.Cnf.nvars
               ~cnf_clauses:(Cnf.num_clauses cnf))
        | Solver.Sat _, _, sat ->
          add_sat sat;
          iterate (k + 1)
        | Solver.Unknown, cnf, sat ->
          add_sat sat;
          Inconclusive
            (mk_stats ~k ~cnf_vars:cnf.Cnf.nvars
               ~cnf_clauses:(Cnf.num_clauses cnf)))
    end
  in
  iterate 0
