module N = Rtl.Netlist
module B = Rtl.Bitblast

type t = {
  man : Bdd.man;
  nl : N.t;
  flat : B.flat;
  nstate : int;
  ninputs : int;
  cur_of : int array;  (* state bit -> BDD var *)
  nxt_of : int array;
  inp_of : int array;  (* input bit -> BDD var *)
  next_fns : Bdd.t array;
  init : Bdd.t;
  bexpr_cache : (int, Bdd.t) Hashtbl.t;
  var_class : (int, [ `Cur of int | `Nxt of int | `Inp of int ]) Hashtbl.t;
}

(* Variable ordering matters enormously for capture registers (s' = input):
   if all inputs sat after all state variables, the intermediate
   conjunction of (s_i' <-> in_i) during image computation is exponential.
   We therefore place each state bit's current and next variables adjacent,
   immediately followed by the input bits its next-state function reads
   (first reader wins); leftover inputs go at the end. *)
let build_order flat nstate ninputs =
  let cur_of = Array.make (max nstate 1) (-1) in
  let nxt_of = Array.make (max nstate 1) (-1) in
  let inp_of = Array.make (max ninputs 1) (-1) in
  let next_pos = ref 0 in
  let place () =
    let p = !next_pos in
    incr next_pos;
    p
  in
  List.iter
    (fun (reg_name, (vars : int array)) ->
      let fns = List.assoc reg_name flat.B.next_fn in
      Array.iteri
        (fun i v ->
          cur_of.(v) <- place ();
          nxt_of.(v) <- place ();
          List.iter
            (fun support_var ->
              if support_var >= nstate then begin
                let j = support_var - nstate in
                if inp_of.(j) < 0 then inp_of.(j) <- place ()
              end)
            (Rtl.Bexpr.support fns.(i)))
        vars)
    flat.B.reg_vars;
  for j = 0 to ninputs - 1 do
    if inp_of.(j) < 0 then inp_of.(j) <- place ()
  done;
  (cur_of, nxt_of, inp_of)

let bdd_var_of_bexpr_var t v =
  if v < t.nstate then t.cur_of.(v) else t.inp_of.(v - t.nstate)

let rec bdd_of_bexpr t (e : Rtl.Bexpr.t) =
  match Hashtbl.find_opt t.bexpr_cache (Rtl.Bexpr.id e) with
  | Some b -> b
  | None ->
    let m = t.man in
    let b =
      match e.Rtl.Bexpr.node with
      | Rtl.Bexpr.True -> Bdd.one m
      | Rtl.Bexpr.False -> Bdd.zero m
      | Rtl.Bexpr.Var v -> Bdd.var m (bdd_var_of_bexpr_var t v)
      | Rtl.Bexpr.Not a -> Bdd.not_ m (bdd_of_bexpr t a)
      | Rtl.Bexpr.And (a, b) ->
        Bdd.and_ m (bdd_of_bexpr t a) (bdd_of_bexpr t b)
      | Rtl.Bexpr.Or (a, b) ->
        Bdd.or_ m (bdd_of_bexpr t a) (bdd_of_bexpr t b)
      | Rtl.Bexpr.Xor (a, b) ->
        Bdd.xor m (bdd_of_bexpr t a) (bdd_of_bexpr t b)
      | Rtl.Bexpr.Ite (c, th, el) ->
        Bdd.ite m (bdd_of_bexpr t c) (bdd_of_bexpr t th) (bdd_of_bexpr t el)
    in
    Hashtbl.replace t.bexpr_cache (Rtl.Bexpr.id e) b;
    b

let create ?node_limit ?interrupt nl =
  let flat = B.flatten nl in
  let nstate =
    List.fold_left (fun acc (_, vars) -> acc + Array.length vars) 0
      flat.B.reg_vars
  in
  let ninputs =
    List.fold_left (fun acc (_, vars) -> acc + Array.length vars) 0
      flat.B.input_vars
  in
  let cur_of, nxt_of, inp_of = build_order flat nstate ninputs in
  let man = Bdd.create ?node_limit ~nvars:((2 * nstate) + ninputs) () in
  (* install the interrupt before building next-state functions, so even
     construction of a runaway transition relation is cancellable *)
  (match interrupt with
   | Some f -> Bdd.set_interrupt man (Some f)
   | None -> ());
  let var_class = Hashtbl.create 197 in
  for i = 0 to nstate - 1 do
    Hashtbl.replace var_class cur_of.(i) (`Cur i);
    Hashtbl.replace var_class nxt_of.(i) (`Nxt i)
  done;
  for j = 0 to ninputs - 1 do
    Hashtbl.replace var_class inp_of.(j) (`Inp j)
  done;
  let t =
    { man; nl; flat; nstate; ninputs; cur_of; nxt_of; inp_of;
      next_fns = [||]; init = Bdd.one man; bexpr_cache = Hashtbl.create 997;
      var_class }
  in
  let next_fns = Array.make (max nstate 1) (Bdd.zero man) in
  List.iter
    (fun (reg_name, (_ : int array)) ->
      Array.iteri
        (fun i bexpr ->
          let state_bit = flat.B.var_of_bit reg_name i in
          next_fns.(state_bit) <- bdd_of_bexpr t bexpr)
        (List.assoc reg_name flat.B.next_fn))
    flat.B.reg_vars;
  let init =
    List.fold_left
      (fun acc (reg_name, (bits : int array)) ->
        let reset = flat.B.reset_of reg_name in
        let acc = ref acc in
        Array.iteri
          (fun i _ ->
            let v = cur_of.(flat.B.var_of_bit reg_name i) in
            let lit =
              if Bitvec.get reset i then Bdd.var man v else Bdd.nvar man v
            in
            acc := Bdd.and_ man !acc lit)
          bits;
        !acc)
      (Bdd.one man) flat.B.reg_vars
  in
  { t with next_fns; init }

let man t = t.man
let netlist t = t.nl
let num_state_bits t = t.nstate
let num_input_bits t = t.ninputs

let cur_vars t = Array.to_list (Array.sub t.cur_of 0 t.nstate)
let nxt_vars t = Array.to_list (Array.sub t.nxt_of 0 t.nstate)
let inp_vars t = Array.to_list (Array.sub t.inp_of 0 t.ninputs)

let cur_var t i =
  if i < 0 || i >= t.nstate then invalid_arg "Sym.cur_var";
  t.cur_of.(i)

let nxt_var t i =
  if i < 0 || i >= t.nstate then invalid_arg "Sym.nxt_var";
  t.nxt_of.(i)

let next_fn t i =
  if i < 0 || i >= t.nstate then invalid_arg "Sym.next_fn";
  t.next_fns.(i)

let init t = t.init

let signal_bdd t name = Array.map (bdd_of_bexpr t) (t.flat.B.fn name)

let signal_bit t name i =
  let bits = signal_bdd t name in
  if i < 0 || i >= Array.length bits then invalid_arg "Sym.signal_bit";
  bits.(i)

let state_bit_name t i =
  if i < 0 || i >= t.nstate then invalid_arg "Sym.state_bit_name";
  t.flat.B.bit_of_var i

let input_bit_name t j =
  if j < 0 || j >= t.ninputs then invalid_arg "Sym.input_bit_name";
  t.flat.B.bit_of_var (t.nstate + j)

(* state bit index of a current/next BDD var, or None *)
let rename t ~from_of ~to_of b =
  let state_of = Hashtbl.create 97 in
  Array.iteri (fun i v -> Hashtbl.replace state_of v i) from_of;
  Bdd.vector_compose t.man
    (fun v ->
      match Hashtbl.find_opt state_of v with
      | Some i when i < t.nstate -> Some (Bdd.var t.man to_of.(i))
      | Some _ | None -> None)
    b

let nxt_to_cur t b = rename t ~from_of:t.nxt_of ~to_of:t.cur_of b
let cur_to_nxt t b = rename t ~from_of:t.cur_of ~to_of:t.nxt_of b

let classify_var t v =
  match Hashtbl.find_opt t.var_class v with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Sym.classify_var: unknown var %d" v)

let subst_next t b =
  Bdd.vector_compose t.man
    (fun v ->
      match Hashtbl.find_opt t.var_class v with
      | Some (`Cur i) -> Some t.next_fns.(i)
      | Some (`Nxt _ | `Inp _) | None -> None)
    b

let decode t ~state_bit_of entries assignment =
  let values = Hashtbl.create 17 in
  List.iter
    (fun (name, (vars : int array)) ->
      Hashtbl.replace values name (Array.make (Array.length vars) false))
    entries;
  List.iter
    (fun (bdd_var, b) ->
      match state_bit_of bdd_var with
      | Some bexpr_var ->
        let name, bit = t.flat.B.bit_of_var bexpr_var in
        (match Hashtbl.find_opt values name with
         | Some arr -> arr.(bit) <- b
         | None -> ())
      | None -> ())
    assignment;
  List.map
    (fun (name, _) ->
      let arr = Hashtbl.find values name in
      (name, Bitvec.init (Array.length arr) (fun i -> arr.(i))))
    entries

let state_values_of_assignment t assignment =
  let rev = Hashtbl.create 97 in
  Array.iteri
    (fun i v -> if i < t.nstate then Hashtbl.replace rev v i)
    t.cur_of;
  decode t ~state_bit_of:(fun v -> Hashtbl.find_opt rev v) t.flat.B.reg_vars
    assignment

let input_values_of_assignment t assignment =
  let rev = Hashtbl.create 97 in
  Array.iteri
    (fun j v -> if j < t.ninputs then Hashtbl.replace rev v (t.nstate + j))
    t.inp_of;
  decode t ~state_bit_of:(fun v -> Hashtbl.find_opt rev v) t.flat.B.input_vars
    assignment
