(** k-induction: an unbounded SAT-based proof engine.

    For increasing [k], the base case (no violation within [k] cycles from
    reset — plain BMC) and the inductive step (any [k] consecutive
    property-satisfying states, starting anywhere, can only step to a
    satisfying state) are checked. If both hold, the property is proved for
    all time; if the base case fails, the BMC counterexample is returned. *)

type stats = {
  k : int;  (** the depth at which the result was established *)
  cnf_vars : int;
  cnf_clauses : int;
  decisions : int;  (** summed over every base-case and step-case solve *)
  conflicts : int;
  propagations : int;
  restarts : int;
  reused : int;
      (** solves answered by a warm solver (0 in scratch mode) *)
}

type result =
  | Proved_by_induction of stats
  | Violation of Trace.t * stats
  | Inconclusive of stats
      (** [max_k] reached with the step case still failing, or the solver
          budget ran out *)

val check :
  ?incremental:bool ->
  ?max_conflicts:int ->
  ?max_k:int ->
  ?deadline:Deadline.t ->
  ?constraint_signal:string ->
  Rtl.Netlist.t ->
  ok_signal:string ->
  result
(** [max_k] defaults to 20. The inductive step is the plain variant (no
    state-uniqueness constraints), which is sound but may stay inconclusive
    on properties that need strengthening. By default ([incremental], on)
    one live base-case unroller and one live step-case solver are kept for
    the whole run, so iteration [k+1] only encodes the new frame;
    [~incremental:false] rebuilds both from scratch at every [k] with
    identical queries and verdicts. [deadline] is threaded into every
    base-case BMC run and step-case SAT search; expiry raises
    {!Deadline.Expired} between frames and yields {!Inconclusive} from
    within a search. *)
