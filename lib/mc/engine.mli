(** Engine facade: one entry point per property check, with resource budgets
    and the paper's escalation workflow (try unbounded BDD checking; on
    resource exhaustion fall back to the partitioned POBDD engine and then to
    bounded checking). *)

type strategy =
  | Bdd_forward
  | Bdd_backward
  | Bdd_combined
  | Pobdd  (** partitioned forward reachability *)
  | Bmc
  | Kind  (** SAT-based k-induction (unbounded) *)
  | Ic3  (** IC3/PDR incremental induction (unbounded, {!Ic3}) *)
  | Auto  (** combined BDD → POBDD → BMC escalation *)
  | Portfolio of portfolio
      (** a declarative member list consumed by the scheduler: raced on a
          pool, run as a short-circuiting ladder sequentially *)

and portfolio = { p_name : string; p_members : member list }

and member = { m_strategy : strategy; m_budget : budget }
(** One portfolio entry: an {e atomic} strategy (not [Auto] or a nested
    [Portfolio]) with its own resource budget. *)

and budget = {
  bdd_node_limit : int option;
  pobdd_node_limit : int option;  (** usually larger than [bdd_node_limit] *)
  pobdd_split_vars : int;
  bmc_depth : int;
  induction_max_k : int;
  sat_max_conflicts : int;
  ic3_max_frames : int;  (** IC3 frame-sequence bound *)
  wall_deadline_s : float option;
      (** cooperative wall-clock bound for the whole check, across every
          escalation stage; expiry yields [Resource_out "deadline"] *)
  incremental : bool;
      (** keep one live SAT solver per obligation in BMC/k-induction/IC3
          (clause persistence + learnt-clause retention across depths and
          queries). [false] rebuilds each encoding from scratch — the
          differential-testing oracle, exposed as [--no-incremental] *)
}

val strategy_name : strategy -> string
(** Stable lower-case name, usable in CLI output and cache keys.
    Portfolios render as ["portfolio:<name>"]. *)

val strategy_of_string : string -> strategy option
(** Inverse of {!strategy_name} for the atomic strategies and [Auto] — the
    one strategy-name parser, shared by every CLI entry point. Portfolio
    names are not parsed here (a portfolio is a structured value, not a
    name). Round-trips: [strategy_of_string (strategy_name s) = Some s] for
    every non-portfolio [s]. *)

val default_budget : budget
(** No wall deadline; the node/conflict limits of the seed configuration. *)

val degrade_budget : budget -> budget
(** One rung down the retry ladder: node limits, SAT conflicts and the wall
    deadline halved (never below 1). Used by the campaign when re-running an
    obligation that crashed its worker. *)

val portfolio : name:string -> member list -> portfolio
(** Validated constructor: raises [Invalid_argument] on an empty member
    list or a non-atomic member ([Auto]/nested [Portfolio]). *)

val default_portfolio : budget -> portfolio
(** The standard racing portfolio derived from a base budget:
    [bdd-combined] with a small speculative node cap, [k-induction], [ic3],
    and a full-budget [pobdd] backstop (so every obligation the [Auto]
    ladder decides is still decided). Members carry no private wall
    deadline — the caller's deadline reaches them through the cancellation
    hook. *)

type verdict =
  | Proved
  | Proved_bounded of int  (** BMC only: no violation up to this depth *)
  | Failed of Trace.t
  | Resource_out of string  (** the paper's "time out happens" *)
  | Error of string
      (** the obligation's engine run crashed (raised) and exhausted its
          retries; the message is the final exception. Never produced by
          {!check_netlist} itself — the campaign runtime turns a captured
          worker crash into this verdict so one poisoned obligation cannot
          lose the rest of the campaign. *)

type perf = {
  bdd_peak : int;  (** largest BDD arena across all attempts (0 if none) *)
  bdd_polls : int;  (** manager interrupt-callback polls, summed *)
  fix_iterations : int;  (** reachability fixpoint iterations, summed *)
  peak_set_size : int;  (** largest frontier/reached-set BDD *)
  sat_decisions : int;
  sat_conflicts : int;
  sat_propagations : int;
  sat_restarts : int;
  incremental_reuse : int;
      (** SAT solves answered by a warm persistent solver (incremental
          mode), summed across engines; 0 when scratch mode ran *)
  unroll_depth : int;  (** deepest BMC unroll, [-1] if BMC never ran *)
  final_k : int;  (** k-induction's final [k], [-1] if it never ran *)
  ic3_frames : int;  (** IC3's highest frame, [-1] if it never ran *)
  attempts : string list;  (** engines tried, in escalation order *)
}
(** Per-check work measures, captured whether the check concluded or ran out
    of resources. Attached to every {!outcome}, so cached and replayed
    outcomes carry the perf of the run that produced them — summing over a
    campaign's results is therefore schedule-independent. *)

val empty_perf : perf

type outcome = {
  verdict : verdict;
  engine_used : string;
  time_s : float;
  iterations : int;
  work_nodes : int;  (** BDD nodes allocated or CNF clauses, per engine *)
  perf : perf;
}

val resource_cause : outcome -> string option
(** The canonical cause string of a [Resource_out] verdict — one of
    {!ro_causes} — and [None] for every other verdict. *)

(** {2 Canonical [Resource_out] cause strings}

    Every [Resource_out] verdict an engine emits carries one of these
    constants; downstream consumers (campaign cause tallies, the metrics
    schema, the self-healing layer) match on them instead of re-spelling
    the literals. *)

val ro_deadline : string
(** Wall-clock budget exhausted ({b "deadline"}). *)

val ro_bdd_nodes : string
(** BDD manager node limit hit ({b "bdd-nodes"}). *)

val ro_sat_conflicts : string
(** CDCL conflict budget exhausted ({b "sat-conflicts"}). *)

val ro_kind_inconclusive : string
(** k-induction reached max depth undecided ({b "kind-inconclusive"}). *)

val ro_ic3_frames : string
(** IC3 frame budget exhausted ({b "ic3-frames"}). *)

val ro_cancelled : string
(** A racing sibling concluded first ({b "cancelled"}). *)

val ro_heal_exhausted : string
(** Self-healing ran out of CEGAR iterations or usable cuts
    ({b "heal-exhausted"}). *)

val ro_causes : string list
(** All canonical causes, in a fixed documentation order. *)

val conclusive : outcome -> bool
(** [Proved] or [Failed]: a verdict that settles the obligation. Bounded
    proofs, resource-outs and errors are inconclusive — a racing sibling
    must not be cancelled on their account. *)

val combine_portfolio : outcome list -> outcome
(** Fold an index-ordered list of member outcomes into the attributed
    portfolio outcome. The attribution prefix runs from member 0 through
    the first {!conclusive} member (the whole list when none concludes);
    the winner is the best-ranked outcome of that prefix (conclusive >
    bounded-deeper > resource-out > error, ties to the smallest index),
    and the combined [perf] merges exactly the prefix — never the
    schedule-dependent members a race may or may not have started beyond
    it. Both the sequential ladder and the racing scheduler report through
    this one function, which is what keeps seq ≡ race aggregates
    byte-identical. *)

val check_netlist :
  ?budget:budget ->
  ?constraint_signal:string ->
  ?cancel:(unit -> bool) ->
  strategy:strategy ->
  Rtl.Netlist.t ->
  ok_signal:string ->
  outcome
(** Check that the 1-bit [ok_signal] holds in every reachable state.
    [constraint_signal] names a 1-bit combinational function of the primary
    inputs; only inputs satisfying it are explored (invariant input
    assumptions). When [budget.wall_deadline_s] is set, the deadline is
    fixed on entry and polled cooperatively in every engine loop (BDD
    fixpoint iterations and node allocations, POBDD partitions, BMC unroll
    frames, CDCL search steps, IC3 obligations); an expired deadline yields
    [Resource_out "deadline"] in bounded time instead of hanging.

    [cancel] is an external cooperative stop hook polled at the same sites
    as the deadline — the racing scheduler's cancellation path. A check cut
    short by [cancel] (with the wall clock still unexpired) yields
    [Resource_out "cancelled"]. A [Portfolio] strategy runs its members in
    order with the enclosing deadline and [cancel] threaded into each, and
    short-circuits on the first conclusive member. *)

val instrumented_netlist :
  Rtl.Mdl.t ->
  assert_:Psl.Ast.fl ->
  assumes:Psl.Ast.fl list ->
  Rtl.Netlist.t * string * string option
(** The preparation half of {!check_property}: inline the property's boolean
    layer, prune irrelevant assumptions, lower invariant input assumptions to
    an engine-level constraint, synthesize the safety monitor, elaborate and
    cone-reduce. Returns [(netlist, ok_signal, constraint_signal)] — exactly
    what {!check_netlist} consumes. {!Obligation.prepare} builds on this to
    make the prepared check a first-class, schedulable value. *)

val replay_model :
  Rtl.Mdl.t ->
  assert_:Psl.Ast.fl ->
  assumes:Psl.Ast.fl list ->
  Rtl.Netlist.t * string * string option
(** {!instrumented_netlist} without the final cone-of-influence reduction:
    the same inlining, assumption pruning, constraint lowering and monitor
    synthesis, but every module signal is kept. This is the model the
    diagnosis layer replays counterexamples on — the simulator cross-check
    then exercises an independently-prepared model (no COI), and the replay
    exposes the full internal/output signal set (e.g. the [HE] report bus)
    that the reduced engine model may have pruned away. Inputs of the
    reduced model are a subset of this model's inputs; replaying a reduced
    trace with the pruned inputs held at zero cannot change the property
    cone (that is what the COI reduction proved). *)

val prepare_module :
  Rtl.Mdl.t ->
  props:(string * Psl.Ast.fl * Psl.Ast.fl list) list ->
  (string * (Rtl.Netlist.t * string * string option)) list
(** Shared preparation for all properties of one module: the module-level
    work (inliner tables, the pruner's raw elaboration, monitor weaving,
    the single full elaborate) runs once, then each property gets its own
    cone-of-influence reduction from its own monitor roots. Input is
    [(name, assert, assumes)] per property; output pairs each name with
    exactly what {!instrumented_netlist} would have returned for it: each
    property's cone holds only its own monitor (monitors are independent
    cones), and the weaving prefix is folded back to the unshared path's
    [mon], so the reduced models are name-identical — same canonical
    fingerprints, and trace register names stay replayable against
    {!replay_model} — at roughly [1/n] of the preparation cost for an
    [n]-property module. *)

val check_property :
  ?budget:budget ->
  ?strategy:strategy ->
  Rtl.Mdl.t ->
  assert_:Psl.Ast.fl ->
  assumes:Psl.Ast.fl list ->
  outcome
(** Instrument a leaf module with the property monitor, elaborate it in
    isolation, and check. This is the paper's per-leaf-module model-checking
    step. [strategy] defaults to [Auto]. *)

val problem_size :
  Rtl.Mdl.t -> assert_:Psl.Ast.fl -> assumes:Psl.Ast.fl list -> int * int
(** [(state bits, input bits)] of the instrumented, cone-reduced model the
    engines would actually check — the paper's "problem size of the
    properties". *)

val check_vunit :
  ?budget:budget ->
  ?strategy:strategy ->
  Rtl.Mdl.t ->
  Psl.Ast.vunit ->
  (string * outcome) list
(** Run every [assert] of a vunit against the module, under all its
    [assume]s. Returns per-property outcomes keyed by property name. *)
