(** SAT-based bounded model checking: unroll the netlist one time frame at a
    time and ask the CDCL solver for a violating path at each depth.

    The checker is incremental by default: one live solver per obligation,
    with depth [k+1] extending depth [k]'s CNF (per-frame bad literals are
    solved as assumptions, so nothing needs retiring) and every learnt
    clause retained. [~incremental:false] rebuilds the encoding and solver
    from scratch at every depth — same queries, same verdicts, used as the
    differential-testing oracle. *)

type stats = {
  depth : int;
  cnf_vars : int;
  cnf_clauses : int;
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  reused : int;
      (** solves answered by a warm solver (0 in scratch mode) *)
}

type result =
  | No_violation_upto of int * stats  (** UNSAT at every depth up to this *)
  | Violation of Trace.t * stats
  | Inconclusive of stats  (** solver conflict budget exhausted *)

val check :
  ?incremental:bool ->
  ?max_conflicts:int ->
  ?deadline:Deadline.t ->
  ?constraint_signal:string ->
  Rtl.Netlist.t ->
  ok_signal:string ->
  depth:int ->
  result
(** Checks whether [ok_signal] (1 bit) can be 0 in any of cycles
    [0 .. depth], by iterative deepening: one solve per depth, so a
    violation is found at its minimum depth. When [constraint_signal] is
    given (a 1-bit combinational function of the inputs), it is asserted in
    every unrolled frame, so only constraint-satisfying stimulus is
    considered. [deadline] is polled once per depth (raising
    {!Deadline.Expired}) and passed to the SAT search as its [should_stop]
    callback (yielding {!Inconclusive}). [max_conflicts] bounds each
    per-depth solve. *)

val find_shortest :
  ?incremental:bool ->
  ?max_conflicts:int ->
  ?deadline:Deadline.t ->
  ?constraint_signal:string ->
  Rtl.Netlist.t ->
  ok_signal:string ->
  max_depth:int ->
  result
(** Same as {!check} (which already deepens iteratively); kept as the
    explicit shortest-counterexample entry point. *)

(** {1 Incremental context}

    Exposed so k-induction (base case) and the differential test suite can
    drive the per-depth queries directly. *)

type inc

val create_inc :
  ?constraint_signal:string -> Rtl.Netlist.t -> ok_signal:string -> inc

val solve_depth :
  ?max_conflicts:int ->
  ?should_stop:(unit -> bool) ->
  inc ->
  depth:int ->
  [ `No_violation | `Violation of Trace.t | `Unknown ] * Solver.stats
(** Solve "bad at exactly [depth]" (frames [<depth] must already have been
    proven clean for the bounded-violation reading), extending the live
    encoding as needed. Returns the per-call solver stats. *)

val inc_cnf_vars : inc -> int
val inc_cnf_clauses : inc -> int
