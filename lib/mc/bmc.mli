(** SAT-based bounded model checking: unroll the netlist for a fixed number
    of time frames and ask the CDCL solver for a violating path. *)

type stats = {
  depth : int;
  cnf_vars : int;
  cnf_clauses : int;
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
}

type result =
  | No_violation_upto of int * stats  (** UNSAT at this depth *)
  | Violation of Trace.t * stats
  | Inconclusive of stats  (** solver conflict budget exhausted *)

val check :
  ?max_conflicts:int ->
  ?deadline:Deadline.t ->
  ?constraint_signal:string ->
  Rtl.Netlist.t ->
  ok_signal:string ->
  depth:int ->
  result
(** Checks whether [ok_signal] (1 bit) can be 0 in any of cycles
    [0 .. depth]. When [constraint_signal] is given (a 1-bit combinational
    function of the inputs), it is asserted in every unrolled frame, so only
    constraint-satisfying stimulus is considered. [deadline] is polled once
    per unrolled frame (raising {!Deadline.Expired}) and passed to the SAT
    search as its [should_stop] callback (yielding {!Inconclusive}). *)

val find_shortest :
  ?max_conflicts:int ->
  ?deadline:Deadline.t ->
  ?constraint_signal:string ->
  Rtl.Netlist.t ->
  ok_signal:string ->
  max_depth:int ->
  result
(** Iterative deepening: solve at depths 0, 1, 2, ... so the first violation
    found is a minimum-length counterexample (one SAT call per depth; the
    single-shot {!check} may return any depth up to its bound). *)
