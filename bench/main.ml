(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, plus a Bechamel micro-benchmark suite (one Test.make
   per table/figure kernel).

     dune exec bench/main.exe             -- regenerate everything
     dune exec bench/main.exe -- table2   -- one artifact only
     dune exec bench/main.exe -- micro    -- Bechamel micro-benchmarks

   Artifacts: table1 table2 racing healing incremental table3 table4 timing
   fig7 fuzz micro *)

let header title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 72 '=') title (String.make 72 '=')

let chip = lazy (Chip.Generator.generate ())
let clean_chip = lazy (Chip.Generator.generate ~with_bugs:false ())

let table1 () =
  header "Table 1: chip implementation (synthetic reproduction)";
  Format.printf "%a" Core.Report.pp_table1 (Core.Report.table1 (Lazy.force chip))

(* one structural result cache for the whole bench run: the post-fix
   re-campaign of table2 reuses every verdict whose module the fixes did not
   touch instead of re-proving it *)
let campaign_cache = Mc.Cache.create ()

let campaign_jobs =
  match Sys.getenv_opt "DICHECK_JOBS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> max 1 (min 8 (Domain.recommended_domain_count ()))

(* every campaign the bench runs, in order, for BENCH_campaign.json *)
let campaign_runs : (string * Core.Campaign.t) list ref = ref []

(* (ladder label, racing label) once the racing artifact has run both *)
let racing_info : (string * string) option ref = ref None

(* (starved label, healed label) once the healing artifact has run both *)
let healing_info : (string * string) option ref = ref None

(* (scratch label, incremental label) once the incremental artifact has run *)
let incremental_info : (string * string) option ref = ref None

let run_campaign ?budget ?strategy ?portfolio ?race_jobs ?self_heal
    ?(cache = campaign_cache) label chip =
  let t0 = Unix.gettimeofday () in
  let last = ref 0.0 in
  (* heartbeats go to stderr (fixed 10s interval) so stdout stays a clean
     artifact stream *)
  let progress (p : Core.Campaign.progress) =
    let now = Unix.gettimeofday () in
    if now -. !last > 10.0 then begin
      last := now;
      Printf.eprintf "  ... %s: %d/%d properties (%.0fs)\n%!" label
        p.Core.Campaign.done_ p.Core.Campaign.total (now -. t0)
    end
  in
  let c =
    Core.Campaign.run ?budget ?strategy ?portfolio ~progress
      ~jobs:campaign_jobs ?race_jobs ?self_heal ~cache chip
  in
  Printf.printf
    "  %s: %.1fs on %d jobs, %d/%d verdicts from cache\n%!" label
    c.Core.Campaign.wall_time_s campaign_jobs c.Core.Campaign.cache_hits
    (List.length c.Core.Campaign.results);
  campaign_runs := !campaign_runs @ [ (label, c) ];
  c

(* machine-readable campaign benchmark record, written on every bench run
   (schema "dicheck-bench-v1"; empty "runs" when no campaign artifact ran) *)
let write_bench_json path =
  let module J = Obs.Json in
  let run_json (label, (c : Core.Campaign.t)) =
    let g = c.Core.Campaign.grand_total in
    let p = Core.Campaign.aggregate_perf c in
    J.Obj
      ([ ("label", J.String label);
        ("wall_s", J.Float c.Core.Campaign.wall_time_s);
        ("jobs", J.Int campaign_jobs);
        ("properties", J.Int g.Core.Campaign.total);
        ("proved", J.Int g.Core.Campaign.proved);
        ("failed", J.Int g.Core.Campaign.failed);
        ("resource_out", J.Int g.Core.Campaign.resource_out);
        ("errors", J.Int g.Core.Campaign.errors);
        ("cache_hits", J.Int c.Core.Campaign.cache_hits);
        ("replayed", J.Int c.Core.Campaign.replayed);
        ("retries", J.Int c.Core.Campaign.retries);
        ("engine_time_s", J.Float p.Core.Campaign.engine_time_s);
        ("engine_attempts", J.Int p.Core.Campaign.engine_attempts);
        ("fix_iterations", J.Int p.Core.Campaign.fix_iterations);
        ("bdd_peak", J.Int p.Core.Campaign.bdd_peak);
        ("sat_decisions", J.Int p.Core.Campaign.sat_decisions);
        ("sat_conflicts", J.Int p.Core.Campaign.sat_conflicts);
        ("sat_propagations", J.Int p.Core.Campaign.sat_propagations);
        ("max_unroll_depth", J.Int p.Core.Campaign.max_unroll_depth);
        ("max_final_k", J.Int p.Core.Campaign.max_final_k);
        ("max_ic3_frames", J.Int p.Core.Campaign.max_ic3_frames);
        ("strategy_wins",
         J.Obj
           (List.map
              (fun (e, n) -> (e, J.Int n))
              (Core.Campaign.wins_by_engine c))) ]
      @
      (match c.Core.Campaign.healing with
      | None -> []
      | Some h ->
        [ ("healing",
           J.Obj
             [ ("attempted", J.Int h.Core.Campaign.heal_attempted);
               ("recovered", J.Int h.Core.Campaign.heal_recovered);
               ("healed_proved", J.Int h.Core.Campaign.heal_proved);
               ("healed_failed", J.Int h.Core.Campaign.heal_failed);
               ("exhausted", J.Int h.Core.Campaign.heal_exhausted);
               ("unhealable", J.Int h.Core.Campaign.heal_unhealable);
               ("spurious_cex", J.Int h.Core.Campaign.heal_spurious);
               ("cegar_iters", J.Int h.Core.Campaign.heal_cegar_iters);
               ("subs_proved", J.Int h.Core.Campaign.heal_subs_proved);
               ("bad_cuts", J.Int h.Core.Campaign.heal_bad_cuts);
               ("pieces", J.Int h.Core.Campaign.heal_pieces);
               ("wall_s", J.Float h.Core.Campaign.heal_wall_s) ]) ]))
  in
  let racing_json =
    match !racing_info with
    | None -> []
    | Some (ladder_label, racing_label) -> (
      match
        ( List.assoc_opt ladder_label !campaign_runs,
          List.assoc_opt racing_label !campaign_runs )
      with
      | Some l, Some r ->
        let lw = l.Core.Campaign.wall_time_s
        and rw = r.Core.Campaign.wall_time_s in
        [ ("racing",
           J.Obj
             [ ("ladder_label", J.String ladder_label);
               ("racing_label", J.String racing_label);
               ("ladder_wall_s", J.Float lw);
               ("racing_wall_s", J.Float rw);
               ("speedup", J.Float (lw /. Float.max rw 1e-9)) ]) ]
      | _ -> [])
  in
  let healing_json =
    match !healing_info with
    | None -> []
    | Some (starved_label, healed_label) -> (
      match
        ( List.assoc_opt starved_label !campaign_runs,
          List.assoc_opt healed_label !campaign_runs )
      with
      | Some s, Some h ->
        let ro (c : Core.Campaign.t) =
          c.Core.Campaign.grand_total.Core.Campaign.resource_out
        in
        let recovered =
          match h.Core.Campaign.healing with
          | Some t -> t.Core.Campaign.heal_recovered
          | None -> 0
        in
        [ ("healing",
           J.Obj
             [ ("starved_label", J.String starved_label);
               ("healed_label", J.String healed_label);
               ("resource_out_before", J.Int (ro s));
               ("resource_out_after", J.Int (ro h));
               ("recovered", J.Int recovered);
               ("recovery_rate",
                J.Float
                  (float_of_int recovered /. float_of_int (max (ro s) 1))) ]) ]
      | _ -> [])
  in
  let incremental_json =
    match !incremental_info with
    | None -> []
    | Some (scratch_label, inc_label) -> (
      match
        ( List.assoc_opt scratch_label !campaign_runs,
          List.assoc_opt inc_label !campaign_runs )
      with
      | Some s, Some i ->
        let g (c : Core.Campaign.t) = c.Core.Campaign.grand_total in
        let sw = s.Core.Campaign.wall_time_s
        and iw = i.Core.Campaign.wall_time_s in
        let identical =
          let a = g s and b = g i in
          a.Core.Campaign.proved = b.Core.Campaign.proved
          && a.Core.Campaign.failed = b.Core.Campaign.failed
          && a.Core.Campaign.resource_out = b.Core.Campaign.resource_out
          && a.Core.Campaign.errors = b.Core.Campaign.errors
        in
        [ ("incremental",
           J.Obj
             [ ("scratch_label", J.String scratch_label);
               ("incremental_label", J.String inc_label);
               ("scratch_wall_s", J.Float sw);
               ("incremental_wall_s", J.Float iw);
               ("scratch_obligations_per_s",
                J.Float
                  (float_of_int (g s).Core.Campaign.total
                  /. Float.max sw 1e-9));
               ("incremental_obligations_per_s",
                J.Float
                  (float_of_int (g i).Core.Campaign.total
                  /. Float.max iw 1e-9));
               ("speedup", J.Float (sw /. Float.max iw 1e-9));
               ("verdicts_identical", J.Bool identical) ]) ]
      | _ -> [])
  in
  let j =
    J.Obj
      ([ ("schema", J.String "dicheck-bench-v1");
         ("generated_at_unix", J.Float (Unix.gettimeofday ()));
         ("jobs", J.Int campaign_jobs);
         ("runs", J.List (List.map run_json !campaign_runs)) ]
      @ racing_json @ healing_json @ incremental_json)
  in
  let oc = open_out path in
  (try output_string oc (J.to_string_pretty j)
   with e ->
     close_out oc;
     raise e);
  close_out oc;
  Printf.eprintf "campaign benchmark data written to %s\n%!" path

let table2 () =
  header
    "Table 2: number of verified properties (full formal campaign, pre-fix \
     chip)";
  let c = run_campaign "pre-fix" (Lazy.force chip) in
  Format.printf "%a" Core.Campaign.pp_table2 c;
  Printf.printf
    "\n%d properties proved, %d failed (the seeded bugs), %d resource-outs\n"
    c.Core.Campaign.grand_total.Core.Campaign.proved
    c.Core.Campaign.grand_total.Core.Campaign.failed
    c.Core.Campaign.grand_total.Core.Campaign.resource_out;
  Printf.printf
    "campaign wall time: %.1fs (paper: ~20h on a 2004 workstation)\n"
    c.Core.Campaign.wall_time_s;
  List.iter
    (fun (r : Core.Campaign.prop_result) ->
      Printf.printf "  failed: %-12s %-28s (%s)\n" r.Core.Campaign.module_name
        r.Core.Campaign.prop_name
        (match r.Core.Campaign.bug with
         | Some b -> Chip.Bugs.name b
         | None -> "UNEXPECTED"))
    (Core.Campaign.failed_results c);
  header "Table 2 follow-up: post-fix chip (all 2047 properties must verify)";
  let c' = run_campaign "post-fix" (Lazy.force clean_chip) in
  Format.printf "%a" Core.Campaign.pp_table2 c';
  Printf.printf "failures on the fixed chip: %d (paper: all 2047 verified)\n"
    c'.Core.Campaign.grand_total.Core.Campaign.failed

(* Portfolio racing vs the sequential escalation ladder, under an equal
   constrained budget. The default budget never escalates (bdd-combined
   decides all 2047 obligations inside its node limit), so the effect the
   scheduler exists for — overlapping a ladder's serial stages — is
   measured where the ladder actually ladders: a small BDD node cap makes
   the same obligations escalate under both configurations, then Auto pays
   its rungs in sequence while the portfolio races them. Fresh caches on
   both sides keep the comparison cold. *)
let racing () =
  header "Portfolio racing vs the auto ladder (constrained budget)";
  let base =
    { Mc.Engine.default_budget with Mc.Engine.bdd_node_limit = Some 5_000 }
  in
  let auto =
    run_campaign ~budget:base
      ~cache:(Mc.Cache.create ())
      "auto-constrained" (Lazy.force chip)
  in
  let race =
    run_campaign ~budget:base
      ~portfolio:(Mc.Engine.default_portfolio base)
      ~race_jobs:campaign_jobs
      ~cache:(Mc.Cache.create ())
      "race-constrained" (Lazy.force chip)
  in
  racing_info := Some ("auto-constrained", "race-constrained");
  let g (c : Core.Campaign.t) = c.Core.Campaign.grand_total in
  Printf.printf "  verdict totals identical: %b\n"
    (let a = g auto and r = g race in
     a.Core.Campaign.proved = r.Core.Campaign.proved
     && a.Core.Campaign.failed = r.Core.Campaign.failed
     && a.Core.Campaign.resource_out = r.Core.Campaign.resource_out
     && a.Core.Campaign.errors = r.Core.Campaign.errors);
  Printf.printf "  strategy wins (racing):%s\n"
    (String.concat ""
       (List.map
          (fun (e, n) -> Printf.sprintf " %s=%d" e n)
          (Core.Campaign.wins_by_engine race)));
  Printf.printf "  ladder %.1fs, racing %.1fs -> speedup %.2fx\n"
    auto.Core.Campaign.wall_time_s race.Core.Campaign.wall_time_s
    (auto.Core.Campaign.wall_time_s
    /. Float.max race.Core.Campaign.wall_time_s 1e-9)

(* Self-healing under a starving budget: the same 2047-obligation campaign
   twice, with the BDD arena capped where the filler cones exhaust it —
   once plain (hundreds of resource-outs) and once with the automatic
   Figure 7 recovery pass, which partitions each starved cone, re-proves
   the pieces inside the very same budget and recombines them by
   assume-guarantee. Fresh caches on both sides keep the comparison cold. *)
let healing () =
  header "Self-healing recovery under a starving budget (--self-heal)";
  let starved =
    { Mc.Engine.default_budget with
      Mc.Engine.bdd_node_limit = Some 2_000;
      Mc.Engine.pobdd_node_limit = Some 2_000 }
  in
  let portfolio =
    Mc.Engine.portfolio ~name:"bdd-combined"
      [ { Mc.Engine.m_strategy = Mc.Engine.Bdd_combined; m_budget = starved } ]
  in
  let plain =
    run_campaign ~budget:starved ~portfolio
      ~cache:(Mc.Cache.create ())
      "starved" (Lazy.force chip)
  in
  let healed =
    run_campaign ~budget:starved ~portfolio ~self_heal:4
      ~cache:(Mc.Cache.create ())
      "starved-healed" (Lazy.force chip)
  in
  healing_info := Some ("starved", "starved-healed");
  let g (c : Core.Campaign.t) = c.Core.Campaign.grand_total in
  Printf.printf "  resource-outs: %d starved -> %d after healing\n"
    (g plain).Core.Campaign.resource_out (g healed).Core.Campaign.resource_out;
  (match healed.Core.Campaign.healing with
   | Some h ->
     Printf.printf
       "  recovered %d of %d (%d proved, %d real failures; %d spurious cex, \
        %d CEGAR iterations, %d pieces)\n"
       h.Core.Campaign.heal_recovered h.Core.Campaign.heal_attempted
       h.Core.Campaign.heal_proved h.Core.Campaign.heal_failed
       h.Core.Campaign.heal_spurious h.Core.Campaign.heal_cegar_iters
       h.Core.Campaign.heal_pieces
   | None -> ());
  Printf.printf "  verdict flips vs starved run: %b (must be false)\n"
    ((g plain).Core.Campaign.failed <> (g healed).Core.Campaign.failed)

(* Incremental SAT vs rebuild-from-scratch, on the configuration where the
   solver actually carries state between queries: the full 2047-obligation
   campaign pinned to the BMC strategy, whose iterative deepening is one
   growing CNF per obligation. The scratch side is exactly what
   [--no-incremental] runs (each depth re-encoded and re-solved from
   nothing); the incremental side is the default. Fresh caches on both
   sides keep the comparison cold, and the verdict totals must be
   identical — the speedup lands in BENCH_campaign.json under
   "incremental", where CI gates it at >= 3x. *)
let incremental () =
  header "Incremental SAT vs scratch re-encoding (BMC strategy, full campaign)";
  (* depth 40 (double the default) so solving dominates the shared
     per-module preparation: iterative deepening to depth d costs the
     scratch side O(d^2) re-encoded frames and the incremental side O(d) *)
  let base = { Mc.Engine.default_budget with Mc.Engine.bmc_depth = 40 } in
  let scratch =
    run_campaign
      ~budget:{ base with Mc.Engine.incremental = false }
      ~strategy:Mc.Engine.Bmc
      ~cache:(Mc.Cache.create ())
      "bmc-scratch" (Lazy.force chip)
  in
  let inc =
    run_campaign ~budget:base ~strategy:Mc.Engine.Bmc
      ~cache:(Mc.Cache.create ())
      "bmc-incremental" (Lazy.force chip)
  in
  incremental_info := Some ("bmc-scratch", "bmc-incremental");
  let g (c : Core.Campaign.t) = c.Core.Campaign.grand_total in
  Printf.printf "  verdict totals identical: %b\n"
    (let s = g scratch and i = g inc in
     s.Core.Campaign.proved = i.Core.Campaign.proved
     && s.Core.Campaign.failed = i.Core.Campaign.failed
     && s.Core.Campaign.resource_out = i.Core.Campaign.resource_out
     && s.Core.Campaign.errors = i.Core.Campaign.errors);
  let sw = scratch.Core.Campaign.wall_time_s
  and iw = inc.Core.Campaign.wall_time_s in
  Printf.printf
    "  scratch %.1fs (%.1f obligations/s), incremental %.1fs (%.1f \
     obligations/s) -> speedup %.2fx\n"
    sw
    (float_of_int (g scratch).Core.Campaign.total /. Float.max sw 1e-9)
    iw
    (float_of_int (g inc).Core.Campaign.total /. Float.max iw 1e-9)
    (sw /. Float.max iw 1e-9);
  Printf.printf "  incremental reuse: %d warm solves\n"
    (List.fold_left
       (fun a (r : Core.Campaign.prop_result) ->
         a
         + r.Core.Campaign.outcome.Mc.Engine.perf
             .Mc.Engine.incremental_reuse)
       0 inc.Core.Campaign.results)

let table3 () =
  header "Table 3: classification of logic bugs";
  let results = Core.Classify.run (Lazy.force chip) in
  Format.printf "%a" Core.Classify.pp_table3 results;
  Printf.printf "\nformal side:\n";
  List.iter
    (fun (r : Core.Classify.result) ->
      Printf.printf
        "  %s in %-12s exposed by %-22s in %.3fs, %s-cycle counterexample\n"
        (Chip.Bugs.name r.Core.Classify.bug)
        r.Core.Classify.module_name
        (Option.value ~default:"-" r.Core.Classify.prop_name)
        r.Core.Classify.formal_time_s
        (match r.Core.Classify.trace_len with
         | Some n -> string_of_int n
         | None -> "?"))
    results;
  let matches =
    List.for_all
      (fun (r : Core.Classify.result) ->
        r.Core.Classify.observed_cls = Some r.Core.Classify.expected_cls
        && r.Core.Classify.sim_easy = r.Core.Classify.expected_easy)
      results
  in
  Printf.printf "\nshape matches the paper's Table 3: %b\n" matches

let table4 () =
  header "Table 4: area increase caused by the error injection feature";
  Format.printf "%a" Core.Report.pp_table4 (Core.Report.table4 (Lazy.force chip));
  Printf.printf "(paper: A 1.4%%, B 0.4%%, D 0.2%%; C and E not published)\n"

let timing () =
  header "Timing impact of the injection selector (paper: ~200ps, ~4-5%)";
  Format.printf "%a" Core.Report.pp_timing
    (Core.Report.timing_impact (Lazy.force chip))

let fig7 () =
  header "Figure 7: partitioning a property for divide and conquer";
  Format.printf "%a" Core.Report.pp_fig7
    (Core.Report.fig7 ~payload_width:16 ~node_limit:100_000 ())

(* ---- differential fuzz throughput (BENCH_fuzz.json) ---- *)

let fuzz () =
  header "Differential fuzz throughput (dicheck fuzz)";
  let config =
    { Qa.Fuzz.default_config with Qa.Fuzz.seed = 42; count = 15 }
  in
  let s = Qa.Fuzz.run config in
  Printf.printf
    "%d designs, %d obligations, %d engine runs in %.1fs\n\
     %.1f designs/s, %.1f obligations/s\n\
     discrepancies: %d; mutation kill: %d/%d\n"
    s.Qa.Fuzz.cases_run s.Qa.Fuzz.obligations s.Qa.Fuzz.engine_runs
    s.Qa.Fuzz.elapsed_s
    (float_of_int s.Qa.Fuzz.cases_run /. max s.Qa.Fuzz.elapsed_s 1e-9)
    (float_of_int s.Qa.Fuzz.obligations /. max s.Qa.Fuzz.elapsed_s 1e-9)
    (List.length s.Qa.Fuzz.discrepancies)
    (List.fold_left (fun a (_, d, _) -> a + d) 0 s.Qa.Fuzz.kill_table)
    (List.fold_left (fun a (_, _, t) -> a + t) 0 s.Qa.Fuzz.kill_table);
  let module J = Obs.Json in
  let j =
    J.Obj
      [ ("schema", J.String "dicheck-fuzz-bench-v1");
        ("generated_at_unix", J.Float (Unix.gettimeofday ()));
        ("summary", Qa.Fuzz.summary_json s) ]
  in
  let oc = open_out "BENCH_fuzz.json" in
  (try output_string oc (J.to_string_pretty j)
   with e ->
     close_out oc;
     raise e);
  close_out oc;
  Printf.eprintf "fuzz benchmark data written to BENCH_fuzz.json\n%!"

(* ---- Bechamel micro-benchmarks: one kernel per table/figure ---- *)

let micro () =
  let open Bechamel in
  let chip = Lazy.force chip in
  let _, alu = Chip.Generator.find_unit chip Chip.Bugs.B4 in
  let alu_mdl = alu.Chip.Generator.info.Verifiable.Transform.mdl in
  let soundness = Psl.Parser.fl_of_string "never HE[0]" in
  let assumes =
    [ Psl.Parser.fl_of_string "always (^A)";
      Psl.Parser.fl_of_string "always (^B)";
      Psl.Parser.fl_of_string "always (~I_ERR_INJ_C)" ]
  in
  let cat_a =
    List.find
      (fun (c : Chip.Generator.category) -> c.Chip.Generator.cat_name = "A")
      chip.Chip.Generator.categories
  in
  let merge_leaf = Chip.Archetype.merge ~name:"bench_merge" ~payload_width:8 () in
  let merge_info = Verifiable.Transform.apply merge_leaf.Chip.Archetype.mdl in
  let merge_spec =
    { Verifiable.Propgen.he = merge_leaf.Chip.Archetype.he;
      he_map = merge_leaf.Chip.Archetype.he_map;
      parity_inputs = merge_leaf.Chip.Archetype.parity_inputs;
      parity_outputs = merge_leaf.Chip.Archetype.parity_outputs; extra = [] }
  in
  let merge_plan =
    Verifiable.Partition.partition merge_info merge_spec ~output:"OUT"
      ~cuts:[ "chk0"; "chk1"; "chk2" ]
  in
  let sub_vunit = snd (List.hd merge_plan.Verifiable.Partition.sub_vunits) in
  let classify_sim () =
    let nl =
      Rtl.Elaborate.run
        (Rtl.Design.of_modules [ alu_mdl ])
        ~top:alu_mdl.Rtl.Mdl.name
    in
    let sim = Sim.Simulator.create nl in
    let profile = Sim.Stimulus.legal_profile ~parity_inputs:[ "A"; "B" ] nl in
    ignore
      (Sim.Testbench.run_random sim profile ~cycles:1_000 ~seed:7
         ~watch:[ "HE" ])
  in
  let tests =
    [ Test.make ~name:"table1/chip-generation-and-gate-count"
        (Staged.stage (fun () ->
             let t = Chip.Generator.generate () in
             ignore
               (Synth.Area.gates_estimate t.Chip.Generator.design
                  ~root:t.Chip.Generator.chip_top)));
      Test.make ~name:"table2/one-property-model-check"
        (Staged.stage (fun () ->
             ignore
               (Mc.Engine.check_property alu_mdl ~assert_:soundness ~assumes)));
      Test.make ~name:"table3/random-simulation-1k-cycles"
        (Staged.stage classify_sim);
      Test.make ~name:"table4/category-A-area-delta"
        (Staged.stage (fun () ->
             ignore
               (Synth.Area.hierarchy_area chip.Chip.Generator.design
                  ~root:cat_a.Chip.Generator.top)));
      Test.make ~name:"timing/alu-static-timing"
        (Staged.stage (fun () ->
             let nl =
               Rtl.Elaborate.run
                 (Rtl.Design.of_modules [ alu_mdl ])
                 ~top:alu_mdl.Rtl.Mdl.name
             in
             ignore (Synth.Timing.analyze nl)));
      Test.make ~name:"fig7/one-partitioned-sub-property"
        (Staged.stage (fun () ->
             ignore
               (Mc.Engine.check_vunit ~strategy:Mc.Engine.Bdd_forward
                  merge_info.Verifiable.Transform.mdl sub_vunit))) ]
  in
  header "Bechamel micro-benchmarks (monotonic clock, OLS ns/run)";
  List.iter
    (fun test ->
      let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
      let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-44s %14.0f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "%-44s (no estimate)\n%!" name)
        results)
    tests

let artifacts =
  [ ("table1", table1); ("table2", table2); ("racing", racing);
    ("healing", healing); ("incremental", incremental); ("table3", table3);
    ("table4", table4); ("timing", timing); ("fig7", fig7); ("fuzz", fuzz);
    ("micro", micro) ]

(* [bench diff BASE CUR [--threshold=X]]: compare two BENCH json files and
   exit 1 on a regression verdict — the CI trend gate. Handled before the
   artifact dispatch so it neither runs campaigns nor rewrites
   BENCH_campaign.json. *)
let run_diff base_path cur_path threshold =
  let load path =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error e ->
      Printf.eprintf "bench diff: %s\n" e;
      exit 2
    | s ->
      (match Obs.Json.parse s with
       | Ok j -> j
       | Error e ->
         Printf.eprintf "bench diff: %s: %s\n" path e;
         exit 2)
  in
  let baseline = load base_path and current = load cur_path in
  match Obs.Bench_diff.diff ~threshold ~baseline ~current () with
  | Error e ->
    Printf.eprintf "bench diff: %s\n" e;
    exit 2
  | Ok d ->
    Format.printf "%a%!" Obs.Bench_diff.pp d;
    exit (if d.Obs.Bench_diff.ok then 0 else 1)

let () =
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  (match args with
   | "diff" :: rest ->
     let threshold = ref 0.2 in
     let files =
       List.filter
         (fun a ->
           match String.length a >= 12 && String.sub a 0 12 = "--threshold=" with
           | true ->
             (match
                float_of_string_opt
                  (String.sub a 12 (String.length a - 12))
              with
              | Some t when t > 0.0 ->
                threshold := t;
                false
              | Some _ | None ->
                Printf.eprintf "bench diff: bad %s\n" a;
                exit 2)
           | false -> true)
         rest
     in
     (match files with
      | [ base; cur ] -> run_diff base cur !threshold
      | _ ->
        Printf.eprintf
          "usage: bench diff BASELINE.json CURRENT.json [--threshold=0.2]\n";
        exit 2)
   | _ -> ());
  (match args with
   | [] -> List.iter (fun (_, f) -> f ()) artifacts
   | names ->
     List.iter
       (fun name ->
         match List.assoc_opt name artifacts with
         | Some f -> f ()
         | None ->
           Printf.eprintf "unknown artifact %s; available: %s\n" name
             (String.concat " " (List.map fst artifacts));
           exit 1)
       names);
  write_bench_json "BENCH_campaign.json"
