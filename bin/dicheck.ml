(* dicheck — command-line driver for the data-integrity methodology.

   Subcommands:
     campaign   run the formal campaign over the synthetic chip (Table 2)
     explain    diagnose one falsified obligation (replay, minimize, cone)
     report     render a campaign diagnosis directory as an HTML drill-down
     classify   bug classification, formal vs simulation (Table 3)
     area       area cost of the injection feature (Tables 1 and 4)
     fig7       divide-and-conquer partitioning experiment
     check      model-check a PSL file against a named chip archetype
     emit       print an archetype's (Verifiable) RTL as Verilog or its PSL
     fuzz       differential fuzzing: cross-engine verdicts, replay
                validation, mutation gauntlet, shrunk reproducers *)

open Cmdliner

let archetype_names =
  [ "fsm_ctrl"; "counter"; "csr"; "macro_if"; "datapath"; "decoder"; "merge";
    "fifo" ]

let make_archetype ?(bug = false) name =
  match name with
  | "fsm_ctrl" -> Chip.Archetype.fsm_ctrl ~name ~bug ()
  | "counter" -> Chip.Archetype.counter ~name ~bug ()
  | "csr" -> Chip.Archetype.csr ~name ~bug ()
  | "macro_if" -> Chip.Archetype.macro_if ~name ~bug ()
  | "datapath" -> Chip.Archetype.datapath ~name ~bug ()
  | "decoder" ->
    Chip.Archetype.decoder ~name
      ?bug:(if bug then Some (Chip.Bugs.B5, 37, 0x5A) else None)
      ()
  | "merge" -> Chip.Archetype.merge ~name ()
  | "fifo" -> Chip.Archetype.fifo ~name ()
  | other ->
    Printf.eprintf "unknown archetype %s (try: %s)\n" other
      (String.concat ", " archetype_names);
    exit 2

let strategy_names =
  [ "bdd-forward"; "bdd-backward"; "bdd-combined"; "pobdd"; "bmc";
    "k-induction"; "ic3"; "auto" ]

(* the one strategy-name parser (Engine.strategy_of_string) behind the one
   CLI error message, shared by `campaign --portfolio` and `check --strategy` *)
let strategy_of_name name =
  match Mc.Engine.strategy_of_string name with
  | Some s -> s
  | None ->
    Printf.eprintf "unknown strategy %s (try: %s)\n" name
      (String.concat ", " strategy_names);
    exit 2

let spec_of (leaf : Chip.Archetype.leaf) =
  { Verifiable.Propgen.he = leaf.Chip.Archetype.he;
    he_map = leaf.Chip.Archetype.he_map;
    parity_inputs = leaf.Chip.Archetype.parity_inputs;
    parity_outputs = leaf.Chip.Archetype.parity_outputs;
    extra = leaf.Chip.Archetype.extra_props }

(* ---- diagnosis artifacts (campaign --diagnose, explain, report) ---- *)

let write_file path s =
  let oc = open_out path in
  (try output_string oc s
   with e ->
     close_out oc;
     raise e);
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let ensure_dir dir =
  try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let diag_status_string (dg : Diag.Diagnosis.t) =
  match dg.Diag.Diagnosis.validation.Diag.Diagnosis.status with
  | `Confirmed -> "confirmed"
  | `Not_confirmed _ -> "not-confirmed"

(* one .diag.json + one .vcd per falsified obligation, plus an index.json
   that `dicheck report` consumes *)
let write_diagnosis_dir dir (ds : Diag.Diagnosis.diagnosed list) =
  ensure_dir dir;
  let entries =
    List.map
      (fun (d : Diag.Diagnosis.diagnosed) ->
        let a = d.Diag.Diagnosis.artifacts in
        let dg = a.Diag.Diagnosis.diag in
        let base =
          dg.Diag.Diagnosis.module_name ^ "." ^ dg.Diag.Diagnosis.prop_name
        in
        let json_file = base ^ ".diag.json" in
        let vcd_file = base ^ ".vcd" in
        write_file (Filename.concat dir json_file)
          (Obs.Json.to_string_pretty (Diag.Diagnosis.to_json dg) ^ "\n");
        write_file (Filename.concat dir vcd_file) (Diag.Diagnosis.to_vcd a);
        (dg, json_file, vcd_file))
      ds
  in
  let confirmed =
    List.length
      (List.filter (fun (dg, _, _) -> diag_status_string dg = "confirmed")
         entries)
  in
  let index =
    Obs.Json.Obj
      [ ("schema", Obs.Json.String "dicheck-diag-index-v1");
        ("falsified", Obs.Json.Int (List.length entries));
        ("confirmed", Obs.Json.Int confirmed);
        ( "failures",
          Obs.Json.List
            (List.map
               (fun ((dg : Diag.Diagnosis.t), json_file, vcd_file) ->
                 Obs.Json.Obj
                   [ ("module", Obs.Json.String dg.Diag.Diagnosis.module_name);
                     ("property", Obs.Json.String dg.Diag.Diagnosis.prop_name);
                     ( "class",
                       Obs.Json.String
                         (Diag.Diagnosis.cls_tag dg.Diag.Diagnosis.cls) );
                     ( "bug",
                       match dg.Diag.Diagnosis.bug with
                       | Some b -> Obs.Json.String (Chip.Bugs.name b)
                       | None -> Obs.Json.Null );
                     ("status", Obs.Json.String (diag_status_string dg));
                     ("diag", Obs.Json.String json_file);
                     ("vcd", Obs.Json.String vcd_file) ])
               entries) ) ]
  in
  write_file (Filename.concat dir "index.json")
    (Obs.Json.to_string_pretty index ^ "\n");
  (List.length entries, confirmed)

(* ---- campaign ---- *)

let campaign_cmd =
  let run with_bugs jobs csv cache_path no_cache deadline node_limit
      no_incremental max_retries journal_path resume trace metrics
      progress_interval diagnose portfolio_spec race_jobs self_heal
      status_socket flight_path no_flight =
    try
      (* the flight recorder is always on: bounded memory, allocation-light
         writes, and it is exactly the runs that do NOT exit cleanly that
         need their recent history *)
      if not no_flight then Obs.Flight.enable ();
      Sys.set_signal Sys.sigusr1
        (Sys.Signal_handle
           (fun _ ->
             Obs.Flight.dump ~reason:"sigusr1" flight_path;
             Printf.eprintf "flight recording written to %s (SIGUSR1)\n%!"
               flight_path));
      let chip = Chip.Generator.generate ~with_bugs () in
      let cache =
        if no_cache then Mc.Cache.create ()
        else Mc.Cache.load_or_create cache_path
      in
      (* record spans/counters only when an artifact actually wants them *)
      let recording = trace <> None || metrics <> None in
      if recording then Core.Telemetry.start ();
      let budget =
        match (deadline, node_limit, no_incremental) with
        | None, None, false -> None
        | _ ->
          Some
            { Mc.Engine.default_budget with
              Mc.Engine.wall_deadline_s = deadline;
              bdd_node_limit =
                (match node_limit with
                 | Some _ -> node_limit
                 | None -> Mc.Engine.default_budget.Mc.Engine.bdd_node_limit);
              pobdd_node_limit =
                (match node_limit with
                 | Some _ -> node_limit
                 | None ->
                   Mc.Engine.default_budget.Mc.Engine.pobdd_node_limit);
              incremental = not no_incremental }
      in
      let portfolio =
        match portfolio_spec with
        | None -> None
        | Some spec -> (
          let base = Option.value ~default:Mc.Engine.default_budget budget in
          if spec = "default" then Some (Mc.Engine.default_portfolio base)
          else
            let members =
              List.map
                (fun n ->
                  { Mc.Engine.m_strategy = strategy_of_name n;
                    m_budget = base })
                (String.split_on_char ',' spec)
            in
            match Mc.Engine.portfolio ~name:spec members with
            | p -> Some p
            | exception Invalid_argument msg ->
              Printf.eprintf "invalid --portfolio %s: %s\n" spec msg;
              exit 2)
      in
      let journal =
        match journal_path with
        | None ->
          if resume then begin
            Printf.eprintf "error: --resume requires --journal FILE\n";
            exit 3
          end;
          None
        | Some path -> Some (Core.Journal.create ~resume path)
      in
      (match journal with
       | Some j when Core.Journal.replay_count j > 0 ->
         Printf.eprintf "resuming: %d obligations replayed from %s\n%!"
           (Core.Journal.replay_count j) (Core.Journal.path j)
       | _ -> ());
      let warm = Mc.Cache.length cache in
      (* the status model always backs the stderr heartbeat; --status-socket
         additionally serves it to `dicheck top` *)
      let status = Core.Status.create ~jobs:(max 1 jobs) () in
      Mc.Beacon.enable ();
      let server =
        Option.map (fun p -> Core.Status.serve status ~path:p) status_socket
      in
      Option.iter
        (fun p -> Printf.eprintf "status socket listening on %s\n%!" p)
        status_socket;
      let t0 = Unix.gettimeofday () in
      let last = ref 0.0 in
      let progress (p : Core.Campaign.progress) =
        let now = Unix.gettimeofday () in
        if now -. !last > progress_interval then begin
          last := now;
          let s = Core.Status.snapshot status in
          Printf.eprintf
            "... %d/%d (%.0fs; %d cache hits, %d replayed, %d retries, %d \
             healed, %d raced%s)\n%!"
            p.Core.Campaign.done_ p.Core.Campaign.total (now -. t0)
            p.Core.Campaign.cache_hits p.Core.Campaign.replayed
            p.Core.Campaign.retries s.Core.Status.s_healed
            s.Core.Status.s_raced
            (match s.Core.Status.s_eta_s with
             | Some e -> Printf.sprintf "; ETA %.0fs" e
             | None -> "")
        end
      in
      let c =
        try
          Core.Campaign.run ?budget ?portfolio ~progress ~jobs ?race_jobs
            ~cache ?journal ~max_retries ?self_heal ~status chip
        with e ->
          Option.iter Core.Status.shutdown server;
          raise e
      in
      Option.iter Core.Status.shutdown server;
      Option.iter Core.Journal.close journal;
      (* diagnose before stopping telemetry so the diag spans/counters land
         in the --trace and --metrics artifacts *)
      (match diagnose with
       | None -> ()
       | Some dir ->
         let ds = Diag.Diagnosis.diagnose_campaign ~jobs chip c in
         let n, confirmed = write_diagnosis_dir dir ds in
         Printf.eprintf
           "diagnosis written to %s (%d falsified, %d confirmed by replay)\n"
           dir n confirmed);
      let report =
        if recording then Some (Core.Telemetry.stop ()) else None
      in
      (match (trace, report) with
       | Some path, Some rep ->
         Obs.Trace_export.write path rep;
         Printf.eprintf "trace written to %s (load in ui.perfetto.dev)\n" path
       | _ -> ());
      (match metrics with
       | Some path ->
         Core.Campaign.write_metrics_json ?report ~jobs c path;
         Printf.eprintf "metrics written to %s\n" path
       | None -> ());
      Format.printf "%a" Core.Campaign.pp_table2 c;
      List.iter
        (fun (r : Core.Campaign.prop_result) ->
          Printf.printf "failed: %s %s\n" r.Core.Campaign.module_name
            r.Core.Campaign.prop_name)
        (Core.Campaign.failed_results c);
      Printf.printf
        "wall time %.1fs, %d jobs; cache: %d hits, %d proved fresh (%d warm \
         entries loaded)\n"
        c.Core.Campaign.wall_time_s (max 1 jobs) c.Core.Campaign.cache_hits
        (List.length c.Core.Campaign.results
        - c.Core.Campaign.cache_hits - c.Core.Campaign.replayed)
        warm;
      if c.Core.Campaign.replayed > 0 || c.Core.Campaign.retries > 0 then
        Printf.printf "robustness: %d replayed from journal, %d crash retries\n"
          c.Core.Campaign.replayed c.Core.Campaign.retries;
      if portfolio <> None then
        Printf.printf "strategy wins:%s\n"
          (String.concat ""
             (List.map
                (fun (e, n) -> Printf.sprintf " %s=%d" e n)
                (Core.Campaign.wins_by_engine c)));
      (match c.Core.Campaign.healing with
       | None -> ()
       | Some h ->
         let healed_rows =
           List.length
             (List.filter
                (fun (r : Core.Campaign.prop_result) -> r.Core.Campaign.healed)
                c.Core.Campaign.results)
         in
         Printf.printf
           "healed: %d of %d resource-outs recovered (%d proved, %d real \
            failures; %d spurious cex, %d CEGAR iterations, %d exhausted, \
            %d unhealable; %d healed rows total)\n"
           h.Core.Campaign.heal_recovered h.Core.Campaign.heal_attempted
           h.Core.Campaign.heal_proved h.Core.Campaign.heal_failed
           h.Core.Campaign.heal_spurious h.Core.Campaign.heal_cegar_iters
           h.Core.Campaign.heal_exhausted h.Core.Campaign.heal_unhealable
           healed_rows);
      (match csv with
       | Some path ->
         Core.Campaign.write_csv c path;
         Printf.eprintf "per-property results written to %s\n" path
       | None -> ());
      if not no_cache then begin
        match Mc.Cache.save cache cache_path with
        | () ->
          Printf.eprintf "result cache saved to %s (%d entries)\n" cache_path
            (Mc.Cache.length cache)
        | exception Sys_error msg ->
          Printf.eprintf "warning: could not save result cache: %s\n" msg
      end;
      (* 0 all proved; 1 property failures; 2 no failures but unresolved
         (resource-out or error) verdicts remain; 3 internal error *)
      let g = c.Core.Campaign.grand_total in
      if Obs.Flight.active ()
         && g.Core.Campaign.resource_out + g.Core.Campaign.errors > 0
      then begin
        (* unresolved verdicts: dump the recent event history alongside so
           the deadline/error is not a black box *)
        let reason =
          if g.Core.Campaign.errors > 0 then "error-verdicts"
          else "resource-out"
        in
        Obs.Flight.dump ~reason flight_path;
        Printf.eprintf "flight recording written to %s (%s)\n" flight_path
          reason
      end;
      if g.Core.Campaign.failed > 0 then exit 1
      else if g.Core.Campaign.resource_out + g.Core.Campaign.errors > 0 then
        exit 2
      else exit 0
    with e ->
      if Obs.Flight.active () then begin
        (try Obs.Flight.dump ~reason:"crash" flight_path
         with _ -> ());
        Printf.eprintf "flight recording written to %s (crash)\n" flight_path
      end;
      Printf.eprintf "dicheck: internal error: %s\n" (Printexc.to_string e);
      exit 3
  in
  let with_bugs =
    Arg.(value & opt bool true & info [ "with-bugs" ] ~doc:"Seed the 7 bugs.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Check N properties in parallel (OCaml domains); 1 runs \
                   sequentially.")
  in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"PATH"
             ~doc:"Write per-property results (verdict, engine, time, cache \
                   hit) as CSV.")
  in
  let cache_path =
    Arg.(value & opt string ".dicheck.cache"
         & info [ "cache" ] ~docv:"PATH"
             ~doc:"Persistent structural result cache; loaded before and \
                   saved after the run, so a repeated campaign reuses every \
                   verdict.")
  in
  let no_cache =
    Arg.(value & flag
         & info [ "no-cache" ]
             ~doc:"Do not load or save the persistent cache (verdicts are \
                   still deduplicated within the run).")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECS"
             ~doc:"Wall-clock deadline per obligation; an overrunning check \
                   yields a resource-out verdict instead of hanging a \
                   worker.")
  in
  let node_limit =
    Arg.(value & opt (some int) None
         & info [ "node-limit" ] ~docv:"N"
             ~doc:"Cap the BDD/POBDD engines at N live nodes per obligation \
                   (a starvation budget); an overrunning check yields a \
                   resource-out verdict. Pair with --self-heal to recover \
                   starved obligations by partitioning.")
  in
  let no_incremental =
    Arg.(value & flag
         & info [ "no-incremental" ]
             ~doc:"Disable incremental SAT solving: BMC, k-induction and IC3 \
                   rebuild their CNF encodings from scratch at every depth \
                   instead of keeping one live solver per obligation. \
                   Verdicts are identical either way (the differential suite \
                   enforces it); this is the slow oracle mode. Cache and \
                   journal keys carry a distinct salt, so scratch runs never \
                   answer incremental ones.")
  in
  let max_retries =
    Arg.(value & opt int 2
         & info [ "max-retries" ] ~docv:"N"
             ~doc:"Re-run a crashed obligation up to N times with a halved \
                   budget before recording an error verdict.")
  in
  let journal_path =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Append every completed obligation to FILE (fsync'd), so \
                   a killed campaign can be resumed.")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Replay verdicts already in the --journal file instead of \
                   re-running their engines.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"PATH"
             ~doc:"Write a Chrome trace_event JSON of the run (one lane per \
                   worker domain; load it in chrome://tracing or \
                   ui.perfetto.dev).")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"PATH"
             ~doc:"Write a JSON metrics summary: Table 2 totals per \
                   category, aggregated engine counters, and resource-out \
                   causes.")
  in
  let progress_interval =
    Arg.(value & opt float 10.0
         & info [ "progress-interval" ] ~docv:"SECS"
             ~doc:"Seconds between progress heartbeats on stderr.")
  in
  let diagnose =
    Arg.(value & opt (some string) None
         & info [ "diagnose" ] ~docv:"DIR"
             ~doc:"Diagnose every falsified obligation after the run: \
                   cross-validate the counterexample by simulator replay, \
                   minimize it, compute its fault cone, and write one \
                   .diag.json and one annotated .vcd per failure (plus \
                   index.json) into DIR.")
  in
  let portfolio =
    Arg.(value
         & opt ~vopt:(Some "default") (some string) None
         & info [ "portfolio" ] ~docv:"SPEC"
             ~doc:"Check each obligation with a portfolio of engine \
                   strategies instead of the auto escalation ladder. SPEC \
                   is $(b,default) (a node-capped bdd-combined probe, then \
                   k-induction, ic3, and a full-budget pobdd backstop) or a \
                   comma-separated list of strategy names. With --jobs > 1 \
                   the members race per obligation and the first conclusive \
                   verdict cancels its siblings; verdicts are identical to \
                   running the same portfolio sequentially.")
  in
  let race_jobs =
    Arg.(value & opt (some int) None
         & info [ "race-jobs" ] ~docv:"N"
             ~doc:"Cap one obligation's concurrent member runs under \
                   --portfolio (default: the pool size).")
  in
  let self_heal =
    Arg.(value
         & opt ~vopt:(Some 4) (some int) None
         & info [ "self-heal" ] ~docv:"MAX-ITERS"
             ~doc:"Recover resource-out obligations by automatic Figure 7 \
                   partitioning: mine parity checkpoints in the failing \
                   cone, prove the cut sub-properties, re-check the \
                   property with the cuts freed (assume-guarantee), and \
                   refine spurious counterexamples by concrete replay \
                   (CEGAR) — at most MAX-ITERS (default 4) freed-cut \
                   checks per obligation.")
  in
  let status_socket =
    Arg.(value & opt (some string) None
         & info [ "status-socket" ] ~docv:"PATH"
             ~doc:"Serve live campaign status (schema dicheck-status-v1) \
                   over a Unix domain socket at PATH: one JSON snapshot per \
                   connection. Read it with $(b,dicheck top PATH), or any \
                   client that can connect and read to EOF. Purely \
                   observational; verdicts are identical with or without \
                   it.")
  in
  let no_flight =
    Arg.(value & flag
         & info [ "no-flight" ]
             ~doc:"Disable the flight recorder (it is on by default; \
                   records are then free no-ops). Exists mainly to measure \
                   the recorder's overhead.")
  in
  let flight_path =
    Arg.(value & opt string "dicheck-flight.json"
         & info [ "flight" ] ~docv:"PATH"
             ~doc:"Destination of flight-recorder dumps (schema \
                   dicheck-flight-v1). The recorder is always on; a dump is \
                   written on SIGUSR1, on an internal error, and when the \
                   campaign ends with unresolved (resource-out or error) \
                   verdicts.")
  in
  Cmd.v (Cmd.info "campaign" ~doc:"Run the full formal campaign (Table 2).")
    Term.(const run $ with_bugs $ jobs $ csv $ cache_path $ no_cache
          $ deadline $ node_limit $ no_incremental $ max_retries
          $ journal_path $ resume $ trace $ metrics $ progress_interval
          $ diagnose $ portfolio $ race_jobs $ self_heal $ status_socket
          $ flight_path $ no_flight)

(* ---- explain ---- *)

let explain_cmd =
  let run obligation with_bugs json_path vcd_path =
    try
      let chip = Chip.Generator.generate ~with_bugs () in
      let works = Core.Campaign.work_items chip in
      let matches (w : Core.Campaign.work) =
        w.Core.Campaign.w_mdl.Rtl.Mdl.name ^ "." ^ w.Core.Campaign.w_prop_name
        = obligation
      in
      match List.find_opt matches works with
      | None ->
        Printf.eprintf
          "unknown obligation %s (expected MODULE.PROPERTY; `dicheck \
           campaign` prints the falsified ones)\n"
          obligation;
        exit 3
      | Some w ->
        let outcome =
          Mc.Engine.check_property w.Core.Campaign.w_mdl
            ~assert_:w.Core.Campaign.w_assert
            ~assumes:w.Core.Campaign.w_assumes
        in
        (match outcome.Mc.Engine.verdict with
         | Mc.Engine.Failed trace ->
           let a =
             Diag.Diagnosis.diagnose
               ?he_signal:(Diag.Diagnosis.he_signal_of chip w)
               w trace
           in
           let dg = a.Diag.Diagnosis.diag in
           let v = dg.Diag.Diagnosis.validation in
           Printf.printf "obligation:   %s (%s%s)\n" obligation
             (Diag.Diagnosis.cls_tag dg.Diag.Diagnosis.cls)
             (match dg.Diag.Diagnosis.bug with
              | Some b -> ", seeded bug " ^ Chip.Bugs.name b
              | None -> "");
           Printf.printf "validation:   %s\n"
             (match v.Diag.Diagnosis.status with
              | `Confirmed ->
                "confirmed — the simulator reproduces the violation"
              | `Not_confirmed reason -> "NOT confirmed: " ^ reason);
           (match v.Diag.Diagnosis.fail_cycle with
            | Some c -> Printf.printf "fails at:     cycle %d\n" c
            | None -> ());
           Printf.printf "minimized:    %d -> %d cycles, %d -> %d care bits\n"
             dg.Diag.Diagnosis.original_cycles
             dg.Diag.Diagnosis.minimized_cycles
             dg.Diag.Diagnosis.original_care_bits
             dg.Diag.Diagnosis.minimized_care_bits;
           (match dg.Diag.Diagnosis.he_signal with
            | Some h -> Printf.printf "HE signal:    %s\n" h
            | None -> ());
           List.iter
             (fun (c : Diag.Cone.cycle_cone) ->
               if c.Diag.Cone.corrupted <> [] then
                 Printf.printf "cycle %-2d cone: %s\n" c.Diag.Cone.cone_step
                   (String.concat ", " c.Diag.Cone.corrupted))
             dg.Diag.Diagnosis.cone;
           if dg.Diag.Diagnosis.golden_failed then
             Printf.printf
               "note:         the golden legal-input run also fails; the \
                cone is best-effort\n";
           Printf.printf "\n%s\n" dg.Diag.Diagnosis.explanation;
           (match json_path with
            | Some p ->
              write_file p
                (Obs.Json.to_string_pretty (Diag.Diagnosis.to_json dg) ^ "\n");
              Printf.eprintf "diagnosis JSON written to %s\n" p
            | None -> ());
           (match vcd_path with
            | Some p ->
              write_file p (Diag.Diagnosis.to_vcd a);
              Printf.eprintf "annotated waveform written to %s\n" p
            | None -> ());
           exit
             (match v.Diag.Diagnosis.status with
              | `Confirmed -> 0
              | `Not_confirmed _ -> 1)
         | Mc.Engine.Proved | Mc.Engine.Proved_bounded _ ->
           Printf.printf
             "not falsified: %s holds — nothing to diagnose\n" obligation;
           exit 2
         | Mc.Engine.Resource_out m ->
           Printf.printf "unresolved (resource out: %s) — no counterexample \
                          to diagnose\n" m;
           exit 2
         | Mc.Engine.Error m ->
           Printf.printf "unresolved (engine error: %s)\n" m;
           exit 2)
    with e ->
      Printf.eprintf "dicheck: internal error: %s\n" (Printexc.to_string e);
      exit 3
  in
  let obligation =
    Arg.(required
         & pos 0 (some string) None
         & info [] ~docv:"MODULE.PROPERTY"
             ~doc:"The obligation to diagnose, as `dicheck campaign` prints \
                   failures (e.g. a_fsm_ctrl00.p0_reports_injection).")
  in
  let with_bugs =
    Arg.(value & opt bool true & info [ "with-bugs" ] ~doc:"Seed the 7 bugs.")
  in
  let json_path =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"PATH"
             ~doc:"Write the structured diagnosis (schema dicheck-diag-v1).")
  in
  let vcd_path =
    Arg.(value & opt (some string) None
         & info [ "vcd" ] ~docv:"PATH"
             ~doc:"Write the minimized counterexample as an annotated VCD \
                   waveform (stimulus, registers, outputs, HE bus, monitor \
                   nets).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Diagnose one falsified obligation: cross-validate by simulator \
             replay, minimize the counterexample, compute the fault cone. \
             Exits 0 when the replay confirms the violation, 1 when it does \
             not, 2 when the property is not falsified.")
    Term.(const run $ obligation $ with_bugs $ json_path $ vcd_path)

(* ---- report ---- *)

let report_cmd =
  let run dir html_out =
    let html_out =
      match html_out with
      | Some p -> p
      | None -> Filename.concat dir "report.html"
    in
    let fail msg =
      Printf.eprintf "dicheck report: %s\n" msg;
      exit 3
    in
    let parse_or_fail what src =
      match Obs.Json.parse src with
      | Ok j -> j
      | Error m -> fail (Printf.sprintf "%s: %s" what m)
    in
    let index_path = Filename.concat dir "index.json" in
    let src =
      try read_file index_path
      with Sys_error m -> fail ("cannot read " ^ m)
    in
    let idx = parse_or_fail index_path src in
    let failures =
      match Option.bind (Obs.Json.member "failures" idx) Obs.Json.to_list with
      | Some l -> l
      | None -> fail (index_path ^ ": no \"failures\" list")
    in
    let entries =
      List.map
        (fun f ->
          let str name =
            match Option.bind (Obs.Json.member name f) Obs.Json.to_str with
            | Some s -> s
            | None ->
              fail (Printf.sprintf "%s: failure entry lacks %S" index_path
                      name)
          in
          let diag_file = str "diag" in
          let vcd_file = str "vcd" in
          let dsrc =
            try read_file (Filename.concat dir diag_file)
            with Sys_error m -> fail ("cannot read " ^ m)
          in
          match Diag.Diagnosis.of_json (parse_or_fail diag_file dsrc) with
          | Ok dg -> { Diag.Report_html.diag = dg; vcd = Some vcd_file }
          | Error m -> fail (Printf.sprintf "%s: %s" diag_file m))
        failures
    in
    Diag.Report_html.write html_out entries;
    Printf.printf "report written to %s (%d falsified obligations)\n" html_out
      (List.length entries)
  in
  let dir =
    Arg.(required
         & opt (some dir) None
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"Diagnosis directory produced by `dicheck campaign \
                   --diagnose DIR`.")
  in
  let html_out =
    Arg.(value & opt (some string) None
         & info [ "html" ] ~docv:"PATH"
             ~doc:"Output HTML file (default DIR/report.html).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render a campaign diagnosis directory as a self-contained HTML \
             drill-down report.")
    Term.(const run $ dir $ html_out)

(* ---- classify ---- *)

let classify_cmd =
  let run cycles =
    let chip = Chip.Generator.generate () in
    Format.printf "%a" Core.Classify.pp_table3 (Core.Classify.run ~cycles chip)
  in
  let cycles =
    Arg.(value & opt int 10_000
         & info [ "cycles" ] ~doc:"Simulation budget per run.")
  in
  Cmd.v (Cmd.info "classify" ~doc:"Classify the seeded bugs (Table 3).")
    Term.(const run $ cycles)

(* ---- area ---- *)

let area_cmd =
  let run () =
    let chip = Chip.Generator.generate () in
    Format.printf "%a@." Core.Report.pp_table1 (Core.Report.table1 chip);
    Format.printf "%a" Core.Report.pp_table4 (Core.Report.table4 chip);
    Format.printf "%a" Core.Report.pp_timing (Core.Report.timing_impact chip)
  in
  Cmd.v (Cmd.info "area" ~doc:"Area and timing impact (Tables 1, 4).")
    Term.(const run $ const ())

(* ---- fig7 ---- *)

let fig7_cmd =
  let run width limit =
    Format.printf "%a"
      Core.Report.pp_fig7
      (Core.Report.fig7 ~payload_width:width ~node_limit:limit ())
  in
  let width =
    Arg.(value & opt int 16 & info [ "width" ] ~doc:"Stream payload width.")
  in
  let limit =
    Arg.(value & opt int 100_000 & info [ "node-limit" ] ~doc:"BDD node budget.")
  in
  Cmd.v
    (Cmd.info "fig7" ~doc:"Divide-and-conquer partitioning experiment (Fig 7).")
    Term.(const run $ width $ limit)

(* ---- check ---- *)

let check_cmd =
  let run arch bug psl_file strategy no_incremental =
    let strategy = Option.map strategy_of_name strategy in
    let budget =
      if no_incremental then
        Some { Mc.Engine.default_budget with Mc.Engine.incremental = false }
      else None
    in
    let leaf = make_archetype ~bug arch in
    let info = Verifiable.Transform.apply leaf.Chip.Archetype.mdl in
    let vunits =
      match psl_file with
      | Some path ->
        let ic = open_in path in
        let len = in_channel_length ic in
        let src = really_input_string ic len in
        close_in ic;
        (try Psl.Parser.vunits_of_string src with
         | Psl.Parser.Error (msg, pos) ->
           Printf.eprintf "PSL parse error at offset %d: %s\n" pos msg;
           exit 1)
      | None ->
        List.map snd (Verifiable.Propgen.all info (spec_of leaf))
    in
    let failures = ref 0 in
    List.iter
      (fun vunit ->
        List.iter
          (fun (name, (o : Mc.Engine.outcome)) ->
            let verdict =
              match o.Mc.Engine.verdict with
              | Mc.Engine.Proved -> "proved"
              | Mc.Engine.Proved_bounded d ->
                Printf.sprintf "no violation up to depth %d" d
              | Mc.Engine.Failed _ ->
                incr failures;
                "FAILED"
              | Mc.Engine.Resource_out m -> "resource out: " ^ m
              | Mc.Engine.Error m -> "engine error: " ^ m
            in
            Printf.printf "%-28s %-30s %s (%.3fs)\n" name verdict
              o.Mc.Engine.engine_used o.Mc.Engine.time_s)
          (Mc.Engine.check_vunit ?budget ?strategy
             info.Verifiable.Transform.mdl vunit))
      vunits;
    exit (if !failures > 0 then 1 else 0)
  in
  let arch =
    (* derived from [archetype_names] so the doc can't drift from what
       [make_archetype] accepts *)
    Arg.(required
         & pos 0 (some string) None
         & info [] ~docv:"ARCHETYPE"
             ~doc:(Printf.sprintf "Leaf archetype (%s)."
                     (String.concat ", " archetype_names)))
  in
  let bug = Arg.(value & flag & info [ "bug" ] ~doc:"Seed the archetype's bug.") in
  let psl =
    Arg.(value & opt (some file) None
         & info [ "psl" ] ~doc:"PSL file to check instead of the generated \
                                stereotype properties.")
  in
  let strategy =
    Arg.(value & opt (some string) None
         & info [ "strategy" ] ~docv:"NAME"
             ~doc:(Printf.sprintf
                     "Engine strategy to use instead of auto (%s)."
                     (String.concat ", " strategy_names)))
  in
  let no_incremental =
    Arg.(value & flag
         & info [ "no-incremental" ]
             ~doc:"Rebuild SAT encodings from scratch at every depth instead \
                   of keeping one live solver (the slow differential-oracle \
                   mode; verdicts are identical).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Model-check PSL against an archetype's Verifiable RTL.")
    Term.(const run $ arch $ bug $ psl $ strategy $ no_incremental)

(* ---- infer ---- *)

let infer_cmd =
  let run arch =
    let leaf = make_archetype arch in
    match Verifiable.Spec_infer.infer leaf.Chip.Archetype.mdl with
    | Error msg ->
      Printf.eprintf "inference failed: %s\n" msg;
      exit 1
    | Ok spec ->
      Printf.printf "HE signal:      %s\n" spec.Verifiable.Propgen.he;
      Printf.printf "parity inputs:  %s\n"
        (String.concat ", " spec.Verifiable.Propgen.parity_inputs);
      Printf.printf "parity outputs: %s\n"
        (String.concat ", " spec.Verifiable.Propgen.parity_outputs);
      List.iter
        (fun (src, bit) -> Printf.printf "checker map:    %s -> HE[%d]\n" src bit)
        spec.Verifiable.Propgen.he_map;
      let info = Verifiable.Transform.apply leaf.Chip.Archetype.mdl in
      let p0, p1, p2, p3 = Verifiable.Propgen.counts info spec in
      Printf.printf "properties:     P0=%d P1=%d P2=%d P3=%d\n" p0 p1 p2 p3
  in
  let arch =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ARCHETYPE")
  in
  Cmd.v
    (Cmd.info "infer"
       ~doc:"Infer the data-integrity specification from an archetype's RTL.")
    Term.(const run $ arch)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let run seed count budget out_dir inject no_gauntlet trace metrics =
    try
      let recording = trace <> None || metrics <> None in
      if recording then Obs.Telemetry.start ();
      let config =
        { Qa.Fuzz.seed; count; budget_s = budget; out_dir; inject;
          gauntlet = not no_gauntlet }
      in
      let s = Qa.Fuzz.run config in
      let report = if recording then Some (Obs.Telemetry.stop ()) else None in
      (match (trace, report) with
       | Some path, Some rep ->
         Obs.Trace_export.write path rep;
         Printf.eprintf "trace written to %s (load in ui.perfetto.dev)\n" path
       | _ -> ());
      (match (metrics, report) with
       | Some path, rep ->
         let counters =
           match rep with
           | None -> []
           | Some r ->
             List.map
               (fun (k, v) -> (k, Obs.Json.Int v))
               r.Obs.Telemetry.counters
         in
         write_file path
           (Obs.Json.to_string_pretty
              (Obs.Json.Obj
                 [ ("schema", Obs.Json.String "dicheck-fuzz-metrics-v1");
                   ("summary", Qa.Fuzz.summary_json s);
                   ("counters", Obs.Json.Obj counters) ])
           ^ "\n");
         Printf.eprintf "metrics written to %s\n" path
       | None, _ -> ());
      Printf.printf
        "fuzz: %d/%d designs, %d obligations, %d engine runs in %.1fs%s\n"
        s.Qa.Fuzz.cases_run count s.Qa.Fuzz.obligations s.Qa.Fuzz.engine_runs
        s.Qa.Fuzz.elapsed_s
        (if s.Qa.Fuzz.budget_exhausted then " (wall budget exhausted)" else "");
      if s.Qa.Fuzz.kill_table <> [] then begin
        Printf.printf "mutation gauntlet:\n";
        List.iter
          (fun (b, d, t) ->
            Printf.printf "  %-3s (%s) %d/%d killed\n" (Chip.Bugs.name b)
              (Qa.Shrink.class_label (Chip.Bugs.property_class b))
              d t)
          s.Qa.Fuzz.kill_table;
        List.iter
          (fun (id, b, why) ->
            Printf.printf "  MISSED %s on %s: %s\n" (Chip.Bugs.name b) id why)
          s.Qa.Fuzz.gauntlet_misses
      end;
      List.iter
        (fun (d : Qa.Differential.discrepancy) ->
          Printf.printf "DISCREPANCY [%s] %s%s: %s\n"
            (Qa.Differential.kind_name d.Qa.Differential.kind)
            d.Qa.Differential.case_id
            (match d.Qa.Differential.prop with
             | Some p -> "." ^ p
             | None -> "")
            d.Qa.Differential.detail)
        s.Qa.Fuzz.discrepancies;
      List.iter
        (fun (sh : Qa.Fuzz.shrunk) ->
          Printf.printf "shrunk: %s -> %s (%d steps, %d evals)\n"
            (Qa.Gen.describe sh.Qa.Fuzz.from_params)
            (Qa.Gen.describe sh.Qa.Fuzz.to_params)
            sh.Qa.Fuzz.steps sh.Qa.Fuzz.evals;
          List.iter (Printf.printf "  reproducer: %s\n") sh.Qa.Fuzz.files)
        s.Qa.Fuzz.shrunk;
      if Qa.Fuzz.ok s then begin
        Printf.printf "fuzz: OK — no discrepancies, 100%% mutation kill\n";
        exit 0
      end
      else exit 1
    with e ->
      Printf.eprintf "dicheck: internal error: %s\n" (Printexc.to_string e);
      exit 3
  in
  let seed =
    Arg.(value & opt int 0
         & info [ "seed" ] ~docv:"N"
             ~doc:"Generator seed; the whole run is a deterministic function \
                   of (seed, count).")
  in
  let count =
    Arg.(value & opt int 50
         & info [ "count" ] ~docv:"K" ~doc:"Number of designs to generate.")
  in
  let budget =
    Arg.(value & opt (some float) None
         & info [ "budget" ] ~docv:"SECS"
             ~doc:"Stop starting new designs after SECS of wall time (the \
                   design in flight still completes).")
  in
  let out_dir =
    Arg.(value & opt string "fuzz-failures"
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Directory for shrunk reproducers (.v, .psl, .json); \
                   created on first failure.")
  in
  let inject =
    Arg.(value & opt (some int) None
         & info [ "inject-disagreement" ] ~docv:"INDEX"
             ~doc:"Test hook: report an artificial discrepancy on the \
                   INDEX-th design, exercising the shrinking and exit-code \
                   paths without a real engine bug.")
  in
  let no_gauntlet =
    Arg.(value & flag
         & info [ "no-gauntlet" ]
             ~doc:"Skip the mutation gauntlet (Table 3 bug classes seeded \
                   into each design).")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"PATH"
             ~doc:"Write a Chrome trace_event JSON of the fuzz run.")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"PATH"
             ~doc:"Write a JSON metrics summary (designs/s, obligations/s, \
                   kill table, telemetry counters).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing of the engines: run every obligation of \
             seeded-random Verifiable-RTL designs through each engine \
             strategy plus bounded exhaustive simulation, replay-validate \
             every counterexample, seed Table 3 mutations and require 100% \
             kill, and shrink any disagreement to a minimal reproducer. \
             Exits non-zero on any discrepancy.")
    Term.(const run $ seed $ count $ budget $ out_dir $ inject $ no_gauntlet
          $ trace $ metrics)

(* ---- emit ---- *)

let emit_cmd =
  let run arch what =
    let leaf = make_archetype arch in
    let info = Verifiable.Transform.apply leaf.Chip.Archetype.mdl in
    match what with
    | "rtl" -> print_string (Rtl.Verilog.module_to_string leaf.Chip.Archetype.mdl)
    | "verifiable" ->
      print_string (Rtl.Verilog.module_to_string info.Verifiable.Transform.mdl)
    | "psl" ->
      List.iter
        (fun (_, v) -> print_string (Psl.Print.vunit_to_string v))
        (Verifiable.Propgen.all info (spec_of leaf))
    | other ->
      Printf.eprintf "unknown output %s (rtl | verifiable | psl)\n" other;
      exit 2
  in
  let arch =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ARCHETYPE")
  in
  let what =
    Arg.(value & pos 1 string "verifiable"
         & info [] ~docv:"WHAT" ~doc:"rtl | verifiable | psl")
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Print an archetype as Verilog or its generated PSL.")
    Term.(const run $ arch $ what)

(* ---- top: live status client ---- *)

let read_status_socket path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX path);
      let buf = Buffer.create 4096 in
      let b = Bytes.create 4096 in
      let rec go () =
        let n = Unix.read fd b 0 (Bytes.length b) in
        if n > 0 then begin
          Buffer.add_subbytes buf b 0 n;
          go ()
        end
      in
      go ();
      Buffer.contents buf)

let render_status j =
  let module J = Obs.Json in
  let str k = Option.value ~default:"?" (Option.bind (J.member k j) J.to_str) in
  let int k = Option.value ~default:0 (Option.bind (J.member k j) J.to_int) in
  let flt k =
    Option.value ~default:0.0 (Option.bind (J.member k j) J.to_float)
  in
  Printf.printf "dicheck campaign — phase %s, %d jobs, %.0fs elapsed\n"
    (str "phase") (int "jobs") (flt "elapsed_s");
  Printf.printf
    "%d/%d done  (%d proved, %d failed, %d resource-out, %d errors)\n"
    (int "done") (int "total") (int "proved") (int "failed")
    (int "resource_out") (int "errors");
  Printf.printf
    "%d cache hits, %d replayed, %d retries, %d healed, %d raced; %.1f ob/s%s\n"
    (int "cache_hits") (int "replayed") (int "retries") (int "healed")
    (int "raced") (flt "rate_per_s")
    (match Option.bind (J.member "eta_s" j) J.to_float with
     | Some e -> Printf.sprintf ", ETA %.0fs" e
     | None -> "");
  match Option.bind (J.member "in_flight" j) J.to_list with
  | None | Some [] -> print_string "(no obligations in flight)\n"
  | Some flying ->
    Printf.printf "%-5s %-34s %-14s %3s %8s  %s\n" "lane" "obligation"
      "engine" "try" "secs" "progress";
    List.iter
      (fun f ->
        let fstr k =
          Option.value ~default:"?" (Option.bind (J.member k f) J.to_str)
        in
        let fint k =
          Option.value ~default:0 (Option.bind (J.member k f) J.to_int)
        in
        let fflt k =
          Option.value ~default:0.0 (Option.bind (J.member k f) J.to_float)
        in
        let beacon =
          match J.member "beacon" f with
          | None -> ""
          | Some b ->
            let bstr k =
              Option.value ~default:"?" (Option.bind (J.member k b) J.to_str)
            in
            let bint k =
              Option.value ~default:0 (Option.bind (J.member k b) J.to_int)
            in
            Printf.sprintf "%s step %d, work %d" (bstr "engine") (bint "step")
              (bint "work")
        in
        Printf.printf "%-5d %-34s %-14s %3d %8.1f  %s\n" (fint "lane")
          (fstr "obligation") (fstr "engine") (fint "attempt")
          (fflt "elapsed_s") beacon)
      flying

let top_cmd =
  let run socket interval once raw_json =
    let fetch () =
      match read_status_socket socket with
      | s -> Some s
      | exception Unix.Unix_error _ -> None
    in
    let parse s =
      match Obs.Json.parse s with
      | Ok j -> j
      | Error e ->
        Printf.eprintf "dicheck top: bad status snapshot: %s\n" e;
        exit 3
    in
    if raw_json || once then begin
      match fetch () with
      | None ->
        Printf.eprintf "dicheck top: cannot connect to %s\n" socket;
        exit 3
      | Some s ->
        if raw_json then print_string s else render_status (parse s);
        exit 0
    end
    else begin
      (* refresh until the socket goes away — which is how a campaign ends *)
      let seen = ref false in
      let rec loop () =
        match fetch () with
        | Some s ->
          seen := true;
          (* ANSI home+clear: a refreshing table, not a scrolling log *)
          print_string "\027[H\027[2J";
          render_status (parse s);
          flush stdout;
          Unix.sleepf interval;
          loop ()
        | None ->
          if !seen then begin
            print_string "status socket closed — campaign finished\n";
            exit 0
          end
          else begin
            Printf.eprintf "dicheck top: cannot connect to %s\n" socket;
            exit 3
          end
      in
      loop ()
    end
  in
  let socket =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"SOCKET"
             ~doc:"The Unix socket a running campaign was started with \
                   (--status-socket PATH).")
  in
  let interval =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"SECS"
             ~doc:"Seconds between refreshes.")
  in
  let once =
    Arg.(value & flag
         & info [ "once" ] ~doc:"Print one snapshot and exit.")
  in
  let raw_json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print one raw dicheck-status-v1 JSON snapshot to stdout \
                   and exit (for scripts and CI).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Watch a running campaign over its --status-socket.")
    Term.(const run $ socket $ interval $ once $ raw_json)

(* ---- profile: hotspot report from a trace ---- *)

let profile_cmd =
  let run trace top_k json_out =
    match Obs.Profile.of_trace_file trace with
    | Error e ->
      Printf.eprintf "dicheck profile: %s\n" e;
      exit 3
    | Ok p ->
      Format.printf "%a" (Obs.Profile.pp ~k:top_k) p;
      (match json_out with
       | Some path ->
         write_file path
           (Obs.Json.to_string_pretty (Obs.Profile.to_json ~k:top_k p) ^ "\n");
         Printf.eprintf "profile report written to %s\n" path
       | None -> ());
      exit 0
  in
  let trace =
    Arg.(required & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"A Chrome trace written by $(b,dicheck campaign --trace).")
  in
  let top_k =
    Arg.(value & opt int 15
         & info [ "top" ] ~docv:"K" ~doc:"Entries to show (by self time).")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"PATH"
             ~doc:"Also write the report as dicheck-profile-v1 JSON.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Aggregate a campaign trace into a top-K hotspot report (wall, \
             self time, GC allocation per phase).")
    Term.(const run $ trace $ top_k $ json_out)

let () =
  let doc = "data-integrity formal verification methodology (DATE 2004 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "dicheck" ~doc)
          [ campaign_cmd; explain_cmd; report_cmd; classify_cmd; area_cmd;
            fig7_cmd; check_cmd; infer_cmd; emit_cmd; fuzz_cmd; top_cmd;
            profile_cmd ]))
