(* dicheck — command-line driver for the data-integrity methodology.

   Subcommands:
     campaign   run the formal campaign over the synthetic chip (Table 2)
     classify   bug classification, formal vs simulation (Table 3)
     area       area cost of the injection feature (Tables 1 and 4)
     fig7       divide-and-conquer partitioning experiment
     check      model-check a PSL file against a named chip archetype
     emit       print an archetype's (Verifiable) RTL as Verilog or its PSL *)

open Cmdliner

let archetype_names =
  [ "fsm_ctrl"; "counter"; "csr"; "macro_if"; "datapath"; "decoder"; "merge";
    "fifo" ]

let make_archetype ?(bug = false) name =
  match name with
  | "fsm_ctrl" -> Chip.Archetype.fsm_ctrl ~name ~bug ()
  | "counter" -> Chip.Archetype.counter ~name ~bug ()
  | "csr" -> Chip.Archetype.csr ~name ~bug ()
  | "macro_if" -> Chip.Archetype.macro_if ~name ~bug ()
  | "datapath" -> Chip.Archetype.datapath ~name ~bug ()
  | "decoder" ->
    Chip.Archetype.decoder ~name
      ?bug:(if bug then Some (Chip.Bugs.B5, 37, 0x5A) else None)
      ()
  | "merge" -> Chip.Archetype.merge ~name ()
  | "fifo" -> Chip.Archetype.fifo ~name ()
  | other ->
    Printf.eprintf "unknown archetype %s (try: %s)\n" other
      (String.concat ", " archetype_names);
    exit 2

let spec_of (leaf : Chip.Archetype.leaf) =
  { Verifiable.Propgen.he = leaf.Chip.Archetype.he;
    he_map = leaf.Chip.Archetype.he_map;
    parity_inputs = leaf.Chip.Archetype.parity_inputs;
    parity_outputs = leaf.Chip.Archetype.parity_outputs;
    extra = leaf.Chip.Archetype.extra_props }

(* ---- campaign ---- *)

let campaign_cmd =
  let run with_bugs jobs csv cache_path no_cache deadline max_retries
      journal_path resume trace metrics progress_interval =
    try
      let chip = Chip.Generator.generate ~with_bugs () in
      let cache =
        if no_cache then Mc.Cache.create ()
        else Mc.Cache.load_or_create cache_path
      in
      (* record spans/counters only when an artifact actually wants them *)
      let recording = trace <> None || metrics <> None in
      if recording then Core.Telemetry.start ();
      let budget =
        match deadline with
        | None -> None
        | Some d ->
          Some
            { Mc.Engine.default_budget with
              Mc.Engine.wall_deadline_s = Some d }
      in
      let journal =
        match journal_path with
        | None ->
          if resume then begin
            Printf.eprintf "error: --resume requires --journal FILE\n";
            exit 3
          end;
          None
        | Some path -> Some (Core.Journal.create ~resume path)
      in
      (match journal with
       | Some j when Core.Journal.replay_count j > 0 ->
         Printf.eprintf "resuming: %d obligations replayed from %s\n%!"
           (Core.Journal.replay_count j) (Core.Journal.path j)
       | _ -> ());
      let warm = Mc.Cache.length cache in
      let t0 = Unix.gettimeofday () in
      let last = ref 0.0 in
      let progress (p : Core.Campaign.progress) =
        let now = Unix.gettimeofday () in
        if now -. !last > progress_interval then begin
          last := now;
          Printf.eprintf
            "... %d/%d (%.0fs; %d cache hits, %d replayed, %d retries)\n%!"
            p.Core.Campaign.done_ p.Core.Campaign.total (now -. t0)
            p.Core.Campaign.cache_hits p.Core.Campaign.replayed
            p.Core.Campaign.retries
        end
      in
      let c =
        Core.Campaign.run ?budget ~progress ~jobs ~cache ?journal
          ~max_retries chip
      in
      Option.iter Core.Journal.close journal;
      let report =
        if recording then Some (Core.Telemetry.stop ()) else None
      in
      (match (trace, report) with
       | Some path, Some rep ->
         Obs.Trace_export.write path rep;
         Printf.eprintf "trace written to %s (load in ui.perfetto.dev)\n" path
       | _ -> ());
      (match metrics with
       | Some path ->
         Core.Campaign.write_metrics_json ?report ~jobs c path;
         Printf.eprintf "metrics written to %s\n" path
       | None -> ());
      Format.printf "%a" Core.Campaign.pp_table2 c;
      List.iter
        (fun (r : Core.Campaign.prop_result) ->
          Printf.printf "failed: %s %s\n" r.Core.Campaign.module_name
            r.Core.Campaign.prop_name)
        (Core.Campaign.failed_results c);
      Printf.printf
        "wall time %.1fs, %d jobs; cache: %d hits, %d proved fresh (%d warm \
         entries loaded)\n"
        c.Core.Campaign.wall_time_s (max 1 jobs) c.Core.Campaign.cache_hits
        (List.length c.Core.Campaign.results
        - c.Core.Campaign.cache_hits - c.Core.Campaign.replayed)
        warm;
      if c.Core.Campaign.replayed > 0 || c.Core.Campaign.retries > 0 then
        Printf.printf "robustness: %d replayed from journal, %d crash retries\n"
          c.Core.Campaign.replayed c.Core.Campaign.retries;
      (match csv with
       | Some path ->
         Core.Campaign.write_csv c path;
         Printf.eprintf "per-property results written to %s\n" path
       | None -> ());
      if not no_cache then begin
        match Mc.Cache.save cache cache_path with
        | () ->
          Printf.eprintf "result cache saved to %s (%d entries)\n" cache_path
            (Mc.Cache.length cache)
        | exception Sys_error msg ->
          Printf.eprintf "warning: could not save result cache: %s\n" msg
      end;
      (* 0 all proved; 1 property failures; 2 no failures but unresolved
         (resource-out or error) verdicts remain; 3 internal error *)
      let g = c.Core.Campaign.grand_total in
      if g.Core.Campaign.failed > 0 then exit 1
      else if g.Core.Campaign.resource_out + g.Core.Campaign.errors > 0 then
        exit 2
      else exit 0
    with e ->
      Printf.eprintf "dicheck: internal error: %s\n" (Printexc.to_string e);
      exit 3
  in
  let with_bugs =
    Arg.(value & opt bool true & info [ "with-bugs" ] ~doc:"Seed the 7 bugs.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Check N properties in parallel (OCaml domains); 1 runs \
                   sequentially.")
  in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"PATH"
             ~doc:"Write per-property results (verdict, engine, time, cache \
                   hit) as CSV.")
  in
  let cache_path =
    Arg.(value & opt string ".dicheck.cache"
         & info [ "cache" ] ~docv:"PATH"
             ~doc:"Persistent structural result cache; loaded before and \
                   saved after the run, so a repeated campaign reuses every \
                   verdict.")
  in
  let no_cache =
    Arg.(value & flag
         & info [ "no-cache" ]
             ~doc:"Do not load or save the persistent cache (verdicts are \
                   still deduplicated within the run).")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECS"
             ~doc:"Wall-clock deadline per obligation; an overrunning check \
                   yields a resource-out verdict instead of hanging a \
                   worker.")
  in
  let max_retries =
    Arg.(value & opt int 2
         & info [ "max-retries" ] ~docv:"N"
             ~doc:"Re-run a crashed obligation up to N times with a halved \
                   budget before recording an error verdict.")
  in
  let journal_path =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Append every completed obligation to FILE (fsync'd), so \
                   a killed campaign can be resumed.")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Replay verdicts already in the --journal file instead of \
                   re-running their engines.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"PATH"
             ~doc:"Write a Chrome trace_event JSON of the run (one lane per \
                   worker domain; load it in chrome://tracing or \
                   ui.perfetto.dev).")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"PATH"
             ~doc:"Write a JSON metrics summary: Table 2 totals per \
                   category, aggregated engine counters, and resource-out \
                   causes.")
  in
  let progress_interval =
    Arg.(value & opt float 10.0
         & info [ "progress-interval" ] ~docv:"SECS"
             ~doc:"Seconds between progress heartbeats on stderr.")
  in
  Cmd.v (Cmd.info "campaign" ~doc:"Run the full formal campaign (Table 2).")
    Term.(const run $ with_bugs $ jobs $ csv $ cache_path $ no_cache
          $ deadline $ max_retries $ journal_path $ resume $ trace $ metrics
          $ progress_interval)

(* ---- classify ---- *)

let classify_cmd =
  let run cycles =
    let chip = Chip.Generator.generate () in
    Format.printf "%a" Core.Classify.pp_table3 (Core.Classify.run ~cycles chip)
  in
  let cycles =
    Arg.(value & opt int 10_000
         & info [ "cycles" ] ~doc:"Simulation budget per run.")
  in
  Cmd.v (Cmd.info "classify" ~doc:"Classify the seeded bugs (Table 3).")
    Term.(const run $ cycles)

(* ---- area ---- *)

let area_cmd =
  let run () =
    let chip = Chip.Generator.generate () in
    Format.printf "%a@." Core.Report.pp_table1 (Core.Report.table1 chip);
    Format.printf "%a" Core.Report.pp_table4 (Core.Report.table4 chip);
    Format.printf "%a" Core.Report.pp_timing (Core.Report.timing_impact chip)
  in
  Cmd.v (Cmd.info "area" ~doc:"Area and timing impact (Tables 1, 4).")
    Term.(const run $ const ())

(* ---- fig7 ---- *)

let fig7_cmd =
  let run width limit =
    Format.printf "%a"
      Core.Report.pp_fig7
      (Core.Report.fig7 ~payload_width:width ~node_limit:limit ())
  in
  let width =
    Arg.(value & opt int 16 & info [ "width" ] ~doc:"Stream payload width.")
  in
  let limit =
    Arg.(value & opt int 100_000 & info [ "node-limit" ] ~doc:"BDD node budget.")
  in
  Cmd.v
    (Cmd.info "fig7" ~doc:"Divide-and-conquer partitioning experiment (Fig 7).")
    Term.(const run $ width $ limit)

(* ---- check ---- *)

let check_cmd =
  let run arch bug psl_file =
    let leaf = make_archetype ~bug arch in
    let info = Verifiable.Transform.apply leaf.Chip.Archetype.mdl in
    let vunits =
      match psl_file with
      | Some path ->
        let ic = open_in path in
        let len = in_channel_length ic in
        let src = really_input_string ic len in
        close_in ic;
        (try Psl.Parser.vunits_of_string src with
         | Psl.Parser.Error (msg, pos) ->
           Printf.eprintf "PSL parse error at offset %d: %s\n" pos msg;
           exit 1)
      | None ->
        List.map snd (Verifiable.Propgen.all info (spec_of leaf))
    in
    let failures = ref 0 in
    List.iter
      (fun vunit ->
        List.iter
          (fun (name, (o : Mc.Engine.outcome)) ->
            let verdict =
              match o.Mc.Engine.verdict with
              | Mc.Engine.Proved -> "proved"
              | Mc.Engine.Proved_bounded d ->
                Printf.sprintf "no violation up to depth %d" d
              | Mc.Engine.Failed _ ->
                incr failures;
                "FAILED"
              | Mc.Engine.Resource_out m -> "resource out: " ^ m
              | Mc.Engine.Error m -> "engine error: " ^ m
            in
            Printf.printf "%-28s %-30s %s (%.3fs)\n" name verdict
              o.Mc.Engine.engine_used o.Mc.Engine.time_s)
          (Mc.Engine.check_vunit info.Verifiable.Transform.mdl vunit))
      vunits;
    exit (if !failures > 0 then 1 else 0)
  in
  let arch =
    (* derived from [archetype_names] so the doc can't drift from what
       [make_archetype] accepts *)
    Arg.(required
         & pos 0 (some string) None
         & info [] ~docv:"ARCHETYPE"
             ~doc:(Printf.sprintf "Leaf archetype (%s)."
                     (String.concat ", " archetype_names)))
  in
  let bug = Arg.(value & flag & info [ "bug" ] ~doc:"Seed the archetype's bug.") in
  let psl =
    Arg.(value & opt (some file) None
         & info [ "psl" ] ~doc:"PSL file to check instead of the generated \
                                stereotype properties.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Model-check PSL against an archetype's Verifiable RTL.")
    Term.(const run $ arch $ bug $ psl)

(* ---- infer ---- *)

let infer_cmd =
  let run arch =
    let leaf = make_archetype arch in
    match Verifiable.Spec_infer.infer leaf.Chip.Archetype.mdl with
    | Error msg ->
      Printf.eprintf "inference failed: %s\n" msg;
      exit 1
    | Ok spec ->
      Printf.printf "HE signal:      %s\n" spec.Verifiable.Propgen.he;
      Printf.printf "parity inputs:  %s\n"
        (String.concat ", " spec.Verifiable.Propgen.parity_inputs);
      Printf.printf "parity outputs: %s\n"
        (String.concat ", " spec.Verifiable.Propgen.parity_outputs);
      List.iter
        (fun (src, bit) -> Printf.printf "checker map:    %s -> HE[%d]\n" src bit)
        spec.Verifiable.Propgen.he_map;
      let info = Verifiable.Transform.apply leaf.Chip.Archetype.mdl in
      let p0, p1, p2, p3 = Verifiable.Propgen.counts info spec in
      Printf.printf "properties:     P0=%d P1=%d P2=%d P3=%d\n" p0 p1 p2 p3
  in
  let arch =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ARCHETYPE")
  in
  Cmd.v
    (Cmd.info "infer"
       ~doc:"Infer the data-integrity specification from an archetype's RTL.")
    Term.(const run $ arch)

(* ---- emit ---- *)

let emit_cmd =
  let run arch what =
    let leaf = make_archetype arch in
    let info = Verifiable.Transform.apply leaf.Chip.Archetype.mdl in
    match what with
    | "rtl" -> print_string (Rtl.Verilog.module_to_string leaf.Chip.Archetype.mdl)
    | "verifiable" ->
      print_string (Rtl.Verilog.module_to_string info.Verifiable.Transform.mdl)
    | "psl" ->
      List.iter
        (fun (_, v) -> print_string (Psl.Print.vunit_to_string v))
        (Verifiable.Propgen.all info (spec_of leaf))
    | other ->
      Printf.eprintf "unknown output %s (rtl | verifiable | psl)\n" other;
      exit 2
  in
  let arch =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ARCHETYPE")
  in
  let what =
    Arg.(value & pos 1 string "verifiable"
         & info [] ~docv:"WHAT" ~doc:"rtl | verifiable | psl")
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Print an archetype as Verilog or its generated PSL.")
    Term.(const run $ arch $ what)

let () =
  let doc = "data-integrity formal verification methodology (DATE 2004 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "dicheck" ~doc)
          [ campaign_cmd; classify_cmd; area_cmd; fig7_cmd; check_cmd;
            infer_cmd; emit_cmd ]))
