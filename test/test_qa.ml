(* Tests for the differential QA layer: Bitvec/Bdd against brute-force
   references, SAT micro-fuzz with DIMACS round-trips, the Verilog
   print/parse round-trip on fuzzed designs, and the fuzz driver itself
   (smoke, determinism, injection/shrinking, mutation gauntlet). *)

let mask w x = x land ((1 lsl w) - 1)

(* ---- Bitvec vs the integer model (words of <= 12 bits) ---- *)

let arb_word2 =
  QCheck.make
    ~print:(fun (w, a, b) -> Printf.sprintf "w=%d a=%d b=%d" w a b)
    QCheck.Gen.(
      int_range 1 12 >>= fun w ->
      int_bound ((1 lsl w) - 1) >>= fun a ->
      int_bound ((1 lsl w) - 1) >>= fun b -> return (w, a, b))

let int_popcount x =
  let rec go n x = if x = 0 then n else go (n + 1) (x land (x - 1)) in
  go 0 x

let prop_bitvec_arith =
  QCheck.Test.make ~name:"Bitvec arithmetic matches the integer model"
    ~count:500 arb_word2 (fun (w, a, b) ->
      let bv = Bitvec.of_int ~width:w in
      Bitvec.to_int (Bitvec.add (bv a) (bv b)) = mask w (a + b)
      && Bitvec.to_int (Bitvec.sub (bv a) (bv b)) = mask w (a - b)
      && Bitvec.to_int (Bitvec.neg (bv a)) = mask w (-a)
      && Bitvec.to_int (Bitvec.succ (bv a)) = mask w (a + 1))

let prop_bitvec_logic =
  QCheck.Test.make ~name:"Bitvec logic matches the integer model" ~count:500
    arb_word2 (fun (w, a, b) ->
      let bv = Bitvec.of_int ~width:w in
      Bitvec.to_int (Bitvec.logand (bv a) (bv b)) = a land b
      && Bitvec.to_int (Bitvec.logor (bv a) (bv b)) = a lor b
      && Bitvec.to_int (Bitvec.logxor (bv a) (bv b)) = a lxor b
      && Bitvec.to_int (Bitvec.lognot (bv a)) = mask w (lnot a)
      && Bitvec.popcount (bv a) = int_popcount a
      && Bitvec.red_xor (bv a) = (int_popcount a land 1 = 1)
      && Bitvec.red_or (bv a) = (a <> 0)
      && Bitvec.red_and (bv a) = (a = mask w (-1)))

let prop_bitvec_structure =
  QCheck.Test.make ~name:"Bitvec concat/slice match the integer model"
    ~count:500 arb_word2 (fun (w, a, b) ->
      let bv = Bitvec.of_int ~width:w in
      Bitvec.to_int (Bitvec.concat (bv a) (bv b)) = (a lsl w) lor b
      && (w < 2
         || Bitvec.to_int (Bitvec.slice (bv a) ~hi:(w - 1) ~lo:1) = a lsr 1))

(* ---- Bdd vs exhaustive truth tables ---- *)

(* a function of [n <= 5] variables IS its truth table: an integer with one
   bit per assignment. Build the BDD from minterm cubes and compare against
   the table on every assignment. *)
let arb_tt =
  QCheck.make
    ~print:(fun (n, tt, tt') -> Printf.sprintf "n=%d tt=%#x tt'=%#x" n tt tt')
    QCheck.Gen.(
      int_range 1 5 >>= fun n ->
      int_bound ((1 lsl (1 lsl n)) - 1) >>= fun tt ->
      int_bound ((1 lsl (1 lsl n)) - 1) >>= fun tt' -> return (n, tt, tt'))

let bdd_of_tt man n tt =
  let f = ref (Bdd.zero man) in
  for m = 0 to (1 lsl n) - 1 do
    if tt land (1 lsl m) <> 0 then
      f :=
        Bdd.or_ man !f
          (Bdd.cube man (List.init n (fun i -> (i, m land (1 lsl i) <> 0))))
  done;
  !f

let prop_bdd_truth_table =
  QCheck.Test.make ~name:"Bdd ops match exhaustive truth tables" ~count:300
    arb_tt (fun (n, tt, tt') ->
      let man = Bdd.create ~nvars:n () in
      let f = bdd_of_tt man n tt and g = bdd_of_tt man n tt' in
      let agrees h table =
        let ok = ref true in
        for m = 0 to (1 lsl n) - 1 do
          let expect = table land (1 lsl m) <> 0 in
          if Bdd.eval man (fun i -> m land (1 lsl i) <> 0) h <> expect then
            ok := false
        done;
        !ok
      in
      let full = (1 lsl (1 lsl n)) - 1 in
      agrees f tt
      && agrees (Bdd.not_ man f) (full land lnot tt)
      && agrees (Bdd.and_ man f g) (tt land tt')
      && agrees (Bdd.or_ man f g) (tt lor tt')
      && agrees (Bdd.xor man f g) (tt lxor tt')
      && int_of_float (Bdd.sat_count man f) = int_popcount tt
      && Bdd.equal f g = (tt = tt'))

(* the 12-variable case, checked against brute force over all 4096
   assignments: the parity function, the worst case for a truth table and
   the best case for a BDD *)
let test_bdd_12var_parity () =
  let n = 12 in
  let man = Bdd.create ~nvars:n () in
  let f =
    List.fold_left
      (fun acc i -> Bdd.xor man acc (Bdd.var man i))
      (Bdd.zero man)
      (List.init n (fun i -> i))
  in
  for m = 0 to (1 lsl n) - 1 do
    let expect = int_popcount m land 1 = 1 in
    if Bdd.eval man (fun i -> m land (1 lsl i) <> 0) f <> expect then
      Alcotest.failf "parity BDD wrong on assignment %#x" m
  done;
  Alcotest.(check int)
    "sat_count" (1 lsl (n - 1))
    (int_of_float (Bdd.sat_count man f))

(* ---- SAT micro-fuzz: solver vs brute force, DIMACS round-trip ---- *)

let arb_cnf =
  let print (nvars, clauses) =
    Printf.sprintf "nvars=%d clauses=[%s]" nvars
      (String.concat "; "
         (List.map
            (fun c -> String.concat "," (List.map string_of_int c))
            clauses))
  in
  QCheck.make ~print
    QCheck.Gen.(
      int_range 1 20 >>= fun nvars ->
      int_range 0 30 >>= fun nclauses ->
      list_repeat nclauses
        ( int_range 1 3 >>= fun len ->
          list_repeat len
            ( int_range 1 nvars >>= fun v ->
              bool >>= fun s -> return (if s then v else -v) ) )
      >>= fun clauses -> return (nvars, clauses))

let brute_force_sat (c : Cnf.t) =
  let n = c.Cnf.nvars in
  let rec go m =
    if m = 1 lsl n then false
    else if Cnf.eval c (fun v -> m land (1 lsl (v - 1)) <> 0) then true
    else go (m + 1)
  in
  go 0

let prop_sat_differential =
  QCheck.Test.make ~name:"solver agrees with brute-force enumeration"
    ~count:300 arb_cnf (fun (nvars, clauses) ->
      let c = Cnf.create ~nvars clauses in
      match Solver.solve c with
      | Solver.Sat model ->
        (* the model must actually satisfy the formula, and when the space
           is small enough to enumerate, brute force must agree *)
        Cnf.eval c (fun v -> model.(v - 1))
        && (nvars > 12 || brute_force_sat c)
      | Solver.Unsat -> nvars > 12 || not (brute_force_sat c)
      | Solver.Unknown -> false)

let prop_dimacs_roundtrip =
  QCheck.Test.make ~name:"DIMACS print/parse round-trip" ~count:300 arb_cnf
    (fun (nvars, clauses) ->
      let c = Cnf.create ~nvars clauses in
      match Dimacs.parse (Format.asprintf "%a" Cnf.pp_dimacs c) with
      | Ok c' -> c'.Cnf.nvars = c.Cnf.nvars && c'.Cnf.clauses = c.Cnf.clauses
      | Error m -> QCheck.Test.fail_reportf "re-parse failed: %s" m)

(* ---- Verilog round-trip on fuzzed designs ---- *)

let test_verilog_roundtrip () =
  for index = 0 to 11 do
    let case = Qa.Gen.case_of ~seed:11 ~index in
    match Qa.Differential.roundtrip case.Qa.Gen.info.Verifiable.Transform.mdl with
    | Ok () -> ()
    | Error m -> Alcotest.failf "%s: %s" case.Qa.Gen.id m
  done

(* ---- generator determinism and shrink soundness ---- *)

let test_gen_deterministic () =
  let stream seed = List.init 50 (fun index -> Qa.Gen.params_of ~seed ~index) in
  Alcotest.(check bool) "same seed, same stream" true (stream 42 = stream 42);
  Alcotest.(check bool)
    "different seeds differ" false
    (stream 42 = stream 43)

let test_shrink_strictly_smaller () =
  for index = 0 to 19 do
    let p = Qa.Gen.params_of ~seed:5 ~index in
    List.iter
      (fun (c : Qa.Gen.params) ->
        let size (q : Qa.Gen.params) =
          (q.Qa.Gen.width, q.Qa.Gen.depth, q.Qa.Gen.variant)
        in
        if size c >= size p then
          Alcotest.failf "candidate %s not smaller than %s"
            (Qa.Gen.describe c) (Qa.Gen.describe p);
        (* every candidate must still build *)
        ignore (Qa.Gen.build ~id:"shrinkable" c))
      (Qa.Gen.shrink_candidates p)
  done

let test_every_template_builds () =
  List.iter
    (fun t ->
      (* min and max of each template's envelope, via the seeded stream *)
      let built = ref 0 in
      let index = ref 0 in
      while !built < 2 && !index < 200 do
        let p = Qa.Gen.params_of ~seed:1 ~index:!index in
        if p.Qa.Gen.template = t then begin
          let case =
            Qa.Gen.build ~id:("t_" ^ Qa.Gen.template_name t) p
          in
          let props =
            Verifiable.Propgen.all case.Qa.Gen.info case.Qa.Gen.spec
          in
          Alcotest.(check bool)
            (Qa.Gen.template_name t ^ " has obligations")
            true (props <> []);
          incr built
        end;
        incr index
      done;
      if !built = 0 then
        Alcotest.failf "seeded stream never produced template %s"
          (Qa.Gen.template_name t))
    Qa.Gen.templates

(* ---- the fuzz driver ---- *)

let small_config =
  { Qa.Fuzz.default_config with seed = 7; count = 3; gauntlet = false }

let test_fuzz_smoke () =
  let s = Qa.Fuzz.run { small_config with gauntlet = true } in
  Alcotest.(check int) "all cases run" 3 s.Qa.Fuzz.cases_run;
  Alcotest.(check bool) "no discrepancies" true (Qa.Fuzz.ok s);
  Alcotest.(check bool) "obligations checked" true (s.Qa.Fuzz.obligations > 0);
  Alcotest.(check bool)
    "every mutant killed" true
    (List.for_all (fun (_, d, t) -> d = t) s.Qa.Fuzz.kill_table)

let test_fuzz_deterministic () =
  let summarize (s : Qa.Fuzz.summary) =
    ( s.Qa.Fuzz.cases_run,
      s.Qa.Fuzz.obligations,
      s.Qa.Fuzz.engine_runs,
      List.length s.Qa.Fuzz.discrepancies,
      s.Qa.Fuzz.kill_table )
  in
  Alcotest.(check bool)
    "two runs, same verdicts" true
    (summarize (Qa.Fuzz.run small_config)
    = summarize (Qa.Fuzz.run small_config))

let test_fuzz_injection_shrinks () =
  let out_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "qa-fuzz-inject-%d" (Unix.getpid ()))
  in
  let s =
    Qa.Fuzz.run { small_config with count = 2; inject = Some 1; out_dir }
  in
  Alcotest.(check bool) "injection fails the run" false (Qa.Fuzz.ok s);
  Alcotest.(check bool)
    "discrepancy is the injected one" true
    (List.for_all
       (fun (d : Qa.Differential.discrepancy) ->
         d.Qa.Differential.kind = Qa.Differential.Injected)
       s.Qa.Fuzz.discrepancies
    && s.Qa.Fuzz.discrepancies <> []);
  match s.Qa.Fuzz.shrunk with
  | [ sh ] ->
    (* the injected failure is parameter-independent, so greedy shrinking
       must reach the template's minimum envelope *)
    Alcotest.(check bool)
      "shrunk to a smaller record" true
      (sh.Qa.Fuzz.to_params.Qa.Gen.width
       <= sh.Qa.Fuzz.from_params.Qa.Gen.width
      && sh.Qa.Fuzz.to_params.Qa.Gen.variant = 0);
    Alcotest.(check int) "three reproducer files" 3
      (List.length sh.Qa.Fuzz.files);
    List.iter
      (fun f ->
        Alcotest.(check bool) (f ^ " exists") true (Sys.file_exists f))
      sh.Qa.Fuzz.files;
    let json_file =
      List.find (fun f -> Filename.check_suffix f ".json") sh.Qa.Fuzz.files
    in
    let ic = open_in json_file in
    let src = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (match Obs.Json.parse src with
     | Ok j ->
       Alcotest.(check (option string))
         "reproducer schema"
         (Some "dicheck-fuzz-failure-v1")
         (Option.bind (Obs.Json.member "schema" j) Obs.Json.to_str)
     | Error m -> Alcotest.failf "reproducer JSON invalid: %s" m)
  | shs -> Alcotest.failf "expected one shrunk case, got %d" (List.length shs)

let test_mutation_gauntlet_kills_all () =
  (* one small host per Table 3 class; every one must die to its class *)
  let host template width =
    { Qa.Gen.template; width; depth = 1; variant = 5; mutation = None }
  in
  let hosts =
    [ host Qa.Gen.Fsm_ctrl 4; host Qa.Gen.Counter 2; host Qa.Gen.Csr 2;
      host Qa.Gen.Macro_if 2; host Qa.Gen.Datapath 2; host Qa.Gen.Decoder 3 ]
  in
  let seen = ref [] in
  List.iter
    (fun p ->
      let r =
        Qa.Mutate.run_case p ~id:("g_" ^ Qa.Gen.template_name p.Qa.Gen.template)
      in
      List.iter
        (fun (k : Qa.Mutate.kill) ->
          seen := k.Qa.Mutate.bug :: !seen;
          if not k.Qa.Mutate.detected then
            Alcotest.failf "mutant %s escaped: %s"
              (Chip.Bugs.name k.Qa.Mutate.bug)
              (Option.value ~default:"?" k.Qa.Mutate.detail);
          Alcotest.(check bool)
            (Chip.Bugs.name k.Qa.Mutate.bug ^ " killed by its class")
            true
            (k.Qa.Mutate.cls = Chip.Bugs.property_class k.Qa.Mutate.bug))
        r.Qa.Mutate.kills)
    hosts;
  List.iter
    (fun b ->
      Alcotest.(check bool)
        ("gauntlet covers " ^ Chip.Bugs.name b)
        true (List.mem b !seen))
    Chip.Bugs.all

let () =
  Alcotest.run "qa"
    [ ( "brute-force",
        List.map QCheck_alcotest.to_alcotest
          [ prop_bitvec_arith; prop_bitvec_logic; prop_bitvec_structure;
            prop_bdd_truth_table; prop_sat_differential;
            prop_dimacs_roundtrip ]
        @ [ Alcotest.test_case "bdd 12-var parity" `Quick
              test_bdd_12var_parity ] );
      ( "generator",
        [ Alcotest.test_case "verilog roundtrip" `Quick test_verilog_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "shrink candidates" `Quick
            test_shrink_strictly_smaller;
          Alcotest.test_case "every template builds" `Quick
            test_every_template_builds ] );
      ( "fuzz",
        [ Alcotest.test_case "smoke" `Quick test_fuzz_smoke;
          Alcotest.test_case "deterministic" `Quick test_fuzz_deterministic;
          Alcotest.test_case "injection shrinks" `Quick
            test_fuzz_injection_shrinks;
          Alcotest.test_case "mutation gauntlet" `Quick
            test_mutation_gauntlet_kills_all ] ) ]
