(* End-to-end methodology: the design flow, a scoped-down verification
   campaign, bug classification, and the report generators. *)

module G = Chip.Generator
module PG = Verifiable.Propgen

let chip = lazy (G.generate ())

let test_flow_release () =
  let leaf = Chip.Archetype.counter ~name:"flow_cnt" () in
  let spec =
    { PG.he = leaf.Chip.Archetype.he; he_map = leaf.Chip.Archetype.he_map;
      parity_inputs = leaf.Chip.Archetype.parity_inputs;
      parity_outputs = leaf.Chip.Archetype.parity_outputs;
      extra = leaf.Chip.Archetype.extra_props }
  in
  match Core.Flow.release_verifiable_rtl leaf.Chip.Archetype.mdl ~spec with
  | Error issues ->
    Alcotest.failf "release rejected: %d issues" (List.length issues)
  | Ok release ->
    Alcotest.(check int) "three stereotype vunits" 3
      (List.length release.Core.Flow.vunits);
    Alcotest.(check bool) "PSL text released" true
      (String.length release.Core.Flow.psl_text > 100);
    let feedback = Core.Flow.verify_release release in
    Alcotest.(check int) "all properties checked" 5 (List.length feedback);
    Alcotest.(check int) "no failures on clean module" 0
      (List.length (Core.Flow.failures feedback))

let test_flow_rejects_dirty_rtl () =
  (* an undriven output must be fixed before release *)
  let m = Rtl.Mdl.create "dirty" in
  let m = Rtl.Mdl.add_output m "O" 1 in
  let m =
    Rtl.Mdl.add_reg ~cls:Rtl.Mdl.Counter ~parity_protected:true m "c" 2
      (Rtl.Expr.var "c")
  in
  let spec =
    { PG.he = "O"; he_map = []; parity_inputs = []; parity_outputs = [];
      extra = [] }
  in
  match Core.Flow.release_verifiable_rtl m ~spec with
  | Error issues -> Alcotest.(check bool) "issues reported" true (issues <> [])
  | Ok _ -> Alcotest.fail "dirty RTL accepted"

let test_flow_feedback_on_bug () =
  let leaf = Chip.Archetype.counter ~name:"flow_bug" ~bug:true () in
  let spec =
    { PG.he = leaf.Chip.Archetype.he; he_map = leaf.Chip.Archetype.he_map;
      parity_inputs = leaf.Chip.Archetype.parity_inputs;
      parity_outputs = leaf.Chip.Archetype.parity_outputs; extra = [] }
  in
  match Core.Flow.release_verifiable_rtl leaf.Chip.Archetype.mdl ~spec with
  | Error _ -> Alcotest.fail "release rejected"
  | Ok release ->
    let failures = Core.Flow.failures (Core.Flow.verify_release release) in
    Alcotest.(check bool) "bug produces feedback" true (failures <> []);
    List.iter
      (fun (f : Core.Flow.feedback) ->
        Alcotest.(check bool) "feedback formats" true
          (String.length (Format.asprintf "%a" Core.Flow.pp_feedback f) > 0))
      failures

(* the three bug modules of category A only: exercises the full Campaign
   machinery without the cost of all 2047 properties *)
let mini_chip () =
  let t = Lazy.force chip in
  let cat_a =
    List.find (fun (c : G.category) -> c.G.cat_name = "A") t.G.categories
  in
  let specials =
    List.filter (fun (u : G.unit_) -> u.G.leaf.Chip.Archetype.bug <> None)
      cat_a.G.units
  in
  Alcotest.(check int) "three seeded units in A" 3 (List.length specials);
  { t with
    G.categories =
      [ { cat_a with G.units = specials;
          G.expected = { cat_a.G.expected with G.sub = 3 } } ] }

let test_mini_campaign () =
  let mini = mini_chip () in
  let result = Core.Campaign.run mini in
  Alcotest.(check int) "one row" 1 (List.length result.Core.Campaign.rows);
  (match result.Core.Campaign.rows with
   | [ row ] ->
     Alcotest.(check int) "three defective modules" 3 row.Core.Campaign.bugs_found;
     Alcotest.(check bool) "some properties proved" true
       (row.Core.Campaign.proved > 0);
     Alcotest.(check int) "no resource-outs" 0 row.Core.Campaign.resource_out;
     Alcotest.(check int) "totals add up" row.Core.Campaign.total
       (row.Core.Campaign.p0 + row.Core.Campaign.p1 + row.Core.Campaign.p2
        + row.Core.Campaign.p3)
   | _ -> Alcotest.fail "expected one row");
  (* every failed property sits in a module with a seeded bug *)
  List.iter
    (fun (r : Core.Campaign.prop_result) ->
      Alcotest.(check bool) "failure has seeded bug" true (r.Core.Campaign.bug <> None))
    (Core.Campaign.failed_results result);
  let rendered = Format.asprintf "%a" Core.Campaign.pp_table2 result in
  Alcotest.(check bool) "table renders" true (String.length rendered > 50);
  (* CSV export: header plus one row per property *)
  let csv = Core.Campaign.to_csv result in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
  in
  Alcotest.(check int) "csv rows" (List.length result.Core.Campaign.results + 1)
    (List.length lines);
  (match lines with
   | header :: _ ->
     Alcotest.(check bool) "csv header" true
       (String.length header > 0 && String.sub header 0 8 = "category")
   | [] -> Alcotest.fail "empty csv")

(* everything a verdict row asserts, minus wall-clock time and cache-hit
   placement (both legitimately schedule-dependent) *)
let result_key (r : Core.Campaign.prop_result) =
  let verdict =
    match r.Core.Campaign.outcome.Mc.Engine.verdict with
    | Mc.Engine.Proved -> "proved"
    | Mc.Engine.Proved_bounded d -> Printf.sprintf "bounded:%d" d
    | Mc.Engine.Failed _ -> "failed"
    | Mc.Engine.Resource_out m -> "resource:" ^ m
    | Mc.Engine.Error m -> "error:" ^ m
  in
  Printf.sprintf "%s/%s/%s/%s/%s/%s/%s" r.Core.Campaign.category
    r.Core.Campaign.module_name r.Core.Campaign.vunit_name
    r.Core.Campaign.prop_name
    (Verifiable.Propgen.class_name r.Core.Campaign.cls)
    verdict
    (match r.Core.Campaign.bug with
     | Some b -> Chip.Bugs.name b
     | None -> "-")

let row_key (r : Core.Campaign.row) =
  (* every row field except the timing sum *)
  Printf.sprintf "%s/%d/%d/%d/%d/%d/%d/%d/%d/%d/%d" r.Core.Campaign.cat
    r.Core.Campaign.subs r.Core.Campaign.bugs_found r.Core.Campaign.p0
    r.Core.Campaign.p1 r.Core.Campaign.p2 r.Core.Campaign.p3
    r.Core.Campaign.total r.Core.Campaign.proved r.Core.Campaign.failed
    r.Core.Campaign.resource_out

let test_parallel_matches_sequential () =
  let mini = mini_chip () in
  let seq = Core.Campaign.run mini in
  let par = Core.Campaign.run ~jobs:4 mini in
  Alcotest.(check (list string)) "same verdicts in the same order"
    (List.map result_key seq.Core.Campaign.results)
    (List.map result_key par.Core.Campaign.results);
  Alcotest.(check (list string)) "same rows"
    (List.map row_key seq.Core.Campaign.rows)
    (List.map row_key par.Core.Campaign.rows);
  Alcotest.(check string) "same grand total"
    (row_key seq.Core.Campaign.grand_total)
    (row_key par.Core.Campaign.grand_total)

let test_campaign_warm_cache () =
  let mini = mini_chip () in
  let cache = Mc.Cache.create () in
  let cold = Core.Campaign.run ~cache mini in
  let fresh_after_cold = Mc.Cache.misses cache in
  Alcotest.(check bool) "cold run proves something fresh" true
    (fresh_after_cold > 0);
  let warm = Core.Campaign.run ~jobs:4 ~cache mini in
  Alcotest.(check int) "warm re-campaign runs zero fresh engine calls"
    fresh_after_cold (Mc.Cache.misses cache);
  Alcotest.(check int) "every warm verdict is a cache hit"
    (List.length warm.Core.Campaign.results) warm.Core.Campaign.cache_hits;
  Alcotest.(check bool) "warm results flag the hits" true
    (List.for_all
       (fun (r : Core.Campaign.prop_result) -> r.Core.Campaign.cache_hit)
       warm.Core.Campaign.results);
  Alcotest.(check (list string)) "warm verdicts identical to cold"
    (List.map result_key cold.Core.Campaign.results)
    (List.map result_key warm.Core.Campaign.results);
  (* CSV reports the per-property cache-hit column *)
  let csv = Core.Campaign.to_csv warm in
  (match String.split_on_char '\n' csv with
   | header :: _ ->
     Alcotest.(check bool) "csv has cache_hit column" true
       (List.mem "cache_hit" (String.split_on_char ',' header))
   | [] -> Alcotest.fail "empty csv")

let test_executor_map () =
  let input = Array.init 201 (fun i -> i) in
  let f i = (i * 37) mod 101 in
  let expected = Array.map f input in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "pool of %d preserves order" jobs)
        expected
        (Core.Executor.map (Core.Executor.pool ~jobs) f input))
    [ 1; 2; 3; 8 ];
  Alcotest.(check (array int)) "empty input" [||]
    (Core.Executor.map (Core.Executor.pool ~jobs:4) f [||]);
  Alcotest.(check int) "of_jobs None is sequential" 1
    Core.Executor.(jobs (of_jobs None));
  Alcotest.(check int) "of_jobs clamps" 1 Core.Executor.(jobs (of_jobs (Some 0)));
  (* exceptions propagate out of worker domains *)
  Alcotest.check_raises "worker exception propagates" Exit (fun () ->
      ignore
        (Core.Executor.map (Core.Executor.pool ~jobs:3)
           (fun i -> if i = 150 then raise Exit else i)
           input))

(* race_map_result: every backend and job count must settle every group on
   the same attributed prefix — racing changes wall time, not answers *)
let test_executor_race_groups () =
  let n = 60 in
  let input = Array.init n (fun i -> i) in
  (* item i: Done for multiples of 7; otherwise 1..5 attempts where attempt
     k yields i*10+k and exactly attempt (i mod 3) is conclusive — which for
     some items lies beyond the attempt count, so no attempt concludes *)
  let open_ i =
    if i mod 7 = 0 then Core.Executor.Done [ -i ]
    else
      Core.Executor.Race
        { attempts = 1 + (i mod 5);
          run = (fun k ~cancel -> ignore (cancel ()); (i * 10) + k);
          conclusive = (fun v -> v mod 10 = i mod 3);
          combine = (fun vs -> vs) }
  in
  let expected =
    Array.init n (fun i ->
        if i mod 7 = 0 then [ -i ]
        else
          let attempts = 1 + (i mod 5) and winner = i mod 3 in
          let prefix = if winner < attempts then winner + 1 else attempts in
          List.init prefix (fun k -> (i * 10) + k))
  in
  let values label results =
    Array.map
      (function
        | Ok v -> v
        | Error e -> Alcotest.failf "%s: unexpected error: %s" label
                       (Printexc.to_string e))
      results
  in
  Alcotest.(check (array (list int))) "sequential backend" expected
    (values "seq" (Core.Executor.race_map_result Core.Executor.sequential
                     open_ input));
  List.iter
    (fun (jobs, race_jobs) ->
      let label = Printf.sprintf "pool %d / race %d" jobs race_jobs in
      Alcotest.(check (array (list int))) label expected
        (values label
           (Core.Executor.race_map_result (Core.Executor.pool ~jobs)
              ~race_jobs open_ input)))
    [ (2, 1); (3, 2); (4, 4); (8, 3) ];
  (* a raising attempt decides its group as Error on every backend *)
  let open_err i =
    Core.Executor.Race
      { attempts = 3;
        run = (fun k ~cancel ->
                ignore (cancel ());
                if i = 2 && k = 1 then raise Exit else k);
        conclusive = (fun v -> v = 2);
        combine = (fun vs -> vs) }
  in
  List.iter
    (fun exec ->
      let rs = Core.Executor.race_map_result exec open_err (Array.init 4 Fun.id) in
      Array.iteri
        (fun i r ->
          match (i, r) with
          | 2, Error Exit -> ()
          | 2, _ -> Alcotest.fail "crashing attempt must decide as Error Exit"
          | _, Ok [ 0; 1; 2 ] -> ()
          | _, _ -> Alcotest.fail "healthy group settled wrong")
        rs)
    [ Core.Executor.sequential; Core.Executor.pool ~jobs:4 ];
  Alcotest.(check int) "empty input" 0
    (Array.length
       (Core.Executor.race_map_result (Core.Executor.pool ~jobs:4) open_ [||]))

(* a conclusive attempt cancels its running sibling, and the sibling's
   cooperative return is observed within the 100ms latency bound *)
let test_executor_race_cancellation () =
  let loser_started = Atomic.make false in
  let loser_cancelled_at = Atomic.make 0.0 in
  let winner_done_at = Atomic.make 0.0 in
  let spin_until ?(timeout = 5.0) p =
    let t0 = Unix.gettimeofday () in
    while (not (p ())) && Unix.gettimeofday () -. t0 < timeout do
      Domain.cpu_relax ()
    done;
    p ()
  in
  let open_ () =
    Core.Executor.Race
      { attempts = 3;
        run =
          (fun k ~cancel ->
            match k with
            | 0 -> 0 (* the probe: completes without concluding *)
            | 1 ->
              (* the winner: holds until the loser is live, so cancellation
                 is actually exercised, then concludes *)
              ignore (spin_until (fun () -> Atomic.get loser_started));
              Atomic.set winner_done_at (Unix.gettimeofday ());
              1
            | _ ->
              (* the loser: polls the hook like an engine loop would *)
              Atomic.set loser_started true;
              if spin_until cancel then
                Atomic.set loser_cancelled_at (Unix.gettimeofday ());
              2);
        conclusive = (fun v -> v = 1);
        combine = (fun vs -> vs) }
  in
  match
    Core.Executor.race_map_result (Core.Executor.pool ~jobs:3) open_ [| () |]
  with
  | [| Ok prefix |] ->
    Alcotest.(check (list int)) "attribution stops at the winner" [ 0; 1 ]
      prefix;
    Alcotest.(check bool) "loser ran concurrently" true
      (Atomic.get loser_started);
    let cancelled = Atomic.get loser_cancelled_at in
    Alcotest.(check bool) "loser observed cancellation" true (cancelled > 0.0);
    let latency = cancelled -. Atomic.get winner_done_at in
    Alcotest.(check bool)
      (Printf.sprintf "cancellation latency %.1fms under 100ms"
         (latency *. 1e3))
      true (latency < 0.1)
  | _ -> Alcotest.fail "expected one settled group"

(* the racing scheduler must be invisible in the results: verdicts, rows,
   attribution and the summed perf of a portfolio campaign are identical
   between one job (the sequential ladder) and a racing pool *)
let test_racing_matches_sequential_portfolio () =
  let mini = mini_chip () in
  let base =
    { Mc.Engine.default_budget with Mc.Engine.bdd_node_limit = Some 5_000 }
  in
  let portfolio = Mc.Engine.default_portfolio base in
  let seq =
    Core.Campaign.run ~budget:base ~portfolio ~cache:(Mc.Cache.create ()) mini
  in
  let race =
    Core.Campaign.run ~budget:base ~portfolio ~jobs:4 ~race_jobs:4
      ~cache:(Mc.Cache.create ()) mini
  in
  Alcotest.(check (list string)) "same verdicts in the same order"
    (List.map result_key seq.Core.Campaign.results)
    (List.map result_key race.Core.Campaign.results);
  Alcotest.(check (list string)) "same rows"
    (List.map row_key seq.Core.Campaign.rows)
    (List.map row_key race.Core.Campaign.rows);
  (* attribution: each obligation credits the same member in both modes *)
  let engines (t : Core.Campaign.t) =
    List.map
      (fun (r : Core.Campaign.prop_result) ->
        r.Core.Campaign.outcome.Mc.Engine.engine_used)
      t.Core.Campaign.results
  in
  Alcotest.(check (list string)) "same winning engine per obligation"
    (engines seq) (engines race);
  Alcotest.(check (list (pair string int))) "same per-strategy win counts"
    (Core.Campaign.wins_by_engine seq) (Core.Campaign.wins_by_engine race);
  (* no row may ever be attributed to a cancelled loser *)
  List.iter
    (fun (r : Core.Campaign.prop_result) ->
      if Mc.Engine.resource_cause r.Core.Campaign.outcome = Some "cancelled"
      then Alcotest.failf "%s attributed to a cancelled run"
             r.Core.Campaign.prop_name)
    race.Core.Campaign.results;
  (* aggregate perf is schedule-independent in every integer field (wall
     times are the one legitimately schedule-dependent measure) *)
  let p_seq = Core.Campaign.aggregate_perf seq in
  let p_race = Core.Campaign.aggregate_perf race in
  let fields (p : Core.Campaign.perf_totals) =
    [ ("engine_attempts", p.Core.Campaign.engine_attempts);
      ("fix_iterations", p.Core.Campaign.fix_iterations);
      ("bdd_peak", p.Core.Campaign.bdd_peak);
      ("peak_set_size", p.Core.Campaign.peak_set_size);
      ("bdd_polls", p.Core.Campaign.bdd_polls);
      ("sat_decisions", p.Core.Campaign.sat_decisions);
      ("sat_conflicts", p.Core.Campaign.sat_conflicts);
      ("sat_propagations", p.Core.Campaign.sat_propagations);
      ("sat_restarts", p.Core.Campaign.sat_restarts);
      ("max_unroll_depth", p.Core.Campaign.max_unroll_depth);
      ("max_final_k", p.Core.Campaign.max_final_k);
      ("max_ic3_frames", p.Core.Campaign.max_ic3_frames) ]
  in
  Alcotest.(check (list (pair string int)))
    "aggregate perf identical under racing" (fields p_seq) (fields p_race)

let test_trace_vcd_export () =
  (* a counterexample exports as a well-formed VCD *)
  let leaf = Chip.Archetype.counter ~name:"vcd_cnt" ~bug:true () in
  let info = Verifiable.Transform.apply leaf.Chip.Archetype.mdl in
  let spec =
    { PG.he = leaf.Chip.Archetype.he; he_map = leaf.Chip.Archetype.he_map;
      parity_inputs = leaf.Chip.Archetype.parity_inputs;
      parity_outputs = leaf.Chip.Archetype.parity_outputs; extra = [] }
  in
  let vunit = PG.soundness_vunit info spec in
  let assert_ = Psl.Ast.property vunit "pNoError_0" in
  let assumes = List.map snd (Psl.Ast.assumes vunit) in
  match
    (Mc.Engine.check_property info.Verifiable.Transform.mdl ~assert_ ~assumes)
      .Mc.Engine.verdict
  with
  | Mc.Engine.Failed trace ->
    let vcd = Mc.Trace.to_vcd trace in
    let contains needle =
      let n = String.length needle and h = String.length vcd in
      let rec go i = i + n <= h && (String.sub vcd i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "has definitions" true (contains "$enddefinitions");
    Alcotest.(check bool) "has state var" true (contains "cnt_q");
    Alcotest.(check bool) "has timesteps" true (contains "#0")
  | Mc.Engine.Proved | Mc.Engine.Proved_bounded _ | Mc.Engine.Resource_out _
  | Mc.Engine.Error _ ->
    Alcotest.fail "expected failure"

let test_classification_matches_paper () =
  let t = Lazy.force chip in
  let results = Core.Classify.run ~cycles:3_000 ~seeds:[ 11; 23; 37 ] t in
  Alcotest.(check int) "seven bugs classified" 7 (List.length results);
  List.iter
    (fun (r : Core.Classify.result) ->
      Alcotest.(check bool)
        (Chip.Bugs.name r.Core.Classify.bug ^ " found by formal")
        true r.Core.Classify.formal_found;
      Alcotest.(check bool)
        (Chip.Bugs.name r.Core.Classify.bug ^ " property class matches Table 3")
        true
        (r.Core.Classify.observed_cls = Some r.Core.Classify.expected_cls);
      Alcotest.(check bool)
        (Chip.Bugs.name r.Core.Classify.bug ^ " simulation difficulty matches")
        true
        (r.Core.Classify.sim_easy = r.Core.Classify.expected_easy))
    results

let test_report_table1 () =
  let t = Lazy.force chip in
  let rows = Core.Report.table1 t in
  Alcotest.(check int) "four rows" 4 (List.length rows);
  Alcotest.(check bool) "logic size row present" true
    (List.mem_assoc "Logic size" rows)

let test_report_table4_and_timing () =
  let t = Lazy.force chip in
  let rows = Core.Report.table4 t in
  Alcotest.(check int) "five categories" 5 (List.length rows);
  List.iter
    (fun (r : Core.Report.area_row) ->
      Alcotest.(check bool)
        (r.Core.Report.cat ^ " increase positive")
        true
        (r.Core.Report.increase_pct > 0.0 && r.Core.Report.increase_pct < 5.0))
    rows;
  let timing = Core.Report.timing_impact t in
  Alcotest.(check bool) "meets timing at 250MHz" true
    timing.Core.Report.meets_timing;
  Alcotest.(check (float 0.001)) "selector is the paper's 200ps" 200.0
    timing.Core.Report.selector_delay_ps;
  Alcotest.(check bool) "selector around 4-5% of cycle" true
    (timing.Core.Report.selector_pct_of_path >= 3.0
     && timing.Core.Report.selector_pct_of_path <= 6.0)

let test_fig7_shape () =
  (* small instance so the test is quick: the monolithic property must
     exhaust the budget, all partitioned pieces must verify within it *)
  let rows = Core.Report.fig7 ~payload_width:12 ~node_limit:60_000 () in
  Alcotest.(check int) "five pieces" 5 (List.length rows);
  (match rows with
   | mono :: rest ->
     Alcotest.(check bool) "monolithic times out" true
       (String.length mono.Core.Report.verdict >= 8
        && String.sub mono.Core.Report.verdict 0 8 = "time-out");
     List.iter
       (fun (r : Core.Report.fig7_outcome) ->
         Alcotest.(check string)
           (r.Core.Report.piece ^ " verdict")
           "proved" r.Core.Report.verdict;
         Alcotest.(check bool)
           (r.Core.Report.piece ^ " smaller state")
           true
           (r.Core.Report.state_bits <= mono.Core.Report.state_bits))
       rest
   | [] -> Alcotest.fail "no rows")


(* ---- sequential equivalence checking ---- *)

let test_equiv_transform_safe () =
  (* the paper's central safety claim, proved formally: with the injection
     ports tied to zero, Verifiable RTL is equivalent to the original *)
  List.iter
    (fun (leaf : Chip.Archetype.leaf) ->
      let info = Verifiable.Transform.apply leaf.Chip.Archetype.mdl in
      match
        Core.Equiv.check_transform_against ~original:leaf.Chip.Archetype.mdl
          info
      with
      | Core.Equiv.Equivalent -> ()
      | Core.Equiv.Different _ ->
        Alcotest.failf "%s: transform changed behavior!"
          leaf.Chip.Archetype.mdl.Rtl.Mdl.name
      | Core.Equiv.Undecided msg ->
        Alcotest.failf "%s: undecided: %s" leaf.Chip.Archetype.mdl.Rtl.Mdl.name
          msg)
    [ Chip.Archetype.counter ~name:"eq_cnt" ();
      Chip.Archetype.fsm_ctrl ~name:"eq_fsm" ();
      Chip.Archetype.csr ~name:"eq_csr" ();
      Chip.Archetype.datapath ~name:"eq_alu" ();
      Chip.Archetype.fifo ~name:"eq_fifo" () ]

let test_equiv_finds_difference () =
  (* the bugged counter differs from the clean one, with a trace that
     actually distinguishes them in simulation *)
  let clean = (Chip.Archetype.counter ~name:"eqd_cnt" ()).Chip.Archetype.mdl in
  let bugged =
    (Chip.Archetype.counter ~name:"eqd_cnt" ~bug:true ()).Chip.Archetype.mdl
  in
  match Core.Equiv.check_modules ~a:clean ~b:bugged () with
  | Core.Equiv.Different { trace; _ } ->
    Alcotest.(check bool) "nonempty trace" true (Mc.Trace.length trace > 0);
    (* replay on both sides and compare outputs at the final cycle *)
    (* the violation is observed on the settled outputs of the final
       cycle, before that cycle's clock edge *)
    let run m =
      let nl =
        Rtl.Elaborate.run (Rtl.Design.of_modules [ m ]) ~top:m.Rtl.Mdl.name
      in
      let sim = Sim.Simulator.create nl in
      Sim.Simulator.reset sim;
      let out = ref (Bitvec.zero 5, Bitvec.zero 2) in
      List.iter
        (fun inputs ->
          Sim.Simulator.drive_all sim inputs;
          Sim.Simulator.settle sim;
          out := (Sim.Simulator.peek sim "COUNT", Sim.Simulator.peek sim "HE");
          Sim.Simulator.clock sim)
        (Mc.Trace.replay_stimulus trace);
      !out
    in
    let c0, h0 = run clean in
    let c1, h1 = run bugged in
    Alcotest.(check bool) "trace distinguishes the machines" true
      (not (Bitvec.equal c0 c1 && Bitvec.equal h0 h1))
  | Core.Equiv.Equivalent -> Alcotest.fail "bugged counter declared equivalent"
  | Core.Equiv.Undecided msg -> Alcotest.failf "undecided: %s" msg

let test_equiv_interface_mismatch () =
  let a = (Chip.Archetype.counter ~name:"eqi_a" ()).Chip.Archetype.mdl in
  let b = (Chip.Archetype.datapath ~name:"eqi_b" ()).Chip.Archetype.mdl in
  Alcotest.(check bool) "interface mismatch rejected" true
    (match Core.Equiv.check_modules ~a ~b () with
     | _ -> false
     | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "core"
    [ ("flow",
       [ Alcotest.test_case "release and verify" `Quick test_flow_release;
         Alcotest.test_case "rejects dirty RTL" `Quick test_flow_rejects_dirty_rtl;
         Alcotest.test_case "feedback on bug" `Quick test_flow_feedback_on_bug ]);
      ("campaign",
       [ Alcotest.test_case "mini campaign over bug modules" `Slow
           test_mini_campaign;
         Alcotest.test_case "parallel executor matches sequential" `Slow
           test_parallel_matches_sequential;
         Alcotest.test_case "warm cache reruns without the engines" `Slow
           test_campaign_warm_cache;
         Alcotest.test_case "executor map" `Quick test_executor_map;
         Alcotest.test_case "executor race groups" `Quick
           test_executor_race_groups;
         Alcotest.test_case "race cancellation latency" `Quick
           test_executor_race_cancellation;
         Alcotest.test_case "racing matches sequential portfolio" `Slow
           test_racing_matches_sequential_portfolio;
         Alcotest.test_case "trace vcd export" `Quick test_trace_vcd_export ]);
      ("classification",
       [ Alcotest.test_case "table 3 reproduction" `Slow
           test_classification_matches_paper ]);
      ("equivalence",
       [ Alcotest.test_case "transform is safe (formal)" `Slow
           test_equiv_transform_safe;
         Alcotest.test_case "finds real differences" `Quick
           test_equiv_finds_difference;
         Alcotest.test_case "interface mismatch" `Quick
           test_equiv_interface_mismatch ]);
      ("report",
       [ Alcotest.test_case "table 1" `Quick test_report_table1;
         Alcotest.test_case "table 4 and timing" `Quick
           test_report_table4_and_timing;
         Alcotest.test_case "figure 7" `Slow test_fig7_shape ]) ]
