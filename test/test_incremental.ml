(* Differential lockdown of the incremental SAT path and the packed BDD
   arena. The incremental solvers (persistent clause database, learnt-clause
   retention, assumption solving) must be observationally identical to the
   rebuild-from-scratch oracles: same verdicts, same final depths/k, same
   trace lengths — on every structurally distinct seeded-chip obligation and
   on a Qa.Gen fuzz stream. The solver itself is pinned by a QCheck
   equivalence (solve_assuming A = fresh solve of CNF ∧ A) and a
   determinism/retention regression. The arena BDD is pinned against
   exhaustive truth tables across slab growth and unique-table rehashes. *)

module E = Mc.Engine

(* ---- result signatures: what must agree between the two modes ---- *)

let bmc_sig = function
  | Mc.Bmc.No_violation_upto (d, (s : Mc.Bmc.stats)) ->
    Printf.sprintf "no-violation:%d:%d" d s.Mc.Bmc.depth
  | Mc.Bmc.Violation (tr, s) ->
    Printf.sprintf "violation:%d:%d" (Mc.Trace.length tr) s.Mc.Bmc.depth
  | Mc.Bmc.Inconclusive _ -> "inconclusive"

let kind_sig = function
  | Mc.Induction.Proved_by_induction (s : Mc.Induction.stats) ->
    Printf.sprintf "proved:%d" s.Mc.Induction.k
  | Mc.Induction.Violation (tr, s) ->
    Printf.sprintf "violation:%d:%d" (Mc.Trace.length tr) s.Mc.Induction.k
  | Mc.Induction.Inconclusive _ -> "inconclusive"

(* IC3's two modes answer the same queries but may explore different models,
   so frame counts and even refutation depths can differ; only the verdict
   class is pinned *)
let ic3_sig = function
  | Mc.Ic3.Proved _ -> "proved"
  | Mc.Ic3.Violation _ -> "violation"
  | Mc.Ic3.Inconclusive _ -> "inconclusive"

let check_netlist_both ~label (nl, ok_signal, constraint_signal) =
  let bmc inc =
    bmc_sig
      (Mc.Bmc.check ~incremental:inc ~max_conflicts:50_000 ?constraint_signal
         nl ~ok_signal ~depth:8)
  in
  Alcotest.(check string) (label ^ ": bmc") (bmc false) (bmc true);
  let kind inc =
    kind_sig
      (Mc.Induction.check ~incremental:inc ~max_conflicts:50_000 ~max_k:8
         ?constraint_signal nl ~ok_signal)
  in
  Alcotest.(check string) (label ^ ": kind") (kind false) (kind true);
  let ic3 inc =
    ic3_sig
      (Mc.Ic3.check ~incremental:inc ~max_conflicts:50_000 ~max_frames:8
         ?constraint_signal nl ~ok_signal)
  in
  Alcotest.(check string) (label ^ ": ic3") (ic3 false) (ic3 true)

(* every structurally distinct obligation of the seeded bug chip, prepared
   through the shared per-module path exactly like the campaign does *)
let test_seeded_chip_differential () =
  let chip = Chip.Generator.generate ~with_bugs:true () in
  let works = Core.Campaign.work_items chip in
  let by_module = Hashtbl.create 97 in
  let order = ref [] in
  List.iter
    (fun (w : Core.Campaign.work) ->
      let mname = w.Core.Campaign.w_mdl.Rtl.Mdl.name in
      let key =
        w.Core.Campaign.w_vunit_name ^ "/" ^ w.Core.Campaign.w_prop_name
      in
      (match Hashtbl.find_opt by_module mname with
       | None ->
         order := (mname, w.Core.Campaign.w_mdl) :: !order;
         Hashtbl.add by_module mname []
       | Some _ -> ());
      Hashtbl.replace by_module mname
        (Hashtbl.find by_module mname
        @ [ (key, w.Core.Campaign.w_assert, w.Core.Campaign.w_assumes) ]))
    works;
  let seen = Hashtbl.create 97 in
  let unique = ref 0 and total = ref 0 in
  List.iter
    (fun (mname, mdl) ->
      let props = Hashtbl.find by_module mname in
      List.iter
        (fun (key, ((nl, ok, cons) as prep)) ->
          incr total;
          let roots =
            ok :: (match cons with Some c -> [ c ] | None -> [])
          in
          let fp = Rtl.Canon.fingerprint ~roots nl in
          if not (Hashtbl.mem seen fp) then begin
            Hashtbl.add seen fp ();
            incr unique;
            check_netlist_both ~label:(mname ^ "." ^ key) prep
          end)
        (E.prepare_module mdl ~props))
    (List.rev !order);
  Alcotest.(check int) "all obligations prepared" (List.length works) !total;
  Alcotest.(check bool) "dedup leaves a meaningful sweep" true (!unique > 20)

(* a Qa.Gen stream — wider parameter space than the chip, including seeded
   mutations, so violating obligations are well represented *)
let test_fuzz_stream_differential () =
  for index = 0 to 7 do
    let case = Qa.Gen.case_of ~seed:42 ~index in
    let mdl = case.Qa.Gen.info.Verifiable.Transform.mdl in
    List.iter
      (fun (_cls, vu) ->
        let assumes = List.map snd (Psl.Ast.assumes vu) in
        List.iter
          (fun (prop_name, assert_) ->
            let prep = E.instrumented_netlist mdl ~assert_ ~assumes in
            check_netlist_both
              ~label:(case.Qa.Gen.id ^ "." ^ prop_name)
              prep)
          (Psl.Ast.asserts vu))
      (Verifiable.Propgen.all case.Qa.Gen.info case.Qa.Gen.spec)
  done

(* ---- solve_assuming A == fresh solve of (CNF ∧ A), sequenced ---- *)

let arb_inc_instance =
  let open QCheck.Gen in
  let gen =
    int_range 1 20 >>= fun nvars ->
    int_range 0 60 >>= fun nclauses ->
    let lit =
      int_range 1 nvars >>= fun v -> map (fun b -> if b then v else -v) bool
    in
    list_repeat nclauses (int_range 1 4 >>= fun len -> list_repeat len lit)
    >>= fun clauses ->
    int_range 1 4 >>= fun nsets ->
    list_repeat nsets
      (int_range 0 5 >>= fun n ->
       list_repeat n lit >|= fun ls ->
       (* one literal per variable: contradictory assumption pairs would
          only test the Assumption_false path, which crafted tests cover *)
       List.sort_uniq compare
         (List.filteri
            (fun i l ->
              List.for_all (fun l' -> abs l' <> abs l)
                (List.filteri (fun j _ -> j < i) ls))
            ls))
    >|= fun sets -> (nvars, clauses, sets)
  in
  QCheck.make
    ~print:(fun (nvars, clauses, sets) ->
      Printf.sprintf "nvars=%d clauses=%s sets=%s" nvars
        (String.concat ";"
           (List.map
              (fun c -> String.concat "," (List.map string_of_int c))
              clauses))
        (String.concat ";"
           (List.map
              (fun s -> String.concat "," (List.map string_of_int s))
              sets)))
    gen

let prop_solve_assuming_equiv =
  QCheck.Test.make
    ~name:"solve_assuming A == fresh solve of CNF ∧ A (sequenced)" ~count:300
    arb_inc_instance (fun (nvars, clauses, sets) ->
      let t = Solver.create () in
      List.iter (Solver.add_clause t) clauses;
      List.for_all
        (fun assumps ->
          let inc = Solver.solve_assuming t assumps in
          let scratch =
            Solver.solve
              (Cnf.create ~nvars
                 (clauses @ List.map (fun l -> [ l ]) assumps))
          in
          match (inc, scratch) with
          | Solver.Sat model, Solver.Sat _ ->
            let value l =
              let v = model.(abs l - 1) in
              if l > 0 then v else not v
            in
            List.for_all (fun c -> List.exists value c) clauses
            && List.for_all value assumps
          | Solver.Unsat, Solver.Unsat -> true
          | (Solver.Sat _ | Solver.Unsat | Solver.Unknown), _ -> false)
        sets)

(* ---- determinism and learnt-clause retention across restarts ---- *)

(* php(5,4) under an activation literal: enough conflicts to trigger
   restarts, and UNSAT only when the activation is assumed *)
let php_activated () =
  let pigeons = 7 and holes = 6 in
  let act = (pigeons * holes) + 1 in
  let var p h = (p * holes) + h + 1 in
  let clauses =
    List.init pigeons (fun p -> -act :: List.init holes (fun h -> var p h))
    @ List.concat
        (List.concat
           (List.init holes (fun h ->
                List.init pigeons (fun p1 ->
                    List.filteri
                      (fun p2 _ -> p2 > p1)
                      (List.init pigeons (fun p2 ->
                           [ -var p1 h; -var p2 h ]))))))
  in
  (act, clauses)

let test_solver_determinism () =
  let act, clauses = php_activated () in
  let cnf =
    Cnf.create ~nvars:act (clauses @ [ [ act ] ])
  in
  let r1, s1 = Solver.solve_stats cnf in
  let r2, s2 = Solver.solve_stats cnf in
  let is_unsat = function
    | Solver.Unsat -> true
    | Solver.Sat _ | Solver.Unknown -> false
  in
  Alcotest.(check bool) "one-shot unsat" true (is_unsat r1 && is_unsat r2);
  Alcotest.(check bool) "one-shot solves are bit-identical work" true
    (s1 = s2);
  Alcotest.(check bool) "the search restarts (the regression's trigger)" true
    (s1.Solver.restarts > 0);
  (* two persistent solvers fed the same call sequence do the same work *)
  let mk () =
    let t = Solver.create () in
    List.iter (Solver.add_clause t) clauses;
    t
  in
  let a = mk () and b = mk () in
  let _, sa = Solver.solve_assuming_stats a [ act ] in
  let _, sb = Solver.solve_assuming_stats b [ act ] in
  Alcotest.(check bool) "persistent solvers are deterministic" true (sa = sb)

let test_learnt_retention () =
  let act, clauses = php_activated () in
  let t = Solver.create () in
  List.iter (Solver.add_clause t) clauses;
  let r1, s1 = Solver.solve_assuming_stats t [ act ] in
  let _r2, s2 = Solver.solve_assuming_stats t [ act ] in
  let is_unsat = function
    | Solver.Unsat -> true
    | Solver.Sat _ | Solver.Unknown -> false
  in
  Alcotest.(check bool) "unsat under activation" true (is_unsat r1);
  (* the whole point of clause persistence: the second identical query rides
     the learnt clauses (and the restart logic must not have thrown the
     activity order away) — it must conflict strictly less *)
  Alcotest.(check bool)
    (Printf.sprintf "second solve cheaper (%d -> %d conflicts)"
       s1.Solver.conflicts s2.Solver.conflicts)
    true
    (s2.Solver.conflicts < s1.Solver.conflicts);
  (* and the solver is still usable and sat without the activation *)
  match Solver.solve_assuming t [] with
  | Solver.Sat _ -> ()
  | Solver.Unsat | Solver.Unknown ->
    Alcotest.fail "database alone must stay satisfiable"

(* ---- shared preparation == unshared preparation, name for name ---- *)

let test_prepare_module_identity () =
  let chip = Chip.Generator.generate ~with_bugs:false () in
  let works = Core.Campaign.work_items chip in
  (* first module carrying at least two properties *)
  let mdl, props =
    let tbl = Hashtbl.create 7 in
    let rec find = function
      | [] -> Alcotest.fail "chip has no multi-property module"
      | (w : Core.Campaign.work) :: rest ->
        let mname = w.Core.Campaign.w_mdl.Rtl.Mdl.name in
        let prev =
          Option.value ~default:[] (Hashtbl.find_opt tbl mname)
        in
        let props =
          prev
          @ [ (w.Core.Campaign.w_prop_name, w.Core.Campaign.w_assert,
               w.Core.Campaign.w_assumes) ]
        in
        Hashtbl.replace tbl mname props;
        if List.length props >= 2 then (w.Core.Campaign.w_mdl, props)
        else find rest
    in
    find works
  in
  let shared = E.prepare_module mdl ~props in
  Alcotest.(check int) "one prepared check per property" (List.length props)
    (List.length shared);
  List.iter2
    (fun (name, assert_, assumes) (name', (nl, ok, cons)) ->
      Alcotest.(check string) "order preserved" name name';
      let nl_u, ok_u, cons_u = E.instrumented_netlist mdl ~assert_ ~assumes in
      Alcotest.(check string) (name ^ ": ok signal") ok_u ok;
      Alcotest.(check (option string)) (name ^ ": constraint") cons_u cons;
      let fp n roots = Rtl.Canon.fingerprint ~roots n in
      let roots o c = o :: (match c with Some c -> [ c ] | None -> []) in
      Alcotest.(check string)
        (name ^ ": fingerprint")
        (fp nl_u (roots ok_u cons_u))
        (fp nl (roots ok cons));
      let same (a, b, c) (a', b', c') = a = a' && b = b' && c = c' in
      Alcotest.(check bool) (name ^ ": same stats") true
        (same (Rtl.Netlist.stats nl_u) (Rtl.Netlist.stats nl)))
    props shared

(* ---- arena BDD vs exhaustive truth tables ---- *)

type bexp =
  | V of int
  | Const of bool
  | Not of bexp
  | And of bexp * bexp
  | Or of bexp * bexp
  | Xor of bexp * bexp

let rec gen_bexp n depth st =
  let open QCheck.Gen in
  if depth = 0 then
    frequency
      [ (4, map (fun i -> V i) (int_range 0 (n - 1)));
        (1, map (fun b -> Const b) bool) ]
      st
  else
    let sub = gen_bexp n (depth - 1) in
    frequency
      [ (2, map (fun i -> V i) (int_range 0 (n - 1)));
        (1, map (fun e -> Not e) sub);
        (2, map2 (fun a b -> And (a, b)) sub sub);
        (2, map2 (fun a b -> Or (a, b)) sub sub);
        (1, map2 (fun a b -> Xor (a, b)) sub sub) ]
      st

let rec eval_bexp assign = function
  | V i -> assign i
  | Const b -> b
  | Not e -> not (eval_bexp assign e)
  | And (a, b) -> eval_bexp assign a && eval_bexp assign b
  | Or (a, b) -> eval_bexp assign a || eval_bexp assign b
  | Xor (a, b) -> eval_bexp assign a <> eval_bexp assign b

let rec build_bdd m = function
  | V i -> Bdd.var m i
  | Const b -> if b then Bdd.one m else Bdd.zero m
  | Not e -> Bdd.not_ m (build_bdd m e)
  | And (a, b) -> Bdd.and_ m (build_bdd m a) (build_bdd m b)
  | Or (a, b) -> Bdd.or_ m (build_bdd m a) (build_bdd m b)
  | Xor (a, b) -> Bdd.xor m (build_bdd m a) (build_bdd m b)

let rec print_bexp = function
  | V i -> Printf.sprintf "x%d" i
  | Const b -> string_of_bool b
  | Not e -> "!" ^ print_bexp e
  | And (a, b) -> Printf.sprintf "(%s&%s)" (print_bexp a) (print_bexp b)
  | Or (a, b) -> Printf.sprintf "(%s|%s)" (print_bexp a) (print_bexp b)
  | Xor (a, b) -> Printf.sprintf "(%s^%s)" (print_bexp a) (print_bexp b)

let arb_bexp =
  QCheck.make
    ~print:(fun (n, e) -> Printf.sprintf "n=%d %s" n (print_bexp e))
    QCheck.Gen.(
      int_range 1 12 >>= fun n ->
      int_range 0 6 >>= fun depth ->
      gen_bexp n depth >|= fun e -> (n, e))

let prop_arena_matches_brute_force =
  QCheck.Test.make ~name:"arena BDD matches exhaustive evaluation" ~count:200
    arb_bexp (fun (n, e) ->
      let m = Bdd.create ~nvars:n () in
      let f = build_bdd m e in
      let ones = ref 0 in
      let ok = ref true in
      for mask = 0 to (1 lsl n) - 1 do
        let assign i = (mask lsr i) land 1 = 1 in
        let expect = eval_bexp assign e in
        if expect then incr ones;
        if Bdd.eval m assign f <> expect then ok := false;
        (* cofactor agreement on variable 0 *)
        let f0 = Bdd.restrict m 0 (assign 0) f in
        if Bdd.eval m assign f0 <> expect then ok := false
      done;
      !ok
      && Bdd.is_one f = (!ones = 1 lsl n)
      && Bdd.is_zero f = (!ones = 0)
      && Bdd.sat_count m f = float_of_int !ones)

(* cubes force thousands of fresh nodes: several slab doublings and unique
   table rehashes; hash consing must stay exact through all of them *)
let test_arena_growth_rehash () =
  let n = 16 in
  let m = Bdd.create ~nvars:n () in
  let cube_of i =
    Bdd.cube m (List.init n (fun v -> (v, (i lsr v) land 1 = 1)))
  in
  let cubes = Array.init 600 cube_of in
  Alcotest.(check bool) "arena grew past its initial capacity" true
    (Bdd.node_count m > 1024);
  (* re-interning after growth and rehash yields the same handles *)
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) "hash consing survives rehash" true
        (Bdd.equal c (cube_of i)))
    cubes;
  (* and the functions are still right *)
  Array.iteri
    (fun i c ->
      let assign v = (i lsr v) land 1 = 1 in
      Alcotest.(check bool) "cube sat at its own minterm" true
        (Bdd.eval m assign c);
      Alcotest.(check bool) "cube unsat one bit off" false
        (Bdd.eval m (fun v -> if v = 0 then not (assign 0) else assign v) c);
      Alcotest.(check (float 0.0)) "cube sat_count" 1.0 (Bdd.sat_count m c))
    cubes

let test_arena_interrupt_and_peak () =
  let n = 16 in
  let m = Bdd.create ~nvars:n () in
  Bdd.set_interrupt m (Some (fun () -> false));
  for i = 0 to 1199 do
    ignore (Bdd.cube m (List.init n (fun v -> (v, ((i * 7) lsr v) land 1 = 1))))
  done;
  Alcotest.(check bool) "interrupt polled during allocation" true
    (Bdd.interrupt_polls m > 0);
  let count_before = Bdd.node_count m in
  Bdd.clear_caches m;
  Alcotest.(check int) "clear_caches keeps the arena (peak accounting)"
    count_before (Bdd.node_count m);
  (* a firing interrupt aborts the allocating operation *)
  Bdd.set_interrupt m (Some (fun () -> true));
  let interrupted = ref false in
  (try
     for i = 0 to 9999 do
       ignore
         (Bdd.cube m
            (List.init n (fun v -> (v, ((i * 131) lsr v) land 1 = 1))))
     done
   with Bdd.Interrupted -> interrupted := true);
  Alcotest.(check bool) "interrupt aborts" true !interrupted;
  Alcotest.(check bool) "arena monotone across the abort" true
    (Bdd.node_count m >= count_before)

let test_arena_node_limit () =
  let m = Bdd.create ~node_limit:100 ~nvars:16 () in
  let hit = ref false in
  (try
     for i = 0 to 999 do
       ignore
         (Bdd.cube m (List.init 16 (fun v -> (v, (i lsr v) land 1 = 1))))
     done
   with Bdd.Node_limit -> hit := true);
  Alcotest.(check bool) "node limit enforced" true !hit;
  Alcotest.(check bool) "limit is exact" true (Bdd.node_count m <= 100)

let () =
  Alcotest.run "incremental"
    [ ("differential",
       [ Alcotest.test_case "seeded chip: incremental == scratch" `Slow
           test_seeded_chip_differential;
         Alcotest.test_case "fuzz stream: incremental == scratch" `Slow
           test_fuzz_stream_differential ]);
      ("solver",
       [ QCheck_alcotest.to_alcotest prop_solve_assuming_equiv;
         Alcotest.test_case "determinism" `Quick test_solver_determinism;
         Alcotest.test_case "learnt retention across restarts" `Quick
           test_learnt_retention ]);
      ("preparation",
       [ Alcotest.test_case "prepare_module == instrumented_netlist" `Quick
           test_prepare_module_identity ]);
      ("arena",
       [ QCheck_alcotest.to_alcotest prop_arena_matches_brute_force;
         Alcotest.test_case "growth and rehash" `Quick
           test_arena_growth_rehash;
         Alcotest.test_case "interrupt polling and peak accounting" `Quick
           test_arena_interrupt_and_peak;
         Alcotest.test_case "node limit" `Quick test_arena_node_limit ]) ]
