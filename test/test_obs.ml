(* Observability stack: the JSON codec, the telemetry collector, the Chrome
   trace export, and the campaign-level guarantees built on them — counter
   determinism for sequential runs and schedule-independent perf aggregates
   between the sequential and pool executors. *)

module T = Obs.Telemetry
module J = Obs.Json
module G = Chip.Generator
module M = Rtl.Mdl
module E = Rtl.Expr

let chip = lazy (G.generate ())

(* same cut-down campaign fixture as test_runtime: category A bug modules
   only, enough to exercise caching and both executors cheaply *)
let mini_chip () =
  let t = Lazy.force chip in
  let cat_a =
    List.find (fun (c : G.category) -> c.G.cat_name = "A") t.G.categories
  in
  let specials =
    List.filter (fun (u : G.unit_) -> u.G.leaf.Chip.Archetype.bug <> None)
      cat_a.G.units
  in
  { t with
    G.categories =
      [ { cat_a with G.units = specials;
          G.expected = { cat_a.G.expected with G.sub = 3 } } ] }

(* ---- JSON round-trips ---- *)

let sample_json =
  J.Obj
    [ ("schema", J.String "test-v1");
      ("ok", J.Bool true);
      ("nothing", J.Null);
      ("n", J.Int 42);
      ("neg", J.Int (-7));
      ("x", J.Float 1.5);
      ("s", J.String "line\nbreak \"quoted\" back\\slash");
      ("xs", J.List [ J.Int 1; J.Int 2; J.Int 3 ]);
      ("nested", J.Obj [ ("empty_list", J.List []); ("empty_obj", J.Obj []) ])
    ]

let test_json_roundtrip () =
  List.iter
    (fun render ->
      match J.parse (render sample_json) with
      | Ok v -> Alcotest.(check bool) "round-trip preserves" true
                  (v = sample_json)
      | Error e -> Alcotest.failf "parse failed: %s" e)
    [ J.to_string; J.to_string_pretty ]

let test_json_parse_errors () =
  let bad = [ "{"; "[1,]"; "{\"a\":}"; "1 2"; "tru"; "\"\\q\"" ] in
  List.iter
    (fun s ->
      match J.parse s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" s
      | Error _ -> ())
    bad;
  (* \uXXXX decodes to UTF-8 *)
  match J.parse "\"\\u00e9\"" with
  | Ok (J.String "\xc3\xa9") -> ()
  | Ok _ -> Alcotest.fail "unicode escape decoded wrong"
  | Error e -> Alcotest.failf "unicode escape rejected: %s" e

(* ---- collector basics ---- *)

let test_collector_merge () =
  T.start ();
  T.count "apples";
  T.count ~n:4 "apples";
  T.count "pears";
  let v = T.span ~cat:"test" ~args:[ ("k", "v") ] "outer" (fun () ->
      T.span ~cat:"test" "inner" (fun () -> 17))
  in
  Alcotest.(check int) "span returns the thunk's value" 17 v;
  (try T.span "raiser" (fun () -> failwith "boom") with Failure _ -> ());
  let r = T.stop () in
  Alcotest.(check int) "counters sum" 5 (T.counter r "apples");
  Alcotest.(check int) "second counter" 1 (T.counter r "pears");
  Alcotest.(check int) "absent counter is 0" 0 (T.counter r "nope");
  Alcotest.(check int) "one recording domain" 1 r.T.domains;
  let names = List.map (fun (s : T.span) -> s.T.name) r.T.spans in
  Alcotest.(check bool) "spans recorded, raising included" true
    (List.mem "outer" names && List.mem "inner" names
     && List.mem "raiser" names);
  List.iter
    (fun (s : T.span) ->
      Alcotest.(check bool) "durations are sane" true
        (s.T.dur_us >= 0.0 && s.T.ts_us >= 0.0))
    r.T.spans;
  (* stop really uninstalls *)
  Alcotest.(check bool) "inactive after stop" false (T.active ())

let test_stop_without_start () =
  let r = T.stop () in
  Alcotest.(check int) "empty report" 0 (List.length r.T.counters);
  Alcotest.(check int) "no spans" 0 (List.length r.T.spans)

(* ---- zero-cost disabled path ---- *)

let test_zero_sink_overhead () =
  Alcotest.(check bool) "no collector installed" false (T.active ());
  let iters = 100_000 in
  (* warm up: first call may initialize the DLS slot *)
  T.count "warmup";
  let p0 = T.calls_probe () in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    T.count "disabled.counter"
  done;
  let words = Gc.minor_words () -. w0 in
  let probed = T.calls_probe () - p0 in
  Alcotest.(check int) "probe proves the path ran" iters probed;
  (* the disabled path is one atomic incr + a load-and-branch: allow a
     little slack for the loop itself, but nothing per-iteration *)
  Alcotest.(check bool)
    (Printf.sprintf "no per-call allocation (%.0f minor words)" words)
    true
    (words < float_of_int iters /. 10.)

(* ---- engine resource causes are canonical strings ---- *)

let test_bdd_nodes_cause () =
  let w = 24 in
  let m = M.create "node_hog" in
  let m = M.add_output m "OK" 1 in
  let m = M.add_reg m "c" w E.(var "c" +: of_int ~width:w 1) in
  let m =
    M.add_assign m "OK" E.(!:(var "c" ==: of_int ~width:w ((1 lsl w) - 1)))
  in
  let budget =
    { Mc.Engine.default_budget with
      Mc.Engine.bdd_node_limit = Some 64; wall_deadline_s = None }
  in
  let o =
    Mc.Engine.check_property ~budget ~strategy:Mc.Engine.Bdd_forward m
      ~assert_:(Psl.Parser.fl_of_string "always OK") ~assumes:[]
  in
  (match o.Mc.Engine.verdict with
   | Mc.Engine.Resource_out "bdd-nodes" -> ()
   | Mc.Engine.Resource_out c -> Alcotest.failf "wrong cause: %s" c
   | _ -> Alcotest.fail "expected Resource_out");
  Alcotest.(check (option string)) "resource_cause accessor"
    (Some "bdd-nodes") (Mc.Engine.resource_cause o)

(* ---- SAT per-solve stats ---- *)

let test_solver_stats_deterministic () =
  (* a small unsatisfiable pigeonhole-ish instance: forces real search *)
  let cnf =
    (* 4 pigeons, 3 holes: var p*3 + h + 1 *)
    let v p h = (p * 3) + h + 1 in
    let at_least = List.init 4 (fun p -> List.init 3 (fun h -> v p h)) in
    let no_share =
      List.concat_map
        (fun h ->
          let pairs = ref [] in
          for p1 = 0 to 3 do
            for p2 = p1 + 1 to 3 do
              pairs := [ -v p1 h; -v p2 h ] :: !pairs
            done
          done;
          !pairs)
        [ 0; 1; 2 ]
    in
    Cnf.create ~nvars:12 (at_least @ no_share)
  in
  let r1, s1 = Solver.solve_stats cnf in
  let r2, s2 = Solver.solve_stats cnf in
  (match r1 with
   | Solver.Unsat -> ()
   | _ -> Alcotest.fail "pigeonhole should be unsat");
  Alcotest.(check bool) "same result" true (r1 = r2);
  Alcotest.(check bool) "stats identical across runs" true (s1 = s2);
  Alcotest.(check bool) "search actually happened" true
    (s1.Solver.propagations > 0 && s1.Solver.decisions > 0)

(* ---- sequential counter determinism ---- *)

let non_time_counters (r : T.report) =
  List.filter
    (fun (name, _) ->
      not (String.length name > 3
           && String.sub name (String.length name - 3) 3 = "_us"))
    r.T.counters

let run_recorded ?jobs mini =
  T.start ();
  let t = Core.Campaign.run ?jobs mini in
  let r = T.stop () in
  (t, r)

let test_sequential_counters_deterministic () =
  let mini = mini_chip () in
  let _, r1 = run_recorded mini in
  let _, r2 = run_recorded mini in
  Alcotest.(check (list (pair string int)))
    "non-time counters identical across sequential runs"
    (non_time_counters r1) (non_time_counters r2);
  Alcotest.(check bool) "engine counters present" true
    (T.counter r1 "engine.checks" > 0 && T.counter r1 "cache.miss" > 0)

(* ---- sequential vs pool: schedule-independent aggregates ---- *)

let ints_of (p : Core.Campaign.perf_totals) =
  [ p.Core.Campaign.engine_attempts; p.Core.Campaign.fix_iterations;
    p.Core.Campaign.bdd_peak; p.Core.Campaign.peak_set_size;
    p.Core.Campaign.bdd_polls; p.Core.Campaign.sat_decisions;
    p.Core.Campaign.sat_conflicts; p.Core.Campaign.sat_propagations;
    p.Core.Campaign.sat_restarts; p.Core.Campaign.max_unroll_depth;
    p.Core.Campaign.max_final_k ]

let result_key (r : Core.Campaign.prop_result) =
  Printf.sprintf "%s/%s/%s" r.Core.Campaign.module_name
    r.Core.Campaign.vunit_name r.Core.Campaign.prop_name

let test_seq_vs_pool_aggregates () =
  let mini = mini_chip () in
  let seq, _ = run_recorded ~jobs:1 mini in
  let par, _ = run_recorded ~jobs:4 mini in
  Alcotest.(check (list string)) "same rows in the same order"
    (List.map result_key seq.Core.Campaign.results)
    (List.map result_key par.Core.Campaign.results);
  Alcotest.(check (list int)) "perf aggregates schedule-independent"
    (ints_of (Core.Campaign.aggregate_perf seq))
    (ints_of (Core.Campaign.aggregate_perf par));
  Alcotest.(check (list (pair string int))) "resource-out causes agree"
    (Core.Campaign.resource_out_causes seq)
    (Core.Campaign.resource_out_causes par);
  Alcotest.(check bool) "aggregates are non-trivial" true
    ((Core.Campaign.aggregate_perf seq).Core.Campaign.engine_attempts > 0)

(* ---- trace export parses back and is structurally a Chrome trace ---- *)

let test_trace_export_parses () =
  let mini = mini_chip () in
  let _, r = run_recorded ~jobs:2 mini in
  Alcotest.(check bool) "campaign produced spans" true
    (List.length r.T.spans > 0);
  let s = Obs.Trace_export.to_chrome_string r in
  let j =
    match J.parse s with
    | Ok j -> j
    | Error e -> Alcotest.failf "trace JSON does not parse: %s" e
  in
  let events =
    match Option.bind (J.member "traceEvents" j) J.to_list with
    | Some evs -> evs
    | None -> Alcotest.fail "traceEvents missing"
  in
  let ph e = Option.bind (J.member "ph" e) J.to_str in
  let xs = List.filter (fun e -> ph e = Some "X") events in
  let ms = List.filter (fun e -> ph e = Some "M") events in
  Alcotest.(check int) "one X event per span" (List.length r.T.spans)
    (List.length xs);
  let tid_of e = Option.bind (J.member "tid" e) J.to_int in
  List.iter
    (fun e ->
      let has f = J.member f e <> None in
      Alcotest.(check bool) "X event is complete" true
        (has "name" && has "cat" && has "ts" && has "dur" && tid_of e <> None
         && Option.bind (J.member "pid" e) J.to_int = Some 1))
    xs;
  (* every lane used by an X event is named by an M metadata event *)
  let named_tids = List.filter_map tid_of ms in
  List.iter
    (fun e ->
      match tid_of e with
      | Some tid ->
        Alcotest.(check bool) "lane has a thread_name" true
          (List.mem tid named_tids)
      | None -> ())
    xs;
  List.iter
    (fun e ->
      Alcotest.(check (option string)) "M events are thread_name"
        (Some "thread_name")
        (Option.bind (J.member "name" e) J.to_str))
    ms

(* ---- metrics JSON parses back with the documented schema ---- *)

let test_metrics_json_parses () =
  let mini = mini_chip () in
  let t, r = run_recorded ~jobs:2 mini in
  let s = Core.Campaign.to_metrics_json ~report:r ~jobs:2 t in
  let j =
    match J.parse s with
    | Ok j -> j
    | Error e -> Alcotest.failf "metrics JSON does not parse: %s" e
  in
  let str_at path =
    Option.bind (J.member path j) J.to_str
  in
  Alcotest.(check (option string)) "schema tag"
    (Some "dicheck-metrics-v1") (str_at "schema");
  let int_at obj f = Option.bind (J.member f obj) J.to_int in
  (match J.member "totals" j with
   | Some totals ->
     Alcotest.(check (option int)) "totals.total"
       (Some (List.length t.Core.Campaign.results))
       (int_at totals "total")
   | None -> Alcotest.fail "totals missing");
  (match Option.bind (J.member "perf" j) (J.member "engine_attempts") with
   | Some a ->
     Alcotest.(check (option int)) "perf.engine_attempts"
       (Some (Core.Campaign.aggregate_perf t).Core.Campaign.engine_attempts)
       (J.to_int a)
   | None -> Alcotest.fail "perf.engine_attempts missing");
  (match J.member "counters" j with
   | Some (J.Obj _) -> ()
   | _ -> Alcotest.fail "counters missing though a report was supplied")

(* ---- JSON string escaping over arbitrary bytes ---- *)

let string_roundtrips s =
  match J.parse (J.to_string (J.String s)) with
  | Ok (J.String s') -> s' = s
  | Ok _ | Error _ -> false

let qcheck_json_string_roundtrip =
  QCheck.Test.make ~count:500 ~name:"any string round-trips as JSON"
    QCheck.(string_gen (Gen.char_range '\000' '\255'))
    string_roundtrips

let test_json_all_bytes () =
  (* every byte value, including the control chars 0x00-0x1f whose escaping
     once only covered \n, \t etc. *)
  let all = String.init 256 Char.chr in
  Alcotest.(check bool) "all 256 bytes round-trip" true
    (string_roundtrips all);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%S round-trips" s)
        true (string_roundtrips s))
    [ "\x00"; "\x01\x02\x03"; "\x1f"; "\x7f"; "a\x00b"; "\r\n\t\b\x0c";
      "\xc3\xa9 caf\xc3\xa9" ]

(* ---- flight recorder ---- *)

module F = Obs.Flight

let test_flight_wraparound () =
  F.enable ~capacity:8 ();
  for i = 0 to 19 do
    F.record "tick" ~detail:(string_of_int i)
  done;
  let evs = F.events () in
  let dropped = F.dropped () in
  F.disable ();
  Alcotest.(check int) "ring keeps exactly capacity" 8 (List.length evs);
  Alcotest.(check int) "12 events overwritten" 12 dropped;
  Alcotest.(check (list int)) "survivors are the newest, in order"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map (fun (e : F.event) -> e.F.seq) evs);
  List.iter
    (fun (e : F.event) ->
      Alcotest.(check string) "detail matches seq"
        (string_of_int e.F.seq) e.F.detail;
      Alcotest.(check string) "kind preserved" "tick" e.F.kind)
    evs

let test_flight_merge_ordering () =
  F.enable ~capacity:64 ();
  F.record "main" ~detail:"0";
  let worker tag =
    Domain.spawn (fun () ->
        for i = 0 to 9 do
          F.record tag ~detail:(string_of_int i)
        done)
  in
  let d1 = worker "w1" and d2 = worker "w2" in
  Domain.join d1;
  Domain.join d2;
  F.record "main" ~detail:"1";
  let evs = F.events () in
  F.disable ();
  Alcotest.(check int) "all events survive" 22 (List.length evs);
  Alcotest.(check int) "nothing dropped" 0 (F.dropped ());
  (* global order is (t_s, lane, seq): within each lane, recording order *)
  let lanes = Hashtbl.create 4 in
  List.iter
    (fun (e : F.event) ->
      let prev =
        Option.value ~default:(-1) (Hashtbl.find_opt lanes e.F.lane)
      in
      Alcotest.(check bool) "per-lane seqs strictly increase" true
        (e.F.seq > prev);
      Hashtbl.replace lanes e.F.lane e.F.seq)
    evs;
  Alcotest.(check int) "three lanes recorded" 3 (Hashtbl.length lanes);
  let sorted = List.sort compare (List.map (fun e -> e.F.t_s) evs) in
  Alcotest.(check (list (float 0.))) "merged view is time-sorted"
    sorted (List.map (fun e -> e.F.t_s) evs)

let test_flight_disabled_overhead () =
  F.disable ();
  Alcotest.(check bool) "no recorder installed" false (F.active ());
  let iters = 100_000 in
  F.record "warmup";
  let p0 = F.calls_probe () in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    F.record "disabled.event"
  done;
  let words = Gc.minor_words () -. w0 in
  let probed = F.calls_probe () - p0 in
  Alcotest.(check int) "probe proves the path ran" iters probed;
  Alcotest.(check bool)
    (Printf.sprintf "no per-call allocation (%.0f minor words)" words)
    true
    (words < float_of_int iters /. 10.)

let test_flight_dump_schema () =
  F.enable ~capacity:4 ();
  F.record "a" ~detail:"x";
  F.record "b";
  let j = F.to_json ~reason:"unit-test" () in
  F.disable ();
  let str k = Option.bind (J.member k j) J.to_str in
  Alcotest.(check (option string)) "schema" (Some "dicheck-flight-v1")
    (str "schema");
  Alcotest.(check (option string)) "reason" (Some "unit-test")
    (str "reason");
  (match Option.bind (J.member "events" j) J.to_list with
   | Some [ e1; e2 ] ->
     Alcotest.(check (option string)) "kind" (Some "a")
       (Option.bind (J.member "kind" e1) J.to_str);
     Alcotest.(check (option string)) "detail" (Some "x")
       (Option.bind (J.member "detail" e1) J.to_str);
     Alcotest.(check (option string)) "detail defaults empty" (Some "")
       (Option.bind (J.member "detail" e2) J.to_str)
   | Some evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)
   | None -> Alcotest.fail "events missing");
  (* events after disable are free no-ops and the view is empty *)
  F.record "after";
  Alcotest.(check int) "inactive recorder yields no events" 0
    (List.length (F.events ()))

(* ---- histograms ---- *)

let test_histogram_observe_merge () =
  T.start ();
  T.observe "lat_s" 0.5e-6;  (* bucket 0: <= 1e-6 *)
  T.observe "lat_s" 0.005;   (* (1e-3, 1e-2] -> bucket 4 *)
  T.observe "lat_s" 0.005;
  let d =
    Domain.spawn (fun () ->
        T.observe "lat_s" 2.0;     (* (1.0, 10.0] -> bucket 7 *)
        T.observe "lat_s" 1000.0;  (* > 100.0 -> overflow bucket 9 *)
        T.observe "other" 1.0)
  in
  Domain.join d;
  let r = T.stop () in
  (match T.hist r "lat_s" with
   | None -> Alcotest.fail "histogram missing"
   | Some h ->
     Alcotest.(check int) "count merged across domains" 5 h.T.h_count;
     Alcotest.(check (float 1e-9)) "sum" 1002.0100005 h.T.h_sum;
     Alcotest.(check (float 1e-12)) "min" 0.5e-6 h.T.h_min;
     Alcotest.(check (float 0.)) "max" 1000.0 h.T.h_max;
     Alcotest.(check int) "bucket count" (Array.length T.bucket_bounds + 1)
       (Array.length h.T.h_buckets);
     Alcotest.(check (list int)) "log-scale bucket assignment"
       [ 1; 0; 0; 0; 2; 0; 0; 1; 0; 1 ]
       (Array.to_list h.T.h_buckets));
  (match T.hist r "other" with
   | Some h -> Alcotest.(check int) "second histogram separate" 1 h.T.h_count
   | None -> Alcotest.fail "second histogram missing");
  Alcotest.(check (option (pair string string))) "absent histogram" None
    (Option.map (fun _ -> ("", "")) (T.hist r "nope"))

(* ---- profiler ---- *)

module P = Obs.Profile

let mk_span ?(tid = 0) ?(alloc = 0.0) ~cat ~name ts dur =
  { T.name; cat; ts_us = ts; dur_us = dur; alloc_mw = alloc; tid;
    args = [] }

let synthetic_report spans =
  { T.wall_s = 1.0; domains = 2; counters = []; hists = []; spans }

let test_profile_self_time () =
  (* lane 0: obligation [0,100] containing engine/bmc [10,40] and
     engine/ic3 [50,90]; lane 1: an uncovered engine/bmc [0,30] *)
  let spans =
    [ mk_span ~cat:"obligation" ~name:"alu0/p2" ~alloc:50.0 0.0 100.0;
      mk_span ~cat:"engine" ~name:"bmc" 10.0 30.0;
      mk_span ~cat:"engine" ~name:"ic3" 50.0 40.0;
      mk_span ~tid:1 ~cat:"engine" ~name:"bmc" 0.0 30.0 ]
  in
  let p = P.of_report (synthetic_report spans) in
  Alcotest.(check int) "span count" 4 p.P.p_spans;
  Alcotest.(check int) "lane count" 2 p.P.p_lanes;
  Alcotest.(check (float 1e-6)) "wall extent" 100.0 p.P.p_wall_us;
  let entry c =
    match List.find_opt (fun e -> e.P.e_class = c) p.P.p_entries with
    | Some e -> e
    | None -> Alcotest.failf "class %s missing" c
  in
  let ob = entry "obligation" in
  Alcotest.(check (float 1e-6)) "obligation wall includes children" 100.0
    ob.P.e_wall_us;
  Alcotest.(check (float 1e-6)) "obligation self excludes children" 30.0
    ob.P.e_self_us;
  Alcotest.(check (float 1e-6)) "alloc attributed" 50.0 ob.P.e_alloc_mw;
  let bmc = entry "engine/bmc" in
  Alcotest.(check int) "bmc spans aggregated across lanes" 2 bmc.P.e_count;
  Alcotest.(check (float 1e-6)) "bmc self = own wall (no children)" 60.0
    bmc.P.e_self_us;
  Alcotest.(check (float 1e-6)) "ic3 self" 40.0 (entry "engine/ic3").P.e_self_us;
  (* ranking: self time descending; shares sum to 1 *)
  let selfs = List.map (fun e -> e.P.e_self_us) p.P.p_entries in
  Alcotest.(check (list (float 1e-6))) "entries ranked by self time"
    (List.sort (fun a b -> compare b a) selfs) selfs;
  let share_sum =
    List.fold_left (fun a e -> a +. e.P.e_self_share) 0.0 p.P.p_entries
  in
  Alcotest.(check (float 1e-6)) "self shares sum to 1" 1.0 share_sum;
  Alcotest.(check int) "top truncates" 2 (List.length (P.top ~k:2 p))

let test_profile_trace_roundtrip () =
  let mini = mini_chip () in
  let _, r = run_recorded ~jobs:2 mini in
  let direct = P.of_report r in
  let via_trace =
    match P.of_trace_json (J.parse (Obs.Trace_export.to_chrome_string r)
                           |> Result.get_ok) with
    | Ok p -> p
    | Error e -> Alcotest.failf "trace parse: %s" e
  in
  Alcotest.(check int) "same span count" direct.P.p_spans
    via_trace.P.p_spans;
  Alcotest.(check int) "same lane count" direct.P.p_lanes
    via_trace.P.p_lanes;
  (* trace export rounds timestamps, which can swap near-tied rankings:
     compare as name-sorted sets, self times within a microsecond budget *)
  let by_class es =
    List.sort (fun a b -> compare a.P.e_class b.P.e_class) es
  in
  Alcotest.(check (list string)) "same classes"
    (List.map (fun e -> e.P.e_class) (by_class direct.P.p_entries))
    (List.map (fun e -> e.P.e_class) (by_class via_trace.P.p_entries));
  List.iter2
    (fun (a : P.entry) (b : P.entry) ->
      Alcotest.(check int) "same counts" a.P.e_count b.P.e_count;
      Alcotest.(check bool) "self times agree to 10us" true
        (Float.abs (a.P.e_self_us -. b.P.e_self_us) < 10.0))
    (by_class direct.P.p_entries) (by_class via_trace.P.p_entries);
  (* the JSON report carries the schema tag and ranked entries *)
  let j = P.to_json ~k:5 direct in
  Alcotest.(check (option string)) "profile schema"
    (Some "dicheck-profile-v1")
    (Option.bind (J.member "schema" j) J.to_str);
  match Option.bind (J.member "entries" j) J.to_list with
  | Some es ->
    Alcotest.(check bool) "entries truncated to k" true (List.length es <= 5)
  | None -> Alcotest.fail "entries missing"

(* ---- bench diff ---- *)

module BD = Obs.Bench_diff

let bench_json runs =
  J.Obj
    [ ("schema", J.String "dicheck-bench-v1");
      ("runs",
       J.List
         (List.map
            (fun (label, wall, proved, failed) ->
              J.Obj
                [ ("label", J.String label); ("wall_s", J.Float wall);
                  ("properties", J.Int (proved + failed));
                  ("proved", J.Int proved); ("failed", J.Int failed);
                  ("resource_out", J.Int 0); ("errors", J.Int 0) ])
            runs)) ]

let test_bench_diff_pass_and_fail () =
  let base = bench_json [ ("a", 10.0, 90, 10); ("b", 5.0, 40, 2) ] in
  (* same verdicts, wall within 20% *)
  let ok_cur = bench_json [ ("a", 11.5, 90, 10); ("b", 4.0, 40, 2) ] in
  (match BD.diff ~baseline:base ~current:ok_cur () with
   | Error e -> Alcotest.failf "diff failed: %s" e
   | Ok d ->
     Alcotest.(check bool) "clean diff passes" true d.BD.ok;
     Alcotest.(check int) "both runs compared" 2 (List.length d.BD.runs);
     List.iter
       (fun rc -> Alcotest.(check bool) "not regressed" false rc.BD.d_regressed)
       d.BD.runs);
  (* injected >= 20% throughput regression must fail *)
  let slow_cur = bench_json [ ("a", 12.5, 90, 10); ("b", 4.0, 40, 2) ] in
  (match BD.diff ~baseline:base ~current:slow_cur () with
   | Error e -> Alcotest.failf "diff failed: %s" e
   | Ok d ->
     Alcotest.(check bool) "25% slower run fails the diff" false d.BD.ok;
     let a = List.find (fun rc -> rc.BD.d_label = "a") d.BD.runs in
     Alcotest.(check bool) "run a regressed" true a.BD.d_regressed;
     Alcotest.(check (float 1e-9)) "ratio reported" 1.25 a.BD.d_ratio;
     Alcotest.(check bool) "verdicts still ok" true a.BD.d_verdicts_ok);
  (* verdict drift is thresholdless *)
  let wrong_cur = bench_json [ ("a", 10.0, 89, 11); ("b", 5.0, 40, 2) ] in
  (match BD.diff ~baseline:base ~current:wrong_cur () with
   | Error e -> Alcotest.failf "diff failed: %s" e
   | Ok d ->
     Alcotest.(check bool) "verdict drift fails" false d.BD.ok;
     let a = List.find (fun rc -> rc.BD.d_label = "a") d.BD.runs in
     Alcotest.(check bool) "verdicts flagged" false a.BD.d_verdicts_ok);
  (* one-sided labels are reported, not fatal *)
  let partial = bench_json [ ("a", 10.0, 90, 10) ] in
  (match BD.diff ~baseline:base ~current:partial () with
   | Error e -> Alcotest.failf "diff failed: %s" e
   | Ok d ->
     Alcotest.(check bool) "partial run passes" true d.BD.ok;
     Alcotest.(check (list string)) "missing label reported" [ "b" ]
       d.BD.only_base);
  (* max_wall_s ceiling baselines never fail on wall *)
  let ceiling =
    J.Obj
      [ ("schema", J.String "dicheck-bench-baseline-v1");
        ("runs",
         J.List
           [ J.Obj
               [ ("label", J.String "a"); ("max_wall_s", J.Float 900.0);
                 ("proved", J.Int 90); ("failed", J.Int 10) ] ]) ]
  in
  (match BD.diff ~baseline:ceiling ~current:ok_cur () with
   | Error e -> Alcotest.failf "diff failed: %s" e
   | Ok d -> Alcotest.(check bool) "ceiling baseline passes" true d.BD.ok);
  (* no common labels is an error, as is garbage *)
  (match BD.diff ~baseline:base ~current:(bench_json [ ("z", 1.0, 1, 0) ]) ()
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "disjoint labels must be an error");
  match BD.diff ~baseline:(J.String "nope") ~current:ok_cur () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed baseline must be an error"

(* ---- live status model + socket ---- *)

module S = Core.Status

let test_status_model () =
  let s = S.create ~jobs:4 () in
  S.set_total s 10;
  S.set_phase s "campaign";
  S.begin_work s ~obligation:"alu0.p2_parity" ~engine:"auto" ~attempt:1;
  let snap = S.snapshot s in
  Alcotest.(check string) "phase" "campaign" snap.S.s_phase;
  Alcotest.(check int) "total" 10 snap.S.s_total;
  Alcotest.(check int) "jobs" 4 snap.S.s_jobs;
  (match snap.S.s_in_flight with
   | [ f ] ->
     Alcotest.(check string) "obligation" "alu0.p2_parity" f.S.f_obligation;
     Alcotest.(check string) "engine" "auto" f.S.f_engine;
     Alcotest.(check int) "attempt" 1 f.S.f_attempt
   | l -> Alcotest.failf "expected 1 in-flight, got %d" (List.length l));
  S.retry s;
  S.finish s ~verdict:`Proved ~cache_hit:false ~replayed:false ~raced:false
    ~healed:false;
  S.finish s ~verdict:`Resource_out ~cache_hit:false ~replayed:false
    ~raced:true ~healed:false;
  S.reclassify s ~to_:`Proved;
  let snap = S.snapshot s in
  Alcotest.(check int) "done" 2 snap.S.s_done;
  Alcotest.(check int) "proved after reclassify" 2 snap.S.s_proved;
  Alcotest.(check int) "resource_out drained" 0 snap.S.s_resource_out;
  Alcotest.(check int) "healed" 1 snap.S.s_healed;
  Alcotest.(check int) "raced" 1 snap.S.s_raced;
  Alcotest.(check int) "retries" 1 snap.S.s_retries;
  Alcotest.(check int) "lane cleared on finish" 0
    (List.length snap.S.s_in_flight);
  Alcotest.(check bool) "eta projected from fresh completions" true
    (snap.S.s_eta_s <> None);
  let j = S.snapshot_json s in
  Alcotest.(check (option string)) "status schema"
    (Some "dicheck-status-v1")
    (Option.bind (J.member "schema" j) J.to_str);
  Alcotest.(check (option int)) "json done" (Some 2)
    (Option.bind (J.member "done" j) J.to_int)

let read_socket path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX path);
      let buf = Buffer.create 1024 in
      let b = Bytes.create 1024 in
      let rec go () =
        let n = Unix.read fd b 0 (Bytes.length b) in
        if n > 0 then begin
          Buffer.add_subbytes buf b 0 n;
          go ()
        end
      in
      go ();
      Buffer.contents buf)

let test_status_socket () =
  let path = Filename.temp_file "dicheck-status" ".sock" in
  let s = S.create ~jobs:2 () in
  S.set_total s 7;
  S.set_phase s "campaign";
  let srv = S.serve s ~path in
  Fun.protect
    ~finally:(fun () -> S.shutdown srv)
    (fun () ->
      (* two polls: each connection gets one fresh snapshot *)
      let j1 =
        match J.parse (read_socket path) with
        | Ok j -> j
        | Error e -> Alcotest.failf "snapshot 1 unparseable: %s" e
      in
      Alcotest.(check (option int)) "total served" (Some 7)
        (Option.bind (J.member "total" j1) J.to_int);
      S.finish s ~verdict:`Failed ~cache_hit:false ~replayed:false
        ~raced:false ~healed:false;
      let j2 =
        match J.parse (read_socket path) with
        | Ok j -> j
        | Error e -> Alcotest.failf "snapshot 2 unparseable: %s" e
      in
      Alcotest.(check (option int)) "snapshot is live" (Some 1)
        (Option.bind (J.member "done" j2) J.to_int);
      Alcotest.(check (option int)) "failed tallied" (Some 1)
        (Option.bind (J.member "failed" j2) J.to_int));
  Alcotest.(check bool) "socket unlinked on shutdown" false
    (Sys.file_exists path)

(* ---- campaign under observation: seq = pool, flight determinism ---- *)

let flight_done_events () =
  List.filter_map
    (fun (e : F.event) ->
      match e.F.kind with
      | "ob.done" -> Some (e.F.kind, e.F.detail)
      | _ -> None)
    (F.events ())

let test_campaign_status_seq_eq_pool () =
  let mini = mini_chip () in
  let observed jobs =
    F.enable ~capacity:4096 ();
    let status = S.create ~jobs () in
    let t = Core.Campaign.run ~jobs ~status mini in
    let evs = List.sort compare (flight_done_events ()) in
    F.disable ();
    (t, S.snapshot status, evs)
  in
  let t1, s1, f1 = observed 1 in
  let t2, s2, f2 = observed 4 in
  Alcotest.(check (list string)) "verdict rows identical seq vs pool"
    (List.map
       (fun (r : Core.Campaign.prop_result) ->
         result_key r ^ "="
         ^ (match r.Core.Campaign.outcome.Mc.Engine.verdict with
            | Mc.Engine.Proved -> "proved"
            | Mc.Engine.Proved_bounded k -> "bounded:" ^ string_of_int k
            | Mc.Engine.Failed _ -> "failed"
            | Mc.Engine.Resource_out c -> "ro:" ^ c
            | Mc.Engine.Error _ -> "error"))
       t1.Core.Campaign.results)
    (List.map
       (fun (r : Core.Campaign.prop_result) ->
         result_key r ^ "="
         ^ (match r.Core.Campaign.outcome.Mc.Engine.verdict with
            | Mc.Engine.Proved -> "proved"
            | Mc.Engine.Proved_bounded k -> "bounded:" ^ string_of_int k
            | Mc.Engine.Failed _ -> "failed"
            | Mc.Engine.Resource_out c -> "ro:" ^ c
            | Mc.Engine.Error _ -> "error"))
       t2.Core.Campaign.results);
  Alcotest.(check string) "both models end in phase done" s1.S.s_phase
    s2.S.s_phase;
  Alcotest.(check int) "same done count" s1.S.s_done s2.S.s_done;
  Alcotest.(check int) "same verdict tallies" s1.S.s_proved s2.S.s_proved;
  Alcotest.(check int) "same failed tallies" s1.S.s_failed s2.S.s_failed;
  Alcotest.(check bool) "flight saw every obligation" true
    (List.length f1 = List.length t1.Core.Campaign.results);
  (* ob.done events are schedule-independent as a set: the pool may
     double-miss the cache, but verdict + attribution per obligation agree *)
  Alcotest.(check (list (pair string string)))
    "flight ob.done event sets identical seq vs pool" f1 f2

let () =
  Alcotest.run "obs"
    [ ("json",
       [ Alcotest.test_case "print/parse round-trip" `Quick
           test_json_roundtrip;
         Alcotest.test_case "parser rejects invalid input" `Quick
           test_json_parse_errors;
         QCheck_alcotest.to_alcotest qcheck_json_string_roundtrip;
         Alcotest.test_case "control chars and all bytes escape" `Quick
           test_json_all_bytes ]);
      ("telemetry",
       [ Alcotest.test_case "collector merges counters and spans" `Quick
           test_collector_merge;
         Alcotest.test_case "stop without start is empty" `Quick
           test_stop_without_start;
         Alcotest.test_case "disabled path allocates nothing" `Quick
           test_zero_sink_overhead;
         Alcotest.test_case "histograms observe and merge" `Quick
           test_histogram_observe_merge ]);
      ("flight",
       [ Alcotest.test_case "ring wraparound keeps the newest" `Quick
           test_flight_wraparound;
         Alcotest.test_case "per-domain rings merge in order" `Quick
           test_flight_merge_ordering;
         Alcotest.test_case "disabled path allocates nothing" `Quick
           test_flight_disabled_overhead;
         Alcotest.test_case "dump carries the v1 schema" `Quick
           test_flight_dump_schema ]);
      ("profile",
       [ Alcotest.test_case "self time and ranking on synthetic spans"
           `Quick test_profile_self_time;
         Alcotest.test_case "trace file profiling matches live report"
           `Slow test_profile_trace_roundtrip ]);
      ("bench-diff",
       [ Alcotest.test_case "thresholds, verdict drift, ceilings" `Quick
           test_bench_diff_pass_and_fail ]);
      ("status",
       [ Alcotest.test_case "model counters and in-flight table" `Quick
           test_status_model;
         Alcotest.test_case "socket serves live snapshots" `Quick
           test_status_socket;
         Alcotest.test_case "observed campaign: seq = pool" `Slow
           test_campaign_status_seq_eq_pool ]);
      ("engine",
       [ Alcotest.test_case "bdd node limit reports canonical cause" `Quick
           test_bdd_nodes_cause;
         Alcotest.test_case "per-solve SAT stats deterministic" `Quick
           test_solver_stats_deterministic ]);
      ("campaign",
       [ Alcotest.test_case "sequential counters deterministic" `Slow
           test_sequential_counters_deterministic;
         Alcotest.test_case "sequential = pool perf aggregates" `Slow
           test_seq_vs_pool_aggregates;
         Alcotest.test_case "trace export parses back" `Slow
           test_trace_export_parses;
         Alcotest.test_case "metrics JSON parses back" `Slow
           test_metrics_json_parses ]) ]
