(* Observability stack: the JSON codec, the telemetry collector, the Chrome
   trace export, and the campaign-level guarantees built on them — counter
   determinism for sequential runs and schedule-independent perf aggregates
   between the sequential and pool executors. *)

module T = Obs.Telemetry
module J = Obs.Json
module G = Chip.Generator
module M = Rtl.Mdl
module E = Rtl.Expr

let chip = lazy (G.generate ())

(* same cut-down campaign fixture as test_runtime: category A bug modules
   only, enough to exercise caching and both executors cheaply *)
let mini_chip () =
  let t = Lazy.force chip in
  let cat_a =
    List.find (fun (c : G.category) -> c.G.cat_name = "A") t.G.categories
  in
  let specials =
    List.filter (fun (u : G.unit_) -> u.G.leaf.Chip.Archetype.bug <> None)
      cat_a.G.units
  in
  { t with
    G.categories =
      [ { cat_a with G.units = specials;
          G.expected = { cat_a.G.expected with G.sub = 3 } } ] }

(* ---- JSON round-trips ---- *)

let sample_json =
  J.Obj
    [ ("schema", J.String "test-v1");
      ("ok", J.Bool true);
      ("nothing", J.Null);
      ("n", J.Int 42);
      ("neg", J.Int (-7));
      ("x", J.Float 1.5);
      ("s", J.String "line\nbreak \"quoted\" back\\slash");
      ("xs", J.List [ J.Int 1; J.Int 2; J.Int 3 ]);
      ("nested", J.Obj [ ("empty_list", J.List []); ("empty_obj", J.Obj []) ])
    ]

let test_json_roundtrip () =
  List.iter
    (fun render ->
      match J.parse (render sample_json) with
      | Ok v -> Alcotest.(check bool) "round-trip preserves" true
                  (v = sample_json)
      | Error e -> Alcotest.failf "parse failed: %s" e)
    [ J.to_string; J.to_string_pretty ]

let test_json_parse_errors () =
  let bad = [ "{"; "[1,]"; "{\"a\":}"; "1 2"; "tru"; "\"\\q\"" ] in
  List.iter
    (fun s ->
      match J.parse s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" s
      | Error _ -> ())
    bad;
  (* \uXXXX decodes to UTF-8 *)
  match J.parse "\"\\u00e9\"" with
  | Ok (J.String "\xc3\xa9") -> ()
  | Ok _ -> Alcotest.fail "unicode escape decoded wrong"
  | Error e -> Alcotest.failf "unicode escape rejected: %s" e

(* ---- collector basics ---- *)

let test_collector_merge () =
  T.start ();
  T.count "apples";
  T.count ~n:4 "apples";
  T.count "pears";
  let v = T.span ~cat:"test" ~args:[ ("k", "v") ] "outer" (fun () ->
      T.span ~cat:"test" "inner" (fun () -> 17))
  in
  Alcotest.(check int) "span returns the thunk's value" 17 v;
  (try T.span "raiser" (fun () -> failwith "boom") with Failure _ -> ());
  let r = T.stop () in
  Alcotest.(check int) "counters sum" 5 (T.counter r "apples");
  Alcotest.(check int) "second counter" 1 (T.counter r "pears");
  Alcotest.(check int) "absent counter is 0" 0 (T.counter r "nope");
  Alcotest.(check int) "one recording domain" 1 r.T.domains;
  let names = List.map (fun (s : T.span) -> s.T.name) r.T.spans in
  Alcotest.(check bool) "spans recorded, raising included" true
    (List.mem "outer" names && List.mem "inner" names
     && List.mem "raiser" names);
  List.iter
    (fun (s : T.span) ->
      Alcotest.(check bool) "durations are sane" true
        (s.T.dur_us >= 0.0 && s.T.ts_us >= 0.0))
    r.T.spans;
  (* stop really uninstalls *)
  Alcotest.(check bool) "inactive after stop" false (T.active ())

let test_stop_without_start () =
  let r = T.stop () in
  Alcotest.(check int) "empty report" 0 (List.length r.T.counters);
  Alcotest.(check int) "no spans" 0 (List.length r.T.spans)

(* ---- zero-cost disabled path ---- *)

let test_zero_sink_overhead () =
  Alcotest.(check bool) "no collector installed" false (T.active ());
  let iters = 100_000 in
  (* warm up: first call may initialize the DLS slot *)
  T.count "warmup";
  let p0 = T.calls_probe () in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    T.count "disabled.counter"
  done;
  let words = Gc.minor_words () -. w0 in
  let probed = T.calls_probe () - p0 in
  Alcotest.(check int) "probe proves the path ran" iters probed;
  (* the disabled path is one atomic incr + a load-and-branch: allow a
     little slack for the loop itself, but nothing per-iteration *)
  Alcotest.(check bool)
    (Printf.sprintf "no per-call allocation (%.0f minor words)" words)
    true
    (words < float_of_int iters /. 10.)

(* ---- engine resource causes are canonical strings ---- *)

let test_bdd_nodes_cause () =
  let w = 24 in
  let m = M.create "node_hog" in
  let m = M.add_output m "OK" 1 in
  let m = M.add_reg m "c" w E.(var "c" +: of_int ~width:w 1) in
  let m =
    M.add_assign m "OK" E.(!:(var "c" ==: of_int ~width:w ((1 lsl w) - 1)))
  in
  let budget =
    { Mc.Engine.default_budget with
      Mc.Engine.bdd_node_limit = Some 64; wall_deadline_s = None }
  in
  let o =
    Mc.Engine.check_property ~budget ~strategy:Mc.Engine.Bdd_forward m
      ~assert_:(Psl.Parser.fl_of_string "always OK") ~assumes:[]
  in
  (match o.Mc.Engine.verdict with
   | Mc.Engine.Resource_out "bdd-nodes" -> ()
   | Mc.Engine.Resource_out c -> Alcotest.failf "wrong cause: %s" c
   | _ -> Alcotest.fail "expected Resource_out");
  Alcotest.(check (option string)) "resource_cause accessor"
    (Some "bdd-nodes") (Mc.Engine.resource_cause o)

(* ---- SAT per-solve stats ---- *)

let test_solver_stats_deterministic () =
  (* a small unsatisfiable pigeonhole-ish instance: forces real search *)
  let cnf =
    (* 4 pigeons, 3 holes: var p*3 + h + 1 *)
    let v p h = (p * 3) + h + 1 in
    let at_least = List.init 4 (fun p -> List.init 3 (fun h -> v p h)) in
    let no_share =
      List.concat_map
        (fun h ->
          let pairs = ref [] in
          for p1 = 0 to 3 do
            for p2 = p1 + 1 to 3 do
              pairs := [ -v p1 h; -v p2 h ] :: !pairs
            done
          done;
          !pairs)
        [ 0; 1; 2 ]
    in
    Cnf.create ~nvars:12 (at_least @ no_share)
  in
  let r1, s1 = Solver.solve_stats cnf in
  let r2, s2 = Solver.solve_stats cnf in
  (match r1 with
   | Solver.Unsat -> ()
   | _ -> Alcotest.fail "pigeonhole should be unsat");
  Alcotest.(check bool) "same result" true (r1 = r2);
  Alcotest.(check bool) "stats identical across runs" true (s1 = s2);
  Alcotest.(check bool) "search actually happened" true
    (s1.Solver.propagations > 0 && s1.Solver.decisions > 0)

(* ---- sequential counter determinism ---- *)

let non_time_counters (r : T.report) =
  List.filter
    (fun (name, _) ->
      not (String.length name > 3
           && String.sub name (String.length name - 3) 3 = "_us"))
    r.T.counters

let run_recorded ?jobs mini =
  T.start ();
  let t = Core.Campaign.run ?jobs mini in
  let r = T.stop () in
  (t, r)

let test_sequential_counters_deterministic () =
  let mini = mini_chip () in
  let _, r1 = run_recorded mini in
  let _, r2 = run_recorded mini in
  Alcotest.(check (list (pair string int)))
    "non-time counters identical across sequential runs"
    (non_time_counters r1) (non_time_counters r2);
  Alcotest.(check bool) "engine counters present" true
    (T.counter r1 "engine.checks" > 0 && T.counter r1 "cache.miss" > 0)

(* ---- sequential vs pool: schedule-independent aggregates ---- *)

let ints_of (p : Core.Campaign.perf_totals) =
  [ p.Core.Campaign.engine_attempts; p.Core.Campaign.fix_iterations;
    p.Core.Campaign.bdd_peak; p.Core.Campaign.peak_set_size;
    p.Core.Campaign.bdd_polls; p.Core.Campaign.sat_decisions;
    p.Core.Campaign.sat_conflicts; p.Core.Campaign.sat_propagations;
    p.Core.Campaign.sat_restarts; p.Core.Campaign.max_unroll_depth;
    p.Core.Campaign.max_final_k ]

let result_key (r : Core.Campaign.prop_result) =
  Printf.sprintf "%s/%s/%s" r.Core.Campaign.module_name
    r.Core.Campaign.vunit_name r.Core.Campaign.prop_name

let test_seq_vs_pool_aggregates () =
  let mini = mini_chip () in
  let seq, _ = run_recorded ~jobs:1 mini in
  let par, _ = run_recorded ~jobs:4 mini in
  Alcotest.(check (list string)) "same rows in the same order"
    (List.map result_key seq.Core.Campaign.results)
    (List.map result_key par.Core.Campaign.results);
  Alcotest.(check (list int)) "perf aggregates schedule-independent"
    (ints_of (Core.Campaign.aggregate_perf seq))
    (ints_of (Core.Campaign.aggregate_perf par));
  Alcotest.(check (list (pair string int))) "resource-out causes agree"
    (Core.Campaign.resource_out_causes seq)
    (Core.Campaign.resource_out_causes par);
  Alcotest.(check bool) "aggregates are non-trivial" true
    ((Core.Campaign.aggregate_perf seq).Core.Campaign.engine_attempts > 0)

(* ---- trace export parses back and is structurally a Chrome trace ---- *)

let test_trace_export_parses () =
  let mini = mini_chip () in
  let _, r = run_recorded ~jobs:2 mini in
  Alcotest.(check bool) "campaign produced spans" true
    (List.length r.T.spans > 0);
  let s = Obs.Trace_export.to_chrome_string r in
  let j =
    match J.parse s with
    | Ok j -> j
    | Error e -> Alcotest.failf "trace JSON does not parse: %s" e
  in
  let events =
    match Option.bind (J.member "traceEvents" j) J.to_list with
    | Some evs -> evs
    | None -> Alcotest.fail "traceEvents missing"
  in
  let ph e = Option.bind (J.member "ph" e) J.to_str in
  let xs = List.filter (fun e -> ph e = Some "X") events in
  let ms = List.filter (fun e -> ph e = Some "M") events in
  Alcotest.(check int) "one X event per span" (List.length r.T.spans)
    (List.length xs);
  let tid_of e = Option.bind (J.member "tid" e) J.to_int in
  List.iter
    (fun e ->
      let has f = J.member f e <> None in
      Alcotest.(check bool) "X event is complete" true
        (has "name" && has "cat" && has "ts" && has "dur" && tid_of e <> None
         && Option.bind (J.member "pid" e) J.to_int = Some 1))
    xs;
  (* every lane used by an X event is named by an M metadata event *)
  let named_tids = List.filter_map tid_of ms in
  List.iter
    (fun e ->
      match tid_of e with
      | Some tid ->
        Alcotest.(check bool) "lane has a thread_name" true
          (List.mem tid named_tids)
      | None -> ())
    xs;
  List.iter
    (fun e ->
      Alcotest.(check (option string)) "M events are thread_name"
        (Some "thread_name")
        (Option.bind (J.member "name" e) J.to_str))
    ms

(* ---- metrics JSON parses back with the documented schema ---- *)

let test_metrics_json_parses () =
  let mini = mini_chip () in
  let t, r = run_recorded ~jobs:2 mini in
  let s = Core.Campaign.to_metrics_json ~report:r ~jobs:2 t in
  let j =
    match J.parse s with
    | Ok j -> j
    | Error e -> Alcotest.failf "metrics JSON does not parse: %s" e
  in
  let str_at path =
    Option.bind (J.member path j) J.to_str
  in
  Alcotest.(check (option string)) "schema tag"
    (Some "dicheck-metrics-v1") (str_at "schema");
  let int_at obj f = Option.bind (J.member f obj) J.to_int in
  (match J.member "totals" j with
   | Some totals ->
     Alcotest.(check (option int)) "totals.total"
       (Some (List.length t.Core.Campaign.results))
       (int_at totals "total")
   | None -> Alcotest.fail "totals missing");
  (match Option.bind (J.member "perf" j) (J.member "engine_attempts") with
   | Some a ->
     Alcotest.(check (option int)) "perf.engine_attempts"
       (Some (Core.Campaign.aggregate_perf t).Core.Campaign.engine_attempts)
       (J.to_int a)
   | None -> Alcotest.fail "perf.engine_attempts missing");
  (match J.member "counters" j with
   | Some (J.Obj _) -> ()
   | _ -> Alcotest.fail "counters missing though a report was supplied")

let () =
  Alcotest.run "obs"
    [ ("json",
       [ Alcotest.test_case "print/parse round-trip" `Quick
           test_json_roundtrip;
         Alcotest.test_case "parser rejects invalid input" `Quick
           test_json_parse_errors ]);
      ("telemetry",
       [ Alcotest.test_case "collector merges counters and spans" `Quick
           test_collector_merge;
         Alcotest.test_case "stop without start is empty" `Quick
           test_stop_without_start;
         Alcotest.test_case "disabled path allocates nothing" `Quick
           test_zero_sink_overhead ]);
      ("engine",
       [ Alcotest.test_case "bdd node limit reports canonical cause" `Quick
           test_bdd_nodes_cause;
         Alcotest.test_case "per-solve SAT stats deterministic" `Quick
           test_solver_stats_deterministic ]);
      ("campaign",
       [ Alcotest.test_case "sequential counters deterministic" `Slow
           test_sequential_counters_deterministic;
         Alcotest.test_case "sequential = pool perf aggregates" `Slow
           test_seq_vs_pool_aggregates;
         Alcotest.test_case "trace export parses back" `Slow
           test_trace_export_parses;
         Alcotest.test_case "metrics JSON parses back" `Slow
           test_metrics_json_parses ]) ]
