(* Fault-tolerant campaign runtime: wall-clock deadlines, crash isolation
   with retry, and journal checkpoint/resume — including a chaos test that
   SIGKILLs a campaign mid-run and proves the resumed run reaches the same
   verdicts without re-proving the checkpointed prefix.

   Process hygiene: the chaos test forks, so every test before it (and the
   fork's child itself) must stay single-domain; the domain-pool tests come
   after it in the run order below. *)

module G = Chip.Generator
module PG = Verifiable.Propgen
module M = Rtl.Mdl
module E = Rtl.Expr

let chip = lazy (G.generate ())

(* the three bug modules of category A only: exercises the full Campaign
   machinery without the cost of all 2047 properties *)
let mini_chip () =
  let t = Lazy.force chip in
  let cat_a =
    List.find (fun (c : G.category) -> c.G.cat_name = "A") t.G.categories
  in
  let specials =
    List.filter (fun (u : G.unit_) -> u.G.leaf.Chip.Archetype.bug <> None)
      cat_a.G.units
  in
  { t with
    G.categories =
      [ { cat_a with G.units = specials;
          G.expected = { cat_a.G.expected with G.sub = 3 } } ] }

let result_key (r : Core.Campaign.prop_result) =
  let verdict =
    match r.Core.Campaign.outcome.Mc.Engine.verdict with
    | Mc.Engine.Proved -> "proved"
    | Mc.Engine.Proved_bounded d -> Printf.sprintf "bounded:%d" d
    | Mc.Engine.Failed _ -> "failed"
    | Mc.Engine.Resource_out m -> "resource:" ^ m
    | Mc.Engine.Error m -> "error:" ^ m
  in
  Printf.sprintf "%s/%s/%s/%s" r.Core.Campaign.module_name
    r.Core.Campaign.vunit_name r.Core.Campaign.prop_name verdict

let keys (t : Core.Campaign.t) = List.map result_key t.Core.Campaign.results

let outcome verdict =
  { Mc.Engine.verdict; engine_used = "test"; time_s = 0.0; iterations = 0;
    work_nodes = 0; perf = Mc.Engine.empty_perf }

(* ---- wall-clock deadlines ---- *)

(* a counter too wide to explore: forward reachability needs 2^28 fixpoint
   iterations, so without a deadline this check effectively never returns
   (the BDDs of counter prefixes stay tiny, so no node limit fires) *)
let wide_counter () =
  let w = 28 in
  let m = M.create "wide_cnt" in
  let m = M.add_output m "OK" 1 in
  let m = M.add_reg m "c" w E.(var "c" +: of_int ~width:w 1) in
  M.add_assign m "OK" E.(!:(var "c" ==: of_int ~width:w ((1 lsl w) - 1)))

let check_deadline_verdict name (o : Mc.Engine.outcome) =
  match o.Mc.Engine.verdict with
  | Mc.Engine.Resource_out "deadline" -> ()
  | Mc.Engine.Resource_out m ->
    Alcotest.failf "%s: resource out for %s, not the deadline" name m
  | _ -> Alcotest.failf "%s: expected Resource_out \"deadline\"" name

let test_deadline_bounds_bdd () =
  let m = wide_counter () in
  let budget =
    { Mc.Engine.default_budget with
      Mc.Engine.bdd_node_limit = None; wall_deadline_s = Some 0.3 }
  in
  let t0 = Unix.gettimeofday () in
  let o =
    Mc.Engine.check_property ~budget ~strategy:Mc.Engine.Bdd_forward m
      ~assert_:(Psl.Parser.fl_of_string "always OK") ~assumes:[]
  in
  check_deadline_verdict "bdd forward" o;
  Alcotest.(check bool) "wall time bounded" true
    (Unix.gettimeofday () -. t0 < 10.0)

let test_deadline_bounds_bmc () =
  let m = wide_counter () in
  (* enough frames that the unroll would run for ages without the deadline *)
  let budget =
    { Mc.Engine.default_budget with
      Mc.Engine.bmc_depth = 1_000_000; wall_deadline_s = Some 0.2 }
  in
  let t0 = Unix.gettimeofday () in
  let o =
    Mc.Engine.check_property ~budget ~strategy:Mc.Engine.Bmc m
      ~assert_:(Psl.Parser.fl_of_string "always OK") ~assumes:[]
  in
  check_deadline_verdict "bmc" o;
  Alcotest.(check bool) "wall time bounded" true
    (Unix.gettimeofday () -. t0 < 10.0)

let test_deadline_expired_at_entry () =
  (* an already-expired deadline must not hang the Auto escalation either *)
  let m = wide_counter () in
  let budget =
    { Mc.Engine.default_budget with Mc.Engine.wall_deadline_s = Some 0.0 }
  in
  let o =
    Mc.Engine.check_property ~budget m
      ~assert_:(Psl.Parser.fl_of_string "always OK") ~assumes:[]
  in
  check_deadline_verdict "auto" o

let test_deadline_none_is_unchanged () =
  (* no deadline in the budget: a feasible check still proves *)
  let m = M.create "hold_ok" in
  let m = M.add_output m "OK" 1 in
  let m = M.add_reg ~reset:(Bitvec.of_string "1") m "h" 1 (E.var "h") in
  let m = M.add_assign m "OK" (E.var "h") in
  match
    (Mc.Engine.check_property ~strategy:Mc.Engine.Bdd_forward m
       ~assert_:(Psl.Parser.fl_of_string "always OK") ~assumes:[])
      .Mc.Engine.verdict
  with
  | Mc.Engine.Proved -> ()
  | _ -> Alcotest.fail "small counter should prove without a deadline"

(* ---- cooperative SAT cancellation ---- *)

let test_solver_should_stop () =
  (* pigeonhole PHP(9,8): exponential for CDCL, so the always-true
     cancellation callback must fire long before any real answer *)
  let n = 8 in
  let v i j = ((i - 1) * n) + j in
  let clauses =
    List.concat_map
      (fun i -> [ List.init n (fun j -> v i (j + 1)) ])
      (List.init (n + 1) (fun i -> i + 1))
    @ List.concat_map
        (fun j ->
          List.concat_map
            (fun i ->
              List.filter_map
                (fun i' -> if i' > i then Some [ -v i j; -v i' j ] else None)
                (List.init (n + 1) (fun k -> k + 1)))
            (List.init (n + 1) (fun k -> k + 1)))
        (List.init n (fun j -> j + 1))
  in
  let cnf = Cnf.create ~nvars:((n + 1) * n) clauses in
  match Solver.solve ~should_stop:(fun () -> true) cnf with
  | Solver.Unknown -> ()
  | Solver.Sat _ -> Alcotest.fail "PHP is unsatisfiable"
  | Solver.Unsat -> Alcotest.fail "cancellation never fired"

(* ---- cache robustness ---- *)

let test_cache_tolerates_corruption () =
  let path = Filename.temp_file "dicheck_cache" ".bin" in
  (* garbage file: empty cache, no exception *)
  let oc = open_out_bin path in
  output_string oc "this is not a cache";
  close_out oc;
  Alcotest.(check int) "garbage loads as empty" 0
    (Mc.Cache.length (Mc.Cache.load_or_create path));
  (* a valid save round-trips *)
  let c = Mc.Cache.create () in
  Mc.Cache.add c ~key:"k1" (outcome Mc.Engine.Proved);
  Mc.Cache.save c path;
  let c2 = Mc.Cache.load_or_create path in
  Alcotest.(check int) "round trip" 1 (Mc.Cache.length c2);
  (match Mc.Cache.find c2 ~key:"k1" with
   | Some o ->
     Alcotest.(check bool) "verdict survives" true
       (o.Mc.Engine.verdict = Mc.Engine.Proved)
   | None -> Alcotest.fail "entry lost in round trip");
  (* truncation (a crash mid-write of a non-atomic writer): empty cache *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full / 2));
  close_out oc;
  Alcotest.(check int) "truncated loads as empty" 0
    (Mc.Cache.length (Mc.Cache.load_or_create path));
  Sys.remove path

let test_cache_save_is_atomic () =
  let dir = Filename.temp_file "dicheck_cachedir" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "results.cache" in
  let c = Mc.Cache.create () in
  Mc.Cache.add c ~key:"k" (outcome (Mc.Engine.Resource_out "deadline"));
  Mc.Cache.save c path;
  (* temp-and-rename must leave exactly the target file behind *)
  Alcotest.(check (list string)) "no temp droppings" [ "results.cache" ]
    (List.sort compare (Array.to_list (Sys.readdir dir)));
  Alcotest.(check int) "saved cache loads" 1
    (Mc.Cache.length (Mc.Cache.load_or_create path));
  Sys.remove path;
  Unix.rmdir dir

(* ---- journal unit behavior ---- *)

let test_journal_round_trip () =
  let path = Filename.temp_file "dicheck_journal" ".log" in
  let j = Core.Journal.create path in
  Alcotest.(check int) "fresh journal replays nothing" 0
    (Core.Journal.replay_count j);
  Core.Journal.append j ~key:"aaa" (outcome Mc.Engine.Proved);
  Core.Journal.append j ~key:"bbb" (outcome (Mc.Engine.Proved_bounded 7));
  Core.Journal.close j;
  Alcotest.(check int) "two records on disk" 2
    (List.length (Core.Journal.load path));
  let j2 = Core.Journal.create ~resume:true path in
  Alcotest.(check int) "resume loads both" 2 (Core.Journal.replay_count j2);
  (match Core.Journal.replay j2 ~key:"bbb" with
   | Some o ->
     Alcotest.(check bool) "outcome round-trips" true
       (o.Mc.Engine.verdict = Mc.Engine.Proved_bounded 7)
   | None -> Alcotest.fail "bbb not replayed");
  Core.Journal.append j2 ~key:"ccc" (outcome Mc.Engine.Proved);
  Core.Journal.close j2;
  Alcotest.(check int) "append after resume" 3
    (List.length (Core.Journal.load path));
  Sys.remove path

let test_journal_tolerates_torn_tail () =
  let path = Filename.temp_file "dicheck_journal" ".log" in
  let j = Core.Journal.create path in
  Core.Journal.append j ~key:"aaa" (outcome Mc.Engine.Proved);
  Core.Journal.append j ~key:"bbb" (outcome Mc.Engine.Proved);
  Core.Journal.close j;
  (* simulate a SIGKILL mid-append: a partial, garbled last line *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "ccc deadbee";
  close_out oc;
  Alcotest.(check int) "torn tail dropped, prefix kept" 2
    (List.length (Core.Journal.load path));
  let j2 = Core.Journal.create ~resume:true path in
  Alcotest.(check int) "resume over torn tail" 2
    (Core.Journal.replay_count j2);
  Core.Journal.close j2;
  (* a foreign format version is ignored wholesale *)
  let oc = open_out_bin path in
  output_string oc "some-other-format-v9\naaa 00\n";
  close_out oc;
  Alcotest.(check int) "foreign version ignored" 0
    (List.length (Core.Journal.load path));
  Sys.remove path

(* ---- chaos: SIGKILL mid-campaign, then resume ---- *)

let count calls ~module_name:_ ~prop_name:_ ~fingerprint:_ ~attempt:_ =
  incr calls

let test_chaos_kill_resume () =
  let mini = mini_chip () in
  let clean_calls = ref 0 in
  let clean = Core.Campaign.run ~fault_hook:(count clean_calls) mini in
  let jpath = Filename.temp_file "dicheck_chaos" ".journal" in
  (match Unix.fork () with
   | 0 ->
     (* child: run with a fresh journal and kill ourselves — no unwinding,
        no at_exit — after a handful of completions. Journal appends are
        fsync'd before the progress callback sees the completion, so the
        records for everything we saw complete must be on disk. *)
     (try
        let j = Core.Journal.create jpath in
        let progress (p : Core.Campaign.progress) =
          if p.Core.Campaign.done_ >= 5 then
            Unix.kill (Unix.getpid ()) Sys.sigkill
        in
        ignore (Core.Campaign.run ~journal:j ~progress mini)
      with _ -> ());
     (* only reachable if the kill never fired *)
     Unix._exit 99
   | pid ->
     let _, status = Unix.waitpid [] pid in
     (match status with
      | Unix.WSIGNALED s when s = Sys.sigkill -> ()
      | _ -> Alcotest.fail "child should have died by SIGKILL");
     let j = Core.Journal.create ~resume:true jpath in
     let replayable = Core.Journal.replay_count j in
     Alcotest.(check bool) "a checkpoint prefix survived the kill" true
       (replayable > 0);
     let resumed_calls = ref 0 in
     let resumed =
       Core.Campaign.run ~journal:j ~fault_hook:(count resumed_calls) mini
     in
     Core.Journal.close j;
     (* nothing is proved twice: the resumed run executes exactly the
        obligations the journal does not cover *)
     Alcotest.(check int) "resume re-proves only the un-checkpointed rest"
       (!clean_calls - replayable) !resumed_calls;
     Alcotest.(check bool) "some verdicts were replayed" true
       (resumed.Core.Campaign.replayed > 0);
     Alcotest.(check (list string)) "resumed verdicts = undisturbed verdicts"
       (keys clean) (keys resumed);
     Sys.remove jpath)

(* ---- crash isolation and the retry ladder ---- *)

(* the fingerprint of the first obligation a sequential campaign executes:
   a deterministic target for fault injection *)
let first_fingerprint mini =
  let fp = ref None in
  let record ~module_name:_ ~prop_name:_ ~fingerprint ~attempt:_ =
    if !fp = None then fp := Some fingerprint
  in
  ignore (Core.Campaign.run ~fault_hook:record mini);
  match !fp with
  | Some fp -> fp
  | None -> Alcotest.fail "campaign never reached an engine"

let test_crash_isolation () =
  let mini = mini_chip () in
  let clean = Core.Campaign.run mini in
  let fp = first_fingerprint mini in
  let crash ~module_name:_ ~prop_name:_ ~fingerprint ~attempt:_ =
    if fingerprint = fp then failwith "injected fault"
  in
  let run jobs =
    Core.Campaign.run ~jobs ~fault_hook:crash ~max_retries:1
      ~retry_backoff_s:0.0 mini
  in
  let seq = run 1 in
  let g = seq.Core.Campaign.grand_total in
  Alcotest.(check bool) "error verdicts recorded" true
    (g.Core.Campaign.errors > 0);
  Alcotest.(check bool) "crash retries happened" true
    (seq.Core.Campaign.retries > 0);
  (* the poisoned obligation crashed through its whole ladder; everything
     else is untouched *)
  List.iter2
    (fun (c : Core.Campaign.prop_result) (s : Core.Campaign.prop_result) ->
      match s.Core.Campaign.outcome.Mc.Engine.verdict with
      | Mc.Engine.Error msg ->
        Alcotest.(check bool) "error carries the exception" true
          (String.length msg > 0);
        Alcotest.(check int) "ladder ran 1 + max_retries attempts" 2
          s.Core.Campaign.attempts
      | _ ->
        Alcotest.(check string) "other obligations unaffected" (result_key c)
          (result_key s))
    clean.Core.Campaign.results seq.Core.Campaign.results;
  (* identical rows from the pool: isolation is schedule-independent *)
  let par = run 4 in
  Alcotest.(check (list string)) "sequential = pool under injected crashes"
    (keys seq) (keys par);
  (* the error column flows through Table 2 and the CSV *)
  let contains hay needle =
    let h = String.length hay and n = String.length needle in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let table = Format.asprintf "%a" Core.Campaign.pp_table2 seq in
  Alcotest.(check bool) "table has an Err column" true
    (contains (List.hd (String.split_on_char '\n' table)) "Err");
  let csv = Core.Campaign.to_csv seq in
  Alcotest.(check bool) "csv reports error verdicts" true
    (List.exists
       (fun line ->
         (* verdict column "error" with a non-empty cause right after it *)
         match String.split_on_char ',' line with
         | _cat :: _m :: _v :: _p :: _cls :: "error" :: cause :: _ ->
           cause <> ""
         | _ -> false)
       (String.split_on_char '\n' csv))

let test_retry_recovers_transient_crash () =
  let mini = mini_chip () in
  let clean = Core.Campaign.run mini in
  let fp = first_fingerprint mini in
  let crash_once ~module_name:_ ~prop_name:_ ~fingerprint ~attempt =
    if fingerprint = fp && attempt = 1 then failwith "transient fault"
  in
  let r =
    Core.Campaign.run ~fault_hook:crash_once ~retry_backoff_s:0.0 mini
  in
  Alcotest.(check (list string)) "retry reaches the clean verdicts"
    (keys clean) (keys r);
  Alcotest.(check int) "exactly one retry" 1 r.Core.Campaign.retries;
  Alcotest.(check int) "no error verdicts" 0
    r.Core.Campaign.grand_total.Core.Campaign.errors;
  Alcotest.(check bool) "the recovered obligation took two attempts" true
    (List.exists
       (fun (pr : Core.Campaign.prop_result) -> pr.Core.Campaign.attempts = 2)
       r.Core.Campaign.results)

(* ---- journal-driven resume in the campaign ---- *)

let test_journal_resume_proves_nothing_twice () =
  let mini = mini_chip () in
  let jpath = Filename.temp_file "dicheck_resume" ".journal" in
  let j = Core.Journal.create jpath in
  let calls1 = ref 0 in
  let first = Core.Campaign.run ~journal:j ~fault_hook:(count calls1) mini in
  Core.Journal.close j;
  Alcotest.(check bool) "first run ran engines" true (!calls1 > 0);
  let j2 = Core.Journal.create ~resume:true jpath in
  Alcotest.(check int) "journal holds every distinct obligation" !calls1
    (Core.Journal.replay_count j2);
  let calls2 = ref 0 in
  let snapshots = ref [] in
  let progress (p : Core.Campaign.progress) = snapshots := p :: !snapshots in
  let second =
    Core.Campaign.run ~journal:j2 ~fault_hook:(count calls2) ~progress mini
  in
  Core.Journal.close j2;
  Alcotest.(check int) "resume runs zero engines" 0 !calls2;
  Alcotest.(check int) "every verdict replayed"
    (List.length second.Core.Campaign.results)
    second.Core.Campaign.replayed;
  Alcotest.(check bool) "results flag the replays" true
    (List.for_all
       (fun (r : Core.Campaign.prop_result) -> r.Core.Campaign.replayed)
       second.Core.Campaign.results);
  Alcotest.(check (list string)) "replayed verdicts identical" (keys first)
    (keys second);
  (* progress stays sane under replay: done_ counts up to total, never past *)
  let total = List.length second.Core.Campaign.results in
  Alcotest.(check bool) "done_ <= total and monotone" true
    (List.for_all
       (fun (p : Core.Campaign.progress) ->
         p.Core.Campaign.done_ >= 1 && p.Core.Campaign.done_ <= p.Core.Campaign.total)
       !snapshots);
  Alcotest.(check int) "final done_ = total" total
    (match !snapshots with
     | last :: _ -> last.Core.Campaign.done_
     | [] -> -1);
  Sys.remove jpath

let test_journal_partial_resume () =
  let mini = mini_chip () in
  let jpath = Filename.temp_file "dicheck_partial" ".journal" in
  let j = Core.Journal.create jpath in
  let calls1 = ref 0 in
  let first = Core.Campaign.run ~journal:j ~fault_hook:(count calls1) mini in
  Core.Journal.close j;
  (* keep the header and the first three records, then a torn tail — a
     hand-made crash prefix *)
  let lines =
    String.split_on_char '\n'
      (In_channel.with_open_bin jpath In_channel.input_all)
  in
  let keep = List.filteri (fun i _ -> i < 4) lines in
  let oc = open_out_bin jpath in
  List.iter (fun l -> output_string oc (l ^ "\n")) keep;
  output_string oc "torn";
  close_out oc;
  let j2 = Core.Journal.create ~resume:true jpath in
  let replayable = Core.Journal.replay_count j2 in
  Alcotest.(check bool) "partial prefix loaded" true
    (replayable > 0 && replayable <= 3);
  let calls2 = ref 0 in
  let second =
    Core.Campaign.run ~journal:j2 ~fault_hook:(count calls2) mini
  in
  Core.Journal.close j2;
  Alcotest.(check int) "only the missing obligations re-run"
    (!calls1 - replayable) !calls2;
  Alcotest.(check (list string)) "verdicts identical after partial resume"
    (keys first) (keys second);
  Sys.remove jpath

(* ---- executor crash isolation ---- *)

let test_executor_map_result () =
  let input = Array.init 101 (fun i -> i) in
  let f i = if i mod 10 = 3 then failwith "boom" else i * 2 in
  List.iter
    (fun jobs ->
      let r = Core.Executor.map_result (Core.Executor.pool ~jobs) f input in
      Array.iteri
        (fun i x ->
          match x with
          | Ok v ->
            Alcotest.(check bool)
              (Printf.sprintf "jobs=%d ok at %d" jobs i) true
              (i mod 10 <> 3 && v = i * 2)
          | Error (Failure m) ->
            Alcotest.(check bool)
              (Printf.sprintf "jobs=%d error at %d" jobs i) true
              (i mod 10 = 3 && m = "boom")
          | Error _ -> Alcotest.fail "unexpected exception")
        r)
    [ 1; 4 ];
  (* map re-raises the first failure in input order after the sweep *)
  Alcotest.check_raises "map re-raises" (Failure "boom") (fun () ->
      ignore (Core.Executor.map (Core.Executor.pool ~jobs:4) f input))

let () =
  Alcotest.run "runtime"
    [ ("deadline",
       [ Alcotest.test_case "bounds a pathological BDD obligation" `Quick
           test_deadline_bounds_bdd;
         Alcotest.test_case "bounds a pathological BMC unroll" `Quick
           test_deadline_bounds_bmc;
         Alcotest.test_case "expired at entry" `Quick
           test_deadline_expired_at_entry;
         Alcotest.test_case "absent deadline changes nothing" `Quick
           test_deadline_none_is_unchanged ]);
      ("sat-cancel",
       [ Alcotest.test_case "should_stop interrupts CDCL" `Quick
           test_solver_should_stop ]);
      ("cache-robustness",
       [ Alcotest.test_case "corrupt and truncated files load empty" `Quick
           test_cache_tolerates_corruption;
         Alcotest.test_case "save is atomic" `Quick
           test_cache_save_is_atomic ]);
      ("journal",
       [ Alcotest.test_case "round trip and resume-append" `Quick
           test_journal_round_trip;
         Alcotest.test_case "torn tail and foreign versions" `Quick
           test_journal_tolerates_torn_tail ]);
      (* forks: must precede anything that spawns domains *)
      ("chaos",
       [ Alcotest.test_case "SIGKILL mid-run, resume, same verdicts" `Quick
           test_chaos_kill_resume ]);
      ("crash-isolation",
       [ Alcotest.test_case "injected crash becomes an Error row" `Quick
           test_crash_isolation;
         Alcotest.test_case "retry recovers a transient crash" `Quick
           test_retry_recovers_transient_crash ]);
      ("resume",
       [ Alcotest.test_case "full journal replays everything" `Quick
           test_journal_resume_proves_nothing_twice;
         Alcotest.test_case "partial journal re-runs only the rest" `Quick
           test_journal_partial_resume ]);
      ("executor",
       [ Alcotest.test_case "map_result isolates per-item crashes" `Quick
           test_executor_map_result ]) ]
