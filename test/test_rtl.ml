(* Module construction, design checks, elaboration, levelization,
   cone-of-influence reduction, and Verilog emission. *)

module E = Rtl.Expr
module M = Rtl.Mdl

let bv = Bitvec.of_string

let contains text needle =
  let n = String.length needle and h = String.length text in
  let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
  go 0

(* the paper's Figure 6 shapes: a leaf with FSM + counter and a wrapper
   tying the injection ports to zero *)
let leaf_module () =
  let m = M.create "leaf" in
  let m = M.add_input m "I_ERR_INJ_C" 2 in
  let m = M.add_input m "I_ERR_INJ_D" 4 in
  let m = M.add_input m "GO" 1 in
  let m = M.add_output m "OUT" 4 in
  let cs_next =
    E.mux (E.bit (E.var "I_ERR_INJ_C") 0) (E.var "I_ERR_INJ_D")
      (E.mux (E.var "GO") E.(var "cs" +: of_int ~width:4 1) (E.var "cs"))
  in
  let m = M.add_reg ~cls:M.Fsm ~reset:(bv "1000") m "cs" 4 cs_next in
  let cnt_next =
    E.mux (E.bit (E.var "I_ERR_INJ_C") 1) (E.var "I_ERR_INJ_D")
      E.(var "cnt" +: of_int ~width:4 1)
  in
  let m = M.add_reg ~cls:M.Counter ~reset:(bv "1000") m "cnt" 4 cnt_next in
  M.add_assign m "OUT" E.(var "cs" ^: var "cnt")

let wrapper design_leaf =
  let m = M.create "wrapper" in
  let m = M.add_input m "GO" 1 in
  let m = M.add_output m "OUT" 4 in
  M.add_instance m "leaf0" ~of_module:design_leaf.M.name
    [ ("I_ERR_INJ_C", M.Expr (E.of_int ~width:2 0));
      ("I_ERR_INJ_D", M.Expr (E.of_int ~width:4 0));
      ("GO", M.Net "GO"); ("OUT", M.Net "OUT") ]

let test_mdl_basics () =
  let m = leaf_module () in
  Alcotest.(check bool) "is leaf" true (M.is_leaf m);
  Alcotest.(check int) "signal width" 4 (M.signal_width m "cs");
  Alcotest.(check int) "ports" 4 (List.length m.M.ports);
  Alcotest.(check int) "inputs" 3 (List.length (M.inputs m));
  Alcotest.(check int) "outputs" 1 (List.length (M.outputs m));
  Alcotest.(check bool) "find reg" true (M.find_reg m "cs" <> None);
  Alcotest.check_raises "duplicate decl"
    (Invalid_argument "Mdl: GO already declared in leaf") (fun () ->
      ignore (M.add_wire m "GO" 1))

let test_design () =
  let leaf = leaf_module () in
  let d = Rtl.Design.of_modules [ leaf; wrapper leaf ] in
  Alcotest.(check bool) "closed" true (Rtl.Design.check_closed d = Ok ());
  Alcotest.(check int) "leaf modules" 1 (List.length (Rtl.Design.leaf_modules d));
  Alcotest.(check int) "submodule count" 1
    (Rtl.Design.submodule_count d ~root:"wrapper");
  let bad = M.add_instance (M.create "bad") "x" ~of_module:"nope" [] in
  let d_bad = Rtl.Design.of_modules [ bad ] in
  Alcotest.(check bool) "unbound detected" true
    (Rtl.Design.check_closed d_bad <> Ok ())

let test_check () =
  let leaf = leaf_module () in
  let d = Rtl.Design.of_modules [ leaf; wrapper leaf ] in
  Alcotest.(check int) "clean design" 0 (List.length (Rtl.Check.check_design d));
  let m = M.add_output (M.create "m1") "O" 2 in
  let issues = Rtl.Check.check_module (Rtl.Design.of_modules [ m ]) m in
  Alcotest.(check bool) "undriven output flagged" true
    (List.exists
       (fun (i : Rtl.Check.issue) -> i.Rtl.Check.what = "signal O undriven")
       issues);
  let m2 = M.create "m2" in
  let m2 = M.add_input m2 "A" 2 in
  let m2 = M.add_output m2 "O" 3 in
  let m2 = M.add_assign m2 "O" (E.var "A") in
  let issues2 = Rtl.Check.check_module (Rtl.Design.of_modules [ m2 ]) m2 in
  Alcotest.(check bool) "width mismatch flagged" true (issues2 <> []);
  let m3 = M.create "m3" in
  let m3 = M.add_input m3 "A" 1 in
  let m3 = M.add_output m3 "O" 1 in
  let m3 = M.add_assign m3 "O" (E.var "A") in
  let m3 = M.add_assign m3 "O" E.(!:(var "A")) in
  let issues3 = Rtl.Check.check_module (Rtl.Design.of_modules [ m3 ]) m3 in
  Alcotest.(check bool) "double driver flagged" true
    (List.exists
       (fun (i : Rtl.Check.issue) -> i.Rtl.Check.what = "signal O has 2 drivers")
       issues3)

let test_elaborate () =
  let leaf = leaf_module () in
  let d = Rtl.Design.of_modules [ leaf; wrapper leaf ] in
  let nl = Rtl.Elaborate.run d ~top:"wrapper" in
  Alcotest.(check bool) "valid" true (Rtl.Netlist.validate nl = Ok ());
  Alcotest.(check int) "regs flattened" 2 (List.length nl.Rtl.Netlist.regs);
  Alcotest.(check int) "state bits" 8 (Rtl.Netlist.state_bits nl);
  Alcotest.(check bool) "prefixed reg" true
    (List.exists
       (fun (r : Rtl.Netlist.flat_reg) -> r.Rtl.Netlist.name = "leaf0.cs")
       nl.Rtl.Netlist.regs);
  Alcotest.(check int) "port width lookup" 4
    (Rtl.Netlist.signal_width nl "leaf0.I_ERR_INJ_D")

let test_comb_loop () =
  let m = M.create "loopy" in
  let m = M.add_output m "O" 1 in
  let m = M.add_wire m "x" 1 in
  let m = M.add_wire m "y" 1 in
  let m = M.add_assign m "x" (E.var "y") in
  let m = M.add_assign m "y" (E.var "x") in
  let m = M.add_assign m "O" (E.var "x") in
  let d = Rtl.Design.of_modules [ m ] in
  Alcotest.(check bool) "combinational loop raises" true
    (match Rtl.Elaborate.run d ~top:"loopy" with
     | _ -> false
     | exception Rtl.Netlist.Combinational_loop _ -> true)

let test_levelize_order () =
  let m = M.create "rev" in
  let m = M.add_input m "A" 1 in
  let m = M.add_output m "O" 1 in
  let m = M.add_wire m "w1" 1 in
  let m = M.add_wire m "w2" 1 in
  let m = M.add_assign m "O" (E.var "w2") in
  let m = M.add_assign m "w2" (E.var "w1") in
  let m = M.add_assign m "w1" (E.var "A") in
  let nl = Rtl.Elaborate.run (Rtl.Design.of_modules [ m ]) ~top:"rev" in
  let order = List.map fst nl.Rtl.Netlist.assigns in
  let pos s =
    let rec go i = function
      | [] -> Alcotest.failf "%s missing" s
      | x :: rest -> if x = s then i else go (i + 1) rest
    in
    go 0 order
  in
  Alcotest.(check bool) "w1 before w2" true (pos "w1" < pos "w2");
  Alcotest.(check bool) "w2 before O" true (pos "w2" < pos "O")

let test_coi () =
  let leaf = leaf_module () in
  let d = Rtl.Design.of_modules [ leaf ] in
  let nl = Rtl.Elaborate.run d ~top:"leaf" in
  let reduced = Rtl.Coi.reduce nl ~roots:[ "cs" ] in
  Alcotest.(check int) "coi drops counter" 1
    (List.length reduced.Rtl.Netlist.regs);
  let regs, _ = Rtl.Coi.cone_size nl ~roots:[ "OUT" ] in
  Alcotest.(check int) "OUT needs both regs" 2 regs;
  Alcotest.(check bool) "missing root raises" true
    (match Rtl.Coi.reduce nl ~roots:[ "nope" ] with
     | _ -> false
     | exception Not_found -> true)

let test_verilog () =
  let leaf = leaf_module () in
  let text = Rtl.Verilog.module_to_string leaf in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains text needle))
    [ "module leaf"; "input [1:0] I_ERR_INJ_C"; "always @(posedge CK";
      "endmodule"; "assign OUT" ];
  let d = Rtl.Design.of_modules [ leaf; wrapper leaf ] in
  let full = Rtl.Verilog.design_to_string d in
  Alcotest.(check bool) "wrapper ties injection" true
    (contains full ".I_ERR_INJ_C (2'b00)")

let test_map_exprs () =
  let leaf = leaf_module () in
  let renamed =
    M.map_exprs (E.subst (fun s -> if s = "GO" then Some E.tru else None)) leaf
  in
  let support =
    List.concat_map (fun (a : M.assign) -> E.support a.M.rhs) renamed.M.assigns
    @ List.concat_map (fun (r : M.reg) -> E.support r.M.next) renamed.M.regs
  in
  Alcotest.(check bool) "GO substituted away" false (List.mem "GO" support)

let test_bexpr_basics () =
  let module X = Rtl.Bexpr in
  let a = X.var 0 and b = X.var 1 in
  Alcotest.(check bool) "const fold and" true
    (X.is_const (X.and_ X.fls a) = Some false);
  Alcotest.(check bool) "const fold or" true
    (X.is_const (X.or_ X.tru a) = Some true);
  Alcotest.(check bool) "xor self" true (X.is_const (X.xor a a) = Some false);
  Alcotest.(check bool) "double negation" true
    (X.id (X.not_ (X.not_ a)) = X.id a);
  Alcotest.(check (list int)) "support" [ 0; 1 ] (X.support (X.and_ a b));
  let shared = X.and_ a b in
  let e = X.or_ shared (X.not_ shared) in
  Alcotest.(check int) "dag size counts sharing once" 3 (X.size e);
  let substituted = X.substitute (fun v -> if v = 0 then X.tru else X.var v) e in
  Alcotest.(check (list int)) "substitute" [ 1 ] (X.support substituted)


(* ---- Verilog round trip: parse (pp m) reconstructs m ---- *)

let modules_structurally_equal (a : M.t) (b : M.t) =
  a.M.name = b.M.name && a.M.ports = b.M.ports && a.M.wires = b.M.wires
  && a.M.assigns = b.M.assigns && a.M.instances = b.M.instances
  && List.map
       (fun (r : M.reg) -> (r.M.reg_name, r.M.reg_width, r.M.reset_value, r.M.next))
       a.M.regs
     = List.map
         (fun (r : M.reg) -> (r.M.reg_name, r.M.reg_width, r.M.reset_value, r.M.next))
         b.M.regs

let test_verilog_roundtrip () =
  let candidates =
    [ leaf_module ();
      (Chip.Archetype.fsm_ctrl ~name:"vp_fsm" ()).Chip.Archetype.mdl;
      (Chip.Archetype.counter ~name:"vp_cnt" ()).Chip.Archetype.mdl;
      (Chip.Archetype.csr ~name:"vp_csr" ()).Chip.Archetype.mdl;
      (Chip.Archetype.datapath ~name:"vp_alu" ()).Chip.Archetype.mdl;
      (Chip.Archetype.decoder ~name:"vp_dec" ()).Chip.Archetype.mdl;
      (Chip.Archetype.merge ~name:"vp_mrg" ()).Chip.Archetype.mdl ]
  in
  List.iter
    (fun m ->
      let text = Rtl.Verilog.module_to_string m in
      match Rtl.Vparse.parse text with
      | [ m' ] ->
        let m' = Rtl.Vparse.annotate_like ~reference:m m' in
        Alcotest.(check bool) (m.M.name ^ " roundtrips") true
          (modules_structurally_equal m m')
      | _ -> Alcotest.failf "%s: expected one module" m.M.name
      | exception Rtl.Vparse.Error (msg, pos) ->
        Alcotest.failf "%s: parse error at %d: %s" m.M.name pos msg)
    candidates

let test_verilog_roundtrip_hierarchy () =
  (* wrapper + leaf, including the Figure 6 constant tie-offs *)
  let leaf = leaf_module () in
  let d = Rtl.Design.of_modules [ leaf; wrapper leaf ] in
  let text = Rtl.Verilog.design_to_string d in
  let d' = Rtl.Vparse.parse_design text in
  Alcotest.(check int) "two modules" 2 (List.length (Rtl.Design.modules d'));
  Alcotest.(check bool) "reparsed design closed" true
    (Rtl.Design.check_closed d' = Ok ());
  (* the reparsed design must behave identically in simulation *)
  let nl = Rtl.Elaborate.run d ~top:"wrapper" in
  let nl' = Rtl.Elaborate.run d' ~top:"wrapper" in
  let sim = Sim.Simulator.create nl and sim' = Sim.Simulator.create nl' in
  Sim.Simulator.reset sim;
  Sim.Simulator.reset sim';
  let st = Random.State.make [| 77 |] in
  for _ = 1 to 100 do
    let go = Bitvec.of_bool (Random.State.bool st) in
    Sim.Simulator.cycle sim [ ("GO", go) ];
    Sim.Simulator.cycle sim' [ ("GO", go) ];
    Alcotest.(check bool) "same OUT" true
      (Bitvec.equal (Sim.Simulator.peek sim "OUT") (Sim.Simulator.peek sim' "OUT"))
  done

let test_vparse_errors () =
  let expect_error src =
    match Rtl.Vparse.parse src with
    | _ -> Alcotest.failf "accepted %S" src
    | exception Rtl.Vparse.Error _ -> ()
  in
  expect_error "module m (; endmodule";
  expect_error "module m (); reg r; endmodule";  (* reg without always *)
  expect_error "module m (); assign x = 5; endmodule";  (* bare int *)
  expect_error "module m (); wire [3:1] w; endmodule"  (* range not to 0 *)

(* ---- canonical renaming and structural fingerprints ---- *)

(* a small mealy machine, parameterized only by signal names: structural
   twins must fingerprint identically whatever they call their nets *)
let named_machine ~state ~inp ~out ~wire =
  let m = M.create ("m_" ^ state) in
  let m = M.add_input m inp 2 in
  let m = M.add_output m out 2 in
  let m = M.add_wire m wire 2 in
  let m = M.add_assign m wire E.(var state ^: var inp) in
  let m = M.add_assign m out E.(var wire +: of_int ~width:2 1) in
  M.add_reg ~cls:M.Fsm m state 2 (E.var wire)

let elab m = Rtl.Elaborate.run (Rtl.Design.of_modules [ m ]) ~top:m.M.name

let test_canon_fingerprint () =
  let a = elab (named_machine ~state:"cs" ~inp:"IN" ~out:"OUT" ~wire:"nx") in
  let b =
    elab (named_machine ~state:"zustand" ~inp:"EIN" ~out:"AUS" ~wire:"w9")
  in
  Alcotest.(check string) "structural twins share a fingerprint"
    (Rtl.Canon.fingerprint a) (Rtl.Canon.fingerprint b);
  (* roots are translated through the canonical map before digesting *)
  Alcotest.(check string) "roots are canonicalized too"
    (Rtl.Canon.fingerprint ~roots:[ "OUT" ] a)
    (Rtl.Canon.fingerprint ~roots:[ "AUS" ] b);
  Alcotest.(check bool) "roots still matter" true
    (Rtl.Canon.fingerprint ~roots:[ "OUT" ] a <> Rtl.Canon.fingerprint a);
  Alcotest.(check bool) "salt separates keys" true
    (Rtl.Canon.fingerprint ~salt:"bmc" a <> Rtl.Canon.fingerprint ~salt:"bdd" a);
  (* any structural difference must change the digest *)
  let c = elab (M.add_input (named_machine ~state:"cs" ~inp:"IN" ~out:"OUT" ~wire:"nx") "SPARE" 1) in
  Alcotest.(check bool) "extra input changes the fingerprint" true
    (Rtl.Canon.fingerprint a <> Rtl.Canon.fingerprint c)

let test_canon_rename_valid () =
  let nl = elab (named_machine ~state:"cs" ~inp:"IN" ~out:"OUT" ~wire:"nx") in
  let canon, map = Rtl.Canon.canonicalize nl in
  (match Rtl.Netlist.validate canon with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "canonical netlist invalid: %s" msg);
  Alcotest.(check (pair int int)) "same shape"
    (Rtl.Netlist.state_bits nl, List.length nl.Rtl.Netlist.assigns)
    (Rtl.Netlist.state_bits canon, List.length canon.Rtl.Netlist.assigns);
  Alcotest.(check string) "map covers declared signals" "s0" (map "IN");
  Alcotest.(check string) "unknown names map to themselves" "nope" (map "nope")

let () =
  Alcotest.run "rtl"
    [ ("module",
       [ Alcotest.test_case "basics" `Quick test_mdl_basics;
         Alcotest.test_case "map_exprs" `Quick test_map_exprs;
         Alcotest.test_case "bexpr" `Quick test_bexpr_basics ]);
      ("design",
       [ Alcotest.test_case "closure" `Quick test_design;
         Alcotest.test_case "lint" `Quick test_check ]);
      ("elaborate",
       [ Alcotest.test_case "flatten" `Quick test_elaborate;
         Alcotest.test_case "combinational loop" `Quick test_comb_loop;
         Alcotest.test_case "levelization order" `Quick test_levelize_order ]);
      ("analysis",
       [ Alcotest.test_case "cone of influence" `Quick test_coi;
         Alcotest.test_case "verilog emission" `Quick test_verilog ]);
      ("canon",
       [ Alcotest.test_case "structural fingerprint" `Quick
           test_canon_fingerprint;
         Alcotest.test_case "canonical rename validity" `Quick
           test_canon_rename_valid ]);
      ("verilog roundtrip",
       [ Alcotest.test_case "modules" `Quick test_verilog_roundtrip;
         Alcotest.test_case "hierarchy and simulation" `Quick
           test_verilog_roundtrip_hierarchy;
         Alcotest.test_case "parse errors" `Quick test_vparse_errors ]) ]
