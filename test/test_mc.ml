(* Model-checking engines: symbolic FSM construction, reachability
   fixpoints, engine agreement, counterexample replay, BMC. *)

module E = Rtl.Expr
module M = Rtl.Mdl


let elaborated m = Rtl.Elaborate.run (Rtl.Design.of_modules [ m ]) ~top:m.M.name

(* mod-5 counter with an ERROR flag that never rises *)
let mod5 () =
  let m = M.create "mod5" in
  let m = M.add_input m "EN" 1 in
  let m = M.add_output m "ERR" 1 in
  let wrap = E.(var "c" ==: of_int ~width:3 4) in
  let next =
    E.mux (E.var "EN")
      (E.mux wrap (E.of_int ~width:3 0) E.(var "c" +: of_int ~width:3 1))
      (E.var "c")
  in
  let m = M.add_reg m "c" 3 next in
  (* ERR is high only in the unreachable states 5, 6, 7 *)
  M.add_assign m "ERR" (E.( !: ) E.(var "c" <: of_int ~width:3 5))

let test_sym_basics () =
  let nl = elaborated (mod5 ()) in
  let sym = Mc.Sym.create nl in
  Alcotest.(check int) "state bits" 3 (Mc.Sym.num_state_bits sym);
  Alcotest.(check int) "input bits" 1 (Mc.Sym.num_input_bits sym);
  Alcotest.(check (pair string int)) "state bit name" ("c", 0)
    (Mc.Sym.state_bit_name sym 0);
  Alcotest.(check (pair string int)) "input bit name" ("EN", 0)
    (Mc.Sym.input_bit_name sym 0);
  (* the initial state is the all-zero cube *)
  let man = Mc.Sym.man sym in
  Alcotest.(check bool) "init evaluates at zero" true
    (Bdd.eval man (fun _ -> false) (Mc.Sym.init sym))

let test_reachable_count () =
  let nl = elaborated (mod5 ()) in
  let sym = Mc.Sym.create nl in
  let man = Mc.Sym.man sym in
  let reached = Mc.Reach.reachable sym in
  (* count over the 3 current-state variables only: quantify the rest away *)
  let only_states =
    Bdd.exists man (Mc.Sym.inp_vars sym @ Mc.Sym.nxt_vars sym) reached
  in
  let count =
    Bdd.sat_count man only_states /. (2.0 ** float_of_int (Bdd.nvars man - 3))
  in
  Alcotest.(check (float 0.01)) "mod-5 counter reaches 5 states" 5.0 count

let check_verdict name expected (o : Mc.Engine.outcome) =
  let got =
    match o.Mc.Engine.verdict with
    | Mc.Engine.Proved -> "proved"
    | Mc.Engine.Proved_bounded _ -> "bounded"
    | Mc.Engine.Failed _ -> "failed"
    | Mc.Engine.Resource_out _ -> "resource"
    | Mc.Engine.Error _ -> "error"
  in
  Alcotest.(check string) name expected got

let all_strategies =
  [ ("forward", Mc.Engine.Bdd_forward); ("backward", Mc.Engine.Bdd_backward);
    ("combined", Mc.Engine.Bdd_combined); ("pobdd", Mc.Engine.Pobdd) ]

let test_engines_prove_true_invariant () =
  let m = mod5 () in
  let assert_ = Psl.Parser.fl_of_string "never ERR" in
  List.iter
    (fun (name, strategy) ->
      check_verdict name "proved"
        (Mc.Engine.check_property ~strategy m ~assert_ ~assumes:[]))
    all_strategies;
  (* BMC can only bound it *)
  check_verdict "bmc" "bounded"
    (Mc.Engine.check_property ~strategy:Mc.Engine.Bmc m ~assert_ ~assumes:[])

let test_engines_find_violation () =
  let m = mod5 () in
  (* "counter stays below 3" is violated at depth 3 *)
  let assert_ = Psl.Parser.fl_of_string "always (c < 3'b011)" in
  List.iter
    (fun (name, strategy) ->
      match
        (Mc.Engine.check_property ~strategy m ~assert_ ~assumes:[]).Mc.Engine.verdict
      with
      | Mc.Engine.Failed trace ->
        (* the BDD traversals produce shortest counterexamples (state 3 is
           reached after 3 enabled steps); BMC may return any depth *)
        if strategy = Mc.Engine.Bmc then
          Alcotest.(check bool) (name ^ " trace length") true
            (Mc.Trace.length trace >= 4)
        else
          Alcotest.(check int) (name ^ " trace length") 4
            (Mc.Trace.length trace)
      | Mc.Engine.Proved | Mc.Engine.Proved_bounded _ | Mc.Engine.Resource_out _
      | Mc.Engine.Error _ ->
        Alcotest.failf "%s: expected failure" name)
    (all_strategies @ [ ("bmc", Mc.Engine.Bmc) ])

(* replay a counterexample in the simulator and confirm the monitor fires *)
let replay_confirms m assert_ assumes trace =
  let inst = Psl.Monitor.instrument m ~prefix:"replay" ~assert_ ~assumes in
  let nl = elaborated inst.Psl.Monitor.mdl in
  let sim = Sim.Simulator.create nl in
  Sim.Simulator.reset sim;
  let fired = ref false in
  List.iter
    (fun inputs ->
      Sim.Simulator.drive_all sim inputs;
      Sim.Simulator.settle sim;
      if Sim.Simulator.peek_bit sim inst.Psl.Monitor.fail_signal then
        fired := true;
      Sim.Simulator.clock sim)
    (Mc.Trace.replay_stimulus trace);
  !fired

let test_trace_replay () =
  let m = mod5 () in
  let assert_ = Psl.Parser.fl_of_string "always (c < 3'b100)" in
  List.iter
    (fun (name, strategy) ->
      match
        (Mc.Engine.check_property ~strategy m ~assert_ ~assumes:[]).Mc.Engine.verdict
      with
      | Mc.Engine.Failed trace ->
        Alcotest.(check bool) (name ^ " replay fires monitor") true
          (replay_confirms m assert_ [] trace)
      | Mc.Engine.Proved | Mc.Engine.Proved_bounded _ | Mc.Engine.Resource_out _
      | Mc.Engine.Error _ ->
        Alcotest.failf "%s: expected failure" name)
    (all_strategies @ [ ("bmc", Mc.Engine.Bmc) ])

let test_assumes_constrain () =
  (* without the assumption the property fails; with EN assumed low the
     counter never moves and it holds *)
  let m = mod5 () in
  let assert_ = Psl.Parser.fl_of_string "always (c == 3'b000)" in
  check_verdict "fails unconstrained" "failed"
    (Mc.Engine.check_property m ~assert_ ~assumes:[]);
  let no_en = Psl.Parser.fl_of_string "always (~EN)" in
  check_verdict "holds under assumption" "proved"
    (Mc.Engine.check_property m ~assert_ ~assumes:[ no_en ])

let test_image_preimage_duality () =
  (* Img(S) ∩ B ≠ ∅  iff  S ∩ Pre(B) ≠ ∅, for random state sets *)
  let nl = elaborated (mod5 ()) in
  let sym = Mc.Sym.create nl in
  let man = Mc.Sym.man sym in
  let st = Random.State.make [| 13 |] in
  let random_state_set () =
    (* random subset of the 8 states as a disjunction of cubes *)
    let set = ref (Bdd.zero man) in
    for v = 0 to 7 do
      if Random.State.bool st then begin
        let cube =
          Bdd.cube man
            (List.init 3 (fun i -> (Mc.Sym.cur_var sym i, v lsr i land 1 = 1)))
        in
        set := Bdd.or_ man !set cube
      end
    done;
    !set
  in
  for _ = 1 to 50 do
    let s = random_state_set () and b = random_state_set () in
    let forward = not (Bdd.is_zero (Bdd.and_ man (Mc.Reach.image sym s) b)) in
    let backward =
      not (Bdd.is_zero (Bdd.and_ man s (Mc.Reach.pre_image sym b)))
    in
    Alcotest.(check bool) "duality" forward backward
  done

let test_bmc_find_shortest () =
  let m = mod5 () in
  let inst =
    Psl.Monitor.instrument m ~prefix:"fs"
      ~assert_:(Psl.Parser.fl_of_string "always (c < 3'b100)")
      ~assumes:[]
  in
  let nl = elaborated inst.Psl.Monitor.mdl in
  (match
     Mc.Bmc.find_shortest nl ~ok_signal:inst.Psl.Monitor.invariant_ok
       ~max_depth:20
   with
   | Mc.Bmc.Violation (trace, stats) ->
     Alcotest.(check int) "minimal depth" 4 stats.Mc.Bmc.depth;
     Alcotest.(check int) "minimal trace" 5 (Mc.Trace.length trace)
   | Mc.Bmc.No_violation_upto _ | Mc.Bmc.Inconclusive _ ->
     Alcotest.fail "expected violation");
  (* a true invariant is clean through the whole sweep *)
  let inst2 =
    Psl.Monitor.instrument m ~prefix:"fs2"
      ~assert_:(Psl.Parser.fl_of_string "never ERR")
      ~assumes:[]
  in
  let nl2 = elaborated inst2.Psl.Monitor.mdl in
  match
    Mc.Bmc.find_shortest nl2 ~ok_signal:inst2.Psl.Monitor.invariant_ok
      ~max_depth:10
  with
  | Mc.Bmc.No_violation_upto (d, _) -> Alcotest.(check int) "swept to 10" 10 d
  | Mc.Bmc.Violation _ | Mc.Bmc.Inconclusive _ -> Alcotest.fail "expected clean"

let test_bmc_depth_sensitivity () =
  (* violation at depth 4 is missed with depth 3 and found with depth 4 *)
  let m = mod5 () in
  let nl_budget d =
    { Mc.Engine.default_budget with Mc.Engine.bmc_depth = d }
  in
  let assert_ = Psl.Parser.fl_of_string "always (c < 3'b100)" in
  check_verdict "depth 3 misses" "bounded"
    (Mc.Engine.check_property ~budget:(nl_budget 3) ~strategy:Mc.Engine.Bmc m
       ~assert_ ~assumes:[]);
  check_verdict "depth 4 finds" "failed"
    (Mc.Engine.check_property ~budget:(nl_budget 4) ~strategy:Mc.Engine.Bmc m
       ~assert_ ~assumes:[])

let test_node_limit_escalation () =
  (* a tiny node budget forces the Auto strategy down to BMC *)
  let m = mod5 () in
  let budget =
    { Mc.Engine.default_budget with
      Mc.Engine.bdd_node_limit = Some 16; pobdd_node_limit = Some 16 }
  in
  let assert_ = Psl.Parser.fl_of_string "never ERR" in
  let o = Mc.Engine.check_property ~budget ~strategy:Mc.Engine.Auto m ~assert_ ~assumes:[] in
  Alcotest.(check string) "fell back to bmc" "bmc" o.Mc.Engine.engine_used;
  check_verdict "bounded result" "bounded" o

let test_strategy_names_roundtrip () =
  (* one shared parser for every CLI entry point: names must round-trip *)
  List.iter
    (fun s ->
      let name = Mc.Engine.strategy_name s in
      match Mc.Engine.strategy_of_string name with
      | Some s' ->
        Alcotest.(check bool) (name ^ " round-trips") true (s' = s)
      | None -> Alcotest.failf "%s does not parse back" name)
    [ Mc.Engine.Bdd_forward; Mc.Engine.Bdd_backward; Mc.Engine.Bdd_combined;
      Mc.Engine.Pobdd; Mc.Engine.Bmc; Mc.Engine.Kind; Mc.Engine.Ic3;
      Mc.Engine.Auto ];
  Alcotest.(check bool) "unknown name rejected" true
    (Mc.Engine.strategy_of_string "frobnicate" = None);
  (* portfolios are structured values, not names *)
  let p =
    Mc.Engine.default_portfolio Mc.Engine.default_budget
  in
  Alcotest.(check bool) "portfolio names not parsed" true
    (Mc.Engine.strategy_of_string
       (Mc.Engine.strategy_name (Mc.Engine.Portfolio p))
     = None)

let test_problem_size () =
  let m = mod5 () in
  let assert_ = Psl.Parser.fl_of_string "never ERR" in
  let state, inputs = Mc.Engine.problem_size m ~assert_ ~assumes:[] in
  (* 3 counter bits + monitor bookkeeping registers *)
  Alcotest.(check bool) "state includes monitor" true (state >= 3);
  Alcotest.(check int) "one input bit" 1 inputs

(* k-induction engine *)
let test_kinduction () =
  let m = mod5 () in
  (* inductive at k=0: ERR is combinationally false for states < 5, but
     states 5..7 satisfy nothing... the invariant needs the reachable-set
     strengthening, so plain induction must still prove via deeper k or
     stay inconclusive — accept either Proved or Resource_out, never Failed *)
  let assert_ = Psl.Parser.fl_of_string "never ERR" in
  let o =
    Mc.Engine.check_property ~strategy:Mc.Engine.Kind m ~assert_ ~assumes:[]
  in
  (match o.Mc.Engine.verdict with
   | Mc.Engine.Proved | Mc.Engine.Resource_out _ -> ()
   | Mc.Engine.Failed _ -> Alcotest.fail "k-induction claimed a violation"
   | Mc.Engine.Proved_bounded _ -> Alcotest.fail "unexpected bounded verdict"
   | Mc.Engine.Error m -> Alcotest.failf "unexpected error verdict: %s" m);
  (* a real violation must surface through the base case with a trace *)
  let bad = Psl.Parser.fl_of_string "always (c < 3'b100)" in
  (match
     (Mc.Engine.check_property ~strategy:Mc.Engine.Kind m ~assert_:bad
        ~assumes:[]).Mc.Engine.verdict
   with
   | Mc.Engine.Failed trace ->
     Alcotest.(check bool) "trace replays" true (replay_confirms m bad [] trace)
   | Mc.Engine.Proved | Mc.Engine.Proved_bounded _ | Mc.Engine.Resource_out _
   | Mc.Engine.Error _ ->
     Alcotest.fail "expected violation");
  (* an invariant that is inductive at depth 0: a self-holding register *)
  let m2 = M.create "hold" in
  let m2 = M.add_output m2 "OK" 1 in
  let m2 = M.add_reg ~reset:(Bitvec.of_string "1") m2 "h" 1 (E.var "h") in
  let m2 = M.add_assign m2 "OK" (E.var "h") in
  let o2 =
    Mc.Engine.check_property ~strategy:Mc.Engine.Kind m2
      ~assert_:(Psl.Parser.fl_of_string "always OK") ~assumes:[]
  in
  (match o2.Mc.Engine.verdict with
   | Mc.Engine.Proved -> ()
   | Mc.Engine.Proved_bounded _ | Mc.Engine.Failed _
   | Mc.Engine.Resource_out _ | Mc.Engine.Error _ ->
     Alcotest.fail "self-holding invariant should be inductive")

(* k-induction agrees with BDD reachability across the chip's bug modules *)
let test_kinduction_agrees_on_bugs () =
  let chip = Chip.Generator.generate () in
  List.iter
    (fun bug ->
      let _, u = Chip.Generator.find_unit chip bug in
      let mdl = u.Chip.Generator.info.Verifiable.Transform.mdl in
      let vunits = Verifiable.Propgen.all u.Chip.Generator.info u.Chip.Generator.spec in
      List.iter
        (fun (_, vunit) ->
          List.iter
            (fun (name, assert_) ->
              let assumes = List.map snd (Psl.Ast.assumes vunit) in
              let bdd =
                Mc.Engine.check_property ~strategy:Mc.Engine.Bdd_forward mdl
                  ~assert_ ~assumes
              in
              let kind =
                Mc.Engine.check_property ~strategy:Mc.Engine.Kind mdl ~assert_
                  ~assumes
              in
              match (bdd.Mc.Engine.verdict, kind.Mc.Engine.verdict) with
              | Mc.Engine.Failed _, Mc.Engine.Failed _ -> ()
              | Mc.Engine.Proved, (Mc.Engine.Proved | Mc.Engine.Resource_out _)
                ->
                ()
              | _ -> Alcotest.failf "%s: engines disagree" name)
            (Psl.Ast.asserts vunit))
        vunits)
    [ Chip.Bugs.B2; Chip.Bugs.B4 ]

(* IC3/PDR engine *)
let test_ic3 () =
  let m = mod5 () in
  (* "never ERR" needs the reachable-set strengthening plain induction
     lacks: IC3 must learn the frame clauses and prove it unbounded *)
  let assert_ = Psl.Parser.fl_of_string "never ERR" in
  let o =
    Mc.Engine.check_property ~strategy:Mc.Engine.Ic3 m ~assert_ ~assumes:[]
  in
  check_verdict "proves never ERR" "proved" o;
  Alcotest.(check string) "attributed to ic3" "ic3" o.Mc.Engine.engine_used;
  Alcotest.(check bool) "frame count recorded" true
    (o.Mc.Engine.perf.Mc.Engine.ic3_frames >= 0);
  (* a real violation surfaces with a replay-confirmed trace *)
  let bad = Psl.Parser.fl_of_string "always (c < 3'b100)" in
  (match
     (Mc.Engine.check_property ~strategy:Mc.Engine.Ic3 m ~assert_:bad
        ~assumes:[]).Mc.Engine.verdict
   with
   | Mc.Engine.Failed trace ->
     Alcotest.(check bool) "trace replays" true (replay_confirms m bad [] trace)
   | Mc.Engine.Proved | Mc.Engine.Proved_bounded _ | Mc.Engine.Resource_out _
   | Mc.Engine.Error _ ->
     Alcotest.fail "expected violation");
  (* an exhausted frame budget is the canonical resource-out *)
  let tight =
    { Mc.Engine.default_budget with Mc.Engine.ic3_max_frames = 1 }
  in
  let o' =
    Mc.Engine.check_property ~budget:tight ~strategy:Mc.Engine.Ic3 m ~assert_
      ~assumes:[]
  in
  match o'.Mc.Engine.verdict with
  | Mc.Engine.Proved -> ()  (* 1 frame can suffice if the fixpoint is early *)
  | Mc.Engine.Resource_out _ ->
    Alcotest.(check (option string)) "canonical cause" (Some "ic3-frames")
      (Mc.Engine.resource_cause o')
  | Mc.Engine.Proved_bounded _ | Mc.Engine.Failed _ | Mc.Engine.Error _ ->
    Alcotest.fail "tight frame budget must prove or run out"

let test_ic3_proves_kind_inconclusive () =
  (* the portfolio's reason to exist: a wrapping 4-bit counter whose states
     8..15 are unreachable but form arbitrarily long simple paths satisfying
     the property — plain k-induction can never close it, IC3 learns the
     strengthening clauses and proves it *)
  let m = M.create "wrap8" in
  let m = M.add_output m "OK" 1 in
  let next =
    E.mux
      E.(var "s" ==: of_int ~width:4 7)
      (E.of_int ~width:4 0)
      E.(var "s" +: of_int ~width:4 1)
  in
  let m = M.add_reg m "s" 4 next in
  let m = M.add_assign m "OK" (E.( !: ) E.(var "s" ==: of_int ~width:4 12)) in
  let assert_ = Psl.Parser.fl_of_string "always OK" in
  let budget =
    { Mc.Engine.default_budget with Mc.Engine.induction_max_k = 3 }
  in
  let kind =
    Mc.Engine.check_property ~budget ~strategy:Mc.Engine.Kind m ~assert_
      ~assumes:[]
  in
  Alcotest.(check (option string)) "k-induction is inconclusive"
    (Some "kind-inconclusive") (Mc.Engine.resource_cause kind);
  let ic3 =
    Mc.Engine.check_property ~budget ~strategy:Mc.Engine.Ic3 m ~assert_
      ~assumes:[]
  in
  check_verdict "ic3 proves it" "proved" ic3;
  Alcotest.(check bool) "proof needed at least one frame" true
    (ic3.Mc.Engine.perf.Mc.Engine.ic3_frames >= 1)

(* IC3 agrees with BDD reachability on the seeded-bug counter: same
   falsifications, and every IC3 trace replays in the simulator *)
let test_ic3_agrees_on_bug_module () =
  let leaf = Chip.Archetype.counter ~name:"ic3_cnt" ~bug:true () in
  let info = Verifiable.Transform.apply leaf.Chip.Archetype.mdl in
  let mdl = info.Verifiable.Transform.mdl in
  let spec =
    { Verifiable.Propgen.he = leaf.Chip.Archetype.he;
      he_map = leaf.Chip.Archetype.he_map;
      parity_inputs = leaf.Chip.Archetype.parity_inputs;
      parity_outputs = leaf.Chip.Archetype.parity_outputs; extra = [] }
  in
  let falsified = ref 0 in
  List.iter
    (fun (_, vunit) ->
      let assumes = List.map snd (Psl.Ast.assumes vunit) in
      List.iter
        (fun (name, assert_) ->
          let bdd =
            Mc.Engine.check_property ~strategy:Mc.Engine.Bdd_forward mdl
              ~assert_ ~assumes
          in
          let ic3 =
            Mc.Engine.check_property ~strategy:Mc.Engine.Ic3 mdl ~assert_
              ~assumes
          in
          match (bdd.Mc.Engine.verdict, ic3.Mc.Engine.verdict) with
          | Mc.Engine.Failed _, Mc.Engine.Failed trace ->
            incr falsified;
            Alcotest.(check bool) (name ^ " ic3 trace replays") true
              (replay_confirms mdl assert_ assumes trace)
          | Mc.Engine.Proved, (Mc.Engine.Proved | Mc.Engine.Resource_out _) ->
            ()
          | _ -> Alcotest.failf "%s: ic3 and bdd disagree" name)
        (Psl.Ast.asserts vunit))
    (Verifiable.Propgen.all info spec);
  Alcotest.(check bool) "seeded bug falsified through ic3" true (!falsified > 0)


(* ---- random modules: symbolic engines vs explicit-state brute force ---- *)

(* a random module with [nregs] 1-bit registers and [nins] inputs; each
   register's next function and the 1-bit PROP output are random expressions
   over registers and inputs *)
let gen_random_module =
  let open QCheck.Gen in
  let gen_expr nregs nins =
    let leaf =
      oneof
        [ map (fun i -> E.var (Printf.sprintf "r%d" i)) (int_range 0 (nregs - 1));
          map (fun i -> E.var (Printf.sprintf "i%d" i)) (int_range 0 (nins - 1));
          oneofl [ E.tru; E.fls ] ]
    in
    fix
      (fun self depth ->
        if depth = 0 then leaf
        else
          frequency
            [ (2, leaf);
              (2, map2 (fun a b -> E.(a &: b)) (self (depth - 1)) (self (depth - 1)));
              (2, map2 (fun a b -> E.(a |: b)) (self (depth - 1)) (self (depth - 1)));
              (2, map2 (fun a b -> E.(a ^: b)) (self (depth - 1)) (self (depth - 1)));
              (1, map (fun a -> E.(!:a)) (self (depth - 1)));
              (1,
               map3 (fun c a b -> E.mux c a b) (self (depth - 1))
                 (self (depth - 1)) (self (depth - 1))) ])
      3
  in
  int_range 2 4 >>= fun nregs ->
  int_range 1 2 >>= fun nins ->
  list_repeat nregs (gen_expr nregs nins) >>= fun nexts ->
  gen_expr nregs nins >>= fun prop ->
  list_repeat nregs bool >|= fun resets ->
  (nregs, nins, nexts, prop, resets)

let build_random_module (_nregs, nins, nexts, prop, resets) =
  let m = M.create "rand" in
  let m =
    List.fold_left
      (fun m i -> M.add_input m (Printf.sprintf "i%d" i) 1)
      m
      (List.init nins Fun.id)
  in
  let m =
    List.fold_left
      (fun m (i, (next, reset)) ->
        M.add_reg
          ~reset:(Bitvec.of_bool reset)
          m
          (Printf.sprintf "r%d" i)
          1 next)
      m
      (List.mapi (fun i x -> (i, x)) (List.combine nexts resets))
  in
  let m = M.add_output m "PROP" 1 in
  M.add_assign m "PROP" prop

(* explicit-state: BFS over all (state, input) successors *)
let brute_force_invariant_holds (_nregs, nins, nexts, prop, resets) =
  let eval_bit env e = Bitvec.get (E.eval ~env e) 0 in
  let env_of state input name =
    let b =
      if name.[0] = 'r' then
        state lsr int_of_string (String.sub name 1 (String.length name - 1))
        land 1
        = 1
      else
        input lsr int_of_string (String.sub name 1 (String.length name - 1))
        land 1
        = 1
    in
    Bitvec.of_bool b
  in
  let init =
    List.fold_left
      (fun acc (i, r) -> if r then acc lor (1 lsl i) else acc)
      0
      (List.mapi (fun i r -> (i, r)) resets)
  in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.replace seen init ();
  Queue.add init queue;
  let ok = ref true in
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    for input = 0 to (1 lsl nins) - 1 do
      let env = env_of s input in
      (* PROP may read inputs through combinational logic *)
      if not (eval_bit env prop) then ok := false;
      let s' =
        List.fold_left
          (fun acc (i, next) ->
            if eval_bit env next then acc lor (1 lsl i) else acc)
          0
          (List.mapi (fun i n -> (i, n)) nexts)
      in
      if not (Hashtbl.mem seen s') then begin
        Hashtbl.replace seen s' ();
        Queue.add s' queue
      end
    done
  done;
  (!ok, Hashtbl.length seen)

let arb_random_module =
  QCheck.make
    ~print:(fun (n, i, _, _, _) -> Printf.sprintf "%d regs, %d inputs" n i)
    gen_random_module

let prop_engines_match_brute_force =
  QCheck.Test.make ~name:"all engines agree with explicit-state search"
    ~count:60 arb_random_module (fun desc ->
      let m = build_random_module desc in
      let expected_ok, reachable_count = brute_force_invariant_holds desc in
      let assert_ = Psl.Parser.fl_of_string "always PROP" in
      (* every decided engine verdict must match the brute-force one *)
      let verdict_matches strategy =
        match
          (Mc.Engine.check_property ~strategy m ~assert_ ~assumes:[])
            .Mc.Engine.verdict
        with
        | Mc.Engine.Proved -> expected_ok
        | Mc.Engine.Failed trace ->
          (not expected_ok) && replay_confirms m assert_ [] trace
        | Mc.Engine.Proved_bounded _ ->
          (* BMC at default depth 20 >= diameter of a <=16-state system *)
          expected_ok
        | Mc.Engine.Resource_out _ -> true (* k-induction may be inconclusive *)
        | Mc.Engine.Error _ -> false
      in
      let engines_ok =
        List.for_all verdict_matches
          [ Mc.Engine.Bdd_forward; Mc.Engine.Bdd_backward;
            Mc.Engine.Bdd_combined; Mc.Engine.Pobdd; Mc.Engine.Bmc;
            Mc.Engine.Kind; Mc.Engine.Ic3 ]
      in
      (* and the symbolic reachable-set size must equal the BFS count *)
      let nl = elaborated m in
      let sym = Mc.Sym.create nl in
      let man = Mc.Sym.man sym in
      let reached = Mc.Reach.reachable sym in
      let only_states =
        Bdd.exists man
          (Mc.Sym.inp_vars sym @ Mc.Sym.nxt_vars sym)
          reached
      in
      let nregs, _, _, _, _ = desc in
      let count =
        Bdd.sat_count man only_states
        /. (2.0 ** float_of_int (Bdd.nvars man - nregs))
      in
      engines_ok
      && abs_float (count -. float_of_int reachable_count) < 0.5)

(* ---- proof obligations and the structural result cache ---- *)

let counter_obligations ?(bug = false) name =
  let leaf = Chip.Archetype.counter ~name ~bug () in
  let info = Verifiable.Transform.apply leaf.Chip.Archetype.mdl in
  let spec =
    { Verifiable.Propgen.he = leaf.Chip.Archetype.he;
      he_map = leaf.Chip.Archetype.he_map;
      parity_inputs = leaf.Chip.Archetype.parity_inputs;
      parity_outputs = leaf.Chip.Archetype.parity_outputs; extra = [] }
  in
  List.concat_map
    (fun (_, vunit) ->
      Mc.Obligation.of_vunit info.Verifiable.Transform.mdl vunit
        ~meta:(fun ~prop_name -> prop_name))
    (Verifiable.Propgen.all info spec)

let test_obligation_fingerprints () =
  let a = counter_obligations "ob_a" in
  let b = counter_obligations "ob_b" in
  let bugged = counter_obligations ~bug:true "ob_c" in
  let fps obs = List.map Mc.Obligation.fingerprint obs in
  List.iter
    (fun fp -> Alcotest.(check int) "digest is 32 hex chars" 32 (String.length fp))
    (fps a);
  (* structurally identical clones, names aside: same keys *)
  Alcotest.(check (list string)) "clone fingerprints agree" (fps a) (fps b);
  (* the seeded bug changes the logic, so at least one key must change *)
  Alcotest.(check bool) "bugged counter keys differ" true (fps a <> fps bugged);
  (* a different budget is a different obligation *)
  let tight =
    { Mc.Engine.default_budget with Mc.Engine.bmc_depth = 7 }
  in
  let a' = List.hd a in
  let fp_tight =
    Mc.Obligation.fingerprint { a' with Mc.Obligation.budget = tight }
  in
  Alcotest.(check bool) "budget is part of the key" true
    (fp_tight <> Mc.Obligation.fingerprint a')

let test_obligation_run_matches_engine () =
  let leaf = Chip.Archetype.counter ~name:"ob_run" ~bug:true () in
  let info = Verifiable.Transform.apply leaf.Chip.Archetype.mdl in
  let spec =
    { Verifiable.Propgen.he = leaf.Chip.Archetype.he;
      he_map = leaf.Chip.Archetype.he_map;
      parity_inputs = leaf.Chip.Archetype.parity_inputs;
      parity_outputs = leaf.Chip.Archetype.parity_outputs; extra = [] }
  in
  let vunit = Verifiable.Propgen.soundness_vunit info spec in
  let tag (o : Mc.Engine.outcome) =
    match o.Mc.Engine.verdict with
    | Mc.Engine.Proved -> "proved"
    | Mc.Engine.Proved_bounded d -> Printf.sprintf "bounded:%d" d
    | Mc.Engine.Failed _ -> "failed"
    | Mc.Engine.Resource_out _ -> "resource"
    | Mc.Engine.Error _ -> "error"
  in
  let via_engine =
    List.map
      (fun (name, o) -> (name, tag o))
      (Mc.Engine.check_vunit info.Verifiable.Transform.mdl vunit)
  in
  let via_obligation =
    List.map
      (fun ob ->
        (ob.Mc.Obligation.meta, tag (Mc.Obligation.run ob)))
      (Mc.Obligation.of_vunit info.Verifiable.Transform.mdl vunit
         ~meta:(fun ~prop_name -> prop_name))
  in
  Alcotest.(check (list (pair string string)))
    "prepared obligations reproduce the engine facade" via_engine
    via_obligation

let test_cache_dedups_clones () =
  let cache = Mc.Cache.create () in
  let run obs =
    List.map
      (fun ob ->
        Mc.Cache.find_or_run cache ~key:(Mc.Obligation.fingerprint ob)
          (fun () -> Mc.Obligation.run ob))
      obs
  in
  let a = counter_obligations "cache_a" in
  let first = run a in
  Alcotest.(check int) "cold run: every check is fresh" (List.length a)
    (Mc.Cache.misses cache);
  Alcotest.(check int) "cold run: no hits" 0 (Mc.Cache.hits cache);
  (* a structurally identical sibling: zero fresh engine calls *)
  let second = run (counter_obligations "cache_b") in
  Alcotest.(check int) "warm run: no new misses" (List.length a)
    (Mc.Cache.misses cache);
  Alcotest.(check int) "warm run: all hits" (List.length a)
    (Mc.Cache.hits cache);
  List.iter2
    (fun (_, hit1) (_, hit2) ->
      Alcotest.(check bool) "first run misses" false hit1;
      Alcotest.(check bool) "second run hits" true hit2)
    first second

let test_cache_persistence () =
  let cache = Mc.Cache.create () in
  let obs = counter_obligations "cache_p" in
  List.iter
    (fun ob ->
      ignore
        (Mc.Cache.find_or_run cache ~key:(Mc.Obligation.fingerprint ob)
           (fun () -> Mc.Obligation.run ob)))
    obs;
  let path = Filename.temp_file "dicheck" ".cache" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Mc.Cache.save cache path;
      let reloaded =
        match Mc.Cache.load path with
        | Some c -> c
        | None -> Alcotest.fail "saved cache does not load"
      in
      Alcotest.(check int) "all entries survive the round trip"
        (Mc.Cache.length cache) (Mc.Cache.length reloaded);
      let fresh_runs = ref 0 in
      List.iter
        (fun ob ->
          let _, hit =
            Mc.Cache.find_or_run reloaded
              ~key:(Mc.Obligation.fingerprint ob)
              (fun () ->
                incr fresh_runs;
                Mc.Obligation.run ob)
          in
          Alcotest.(check bool) "reloaded entry hits" true hit)
        obs;
      Alcotest.(check int) "zero fresh engine calls after reload" 0
        !fresh_runs);
  Alcotest.(check bool) "missing file loads as None" true
    (Mc.Cache.load "/nonexistent/dicheck.cache" = None)

let test_canonical_ro_causes () =
  (* the exported constants are the complete resource-out vocabulary every
     downstream consumer (campaign summaries, the metrics schema, CI
     scripts) keys on — spellings are load-bearing *)
  Alcotest.(check (list string)) "canonical order"
    [ "deadline"; "bdd-nodes"; "sat-conflicts"; "kind-inconclusive";
      "ic3-frames"; "cancelled"; "heal-exhausted" ]
    Mc.Engine.ro_causes;
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " listed") true
        (List.mem c Mc.Engine.ro_causes))
    [ Mc.Engine.ro_deadline; Mc.Engine.ro_bdd_nodes;
      Mc.Engine.ro_sat_conflicts; Mc.Engine.ro_kind_inconclusive;
      Mc.Engine.ro_cancelled; Mc.Engine.ro_ic3_frames;
      Mc.Engine.ro_heal_exhausted ];
  (* resource_cause speaks the same vocabulary *)
  let ro cause =
    { Mc.Engine.verdict = Mc.Engine.Resource_out cause; engine_used = "t";
      time_s = 0.0; iterations = 0; work_nodes = 0;
      perf = Mc.Engine.empty_perf }
  in
  List.iter
    (fun c ->
      Alcotest.(check (option string)) ("cause " ^ c) (Some c)
        (Mc.Engine.resource_cause (ro c)))
    Mc.Engine.ro_causes

let () =
  Alcotest.run "mc"
    [ ("sym",
       [ Alcotest.test_case "construction" `Quick test_sym_basics;
         Alcotest.test_case "reachable states" `Quick test_reachable_count;
         Alcotest.test_case "image/preimage duality" `Quick
           test_image_preimage_duality ]);
      ("engines",
       [ Alcotest.test_case "prove invariant" `Quick
           test_engines_prove_true_invariant;
         Alcotest.test_case "find violation" `Quick test_engines_find_violation;
         Alcotest.test_case "trace replay" `Quick test_trace_replay;
         Alcotest.test_case "assumptions" `Quick test_assumes_constrain;
         Alcotest.test_case "bmc depth" `Quick test_bmc_depth_sensitivity;
         Alcotest.test_case "bmc shortest counterexample" `Quick
           test_bmc_find_shortest;
         Alcotest.test_case "budget escalation" `Quick
           test_node_limit_escalation;
         Alcotest.test_case "strategy names round-trip" `Quick
           test_strategy_names_roundtrip;
         Alcotest.test_case "canonical resource-out causes" `Quick
           test_canonical_ro_causes;
         Alcotest.test_case "problem size" `Quick test_problem_size ]);
      ("induction",
       [ Alcotest.test_case "k-induction basics" `Quick test_kinduction;
         Alcotest.test_case "agrees with BDD on bug modules" `Slow
           test_kinduction_agrees_on_bugs ]);
      ("ic3",
       [ Alcotest.test_case "ic3 basics" `Quick test_ic3;
         Alcotest.test_case "proves where k-induction gives up" `Quick
           test_ic3_proves_kind_inconclusive;
         Alcotest.test_case "agrees with BDD on the bugged counter" `Slow
           test_ic3_agrees_on_bug_module ]);
      ("obligation",
       [ Alcotest.test_case "structural fingerprints" `Quick
           test_obligation_fingerprints;
         Alcotest.test_case "run matches engine facade" `Quick
           test_obligation_run_matches_engine;
         Alcotest.test_case "cache dedups structural clones" `Quick
           test_cache_dedups_clones;
         Alcotest.test_case "cache persists across processes" `Quick
           test_cache_persistence ]);
      ("cross-validation",
       [ QCheck_alcotest.to_alcotest prop_engines_match_brute_force ]) ]
