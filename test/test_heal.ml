(* The self-healing recovery layer: checkpoint-cut hygiene, the
   assume-guarantee / CEGAR loop of Heal.heal_one, concrete replay
   confirmation of real failures, and the campaign-level recovery pass —
   recovery under the starving budget, determinism across backends, and
   journal resume through healed verdicts. *)

module E = Rtl.Expr
module M = Rtl.Mdl
module A = Psl.Ast
module G = Chip.Generator
module H = Core.Heal

let bv = Bitvec.of_string
let chip = lazy (G.generate ())

(* the starvation point used throughout: monolithic filler cones exhaust
   this BDD arena, their partitioned pieces decide comfortably inside it *)
let starved =
  { Mc.Engine.default_budget with Mc.Engine.bdd_node_limit = Some 2_000 }

let engine_piece ?budget (p : H.piece) =
  Mc.Engine.check_property ?budget ~strategy:Mc.Engine.Bdd_forward p.H.p_mdl
    ~assert_:p.H.p_assert ~assumes:p.H.p_assumes

(* a parity-protected register frozen at its odd-parity reset word, tapped
   by a checkpoint wire — the smallest healable cone *)
let checkpoint_module () =
  let m = M.create "healm" in
  let m =
    M.add_reg ~cls:M.Counter ~parity_protected:true ~reset:(bv "1000") m "c_q"
      4 (E.var "c_q")
  in
  let m = M.add_wire m "c_chk" 4 in
  M.add_assign m "c_chk" (E.var "c_q")

(* two independent protected registers, each tapped by a checkpoint wire *)
let two_cut_module () =
  let m = M.create "healc" in
  let m =
    M.add_reg ~cls:M.Fsm ~parity_protected:true ~reset:(bv "10") m "a_q" 2
      (E.var "a_q")
  in
  let m =
    M.add_reg ~cls:M.Fsm ~parity_protected:true ~reset:(bv "10") m "b_q" 2
      (E.var "b_q")
  in
  let m = M.add_wire m "a_c" 2 in
  let m = M.add_assign m "a_c" (E.var "a_q") in
  let m = M.add_wire m "b_c" 2 in
  M.add_assign m "b_c" (E.var "b_q")

(* ---- Heal.heal_one unit behavior ---- *)

let test_heal_confirms_real_failure () =
  (* the property is genuinely false on the concrete machine (the payload
     is stuck at zero): the freed-cut counterexample must replay concretely
     and come back as a real [Failed] carrying the concrete trace *)
  let m = checkpoint_module () in
  let payload = E.slice (E.var "c_chk") ~hi:2 ~lo:0 in
  let assert_ = A.Always (A.Bool E.(payload <>: of_int ~width:3 0)) in
  let r =
    H.heal_one ~max_iters:4 ~run_piece:(engine_piece ?budget:None) ~mdl:m
      ~assert_ ~assumes:[] ()
  in
  Alcotest.(check int) "the tap's parity sub-proof succeeds" 1 r.H.h_subs_proved;
  Alcotest.(check int) "no spurious counterexamples" 0 r.H.h_spurious;
  match r.H.h_outcome with
  | Some ({ Mc.Engine.verdict = Mc.Engine.Failed trace; _ } as o) ->
    Alcotest.(check string) "attributed to the healer" H.engine_name
      o.Mc.Engine.engine_used;
    Alcotest.(check bool) "concrete trace attached" true
      (Mc.Trace.length trace > 0);
    (* the trace is the concrete machine's, not the abstraction's: the
       checkpointed register carries its actual odd-parity reset word *)
    let first = List.hd trace in
    (match List.assoc_opt "c_q" first.Mc.Trace.state with
     | Some v -> Alcotest.(check bool) "c_q holds its reset word" true
                   (Bitvec.equal v (bv "1000"))
     | None -> Alcotest.fail "concrete trace does not record c_q")
  | Some o ->
    Alcotest.failf "expected a confirmed failure, got %s"
      (match o.Mc.Engine.verdict with
       | Mc.Engine.Proved -> "proved"
       | Mc.Engine.Proved_bounded _ -> "bounded"
       | Mc.Engine.Resource_out c -> "resource-out " ^ c
       | Mc.Engine.Error e -> "error " ^ e
       | Mc.Engine.Failed _ -> assert false)
  | None -> Alcotest.fail "healer found no cuts"

let test_heal_cegar_refines_spurious () =
  (* force cut [a_c] to stay unguaranteed (its parity sub-proof is starved
     out): the first freed-cut check then fails on an even-parity value the
     concrete machine never produces, the replay refutes it, CEGAR un-frees
     the blamed cut, and the second check proves the property *)
  let m = two_cut_module () in
  let assert_ = A.Always (A.Bool (E.red_xor (E.var "a_c"))) in
  let run_piece (p : H.piece) =
    if String.equal p.H.p_salt "heal-sub:a_c" then
      { Mc.Engine.verdict = Mc.Engine.Resource_out Mc.Engine.ro_bdd_nodes;
        engine_used = "test-starve"; time_s = 0.0; iterations = 0;
        work_nodes = 0; perf = Mc.Engine.empty_perf }
    else engine_piece p
  in
  let r =
    H.heal_one
      ~mine:(fun _ ~roots:_ -> [ "a_c"; "b_c" ])
      ~max_iters:4 ~run_piece ~mdl:m ~assert_ ~assumes:[] ()
  in
  Alcotest.(check int) "only b_c guaranteed" 1 r.H.h_subs_proved;
  Alcotest.(check int) "one spurious counterexample" 1 r.H.h_spurious;
  Alcotest.(check int) "two final checks: CEGAR refined once" 2 r.H.h_finals;
  match r.H.h_outcome with
  | Some { Mc.Engine.verdict = Mc.Engine.Proved; engine_used; _ } ->
    Alcotest.(check string) "healer attribution" H.engine_name engine_used
  | _ -> Alcotest.fail "expected a healed proof after refinement"

let test_heal_skips_bad_cuts () =
  (* satellite regression: mined candidates that cannot be freed (unknown
     names, ports) are skipped and counted — never a crash — and the
     healing proceeds on the surviving cut *)
  let m = two_cut_module () in
  let m = M.add_output m "O" 2 in
  let m = M.add_assign m "O" (E.var "a_q") in
  let assert_ = A.Always (A.Bool (E.red_xor (E.var "a_c"))) in
  let r =
    H.heal_one
      ~mine:(fun _ ~roots:_ -> [ "no_such_signal"; "O"; "a_c" ])
      ~max_iters:4 ~run_piece:(engine_piece ?budget:None) ~mdl:m ~assert_
      ~assumes:[] ()
  in
  Alcotest.(check int) "two bad candidates skipped" 2 r.H.h_bad_cuts;
  (match r.H.h_outcome with
   | Some { Mc.Engine.verdict = Mc.Engine.Proved; _ } -> ()
   | _ -> Alcotest.fail "surviving cut should heal to a proof");
  (* a cone with nothing freeable is unhealable, not an error *)
  let r2 =
    H.heal_one
      ~mine:(fun _ ~roots:_ -> [ "nope" ])
      ~max_iters:4 ~run_piece:(engine_piece ?budget:None) ~mdl:m ~assert_
      ~assumes:[] ()
  in
  Alcotest.(check int) "bad candidate counted" 1 r2.H.h_bad_cuts;
  (match r2.H.h_outcome with
   | None -> ()
   | Some _ -> Alcotest.fail "all-bad mining must leave the verdict alone");
  Alcotest.(check int) "no pieces ran" 0 r2.H.h_pieces

let test_heal_exhausts_honestly () =
  (* a single cut whose spurious counterexample un-frees it leaves nothing
     freed: the healer must report heal-exhausted, not loop or lie *)
  let m = two_cut_module () in
  let assert_ = A.Always (A.Bool (E.red_xor (E.var "a_c"))) in
  let run_piece (p : H.piece) =
    if String.equal p.H.p_salt "heal-sub:a_c" then
      { Mc.Engine.verdict = Mc.Engine.Resource_out Mc.Engine.ro_bdd_nodes;
        engine_used = "test-starve"; time_s = 0.0; iterations = 0;
        work_nodes = 0; perf = Mc.Engine.empty_perf }
    else engine_piece p
  in
  let r =
    H.heal_one
      ~mine:(fun _ ~roots:_ -> [ "a_c" ])
      ~max_iters:4 ~run_piece ~mdl:m ~assert_ ~assumes:[] ()
  in
  Alcotest.(check int) "one spurious counterexample" 1 r.H.h_spurious;
  match r.H.h_outcome with
  | Some { Mc.Engine.verdict = Mc.Engine.Resource_out cause; _ } ->
    Alcotest.(check string) "canonical heal-exhausted cause"
      Mc.Engine.ro_heal_exhausted cause
  | _ -> Alcotest.fail "expected heal-exhausted"

let test_heal_beats_starved_budget () =
  (* the seeded-chip case: a filler's monolithic properties exhaust the
     2000-node budget, yet healing proves most of them under the very same
     budget — Figure 7's point, automated *)
  let t = Lazy.force chip in
  let cat_a =
    List.find (fun (c : G.category) -> c.G.cat_name = "A") t.G.categories
  in
  let u =
    List.find (fun (u : G.unit_) -> u.G.leaf.Chip.Archetype.bug = None)
      cat_a.G.units
  in
  let mdl = u.G.info.Verifiable.Transform.mdl in
  let starved_ro =
    List.concat_map
      (fun (_, vunit) ->
        let assumes = List.map snd (A.assumes vunit) in
        List.filter_map
          (fun (name, assert_) ->
            match
              (Mc.Engine.check_property ~budget:starved
                 ~strategy:Mc.Engine.Bdd_forward mdl ~assert_ ~assumes)
                .Mc.Engine.verdict
            with
            | Mc.Engine.Resource_out _ -> Some (name, assert_, assumes)
            | _ -> None)
          (A.asserts vunit))
      (Verifiable.Propgen.all u.G.info u.G.spec)
  in
  Alcotest.(check bool) "the starved budget exhausts some properties" true
    (List.length starved_ro > 0);
  let healed =
    List.filter
      (fun (name, assert_, assumes) ->
        let r =
          H.heal_one ~max_iters:4
            ~run_piece:(engine_piece ~budget:starved)
            ~mdl ~assert_ ~assumes ()
        in
        match r.H.h_outcome with
        | Some { Mc.Engine.verdict = Mc.Engine.Proved; _ } -> true
        | Some { Mc.Engine.verdict = Mc.Engine.Failed _; _ } ->
          Alcotest.failf "%s healed to a failure on a clean module" name
        | _ -> false)
      starved_ro
  in
  Alcotest.(check bool)
    (Printf.sprintf "at least half the starved properties heal (%d of %d)"
       (List.length healed) (List.length starved_ro))
    true
    (2 * List.length healed >= List.length starved_ro)

(* ---- the campaign-level recovery pass ---- *)

(* one bug-free category-A filler: enough to starve, quick to run *)
let heal_chip () =
  let t = Lazy.force chip in
  let cat_a =
    List.find (fun (c : G.category) -> c.G.cat_name = "A") t.G.categories
  in
  let filler =
    List.find (fun (u : G.unit_) -> u.G.leaf.Chip.Archetype.bug = None)
      cat_a.G.units
  in
  { t with
    G.categories =
      [ { cat_a with G.units = [ filler ];
          G.expected = { cat_a.G.expected with G.sub = 1 } } ] }

(* everything a verdict row asserts, minus schedule-dependent measures *)
let result_key (r : Core.Campaign.prop_result) =
  let verdict =
    match r.Core.Campaign.outcome.Mc.Engine.verdict with
    | Mc.Engine.Proved -> "proved"
    | Mc.Engine.Proved_bounded d -> Printf.sprintf "bounded:%d" d
    | Mc.Engine.Failed _ -> "failed"
    | Mc.Engine.Resource_out m -> "resource:" ^ m
    | Mc.Engine.Error m -> "error:" ^ m
  in
  Printf.sprintf "%s/%s/%s/%s/%s/%b" r.Core.Campaign.module_name
    r.Core.Campaign.vunit_name r.Core.Campaign.prop_name verdict
    r.Core.Campaign.outcome.Mc.Engine.engine_used r.Core.Campaign.healed

let run_heal_chip ?jobs ?cache ?journal ?self_heal () =
  Core.Campaign.run ~budget:starved ~strategy:Mc.Engine.Bdd_forward ?jobs
    ?cache ?journal ?self_heal (heal_chip ())

let test_campaign_recovers () =
  let plain = run_heal_chip () in
  let ro0 = plain.Core.Campaign.grand_total.Core.Campaign.resource_out in
  Alcotest.(check bool) "the starved campaign resource-outs" true (ro0 > 0);
  (match plain.Core.Campaign.healing with
   | None -> ()
   | Some _ -> Alcotest.fail "healing block without self_heal");
  let healed = run_heal_chip ~self_heal:4 () in
  let h =
    match healed.Core.Campaign.healing with
    | Some h -> h
    | None -> Alcotest.fail "self_heal run lacks the healing block"
  in
  Alcotest.(check int) "every resource-out was attempted" ro0
    h.Core.Campaign.heal_attempted;
  Alcotest.(check bool)
    (Printf.sprintf "at least half recovered (%d of %d)"
       h.Core.Campaign.heal_recovered h.Core.Campaign.heal_attempted)
    true
    (2 * h.Core.Campaign.heal_recovered >= h.Core.Campaign.heal_attempted);
  Alcotest.(check int) "recovered = proved + failed"
    h.Core.Campaign.heal_recovered
    (h.Core.Campaign.heal_proved + h.Core.Campaign.heal_failed);
  Alcotest.(check int) "clean modules heal only to proofs" 0
    h.Core.Campaign.heal_failed;
  Alcotest.(check int) "the RO count drops by exactly the recoveries"
    (ro0 - h.Core.Campaign.heal_recovered)
    healed.Core.Campaign.grand_total.Core.Campaign.resource_out;
  (* healed rows are flagged, attributed and conclusive *)
  let healed_rows =
    List.filter (fun (r : Core.Campaign.prop_result) -> r.Core.Campaign.healed)
      healed.Core.Campaign.results
  in
  Alcotest.(check int) "healed row flags match the tally"
    h.Core.Campaign.heal_recovered (List.length healed_rows);
  List.iter
    (fun (r : Core.Campaign.prop_result) ->
      Alcotest.(check string)
        (r.Core.Campaign.prop_name ^ " attributed to the healer")
        Core.Heal.engine_name r.Core.Campaign.outcome.Mc.Engine.engine_used;
      Alcotest.(check bool)
        (r.Core.Campaign.prop_name ^ " conclusive")
        true
        (Mc.Engine.conclusive r.Core.Campaign.outcome))
    healed_rows;
  (* what remains resource-out carries the canonical exhaustion cause *)
  List.iter
    (fun (cause, _) ->
      Alcotest.(check string) "canonical residual cause"
        Mc.Engine.ro_heal_exhausted cause)
    (Core.Campaign.resource_out_causes healed);
  (* zero verdict flips against the unstarved baseline *)
  let baseline =
    Core.Campaign.run ~strategy:Mc.Engine.Bdd_forward (heal_chip ())
  in
  List.iter2
    (fun (b : Core.Campaign.prop_result) (r : Core.Campaign.prop_result) ->
      match
        ( b.Core.Campaign.outcome.Mc.Engine.verdict,
          r.Core.Campaign.outcome.Mc.Engine.verdict )
      with
      | (Mc.Engine.Proved | Mc.Engine.Proved_bounded _), Mc.Engine.Failed _
      | Mc.Engine.Failed _, (Mc.Engine.Proved | Mc.Engine.Proved_bounded _) ->
        Alcotest.failf "%s: healing flipped the verdict"
          r.Core.Campaign.prop_name
      | _ -> ())
    baseline.Core.Campaign.results healed.Core.Campaign.results;
  (* the recovery block and the healed column reach the reports *)
  let json = Core.Campaign.to_metrics_json healed in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i =
      i + n <= h && (String.sub hay i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "metrics carry the recovery block" true
    (contains "\"recovery\"" json);
  Alcotest.(check bool) "metrics count healed rows" true
    (contains "\"healed_rows\"" json);
  (match String.split_on_char '\n' (Core.Campaign.to_csv healed) with
   | header :: _ ->
     Alcotest.(check bool) "csv has healed column" true
       (List.mem "healed" (String.split_on_char ',' header))
   | [] -> Alcotest.fail "empty csv")

let test_campaign_seq_matches_pool () =
  (* byte-identical healing between the sequential backend and a domain
     pool: verdicts, attribution, healed flags and the recovery totals *)
  let seq = run_heal_chip ~self_heal:4 () in
  let pool = run_heal_chip ~jobs:4 ~self_heal:4 () in
  Alcotest.(check (list string)) "same healed verdicts in the same order"
    (List.map result_key seq.Core.Campaign.results)
    (List.map result_key pool.Core.Campaign.results);
  let totals (t : Core.Campaign.t) =
    match t.Core.Campaign.healing with
    | None -> Alcotest.fail "missing healing block"
    | Some h ->
      [ ("attempted", h.Core.Campaign.heal_attempted);
        ("recovered", h.Core.Campaign.heal_recovered);
        ("proved", h.Core.Campaign.heal_proved);
        ("failed", h.Core.Campaign.heal_failed);
        ("exhausted", h.Core.Campaign.heal_exhausted);
        ("unhealable", h.Core.Campaign.heal_unhealable);
        ("spurious", h.Core.Campaign.heal_spurious);
        ("cegar_iters", h.Core.Campaign.heal_cegar_iters);
        ("subs_proved", h.Core.Campaign.heal_subs_proved);
        ("bad_cuts", h.Core.Campaign.heal_bad_cuts);
        ("pieces", h.Core.Campaign.heal_pieces) ]
  in
  Alcotest.(check (list (pair string int))) "same recovery totals"
    (totals seq) (totals pool)

let test_campaign_resume_replays_healing () =
  (* a resumed campaign must replay healed verdicts from the journal —
     healed flags intact — without one fresh engine run *)
  let path = Filename.temp_file "dicheck_heal" ".jnl" in
  let j1 = Core.Journal.create path in
  let first = run_heal_chip ~self_heal:4 ~journal:j1 () in
  Core.Journal.close j1;
  let j2 = Core.Journal.create ~resume:true path in
  let cache = Mc.Cache.create () in
  let resumed = run_heal_chip ~self_heal:4 ~journal:j2 ~cache () in
  Core.Journal.close j2;
  Sys.remove path;
  Alcotest.(check int) "no fresh engine work on resume" 0
    (Mc.Cache.misses cache);
  Alcotest.(check int) "every row replayed"
    (List.length resumed.Core.Campaign.results)
    resumed.Core.Campaign.replayed;
  Alcotest.(check (list string)) "identical rows after resume"
    (List.map result_key first.Core.Campaign.results)
    (List.map result_key resumed.Core.Campaign.results);
  (* the healed rows came back from disk, not from re-proving *)
  let flags (t : Core.Campaign.t) =
    List.length
      (List.filter
         (fun (r : Core.Campaign.prop_result) -> r.Core.Campaign.healed)
         t.Core.Campaign.results)
  in
  Alcotest.(check bool) "healed rows present" true (flags first > 0);
  Alcotest.(check int) "healed flags survive the resume" (flags first)
    (flags resumed);
  (* residual exhausted rows are re-attempted from journaled pieces only *)
  match resumed.Core.Campaign.healing with
  | None -> Alcotest.fail "resumed run lacks the healing block"
  | Some h ->
    Alcotest.(check int) "resume recovers nothing new" 0
      h.Core.Campaign.heal_recovered

let () =
  Alcotest.run "heal"
    [ ("heal_one",
       [ Alcotest.test_case "confirms real failures concretely" `Quick
           test_heal_confirms_real_failure;
         Alcotest.test_case "CEGAR refines a spurious counterexample" `Quick
           test_heal_cegar_refines_spurious;
         Alcotest.test_case "bad mined cuts are skipped, never fatal" `Quick
           test_heal_skips_bad_cuts;
         Alcotest.test_case "exhausts honestly" `Quick
           test_heal_exhausts_honestly;
         Alcotest.test_case "partitioning beats the starved budget" `Slow
           test_heal_beats_starved_budget ]);
      ("campaign",
       [ Alcotest.test_case "recovers starved obligations" `Slow
           test_campaign_recovers;
         Alcotest.test_case "sequential matches pool" `Slow
           test_campaign_seq_matches_pool;
         Alcotest.test_case "resume replays healing" `Slow
           test_campaign_resume_replays_healing ]) ]
