(* The methodology core: integrity entities, the Verifiable-RTL transform,
   stereotype property generation, and Figure 7 partitioning soundness. *)

module E = Rtl.Expr
module M = Rtl.Mdl
module T = Verifiable.Transform
module PG = Verifiable.Propgen

let bv = Bitvec.of_string

(* two-entity leaf: parity-protected FSM and counter plus one plain reg *)
let sample_module () =
  let m = M.create "samp" in
  let m = M.add_input m "EN" 1 in
  let m = M.add_input m "DATA" 5 in
  let m = M.add_output m "HE" 2 in
  let m = M.add_output m "OUT" 5 in
  let payload w e = E.slice e ~hi:(w - 2) ~lo:0 in
  let fsm_next =
    Verifiable.Parity.encode
      E.(mux (var "EN")
           (payload 4 (var "fsm_q") +: of_int ~width:3 1)
           (payload 4 (var "fsm_q")))
  in
  let m =
    M.add_reg ~cls:M.Fsm ~parity_protected:true ~reset:(bv "1000") m "fsm_q" 4
      fsm_next
  in
  let m =
    M.add_reg ~cls:M.Counter ~parity_protected:true ~reset:(bv "10000") m
      "cnt_q" 5 (E.var "DATA")
  in
  let m = M.add_reg m "plain_q" 1 (E.var "EN") in
  (* the input checker is latched independently of the (injectable) capture
     register, as in the chip archetypes *)
  let m = M.add_reg m "chk_in_q" 1 (Verifiable.Parity.violated (E.var "DATA")) in
  let m =
    M.add_assign m "HE"
      (E.concat
         E.(Verifiable.Parity.violated (var "cnt_q") |: var "chk_in_q")
         (Verifiable.Parity.violated (E.var "fsm_q")))
  in
  M.add_assign m "OUT" (E.var "cnt_q")

let spec =
  { PG.he = "HE"; he_map = [ ("fsm_q", 0); ("cnt_q", 1); ("DATA", 1) ];
    parity_inputs = [ "DATA" ]; parity_outputs = [ "OUT" ];
    extra = [ ("pTrue", Psl.Ast.Always (Psl.Ast.Bool E.tru)) ] }

let test_entity_discovery () =
  let entities = Verifiable.Entity.discover (sample_module ()) in
  Alcotest.(check int) "two entities" 2 (List.length entities);
  Alcotest.(check (list string)) "names and order" [ "fsm_q"; "cnt_q" ]
    (List.map (fun (e : Verifiable.Entity.t) -> e.Verifiable.Entity.reg_name)
       entities);
  Alcotest.(check bool) "plain reg excluded" true
    (not
       (List.exists
          (fun (e : Verifiable.Entity.t) ->
            e.Verifiable.Entity.reg_name = "plain_q")
          entities))

let test_parity_builders () =
  let env name = if name = "x" then bv "0110" else Alcotest.fail "unbound" in
  let encoded = E.eval ~env (Verifiable.Parity.encode (E.var "x")) in
  Alcotest.(check bool) "encode yields odd parity" true
    (Bitvec.has_odd_parity encoded);
  Alcotest.(check int) "encode widens" 5 (Bitvec.width encoded);
  let ok = E.eval ~env (Verifiable.Parity.ok (Verifiable.Parity.encode (E.var "x"))) in
  Alcotest.(check bool) "ok accepts" true (Bitvec.get ok 0)

let test_transform () =
  let info = T.apply (sample_module ()) in
  Alcotest.(check int) "EC width = entity count" 2
    (M.signal_width info.T.mdl info.T.ec_port);
  Alcotest.(check int) "ED width = widest entity" 5
    (M.signal_width info.T.mdl info.T.ed_port);
  (* injection muxes present on entity regs, absent on plain regs *)
  let next_of name =
    match M.find_reg info.T.mdl name with
    | Some r -> r.M.next
    | None -> Alcotest.failf "no reg %s" name
  in
  (match next_of "fsm_q" with
   | E.Mux (_, _, _) -> ()
   | _ -> Alcotest.fail "fsm_q has no selector");
  (match next_of "plain_q" with
   | E.Mux (_, _, _) -> Alcotest.fail "plain_q must not get a selector"
   | _ -> ());
  (* tie-offs are zero constants of the right widths *)
  (match T.tie_offs info with
   | [ (ec, M.Expr (E.Const c)); (ed, M.Expr (E.Const d)) ] ->
     Alcotest.(check string) "ec port" info.T.ec_port ec;
     Alcotest.(check string) "ed port" info.T.ed_port ed;
     Alcotest.(check bool) "zeros" true (Bitvec.is_zero c && Bitvec.is_zero d)
   | _ -> Alcotest.fail "unexpected tie-off shape");
  Alcotest.(check bool) "idempotence rejected" true
    (match T.apply info.T.mdl with
     | _ -> false
     | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "no entities rejected" true
    (match T.apply (M.add_reg (M.create "e") "r" 1 E.tru) with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_transform_preserves_behavior () =
  (* with the injection ports tied to zero the transformed module behaves
     exactly like the original over random runs *)
  let original = sample_module () in
  let info = T.apply original in
  let nl0 =
    Rtl.Elaborate.run (Rtl.Design.of_modules [ original ]) ~top:"samp"
  in
  let nl1 =
    Rtl.Elaborate.run (Rtl.Design.of_modules [ info.T.mdl ]) ~top:"samp"
  in
  let sim0 = Sim.Simulator.create nl0 and sim1 = Sim.Simulator.create nl1 in
  Sim.Simulator.reset sim0;
  Sim.Simulator.reset sim1;
  let st = Random.State.make [| 5 |] in
  for _ = 1 to 200 do
    let en = Bitvec.of_bool (Random.State.bool st) in
    let data = Sim.Stimulus.odd_parity 5 st in
    Sim.Simulator.cycle sim0 [ ("EN", en); ("DATA", data) ];
    Sim.Simulator.cycle sim1
      [ ("EN", en); ("DATA", data);
        (info.T.ec_port, Bitvec.zero 2); (info.T.ed_port, Bitvec.zero 5) ];
    Alcotest.(check bool) "OUT agrees" true
      (Bitvec.equal (Sim.Simulator.peek sim0 "OUT") (Sim.Simulator.peek sim1 "OUT"));
    Alcotest.(check bool) "HE agrees" true
      (Bitvec.equal (Sim.Simulator.peek sim0 "HE") (Sim.Simulator.peek sim1 "HE"))
  done

let test_propgen_counts () =
  let info = T.apply (sample_module ()) in
  let p0, p1, p2, p3 = PG.counts info spec in
  Alcotest.(check int) "P0 = entities + parity inputs" 3 p0;
  Alcotest.(check int) "P1 = HE bits" 2 p1;
  Alcotest.(check int) "P2 = parity outputs" 1 p2;
  Alcotest.(check int) "P3 = extras" 1 p3;
  Alcotest.(check int) "class names distinct" 4
    (List.length
       (List.sort_uniq compare
          (List.map PG.class_name [ PG.P0; PG.P1; PG.P2; PG.P3 ])))

let test_propgen_shapes () =
  let info = T.apply (sample_module ()) in
  let ed = PG.edetect_vunit info spec in
  Alcotest.(check int) "edetect asserts" 3 (PG.assert_count ed);
  Alcotest.(check (list string)) "edetect names"
    [ "pCheck_fsm_q"; "pCheck_cnt_q"; "pCheckIn_DATA" ]
    (List.map fst (Psl.Ast.asserts ed));
  let sound = PG.soundness_vunit info spec in
  Alcotest.(check int) "soundness assumes" 2
    (List.length (Psl.Ast.assumes sound));
  Alcotest.(check int) "soundness asserts one per HE bit" 2
    (PG.assert_count sound);
  let integ = PG.integrity_vunit info spec in
  Alcotest.(check (list string)) "integrity asserts" [ "pIntegrityO_OUT" ]
    (List.map fst (Psl.Ast.asserts integ));
  (* generated vunits print as parseable PSL *)
  List.iter
    (fun (_, v) ->
      let printed = Psl.Print.vunit_to_string v in
      match Psl.Parser.vunits_of_string printed with
      | [ v' ] ->
        Alcotest.(check int)
          ("roundtrip asserts " ^ v.Psl.Ast.vunit_name)
          (PG.assert_count v) (PG.assert_count v')
      | _ -> Alcotest.fail "reprint did not parse")
    (PG.all info spec)

let test_generated_properties_verify () =
  (* the bug-free sample module passes its entire stereotype set *)
  let info = T.apply (sample_module ()) in
  List.iter
    (fun (_, vunit) ->
      List.iter
        (fun (name, (o : Mc.Engine.outcome)) ->
          match o.Mc.Engine.verdict with
          | Mc.Engine.Proved | Mc.Engine.Proved_bounded _ -> ()
          | Mc.Engine.Failed _ -> Alcotest.failf "%s failed" name
          | Mc.Engine.Resource_out msg ->
            Alcotest.failf "%s resource out: %s" name msg
          | Mc.Engine.Error msg -> Alcotest.failf "%s error: %s" name msg)
        (Mc.Engine.check_vunit info.T.mdl vunit))
    (PG.all info spec)

let test_partition_soundness () =
  (* Figure 7 on the merge archetype: the sub-properties and the final
     property all hold, and so does the original (on a small instance) *)
  let leaf = Chip.Archetype.merge ~name:"pmerge" ~payload_width:4 () in
  let info = T.apply leaf.Chip.Archetype.mdl in
  let pspec =
    { PG.he = leaf.Chip.Archetype.he; he_map = leaf.Chip.Archetype.he_map;
      parity_inputs = leaf.Chip.Archetype.parity_inputs;
      parity_outputs = leaf.Chip.Archetype.parity_outputs; extra = [] }
  in
  let plan =
    Verifiable.Partition.partition info pspec ~output:"OUT"
      ~cuts:[ "chk0"; "chk1"; "chk2" ]
  in
  let check_one mdl vunit =
    List.iter
      (fun (name, (o : Mc.Engine.outcome)) ->
        match o.Mc.Engine.verdict with
        | Mc.Engine.Proved -> ()
        | Mc.Engine.Proved_bounded _ | Mc.Engine.Failed _
        | Mc.Engine.Resource_out _ | Mc.Engine.Error _ ->
          Alcotest.failf "%s not proved" name)
      (Mc.Engine.check_vunit ~strategy:Mc.Engine.Bdd_forward mdl vunit)
  in
  check_one info.T.mdl plan.Verifiable.Partition.original;
  List.iter (fun (_, v) -> check_one info.T.mdl v)
    plan.Verifiable.Partition.sub_vunits;
  check_one plan.Verifiable.Partition.cut_mdl
    plan.Verifiable.Partition.final_vunit;
  (* the cut module frees the checkpoints into inputs *)
  Alcotest.(check bool) "chk0 became input" true
    (match M.find_port plan.Verifiable.Partition.cut_mdl "chk0" with
     | Some p -> p.M.dir = M.Input
     | None -> false)

let test_partition_agreement_across_engines () =
  (* the partition-soundness property, quantified over engines and instance
     sizes: every sub-property and the freed-cut final check must agree
     with the monolithic verdict (all proved on the clean merge archetype)
     whichever complete engine decides them *)
  List.iter
    (fun payload_width ->
      let leaf =
        Chip.Archetype.merge
          ~name:(Printf.sprintf "pagree%d" payload_width)
          ~payload_width ()
      in
      let info = T.apply leaf.Chip.Archetype.mdl in
      let pspec =
        { PG.he = leaf.Chip.Archetype.he; he_map = leaf.Chip.Archetype.he_map;
          parity_inputs = leaf.Chip.Archetype.parity_inputs;
          parity_outputs = leaf.Chip.Archetype.parity_outputs; extra = [] }
      in
      let plan =
        Verifiable.Partition.partition info pspec ~output:"OUT"
          ~cuts:[ "chk0"; "chk1"; "chk2" ]
      in
      List.iter
        (fun (label, strategy) ->
          let check_one mdl vunit =
            List.iter
              (fun (name, (o : Mc.Engine.outcome)) ->
                match o.Mc.Engine.verdict with
                | Mc.Engine.Proved -> ()
                | Mc.Engine.Proved_bounded _ | Mc.Engine.Failed _
                | Mc.Engine.Resource_out _ | Mc.Engine.Error _ ->
                  Alcotest.failf "w=%d %s: %s not proved" payload_width label
                    name)
              (Mc.Engine.check_vunit ~strategy mdl vunit)
          in
          check_one info.T.mdl plan.Verifiable.Partition.original;
          List.iter (fun (_, v) -> check_one info.T.mdl v)
            plan.Verifiable.Partition.sub_vunits;
          check_one plan.Verifiable.Partition.cut_mdl
            plan.Verifiable.Partition.final_vunit)
        [ ("bdd-forward", Mc.Engine.Bdd_forward);
          ("bdd-backward", Mc.Engine.Bdd_backward);
          ("bdd-combined", Mc.Engine.Bdd_combined);
          ("pobdd", Mc.Engine.Pobdd); ("ic3", Mc.Engine.Ic3);
          ("auto", Mc.Engine.Auto) ])
    [ 3; 4 ]

let test_mine_cuts () =
  (* automatic checkpoint discovery recovers the hand-picked Figure 7 cuts *)
  let leaf = Chip.Archetype.merge ~name:"pmine" ~payload_width:4 () in
  let info = T.apply leaf.Chip.Archetype.mdl in
  let mined = Verifiable.Partition.mine_cuts info.T.mdl ~roots:[ "OUT" ] in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " mined") true (List.mem c mined))
    [ "chk0"; "chk1"; "chk2" ];
  (* every mined candidate honours the free_cuts contract *)
  List.iter
    (fun c -> ignore (Verifiable.Partition.free_cuts info.T.mdl [ c ]))
    mined;
  Alcotest.(check int) "max_cuts caps the yield" 2
    (List.length
       (Verifiable.Partition.mine_cuts ~max_cuts:2 info.T.mdl
          ~roots:[ "OUT" ]));
  Alcotest.(check (list string)) "an empty cone mines nothing" []
    (Verifiable.Partition.mine_cuts info.T.mdl ~roots:[])

let test_free_cuts_contract () =
  (* a protected register frees into a primary input of the same width;
     ports and unknown names are rejected with Invalid_argument *)
  let m = sample_module () in
  let freed = Verifiable.Partition.free_cuts m [ "cnt_q" ] in
  (match M.find_port freed "cnt_q" with
   | Some p ->
     Alcotest.(check bool) "reg became an input" true (p.M.dir = M.Input);
     Alcotest.(check int) "width preserved" 5 (M.signal_width freed "cnt_q")
   | None -> Alcotest.fail "cnt_q is not a port of the freed module");
  Alcotest.(check bool) "reg dropped" true (M.find_reg freed "cnt_q" = None);
  List.iter
    (fun bad ->
      Alcotest.(check bool) (bad ^ " rejected") true
        (match Verifiable.Partition.free_cuts m [ bad ] with
         | _ -> false
         | exception Invalid_argument _ -> true))
    [ "DATA" (* already an input *); "HE" (* an output *); "missing" ]

let test_partition_cut_validation () =
  let leaf = Chip.Archetype.merge ~name:"pmerge2" ~payload_width:4 () in
  let info = T.apply leaf.Chip.Archetype.mdl in
  let pspec =
    { PG.he = "HE"; he_map = []; parity_inputs = [ "S0"; "S1"; "S2" ];
      parity_outputs = [ "OUT" ]; extra = [] }
  in
  Alcotest.(check bool) "bad cut rejected" true
    (match
       Verifiable.Partition.partition info pspec ~output:"OUT"
         ~cuts:[ "not_a_wire" ]
     with
     | _ -> false
     | exception Invalid_argument _ -> true)


(* ---- automatic specification extraction ---- *)

let test_spec_infer_matches_archetypes () =
  (* inference must recover the hand-written integrity interface *)
  List.iter
    (fun (leaf : Chip.Archetype.leaf) ->
      match Verifiable.Spec_infer.infer leaf.Chip.Archetype.mdl with
      | Error msg ->
        Alcotest.failf "%s: inference failed: %s" leaf.Chip.Archetype.mdl.M.name
          msg
      | Ok inferred ->
        let name = leaf.Chip.Archetype.mdl.M.name in
        Alcotest.(check string) (name ^ " he") leaf.Chip.Archetype.he
          inferred.PG.he;
        Alcotest.(check (slist string compare))
          (name ^ " parity inputs")
          leaf.Chip.Archetype.parity_inputs inferred.PG.parity_inputs;
        Alcotest.(check (slist string compare))
          (name ^ " parity outputs")
          leaf.Chip.Archetype.parity_outputs inferred.PG.parity_outputs;
        (* every hand-written HE mapping must be recovered *)
        List.iter
          (fun (src, bit) ->
            Alcotest.(check (option int))
              (Printf.sprintf "%s he_map %s" name src)
              (Some bit)
              (List.assoc_opt src inferred.PG.he_map))
          leaf.Chip.Archetype.he_map)
    [ Chip.Archetype.fsm_ctrl ~name:"si_fsm" ();
      Chip.Archetype.counter ~name:"si_cnt" ();
      Chip.Archetype.csr ~name:"si_csr" ();
      Chip.Archetype.datapath ~name:"si_alu" ();
      Chip.Archetype.decoder ~name:"si_dec" ();
      Chip.Archetype.filler ~name:"si_fil" ~n_fsm:1 ~n_cnt:1 ~n_dp:1
        ~n_parity_in:2 ~n_parity_out:3 ~he_bits:2 ~n_extra:0 ]

let test_spec_infer_errors () =
  let no_he = M.add_reg ~cls:M.Counter ~parity_protected:true
      (M.create "nohe") "c" 2 (E.var "c") in
  Alcotest.(check bool) "missing HE rejected" true
    (Result.is_error (Verifiable.Spec_infer.infer no_he));
  let no_ent = M.add_output (M.create "noent") "HE" 1 in
  Alcotest.(check bool) "no entities rejected" true
    (Result.is_error (Verifiable.Spec_infer.infer no_ent))

let test_spec_infer_properties_verify () =
  (* the inferred spec's generated properties hold on a clean archetype *)
  let leaf = Chip.Archetype.counter ~name:"si_cnt2" () in
  match Verifiable.Spec_infer.infer leaf.Chip.Archetype.mdl with
  | Error msg -> Alcotest.fail msg
  | Ok spec ->
    let info = T.apply leaf.Chip.Archetype.mdl in
    List.iter
      (fun (_, vunit) ->
        List.iter
          (fun (name, (o : Mc.Engine.outcome)) ->
            match o.Mc.Engine.verdict with
            | Mc.Engine.Proved | Mc.Engine.Proved_bounded _ -> ()
            | Mc.Engine.Failed _ | Mc.Engine.Resource_out _
            | Mc.Engine.Error _ ->
              Alcotest.failf "%s did not prove" name)
          (Mc.Engine.check_vunit info.T.mdl vunit))
      (PG.all info spec)


(* ---- SECDED ECC ---- *)

let test_ecc_scheme () =
  let s4 = Verifiable.Ecc.scheme ~data_width:4 in
  Alcotest.(check int) "4-bit payload needs 3 check bits" 3
    s4.Verifiable.Ecc.check_bits;
  Alcotest.(check int) "code width" 8 s4.Verifiable.Ecc.code_width;
  let s8 = Verifiable.Ecc.scheme ~data_width:8 in
  Alcotest.(check int) "8-bit payload needs 4 check bits" 4
    s8.Verifiable.Ecc.check_bits;
  Alcotest.(check int) "code width 13" 13 s8.Verifiable.Ecc.code_width

let prop_ecc_roundtrip =
  QCheck.Test.make ~name:"ECC encode/decode roundtrip" ~count:200
    (QCheck.int_bound 255) (fun n ->
      let s = Verifiable.Ecc.scheme ~data_width:8 in
      let payload = Bitvec.of_int ~width:8 n in
      let d = Verifiable.Ecc.decode_bv s (Verifiable.Ecc.encode_bv s payload) in
      Bitvec.equal d.Verifiable.Ecc.payload payload
      && (not d.Verifiable.Ecc.corrected)
      && not d.Verifiable.Ecc.uncorrectable)

let prop_ecc_corrects_single =
  QCheck.Test.make ~name:"ECC corrects every single-bit error" ~count:300
    (QCheck.pair (QCheck.int_bound 255) (QCheck.int_bound 12))
    (fun (n, bit) ->
      let s = Verifiable.Ecc.scheme ~data_width:8 in
      let payload = Bitvec.of_int ~width:8 n in
      let code = Verifiable.Ecc.encode_bv s payload in
      let d = Verifiable.Ecc.decode_bv s (Bitvec.corrupt_bit code bit) in
      Bitvec.equal d.Verifiable.Ecc.payload payload
      && d.Verifiable.Ecc.corrected
      && not d.Verifiable.Ecc.uncorrectable)

let prop_ecc_detects_double =
  QCheck.Test.make ~name:"ECC detects every double-bit error" ~count:300
    (QCheck.triple (QCheck.int_bound 255) (QCheck.int_bound 12)
       (QCheck.int_bound 12))
    (fun (n, b1, b2) ->
      QCheck.assume (b1 <> b2);
      let s = Verifiable.Ecc.scheme ~data_width:8 in
      let payload = Bitvec.of_int ~width:8 n in
      let code = Verifiable.Ecc.encode_bv s payload in
      let d =
        Verifiable.Ecc.decode_bv s
          (Bitvec.corrupt_bit (Bitvec.corrupt_bit code b1) b2)
      in
      d.Verifiable.Ecc.uncorrectable && not d.Verifiable.Ecc.corrected)

let prop_ecc_circuit_matches_reference =
  QCheck.Test.make ~name:"ECC circuit matches reference" ~count:200
    (QCheck.pair (QCheck.int_bound 15) (QCheck.int_bound 255))
    (fun (n, corrupt) ->
      let s = Verifiable.Ecc.scheme ~data_width:4 in
      let payload = Bitvec.of_int ~width:4 n in
      let word =
        Bitvec.logxor
          (Verifiable.Ecc.encode_bv s payload)
          (Bitvec.of_int ~width:8 corrupt)
      in
      let env name =
        match name with
        | "w" -> word
        | "p" -> payload
        | _ -> Alcotest.failf "unbound %s" name
      in
      (* encoder circuit agrees with encode_bv *)
      let enc = E.eval ~env (Verifiable.Ecc.encode s (E.var "p")) in
      let circuit_matches_encoder =
        Bitvec.equal enc (Verifiable.Ecc.encode_bv s payload)
      in
      (* decoder circuit agrees with decode_bv on arbitrary words *)
      let dpay, dce, due = Verifiable.Ecc.decode s (E.var "w") in
      let d = Verifiable.Ecc.decode_bv s word in
      circuit_matches_encoder
      && Bitvec.equal (E.eval ~env dpay) d.Verifiable.Ecc.payload
      && Bitvec.get (E.eval ~env dce) 0 = d.Verifiable.Ecc.corrected
      && Bitvec.get (E.eval ~env due) 0 = d.Verifiable.Ecc.uncorrectable)

let test_ecc_reg_properties_prove () =
  let mdl, props = Chip.Archetype.ecc_reg ~name:"eccr" () in
  List.iter
    (fun (name, assert_) ->
      match
        (Mc.Engine.check_property mdl ~assert_ ~assumes:[]).Mc.Engine.verdict
      with
      | Mc.Engine.Proved -> ()
      | Mc.Engine.Proved_bounded _ | Mc.Engine.Failed _
      | Mc.Engine.Resource_out _ | Mc.Engine.Error _ ->
        Alcotest.failf "%s did not prove" name)
    props

let () =
  Alcotest.run "verifiable"
    [ ("entities",
       [ Alcotest.test_case "discovery" `Quick test_entity_discovery;
         Alcotest.test_case "parity builders" `Quick test_parity_builders ]);
      ("transform",
       [ Alcotest.test_case "structure" `Quick test_transform;
         Alcotest.test_case "behavior preserved under tie-off" `Quick
           test_transform_preserves_behavior ]);
      ("propgen",
       [ Alcotest.test_case "counts" `Quick test_propgen_counts;
         Alcotest.test_case "shapes and roundtrip" `Quick test_propgen_shapes;
         Alcotest.test_case "clean module verifies" `Quick
           test_generated_properties_verify ]);
      ("partition",
       [ Alcotest.test_case "figure 7 soundness" `Quick test_partition_soundness;
         Alcotest.test_case "agreement across engines" `Slow
           test_partition_agreement_across_engines;
         Alcotest.test_case "cut mining" `Quick test_mine_cuts;
         Alcotest.test_case "free_cuts contract" `Quick test_free_cuts_contract;
         Alcotest.test_case "cut validation" `Quick test_partition_cut_validation ]);
      ("spec inference",
       [ Alcotest.test_case "matches archetypes" `Quick
           test_spec_infer_matches_archetypes;
         Alcotest.test_case "errors" `Quick test_spec_infer_errors;
         Alcotest.test_case "inferred properties verify" `Quick
           test_spec_infer_properties_verify ]);
      ("ecc",
       [ Alcotest.test_case "scheme sizing" `Quick test_ecc_scheme;
         QCheck_alcotest.to_alcotest prop_ecc_roundtrip;
         QCheck_alcotest.to_alcotest prop_ecc_corrects_single;
         QCheck_alcotest.to_alcotest prop_ecc_detects_double;
         QCheck_alcotest.to_alcotest prop_ecc_circuit_matches_reference;
         Alcotest.test_case "SECDED register proves" `Slow
           test_ecc_reg_properties_prove ]) ]
