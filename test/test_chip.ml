(* Synthetic chip generation: structural fidelity to Table 2, archetype
   behavior, bug seeding, and the lint-clean / elaborable invariants. *)

module G = Chip.Generator
module M = Rtl.Mdl

let chip = lazy (G.generate ())
let clean_chip = lazy (G.generate ~with_bugs:false ())

let test_table2_structure () =
  let t = Lazy.force chip in
  let p0, p1, p2, p3 = G.total_counts t in
  Alcotest.(check int) "P0 total" 1306 p0;
  Alcotest.(check int) "P1 total" 200 p1;
  Alcotest.(check int) "P2 total" 520 p2;
  Alcotest.(check int) "P3 total" 21 p3;
  Alcotest.(check int) "grand total" 2047 (p0 + p1 + p2 + p3);
  List.iter
    (fun (c : G.category) ->
      Alcotest.(check int)
        ("category " ^ c.G.cat_name ^ " submodules")
        c.G.expected.G.sub (List.length c.G.units))
    t.G.categories

let test_per_category_counts () =
  let t = Lazy.force chip in
  List.iter
    (fun (c : G.category) ->
      let sums =
        List.fold_left
          (fun (a, b, cc, d) (u : G.unit_) ->
            let p0, p1, p2, p3 =
              Verifiable.Propgen.counts u.G.info u.G.spec
            in
            (a + p0, b + p1, cc + p2, d + p3))
          (0, 0, 0, 0) c.G.units
      in
      let s0, s1, s2, s3 = sums in
      Alcotest.(check int) (c.G.cat_name ^ " P0") c.G.expected.G.p0 s0;
      Alcotest.(check int) (c.G.cat_name ^ " P1") c.G.expected.G.p1 s1;
      Alcotest.(check int) (c.G.cat_name ^ " P2") c.G.expected.G.p2 s2;
      Alcotest.(check int) (c.G.cat_name ^ " P3") c.G.expected.G.p3 s3)
    t.G.categories

let test_design_clean () =
  let t = Lazy.force chip in
  Alcotest.(check bool) "verifiable design closed" true
    (Rtl.Design.check_closed t.G.design = Ok ());
  Alcotest.(check bool) "base design closed" true
    (Rtl.Design.check_closed t.G.base_design = Ok ());
  Alcotest.(check int) "verifiable design lint-clean" 0
    (List.length (Rtl.Check.check_design t.G.design));
  Alcotest.(check int) "base design lint-clean" 0
    (List.length (Rtl.Check.check_design t.G.base_design))

let test_chip_elaborates () =
  let t = Lazy.force chip in
  let nl = Rtl.Elaborate.run t.G.design ~top:t.G.chip_top in
  Alcotest.(check bool) "flat netlist valid" true
    (Rtl.Netlist.validate nl = Ok ())

let test_bug_placement () =
  let t = Lazy.force chip in
  List.iter
    (fun bug ->
      let cat, u = G.find_unit t bug in
      Alcotest.(check bool)
        (Chip.Bugs.name bug ^ " placed")
        true
        (u.G.leaf.Chip.Archetype.bug = Some bug);
      let expected_cat =
        match bug with
        | Chip.Bugs.B0 | Chip.Bugs.B1 | Chip.Bugs.B2 -> "A"
        | Chip.Bugs.B3 -> "C"
        | Chip.Bugs.B4 -> "D"
        | Chip.Bugs.B5 | Chip.Bugs.B6 -> "E"
      in
      Alcotest.(check string) (Chip.Bugs.name bug ^ " category") expected_cat
        cat.G.cat_name)
    Chip.Bugs.all;
  let clean = Lazy.force clean_chip in
  Alcotest.(check bool) "clean chip has no bugs" true
    (match G.find_unit clean Chip.Bugs.B0 with
     | _ -> false
     | exception Not_found -> true)

let test_bug_counts_per_category () =
  let t = Lazy.force chip in
  List.iter
    (fun (c : G.category) ->
      let seeded =
        List.length
          (List.filter (fun (u : G.unit_) -> u.G.leaf.Chip.Archetype.bug <> None)
             c.G.units)
      in
      Alcotest.(check int)
        ("bugs seeded in " ^ c.G.cat_name)
        c.G.expected.G.bugs seeded)
    t.G.categories

let test_chip_scale () =
  let t = Lazy.force chip in
  let gates = Synth.Area.gates_estimate t.G.design ~root:t.G.chip_top in
  (* Table 1: 3.5M gates, within 5% *)
  Alcotest.(check bool) "about 3.5M gates" true
    (abs (gates - 3_500_000) < 175_000)

let test_area_increase_shape () =
  let t = Lazy.force chip in
  let row name =
    let c = List.find (fun (c : G.category) -> c.G.cat_name = name) t.G.categories in
    let ver = Synth.Area.hierarchy_area t.G.design ~root:c.G.top in
    let base = Synth.Area.hierarchy_area t.G.base_design ~root:c.G.top in
    Synth.Area.increase_percent ~base ~with_feature:ver
  in
  (* Table 4: A 1.4%, B 0.4%, D 0.2% — allow 0.25 points of slack *)
  Alcotest.(check bool) "A near 1.4%" true (abs_float (row "A" -. 1.4) < 0.25);
  Alcotest.(check bool) "B near 0.4%" true (abs_float (row "B" -. 0.4) < 0.25);
  Alcotest.(check bool) "D near 0.2%" true (abs_float (row "D" -. 0.2) < 0.25)

(* archetype-level behavior *)

let elaborated m = Rtl.Elaborate.run (Rtl.Design.of_modules [ m ]) ~top:m.M.name

let test_clean_archetypes_quiet () =
  (* every bug-free archetype keeps HE low under legal stimulus *)
  let archetypes =
    [ Chip.Archetype.fsm_ctrl ~name:"t_fsm" ();
      Chip.Archetype.counter ~name:"t_cnt" ();
      Chip.Archetype.csr ~name:"t_csr" ();
      Chip.Archetype.macro_if ~name:"t_mif" ();
      Chip.Archetype.datapath ~name:"t_alu" ();
      Chip.Archetype.decoder ~name:"t_dec" ();
      Chip.Archetype.merge ~name:"t_mrg" ();
      Chip.Archetype.filler ~name:"t_fil" ~n_fsm:1 ~n_cnt:1 ~n_dp:1
        ~n_parity_in:2 ~n_parity_out:2 ~he_bits:2 ~n_extra:1 ]
  in
  List.iter
    (fun leaf ->
      let info = Verifiable.Transform.apply leaf.Chip.Archetype.mdl in
      let nl = elaborated info.Verifiable.Transform.mdl in
      let sim = Sim.Simulator.create nl in
      let profile =
        Sim.Stimulus.legal_profile
          ~parity_inputs:leaf.Chip.Archetype.parity_inputs
          ~overrides:leaf.Chip.Archetype.sim_overrides nl
      in
      let st = Random.State.make [| 21 |] in
      Sim.Simulator.reset sim;
      for _ = 1 to 500 do
        Sim.Simulator.drive_all sim (Sim.Stimulus.draw profile st);
        Sim.Simulator.settle sim;
        Alcotest.(check bool)
          (leaf.Chip.Archetype.mdl.M.name ^ " HE quiet")
          true
          (Bitvec.is_zero (Sim.Simulator.peek sim leaf.Chip.Archetype.he));
        Sim.Simulator.clock sim
      done)
    archetypes

let test_injection_reports () =
  (* corrupting any entity through the injection port raises HE next cycle *)
  let leaf = Chip.Archetype.counter ~name:"inj_cnt" () in
  let info = Verifiable.Transform.apply leaf.Chip.Archetype.mdl in
  let nl = elaborated info.Verifiable.Transform.mdl in
  let sim = Sim.Simulator.create nl in
  Sim.Simulator.reset sim;
  (* inject an even-parity (illegal) value *)
  Sim.Simulator.cycle sim
    [ ("EN", Bitvec.of_int ~width:1 0); ("LOAD", Bitvec.of_int ~width:1 0);
      ("LOAD_VAL", Bitvec.of_string "10000");
      (info.Verifiable.Transform.ec_port, Bitvec.of_int ~width:1 1);
      (info.Verifiable.Transform.ed_port, Bitvec.of_string "00011") ];
  Sim.Simulator.drive_all sim
    [ (info.Verifiable.Transform.ec_port, Bitvec.of_int ~width:1 0) ];
  Sim.Simulator.settle sim;
  Alcotest.(check bool) "HE fired after injection" true
    (not (Bitvec.is_zero (Sim.Simulator.peek sim "HE")))

let test_filler_validation () =
  Alcotest.(check bool) "needs entity" true
    (match
       Chip.Archetype.filler ~name:"f0" ~n_fsm:0 ~n_cnt:0 ~n_dp:0
         ~n_parity_in:1 ~n_parity_out:1 ~he_bits:1 ~n_extra:0
     with
     | _ -> false
     | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "extras need fsm" true
    (match
       Chip.Archetype.filler ~name:"f1" ~n_fsm:0 ~n_cnt:1 ~n_dp:0
         ~n_parity_in:0 ~n_parity_out:1 ~he_bits:1 ~n_extra:1
     with
     | _ -> false
     | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "dp needs input" true
    (match
       Chip.Archetype.filler ~name:"f2" ~n_fsm:0 ~n_cnt:0 ~n_dp:1
         ~n_parity_in:0 ~n_parity_out:1 ~he_bits:1 ~n_extra:0
     with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_bug_descriptions () =
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Chip.Bugs.name b ^ " described")
        true
        (String.length (Chip.Bugs.describe b) > 20))
    Chip.Bugs.all;
  Alcotest.(check int) "seven bugs" 7 (List.length Chip.Bugs.all)


(* ---- FIFO archetype ---- *)

let test_fifo_behaves_like_queue () =
  let leaf = Chip.Archetype.fifo ~name:"t_fifo" () in
  let nl = elaborated leaf.Chip.Archetype.mdl in
  let sim = Sim.Simulator.create nl in
  Sim.Simulator.reset sim;
  let model = Queue.create () in
  let st = Random.State.make [| 2025 |] in
  for _ = 1 to 500 do
    let push = Random.State.bool st in
    let pop = Random.State.bool st in
    let din = Sim.Stimulus.odd_parity 5 st in
    (* sample flags before the edge to know what the DUT will accept *)
    Sim.Simulator.drive_all sim
      [ ("PUSH", Bitvec.of_bool push); ("POP", Bitvec.of_bool pop);
        ("DIN", din) ];
    Sim.Simulator.settle sim;
    let full = Sim.Simulator.peek_bit sim "FULL" in
    let empty = Sim.Simulator.peek_bit sim "EMPTY" in
    Alcotest.(check bool) "flags vs model" (Queue.length model = 4) full;
    Alcotest.(check bool) "empty vs model" (Queue.length model = 0) empty;
    if (not empty) then
      Alcotest.(check bool) "head matches model" true
        (Bitvec.equal (Sim.Simulator.peek sim "DOUT") (Queue.peek model));
    if push && not full then Queue.add din model;
    if pop && not empty then ignore (Queue.pop model);
    Sim.Simulator.clock sim;
    Alcotest.(check bool) "HE quiet" true
      (Bitvec.is_zero (Sim.Simulator.peek sim "HE"))
  done

let test_fifo_properties_prove () =
  let leaf = Chip.Archetype.fifo ~name:"t_fifo2" () in
  let info = Verifiable.Transform.apply leaf.Chip.Archetype.mdl in
  Alcotest.(check int) "seven entities" 7
    (List.length info.Verifiable.Transform.entities);
  let spec =
    { Verifiable.Propgen.he = leaf.Chip.Archetype.he;
      he_map = leaf.Chip.Archetype.he_map;
      parity_inputs = leaf.Chip.Archetype.parity_inputs;
      parity_outputs = leaf.Chip.Archetype.parity_outputs;
      extra = leaf.Chip.Archetype.extra_props }
  in
  let p0, p1, p2, p3 = Verifiable.Propgen.counts info spec in
  Alcotest.(check (list int)) "property counts" [ 8; 3; 1; 4 ]
    [ p0; p1; p2; p3 ];
  List.iter
    (fun (_, vunit) ->
      List.iter
        (fun (name, (o : Mc.Engine.outcome)) ->
          match o.Mc.Engine.verdict with
          | Mc.Engine.Proved | Mc.Engine.Proved_bounded _ -> ()
          | Mc.Engine.Failed _ -> Alcotest.failf "%s failed" name
          | Mc.Engine.Resource_out msg ->
            Alcotest.failf "%s: resource out: %s" name msg
          | Mc.Engine.Error msg -> Alcotest.failf "%s: error: %s" name msg)
        (Mc.Engine.check_vunit info.Verifiable.Transform.mdl vunit))
    (Verifiable.Propgen.all info spec)

let test_fifo_inferred_spec () =
  let leaf = Chip.Archetype.fifo ~name:"t_fifo3" () in
  match Verifiable.Spec_infer.infer leaf.Chip.Archetype.mdl with
  | Error msg -> Alcotest.fail msg
  | Ok inferred ->
    Alcotest.(check (slist string compare)) "parity inputs" [ "DIN" ]
      inferred.Verifiable.Propgen.parity_inputs;
    List.iter
      (fun (src, bit) ->
        Alcotest.(check (option int)) ("he_map " ^ src) (Some bit)
          (List.assoc_opt src inferred.Verifiable.Propgen.he_map))
      leaf.Chip.Archetype.he_map

let () =
  Alcotest.run "chip"
    [ ("structure",
       [ Alcotest.test_case "table 2 totals" `Quick test_table2_structure;
         Alcotest.test_case "per-category counts" `Quick test_per_category_counts;
         Alcotest.test_case "lint clean" `Quick test_design_clean;
         Alcotest.test_case "elaborates" `Slow test_chip_elaborates;
         Alcotest.test_case "bug placement" `Quick test_bug_placement;
         Alcotest.test_case "bug counts" `Quick test_bug_counts_per_category;
         Alcotest.test_case "chip scale" `Quick test_chip_scale;
         Alcotest.test_case "area increase shape" `Quick test_area_increase_shape ]);
      ("fifo",
       [ Alcotest.test_case "queue semantics" `Quick test_fifo_behaves_like_queue;
         Alcotest.test_case "stereotype properties prove" `Slow
           test_fifo_properties_prove;
         Alcotest.test_case "spec inference" `Quick test_fifo_inferred_spec ]);
      ("archetypes",
       [ Alcotest.test_case "clean archetypes quiet" `Quick
           test_clean_archetypes_quiet;
         Alcotest.test_case "injection reports" `Quick test_injection_reports;
         Alcotest.test_case "filler validation" `Quick test_filler_validation;
         Alcotest.test_case "bug catalogue" `Quick test_bug_descriptions ]) ]
