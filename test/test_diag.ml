(* Counterexample diagnosis: simulator cross-validation, delta-debug
   minimization, fault-cone analysis, JSON round-trip and the campaign-level
   drill-down artifacts. *)

module G = Chip.Generator
module C = Core.Campaign
module D = Diag.Diagnosis

let chip = lazy (G.generate ())

(* every seeded-bug unit of every category: exercises diagnosis across all
   property classes (P0 via C, P1/P2 via A/D/E) at a fraction of the full
   2047-obligation campaign *)
let bug_chip () =
  let t = Lazy.force chip in
  let categories =
    List.filter_map
      (fun (c : G.category) ->
        let specials =
          List.filter
            (fun (u : G.unit_) -> u.G.leaf.Chip.Archetype.bug <> None)
            c.G.units
        in
        if specials = [] then None
        else
          Some
            { c with
              G.units = specials;
              G.expected =
                { c.G.expected with G.sub = List.length specials } })
      t.G.categories
  in
  { t with G.categories }

let diagnosed = lazy (
  let mini = bug_chip () in
  let result = C.run mini in
  (mini, result, D.diagnose_campaign mini result))

(* ---- vcd identifier hardening ---- *)

let test_vcd_id_unique () =
  let seen = Hashtbl.create 997 in
  for i = 0 to 500 do
    let id = Mc.Trace.vcd_id i in
    Alcotest.(check bool)
      (Printf.sprintf "id %d printable" i)
      true
      (String.for_all (fun c -> Char.code c >= 33 && Char.code c <= 126) id);
    (match Hashtbl.find_opt seen id with
     | Some j -> Alcotest.failf "vcd_id collision: %d and %d -> %s" j i id
     | None -> Hashtbl.add seen id i);
    Alcotest.(check string)
      (Printf.sprintf "Sim.Vcd agrees at %d" i)
      id (Sim.Vcd.id_of_index i)
  done;
  Alcotest.(check string) "index 0" "!" (Mc.Trace.vcd_id 0);
  Alcotest.(check string) "index 93" "~" (Mc.Trace.vcd_id 93);
  Alcotest.(check string) "index 94 rolls to two chars" "!!"
    (Mc.Trace.vcd_id 94);
  Alcotest.(check bool) "negative index rejected" true
    (match Mc.Trace.vcd_id (-1) with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* ---- minimization against a synthetic oracle ---- *)

let test_minimize_synthetic () =
  let bv n v = Bitvec.of_int ~width:n v in
  (* fails iff some cycle drives x with bit 0 set *)
  let oracle stim =
    List.exists
      (fun cycle ->
        match List.assoc_opt "x" cycle with
        | Some v -> Bitvec.get v 0
        | None -> false)
      stim
  in
  let noise j = [ ("x", bv 4 (if j = 5 then 0xF else 0xE)); ("y", bv 8 j) ] in
  let stimulus = List.init 8 noise in
  Alcotest.(check bool) "original fails" true (oracle stimulus);
  let min_stim, stats = Diag.Minimize.minimize ~oracle stimulus in
  Alcotest.(check bool) "minimized still fails" true (oracle min_stim);
  Alcotest.(check int) "one cycle survives" 1 (List.length min_stim);
  Alcotest.(check int) "one care bit survives" 1
    (Diag.Minimize.care_bits min_stim);
  Alcotest.(check int) "seven cycles removed" 7 stats.Diag.Minimize.cycles_removed

(* ---- campaign-level diagnosis ---- *)

let test_all_failures_confirmed () =
  let mini, result, ds = Lazy.force diagnosed in
  let failed = C.failed_results result in
  Alcotest.(check bool) "bug chip produces failures" true (failed <> []);
  Alcotest.(check int) "one diagnosis per falsified obligation"
    (List.length failed) (List.length ds);
  ignore mini;
  List.iter
    (fun (d : D.diagnosed) ->
      let dg = d.D.artifacts.D.diag in
      let name = dg.D.module_name ^ "." ^ dg.D.prop_name in
      (match dg.D.validation.D.status with
       | `Confirmed -> ()
       | `Not_confirmed reason ->
         Alcotest.failf "%s not confirmed by replay: %s" name reason);
      Alcotest.(check bool) (name ^ " minimized reproduces") true
        dg.D.validation.D.minimized_reproduces;
      Alcotest.(check bool) (name ^ " minimization never grows") true
        (dg.D.minimized_cycles <= dg.D.original_cycles
        && dg.D.minimized_care_bits <= dg.D.original_care_bits);
      Alcotest.(check bool) (name ^ " fail cycle recorded") true
        (dg.D.validation.D.fail_cycle <> None);
      (* a confirmed failing replay always yields a per-cycle cone *)
      Alcotest.(check int) (name ^ " cone covers the minimized trace")
        dg.D.minimized_cycles
        (List.length dg.D.cone))
    ds

let test_json_roundtrip () =
  let _, _, ds = Lazy.force diagnosed in
  List.iter
    (fun (d : D.diagnosed) ->
      let dg = d.D.artifacts.D.diag in
      let s = Obs.Json.to_string (D.to_json dg) in
      match Obs.Json.parse s with
      | Error m -> Alcotest.failf "diag JSON does not parse: %s" m
      | Ok j ->
        (match D.of_json j with
         | Error m -> Alcotest.failf "diag JSON does not decode: %s" m
         | Ok dg' ->
           Alcotest.(check string)
             (dg.D.module_name ^ "." ^ dg.D.prop_name ^ " round-trips")
             s
             (Obs.Json.to_string (D.to_json dg'))))
    ds

let test_schema_fields () =
  let _, _, ds = Lazy.force diagnosed in
  let d = List.hd ds in
  let j = D.to_json d.D.artifacts.D.diag in
  let str name =
    Option.bind (Obs.Json.member name j) Obs.Json.to_str
  in
  Alcotest.(check (option string)) "schema tag" (Some "dicheck-diag-v1")
    (str "schema");
  Alcotest.(check (option string)) "verdict" (Some "falsified") (str "verdict");
  List.iter
    (fun f ->
      Alcotest.(check bool) ("field " ^ f) true
        (Obs.Json.member f j <> None))
    [ "obligation"; "trace"; "validation"; "cone"; "explanation";
      "minimized_stimulus"; "golden_failed"; "he_signal" ]

let test_pool_matches_sequential () =
  let mini, result, _ = Lazy.force diagnosed in
  let render ds =
    List.map
      (fun (d : D.diagnosed) -> Obs.Json.to_string (D.to_json d.D.artifacts.D.diag))
      ds
  in
  let seq = render (D.diagnose_campaign ~jobs:1 mini result) in
  let par = render (D.diagnose_campaign ~jobs:4 mini result) in
  Alcotest.(check (list string)) "diagnosis is schedule-independent" seq par

let test_annotated_vcd () =
  let _, _, ds = Lazy.force diagnosed in
  List.iter
    (fun (d : D.diagnosed) ->
      let dg = d.D.artifacts.D.diag in
      let name = dg.D.module_name ^ "." ^ dg.D.prop_name in
      let vcd = D.to_vcd d.D.artifacts in
      Alcotest.(check bool) (name ^ " vcd non-empty") true
        (String.length vcd > 0);
      let contains needle =
        let n = String.length needle and h = String.length vcd in
        let rec go i = i + n <= h && (String.sub vcd i n = needle || go (i + 1)) in
        go 0
      in
      (* the replayed monitor verdict net must be dumped — it is exactly what
         the engine model proves about, and COI kept it out of the trace *)
      Alcotest.(check bool) (name ^ " dumps the monitor net") true
        (contains "mon_ok");
      (match dg.D.he_signal with
       | Some he ->
         Alcotest.(check bool) (name ^ " dumps the HE report bus") true
           (contains (" " ^ he ^ " $end"))
       | None -> ());
      (* one timestep per minimized cycle *)
      let timesteps =
        String.split_on_char '\n' vcd
        |> List.filter (fun l -> String.length l > 1 && l.[0] = '#')
      in
      Alcotest.(check int) (name ^ " one timestep per cycle")
        dg.D.minimized_cycles (List.length timesteps))
    ds

let test_html_report () =
  let _, _, ds = Lazy.force diagnosed in
  let entries =
    List.map
      (fun (d : D.diagnosed) ->
        { Diag.Report_html.diag = d.D.artifacts.D.diag; vcd = None })
      ds
  in
  let html = Diag.Report_html.render entries in
  Alcotest.(check bool) "html non-empty" true (String.length html > 1000);
  let count needle =
    let n = String.length needle and h = String.length html in
    let rec go i acc =
      if i + n > h then acc
      else if String.sub html i n = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one summary row per failure" (List.length ds)
    (count "failure-row");
  (* adversarial content must come out escaped *)
  let evil =
    { (List.hd ds).D.artifacts.D.diag with
      D.explanation = "<script>alert(1)</script>" }
  in
  let html' =
    Diag.Report_html.render [ { Diag.Report_html.diag = evil; vcd = None } ]
  in
  let contains s needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "script tag escaped" false
    (contains html' "<script>")

let test_replay_telemetry () =
  let mini, result, _ = Lazy.force diagnosed in
  Core.Telemetry.start ();
  let _ = D.diagnose_campaign mini result in
  let report = Core.Telemetry.stop () in
  Alcotest.(check bool) "replays counted" true
    (Obs.Telemetry.counter report "diag.replays" > 0);
  Alcotest.(check bool) "confirmations counted" true
    (Obs.Telemetry.counter report "diag.confirmed" > 0);
  Alcotest.(check bool) "obligation spans recorded" true
    (List.exists
       (fun (s : Obs.Telemetry.span) ->
         s.Obs.Telemetry.cat = "diag"
         && s.Obs.Telemetry.name = "diag.obligation")
       report.Obs.Telemetry.spans)

let test_json_to_bool () =
  Alcotest.(check (option bool)) "bool true" (Some true)
    (Obs.Json.to_bool (Obs.Json.Bool true));
  Alcotest.(check (option bool)) "int is not bool" None
    (Obs.Json.to_bool (Obs.Json.Int 1))

let () =
  Alcotest.run "diag"
    [ ("vcd",
       [ Alcotest.test_case "identifier codes stay unique past 94" `Quick
           test_vcd_id_unique ]);
      ("minimize",
       [ Alcotest.test_case "delta-debug against synthetic oracle" `Quick
           test_minimize_synthetic ]);
      ("campaign",
       [ Alcotest.test_case "every falsified obligation confirmed" `Slow
           test_all_failures_confirmed;
         Alcotest.test_case "diag JSON round-trips" `Slow test_json_roundtrip;
         Alcotest.test_case "schema fields present" `Slow test_schema_fields;
         Alcotest.test_case "pool matches sequential" `Slow
           test_pool_matches_sequential;
         Alcotest.test_case "annotated vcd" `Slow test_annotated_vcd;
         Alcotest.test_case "html report" `Slow test_html_report;
         Alcotest.test_case "telemetry spans and counters" `Slow
           test_replay_telemetry ]);
      ("json",
       [ Alcotest.test_case "to_bool" `Quick test_json_to_bool ]) ]
