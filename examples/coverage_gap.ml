(* Why the paper carves data integrity out for formal verification.

   The introduction argues the ~1300 integrity checkpoints are "hard to
   validate thoroughly in conventional logic simulation". This example
   quantifies that on one leaf module: random simulation achieves high
   toggle coverage on the datapath quickly, yet the integrity *checkers*
   (the HE sources — the conditions the stereotype properties quantify
   over) are exercised only when errors are injected, and even directed
   injection leaves the cross-product of (entity x corruption value) far
   from exhausted — while the model checker covers it by construction.

   Run with: dune exec examples/coverage_gap.exe *)

let () =
  let leaf = Chip.Archetype.datapath ~name:"cov_alu" () in
  let info = Verifiable.Transform.apply leaf.Chip.Archetype.mdl in
  let mdl = info.Verifiable.Transform.mdl in
  let nl =
    Rtl.Elaborate.run (Rtl.Design.of_modules [ mdl ]) ~top:mdl.Rtl.Mdl.name
  in
  let sim = Sim.Simulator.create nl in

  let run_with profile label cycles =
    Sim.Simulator.reset sim;
    let cov =
      Sim.Coverage.create sim ~signals:[ "r_q"; "R"; "HE"; "A"; "B"; "OP" ]
    in
    let st = Random.State.make [| 2024 |] in
    for _ = 1 to cycles do
      Sim.Simulator.drive_all sim (Sim.Stimulus.draw profile st);
      Sim.Simulator.settle sim;
      Sim.Coverage.sample cov;
      Sim.Simulator.clock sim
    done;
    Printf.printf "\n--- %s (%d cycles) ---\n" label cycles;
    Format.printf "%a" Sim.Coverage.pp cov;
    cov
  in

  (* normal operation: integrity holds, so HE never moves *)
  let legal =
    Sim.Stimulus.legal_profile ~parity_inputs:leaf.Chip.Archetype.parity_inputs
      nl
  in
  let cov_legal = run_with legal "legal random stimulus" 2_000 in
  Printf.printf
    "=> the HE checkers were never exercised: %.0f%% of HE's value space seen\n"
    (100.0 *. Sim.Coverage.value_coverage cov_legal "HE");

  (* directed error injection: better, but the checker cross-product is huge *)
  let inject =
    Sim.Stimulus.injection_profile
      ~parity_inputs:leaf.Chip.Archetype.parity_inputs
      ~inject:
        [ (info.Verifiable.Transform.ec_port, Sim.Stimulus.weighted_bool 0.3);
          (info.Verifiable.Transform.ed_port, Sim.Stimulus.uniform 9) ]
      nl
  in
  let cov_inject = run_with inject "directed error injection" 2_000 in
  Printf.printf "=> with injection, HE value coverage rises to %.0f%%\n"
    (100.0 *. Sim.Coverage.value_coverage cov_inject "HE");
  Printf.printf
    "=> but r_q visited %.1f%% of its corruption space after 2000 cycles\n"
    (100.0 *. Sim.Coverage.value_coverage cov_inject "r_q");

  (* formal: the three stereotype property sets cover the checkpoint space
     exhaustively, in milliseconds *)
  Printf.printf "\n--- formal verification of the same module ---\n";
  let spec =
    match Verifiable.Spec_infer.infer leaf.Chip.Archetype.mdl with
    | Ok spec -> spec
    | Error msg -> failwith msg
  in
  let t0 = Unix.gettimeofday () in
  let total = ref 0 in
  List.iter
    (fun (_, vunit) ->
      List.iter
        (fun (name, (o : Mc.Engine.outcome)) ->
          incr total;
          match o.Mc.Engine.verdict with
          | Mc.Engine.Proved -> ()
          | Mc.Engine.Proved_bounded _ | Mc.Engine.Failed _
          | Mc.Engine.Resource_out _ | Mc.Engine.Error _ ->
            Printf.printf "unexpected verdict on %s\n" name)
        (Mc.Engine.check_vunit mdl vunit))
    (Verifiable.Propgen.all info spec);
  Printf.printf
    "%d properties proved exhaustively (all 2^9 corruptions of every entity, \
     all 2^9 input codewords) in %.2fs\n"
    !total
    (Unix.gettimeofday () -. t0)
