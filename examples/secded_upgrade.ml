(* Beyond parity: a formally verified SECDED register.

   The paper's chip protects every register with odd parity — detection
   only. This example shows the methodology extended to single-error-
   correcting, double-error-detecting Hamming protection: the same
   Verifiable-RTL idea (an error-injection path plus golden shadow state for
   the verifier) with stronger properties — a corrupted bit is *corrected*,
   not just reported.

   Run with: dune exec examples/secded_upgrade.exe *)

let () =
  let data_width = 4 in
  let s = Verifiable.Ecc.scheme ~data_width in
  Printf.printf
    "SECDED scheme: %d payload bits -> %d check bits + overall parity = %d-bit codeword\n\n"
    data_width s.Verifiable.Ecc.check_bits s.Verifiable.Ecc.code_width;

  (* the codec itself, on concrete values *)
  let payload = Bitvec.of_string "1011" in
  let code = Verifiable.Ecc.encode_bv s payload in
  Printf.printf "encode %s -> %s\n" (Bitvec.to_string payload)
    (Bitvec.to_string code);
  let show label word =
    let d = Verifiable.Ecc.decode_bv s word in
    Printf.printf "%-28s -> payload %s, corrected=%b, uncorrectable=%b\n" label
      (Bitvec.to_string d.Verifiable.Ecc.payload)
      d.Verifiable.Ecc.corrected d.Verifiable.Ecc.uncorrectable
  in
  show "clean codeword" code;
  show "bit 2 flipped" (Bitvec.corrupt_bit code 2);
  show "check bit flipped" (Bitvec.corrupt_bit code 5);
  show "two bits flipped"
    (Bitvec.corrupt_bit (Bitvec.corrupt_bit code 1) 6);

  (* the protected register, with its correctness properties model-checked *)
  Printf.printf "\nSECDED register RTL:\n";
  let mdl, props = Chip.Archetype.ecc_reg ~name:"secded_reg" () in
  print_string (Rtl.Verilog.module_to_string mdl);
  Printf.printf "\nmodel checking:\n";
  List.iter
    (fun (name, assert_) ->
      let o = Mc.Engine.check_property mdl ~assert_ ~assumes:[] in
      Printf.printf "  %-18s %s (%s, %.3fs)\n" name
        (match o.Mc.Engine.verdict with
         | Mc.Engine.Proved -> "proved"
         | Mc.Engine.Proved_bounded d -> Printf.sprintf "bounded %d" d
         | Mc.Engine.Failed _ -> "FAILED"
         | Mc.Engine.Resource_out m -> m
         | Mc.Engine.Error m -> "engine error: " ^ m)
        o.Mc.Engine.engine_used o.Mc.Engine.time_s)
    props;
  Printf.printf
    "\nEvery single-bit corruption of the stored codeword is provably\n\
     corrected (pCorrectSingle) and flagged (pSingleRaisesCE); every\n\
     double-bit corruption is provably detected (pDoubleRaisesUE).\n"
