(* A RAS-grade FSM controller, by hand.

   This example builds the paper's Figure 1 "typical leaf module" directly
   against the public RTL API (rather than using a chip archetype): a
   parity-protected state machine with illegal-state detection, run through
   the Verifiable-RTL transform and all four engine families, then simulated
   with error injection to watch the hardware error report fire.

   Run with: dune exec examples/ras_fsm.exe *)

module E = Rtl.Expr
module M = Rtl.Mdl
module P = Verifiable.Parity

let section title = Printf.printf "\n=== %s ===\n" title

(* request/grant arbiter FSM: IDLE -> REQ -> GRANT -> DONE -> IDLE, encoded
   in 2 bits + an odd-parity bit *)
let arbiter () =
  let m = M.create "arbiter" in
  let m = M.add_input m "REQ" 1 in
  let m = M.add_input m "ACK" 1 in
  let m = M.add_output m "HE" 1 in
  let m = M.add_output m "GRANT" 1 in
  let m = M.add_output m "STATE" 3 in
  let state = E.slice (E.var "st_q") ~hi:1 ~lo:0 in
  let is s = E.(state ==: of_int ~width:2 s) in
  let next_state =
    E.mux (is 0)
      (E.mux (E.var "REQ") (E.of_int ~width:2 1) (E.of_int ~width:2 0))
      (E.mux (is 1) (E.of_int ~width:2 2)
         (E.mux (is 2)
            (E.mux (E.var "ACK") (E.of_int ~width:2 3) (E.of_int ~width:2 2))
            (E.of_int ~width:2 0)))
  in
  let m =
    M.add_reg ~cls:M.Fsm ~parity_protected:true
      ~reset:(Bitvec.of_string "100") m "st_q" 3 (P.encode next_state)
  in
  let m = M.add_assign m "HE" (P.violated (E.var "st_q")) in
  let m = M.add_assign m "GRANT" (is 2) in
  M.add_assign m "STATE" (E.var "st_q")

let () =
  let m = arbiter () in
  section "arbiter RTL";
  print_string (Rtl.Verilog.module_to_string m);

  section "verifiable RTL transform";
  let info = Verifiable.Transform.apply m in
  List.iter
    (fun e -> Format.printf "entity: %a@." Verifiable.Entity.pp e)
    info.Verifiable.Transform.entities;
  print_string (Rtl.Verilog.module_to_string info.Verifiable.Transform.mdl);

  section "stereotype properties";
  let spec =
    { Verifiable.Propgen.he = "HE"; he_map = [ ("st_q", 0) ];
      parity_inputs = []; parity_outputs = [ "STATE" ];
      extra =
        [ ( "pNoIllegalState",
            (* 2-bit encoding, all four codes legal -> trivially invariant;
               kept as the paper's P3 example of "other properties" *)
            Psl.Ast.Always
              (Psl.Ast.Bool
                 E.(slice (var "st_q") ~hi:1 ~lo:0
                    <: of_int ~width:2 3 |: (slice (var "st_q") ~hi:1 ~lo:0
                                             ==: of_int ~width:2 3))) ) ] }
  in
  List.iter
    (fun (cls, v) ->
      Printf.printf "-- %s --\n%s"
        (Verifiable.Propgen.class_name cls)
        (Psl.Print.vunit_to_string v))
    (Verifiable.Propgen.all info spec);

  section "model checking with every engine";
  let strategies =
    [ ("bdd-forward", Mc.Engine.Bdd_forward);
      ("bdd-backward", Mc.Engine.Bdd_backward);
      ("bdd-combined", Mc.Engine.Bdd_combined); ("pobdd", Mc.Engine.Pobdd);
      ("bmc", Mc.Engine.Bmc) ]
  in
  List.iter
    (fun (cls, vunit) ->
      List.iter
        (fun (prop, _) ->
          List.iter
            (fun (sname, strategy) ->
              let assert_ = Psl.Ast.property vunit prop in
              let assumes = List.map snd (Psl.Ast.assumes vunit) in
              let o =
                Mc.Engine.check_property ~strategy
                  info.Verifiable.Transform.mdl ~assert_ ~assumes
              in
              let verdict =
                match o.Mc.Engine.verdict with
                | Mc.Engine.Proved -> "proved"
                | Mc.Engine.Proved_bounded d ->
                  Printf.sprintf "no violation to depth %d" d
                | Mc.Engine.Failed _ -> "FAILED"
                | Mc.Engine.Resource_out r -> "resource out: " ^ r
                | Mc.Engine.Error r -> "engine error: " ^ r
              in
              Printf.printf "%-24s %-13s %-30s %s\n" prop
                (Verifiable.Propgen.class_name cls
                 |> fun s -> String.sub s 0 (min 13 (String.length s)))
                verdict sname)
            strategies)
        (Psl.Ast.asserts vunit))
    (Verifiable.Propgen.all info spec);

  section "error injection in simulation";
  let nl =
    Rtl.Elaborate.run
      (Rtl.Design.of_modules [ info.Verifiable.Transform.mdl ])
      ~top:"arbiter"
  in
  let sim = Sim.Simulator.create nl in
  Sim.Simulator.reset sim;
  let vcd = Sim.Vcd.create sim ~signals:[ "st_q"; "HE"; "GRANT" ] in
  (* two clean handshakes, then inject an even-parity state *)
  let drive ?(inj = false) req ack =
    Sim.Simulator.drive_all sim
      [ ("REQ", Bitvec.of_bool req); ("ACK", Bitvec.of_bool ack);
        (info.Verifiable.Transform.ec_port, Bitvec.of_bool inj);
        (info.Verifiable.Transform.ed_port, Bitvec.of_string "011") ];
    Sim.Simulator.settle sim;
    Sim.Vcd.sample vcd;
    Printf.printf "cycle %2d  state=%s HE=%b GRANT=%b\n"
      (Sim.Simulator.cycle_count sim)
      (Bitvec.to_string (Sim.Simulator.peek sim "st_q"))
      (Sim.Simulator.peek_bit sim "HE")
      (Sim.Simulator.peek_bit sim "GRANT");
    Sim.Simulator.clock sim
  in
  drive true false;
  drive false false;
  drive false true;
  drive ~inj:true false false;  (* corrupt the state register *)
  drive false false;  (* HE must report the corruption here *)
  drive false false;
  Printf.printf "\nVCD trace (first lines):\n";
  let vcd_text = Sim.Vcd.to_string vcd in
  String.split_on_char '\n' vcd_text
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter print_endline
