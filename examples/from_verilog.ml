(* The whole methodology starting from Verilog text.

   A designer hands over a leaf module as (a subset of) Verilog, exactly in
   the style of the paper's Figure 6 — parity-protected state, error
   injection ports, a hardware-error report. This example parses it,
   re-annotates the integrity metadata, infers the data-integrity
   specification automatically, and runs the full verify-release flow.

   Run with: dune exec examples/from_verilog.exe *)

let verilog_source = {|
// a parity-protected mode register, as released by a logic designer
module mode_reg (WE, WDATA, I_ERR_INJ_C, I_ERR_INJ_D, MODE, HE);
  input WE;
  input [4:0] WDATA;          // 4-bit payload + odd parity
  input I_ERR_INJ_C;          // Figure 6: error injection control
  input [4:0] I_ERR_INJ_D;    //           error injection data
  output [4:0] MODE;
  output [1:0] HE;
  reg  [4:0] mode_q;
  reg  wchk_q;
  assign MODE = mode_q;
  assign HE = {wchk_q, ~(^(mode_q))};
  always @(posedge CK or posedge RESET)
    if (RESET) mode_q <= 5'b10000;
    else       mode_q <= (I_ERR_INJ_C ? I_ERR_INJ_D
                          : (WE ? WDATA : mode_q));
  always @(posedge CK or posedge RESET)
    if (RESET) wchk_q <= 1'b0;
    else       wchk_q <= ~(^(WDATA));
endmodule
|}

let () =
  print_string "input Verilog:\n";
  print_string verilog_source;

  let mdl =
    match Rtl.Vparse.parse verilog_source with
    | [ m ] -> m
    | _ -> failwith "expected exactly one module"
    | exception Rtl.Vparse.Error (msg, pos) ->
      failwith (Printf.sprintf "parse error at offset %d: %s" pos msg)
  in
  (* plain Verilog cannot carry the integrity metadata; mark the protected
     register (a designer annotation, e.g. from a pragma) *)
  let mdl =
    Rtl.Mdl.map_regs
      (fun r ->
        if r.Rtl.Mdl.reg_name = "mode_q" then
          { r with Rtl.Mdl.reg_class = Rtl.Mdl.Datapath; parity_protected = true }
        else r)
      mdl
  in

  (* the module already carries its injection ports, so the inferred spec
     applies to it directly; the Verifiable-RTL transform would add a second
     selector, so here we run inference + property generation by hand *)
  print_string "\ninferred integrity specification:\n";
  let spec =
    match Verifiable.Spec_infer.infer mdl with
    | Ok s -> s
    | Error msg -> failwith ("inference failed: " ^ msg)
  in
  Printf.printf "  HE signal:       %s\n" spec.Verifiable.Propgen.he;
  Printf.printf "  parity inputs:   %s\n"
    (String.concat ", " spec.Verifiable.Propgen.parity_inputs);
  Printf.printf "  parity outputs:  %s\n"
    (String.concat ", " spec.Verifiable.Propgen.parity_outputs);
  List.iter
    (fun (src, bit) -> Printf.printf "  checker map:     %s -> HE[%d]\n" src bit)
    spec.Verifiable.Propgen.he_map;

  (* hand-written PSL against the parsed module, in the paper's syntax *)
  let vunits =
    Psl.Parser.vunits_of_string
      {|
  vunit mode_reg_edetect (mode_reg) {
      property pCheck1 = always ((I_ERR_INJ_C & ~(^I_ERR_INJ_D)) -> next HE[0]);
      assert   pCheck1;
      property pCheck2 = always ( ~(^WDATA) -> next HE[1]);
      assert   pCheck2;
  }
  vunit mode_reg_soundness (mode_reg) {
      property pIntegrityI     = always ( ^WDATA );
      assume   pIntegrityI;
      property pNoErrInjection = always ( ~I_ERR_INJ_C );
      assume   pNoErrInjection;
      property pNoError        = never  ( |HE );
      assert   pNoError;
  }
  vunit mode_reg_integrity (mode_reg) {
      property pIntegrityI     = always ( ^WDATA );
      assume   pIntegrityI;
      property pNoErrInjection = always ( ~I_ERR_INJ_C );
      assume   pNoErrInjection;
      property pIntegrityO     = always ( ^MODE );
      assert   pIntegrityO;
  }
|}
  in
  print_string "\nmodel checking the designer's PSL:\n";
  List.iter
    (fun vunit ->
      List.iter
        (fun (name, (o : Mc.Engine.outcome)) ->
          Printf.printf "  %-12s %s (%s, %.3fs)\n" name
            (match o.Mc.Engine.verdict with
             | Mc.Engine.Proved -> "proved"
             | Mc.Engine.Proved_bounded d ->
               Printf.sprintf "no violation up to %d" d
             | Mc.Engine.Failed _ -> "FAILED"
             | Mc.Engine.Resource_out m -> "resource out: " ^ m
             | Mc.Engine.Error m -> "engine error: " ^ m)
            o.Mc.Engine.engine_used o.Mc.Engine.time_s)
        (Mc.Engine.check_vunit mdl vunit))
    vunits
