(* Hybrid verification: why the paper carves data integrity out for formal.

   The address decoder carries the paper's B5 bug: of its 91 valid decode
   cases, one computes the datapath parity with the wrong polarity, and only
   for one sensitizing data value. Conventional random simulation must draw
   that (address, data) pair — a ~1/65536-per-cycle event — while the model
   checker finds it in a couple of reachability steps and returns a two-cycle
   counterexample that replays in the simulator.

   Run with: dune exec examples/hybrid_verification.exe *)

module PG = Verifiable.Propgen

let () =
  let leaf =
    Chip.Archetype.decoder ~name:"dec" ~bug:(Chip.Bugs.B5, 37, 0x5A) ()
  in
  let info = Verifiable.Transform.apply leaf.Chip.Archetype.mdl in
  let spec =
    { PG.he = leaf.Chip.Archetype.he; he_map = leaf.Chip.Archetype.he_map;
      parity_inputs = leaf.Chip.Archetype.parity_inputs;
      parity_outputs = leaf.Chip.Archetype.parity_outputs; extra = [] }
  in
  Printf.printf "bug under test: %s\n\n" (Chip.Bugs.describe Chip.Bugs.B5);

  (* conventional logic simulation, several long runs *)
  Printf.printf "--- random simulation (the conventional flow) ---\n";
  let vunit = PG.integrity_vunit info spec in
  let prop = "pIntegrityO_DOUT" in
  let assert_ = Psl.Ast.property vunit prop in
  let assumes = List.map snd (Psl.Ast.assumes vunit) in
  let inst =
    Psl.Monitor.instrument info.Verifiable.Transform.mdl ~prefix:"mon"
      ~assert_ ~assumes
  in
  let nl =
    Rtl.Elaborate.run
      (Rtl.Design.of_modules [ inst.Psl.Monitor.mdl ])
      ~top:inst.Psl.Monitor.mdl.Rtl.Mdl.name
  in
  let sim = Sim.Simulator.create nl in
  let profile =
    Sim.Stimulus.legal_profile ~parity_inputs:spec.PG.parity_inputs nl
  in
  List.iter
    (fun seed ->
      let t0 = Unix.gettimeofday () in
      let run =
        Sim.Testbench.run_random sim profile ~cycles:20_000 ~seed
          ~watch:[ inst.Psl.Monitor.fail_signal ]
      in
      Printf.printf "seed %3d: %5d cycles, %s (%.2fs)\n" seed
        run.Sim.Testbench.cycles_run
        (match Sim.Testbench.first_fire run inst.Psl.Monitor.fail_signal with
         | Some c -> Printf.sprintf "assertion FIRED at cycle %d" c
         | None -> "bug not found")
        (Unix.gettimeofday () -. t0))
    [ 11; 23; 37; 58; 71 ];

  (* formal verification *)
  Printf.printf "\n--- formal verification (the paper's scope) ---\n";
  let o =
    Mc.Engine.check_property info.Verifiable.Transform.mdl ~assert_ ~assumes
  in
  (match o.Mc.Engine.verdict with
   | Mc.Engine.Failed trace ->
     Printf.printf "%s FAILED in %.3fs (%s); counterexample:\n%s\n" prop
       o.Mc.Engine.time_s o.Mc.Engine.engine_used (Mc.Trace.to_string trace);
     (* replay the counterexample through the simulator *)
     Sim.Simulator.reset sim;
     let fired = ref false in
     List.iter
       (fun inputs ->
         Sim.Simulator.drive_all sim inputs;
         Sim.Simulator.settle sim;
         if Sim.Simulator.peek_bit sim inst.Psl.Monitor.fail_signal then
           fired := true;
         Sim.Simulator.clock sim)
       (Mc.Trace.replay_stimulus trace);
     Printf.printf "replaying the trace in the simulator: assertion fired = %b\n"
       !fired
   | Mc.Engine.Proved | Mc.Engine.Proved_bounded _ | Mc.Engine.Resource_out _
   | Mc.Engine.Error _ ->
     Printf.printf "unexpected verdict\n");

  (* and show the fixed decoder proves *)
  Printf.printf "\n--- after the fix ---\n";
  let fixed = Chip.Archetype.decoder ~name:"dec_fixed" () in
  let info' = Verifiable.Transform.apply fixed.Chip.Archetype.mdl in
  let spec' = { spec with PG.he_map = fixed.Chip.Archetype.he_map } in
  List.iter
    (fun (name, (o : Mc.Engine.outcome)) ->
      Printf.printf "%-24s %s\n" name
        (match o.Mc.Engine.verdict with
         | Mc.Engine.Proved -> "proved"
         | Mc.Engine.Proved_bounded d -> Printf.sprintf "bounded %d" d
         | Mc.Engine.Failed _ -> "FAILED"
         | Mc.Engine.Resource_out r -> r
         | Mc.Engine.Error r -> "engine error: " ^ r))
    (Mc.Engine.check_vunit info'.Verifiable.Transform.mdl
       (PG.integrity_vunit info' spec'))
