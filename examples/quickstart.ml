(* Quickstart: the full methodology on one leaf module, end to end.

   1. A designer writes a parity-protected loadable counter.
   2. The Verifiable-RTL transform adds error-injection ports (Figure 6).
   3. The three stereotype property sets are generated as PSL (Figures 2-4).
   4. The model checker proves all of them.
   5. A bug is seeded and the same flow catches it, with a counterexample.

   Run with: dune exec examples/quickstart.exe *)

module E = Rtl.Expr
module PG = Verifiable.Propgen

let section title = Printf.printf "\n=== %s ===\n" title

let spec_of (leaf : Chip.Archetype.leaf) =
  { PG.he = leaf.Chip.Archetype.he; he_map = leaf.Chip.Archetype.he_map;
    parity_inputs = leaf.Chip.Archetype.parity_inputs;
    parity_outputs = leaf.Chip.Archetype.parity_outputs;
    extra = leaf.Chip.Archetype.extra_props }

let run_flow title leaf =
  section title;
  match
    Core.Flow.release_verifiable_rtl leaf.Chip.Archetype.mdl ~spec:(spec_of leaf)
  with
  | Error issues ->
    Printf.printf "RTL not releasable:\n";
    List.iter (fun i -> Format.printf "  %a@." Rtl.Check.pp_issue i) issues
  | Ok release ->
    Printf.printf "released PSL:\n%s\n" release.Core.Flow.psl_text;
    let feedback = Core.Flow.verify_release release in
    List.iter (fun f -> Format.printf "  %a@." Core.Flow.pp_feedback f) feedback;
    let failures = Core.Flow.failures feedback in
    if failures = [] then
      Printf.printf "--> all %d properties verified\n" (List.length feedback)
    else begin
      Printf.printf "--> %d properties FAILED; feedback to the designer:\n"
        (List.length failures);
      List.iter
        (fun (f : Core.Flow.feedback) ->
          match f.Core.Flow.outcome.Mc.Engine.verdict with
          | Mc.Engine.Failed trace ->
            Printf.printf "counterexample for %s:\n%s" f.Core.Flow.prop_name
              (Mc.Trace.to_string trace)
          | Mc.Engine.Proved | Mc.Engine.Proved_bounded _
          | Mc.Engine.Resource_out _ | Mc.Engine.Error _ ->
            ())
        failures
    end

let () =
  section "the designer's RTL (Verilog view)";
  let clean = Chip.Archetype.counter ~name:"cnt" () in
  print_string (Rtl.Verilog.module_to_string clean.Chip.Archetype.mdl);
  run_flow "flow on the correct counter" clean;
  run_flow "flow on the counter with the B2 wrap-around parity bug"
    (Chip.Archetype.counter ~name:"cnt_bug" ~bug:true ())
