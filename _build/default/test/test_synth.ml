(* Gate mapping, area accounting, and static timing analysis. *)

module E = Rtl.Expr
module M = Rtl.Mdl

let simple_module () =
  (* one 2-input AND, one inverter, one 1-bit register *)
  let m = M.create "tiny" in
  let m = M.add_input m "A" 1 in
  let m = M.add_input m "B" 1 in
  let m = M.add_output m "O" 1 in
  let m = M.add_reg m "q" 1 E.(var "A" &: var "B") in
  M.add_assign m "O" E.(!:(var "q"))

let test_map_counts () =
  let nc = Synth.Map.map_module (simple_module ()) in
  Alcotest.(check int) "one AND2" 1 (Synth.Map.cell_count nc Synth.Gatelib.And2);
  Alcotest.(check int) "one INV" 1 (Synth.Map.cell_count nc Synth.Gatelib.Inv);
  Alcotest.(check int) "one DFF" 1 (Synth.Map.cell_count nc Synth.Gatelib.Dff);
  Alcotest.(check (float 0.001)) "area"
    (Synth.Gatelib.area Synth.Gatelib.And2
     +. Synth.Gatelib.area Synth.Gatelib.Inv
     +. Synth.Gatelib.area Synth.Gatelib.Dff)
    nc.Synth.Map.area_ge

let test_hierarchy_multiplies () =
  let leaf = simple_module () in
  let parent = M.create "par" in
  let parent = M.add_input parent "A" 1 in
  let parent = M.add_input parent "B" 1 in
  let parent = M.add_output parent "O1" 1 in
  let parent = M.add_output parent "O2" 1 in
  let conn o =
    [ ("A", M.Net "A"); ("B", M.Net "B"); ("O", M.Net o) ]
  in
  let parent = M.add_instance parent "u0" ~of_module:"tiny" (conn "O1") in
  let parent = M.add_instance parent "u1" ~of_module:"tiny" (conn "O2") in
  let d = Rtl.Design.of_modules [ leaf; parent ] in
  let leaf_area = Synth.Area.module_area leaf in
  Alcotest.(check (float 0.001)) "two instances double the area"
    (2.0 *. leaf_area)
    (Synth.Area.hierarchy_area d ~root:"par")

let test_increase_percent () =
  Alcotest.(check (float 0.001)) "ten percent" 10.0
    (Synth.Area.increase_percent ~base:100.0 ~with_feature:110.0);
  Alcotest.(check bool) "zero base rejected" true
    (match Synth.Area.increase_percent ~base:0.0 ~with_feature:1.0 with
     | _ -> false
     | exception Invalid_argument _ -> true)

let elaborated m = Rtl.Elaborate.run (Rtl.Design.of_modules [ m ]) ~top:m.M.name

let test_timing_basic () =
  let r = Synth.Timing.analyze (elaborated (simple_module ())) in
  (* critical path: DFF clk-to-q + INV to output, or inputs through AND2 to
     the register input — the former is 150+30, the latter 60 *)
  Alcotest.(check (float 0.001)) "critical path" 180.0 r.Synth.Timing.critical_path_ps;
  Alcotest.(check (float 0.001)) "period at 250MHz" 4000.0 r.Synth.Timing.period_ps;
  Alcotest.(check bool) "meets timing" true (r.Synth.Timing.slack_ps > 0.0)

let test_timing_chain_depth () =
  (* an XOR tree over 8 inputs is 3 levels deep: 3 * 90ps *)
  let m = M.create "xtree" in
  let m = M.add_input m "I" 8 in
  let m = M.add_output m "P" 1 in
  let m = M.add_assign m "P" (E.red_xor (E.var "I")) in
  let arr = Synth.Timing.arrival_of_signal (elaborated m) "P" in
  Alcotest.(check (float 0.001)) "balanced xor tree depth" 270.0 arr

let test_selector_delay () =
  (* the injection selector adds exactly one MUX2 on the register path *)
  let leaf = Chip.Archetype.counter ~name:"tcnt" () in
  let info = Verifiable.Transform.apply leaf.Chip.Archetype.mdl in
  let base = Synth.Timing.analyze (elaborated leaf.Chip.Archetype.mdl) in
  let ver =
    Synth.Timing.analyze (elaborated info.Verifiable.Transform.mdl)
  in
  let delta =
    ver.Synth.Timing.critical_path_ps -. base.Synth.Timing.critical_path_ps
  in
  Alcotest.(check bool) "selector costs at most one MUX2" true
    (delta >= 0.0 && delta <= Synth.Timing.selector_delay_ps +. 0.001);
  Alcotest.(check (float 0.001)) "paper's 200ps selector" 200.0
    Synth.Timing.selector_delay_ps

let test_gatelib_sanity () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Synth.Gatelib.name c ^ " positive area/delay")
        true
        (Synth.Gatelib.area c > 0.0 && Synth.Gatelib.delay c > 0.0))
    Synth.Gatelib.all;
  Alcotest.(check (float 0.001)) "250MHz period" 4000.0
    (Synth.Gatelib.clock_period_ps ~frequency_mhz:250.0)

let test_xor_maps_to_xor2 () =
  let m = M.create "x" in
  let m = M.add_input m "A" 4 in
  let m = M.add_input m "B" 4 in
  let m = M.add_output m "O" 4 in
  let m = M.add_assign m "O" E.(var "A" ^: var "B") in
  let nc = Synth.Map.map_module m in
  Alcotest.(check int) "four XOR2" 4 (Synth.Map.cell_count nc Synth.Gatelib.Xor2)


(* ---- power estimation ---- *)

let test_power_basics () =
  let nl = elaborated (simple_module ()) in
  let quiet = Synth.Power.estimate nl ~activity:(fun _ -> 0.0) in
  Alcotest.(check (float 1e-9)) "no switching, no comb power" 0.0
    quiet.Synth.Power.combinational_mw;
  Alcotest.(check bool) "clock still burns" true
    (quiet.Synth.Power.clock_mw > 0.0);
  let busy = Synth.Power.estimate nl ~activity:(fun _ -> 0.5) in
  Alcotest.(check bool) "activity increases power" true
    (busy.Synth.Power.total_mw > quiet.Synth.Power.total_mw);
  (* doubling frequency doubles power *)
  let fast =
    Synth.Power.estimate ~frequency_mhz:500.0 nl ~activity:(fun _ -> 0.5)
  in
  Alcotest.(check (float 1e-9)) "power scales with frequency"
    (2.0 *. busy.Synth.Power.total_mw)
    fast.Synth.Power.total_mw

let test_power_from_measured_activity () =
  (* close the loop: simulate, measure activity, feed the power model *)
  let m = Chip.Archetype.counter ~name:"pw_cnt" () in
  let nl = elaborated m.Chip.Archetype.mdl in
  let sim = Sim.Simulator.create nl in
  Sim.Simulator.reset sim;
  let signals = List.map fst (Rtl.Netlist.signals nl) in
  let cov = Sim.Coverage.create sim ~signals in
  let profile =
    Sim.Stimulus.legal_profile
      ~parity_inputs:m.Chip.Archetype.parity_inputs
      ~overrides:[ ("EN", Sim.Stimulus.constant (Bitvec.of_int ~width:1 1));
                   ("LOAD", Sim.Stimulus.constant (Bitvec.of_int ~width:1 0)) ]
      nl
  in
  let st = Random.State.make [| 3 |] in
  for _ = 1 to 200 do
    Sim.Simulator.drive_all sim (Sim.Stimulus.draw profile st);
    Sim.Simulator.settle sim;
    Sim.Coverage.sample cov;
    Sim.Simulator.clock sim
  done;
  (* a free-running counter's LSB toggles every cycle: activity near 0.5
     averaged over 5 bits (bit0 = 1.0, bit1 = 0.5, ...) *)
  let a = Sim.Coverage.activity cov "cnt_q" in
  Alcotest.(check bool) "counter activity plausible" true (a > 0.3 && a < 0.6);
  let report =
    Synth.Power.estimate nl ~activity:(fun s ->
        match Sim.Coverage.activity cov s with
        | a -> a
        | exception Not_found -> 0.1)
  in
  Alcotest.(check bool) "positive total" true (report.Synth.Power.total_mw > 0.0);
  Alcotest.(check bool) "report prints" true
    (String.length (Format.asprintf "%a" Synth.Power.pp report) > 0)

let () =
  Alcotest.run "synth"
    [ ("map",
       [ Alcotest.test_case "cell counts" `Quick test_map_counts;
         Alcotest.test_case "hierarchy" `Quick test_hierarchy_multiplies;
         Alcotest.test_case "xor mapping" `Quick test_xor_maps_to_xor2;
         Alcotest.test_case "gatelib sanity" `Quick test_gatelib_sanity ]);
      ("area",
       [ Alcotest.test_case "increase percent" `Quick test_increase_percent ]);
      ("timing",
       [ Alcotest.test_case "basic" `Quick test_timing_basic;
         Alcotest.test_case "tree depth" `Quick test_timing_chain_depth;
         Alcotest.test_case "selector delay" `Quick test_selector_delay ]);
      ("power",
       [ Alcotest.test_case "model basics" `Quick test_power_basics;
         Alcotest.test_case "measured activity" `Quick
           test_power_from_measured_activity ]) ]
