(* Simulator: cycle semantics, reset behavior, stimulus profiles, testbench
   watching, VCD output; cross-checked against a hand-computed model. *)

module E = Rtl.Expr
module M = Rtl.Mdl

let bv = Bitvec.of_string

(* 4-bit accumulator: acc' = acc + IN when EN *)
let accumulator () =
  let m = M.create "acc" in
  let m = M.add_input m "EN" 1 in
  let m = M.add_input m "IN" 4 in
  let m = M.add_output m "OUT" 4 in
  let m =
    M.add_reg m "acc_q" 4
      (E.mux (E.var "EN") E.(var "acc_q" +: var "IN") (E.var "acc_q"))
  in
  M.add_assign m "OUT" (E.var "acc_q")

let elaborated m = Rtl.Elaborate.run (Rtl.Design.of_modules [ m ]) ~top:m.M.name

let test_cycle_semantics () =
  let sim = Sim.Simulator.create (elaborated (accumulator ())) in
  Sim.Simulator.reset sim;
  Alcotest.(check int) "reset value" 0 (Bitvec.to_int (Sim.Simulator.peek sim "acc_q"));
  Sim.Simulator.cycle sim [ ("EN", bv "1"); ("IN", bv "0011") ];
  Alcotest.(check int) "after one add" 3
    (Bitvec.to_int (Sim.Simulator.peek sim "OUT"));
  Sim.Simulator.cycle sim [ ("EN", bv "0"); ("IN", bv "0111") ];
  Alcotest.(check int) "disabled holds" 3
    (Bitvec.to_int (Sim.Simulator.peek sim "OUT"));
  Sim.Simulator.cycle sim [ ("EN", bv "1"); ("IN", bv "1111") ];
  Alcotest.(check int) "wraps" 2 (Bitvec.to_int (Sim.Simulator.peek sim "OUT"));
  Alcotest.(check int) "cycle count" 3 (Sim.Simulator.cycle_count sim);
  Sim.Simulator.reset sim;
  Alcotest.(check int) "reset clears" 0
    (Bitvec.to_int (Sim.Simulator.peek sim "OUT"));
  Alcotest.(check int) "reset clears cycles" 0 (Sim.Simulator.cycle_count sim)

let test_settle_before_clock () =
  let sim = Sim.Simulator.create (elaborated (accumulator ())) in
  Sim.Simulator.reset sim;
  Sim.Simulator.drive_all sim [ ("EN", bv "1"); ("IN", bv "0101") ];
  Sim.Simulator.settle sim;
  (* combinational OUT still shows the pre-edge register value *)
  Alcotest.(check int) "pre-edge" 0 (Bitvec.to_int (Sim.Simulator.peek sim "OUT"));
  Sim.Simulator.clock sim;
  Alcotest.(check int) "post-edge" 5 (Bitvec.to_int (Sim.Simulator.peek sim "OUT"))

let test_drive_errors () =
  let sim = Sim.Simulator.create (elaborated (accumulator ())) in
  Alcotest.(check bool) "unknown input" true
    (match Sim.Simulator.drive sim "NOPE" (bv "1") with
     | () -> false
     | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "width mismatch" true
    (match Sim.Simulator.drive sim "IN" (bv "1") with
     | () -> false
     | exception Invalid_argument _ -> true)

let test_sim_matches_reference () =
  (* run 100 random cycles, comparing against a direct OCaml model *)
  let sim = Sim.Simulator.create (elaborated (accumulator ())) in
  Sim.Simulator.reset sim;
  let st = Random.State.make [| 7 |] in
  let model = ref 0 in
  for _ = 1 to 100 do
    let en = Random.State.bool st in
    let v = Random.State.int st 16 in
    Sim.Simulator.cycle sim
      [ ("EN", Bitvec.of_bool en); ("IN", Bitvec.of_int ~width:4 v) ];
    if en then model := (!model + v) land 15;
    Alcotest.(check int) "model agreement" !model
      (Bitvec.to_int (Sim.Simulator.peek sim "OUT"))
  done

let test_stimulus_generators () =
  let st = Random.State.make [| 1 |] in
  for _ = 1 to 50 do
    let v = Sim.Stimulus.odd_parity 5 st in
    Alcotest.(check bool) "odd parity legal" true (Bitvec.has_odd_parity v)
  done;
  let z = Sim.Stimulus.zero 3 st in
  Alcotest.(check bool) "zero gen" true (Bitvec.is_zero z);
  let c = Sim.Stimulus.constant (bv "101") st in
  Alcotest.(check int) "constant gen" 5 (Bitvec.to_int c);
  let one_of = Sim.Stimulus.choose [ bv "01"; bv "10" ] st in
  Alcotest.(check bool) "choose picks member" true
    (Bitvec.to_int one_of = 1 || Bitvec.to_int one_of = 2)

let test_legal_profile () =
  (* a module with an injection port and a parity input *)
  let m = M.create "p" in
  let m = M.add_input m "I_ERR_INJ_C" 2 in
  let m = M.add_input m "DATA" 5 in
  let m = M.add_input m "MISC" 3 in
  let m = M.add_output m "O" 5 in
  let m = M.add_assign m "O" (E.var "DATA") in
  let nl = elaborated m in
  let profile = Sim.Stimulus.legal_profile ~parity_inputs:[ "DATA" ] nl in
  let st = Random.State.make [| 3 |] in
  for _ = 1 to 30 do
    let draw = Sim.Stimulus.draw profile st in
    Alcotest.(check bool) "injection tied to zero" true
      (Bitvec.is_zero (List.assoc "I_ERR_INJ_C" draw));
    Alcotest.(check bool) "parity input legal" true
      (Bitvec.has_odd_parity (List.assoc "DATA" draw))
  done;
  let inj_profile =
    Sim.Stimulus.injection_profile ~parity_inputs:[ "DATA" ]
      ~inject:[ ("I_ERR_INJ_C", Sim.Stimulus.constant (bv "11")) ]
      nl
  in
  let draw = Sim.Stimulus.draw inj_profile st in
  Alcotest.(check int) "injection driven" 3
    (Bitvec.to_int (List.assoc "I_ERR_INJ_C" draw))

let test_testbench_watch () =
  (* watch the accumulator's MSB: with EN always on and IN=1, the value 8
     becomes visible at the sample of cycle index 8 (after the 8th edge) *)
  let m = accumulator () in
  let m2 = M.add_wire m "msb" 1 in
  let m2 = M.add_assign m2 "msb" (E.bit (E.var "acc_q") 3) in
  let sim = Sim.Simulator.create (elaborated m2) in
  let profile =
    [ ("EN", Sim.Stimulus.constant (bv "1"));
      ("IN", Sim.Stimulus.constant (bv "0001")) ]
  in
  let run =
    Sim.Testbench.run_random sim profile ~cycles:20 ~seed:1 ~watch:[ "msb" ]
  in
  Alcotest.(check bool) "fired" true (Sim.Testbench.fired run "msb");
  Alcotest.(check (option int)) "first fire" (Some 8)
    (Sim.Testbench.first_fire run "msb");
  let stop_run =
    Sim.Testbench.run_random ~stop_on_fire:true sim profile ~cycles:20 ~seed:1
      ~watch:[ "msb" ]
  in
  Alcotest.(check int) "stops at fire" 9 stop_run.Sim.Testbench.cycles_run

let test_vcd () =
  let sim = Sim.Simulator.create (elaborated (accumulator ())) in
  Sim.Simulator.reset sim;
  let vcd = Sim.Vcd.create sim ~signals:[ "OUT"; "EN" ] in
  Sim.Vcd.sample vcd;
  Sim.Simulator.cycle sim [ ("EN", bv "1"); ("IN", bv "0001") ];
  Sim.Vcd.sample vcd;
  let text = Sim.Vcd.to_string vcd in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has header" true (contains "$enddefinitions");
  Alcotest.(check bool) "has var decl" true (contains "$var wire 4");
  Alcotest.(check bool) "has timesteps" true (contains "#1")


let test_coverage () =
  let sim = Sim.Simulator.create (elaborated (accumulator ())) in
  Sim.Simulator.reset sim;
  let cov = Sim.Coverage.create sim ~signals:[ "acc_q"; "EN" ] in
  (* constant stimulus: EN stuck at 1, so its 0-polarity is never seen
     after the first sample *)
  Sim.Simulator.drive_all sim [ ("EN", bv "1"); ("IN", bv "0001") ];
  Sim.Simulator.settle sim;
  for _ = 1 to 16 do
    Sim.Coverage.sample cov;
    Sim.Simulator.clock sim
  done;
  Alcotest.(check int) "cycles sampled" 16 (Sim.Coverage.cycles_sampled cov);
  (* the 4-bit accumulator sweeps all 16 values *)
  Alcotest.(check (float 0.001)) "full value coverage" 1.0
    (Sim.Coverage.value_coverage cov "acc_q");
  let rep =
    List.find
      (fun (r : Sim.Coverage.signal_report) -> r.Sim.Coverage.signal = "acc_q")
      (Sim.Coverage.report cov)
  in
  Alcotest.(check int) "all bits toggled" 4 rep.Sim.Coverage.bits_toggled;
  Alcotest.(check (option int)) "16 values" (Some 16)
    rep.Sim.Coverage.values_seen;
  (* EN was held high while sampled, so it never toggled *)
  let en_rep =
    List.find
      (fun (r : Sim.Coverage.signal_report) -> r.Sim.Coverage.signal = "EN")
      (Sim.Coverage.report cov)
  in
  Alcotest.(check int) "EN untoggled" 0 en_rep.Sim.Coverage.bits_toggled;
  Alcotest.(check bool) "overall below 1" true
    (Sim.Coverage.toggle_coverage cov < 1.0)

let test_coverage_wide_signals () =
  let m = M.create "wide" in
  let m = M.add_input m "I" 20 in
  let m = M.add_output m "O" 20 in
  let m = M.add_assign m "O" (E.var "I") in
  let sim = Sim.Simulator.create (elaborated m) in
  Sim.Simulator.reset sim;
  let cov = Sim.Coverage.create sim ~signals:[ "O" ] in
  Sim.Simulator.drive_all sim [ ("I", Bitvec.ones 20) ];
  Sim.Simulator.settle sim;
  Sim.Coverage.sample cov;
  let rep = List.hd (Sim.Coverage.report cov) in
  Alcotest.(check (option int)) "value tracking disabled for wide" None
    rep.Sim.Coverage.values_seen;
  Alcotest.(check bool) "value_coverage raises" true
    (match Sim.Coverage.value_coverage cov "O" with
     | _ -> false
     | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "sim"
    [ ("simulator",
       [ Alcotest.test_case "cycle semantics" `Quick test_cycle_semantics;
         Alcotest.test_case "settle before clock" `Quick test_settle_before_clock;
         Alcotest.test_case "drive errors" `Quick test_drive_errors;
         Alcotest.test_case "matches reference model" `Quick
           test_sim_matches_reference ]);
      ("stimulus",
       [ Alcotest.test_case "generators" `Quick test_stimulus_generators;
         Alcotest.test_case "legal profile" `Quick test_legal_profile ]);
      ("testbench",
       [ Alcotest.test_case "watching" `Quick test_testbench_watch;
         Alcotest.test_case "vcd" `Quick test_vcd ]);
      ("coverage",
       [ Alcotest.test_case "toggle and value" `Quick test_coverage;
         Alcotest.test_case "wide signals" `Quick test_coverage_wide_signals ]) ]
