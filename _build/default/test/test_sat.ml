(* CDCL solver and Tseitin encoder: crafted instances, random CNFs checked
   against brute force, and equisatisfiability of the encoding. *)

module X = Rtl.Bexpr


(* --- crafted instances --- *)

let cnf nvars clauses = Cnf.create ~nvars clauses

let is_sat = function Solver.Sat _ -> true | Solver.Unsat | Solver.Unknown -> false
let is_unsat = function Solver.Unsat -> true | Solver.Sat _ | Solver.Unknown -> false

let test_trivial () =
  Alcotest.(check bool) "empty cnf sat" true (is_sat (Solver.solve (cnf 0 [])));
  Alcotest.(check bool) "unit sat" true (is_sat (Solver.solve (cnf 1 [ [ 1 ] ])));
  Alcotest.(check bool) "unit conflict" true
    (is_unsat (Solver.solve (cnf 1 [ [ 1 ]; [ -1 ] ])));
  Alcotest.(check bool) "empty clause" true
    (is_unsat (Solver.solve (cnf 1 [ [] ])));
  Alcotest.(check bool) "tautology dropped" true
    (is_sat (Solver.solve (cnf 1 [ [ 1; -1 ] ])))

let test_model_valid () =
  let c = cnf 4 [ [ 1; 2 ]; [ -1; 3 ]; [ -3; -2; 4 ]; [ -4; 1 ] ] in
  match Solver.solve c with
  | Solver.Sat model ->
    Alcotest.(check bool) "model satisfies" true
      (Cnf.eval c (fun v -> model.(v - 1)))
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "expected sat"

let test_pigeonhole () =
  (* 3 pigeons, 2 holes: classic small UNSAT *)
  let var p h = (p * 2) + h + 1 in
  let clauses =
    (* every pigeon sits somewhere *)
    List.init 3 (fun p -> [ var p 0; var p 1 ])
    (* no two pigeons share a hole *)
    @ List.concat_map
        (fun h ->
          [ [ -var 0 h; -var 1 h ]; [ -var 0 h; -var 2 h ];
            [ -var 1 h; -var 2 h ] ])
        [ 0; 1 ]
  in
  Alcotest.(check bool) "php(3,2) unsat" true
    (is_unsat (Solver.solve (cnf 6 clauses)))

let test_xor_chain () =
  (* x1 xor x2 xor ... xor x5 = 1 and all equal: unsat for even weight mix *)
  let eq a b = [ [ -a; b ]; [ a; -b ] ] in
  let clauses = eq 1 2 @ eq 2 3 @ [ [ 1; 2; 3 ]; [ -1; -2; -3 ] ] in
  (* all-equal plus "not all equal" *)
  Alcotest.(check bool) "equality chain conflict" true
    (is_unsat (Solver.solve (cnf 3 clauses)))

let test_conflict_budget () =
  (* php(5,4) is small but needs some search; budget of 1 conflict gives up *)
  let pigeons = 5 and holes = 4 in
  let var p h = (p * holes) + h + 1 in
  let clauses =
    List.init pigeons (fun p -> List.init holes (fun h -> var p h))
    @ List.concat
        (List.concat
           (List.init holes (fun h ->
                List.init pigeons (fun p1 ->
                    List.filteri (fun p2 _ -> p2 > p1)
                      (List.init pigeons (fun p2 -> [ -var p1 h; -var p2 h ]))))))
  in
  let c = cnf (pigeons * holes) clauses in
  (match Solver.solve ~max_conflicts:1 c with
   | Solver.Unknown -> ()
   | Solver.Unsat -> () (* allowed: solved before the budget *)
   | Solver.Sat _ -> Alcotest.fail "php(5,4) cannot be sat");
  Alcotest.(check bool) "php(5,4) unsat with full budget" true
    (is_unsat (Solver.solve c))

(* --- random CNFs vs brute force --- *)

let arb_cnf =
  let open QCheck.Gen in
  let gen =
    int_range 1 6 >>= fun nvars ->
    int_range 0 18 >>= fun nclauses ->
    let lit = int_range 1 nvars >>= fun v -> map (fun b -> if b then v else -v) bool in
    list_repeat nclauses (int_range 1 3 >>= fun len -> list_repeat len lit)
    >|= fun clauses -> Cnf.create ~nvars clauses
  in
  QCheck.make
    ~print:(fun c -> Format.asprintf "%a" Cnf.pp_dimacs c)
    gen

let brute_force_sat (c : Cnf.t) =
  let n = c.Cnf.nvars in
  let rec try_mask mask =
    if mask >= 1 lsl n then false
    else if Cnf.eval c (fun v -> mask lsr (v - 1) land 1 = 1) then true
    else try_mask (mask + 1)
  in
  try_mask 0

let prop_solver_correct =
  QCheck.Test.make ~name:"CDCL agrees with brute force" ~count:500 arb_cnf
    (fun c ->
      match Solver.solve c with
      | Solver.Sat model ->
        Cnf.eval c (fun v -> model.(v - 1))
      | Solver.Unsat -> not (brute_force_sat c)
      | Solver.Unknown -> false)

(* --- Tseitin --- *)

let rec gen_bexpr_depth depth st =
  let open QCheck.Gen in
  if depth = 0 then map (fun i -> X.var i) (int_range 0 4) st
  else
    frequency
      [ (2, map (fun i -> X.var i) (int_range 0 4));
        (2,
         map2 X.and_ (gen_bexpr_depth (depth - 1)) (gen_bexpr_depth (depth - 1)));
        (2, map2 X.or_ (gen_bexpr_depth (depth - 1)) (gen_bexpr_depth (depth - 1)));
        (2, map2 X.xor (gen_bexpr_depth (depth - 1)) (gen_bexpr_depth (depth - 1)));
        (1, map X.not_ (gen_bexpr_depth (depth - 1)));
        (1,
         map3 X.ite
           (gen_bexpr_depth (depth - 1))
           (gen_bexpr_depth (depth - 1))
           (gen_bexpr_depth (depth - 1))) ]
      st

let arb_bexpr =
  QCheck.make ~print:(Format.asprintf "%a" X.pp) (gen_bexpr_depth 4)

(* asserting e must be satisfiable exactly when e is not constant-false,
   and any model must make e true *)
let prop_tseitin_equisat =
  QCheck.Test.make ~name:"Tseitin encoding is equisatisfiable" ~count:300
    arb_bexpr (fun e ->
      let ctx = Tseitin.create () in
      let inputs = Array.init 5 (fun _ -> Tseitin.fresh_var ctx) in
      let lit = Tseitin.lit_of_bexpr ctx (fun v -> inputs.(v)) e in
      Tseitin.assert_lit ctx lit;
      let c = Tseitin.to_cnf ctx in
      let brute_sat =
        let rec try_mask mask =
          if mask >= 32 then false
          else if X.eval (fun v -> mask lsr v land 1 = 1) e then true
          else try_mask (mask + 1)
        in
        try_mask 0
      in
      match Solver.solve c with
      | Solver.Sat model ->
        let assign v = model.(inputs.(v) - 1) in
        brute_sat && X.eval assign e
      | Solver.Unsat -> not brute_sat
      | Solver.Unknown -> false)


(* --- DIMACS --- *)

let test_dimacs_roundtrip () =
  let c = cnf 4 [ [ 1; -2 ]; [ 3 ]; [ -4; 2; 1 ] ] in
  let text = Format.asprintf "%a" Cnf.pp_dimacs c in
  (match Dimacs.parse text with
   | Ok c' ->
     Alcotest.(check int) "nvars" c.Cnf.nvars c'.Cnf.nvars;
     Alcotest.(check bool) "clauses" true (c.Cnf.clauses = c'.Cnf.clauses)
   | Error msg -> Alcotest.fail msg)

let test_dimacs_errors () =
  let expect_error text =
    match Dimacs.parse text with
    | Ok _ -> Alcotest.failf "accepted %S" text
    | Error _ -> ()
  in
  expect_error "1 2 0\n";               (* missing header *)
  expect_error "p cnf 2 1\n1 2\n";     (* unterminated clause *)
  expect_error "p cnf 2 2\n1 2 0\n";   (* clause count mismatch *)
  expect_error "p cnf 1 1\n5 0\n";     (* literal out of range *)
  expect_error "p cnf x y\n"           (* malformed header *)

let test_dimacs_comments_and_spacing () =
  match Dimacs.parse "c a comment\np cnf 3 2\n  1  -2  0\nc mid\n3 0\n" with
  | Ok c ->
    Alcotest.(check int) "clauses parsed" 2 (Cnf.num_clauses c)
  | Error msg -> Alcotest.fail msg

let () =
  Alcotest.run "sat"
    [ ("crafted",
       [ Alcotest.test_case "trivial" `Quick test_trivial;
         Alcotest.test_case "model validity" `Quick test_model_valid;
         Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
         Alcotest.test_case "xor chain" `Quick test_xor_chain;
         Alcotest.test_case "conflict budget" `Quick test_conflict_budget ]);
      ("dimacs",
       [ Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
         Alcotest.test_case "errors" `Quick test_dimacs_errors;
         Alcotest.test_case "comments and spacing" `Quick
           test_dimacs_comments_and_spacing ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_solver_correct; prop_tseitin_equisat ]) ]
