(* Word-level expression layer: width inference, evaluation, substitution,
   and agreement between direct evaluation and bit-blasted evaluation. *)

module E = Rtl.Expr
module X = Rtl.Bexpr

let bv = Bitvec.of_string

let env_of bindings name =
  match List.assoc_opt name bindings with
  | Some v -> v
  | None -> Alcotest.failf "unbound signal %s" name

let widths_of bindings name = Bitvec.width (env_of bindings name)

let test_width () =
  let env = widths_of [ ("a", bv "0000"); ("b", bv "0000"); ("s", bv "0") ] in
  Alcotest.(check int) "var" 4 (E.width ~env (E.var "a"));
  Alcotest.(check int) "and" 4 (E.width ~env E.(var "a" &: var "b"));
  Alcotest.(check int) "eq" 1 (E.width ~env E.(var "a" ==: var "b"));
  Alcotest.(check int) "red" 1 (E.width ~env (E.red_xor (E.var "a")));
  Alcotest.(check int) "concat" 8 (E.width ~env (E.concat (E.var "a") (E.var "b")));
  Alcotest.(check int) "slice" 2 (E.width ~env (E.slice (E.var "a") ~hi:2 ~lo:1));
  Alcotest.(check int) "mux" 4
    (E.width ~env (E.mux (E.var "s") (E.var "a") (E.var "b")));
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Expr.width: operand width mismatch (4 vs 1)") (fun () ->
      ignore (E.width ~env E.(var "a" &: var "s")));
  Alcotest.check_raises "bad slice"
    (Invalid_argument "Expr.width: slice out of range") (fun () ->
      ignore (E.width ~env (E.slice (E.var "a") ~hi:4 ~lo:0)))

let test_eval () =
  let env = env_of [ ("a", bv "1100"); ("b", bv "1010"); ("s", bv "1") ] in
  let check name expected e =
    Alcotest.(check string) name expected (Bitvec.to_string (E.eval ~env e))
  in
  check "and" "1000" E.(var "a" &: var "b");
  check "or" "1110" E.(var "a" |: var "b");
  check "xor" "0110" E.(var "a" ^: var "b");
  check "xnor" "1001" (E.Binop (E.Xnor, E.var "a", E.var "b"));
  check "not" "0011" E.(!:(var "a"));
  check "add" "0110" E.(var "a" +: var "b");
  check "sub" "0010" E.(var "a" -: var "b");
  check "eq false" "0" E.(var "a" ==: var "b");
  check "ne true" "1" E.(var "a" <>: var "b");
  check "lt" "0" E.(var "a" <: var "b");
  check "mux takes then" "1100" (E.mux (E.var "s") (E.var "a") (E.var "b"));
  check "red_xor" "0" (E.red_xor (E.var "a"));
  check "red_or" "1" (E.red_or (E.var "a"));
  check "red_and" "0" (E.red_and (E.var "a"));
  check "slice" "11" (E.slice (E.var "a") ~hi:3 ~lo:2);
  check "bit" "1" (E.bit (E.var "a") 2);
  check "concat" "11001010" (E.concat (E.var "a") (E.var "b"))

let test_support_subst () =
  let e = E.(var "a" &: (var "b" |: var "a")) in
  Alcotest.(check (list string)) "support dedups" [ "a"; "b" ] (E.support e);
  let renamed = E.rename (fun s -> "x_" ^ s) e in
  Alcotest.(check (list string)) "rename" [ "x_a"; "x_b" ] (E.support renamed);
  let substituted = E.subst (fun s -> if s = "a" then Some E.tru else None) e in
  Alcotest.(check (list string)) "subst removes" [ "b" ] (E.support substituted)

let test_pp () =
  Alcotest.(check string) "pp" "(a & b)" (E.to_string E.(var "a" &: var "b"));
  Alcotest.(check string) "pp slice" "a[3:1]"
    (E.to_string (E.slice (E.var "a") ~hi:3 ~lo:1))

(* random expression generator over two 4-bit signals and one 1-bit signal *)
let gen_expr =
  let open QCheck.Gen in
  let leaf4 = oneof [ return (E.var "a"); return (E.var "b");
                      map (fun n -> E.of_int ~width:4 (n land 15)) small_nat ] in
  fix
    (fun self depth ->
      if depth = 0 then leaf4
      else
        frequency
          [ (2, leaf4);
            (2, map2 (fun a b -> E.(a &: b)) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun a b -> E.(a |: b)) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun a b -> E.(a ^: b)) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun a b -> E.(a +: b)) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun a b -> E.(a -: b)) (self (depth - 1)) (self (depth - 1)));
            (1, map (fun a -> E.(!:a)) (self (depth - 1)));
            (1,
             map3
               (fun c a b -> E.mux (E.bit c 0) a b)
               (self (depth - 1)) (self (depth - 1)) (self (depth - 1))) ])
    3

let arb_expr = QCheck.make ~print:E.to_string gen_expr

(* bit-blasting agrees with direct evaluation *)
let prop_bitblast_agrees =
  QCheck.Test.make ~name:"bitblast agrees with eval" ~count:300
    (QCheck.pair arb_expr (QCheck.pair (QCheck.int_bound 15) (QCheck.int_bound 15)))
    (fun (e, (va, vb)) ->
      let a = Bitvec.of_int ~width:4 va and b = Bitvec.of_int ~width:4 vb in
      let env name = if name = "a" then a else b in
      let direct = E.eval ~env e in
      let var_ids = [ ("a", [| 0; 1; 2; 3 |]); ("b", [| 4; 5; 6; 7 |]) ] in
      let blast_env name = Array.map X.var (List.assoc name var_ids) in
      let bits = Rtl.Bitblast.expr ~env:blast_env e in
      let assign v = if v < 4 then Bitvec.get a v else Bitvec.get b (v - 4) in
      let blasted =
        Bitvec.init (Array.length bits) (fun i -> X.eval assign bits.(i))
      in
      Bitvec.equal direct blasted)

let prop_rename_roundtrip =
  QCheck.Test.make ~name:"rename roundtrip" ~count:100 arb_expr (fun e ->
      let there = E.rename (fun s -> "p_" ^ s) e in
      let back =
        E.rename (fun s -> String.sub s 2 (String.length s - 2)) there
      in
      E.equal e back)

let () =
  Alcotest.run "expr"
    [ ("unit",
       [ Alcotest.test_case "width inference" `Quick test_width;
         Alcotest.test_case "evaluation" `Quick test_eval;
         Alcotest.test_case "support and subst" `Quick test_support_subst;
         Alcotest.test_case "printing" `Quick test_pp ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_bitblast_agrees; prop_rename_roundtrip ]) ]
