(* Unit and property tests for the bit-vector substrate. *)

let bv = Bitvec.of_string

let check_bv = Alcotest.testable Bitvec.pp Bitvec.equal

let test_construction () =
  Alcotest.(check int) "zero width" 4 (Bitvec.width (Bitvec.zero 4));
  Alcotest.(check bool) "zero is zero" true (Bitvec.is_zero (Bitvec.zero 4));
  Alcotest.(check check_bv) "of_int" (bv "1010") (Bitvec.of_int ~width:4 10);
  Alcotest.(check check_bv) "of_int truncates" (bv "010")
    (Bitvec.of_int ~width:3 10);
  Alcotest.(check int) "to_int" 10 (Bitvec.to_int (bv "1010"));
  Alcotest.(check string) "to_string" "1010" (Bitvec.to_string (bv "1010"));
  Alcotest.(check check_bv) "underscores" (bv "1010") (bv "10_10");
  Alcotest.check_raises "empty string" (Invalid_argument "Bitvec.of_string: empty")
    (fun () -> ignore (bv ""));
  Alcotest.check_raises "bad width"
    (Invalid_argument "Bitvec: width must be positive") (fun () ->
      ignore (Bitvec.zero 0))

let test_bit_access () =
  let v = bv "1010" in
  Alcotest.(check bool) "bit 0" false (Bitvec.get v 0);
  Alcotest.(check bool) "bit 1" true (Bitvec.get v 1);
  Alcotest.(check bool) "bit 3" true (Bitvec.get v 3);
  Alcotest.(check check_bv) "set" (bv "1011") (Bitvec.set v 0 true);
  Alcotest.(check check_bv) "clear" (bv "0010") (Bitvec.set v 3 false);
  Alcotest.(check check_bv) "corrupt flips" (bv "1000") (Bitvec.corrupt_bit v 1)

let test_logic () =
  let a = bv "1100" and b = bv "1010" in
  Alcotest.(check check_bv) "and" (bv "1000") (Bitvec.logand a b);
  Alcotest.(check check_bv) "or" (bv "1110") (Bitvec.logor a b);
  Alcotest.(check check_bv) "xor" (bv "0110") (Bitvec.logxor a b);
  Alcotest.(check check_bv) "not" (bv "0011") (Bitvec.lognot a)

let test_reductions () =
  Alcotest.(check bool) "red_or nonzero" true (Bitvec.red_or (bv "0100"));
  Alcotest.(check bool) "red_or zero" false (Bitvec.red_or (bv "0000"));
  Alcotest.(check bool) "red_and ones" true (Bitvec.red_and (bv "1111"));
  Alcotest.(check bool) "red_and mixed" false (Bitvec.red_and (bv "1101"));
  Alcotest.(check bool) "red_xor odd" true (Bitvec.red_xor (bv "0111"));
  Alcotest.(check bool) "red_xor even" false (Bitvec.red_xor (bv "0110"));
  Alcotest.(check int) "popcount" 3 (Bitvec.popcount (bv "0111"))

let test_arithmetic () =
  Alcotest.(check check_bv) "add" (bv "0101") (Bitvec.add (bv "0011") (bv "0010"));
  Alcotest.(check check_bv) "add wraps" (bv "0000")
    (Bitvec.add (bv "1111") (bv "0001"));
  Alcotest.(check check_bv) "sub" (bv "0001") (Bitvec.sub (bv "0011") (bv "0010"));
  Alcotest.(check check_bv) "sub wraps" (bv "1111")
    (Bitvec.sub (bv "0000") (bv "0001"));
  Alcotest.(check check_bv) "succ" (bv "0100") (Bitvec.succ (bv "0011"));
  Alcotest.(check check_bv) "neg" (bv "1111") (Bitvec.neg (bv "0001"))

let test_structure () =
  Alcotest.(check check_bv) "concat" (bv "10_0111")
    (Bitvec.concat (bv "10") (bv "0111"));
  Alcotest.(check check_bv) "slice" (bv "11")
    (Bitvec.slice (bv "0110") ~hi:2 ~lo:1);
  Alcotest.(check check_bv) "shift left" (bv "1000")
    (Bitvec.shift_left (bv "0001") 3);
  Alcotest.(check check_bv) "shift right" (bv "0001")
    (Bitvec.shift_right (bv "1000") 3);
  Alcotest.(check check_bv) "shift out" (bv "0000")
    (Bitvec.shift_left (bv "1000") 1)

let test_compare () =
  Alcotest.(check bool) "equal" true (Bitvec.equal (bv "0101") (bv "0101"));
  Alcotest.(check bool) "unequal" false (Bitvec.equal (bv "0101") (bv "0100"));
  Alcotest.(check bool) "lt" true (Bitvec.compare (bv "0011") (bv "0100") < 0);
  Alcotest.(check bool) "gt" true (Bitvec.compare (bv "1000") (bv "0111") > 0);
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Bitvec.compare: width mismatch") (fun () ->
      ignore (Bitvec.compare (bv "01") (bv "011")))

let test_parity () =
  Alcotest.(check bool) "odd parity detected" true
    (Bitvec.has_odd_parity (bv "0001"));
  Alcotest.(check bool) "even parity detected" false
    (Bitvec.has_odd_parity (bv "0011"));
  (* append_odd_parity always yields a legal codeword *)
  Alcotest.(check bool) "encode 0000" true
    (Bitvec.has_odd_parity (Bitvec.append_odd_parity (bv "0000")));
  Alcotest.(check bool) "encode 0111" true
    (Bitvec.has_odd_parity (Bitvec.append_odd_parity (bv "0111")));
  Alcotest.(check int) "encode widens" 5
    (Bitvec.width (Bitvec.append_odd_parity (bv "0111")))

let test_wide () =
  (* widths above one limb (62 bits) *)
  let w = 130 in
  let v = Bitvec.set (Bitvec.zero w) 129 true in
  Alcotest.(check bool) "high bit set" true (Bitvec.get v 129);
  Alcotest.(check int) "popcount wide" 1 (Bitvec.popcount v);
  let all = Bitvec.ones w in
  Alcotest.(check int) "ones popcount" w (Bitvec.popcount all);
  Alcotest.(check bool) "red_and wide" true (Bitvec.red_and all);
  Alcotest.(check check_bv) "not zero is ones" all
    (Bitvec.lognot (Bitvec.zero w));
  Alcotest.(check check_bv) "wide add wraps" (Bitvec.zero w)
    (Bitvec.add all (Bitvec.of_int ~width:w 1))

(* property tests *)

let arb_width = QCheck.Gen.int_range 1 150

let arb_bv =
  QCheck.make
    ~print:(fun v -> Bitvec.to_string v)
    QCheck.Gen.(
      arb_width >>= fun w ->
      list_repeat w bool >|= fun bits ->
      let arr = Array.of_list bits in
      Bitvec.init w (fun i -> arr.(i)))

let arb_bv_pair =
  QCheck.make
    ~print:(fun (a, b) -> Bitvec.to_string a ^ "," ^ Bitvec.to_string b)
    QCheck.Gen.(
      arb_width >>= fun w ->
      let vec = list_repeat w bool >|= fun bits ->
        let arr = Array.of_list bits in
        Bitvec.init w (fun i -> arr.(i))
      in
      pair vec vec)

let prop_parity_encode =
  QCheck.Test.make ~name:"append_odd_parity yields odd parity" ~count:200
    arb_bv (fun v -> Bitvec.has_odd_parity (Bitvec.append_odd_parity v))

let prop_corrupt_breaks_parity =
  QCheck.Test.make ~name:"single bit flip breaks odd parity" ~count:200 arb_bv
    (fun v ->
      let code = Bitvec.append_odd_parity v in
      not (Bitvec.has_odd_parity (Bitvec.corrupt_bit code 0)))

let prop_xor_involution =
  QCheck.Test.make ~name:"xor involution" ~count:200 arb_bv_pair
    (fun (a, b) -> Bitvec.equal (Bitvec.logxor (Bitvec.logxor a b) b) a)

let prop_add_comm =
  QCheck.Test.make ~name:"add commutes" ~count:200 arb_bv_pair (fun (a, b) ->
      Bitvec.equal (Bitvec.add a b) (Bitvec.add b a))

let prop_sub_add =
  QCheck.Test.make ~name:"sub then add restores" ~count:200 arb_bv_pair
    (fun (a, b) -> Bitvec.equal (Bitvec.add (Bitvec.sub a b) b) a)

let prop_concat_slice =
  QCheck.Test.make ~name:"concat then slice recovers parts" ~count:200
    arb_bv_pair (fun (a, b) ->
      let c = Bitvec.concat a b in
      let wb = Bitvec.width b in
      Bitvec.equal (Bitvec.slice c ~hi:(wb - 1) ~lo:0) b
      && Bitvec.equal (Bitvec.slice c ~hi:(Bitvec.width c - 1) ~lo:wb) a)

let prop_popcount_xor_parity =
  QCheck.Test.make ~name:"red_xor matches popcount parity" ~count:200 arb_bv
    (fun v -> Bitvec.red_xor v = (Bitvec.popcount v land 1 = 1))

let prop_roundtrip_string =
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:200 arb_bv
    (fun v -> Bitvec.equal v (Bitvec.of_string (Bitvec.to_string v)))

let () =
  Alcotest.run "bitvec"
    [ ("unit",
       [ Alcotest.test_case "construction" `Quick test_construction;
         Alcotest.test_case "bit access" `Quick test_bit_access;
         Alcotest.test_case "logic" `Quick test_logic;
         Alcotest.test_case "reductions" `Quick test_reductions;
         Alcotest.test_case "arithmetic" `Quick test_arithmetic;
         Alcotest.test_case "structure" `Quick test_structure;
         Alcotest.test_case "compare" `Quick test_compare;
         Alcotest.test_case "parity" `Quick test_parity;
         Alcotest.test_case "wide vectors" `Quick test_wide ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_parity_encode; prop_corrupt_breaks_parity; prop_xor_involution;
           prop_add_comm; prop_sub_add; prop_concat_slice;
           prop_popcount_xor_parity; prop_roundtrip_string ]) ]
