test/test_expr.ml: Alcotest Array Bitvec List QCheck QCheck_alcotest Rtl String
