test/test_verifiable.mli:
