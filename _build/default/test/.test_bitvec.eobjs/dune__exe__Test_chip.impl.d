test/test_chip.ml: Alcotest Bitvec Chip Lazy List Mc Queue Random Rtl Sim String Synth Verifiable
