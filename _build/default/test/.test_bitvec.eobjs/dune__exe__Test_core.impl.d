test/test_core.ml: Alcotest Bitvec Chip Core Format Lazy List Mc Psl Rtl Sim String Verifiable
