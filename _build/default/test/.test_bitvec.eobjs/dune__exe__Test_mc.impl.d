test/test_mc.ml: Alcotest Bdd Bitvec Chip Fun Hashtbl List Mc Printf Psl QCheck QCheck_alcotest Queue Random Rtl Sim String Verifiable
