test/test_psl.mli:
