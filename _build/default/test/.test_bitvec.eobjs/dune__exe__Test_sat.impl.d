test/test_sat.ml: Alcotest Array Cnf Dimacs Format List QCheck QCheck_alcotest Rtl Solver Tseitin
