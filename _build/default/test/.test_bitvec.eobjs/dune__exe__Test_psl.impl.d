test/test_psl.ml: Alcotest Array Bitvec Bool Fun List Printf Psl QCheck QCheck_alcotest Rtl Sim String
