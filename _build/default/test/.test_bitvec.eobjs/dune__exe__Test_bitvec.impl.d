test/test_bitvec.ml: Alcotest Array Bitvec List QCheck QCheck_alcotest
