test/test_bdd.ml: Alcotest Bdd Format List Pobdd QCheck QCheck_alcotest
