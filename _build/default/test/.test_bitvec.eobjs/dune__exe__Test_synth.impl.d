test/test_synth.ml: Alcotest Bitvec Chip Format List Random Rtl Sim String Synth Verifiable
