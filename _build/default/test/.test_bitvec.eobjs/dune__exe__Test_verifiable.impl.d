test/test_verifiable.ml: Alcotest Bitvec Chip List Mc Printf Psl QCheck QCheck_alcotest Random Result Rtl Sim Verifiable
