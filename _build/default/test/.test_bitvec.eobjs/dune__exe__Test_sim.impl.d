test/test_sim.ml: Alcotest Bitvec List Random Rtl Sim String
