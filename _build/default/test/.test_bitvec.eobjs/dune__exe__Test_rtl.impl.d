test/test_rtl.ml: Alcotest Bitvec Chip List Random Rtl Sim String
