(* PSL layer: lexing, parsing (including the paper's verbatim figures),
   printing round-trips, safety classification, and monitor semantics
   checked against a reference interpreter over random traces. *)

module A = Psl.Ast
module E = Rtl.Expr
module M = Rtl.Mdl

(* --- parsing the paper's figures verbatim --- *)

let figure2 =
  "vunit M_edetect (M) { // check error detection ability\n\
  \     property pCheck1 = always ((EC & ~(^ED)) -> next HE);\n\
  \     assert   pCheck1;  //   -- check it formally!\n\
  \     property pCheck2 = always ( ~(^I) -> next HE);\n\
  \     assert   pCheck2;\n\
   }"

let figure3 =
  "vunit M_soundness (M) { // soundness check\n\
  \     property pIntegrityI     = always ( ^I );\n\
  \     assume   pIntegrityI;\n\
  \     property pNoErrInjection = always ( ~EC );\n\
  \     assume   pNoErrInjection;\n\
  \     property pNoError        = never  ( HE );\n\
  \     assert   pNoError;\n\
   }"

let figure4 =
  "vunit M_integrity (M) { // integrity check\n\
  \     property pIntegrityI     = always ( ^I );\n\
  \     assume   pIntegrityI;\n\
  \     property pNoErrInjection = always ( ~EC );\n\
  \     assume   pNoErrInjection;\n\
  \     property pIntegrityO     = always ( ^O );\n\
  \     assert   pIntegrityO;\n\
   }"

let test_parse_figures () =
  List.iter
    (fun (name, src, expected_asserts, expected_assumes) ->
      match Psl.Parser.vunits_of_string src with
      | [ v ] ->
        Alcotest.(check int) (name ^ " asserts") expected_asserts
          (List.length (A.asserts v));
        Alcotest.(check int) (name ^ " assumes") expected_assumes
          (List.length (A.assumes v));
        Alcotest.(check string) (name ^ " bound module") "M" v.A.bound_module
      | vs -> Alcotest.failf "%s: expected 1 vunit, got %d" name (List.length vs))
    [ ("figure2", figure2, 2, 0); ("figure3", figure3, 1, 2);
      ("figure4", figure4, 1, 2) ]

let test_parse_postfix_caret () =
  (* the paper writes "I^" for XOR reduction *)
  let a = Psl.Parser.fl_of_string "always ( I^ )" in
  let b = Psl.Parser.fl_of_string "always ( ^I )" in
  Alcotest.(check bool) "postfix equals prefix" true (a = b)

let test_parse_operators () =
  let f = Psl.Parser.fl_of_string "always ((EC & ~(^ED)) -> next HE)" in
  (match f with
   | A.Always (A.Implies (A.Bool _, A.Next (A.Bool _))) -> ()
   | _ -> Alcotest.fail "unexpected shape");
  let g = Psl.Parser.fl_of_string "next[3] (HE)" in
  (match g with
   | A.Next_n (3, A.Bool _) -> ()
   | _ -> Alcotest.fail "next[3] shape");
  let u = Psl.Parser.fl_of_string "BUSY until DONE" in
  (match u with
   | A.Until (A.Bool _, A.Bool _) -> ()
   | _ -> Alcotest.fail "until shape");
  let sere = Psl.Parser.fl_of_string "always ({REQ; BUSY[*2]; DONE} |-> GRANT)" in
  (match sere with
   | A.Always (A.Seq_implies (s, true, A.Bool _)) ->
     Alcotest.(check int) "sere length" 4 (A.sere_length s)
   | _ -> Alcotest.fail "sere shape");
  let sere2 = Psl.Parser.fl_of_string "{REQ} |=> ACK" in
  (match sere2 with
   | A.Seq_implies (s, false, A.Bool _) ->
     Alcotest.(check int) "single-element sere" 1 (A.sere_length s)
   | _ -> Alcotest.fail "|=> shape");
  let c = Psl.Parser.fl_of_string "CNT == 4'b0101" in
  match c with
  | A.Bool (E.Binop (E.Eq, _, E.Const bv)) ->
    Alcotest.(check int) "const value" 5 (Bitvec.to_int bv)
  | _ -> Alcotest.fail "comparison shape"

let test_parse_errors () =
  let expect_error src =
    match Psl.Parser.fl_of_string src with
    | _ -> Alcotest.failf "expected parse error for %s" src
    | exception Psl.Parser.Error _ -> ()
  in
  expect_error "always (";
  expect_error "42";
  expect_error "a &&";
  expect_error "4'b01"  (* width mismatch between 4 and 2 digits *)

let test_print_roundtrip () =
  List.iter
    (fun src ->
      match Psl.Parser.vunits_of_string src with
      | [ v ] ->
        let printed = Psl.Print.vunit_to_string v in
        (match Psl.Parser.vunits_of_string printed with
         | [ v' ] ->
           Alcotest.(check bool)
             ("roundtrip " ^ v.A.vunit_name)
             true
             (List.map (fun (d : A.decl) -> (d.A.prop_name, d.A.body)) v.A.decls
              = List.map (fun (d : A.decl) -> (d.A.prop_name, d.A.body)) v'.A.decls)
         | _ -> Alcotest.fail "reprint did not parse to one vunit")
      | _ -> Alcotest.fail "expected one vunit")
    [ figure2; figure3; figure4;
      "vunit s (M) { property p = always ({A; B[*3]} |=> (C -> next D)); \
       assert p; }" ]

let test_safety_classification () =
  let safety = [ "always (^I)"; "never HE"; "always (EC -> next HE)";
                 "BUSY until DONE"; "always ({REQ; ACK} |-> GRANT)" ] in
  let not_safety = [ "eventually! DONE" ] in
  List.iter
    (fun src ->
      Alcotest.(check bool) (src ^ " is safety") true
        (A.is_safety (Psl.Parser.fl_of_string src)))
    safety;
  List.iter
    (fun src ->
      Alcotest.(check bool) (src ^ " is liveness") false
        (A.is_safety (Psl.Parser.fl_of_string src)))
    not_safety

let test_signals_and_size () =
  let f = Psl.Parser.fl_of_string "always ((EC & ~(^ED)) -> next HE)" in
  Alcotest.(check (list string)) "signals" [ "EC"; "ED"; "HE" ] (A.signals f);
  Alcotest.(check bool) "size positive" true (A.size f > 0)

(* --- monitor semantics vs a reference trace interpreter --- *)

(* DUT: a passthrough with inputs a, b (1 bit each) so traces are just
   sequences of input pairs; monitor failure is compared against a direct
   interpretation of the formula over the trace *)
let passthrough () =
  let m = M.create "dut" in
  let m = M.add_input m "a" 1 in
  let m = M.add_input m "b" 1 in
  let m = M.add_output m "o" 1 in
  M.add_assign m "o" E.(var "a" &: var "b")

(* reference semantics of the supported safety subset over a finite trace:
   [holds trace t f] with weak interpretation at the trace end (obligations
   beyond the end are vacuously true, matching the monitor which simply has
   not fired yet) *)
let rec holds trace t (f : A.fl) =
  let n = Array.length trace in
  if t >= n then true
  else
    match f with
    | A.Bool e ->
      let a, b = trace.(t) in
      let env name =
        match name with
        | "a" -> Bitvec.of_bool a
        | "b" -> Bitvec.of_bool b
        | "o" -> Bitvec.of_bool (a && b)
        | _ -> Alcotest.failf "unexpected signal %s" name
      in
      Bitvec.get (E.eval ~env e) 0
    | A.Not f -> not (holds trace t f)
    | A.And (f, g) -> holds trace t f && holds trace t g
    | A.Or (f, g) -> holds trace t f || holds trace t g
    | A.Implies (f, g) -> (not (holds trace t f)) || holds trace t g
    | A.Next f -> holds trace (t + 1) f
    | A.Next_n (k, f) -> holds trace (t + k) f
    | A.Always f ->
      let rec all k = k >= n || (holds trace k f && all (k + 1)) in
      all t
    | A.Never f ->
      let rec none k = k >= n || ((not (holds trace k f)) && none (k + 1)) in
      none t
    | A.Until (p, q) ->
      (* weak until *)
      let rec go k =
        if k >= n then true
        else if holds trace k q then true
        else holds trace k p && go (k + 1)
      in
      go t
    | A.Seq_implies (sere, overlap, f) ->
      let bs = A.expand_sere sere in
      let nb = List.length bs in
      if t + nb > n then true
      else if
        List.for_all2
          (fun i b -> holds trace (t + i) (A.Bool b))
          (List.init nb Fun.id) bs
      then holds trace (t + nb - 1 + if overlap then 0 else 1) f
      else true
    | A.Eventually _ -> true

(* formulas in the monitorable subset over signals a/b/o *)
let gen_safety_formula =
  let open QCheck.Gen in
  let atom =
    oneofl
      [ A.Bool (E.var "a"); A.Bool (E.var "b"); A.Bool (E.var "o");
        A.Bool E.(!:(var "a")); A.Bool E.(var "a" &: var "b");
        A.Bool E.(var "a" |: var "b") ]
  in
  let boolish = atom in
  frequency
    [ (3, map (fun b -> A.Always b) boolish);
      (3,
       map2 (fun b c -> A.Always (A.Implies (b, A.Next c))) boolish boolish);
      (2,
       map2 (fun b c -> A.Always (A.Implies (b, A.Next_n (2, c)))) boolish
         boolish);
      (2, map (fun b -> A.Never b) boolish);
      (2, map2 (fun p q -> A.Until (p, q)) boolish boolish);
      (2, map2 (fun b c -> A.Always (A.Or (b, c))) boolish boolish);
      (2,
       map3
         (fun b c d ->
           let to_e x = match x with A.Bool e -> e | _ -> assert false in
           A.Always
             (A.Seq_implies
                (A.Sconcat (A.Sbool (to_e b), A.Srepeat (A.Sbool (to_e c), 2)),
                 true, d)))
         boolish boolish boolish);
      (1,
       map2
         (fun b d ->
           let to_e x = match x with A.Bool e -> e | _ -> assert false in
           A.Always (A.Seq_implies (A.Sbool (to_e b), false, d)))
         boolish boolish) ]

let arb_monitor_case =
  QCheck.make
    ~print:(fun (f, trace) ->
      Psl.Print.fl_to_string f ^ " on "
      ^ String.concat ""
          (List.map (fun (a, b) ->
               Printf.sprintf "(%d%d)" (Bool.to_int a) (Bool.to_int b))
             trace))
    QCheck.Gen.(
      pair gen_safety_formula (list_size (int_range 1 8) (pair bool bool)))

let prop_monitor_matches_reference =
  QCheck.Test.make ~name:"monitor agrees with reference semantics" ~count:400
    arb_monitor_case (fun (f, trace_list) ->
      let trace = Array.of_list trace_list in
      let inst =
        Psl.Monitor.instrument (passthrough ()) ~prefix:"mon" ~assert_:f
          ~assumes:[]
      in
      let nl =
        Rtl.Elaborate.run
          (Rtl.Design.of_modules [ inst.Psl.Monitor.mdl ])
          ~top:"dut"
      in
      let sim = Sim.Simulator.create nl in
      Sim.Simulator.reset sim;
      let fired = ref false in
      Array.iter
        (fun (a, b) ->
          Sim.Simulator.drive_all sim
            [ ("a", Bitvec.of_bool a); ("b", Bitvec.of_bool b) ];
          Sim.Simulator.settle sim;
          if Sim.Simulator.peek_bit sim inst.Psl.Monitor.fail_signal then
            fired := true;
          Sim.Simulator.clock sim)
        trace;
      (* three independent verdicts must agree: the synthesized monitor, the
         local reference above, and the library interpreter *)
      let reference = holds trace 0 f in
      let recorded =
        List.map
          (fun (a, b) ->
            [ ("a", Bitvec.of_bool a); ("b", Bitvec.of_bool b);
              ("o", Bitvec.of_bool (a && b)) ])
          trace_list
      in
      let interp = Psl.Interp.holds_recorded recorded f in
      !fired = not reference && interp = reference)

let test_monitor_rejects_liveness () =
  let f = Psl.Parser.fl_of_string "eventually! DONE" in
  let m = M.add_input (M.create "d") "DONE" 1 in
  Alcotest.(check bool) "liveness rejected" true
    (match Psl.Monitor.instrument m ~prefix:"mon" ~assert_:f ~assumes:[] with
     | _ -> false
     | exception Psl.Monitor.Unsupported _ -> true)

let test_monitor_width_check () =
  let m = M.add_input (M.create "d") "W" 4 in
  Alcotest.(check bool) "wide boolean rejected" true
    (match
       Psl.Monitor.instrument m ~prefix:"mon"
         ~assert_:(A.Always (A.Bool (E.var "W")))
         ~assumes:[]
     with
     | _ -> false
     | exception Psl.Monitor.Unsupported _ -> true)

let test_assume_tracking () =
  (* assert never o, assume never a: driving a=1,b=1 violates the assumption
     in the same cycle the failure occurs, so the invariant wire stays ok *)
  let inst =
    Psl.Monitor.instrument (passthrough ()) ~prefix:"mon"
      ~assert_:(Psl.Parser.fl_of_string "never o")
      ~assumes:[ Psl.Parser.fl_of_string "never a" ]
  in
  let nl =
    Rtl.Elaborate.run (Rtl.Design.of_modules [ inst.Psl.Monitor.mdl ]) ~top:"dut"
  in
  let sim = Sim.Simulator.create nl in
  Sim.Simulator.reset sim;
  Sim.Simulator.drive_all sim
    [ ("a", Bitvec.of_bool true); ("b", Bitvec.of_bool true) ];
  Sim.Simulator.settle sim;
  Alcotest.(check bool) "fail fires" true
    (Sim.Simulator.peek_bit sim inst.Psl.Monitor.fail_signal);
  Alcotest.(check bool) "assume violation tracked" true
    (Sim.Simulator.peek_bit sim inst.Psl.Monitor.assume_fail_now);
  Alcotest.(check bool) "invariant still ok" true
    (Sim.Simulator.peek_bit sim inst.Psl.Monitor.invariant_ok)


(* ---- parse/print fuzzing over canonical formulas ----

   The parser folds boolean-layer operators into Bool leaves, so the
   generator produces formulas already in that canonical form; printing and
   reparsing must then be the identity. *)

let gen_canonical_fl =
  let open QCheck.Gen in
  let bool_leaf =
    oneofl
      [ A.Bool (E.var "a"); A.Bool E.(!:(var "b"));
        A.Bool E.(var "a" &: var "b"); A.Bool (E.red_xor (E.var "c"));
        A.Bool E.(var "c" ==: of_int ~width:3 5);
        A.Bool E.(bit (var "c") 1) ]
  in
  let expr_of = function A.Bool e -> e | _ -> assert false in
  let gen_sere =
    list_size (int_range 1 3)
      (pair bool_leaf (int_range 1 3))
    >|= fun items ->
    match
      List.map
        (fun (b, n) ->
          if n = 1 then A.Sbool (expr_of b) else A.Srepeat (A.Sbool (expr_of b), n))
        items
    with
    | [] -> assert false
    | first :: rest ->
      List.fold_left (fun acc i -> A.Sconcat (acc, i)) first rest
  in
  fix
    (fun self depth ->
      if depth = 0 then bool_leaf
      else
        frequency
          [ (2, bool_leaf);
            (2, map (fun f -> A.Always f) (self (depth - 1)));
            (1, map (fun b -> A.Never b) bool_leaf);
            (2, map (fun f -> A.Next f) (self (depth - 1)));
            (1,
             map2 (fun n f -> A.Next_n (n, f)) (int_range 2 4) (self (depth - 1)));
            (1, map2 (fun b q -> A.Until (b, q)) bool_leaf bool_leaf);
            (2, map2 (fun b f -> A.Implies (b, f)) bool_leaf (self (depth - 1)));
            (1,
             map3
               (fun s o f -> A.Seq_implies (s, o, f))
               gen_sere bool (self (depth - 1)));
            (1, map (fun f -> A.Eventually f) (self (depth - 1))) ])
    3

let prop_parse_print_roundtrip =
  QCheck.Test.make ~name:"parse(print(fl)) = fl" ~count:500
    (QCheck.make ~print:Psl.Print.fl_to_string gen_canonical_fl)
    (fun f ->
      let printed = Psl.Print.fl_to_string f in
      match Psl.Parser.fl_of_string printed with
      | parsed -> parsed = f
      | exception Psl.Parser.Error (msg, pos) ->
        QCheck.Test.fail_reportf "parse error at %d on %S: %s" pos printed msg)

let () =
  Alcotest.run "psl"
    [ ("parser",
       [ Alcotest.test_case "paper figures" `Quick test_parse_figures;
         Alcotest.test_case "postfix caret" `Quick test_parse_postfix_caret;
         Alcotest.test_case "operators" `Quick test_parse_operators;
         Alcotest.test_case "errors" `Quick test_parse_errors;
         Alcotest.test_case "print roundtrip" `Quick test_print_roundtrip;
         Alcotest.test_case "safety subset" `Quick test_safety_classification;
         Alcotest.test_case "signals and size" `Quick test_signals_and_size ]);
      ("fuzz", [ QCheck_alcotest.to_alcotest prop_parse_print_roundtrip ]);
      ("monitor",
       [ Alcotest.test_case "rejects liveness" `Quick test_monitor_rejects_liveness;
         Alcotest.test_case "width check" `Quick test_monitor_width_check;
         Alcotest.test_case "assume tracking" `Quick test_assume_tracking;
         QCheck_alcotest.to_alcotest prop_monitor_matches_reference ]) ]
