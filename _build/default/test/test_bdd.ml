(* ROBDD engine: canonicity, boolean algebra, quantifiers, composition,
   counting — checked against brute-force truth tables. *)

let nvars = 6

(* a random boolean-function AST we can both evaluate and build as a BDD *)
type form =
  | Var of int
  | Not of form
  | And of form * form
  | Or of form * form
  | Xor of form * form

let rec eval_form assign = function
  | Var i -> assign i
  | Not f -> not (eval_form assign f)
  | And (f, g) -> eval_form assign f && eval_form assign g
  | Or (f, g) -> eval_form assign f || eval_form assign g
  | Xor (f, g) -> eval_form assign f <> eval_form assign g

let rec build man = function
  | Var i -> Bdd.var man i
  | Not f -> Bdd.not_ man (build man f)
  | And (f, g) -> Bdd.and_ man (build man f) (build man g)
  | Or (f, g) -> Bdd.or_ man (build man f) (build man g)
  | Xor (f, g) -> Bdd.xor man (build man f) (build man g)

let rec pp_form ppf = function
  | Var i -> Format.fprintf ppf "v%d" i
  | Not f -> Format.fprintf ppf "!%a" pp_form f
  | And (f, g) -> Format.fprintf ppf "(%a&%a)" pp_form f pp_form g
  | Or (f, g) -> Format.fprintf ppf "(%a|%a)" pp_form f pp_form g
  | Xor (f, g) -> Format.fprintf ppf "(%a^%a)" pp_form f pp_form g

let gen_form =
  let open QCheck.Gen in
  fix
    (fun self depth ->
      if depth = 0 then map (fun i -> Var i) (int_range 0 (nvars - 1))
      else
        frequency
          [ (2, map (fun i -> Var i) (int_range 0 (nvars - 1)));
            (2, map2 (fun a b -> And (a, b)) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun a b -> Or (a, b)) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun a b -> Xor (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map (fun a -> Not a) (self (depth - 1))) ])
    4

let arb_form = QCheck.make ~print:(Format.asprintf "%a" pp_form) gen_form

let assignments =
  List.init (1 lsl nvars) (fun mask i -> mask lsr i land 1 = 1)

let semantically_equal f g =
  List.for_all (fun a -> eval_form a f = eval_form a g) assignments

let test_terminals () =
  let man = Bdd.create ~nvars () in
  Alcotest.(check bool) "one" true (Bdd.is_one (Bdd.one man));
  Alcotest.(check bool) "zero" true (Bdd.is_zero (Bdd.zero man));
  Alcotest.(check bool) "not one" true (Bdd.is_zero (Bdd.not_ man (Bdd.one man)));
  let v = Bdd.var man 0 in
  Alcotest.(check bool) "v & !v" true
    (Bdd.is_zero (Bdd.and_ man v (Bdd.nvar man 0)));
  Alcotest.(check bool) "v | !v" true
    (Bdd.is_one (Bdd.or_ man v (Bdd.nvar man 0)));
  Alcotest.(check bool) "canonicity" true
    (Bdd.equal (Bdd.and_ man v (Bdd.var man 1)) (Bdd.and_ man (Bdd.var man 1) v))

let test_quantifiers () =
  let man = Bdd.create ~nvars () in
  let v0 = Bdd.var man 0 and v1 = Bdd.var man 1 in
  let f = Bdd.and_ man v0 v1 in
  Alcotest.(check bool) "exists x0 (x0&x1) = x1" true
    (Bdd.equal (Bdd.exists man [ 0 ] f) v1);
  Alcotest.(check bool) "forall x0 (x0&x1) = 0" true
    (Bdd.is_zero (Bdd.forall man [ 0 ] f));
  let g = Bdd.or_ man v0 v1 in
  Alcotest.(check bool) "forall x0 (x0|x1) = x1" true
    (Bdd.equal (Bdd.forall man [ 0 ] g) v1);
  Alcotest.(check bool) "and_exists = exists of and" true
    (Bdd.equal (Bdd.and_exists man [ 0 ] v0 g)
       (Bdd.exists man [ 0 ] (Bdd.and_ man v0 g)))

let test_compose () =
  let man = Bdd.create ~nvars () in
  let v1 = Bdd.var man 1 and v2 = Bdd.var man 2 in
  let f = Bdd.xor man (Bdd.var man 0) v1 in
  let sub v = if v = 0 then Some (Bdd.and_ man v2 v1) else None in
  let composed = Bdd.vector_compose man sub f in
  let expected = Bdd.xor man (Bdd.and_ man v2 v1) v1 in
  Alcotest.(check bool) "compose" true (Bdd.equal composed expected)

let test_counting () =
  let man = Bdd.create ~nvars () in
  let v0 = Bdd.var man 0 and v1 = Bdd.var man 1 in
  Alcotest.(check (float 0.01)) "sat_count var" (2.0 ** 5.0)
    (Bdd.sat_count man v0);
  Alcotest.(check (float 0.01)) "sat_count and" (2.0 ** 4.0)
    (Bdd.sat_count man (Bdd.and_ man v0 v1));
  Alcotest.(check (float 0.01)) "sat_count one" (2.0 ** 6.0)
    (Bdd.sat_count man (Bdd.one man))

let test_any_sat () =
  let man = Bdd.create ~nvars () in
  let f = Bdd.and_ man (Bdd.var man 1) (Bdd.nvar man 3) in
  let cube = Bdd.any_sat man f in
  Alcotest.(check bool) "assignment satisfies" true
    (Bdd.eval man
       (fun v -> match List.assoc_opt v cube with Some b -> b | None -> false)
       f);
  Alcotest.(check bool) "zero raises" true
    (match Bdd.any_sat man (Bdd.zero man) with
     | _ -> false
     | exception Not_found -> true)

let test_node_limit () =
  let man = Bdd.create ~node_limit:10 ~nvars () in
  Alcotest.(check bool) "limit fires" true
    (match
       List.fold_left
         (fun acc i -> Bdd.xor man acc (Bdd.var man i))
         (Bdd.zero man)
         [ 0; 1; 2; 3; 4; 5 ]
     with
     | _ -> false
     | exception Bdd.Node_limit -> true)

let test_restrict_support () =
  let man = Bdd.create ~nvars () in
  let f = Bdd.xor man (Bdd.var man 0) (Bdd.var man 2) in
  Alcotest.(check (list int)) "support" [ 0; 2 ] (Bdd.support man f);
  let r = Bdd.restrict man 0 true f in
  Alcotest.(check bool) "restrict" true (Bdd.equal r (Bdd.nvar man 2));
  Alcotest.(check (list int)) "support after restrict" [ 2 ] (Bdd.support man r)

let test_fold_paths () =
  let man = Bdd.create ~nvars () in
  let f = Bdd.or_ man (Bdd.var man 0) (Bdd.var man 1) in
  let paths = Bdd.fold_paths man f ~init:0 ~f:(fun acc _ -> acc + 1) in
  Alcotest.(check int) "two 1-paths" 2 paths

(* properties against truth tables *)

let prop_build_correct =
  QCheck.Test.make ~name:"BDD agrees with truth table" ~count:300 arb_form
    (fun form ->
      let man = Bdd.create ~nvars () in
      let b = build man form in
      List.for_all (fun a -> Bdd.eval man a b = eval_form a form) assignments)

let prop_canonical =
  QCheck.Test.make ~name:"semantic equality iff same node" ~count:200
    (QCheck.pair arb_form arb_form) (fun (f, g) ->
      let man = Bdd.create ~nvars () in
      let bf = build man f and bg = build man g in
      Bdd.equal bf bg = semantically_equal f g)

let prop_exists_correct =
  QCheck.Test.make ~name:"exists quantification" ~count:200
    (QCheck.pair arb_form (QCheck.int_bound (nvars - 1))) (fun (f, v) ->
      let man = Bdd.create ~nvars () in
      let b = Bdd.exists man [ v ] (build man f) in
      List.for_all
        (fun a ->
          let expected =
            eval_form (fun i -> if i = v then false else a i) f
            || eval_form (fun i -> if i = v then true else a i) f
          in
          Bdd.eval man a b = expected)
        assignments)

let prop_sat_count =
  QCheck.Test.make ~name:"sat_count equals truth-table count" ~count:200
    arb_form (fun f ->
      let man = Bdd.create ~nvars () in
      let b = build man f in
      let expected =
        List.length (List.filter (fun a -> eval_form a f) assignments)
      in
      abs_float (Bdd.sat_count man b -. float_of_int expected) < 0.5)

let prop_and_exists_correct =
  QCheck.Test.make ~name:"and_exists is relational product" ~count:150
    (QCheck.pair arb_form arb_form) (fun (f, g) ->
      let man = Bdd.create ~nvars () in
      let bf = build man f and bg = build man g in
      Bdd.equal
        (Bdd.and_exists man [ 0; 2; 4 ] bf bg)
        (Bdd.exists man [ 0; 2; 4 ] (Bdd.and_ man bf bg)))

(* POBDD layer *)

let test_pobdd_roundtrip () =
  let man = Bdd.create ~nvars () in
  let f =
    Bdd.or_ man
      (Bdd.and_ man (Bdd.var man 0) (Bdd.var man 2))
      (Bdd.and_ man (Bdd.nvar man 0) (Bdd.var man 3))
  in
  let windows = Pobdd.windows man [ 0; 1 ] in
  Alcotest.(check int) "window count" 4 (List.length windows);
  let parts = Pobdd.decompose man ~windows f in
  Alcotest.(check bool) "recombine restores" true
    (Bdd.equal (Pobdd.recombine man parts) f);
  Alcotest.(check bool) "peak below total" true
    (Pobdd.peak_size man parts <= Pobdd.total_size man parts)

let prop_pobdd_partition =
  QCheck.Test.make ~name:"POBDD decompose/recombine roundtrip" ~count:100
    arb_form (fun form ->
      let man = Bdd.create ~nvars () in
      let f = build man form in
      let windows = Pobdd.windows man [ 1; 3 ] in
      let parts = Pobdd.decompose man ~windows f in
      Bdd.equal (Pobdd.recombine man parts) f)

let prop_pobdd_windows_disjoint =
  QCheck.Test.make ~name:"POBDD windows partition the space" ~count:50
    (QCheck.make (QCheck.Gen.return ())) (fun () ->
      let man = Bdd.create ~nvars () in
      let windows = Pobdd.windows man [ 0; 2; 4 ] in
      let union =
        List.fold_left (fun acc w -> Bdd.or_ man acc w) (Bdd.zero man) windows
      in
      let pairwise_disjoint =
        List.for_all
          (fun w1 ->
            List.for_all
              (fun w2 ->
                Bdd.equal w1 w2 || Bdd.is_zero (Bdd.and_ man w1 w2))
              windows)
          windows
      in
      Bdd.is_one union && pairwise_disjoint)

let test_choose_splitting () =
  let man = Bdd.create ~nvars () in
  let f = Bdd.xor man (Bdd.var man 0) (Bdd.var man 4) in
  let vars = Pobdd.choose_splitting_vars man ~candidates:[ 0; 1; 4 ] ~k:2 f in
  Alcotest.(check int) "asked for two" 2 (List.length vars)

let () =
  Alcotest.run "bdd"
    [ ("unit",
       [ Alcotest.test_case "terminals and algebra" `Quick test_terminals;
         Alcotest.test_case "quantifiers" `Quick test_quantifiers;
         Alcotest.test_case "vector compose" `Quick test_compose;
         Alcotest.test_case "sat counting" `Quick test_counting;
         Alcotest.test_case "any_sat" `Quick test_any_sat;
         Alcotest.test_case "node limit" `Quick test_node_limit;
         Alcotest.test_case "restrict and support" `Quick test_restrict_support;
         Alcotest.test_case "fold paths" `Quick test_fold_paths ]);
      ("pobdd",
       [ Alcotest.test_case "roundtrip" `Quick test_pobdd_roundtrip;
         Alcotest.test_case "splitting vars" `Quick test_choose_splitting;
         QCheck_alcotest.to_alcotest prop_pobdd_partition;
         QCheck_alcotest.to_alcotest prop_pobdd_windows_disjoint ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_build_correct; prop_canonical; prop_exists_correct;
           prop_sat_count; prop_and_exists_correct ]) ]
