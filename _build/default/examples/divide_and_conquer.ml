(* Figure 7: rescuing a timed-out property by divide and conquer.

   The merge module staging three parity-protected streams through
   checkpoint registers has an output-integrity property whose monolithic
   verification exceeds the BDD node budget (the paper's "time-out").
   Partitioning at the checkpoints A', B', C' yields four small properties
   that each verify comfortably inside the same budget.

   Run with: dune exec examples/divide_and_conquer.exe *)

let () =
  Printf.printf
    "Figure 7 reproduction: payload 16 bits per stream, node budget 100k\n\n";
  let rows = Core.Report.fig7 ~payload_width:16 ~node_limit:100_000 () in
  Format.printf "%a" Core.Report.pp_fig7 rows;
  Printf.printf
    "\nThe monolithic property exhausts the budget; each partitioned piece\n\
     verifies with a fraction of the nodes because its cone of influence\n\
     stops at the parity checkpoints (assume-guarantee over the cut).\n";

  (* show the partition artifacts themselves *)
  let leaf = Chip.Archetype.merge ~name:"merge_demo" ~payload_width:16 () in
  let info = Verifiable.Transform.apply leaf.Chip.Archetype.mdl in
  let spec =
    { Verifiable.Propgen.he = leaf.Chip.Archetype.he;
      he_map = leaf.Chip.Archetype.he_map;
      parity_inputs = leaf.Chip.Archetype.parity_inputs;
      parity_outputs = leaf.Chip.Archetype.parity_outputs; extra = [] }
  in
  let plan =
    Verifiable.Partition.partition info spec ~output:"OUT"
      ~cuts:[ "chk0"; "chk1"; "chk2" ]
  in
  Printf.printf "\noriginal (times out):\n%s"
    (Psl.Print.vunit_to_string plan.Verifiable.Partition.original);
  List.iter
    (fun (cut, v) ->
      Printf.printf "\nsub-property at checkpoint %s:\n%s" cut
        (Psl.Print.vunit_to_string v))
    plan.Verifiable.Partition.sub_vunits;
  Printf.printf "\nfinal piece (checked on the cut module):\n%s"
    (Psl.Print.vunit_to_string plan.Verifiable.Partition.final_vunit)
