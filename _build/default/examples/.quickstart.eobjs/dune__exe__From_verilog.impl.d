examples/from_verilog.ml: List Mc Printf Psl Rtl String Verifiable
