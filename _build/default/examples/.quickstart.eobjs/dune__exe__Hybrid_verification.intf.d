examples/hybrid_verification.mli:
