examples/coverage_gap.ml: Chip Format List Mc Printf Random Rtl Sim Unix Verifiable
