examples/secded_upgrade.mli:
