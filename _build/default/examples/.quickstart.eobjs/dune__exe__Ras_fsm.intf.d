examples/ras_fsm.mli:
