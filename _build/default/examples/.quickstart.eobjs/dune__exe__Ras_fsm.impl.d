examples/ras_fsm.ml: Bitvec Format List Mc Printf Psl Rtl Sim String Verifiable
