examples/quickstart.ml: Chip Core Format List Mc Printf Rtl Verifiable
