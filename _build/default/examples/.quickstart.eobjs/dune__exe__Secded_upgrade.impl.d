examples/secded_upgrade.ml: Bitvec Chip List Mc Printf Rtl Verifiable
