examples/from_verilog.mli:
