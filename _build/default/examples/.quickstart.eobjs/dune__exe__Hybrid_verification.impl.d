examples/hybrid_verification.ml: Chip List Mc Printf Psl Rtl Sim Unix Verifiable
