examples/quickstart.mli:
