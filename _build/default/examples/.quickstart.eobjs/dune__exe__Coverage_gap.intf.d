examples/coverage_gap.mli:
