examples/divide_and_conquer.ml: Chip Core Format List Printf Psl Verifiable
