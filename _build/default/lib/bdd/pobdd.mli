(** Partitioned reduced ordered BDDs (POBDDs).

    Following Jain's partitioning approach (the paper's in-house engine,
    reference [10]), a boolean function is represented as a list of
    [(window, part)] pairs where the windows are disjoint cubes over chosen
    splitting variables and [part] is the function conjoined with its
    window. Keeping each partition separate bounds the peak BDD size: the
    monolithic BDD is never built. *)

type partition = { window : Bdd.t; part : Bdd.t }
type t = partition list

val windows : Bdd.man -> int list -> Bdd.t list
(** [windows m vars] are the [2^|vars|] cubes over [vars], in increasing
    binary order. *)

val decompose : Bdd.man -> windows:Bdd.t list -> Bdd.t -> t
(** Constrain a function to each window. Empty partitions are kept (their
    [part] is the zero BDD) so partition indices stay aligned across
    iterations. *)

val recombine : Bdd.man -> t -> Bdd.t
(** Disjunction of all partitions (may be large — use for final answers and
    tests only). *)

val map : Bdd.man -> (Bdd.t -> Bdd.t) -> t -> t
(** Apply an image-style operation inside each partition, re-constraining the
    result to the partition's window. *)

val peak_size : Bdd.man -> t -> int
(** Largest single partition size in nodes — the quantity partitioning is
    meant to bound. *)

val total_size : Bdd.man -> t -> int
val is_zero : t -> bool
val equal : Bdd.man -> t -> t -> bool

val choose_splitting_vars : Bdd.man -> candidates:int list -> k:int -> Bdd.t -> int list
(** Pick [k] splitting variables greedily: at each step choose the candidate
    whose two cofactors have the smallest combined size (the classic POBDD
    heuristic for balanced, compact partitions). *)
