type partition = { window : Bdd.t; part : Bdd.t }
type t = partition list

let windows m vars =
  let rec go = function
    | [] -> [ Bdd.one m ]
    | v :: rest ->
      let sub = go rest in
      List.concat_map
        (fun w ->
          [ Bdd.and_ m (Bdd.nvar m v) w; Bdd.and_ m (Bdd.var m v) w ])
        sub
  in
  (* [go] puts the first variable as the most significant split *)
  go vars

let decompose m ~windows f =
  List.map (fun w -> { window = w; part = Bdd.and_ m w f }) windows

let recombine m t =
  List.fold_left (fun acc p -> Bdd.or_ m acc p.part) (Bdd.zero m) t

let map m f t =
  List.map (fun p -> { p with part = Bdd.and_ m p.window (f p.part) }) t

let peak_size m t =
  List.fold_left (fun acc p -> max acc (Bdd.size m p.part)) 0 t

let total_size m t =
  List.fold_left (fun acc p -> acc + Bdd.size m p.part) 0 t

let is_zero t = List.for_all (fun p -> Bdd.is_zero p.part) t

let equal _m a b =
  List.length a = List.length b
  && List.for_all2
       (fun p q -> Bdd.equal p.part q.part && Bdd.equal p.window q.window)
       a b

let choose_splitting_vars m ~candidates ~k f =
  let rec pick chosen remaining f n =
    if n = 0 || remaining = [] then List.rev chosen
    else begin
      let cost v =
        let lo = Bdd.restrict m v false f and hi = Bdd.restrict m v true f in
        Bdd.size m lo + Bdd.size m hi
      in
      let best =
        List.fold_left
          (fun acc v ->
            let c = cost v in
            match acc with
            | Some (_, best_c) when best_c <= c -> acc
            | Some _ | None -> Some (v, c))
          None remaining
      in
      match best with
      | None -> List.rev chosen
      | Some (v, _) ->
        let remaining = List.filter (fun w -> w <> v) remaining in
        pick (v :: chosen) remaining f (n - 1)
    end
  in
  pick [] candidates f k
