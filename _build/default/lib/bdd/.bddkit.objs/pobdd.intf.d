lib/bdd/pobdd.mli: Bdd
