lib/bdd/pobdd.ml: Bdd List
