lib/bdd/bdd.mli:
