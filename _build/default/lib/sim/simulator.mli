(** Cycle-accurate simulation of elaborated netlists.

    A cycle proceeds as: drive inputs, settle combinational logic (one
    left-to-right pass over the levelized assigns), observe any signal, then
    clock the registers. [reset] puts every register at its reset value and
    zeroes the inputs. *)

type t

val create : Rtl.Netlist.t -> t
(** The netlist must already be levelized (as {!Rtl.Elaborate.run} returns)
    and valid. *)

val reset : t -> unit

val drive : t -> string -> Bitvec.t -> unit
(** Set a primary input for the current cycle. Raises [Invalid_argument] on
    unknown inputs or width mismatches. *)

val drive_all : t -> (string * Bitvec.t) list -> unit

val settle : t -> unit
(** Recompute all combinational signals from the current inputs and register
    values. *)

val peek : t -> string -> Bitvec.t
(** Value of any signal after the last [settle]/[clock]. Raises [Not_found]
    for undeclared signals. *)

val peek_bit : t -> string -> bool
(** [peek] for 1-bit signals. *)

val clock : t -> unit
(** Latch every register's next value (computed from the settled state) and
    advance the cycle counter; re-settles combinational logic. *)

val cycle : t -> (string * Bitvec.t) list -> unit
(** [drive_all]; [settle]; [clock] — one full cycle. *)

val cycle_count : t -> int
val netlist : t -> Rtl.Netlist.t
val inputs : t -> (string * int) list
