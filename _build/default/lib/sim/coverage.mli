(** Simulation coverage collection.

    The paper's motivation for formal verification is that the data-integrity
    checkpoints are "hard to validate thoroughly in conventional logic
    simulation"; this module makes that measurable. It collects, over a
    simulation run:

    - toggle coverage: every signal bit seen at both 0 and 1;
    - register-value coverage per (small) register: distinct values visited
      against the register's full value space;
    - checker coverage: which 1-bit watch signals ever fired. *)

type t

val create :
  ?value_track_max_width:int -> Simulator.t -> signals:string list -> t
(** Track the named signals. Registers/signals wider than
    [value_track_max_width] (default 12) get toggle coverage only. *)

val sample : t -> unit
(** Record the simulator's current (settled) values. *)

val cycles_sampled : t -> int

type signal_report = {
  signal : string;
  width : int;
  bits_toggled : int;  (** bits seen at both polarities *)
  values_seen : int option;  (** [None] when value tracking is off *)
  value_space : float;  (** 2^width *)
}

val report : t -> signal_report list

val toggle_coverage : t -> float
(** Fraction of tracked bits seen at both polarities, in [0..1]. *)

val activity : t -> string -> float
(** Average switching activity of one signal: bit transitions per bit per
    sampled cycle, in [0..1]. Raises [Not_found] for untracked signals. *)

val value_coverage : t -> string -> float
(** Visited fraction of one signal's value space. Raises [Not_found] if the
    signal is untracked, [Invalid_argument] if value tracking was disabled
    for it. *)

val pp : Format.formatter -> t -> unit
