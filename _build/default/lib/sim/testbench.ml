type watch_result = {
  signal : string;
  first_fire : int option;
  fire_count : int;
}

type run = { cycles_run : int; watches : watch_result list }

let run_random ?(stop_on_fire = false) sim profile ~cycles ~seed ~watch =
  let st = Random.State.make [| seed |] in
  Simulator.reset sim;
  let first = Hashtbl.create 7 in
  let count = Hashtbl.create 7 in
  List.iter (fun s -> Hashtbl.replace count s 0) watch;
  let fired_any = ref false in
  let cycles_run = ref 0 in
  let c = ref 0 in
  while !c < cycles && not (stop_on_fire && !fired_any) do
    Simulator.drive_all sim (Stimulus.draw profile st);
    Simulator.settle sim;
    List.iter
      (fun s ->
        if Simulator.peek_bit sim s then begin
          fired_any := true;
          if not (Hashtbl.mem first s) then Hashtbl.replace first s !c;
          Hashtbl.replace count s (Hashtbl.find count s + 1)
        end)
      watch;
    Simulator.clock sim;
    incr cycles_run;
    incr c
  done;
  let watches =
    List.map
      (fun s ->
        { signal = s; first_fire = Hashtbl.find_opt first s;
          fire_count = Hashtbl.find count s })
      watch
  in
  { cycles_run = !cycles_run; watches }

let find run s = List.find_opt (fun w -> w.signal = s) run.watches

let fired run s =
  match find run s with Some w -> w.fire_count > 0 | None -> false

let first_fire run s =
  match find run s with Some w -> w.first_fire | None -> None
