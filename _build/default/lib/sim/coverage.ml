type tracked = {
  signal : string;
  width : int;
  seen0 : bool array;
  seen1 : bool array;
  values : (Bitvec.t, unit) Hashtbl.t option;
  mutable prev : Bitvec.t option;
  mutable transitions : int;
}

type t = {
  sim : Simulator.t;
  tracked : tracked list;
  mutable cycles : int;
}

let create ?(value_track_max_width = 12) sim ~signals =
  let nl = Simulator.netlist sim in
  let tracked =
    List.map
      (fun signal ->
        let width = Rtl.Netlist.signal_width nl signal in
        { signal; width; seen0 = Array.make width false;
          seen1 = Array.make width false;
          values =
            (if width <= value_track_max_width then Some (Hashtbl.create 64)
             else None);
          prev = None; transitions = 0 })
      signals
  in
  { sim; tracked; cycles = 0 }

let sample t =
  t.cycles <- t.cycles + 1;
  List.iter
    (fun tr ->
      let v = Simulator.peek t.sim tr.signal in
      for i = 0 to tr.width - 1 do
        if Bitvec.get v i then tr.seen1.(i) <- true else tr.seen0.(i) <- true
      done;
      (match tr.prev with
       | Some p ->
         tr.transitions <- tr.transitions + Bitvec.popcount (Bitvec.logxor p v)
       | None -> ());
      tr.prev <- Some v;
      match tr.values with
      | Some tbl -> Hashtbl.replace tbl v ()
      | None -> ())
    t.tracked

let cycles_sampled t = t.cycles

type signal_report = {
  signal : string;
  width : int;
  bits_toggled : int;
  values_seen : int option;
  value_space : float;
}

let report t =
  List.map
    (fun (tr : tracked) ->
      let toggled = ref 0 in
      for i = 0 to tr.width - 1 do
        if tr.seen0.(i) && tr.seen1.(i) then incr toggled
      done;
      { signal = tr.signal; width = tr.width; bits_toggled = !toggled;
        values_seen = Option.map Hashtbl.length tr.values;
        value_space = 2.0 ** float_of_int tr.width })
    t.tracked

let toggle_coverage t =
  let bits, toggled =
    List.fold_left
      (fun (b, g) r -> (b + r.width, g + r.bits_toggled))
      (0, 0) (report t)
  in
  if bits = 0 then 1.0 else float_of_int toggled /. float_of_int bits

let value_coverage t signal =
  let tr = List.find (fun (tr : tracked) -> tr.signal = signal) t.tracked in
  match tr.values with
  | None -> invalid_arg "Coverage.value_coverage: value tracking disabled"
  | Some tbl ->
    float_of_int (Hashtbl.length tbl) /. (2.0 ** float_of_int tr.width)

let activity t signal =
  let tr = List.find (fun (tr : tracked) -> tr.signal = signal) t.tracked in
  if t.cycles <= 1 then 0.0
  else
    float_of_int tr.transitions
    /. float_of_int (tr.width * (t.cycles - 1))

let pp ppf t =
  Format.fprintf ppf "coverage after %d cycles:@." t.cycles;
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-24s %2d/%2d bits toggled%s@." r.signal
        r.bits_toggled r.width
        (match r.values_seen with
         | Some n ->
           Printf.sprintf ", %d/%.0f values (%.1f%%)" n r.value_space
             (100.0 *. float_of_int n /. r.value_space)
         | None -> ""))
    (report t);
  Format.fprintf ppf "  overall toggle coverage: %.1f%%@."
    (100.0 *. toggle_coverage t)
