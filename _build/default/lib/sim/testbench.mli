(** Random-simulation testbench: drive a netlist with a stimulus profile for
    N cycles and watch 1-bit signals (assertion-fail wires, HE reports). *)

type watch_result = {
  signal : string;
  first_fire : int option;  (** cycle index of the first cycle it was high *)
  fire_count : int;
}

type run = {
  cycles_run : int;
  watches : watch_result list;
}

val run_random :
  ?stop_on_fire:bool ->
  Simulator.t ->
  Stimulus.profile ->
  cycles:int ->
  seed:int ->
  watch:string list ->
  run
(** Resets the simulator, then per cycle: draw stimulus, settle, sample the
    watched signals, clock. With [stop_on_fire] the run ends at the first
    cycle any watched signal is high. *)

val fired : run -> string -> bool
val first_fire : run -> string -> int option
