lib/sim/stimulus.ml: Bitvec List Random Rtl String
