lib/sim/simulator.mli: Bitvec Rtl
