lib/sim/stimulus.mli: Bitvec Random Rtl
