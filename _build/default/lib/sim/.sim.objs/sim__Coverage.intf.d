lib/sim/coverage.mli: Format Simulator
