lib/sim/simulator.ml: Bitvec Hashtbl List Printf Rtl
