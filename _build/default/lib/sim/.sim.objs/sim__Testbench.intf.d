lib/sim/testbench.mli: Simulator Stimulus
