lib/sim/vcd.ml: Bitvec Buffer Char List Printf Rtl Simulator String
