lib/sim/testbench.ml: Hashtbl List Random Simulator Stimulus
