lib/sim/vcd.mli: Simulator
