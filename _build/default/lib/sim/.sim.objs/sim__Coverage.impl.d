lib/sim/coverage.ml: Array Bitvec Format Hashtbl List Option Printf Rtl Simulator
