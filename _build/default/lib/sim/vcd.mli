(** Value-change-dump (VCD) trace recording for waveform inspection. *)

type t

val create : Simulator.t -> signals:string list -> t
(** Record the named signals of the simulator's netlist. *)

val sample : t -> unit
(** Record the current (settled) values as one timestep. *)

val to_string : t -> string
(** Render the recorded trace as a VCD file. *)

val write_file : t -> string -> unit
