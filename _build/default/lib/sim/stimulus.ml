type gen = Random.State.t -> Bitvec.t

let constant v _ = v
let zero w = constant (Bitvec.zero w)
let uniform w st = Bitvec.random st w

let odd_parity w st =
  if w = 1 then Bitvec.of_int ~width:1 1
  else
    let body = Bitvec.random st (w - 1) in
    Bitvec.append_odd_parity body

let weighted_bool p st =
  Bitvec.of_bool (Random.State.float st 1.0 < p)

let choose values st =
  match values with
  | [] -> invalid_arg "Stimulus.choose: empty"
  | _ -> List.nth values (Random.State.int st (List.length values))

type profile = (string * gen) list

let draw profile st = List.map (fun (name, g) -> (name, g st)) profile

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let base_profile ?(parity_inputs = []) ~err_inj (nl : Rtl.Netlist.t) overrides =
  List.map
    (fun (name, w) ->
      match List.assoc_opt name overrides with
      | Some g -> (name, g)
      | None ->
        if contains_sub name "ERR_INJ" then (name, err_inj name w)
        else if List.mem name parity_inputs then (name, odd_parity w)
        else (name, uniform w))
    nl.Rtl.Netlist.inputs

let legal_profile ?parity_inputs ?(overrides = []) nl =
  base_profile ?parity_inputs ~err_inj:(fun _ w -> zero w) nl overrides

let injection_profile ?parity_inputs ~inject nl =
  base_profile ?parity_inputs
    ~err_inj:(fun name w ->
      match List.assoc_opt name inject with Some g -> g | None -> zero w)
    nl []
