module N = Rtl.Netlist

type t = {
  nl : N.t;
  values : (string, Bitvec.t) Hashtbl.t;
  mutable cycles : int;
}

let zero_signals t =
  List.iter
    (fun (name, w) -> Hashtbl.replace t.values name (Bitvec.zero w))
    (N.signals t.nl)

let create nl =
  (match N.validate nl with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Simulator.create: " ^ msg));
  let t = { nl; values = Hashtbl.create 197; cycles = 0 } in
  zero_signals t;
  t

let env t name =
  match Hashtbl.find_opt t.values name with
  | Some v -> v
  | None -> raise Not_found

let settle t =
  List.iter
    (fun (lhs, rhs) ->
      Hashtbl.replace t.values lhs (Rtl.Expr.eval ~env:(env t) rhs))
    t.nl.N.assigns

let reset t =
  zero_signals t;
  List.iter
    (fun (r : N.flat_reg) -> Hashtbl.replace t.values r.name r.reset_value)
    t.nl.N.regs;
  t.cycles <- 0;
  settle t

let drive t name v =
  match List.assoc_opt name t.nl.N.inputs with
  | None -> invalid_arg (Printf.sprintf "Simulator.drive: %s is not an input" name)
  | Some w ->
    if Bitvec.width v <> w then
      invalid_arg
        (Printf.sprintf "Simulator.drive: %s expects width %d, got %d" name w
           (Bitvec.width v));
    Hashtbl.replace t.values name v

let drive_all t l = List.iter (fun (name, v) -> drive t name v) l

let peek t name =
  match Hashtbl.find_opt t.values name with
  | Some v -> v
  | None -> raise Not_found

let peek_bit t name = Bitvec.get (peek t name) 0

let clock t =
  (* compute all next values from the settled state, then commit *)
  let nexts =
    List.map
      (fun (r : N.flat_reg) -> (r.name, Rtl.Expr.eval ~env:(env t) r.next))
      t.nl.N.regs
  in
  List.iter (fun (name, v) -> Hashtbl.replace t.values name v) nexts;
  t.cycles <- t.cycles + 1;
  settle t

let cycle t ins =
  drive_all t ins;
  settle t;
  clock t

let cycle_count t = t.cycles
let netlist t = t.nl
let inputs t = t.nl.N.inputs
