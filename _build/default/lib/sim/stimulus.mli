(** Stimulus generation for random simulation — the "conventional logic
    simulation" baseline of the paper. *)

type gen = Random.State.t -> Bitvec.t

val constant : Bitvec.t -> gen
val zero : int -> gen
val uniform : int -> gen
val odd_parity : int -> gen
(** Uniformly random legal codeword: any value whose total parity is odd
    (the low [w-1] bits are free, the top bit fixes the parity). *)

val weighted_bool : float -> gen
(** 1-bit generator with the given probability of 1. *)

val choose : Bitvec.t list -> gen

type profile = (string * gen) list
(** One generator per primary input. *)

val draw : profile -> Random.State.t -> (string * Bitvec.t) list

val legal_profile :
  ?parity_inputs:string list ->
  ?overrides:(string * gen) list ->
  Rtl.Netlist.t ->
  profile
(** The default "normal operation" stimulus: error-injection inputs (names
    containing [ERR_INJ]) are tied to zero, inputs listed in [parity_inputs]
    draw odd-parity codewords, everything else is uniform. [overrides] wins
    over all defaults. *)

val injection_profile :
  ?parity_inputs:string list ->
  inject:(string * gen) list ->
  Rtl.Netlist.t ->
  profile
(** Like {!legal_profile} but with chosen error-injection inputs driven by
    the supplied generators — simulation-side fault injection. *)
