(** SECDED (single-error-correct, double-error-detect) Hamming codes.

    The paper's chip protects state with odd parity — detection only. This
    module provides the standard upgrade path: extended Hamming codes, both
    as bit-vector reference functions (for testbenches and property-based
    tests) and as {!Rtl.Expr} circuit builders (for protected-register RTL).

    Layout of a codeword for [data_width] payload bits with [r] check bits:
    bits [0 .. data_width-1] carry the payload, bits
    [data_width .. data_width+r-1] the Hamming check bits, and the top bit
    the overall parity. *)

type scheme = private {
  data_width : int;
  check_bits : int;  (** Hamming check bits, excluding the overall parity *)
  code_width : int;  (** [data_width + check_bits + 1] *)
}

val scheme : data_width:int -> scheme
(** Raises [Invalid_argument] for non-positive widths. *)

(** {1 Reference (bit-vector) implementation} *)

val encode_bv : scheme -> Bitvec.t -> Bitvec.t

type decoded = {
  payload : Bitvec.t;
  corrected : bool;  (** a single-bit error was corrected *)
  uncorrectable : bool;  (** a double-bit error was detected *)
}

val decode_bv : scheme -> Bitvec.t -> decoded

(** {1 Circuit builders} *)

val encode : scheme -> Rtl.Expr.t -> Rtl.Expr.t
(** [encode s payload] builds the [code_width]-bit codeword expression. *)

val decode : scheme -> Rtl.Expr.t -> Rtl.Expr.t * Rtl.Expr.t * Rtl.Expr.t
(** [decode s word] is [(payload, corrected, uncorrectable)]: the corrected
    payload and the two error flags, as combinational logic. *)
