(** Divide-and-conquer property partitioning (Figure 7).

    When the output-data-integrity property of an output [D] that merges
    several parity-protected streams times out, cut the cone at intermediate
    parity checkpoints [A', B', C']:

    - one sub-property per cut: the cut signal keeps odd parity under the
      original input assumptions (checked on the original module, where
      cone-of-influence reduction shrinks the problem to the cut's fan-in);
    - one final property: [D] keeps odd parity *assuming* each cut signal
      does, checked on a module where the cuts are freed into primary inputs
      so the fan-in behind them disappears.

    Together the pieces imply the original property (standard
    assume-guarantee composition over a cut). *)

type plan = {
  original : Psl.Ast.vunit;  (** the monolithic P2 property for [output] *)
  sub_vunits : (string * Psl.Ast.vunit) list;
      (** per cut signal: its integrity property on the original module *)
  final_vunit : Psl.Ast.vunit;
      (** integrity of [output] under assumed cut integrity *)
  cut_mdl : Rtl.Mdl.t;
      (** module with each cut wire re-declared as a free primary input —
          check [final_vunit] against this *)
}

val partition :
  Transform.info -> Propgen.spec -> output:string -> cuts:string list -> plan
(** Raises [Invalid_argument] if a cut is not an internal wire of the
    module. *)
