module E = Rtl.Expr
module M = Rtl.Mdl

let ( let* ) = Result.bind

(* every expression in the module: assign right-hand sides and register
   next-state functions *)
let all_exprs (m : M.t) =
  List.map (fun (a : M.assign) -> a.M.rhs) m.M.assigns
  @ List.map (fun (r : M.reg) -> r.M.next) m.M.regs

(* subterms of the form (^x) for a signal x *)
let xor_reduced_signals (m : M.t) =
  let acc = ref [] in
  let rec walk (e : E.t) =
    (match e with
     | E.Unop (E.Red_xor, E.Var x) -> acc := x :: !acc
     | E.Const _ | E.Var _ | E.Unop _ | E.Binop _ | E.Mux _ | E.Slice _ -> ());
    match e with
    | E.Const _ | E.Var _ -> ()
    | E.Unop (_, a) | E.Slice (a, _, _) -> walk a
    | E.Binop (_, a, b) ->
      walk a;
      walk b
    | E.Mux (a, b, c) ->
      walk a;
      walk b;
      walk c
  in
  List.iter walk (all_exprs m);
  List.sort_uniq compare !acc

(* expand wires so that structural shapes become visible *)
let inliner (m : M.t) =
  let driver = Hashtbl.create 97 in
  List.iter (fun (a : M.assign) -> Hashtbl.replace driver a.M.lhs a.M.rhs)
    m.M.assigns;
  let rec expand visiting (e : E.t) =
    E.subst
      (fun x ->
        if List.mem x visiting then None
        else
          Option.map (expand (x :: visiting)) (Hashtbl.find_opt driver x))
      e
  in
  fun e -> E.simplify ~env:(M.signal_width m) (expand [] e)

(* [Concat (~(^body), body)] — the odd-parity re-encoding idiom *)
let rec is_parity_encoding (e : E.t) =
  match e with
  | E.Binop (E.Concat, E.Unop (E.Not, E.Unop (E.Red_xor, b1)), b2) ->
    E.equal b1 b2
  | E.Mux (_, t, f) -> is_parity_encoding t && is_parity_encoding f
  | E.Const _ | E.Var _ | E.Unop _ | E.Binop _ | E.Slice _ -> false

let infer (m : M.t) =
  let entities = Entity.discover m in
  let* () =
    if entities = [] then Error "no parity-protected registers" else Ok ()
  in
  let* he =
    match M.find_port m "HE" with
    | Some p when p.M.dir = M.Output -> Ok p.M.port_name
    | Some _ -> Error "HE is not an output"
    | None -> Error "no HE output port"
  in
  let inline = inliner m in
  let input_names = List.map (fun (p : M.port) -> p.M.port_name) (M.inputs m) in
  let xored = xor_reduced_signals m in
  let parity_inputs = List.filter (fun x -> List.mem x input_names) xored in
  (* latched input checkers: a register whose next function reads (^input) *)
  let checker_reg_watches =
    List.filter_map
      (fun (r : M.reg) ->
        let watched =
          List.filter
            (fun x -> List.mem x parity_inputs)
            (E.support r.M.next)
        in
        match watched with [ x ] -> Some (r.M.reg_name, x) | _ -> None)
      (List.filter (fun (r : M.reg) -> r.M.reg_width = 1 && not r.M.parity_protected)
         m.M.regs)
  in
  (* parity outputs: driven by a protected register or a re-encoding *)
  let entity_names = List.map (fun (e : Entity.t) -> e.Entity.reg_name) entities in
  let parity_outputs =
    List.filter_map
      (fun (p : M.port) ->
        if p.M.dir <> M.Output || p.M.port_name = he then None
        else
          match
            List.find_opt (fun (a : M.assign) -> a.M.lhs = p.M.port_name)
              m.M.assigns
          with
          | None -> None
          | Some a -> (
            let driver = inline a.M.rhs in
            match driver with
            | E.Var x when List.mem x entity_names -> Some p.M.port_name
            | _ when is_parity_encoding driver -> Some p.M.port_name
            | E.Const _ | E.Var _ | E.Unop _ | E.Binop _ | E.Mux _
            | E.Slice _ ->
              None))
      m.M.ports
  in
  (* the HE bit map: slice the (inlined) HE driver per bit and look at each
     bit's support *)
  let he_map =
    match
      List.find_opt (fun (a : M.assign) -> a.M.lhs = he) m.M.assigns
    with
    | None -> []
    | Some a ->
      let w = M.signal_width m he in
      let driver = inline a.M.rhs in
      List.concat
        (List.init w (fun j ->
             let bit =
               E.simplify ~env:(M.signal_width m) (E.slice driver ~hi:j ~lo:j)
             in
             let support = E.support bit in
             let entity_hits =
               List.filter (fun e -> List.mem e support) entity_names
             in
             let input_hits =
               List.filter_map
                 (fun (reg, input) ->
                   if List.mem reg support then Some input else None)
                 checker_reg_watches
             in
             List.map (fun s -> (s, j)) (entity_hits @ input_hits)))
  in
  Ok
    { Propgen.he; he_map; parity_inputs; parity_outputs; extra = [] }
